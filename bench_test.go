package dlte_test

import (
	"testing"

	"dlte/internal/exp"
)

// Each benchmark regenerates one experiment from DESIGN.md §3 in Quick
// mode (full sweeps: cmd/dlte-sim). The measured quantity is the
// wall-clock cost of the whole experiment — the tables themselves are
// the scientific output and are printed by `go run ./cmd/dlte-sim`.

func benchOpts() exp.Options { return exp.Options{Quick: true, Seed: 42} }

// BenchmarkE1DesignSpace regenerates Table 1 (design-space quadrant).
func BenchmarkE1DesignSpace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunE1(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2DataPath regenerates Figure 1 (breakout vs tunnel).
func BenchmarkE2DataPath(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunE2(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3CoreScaling regenerates the §4.1 scaling comparison.
func BenchmarkE3CoreScaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunE3(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4Mobility regenerates the §4.2 roam-disruption study.
func BenchmarkE4Mobility(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunE4(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5SpectrumModes regenerates the §4.3 sharing comparison.
func BenchmarkE5SpectrumModes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunE5(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6Waveform regenerates the §3.2 range/throughput tables.
func BenchmarkE6Waveform(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunE6(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7X2Overhead regenerates the §4.3 coordination-cost study.
func BenchmarkE7X2Overhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunE7(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8Deployment regenerates the §5 town-deployment study.
func BenchmarkE8Deployment(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunE8(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9HiddenAndRelay regenerates the §4.3 hidden-terminal and
// §7 relay studies.
func BenchmarkE9HiddenAndRelay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunE9(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10Discovery regenerates the §4.3 discovery-at-scale study
// (registry COW reads, revision-delta sync, X2 mesh bring-up).
func BenchmarkE10Discovery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunE10(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11Mobility regenerates the §4.2 city-scale mobility
// scenarios (compiled corridor / flash-crowd / failure-wave worlds
// plus real-stack probe handovers).
func BenchmarkE11Mobility(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunE11(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}
