module dlte

go 1.22
