// Command dlte-demo boots a complete dLTE world in one process —
// registry, three access points with local core stubs, an OTT echo
// service, and a handful of UEs — then narrates the full lifecycle:
// open join, key publication, attach with mutual AKA, direct-breakout
// traffic, peer discovery, share negotiation, and a roam.
//
// It is the fastest way to watch every moving part of the paper's
// architecture work together.
//
// Usage:
//
//	dlte-demo [-ues 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"dlte/internal/auth"
	"dlte/internal/core"
	"dlte/internal/geo"
	"dlte/internal/ott"
	"dlte/internal/radio"
	"dlte/internal/simnet"
	"dlte/internal/ue"
	"dlte/internal/x2"
)

func main() {
	nUE := flag.Int("ues", 3, "number of UEs to attach")
	flag.Parse()

	step := func(format string, args ...interface{}) {
		fmt.Printf("\n==> "+format+"\n", args...)
	}

	step("booting the simulated internetwork (10 ms WAN) and global registry")
	s, err := core.NewWallScenario(simnet.Link{Latency: 10 * time.Millisecond}, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	step("three owners independently bring up dLTE APs and join the open registry")
	var aps []*core.AccessPoint
	for i, mode := range []x2.Mode{x2.ModeCooperative, x2.ModeCooperative, x2.ModeFairShare} {
		ap, err := s.AddAP(core.APConfig{
			ID:       fmt.Sprintf("ap%d", i+1),
			Position: geo.Pt(float64(i)*3000, 0),
			Band:     radio.LTEBand5,
			HeightM:  20, EIRPdBm: 58,
			Mode: mode, TAC: uint16(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		aps = append(aps, ap)
		fmt.Printf("    %s joined (mode=%s, air=%s)\n", ap.ID(), ap.Mode(), ap.AirAddr())
	}

	step("an OTT echo service goes up on the public Internet")
	ottHost, _ := s.Net.AddHost("ott")
	echo, err := ott.NewEchoServer(ottHost, 9000)
	if err != nil {
		log.Fatal(err)
	}
	defer echo.Close()

	step("%d subscribers publish open-SIM keys to the registry", *nUE)
	devices := make([]*ue.Device, 0, *nUE)
	for i := 0; i < *nUE; i++ {
		d, err := s.AddUE(fmt.Sprintf("ue%d", i+1), imsi(i))
		if err != nil {
			log.Fatal(err)
		}
		devices = append(devices, d)
		fmt.Printf("    %s published its key\n", d.IMSI())
	}

	step("ap1 syncs published keys into its local HSS stub")
	n, err := aps[0].SyncSubscriberKeys()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    imported %d subscriber key(s)\n", n)

	step("UEs attach at ap1 (mutual AKA against the stub, direct breakout)")
	for i, d := range devices {
		name := fmt.Sprintf("ue%d", i+1)
		if err := s.ConnectUERadio(name, "ap1", geo.Pt(800+float64(i)*200, 0)); err != nil {
			log.Fatal(err)
		}
		res, err := d.Attach(aps[0].AirAddr(), 10*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %s attached in %v → IP %s (breakout=%v)\n",
			d.IMSI(), res.Duration.Round(time.Millisecond), res.IP, res.DirectBreakout)
	}

	step("traffic flows straight from the AP to the Internet")
	rtt, err := devices[0].Echo("ott:9000", []byte("hello"), 200*time.Millisecond, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    echo RTT through ap1: %v\n", rtt.Round(time.Millisecond))

	step("ap1 discovers its contention domain via the registry and peers over X2")
	domain, err := aps[0].DiscoverPeers()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    contention domain: %v\n", domain)

	step("APs advertise load and negotiate airtime (cooperative)")
	for _, ap := range aps {
		ap.AdvertiseLoad()
	}
	time.Sleep(100 * time.Millisecond)
	share, err := aps[0].NegotiateShares()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    ap1's negotiated share: %.2f (it carries all %d UEs)\n", share, *nUE)

	step("ue1 roams: ap1 prepares ap2 over X2, ue1 re-attaches")
	d := devices[0]
	if err := s.ConnectUERadio("ue1", "ap2", geo.Pt(2400, 0)); err != nil {
		log.Fatal(err)
	}
	if err := aps[0].Mobility.Prepare("ap2", d.Publication(), -102); err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	res, err := d.Attach(aps[1].AirAddr(), 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    re-attached at ap2 in %v → new IP %s (endpoint mobility is the transport's job)\n",
		res.Duration.Round(time.Millisecond), res.IP)

	step("done — every signaling message above crossed the real NAS/S1AP/GTP/X2 stacks")
}

// imsi derives the demo subscribers' identities.
func imsi(i int) auth.IMSI {
	return auth.IMSI(fmt.Sprintf("0010109%08d", i+1))
}
