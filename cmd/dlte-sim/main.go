// Command dlte-sim regenerates any of the repository's experiments
// (DESIGN.md §3, EXPERIMENTS.md): it builds the simulated world, runs
// the real protocol stacks and radio models, and prints the result
// tables.
//
// Usage:
//
//	dlte-sim -exp E2            # one experiment
//	dlte-sim -exp all -quick    # everything, reduced sweeps
//	dlte-sim -p 8               # run worlds on 8 workers (default: NumCPU)
//	dlte-sim -shards 8          # serve each core's sessions on 8 shards
//	dlte-sim -exp E13 -ues 1000000  # one million-UE compact world
//
// Experiments (and the independent simulation worlds inside each
// sweep) execute concurrently up to -p workers, but stdout is always
// emitted in experiment order and is byte-identical for a given seed
// at any -p, including -p 1 (see DESIGN.md §5b). -shards is the same
// kind of knob one level down: it spreads each simulated core's
// session state machines across real CPUs without changing a byte of
// output (DESIGN.md §6).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dlte/internal/exp"
)

// runner pairs an experiment ID with its entry point.
type runner struct {
	id, title string
	run       func(exp.Options) error
}

func runners() []runner {
	wrap := func(f func(exp.Options) error) func(exp.Options) error { return f }
	return []runner{
		{"E1", "Table 1: design space", wrap(func(o exp.Options) error { _, err := exp.RunE1(o); return err })},
		{"E2", "Figure 1: data path", wrap(func(o exp.Options) error { _, err := exp.RunE2(o); return err })},
		{"E2b", "§3.1: user-plane saturation", wrap(func(o exp.Options) error { _, err := exp.RunE2b(o); return err })},
		{"E3", "§4.1: core scaling", wrap(func(o exp.Options) error { _, err := exp.RunE3(o); return err })},
		{"E4", "§4.2: mobility", wrap(func(o exp.Options) error { _, err := exp.RunE4(o); return err })},
		{"E5", "§4.3: spectrum modes", wrap(func(o exp.Options) error { _, err := exp.RunE5(o); return err })},
		{"E6", "§3.2: waveform & bands", wrap(func(o exp.Options) error { _, err := exp.RunE6(o); return err })},
		{"E7", "§4.3: X2 overhead", wrap(func(o exp.Options) error { _, err := exp.RunE7(o); return err })},
		{"E8", "§5: town deployment", wrap(func(o exp.Options) error { _, err := exp.RunE8(o); return err })},
		{"E9", "§4.3/§7: hidden terminals & relay", wrap(func(o exp.Options) error { _, err := exp.RunE9(o); return err })},
		{"E10", "§4.3: discovery at scale", wrap(func(o exp.Options) error { _, err := exp.RunE10(o); return err })},
		{"E11", "§4.2 at scale: compiled mobility scenarios", wrap(func(o exp.Options) error { _, err := exp.RunE11(o); return err })},
		{"E12", "§4.3: spectrum-coexistence frontier", wrap(func(o exp.Options) error { _, err := exp.RunE12(o); return err })},
		{"E13", "§6: million-UE attach-and-idle world", wrap(func(o exp.Options) error { _, err := exp.RunE13(o); return err })},
	}
}

// job is one experiment scheduled on the run's worker budget. Each
// renders into its own buffer; the main goroutine prints buffers in
// experiment order as they complete, so concurrent execution never
// reorders or interleaves stdout.
type job struct {
	r    runner
	buf  bytes.Buffer
	err  error
	took time.Duration
	done chan struct{}
}

func main() {
	expFlag := flag.String("exp", "all", "experiment to run: E1..E13, E2b, or 'all'")
	quick := flag.Bool("quick", false, "reduced sweeps (CI-sized)")
	seed := flag.Int64("seed", 42, "simulation seed")
	par := flag.Int("p", runtime.NumCPU(), "max concurrent simulation worlds (1 = fully serial)")
	shards := flag.Int("shards", 0, "session shards per simulated core (0 = one per CPU; output-invariant)")
	ues := flag.Int("ues", 0, "E13 only: run a single world of exactly this many UEs instead of the default sweep (output depends on -ues but never on -p/-shards)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit (pprof format)")
	flag.Parse()

	// Profiles go to stderr-side files only; stdout (the tables) stays
	// byte-comparable across runs with and without profiling.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
		}()
	}

	// -ues is a world-shape knob, so an explicit nonsense value must be
	// an error, not a silent fallback to the default sweep.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "ues" && *ues <= 0 {
			fmt.Fprintf(os.Stderr, "-ues %d: population must be > 0\n", *ues)
			os.Exit(2)
		}
	})
	if *par < 1 {
		*par = 1
	}
	want := strings.ToUpper(*expFlag)
	var jobs []*job
	for _, r := range runners() {
		if want != "ALL" && want != strings.ToUpper(r.id) {
			continue
		}
		jobs = append(jobs, &job{r: r, done: make(chan struct{})})
	}
	if len(jobs) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want E1..E13, E2b, or all)\n", *expFlag)
		os.Exit(2)
	}

	// One shared worker budget: the experiments themselves occupy
	// workers, and each experiment's inner sweeps fan out on the same
	// -p. Workers pull jobs in experiment order.
	queue := make(chan *job, len(jobs))
	for _, j := range jobs {
		queue <- j
	}
	close(queue)
	workers := *par
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		go func() {
			for j := range queue {
				opt := exp.Options{Quick: *quick, Seed: *seed, Out: &j.buf, Parallelism: *par, Shards: *shards, UEs: *ues}
				start := time.Now()
				j.err = j.r.run(opt)
				j.took = time.Since(start)
				close(j.done)
			}
		}()
	}

	for _, j := range jobs {
		<-j.done
		fmt.Printf("### %s — %s\n\n", j.r.id, j.r.title)
		os.Stdout.Write(j.buf.Bytes())
		if j.err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", j.r.id, j.err)
			os.Exit(1)
		}
		// Wall time goes to stderr: stdout (the tables) is deterministic
		// for a given seed, and stays byte-comparable across runs.
		fmt.Fprintf(os.Stderr, "(%s completed in %v)\n", j.r.id, j.took.Round(time.Millisecond))
		fmt.Println()
	}
}
