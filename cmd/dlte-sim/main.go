// Command dlte-sim regenerates any of the repository's experiments
// (DESIGN.md §3, EXPERIMENTS.md): it builds the simulated world, runs
// the real protocol stacks and radio models, and prints the result
// tables.
//
// Usage:
//
//	dlte-sim -exp E2            # one experiment
//	dlte-sim -exp all -quick    # everything, reduced sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dlte/internal/exp"
)

// runner pairs an experiment ID with its entry point.
type runner struct {
	id, title string
	run       func(exp.Options) error
}

func runners() []runner {
	wrap := func(f func(exp.Options) error) func(exp.Options) error { return f }
	return []runner{
		{"E1", "Table 1: design space", wrap(func(o exp.Options) error { _, err := exp.RunE1(o); return err })},
		{"E2", "Figure 1: data path", wrap(func(o exp.Options) error { _, err := exp.RunE2(o); return err })},
		{"E3", "§4.1: core scaling", wrap(func(o exp.Options) error { _, err := exp.RunE3(o); return err })},
		{"E4", "§4.2: mobility", wrap(func(o exp.Options) error { _, err := exp.RunE4(o); return err })},
		{"E5", "§4.3: spectrum modes", wrap(func(o exp.Options) error { _, err := exp.RunE5(o); return err })},
		{"E6", "§3.2: waveform & bands", wrap(func(o exp.Options) error { _, err := exp.RunE6(o); return err })},
		{"E7", "§4.3: X2 overhead", wrap(func(o exp.Options) error { _, err := exp.RunE7(o); return err })},
		{"E8", "§5: town deployment", wrap(func(o exp.Options) error { _, err := exp.RunE8(o); return err })},
		{"E9", "§4.3/§7: hidden terminals & relay", wrap(func(o exp.Options) error { _, err := exp.RunE9(o); return err })},
	}
}

func main() {
	expFlag := flag.String("exp", "all", "experiment to run: E1..E9 or 'all'")
	quick := flag.Bool("quick", false, "reduced sweeps (CI-sized)")
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	opt := exp.Options{Quick: *quick, Seed: *seed, Out: os.Stdout}
	want := strings.ToUpper(*expFlag)

	matched := false
	for _, r := range runners() {
		if want != "ALL" && want != r.id {
			continue
		}
		matched = true
		fmt.Printf("### %s — %s\n\n", r.id, r.title)
		start := time.Now()
		if err := r.run(opt); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.id, err)
			os.Exit(1)
		}
		// Wall time goes to stderr: stdout (the tables) is deterministic
		// for a given seed, and stays byte-comparable across runs.
		fmt.Fprintf(os.Stderr, "(%s completed in %v)\n", r.id, time.Since(start).Round(time.Millisecond))
		fmt.Println()
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want E1..E9 or all)\n", *expFlag)
		os.Exit(2)
	}
}
