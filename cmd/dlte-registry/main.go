// Command dlte-registry runs the global dLTE registry (paper §4.3) as
// a real TCP server: the open directory where access points publish
// their location/band/mode records for peer discovery, and where
// subscribers publish open-SIM keys (§4.2).
//
// Usage:
//
//	dlte-registry -listen :8400
package main

import (
	"flag"
	"log"
	"net"

	"dlte/internal/registry"
)

func main() {
	listen := flag.String("listen", ":8400", "TCP listen address")
	flag.Parse()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("dlte-registry: %v", err)
	}
	log.Printf("dlte-registry: open registry listening on %s", l.Addr())
	store := registry.NewStore()
	srv := registry.NewServer(store)
	srv.Serve(l) // blocks until the listener closes
}
