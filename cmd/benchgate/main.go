// Command benchgate compares a `go test -json` benchmark stream
// against a committed baseline (BENCH_BASELINE.json) and fails when a
// gated benchmark regresses: ns/op more than -max-regress above
// baseline, or allocs/op above baseline at all (the 0-alloc fast
// paths — registry snapshot reads, X2 broadcast — must stay at 0).
//
// The baseline's benchmark set is curated: only benchmarks listed in
// the committed file are gated, so noisy end-to-end benchmarks stay
// informational. Each gated benchmark should run with -count > 1; the
// gate takes the per-benchmark minimum, the standard robust statistic
// against scheduler noise.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem -count 5 -json ./... | benchgate -baseline BENCH_BASELINE.json
//	... | benchgate -baseline BENCH_BASELINE.json -write   # regenerate numbers for the curated set
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// gateEntry is one committed benchmark baseline.
type gateEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type baseline struct {
	Note       string               `json:"note,omitempty"`
	Benchmarks map[string]gateEntry `json:"benchmarks"`
}

// result is an observed benchmark measurement (minimum across -count
// repetitions).
type result struct {
	ns     float64
	allocs float64
	seen   bool
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "committed baseline file")
	write := flag.Bool("write", false, "rewrite the baseline's numbers from this run instead of gating")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional ns/op regression before failing")
	flag.Parse()

	results, err := parseStream(os.Stdin)
	if err != nil {
		fatalf("parse benchmark stream: %v", err)
	}
	if len(results) == 0 {
		fatalf("no benchmark results in input (need `go test -json -bench ... -benchmem`)")
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		if !(*write && os.IsNotExist(err)) {
			fatalf("read baseline: %v", err)
		}
		base = &baseline{}
	}

	if *write {
		writeBaseline(*baselinePath, base, results)
		return
	}

	var failures []string
	for _, name := range sortedKeys(base.Benchmarks) {
		want := base.Benchmarks[name]
		got, ok := results[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: gated benchmark missing from this run", name))
			continue
		}
		limit := want.NsPerOp * (1 + *maxRegress)
		if got.ns > limit {
			failures = append(failures, fmt.Sprintf("%s: %.4g ns/op exceeds baseline %.4g ns/op by more than %.0f%%",
				name, got.ns, want.NsPerOp, *maxRegress*100))
		}
		if got.allocs > want.AllocsPerOp {
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op, baseline %.0f",
				name, got.allocs, want.AllocsPerOp))
		}
		fmt.Printf("benchgate: %-60s %10.4g ns/op (limit %10.4g)  %3.0f allocs/op (limit %.0f)\n",
			name, got.ns, limit, got.allocs, want.AllocsPerOp)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d gated benchmarks within baseline\n", len(base.Benchmarks))
}

// parseStream extracts benchmark result lines from a go test -json
// event stream, keyed "package.BenchmarkName" with the GOMAXPROCS
// suffix stripped, keeping the minimum ns/op and allocs/op per key.
// testing flushes a benchmark's name before its numbers, so one result
// line often spans two output events; partial lines accumulate per
// package until their newline arrives.
func parseStream(r io.Reader) (map[string]result, error) {
	results := make(map[string]result)
	pending := make(map[string]string)
	record := func(pkg, line string) {
		name, res, ok := parseBenchLine(line)
		if !ok {
			return
		}
		key := pkg + "." + name
		if prev, seen := results[key]; seen {
			res.ns = math.Min(res.ns, prev.ns)
			res.allocs = math.Min(res.allocs, prev.allocs)
		}
		results[key] = res
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 || raw[0] != '{' {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			continue // tolerate interleaved non-JSON output
		}
		if ev.Action != "output" {
			continue
		}
		buf := pending[ev.Package] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			record(ev.Package, buf[:nl])
			buf = buf[nl+1:]
		}
		pending[ev.Package] = buf
	}
	for pkg, buf := range pending {
		record(pkg, buf)
	}
	return results, sc.Err()
}

// parseBenchLine parses one testing benchmark result line:
//
//	BenchmarkName/sub-16  \t  2000 \t 4.9 ns/op \t 0 B/op \t 0 allocs/op
func parseBenchLine(s string) (string, result, bool) {
	if !strings.HasPrefix(s, "Benchmark") {
		return "", result{}, false
	}
	fields := strings.Fields(s)
	if len(fields) < 4 {
		return "", result{}, false
	}
	name := stripProcs(fields[0])
	res := result{seen: true, allocs: math.NaN(), ns: math.NaN()}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.ns = v
		case "allocs/op":
			res.allocs = v
		}
	}
	if math.IsNaN(res.ns) {
		return "", result{}, false
	}
	if math.IsNaN(res.allocs) {
		res.allocs = 0 // -benchmem absent; gate on time only
	}
	return name, res, true
}

// stripProcs removes the trailing -N GOMAXPROCS suffix testing adds.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func readBaseline(path string) (*baseline, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base baseline
	if err := json.Unmarshal(b, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &base, nil
}

// writeBaseline refreshes the curated benchmark set's numbers from
// this run. If the baseline has no benchmarks yet, every observed
// benchmark is admitted (first-time generation); otherwise the
// committed set is preserved so noisy benchmarks stay out of the gate.
func writeBaseline(path string, base *baseline, results map[string]result) {
	if len(base.Benchmarks) == 0 {
		base.Benchmarks = make(map[string]gateEntry, len(results))
		for name := range results {
			base.Benchmarks[name] = gateEntry{}
		}
	}
	if base.Note == "" {
		base.Note = "Gated benchmark baselines. Regenerate with `make bench-baseline` on the reference machine; cmd/benchgate fails CI on >25% ns/op regression or any allocs/op above baseline."
	}
	for _, name := range sortedKeys(base.Benchmarks) {
		got, ok := results[name]
		if !ok {
			fatalf("baseline benchmark %s missing from this run; cannot regenerate", name)
		}
		base.Benchmarks[name] = gateEntry{NsPerOp: got.ns, AllocsPerOp: got.allocs}
	}
	out, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fatalf("encode baseline: %v", err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fatalf("write baseline: %v", err)
	}
	fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", path, len(base.Benchmarks))
}

func sortedKeys(m map[string]gateEntry) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
