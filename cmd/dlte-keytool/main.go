// Command dlte-keytool manages open dLTE SIMs against a running
// registry (see cmd/dlte-registry): it provisions a new SIM, publishes
// its key (the paper's §4.2 pre-publication step), fetches published
// keys, and lists registered access points — all over real TCP.
//
// Usage:
//
//	dlte-keytool -registry localhost:8400 new -imsi 001010000000001
//	dlte-keytool -registry localhost:8400 fetch -imsi 001010000000001
//	dlte-keytool -registry localhost:8400 keys
//	dlte-keytool -registry localhost:8400 aps
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"dlte/internal/auth"
	"dlte/internal/registry"
)

func main() {
	regAddr := flag.String("registry", "localhost:8400", "registry address")
	flag.Parse()
	if flag.NArg() < 1 {
		log.Fatal("dlte-keytool: want a subcommand: new | fetch | keys | aps")
	}

	dial := func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	client, err := registry.Dial(dial, *regAddr)
	if err != nil {
		log.Fatalf("dlte-keytool: %v", err)
	}
	defer client.Close()

	switch flag.Arg(0) {
	case "new":
		fs := flag.NewFlagSet("new", flag.ExitOnError)
		imsi := fs.String("imsi", "", "IMSI to provision (14–15 digits)")
		fs.Parse(flag.Args()[1:])
		sim, err := auth.NewSIM(auth.IMSI(*imsi))
		if err != nil {
			log.Fatalf("dlte-keytool: %v", err)
		}
		if err := client.PublishKey(registry.NewKeyRecord(auth.KeyPublication{
			IMSI: sim.IMSI, K: sim.K, OPc: sim.OPc,
		})); err != nil {
			log.Fatalf("dlte-keytool: publish: %v", err)
		}
		fmt.Printf("provisioned and published open SIM\n  IMSI %s\n  K    %s\n  OPc  %s\n",
			sim.IMSI, hex.EncodeToString(sim.K), hex.EncodeToString(sim.OPc))

	case "fetch":
		fs := flag.NewFlagSet("fetch", flag.ExitOnError)
		imsi := fs.String("imsi", "", "IMSI to fetch")
		fs.Parse(flag.Args()[1:])
		k, err := client.FetchKey(*imsi)
		if err != nil {
			log.Fatalf("dlte-keytool: %v", err)
		}
		fmt.Printf("IMSI %s\n  K   %s\n  OPc %s\n", k.IMSI, k.K, k.OPc)

	case "keys":
		keys, err := client.Keys()
		if err != nil {
			log.Fatalf("dlte-keytool: %v", err)
		}
		for _, k := range keys {
			fmt.Printf("%s  K=%s\n", k.IMSI, k.K)
		}
		fmt.Printf("%d published key(s)\n", len(keys))

	case "aps":
		records, err := client.List("")
		if err != nil {
			log.Fatalf("dlte-keytool: %v", err)
		}
		for _, r := range records {
			fmt.Printf("%-12s %-22s pos=(%.0f,%.0f) %s mode=%s\n",
				r.ID, r.Band, r.X, r.Y, r.X2Addr, r.Mode)
		}
		fmt.Printf("%d registered AP(s)\n", len(records))

	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", flag.Arg(0))
		os.Exit(2)
	}
}
