GO ?= go

.PHONY: all build vet lint test race bench bench-json bench-gate bench-baseline fuzz-smoke smoke determinism-smoke check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck is not vendored; skip with a
# hint when absent so offline checkouts still pass `make check`.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping" \
		     "(go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every experiment benchmark: catches perf collapses
# (a virtual-clock regression shows up as seconds, not milliseconds).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Benchmark artifact: every benchmark (experiments, simnet hot paths,
# gtp send/demux, epc user-plane uplink/downlink/breakout-vs-tunnel)
# three times with allocation stats, as go test -json event stream.
# The gtp and epc user-plane benchmarks report allocs/op; the 0-alloc
# steady-state expectation is additionally enforced by
# internal/gtp.TestSendDemuxZeroAlloc under plain `make test`.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -count 3 -json ./... | tee BENCH.json

# Curated perf-regression gate: the discovery/coordination hot paths
# (registry COW reads, store mutation, rev probe RTT, X2 send and
# broadcast) and the control-plane signaling paths (full two-sided NAS
# attach/detach/TAU procedures, S1AP transport codec) against the
# committed baseline. Fails on >25% ns/op regression or any allocs/op
# above baseline (the snapshot-read, broadcast, codec, and detach/TAU
# paths are pinned at 0; attach at 2 — the HSS vector and the SIM's
# AKA result). min-of-5 runs absorbs scheduler noise.
# BenchmarkX2BroadcastSimnet is deliberately not gated: its allocs
# reflect cross-goroutine pool scheduling, not the send path.
BENCH_GATE_RE = BenchmarkRegistryLookup|BenchmarkStoreJoin|BenchmarkRegistryRevisionRTT|BenchmarkX2Broadcast$$|BenchmarkX2Send$$|BenchmarkNASProcedure|BenchmarkS1APTransportCodec
BENCH_GATE_PKGS = ./internal/registry ./internal/x2 ./internal/nas ./internal/s1ap

# The attach-storm benchmark is end-to-end (every op re-attaches a
# 32-UE population across 8 eNodeB associations), so it runs in its
# own invocation with far fewer iterations than the hot-path gates.
# Its committed allocs/op carry ~2 allocs of headroom over the steady
# state: the wheel scheduler grows its event slab in rare bursts, so a
# min-of-3 rep occasionally lands one alloc above the true floor.
STORM_GATE_RE = BenchmarkAttachStorm
STORM_GATE_PKGS = ./internal/epc
STORM_GATE_FLAGS = -benchmem -benchtime 50x -count 3 -json

# Timing-wheel and compact-world gates. SchedulerTimers prices the
# hierarchical wheel at the 1k/100k acceptance sizes; IdleWorld prices
# the E13 compact attach-and-idle world at 10k/100k UEs. The 1M legs
# of both run under bench-json but stay informational — whole-world
# wall time at that scale is seconds, too coarse for a 25% gate.
WHEEL_GATE_RE = BenchmarkSchedulerTimers/1k$$|BenchmarkSchedulerTimers/100k$$
WHEEL_GATE_PKGS = ./internal/simnet
WHEEL_GATE_FLAGS = -benchmem -benchtime 10x -count 3 -json
IDLE_GATE_RE = BenchmarkIdleWorld/ues=10000$$|BenchmarkIdleWorld/ues=100000$$
IDLE_GATE_PKGS = ./internal/exp
IDLE_GATE_FLAGS = -benchmem -benchtime 1x -count 3 -json

# Event-driven PHY contention gate: the DCF engine at 32 and 256
# saturated stations (one simulated second per op on a reused engine —
# the zero-alloc hot loop, so allocs/op is pinned at 0), plus the whole
# quick-mode E12 coexistence sweep (city construction, the registry
# partition, six schemes per domain) as the experiment-level number.
# E12's committed allocs/op carry ~50 allocs of headroom: its worker
# fan-out makes goroutine/channel allocation counts scheduler-shaped.
PHY_GATE_RE = BenchmarkDCF/(32|256)$$
PHY_GATE_PKGS = ./internal/phy
PHY_GATE_FLAGS = -benchmem -benchtime 100x -count 3 -json
E12_GATE_RE = BenchmarkE12$$
E12_GATE_PKGS = ./internal/exp
E12_GATE_FLAGS = -benchmem -benchtime 5x -count 3 -json

# Mobility-plane gate: one full prepared handover arc (X2 prepare/ack,
# break-before-make re-attach, TEID re-point, path migration,
# complete/retire) on the real stack, single UE and a 16-UE wave.
# Committed allocs/op carry a couple of allocs of headroom: the settle
# poll count varies by one tick across benchtime choices.
HO_GATE_RE = BenchmarkHandover/single$$|BenchmarkHandover/storm$$
HO_GATE_PKGS = ./internal/exp
HO_GATE_FLAGS = -benchmem -benchtime 50x -count 3 -json
# The steady-state handler-to-handler hop (DESIGN.md §14). The
# baseline pins 0 allocs/op: any allocation creeping onto the dispatch
# hot path fails the gate outright.
DISPATCH_GATE_RE = BenchmarkDispatchHop$$
DISPATCH_GATE_PKGS = ./internal/simnet
DISPATCH_GATE_FLAGS = -benchmem -benchtime 2000x -count 3 -json

bench-gate:
	( $(GO) test -run '^$$' -bench '$(BENCH_GATE_RE)' -benchmem -benchtime 10000x -count 5 -json $(BENCH_GATE_PKGS) && \
	  $(GO) test -run '^$$' -bench '$(STORM_GATE_RE)' $(STORM_GATE_FLAGS) $(STORM_GATE_PKGS) && \
	  $(GO) test -run '^$$' -bench '$(WHEEL_GATE_RE)' $(WHEEL_GATE_FLAGS) $(WHEEL_GATE_PKGS) && \
	  $(GO) test -run '^$$' -bench '$(IDLE_GATE_RE)' $(IDLE_GATE_FLAGS) $(IDLE_GATE_PKGS) && \
	  $(GO) test -run '^$$' -bench '$(PHY_GATE_RE)' $(PHY_GATE_FLAGS) $(PHY_GATE_PKGS) && \
	  $(GO) test -run '^$$' -bench '$(E12_GATE_RE)' $(E12_GATE_FLAGS) $(E12_GATE_PKGS) && \
	  $(GO) test -run '^$$' -bench '$(HO_GATE_RE)' $(HO_GATE_FLAGS) $(HO_GATE_PKGS) && \
	  $(GO) test -run '^$$' -bench '$(DISPATCH_GATE_RE)' $(DISPATCH_GATE_FLAGS) $(DISPATCH_GATE_PKGS) ) \
		| $(GO) run ./cmd/benchgate -baseline BENCH_BASELINE.json

# Regenerate the gate's numbers (run on the reference machine, commit
# the result). The curated benchmark set in BENCH_BASELINE.json is
# preserved; only the measurements refresh.
bench-baseline:
	( $(GO) test -run '^$$' -bench '$(BENCH_GATE_RE)' -benchmem -benchtime 10000x -count 5 -json $(BENCH_GATE_PKGS) && \
	  $(GO) test -run '^$$' -bench '$(STORM_GATE_RE)' $(STORM_GATE_FLAGS) $(STORM_GATE_PKGS) && \
	  $(GO) test -run '^$$' -bench '$(WHEEL_GATE_RE)' $(WHEEL_GATE_FLAGS) $(WHEEL_GATE_PKGS) && \
	  $(GO) test -run '^$$' -bench '$(IDLE_GATE_RE)' $(IDLE_GATE_FLAGS) $(IDLE_GATE_PKGS) && \
	  $(GO) test -run '^$$' -bench '$(PHY_GATE_RE)' $(PHY_GATE_FLAGS) $(PHY_GATE_PKGS) && \
	  $(GO) test -run '^$$' -bench '$(E12_GATE_RE)' $(E12_GATE_FLAGS) $(E12_GATE_PKGS) && \
	  $(GO) test -run '^$$' -bench '$(HO_GATE_RE)' $(HO_GATE_FLAGS) $(HO_GATE_PKGS) && \
	  $(GO) test -run '^$$' -bench '$(DISPATCH_GATE_RE)' $(DISPATCH_GATE_FLAGS) $(DISPATCH_GATE_PKGS) ) \
		| $(GO) run ./cmd/benchgate -baseline BENCH_BASELINE.json -write

# Fuzz smoke: a few seconds of coverage-guided fuzzing per untrusted
# decoder (NAS and GTP from the air side, S1AP from the backhaul,
# registry and X2 from the Internet side). Regression corpora under
# testdata/fuzz run in plain `make test` already; this explores fresh
# inputs.
fuzz-smoke:
	@for pkg in ./internal/nas ./internal/s1ap ./internal/gtp ./internal/registry ./internal/x2; do \
		echo "fuzz-smoke: $$pkg"; \
		$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime 5s $$pkg || exit 1; \
	done

# Determinism smoke: two same-seed runs must be byte-identical.
smoke: build
	$(GO) build -o /tmp/dlte-sim-smoke ./cmd/dlte-sim
	/tmp/dlte-sim-smoke -exp E4 -quick 2>/dev/null > /tmp/dlte-smoke-1.txt
	/tmp/dlte-sim-smoke -exp E4 -quick 2>/dev/null > /tmp/dlte-smoke-2.txt
	cmp /tmp/dlte-smoke-1.txt /tmp/dlte-smoke-2.txt
	rm -f /tmp/dlte-sim-smoke /tmp/dlte-smoke-1.txt /tmp/dlte-smoke-2.txt

# Real-CPU-knob determinism smoke: the full quick sweep must render
# byte-identical tables fully serial (-p 1), fully concurrent (-p 8),
# and with every simulated core sharded eight ways (-shards 8). The
# E13 leg repeats the comparison at a 100k-UE population, where
# -shards additionally fans the region wheels across OS threads —
# the million-UE scaling path must not cost a byte of stability. The
# E11 leg does the same for the full-size mobility scenarios: the
# compiled corridor / flash-crowd / failure-wave worlds interleave
# real-stack probe handovers with region-sharded compact events, and
# neither knob may move a byte of the rendered table. The E12 leg runs
# the full-size coexistence frontier (64/512/2048 domains on the
# event-driven PHY engine, fanned out over -p workers) and pins the
# index-ordered reduction: identical tables at -p 1 and -p 8.
determinism-smoke: build
	$(GO) build -o /tmp/dlte-sim-det ./cmd/dlte-sim
	/tmp/dlte-sim-det -quick -p 1 -shards 1 2>/dev/null > /tmp/dlte-det-p1.txt
	/tmp/dlte-sim-det -quick -p 8 -shards 1 2>/dev/null > /tmp/dlte-det-p8.txt
	/tmp/dlte-sim-det -quick -p 8 -shards 8 2>/dev/null > /tmp/dlte-det-s8.txt
	cmp /tmp/dlte-det-p1.txt /tmp/dlte-det-p8.txt
	cmp /tmp/dlte-det-p1.txt /tmp/dlte-det-s8.txt
	/tmp/dlte-sim-det -exp E13 -ues 100000 -p 1 -shards 1 2>/dev/null > /tmp/dlte-det-e13-p1.txt
	/tmp/dlte-sim-det -exp E13 -ues 100000 -p 8 -shards 1 2>/dev/null > /tmp/dlte-det-e13-p8.txt
	/tmp/dlte-sim-det -exp E13 -ues 100000 -p 8 -shards 8 2>/dev/null > /tmp/dlte-det-e13-s8.txt
	cmp /tmp/dlte-det-e13-p1.txt /tmp/dlte-det-e13-p8.txt
	cmp /tmp/dlte-det-e13-p1.txt /tmp/dlte-det-e13-s8.txt
	/tmp/dlte-sim-det -exp E11 -p 1 -shards 1 2>/dev/null > /tmp/dlte-det-e11-p1.txt
	/tmp/dlte-sim-det -exp E11 -p 8 -shards 1 2>/dev/null > /tmp/dlte-det-e11-p8.txt
	/tmp/dlte-sim-det -exp E11 -p 8 -shards 8 2>/dev/null > /tmp/dlte-det-e11-s8.txt
	cmp /tmp/dlte-det-e11-p1.txt /tmp/dlte-det-e11-p8.txt
	cmp /tmp/dlte-det-e11-p1.txt /tmp/dlte-det-e11-s8.txt
	/tmp/dlte-sim-det -exp E12 -p 1 2>/dev/null > /tmp/dlte-det-e12-p1.txt
	/tmp/dlte-sim-det -exp E12 -p 8 2>/dev/null > /tmp/dlte-det-e12-p8.txt
	cmp /tmp/dlte-det-e12-p1.txt /tmp/dlte-det-e12-p8.txt
	rm -f /tmp/dlte-sim-det /tmp/dlte-det-p1.txt /tmp/dlte-det-p8.txt /tmp/dlte-det-s8.txt \
		/tmp/dlte-det-e13-p1.txt /tmp/dlte-det-e13-p8.txt /tmp/dlte-det-e13-s8.txt \
		/tmp/dlte-det-e11-p1.txt /tmp/dlte-det-e11-p8.txt /tmp/dlte-det-e11-s8.txt \
		/tmp/dlte-det-e12-p1.txt /tmp/dlte-det-e12-p8.txt

check: lint build race bench smoke determinism-smoke
