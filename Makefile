GO ?= go

.PHONY: all build vet test race bench smoke check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every experiment benchmark: catches perf collapses
# (a virtual-clock regression shows up as seconds, not milliseconds).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Determinism smoke: two same-seed runs must be byte-identical.
smoke: build
	$(GO) build -o /tmp/dlte-sim-smoke ./cmd/dlte-sim
	/tmp/dlte-sim-smoke -exp E4 -quick 2>/dev/null > /tmp/dlte-smoke-1.txt
	/tmp/dlte-sim-smoke -exp E4 -quick 2>/dev/null > /tmp/dlte-smoke-2.txt
	cmp /tmp/dlte-smoke-1.txt /tmp/dlte-smoke-2.txt
	rm -f /tmp/dlte-sim-smoke /tmp/dlte-smoke-1.txt /tmp/dlte-smoke-2.txt

check: vet build race bench smoke
