// Rural coverage: the paper's §3.2/§5 story in numbers. One basestation
// on a grain silo (or the town gym): how far does service reach on the
// LTE waveform in sub-GHz licensed bands versus WiFi in the ISM bands?
//
//	go run ./examples/rural-coverage
package main

import (
	"fmt"
	"os"

	"dlte/internal/metrics"
	"dlte/internal/radio"
)

func main() {
	fmt.Println("One tower, 20 m mast, rural terrain (Okumura-Hata open area).")
	fmt.Println("Downlink throughput by distance and technology:")
	fmt.Println()

	techs := []struct {
		name string
		band radio.Band
		wifi bool
	}{
		{"LTE band 31 (450 MHz)", radio.LTEBand31, false},
		{"LTE band 5 (850 MHz)", radio.LTEBand5, false},
		{"LTE CBRS (3.5 GHz)", radio.CBRS, false},
		{"WiFi 2.4 GHz", radio.ISM24, true},
	}
	distances := []float64{0.5, 1, 2, 5, 10, 20, 30}

	t := metrics.NewTable("downlink Mbps vs km", append([]string{"technology"}, kmHeaders(distances)...)...)
	for _, tech := range techs {
		row := make([]interface{}, 0, len(distances)+1)
		row = append(row, tech.name)
		for _, d := range distances {
			var bps float64
			if tech.wifi {
				l := radio.Link{Tx: radio.WiFiAccessPoint, Rx: radio.WiFiClient, Band: tech.band}
				bps = radio.WiFiThroughputBps(l.SNRdB(d), d, radio.WiFiDefaultMaxRangeKm)
			} else {
				l := radio.Link{Tx: radio.LTEBaseStation, Rx: radio.LTEHandset, Band: tech.band}
				bps = radio.LTEThroughputBps(l.SNRdB(d), tech.band.BandwidthHz(), true)
			}
			row = append(row, bps/1e6)
		}
		t.AddRow(row...)
	}
	t.Render(os.Stdout)

	fmt.Println()
	fmt.Println("Service range at 512 kbps (the 'usable Internet' floor):")
	for _, tech := range techs {
		tech := tech
		r := radio.MaxRangeKm(func(d float64) float64 {
			if tech.wifi {
				l := radio.Link{Tx: radio.WiFiAccessPoint, Rx: radio.WiFiClient, Band: tech.band}
				return radio.WiFiThroughputBps(l.SNRdB(d), d, radio.WiFiDefaultMaxRangeKm)
			}
			l := radio.Link{Tx: radio.LTEBaseStation, Rx: radio.LTEHandset, Band: tech.band}
			return radio.LTEThroughputBps(l.SNRdB(d), tech.band.BandwidthHz(), true)
		}, 512e3, radio.LTETimingAdvanceMaxKm)
		fmt.Printf("  %-24s %6.1f km\n", tech.name, r)
	}

	fmt.Println()
	fmt.Println("The asymmetric-uplink advantage (§3.2): at 5 km on band 5,")
	dl := radio.Link{Tx: radio.LTEBaseStation, Rx: radio.LTEHandset, Band: radio.LTEBand5}
	ul := radio.Link{Tx: radio.LTEHandset, Rx: radio.LTEBaseStation, Band: radio.LTEBand5, Uplink: true}
	fmt.Printf("  downlink SNR %.1f dB, uplink SNR %.1f dB — the tower's high\n", dl.SNRdB(5), ul.SNRdB(5))
	fmt.Println("  antenna and the handset's SC-FDMA (no PAPR backoff) keep the")
	fmt.Println("  uplink alive where a WiFi client would have given up.")
}

func kmHeaders(ds []float64) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = fmt.Sprintf("%gkm", d)
	}
	return out
}
