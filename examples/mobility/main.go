// Mobility: a client roams between two dLTE APs mid-session. With a
// migratory transport (the QUIC stand-in), the session glides across
// the IP address change; with a legacy TCP-like transport it resets and
// must reconnect — the paper's §4.2 argument made observable.
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"log"
	"time"

	"dlte/internal/auth"
	"dlte/internal/core"
	"dlte/internal/geo"
	"dlte/internal/radio"
	"dlte/internal/simnet"
	"dlte/internal/transport"
	"dlte/internal/x2"
)

func main() {
	for _, mode := range []transport.Mode{transport.Migratory, transport.Legacy} {
		fmt.Printf("=== transport: %s ===\n", mode)
		if err := run(mode); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}

func run(mode transport.Mode) error {
	s, err := core.NewWallScenario(simnet.Link{Latency: 10 * time.Millisecond}, 7)
	if err != nil {
		return err
	}
	defer s.Close()

	var aps []*core.AccessPoint
	for i := 0; i < 2; i++ {
		ap, err := s.AddAP(core.APConfig{
			ID:       fmt.Sprintf("ap%d", i+1),
			Position: geo.Pt(float64(i)*2500, 0),
			Band:     radio.LTEBand5, HeightM: 20, EIRPdBm: 58,
			Mode: x2.ModeCooperative, TAC: uint16(i + 1),
		})
		if err != nil {
			return err
		}
		aps = append(aps, ap)
	}

	// MST echo service on the Internet.
	ottHost, _ := s.Net.AddHost("ott")
	pc, err := ottHost.ListenPacket(7000)
	if err != nil {
		return err
	}
	srv := transport.NewServer(pc, transport.ServerConfig{
		Mode: mode,
		Handler: func(ss *transport.ServerSession) {
			for {
				b, err := ss.Recv(10 * time.Second)
				if err != nil {
					return
				}
				if ss.Send(b) != nil {
					return
				}
			}
		},
	})
	defer srv.Close()

	// Subscriber attaches at ap1; ap2 already has radio coverage of
	// the client's position.
	d, err := s.AddUE("walker", auth.IMSI("001010000000888"))
	if err != nil {
		return err
	}
	if _, err := aps[0].SyncSubscriberKeys(); err != nil {
		return err
	}
	pos := geo.Pt(1250, 0) // midway
	s.ConnectUERadio("walker", "ap1", pos)
	s.ConnectUERadio("walker", "ap2", pos)
	if _, err := d.Attach(aps[0].AirAddr(), 10*time.Second); err != nil {
		return err
	}
	fmt.Printf("attached at ap1, IP %s\n", d.IP())

	cli, err := transport.Dial(d.Bearer(), simnet.Addr{Host: "ott", Port: 7000},
		transport.DialConfig{Mode: mode, Timeout: 10 * time.Second})
	if err != nil {
		return err
	}
	defer cli.Close()
	ping := func(label string) {
		start := time.Now()
		if err := cli.Send([]byte(label)); err != nil {
			fmt.Printf("  %-16s send failed: %v\n", label, err)
			return
		}
		if _, err := cli.Recv(3 * time.Second); err != nil {
			fmt.Printf("  %-16s echo lost: %v\n", label, err)
			return
		}
		fmt.Printf("  %-16s echoed in %v\n", label, time.Since(start).Round(time.Millisecond))
	}
	ping("before-roam")

	// Roam: the source AP discovers its neighbor via the registry,
	// pre-provisions it over X2, and the UE re-attaches with a new
	// public address.
	if _, err := aps[0].DiscoverPeers(); err != nil {
		return err
	}
	if err := aps[0].Mobility.Prepare("ap2", d.Publication(), -103); err != nil {
		return err
	}
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	if _, err := d.Attach(aps[1].AirAddr(), 10*time.Second); err != nil {
		return err
	}
	fmt.Printf("roamed to ap2 in %v, new IP %s\n", time.Since(start).Round(time.Millisecond), d.IP())

	// Does the session survive?
	if mode == transport.Migratory {
		ping("after-roam")
		fmt.Println("  → the connection migrated: same session, new path (QUIC-style)")
		return nil
	}
	// Legacy: the server resets the address-bound connection.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if err := cli.Send([]byte("after-roam")); err != nil {
			fmt.Printf("  connection reset by server: %v\n", err)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cli.Close()
	re, err := transport.Dial(d.Bearer(), simnet.Addr{Host: "ott", Port: 7000},
		transport.DialConfig{Mode: mode, Timeout: 10 * time.Second})
	if err != nil {
		return err
	}
	defer re.Close()
	fmt.Println("  → application had to reconnect from scratch (TCP-style)")
	start = time.Now()
	re.Send([]byte("post-reconnect"))
	if _, err := re.Recv(3 * time.Second); err == nil {
		fmt.Printf("  post-reconnect echo in %v\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
