// Quickstart: the smallest complete dLTE network — one registry, one
// access point with its local core stub, one subscriber with a
// published open-SIM key, and traffic flowing straight from the AP to
// an Internet echo service.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"dlte/internal/auth"
	"dlte/internal/core"
	"dlte/internal/geo"
	"dlte/internal/ott"
	"dlte/internal/radio"
	"dlte/internal/simnet"
	"dlte/internal/x2"
)

func main() {
	// A simulated internetwork: every host pair defaults to a 10 ms
	// one-way WAN link. The scenario starts the global registry.
	s, err := core.NewWallScenario(simnet.Link{Latency: 10 * time.Millisecond}, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// One dLTE access point: eNodeB + local EPC stub + registry client
	// + X2 agent, all on the "gym" host (the paper's deployment site).
	ap, err := s.AddAP(core.APConfig{
		ID:       "gym",
		Position: geo.Pt(0, 0),
		Band:     radio.LTEBand5,
		HeightM:  20, EIRPdBm: 58,
		Mode: x2.ModeFairShare,
		TAC:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AP %q is up: clients attach at %s\n", ap.ID(), ap.AirAddr())

	// An OTT echo service somewhere on the Internet.
	ottHost, _ := s.Net.AddHost("echo.example")
	echo, err := ott.NewEchoServer(ottHost, 9000)
	if err != nil {
		log.Fatal(err)
	}
	defer echo.Close()

	// A subscriber: provision a SIM, publish its key to the registry
	// (the §4.2 open-SIM step), and give it a radio link 1.2 km out.
	d, err := s.AddUE("phone", auth.IMSI("001010000000777"))
	if err != nil {
		log.Fatal(err)
	}
	if n, err := ap.SyncSubscriberKeys(); err != nil || n != 1 {
		log.Fatalf("key sync: n=%d err=%v", n, err)
	}
	if err := s.ConnectUERadio("phone", "gym", geo.Pt(1200, 0)); err != nil {
		log.Fatal(err)
	}

	// Attach: real NAS over the air, real S1AP to the stub, mutual
	// Milenage AKA, GTP-U bearer — then direct breakout.
	res, err := d.Attach(ap.AirAddr(), 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attached in %v: IP=%s GUTI=%#x breakout=%v\n",
		res.Duration.Round(time.Millisecond), res.IP, res.GUTI, res.DirectBreakout)

	// Traffic: UE → AP → Internet, no EPC in the middle.
	rtt, err := d.Echo("echo.example:9000", []byte("hello dLTE"), 200*time.Millisecond, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("echo RTT: %v\n", rtt.Round(time.Millisecond))

	// Clean release.
	if err := d.Detach(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("detached cleanly — quickstart complete")
}
