// Spectrum sharing: two AP owners in one RF contention domain move
// from ignoring each other (selfish), to the registry-negotiated fair
// split, to full cooperation (paper §4.3). The X2 negotiation runs for
// real; the airtime consequences are evaluated on the LTE multi-cell
// simulator.
//
//	go run ./examples/spectrum-sharing
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"dlte/internal/core"
	"dlte/internal/geo"
	"dlte/internal/metrics"
	"dlte/internal/phy"
	"dlte/internal/radio"
	"dlte/internal/simnet"
	"dlte/internal/x2"
)

func main() {
	// --- The live signaling part: two APs discover each other through
	// the registry and negotiate shares over X2.
	s, err := core.NewWallScenario(simnet.Link{Latency: 10 * time.Millisecond}, 3)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	ap1, err := s.AddAP(core.APConfig{ID: "farm-coop", Position: geo.Pt(0, 0),
		Band: radio.LTEBand5, HeightM: 20, EIRPdBm: 58, Mode: x2.ModeFairShare, TAC: 1})
	if err != nil {
		log.Fatal(err)
	}
	ap2, err := s.AddAP(core.APConfig{ID: "school", Position: geo.Pt(1500, 0),
		Band: radio.LTEBand5, HeightM: 20, EIRPdBm: 58, Mode: x2.ModeFairShare, TAC: 2})
	if err != nil {
		log.Fatal(err)
	}

	domain, err := ap1.DiscoverPeers()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registry says the contention domain is %v\n", domain)

	share, err := ap1.NegotiateShares()
	if err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && ap2.Share() == 1 {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("negotiated over X2: farm-coop=%.2f school=%.2f\n\n", share, ap2.Share())

	// --- The airtime consequences, on the multi-cell simulator: eight
	// clients spread through the overlap corridor.
	users := buildUsers()
	t := metrics.NewTable("what each mode delivers (8 clients, overlapping cells)",
		"mode", "total Mbps", "worst user Mbps", "Jain fairness")
	for _, mode := range []phy.MultiCellMode{phy.Uncoordinated, phy.FairShare, phy.Cooperative} {
		r := phy.SimulateMultiCell(phy.MultiCellConfig{
			NumCells: 2, ChannelMHz: 10, Mode: mode,
			TTIs: 1500, HARQ: true, FastFading: true, Seed: 3,
		}, users)
		var vals []float64
		worst := -1.0
		for _, v := range r.PerUserBps {
			vals = append(vals, v)
			if worst < 0 || v < worst {
				worst = v
			}
		}
		t.AddRow(mode.String(), r.TotalBps/1e6, worst/1e6, metrics.JainIndex(vals))
	}
	t.Render(os.Stdout)
	fmt.Println("\nuncoordinated wins raw total when clients hug their own AP, but")
	fmt.Println("starves the overlap zone; the negotiated split rescues the worst")
	fmt.Println("user, and cooperation (joint assignment + load-aware shares)")
	fmt.Println("equalizes everyone at the same aggregate (§4.3).")
}

// buildUsers places clients between the sites, matching E5's geometry.
func buildUsers() []phy.MultiUser {
	band := radio.LTEBand5
	apX := []float64{0, 1500}
	mk := func(id string, x float64, home int) phy.MultiUser {
		u := phy.MultiUser{ID: id, Home: home,
			SINRInterfered: make([]float64, 2), SINROrthogonal: make([]float64, 2)}
		for c := 0; c < 2; c++ {
			dKm := x - apX[c]
			if dKm < 0 {
				dKm = -dKm
			}
			dKm /= 1000
			link := radio.Link{Tx: radio.LTEBaseStation, Rx: radio.LTEHandset, Band: band}
			u.SINROrthogonal[c] = link.SNRdB(dKm)
			other := 1 - c
			oKm := x - apX[other]
			if oKm < 0 {
				oKm = -oKm
			}
			iPow := link.RxPowerDBm(oKm / 1000)
			u.SINRInterfered[c] = link.SINRdB(dKm, iPow)
		}
		return u
	}
	var users []phy.MultiUser
	for i, x := range []float64{150, 350, 500, 650, 750, 800} {
		users = append(users, mk(fmt.Sprintf("a%d", i), x, 0))
	}
	users = append(users, mk("b0", 1300, 1), mk("b1", 780, 1))
	return users
}
