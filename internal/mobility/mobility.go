// Package mobility owns the dLTE handover arc end to end: the RSRP
// trigger that decides a roam is due (trigger.go), the X2
// prepare/ack/complete choreography between the source and target APs,
// the per-handover state machine that keeps failure paths (rejection,
// peer death, duplicate completes) from stranding sessions, and the
// measurement seam (meter.go) that records interruption windows and
// signaling bytes for every handover the plane touches.
//
// Before this package the arc was smeared across layers: the X2
// dispatch lived in core's coordinator, the prepared-context table in
// the EPC's session shards, the session-FSM transition in
// epc.CompleteHandover, and nothing tracked the source side's view of
// an in-flight handover at all (an ack could arrive and be dropped on
// the floor). The plane pulls those pieces behind one API: core
// injects its X2 agent and EPC stub via the small Sender/Core
// interfaces, and every handover-related X2 message funnels through
// HandleX2.
//
// Ownership rules (DESIGN.md §12): the plane owns handover *state* —
// who is preparing, prepared, rejected, completed — and the
// measurement records. It does not own protocol material: key import
// and session teardown stay with the EPC stub (reached through the
// Core interface), and wire encoding stays with x2. The session FSM
// remains the single authority on lifecycle legality; the plane only
// asks the EPC to fire events and treats a refusal as "already in a
// legal terminal state".
package mobility

import (
	"fmt"
	"sync"

	"dlte/internal/auth"
	"dlte/internal/x2"
)

// State is the source side's view of one UE's in-flight handover.
type State uint8

// Handover states. The happy path is Idle → Preparing → Prepared →
// Completed; Rejected is the target's admission refusal and Aborted is
// the source giving up (target unreachable or dead mid-prepare).
const (
	StateIdle State = iota
	StatePreparing
	StatePrepared
	StateRejected
	StateCompleted
	StateAborted
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "IDLE"
	case StatePreparing:
		return "PREPARING"
	case StatePrepared:
		return "PREPARED"
	case StateRejected:
		return "REJECTED"
	case StateCompleted:
		return "COMPLETED"
	case StateAborted:
		return "ABORTED"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Sender is the X2 half the plane drives; *x2.Agent satisfies it.
type Sender interface {
	Send(peer string, msg x2.Message) error
}

// Core is what the plane needs from the serving EPC stub; *epc.Core
// satisfies it. The plane never reaches deeper: session teardown
// legality is the session FSM's job, behind CompleteHandover.
type Core interface {
	// ImportPublishedKey admits a pushed open-SIM publication so the
	// roaming UE's re-attach here authenticates locally.
	ImportPublishedKey(pub auth.KeyPublication) error
	// CompleteHandover ends the local lifecycle of a UE that landed at
	// a peer AP (Attached → Detached via the session FSM) and tears
	// down its gateway session. Must be idempotent: a duplicate or
	// late complete finds no session and is a no-op.
	CompleteHandover(imsi string) error
}

// AdmitFunc decides target-side handover admission. Returning false
// acks the request with Accepted=false and the given cause.
type AdmitFunc func(imsi, sourceAP string, rsrpDBm float64) (ok bool, cause uint8)

// Config shapes a plane.
type Config struct {
	// APID is this AP's identity (the SourceAP field of outbound
	// handover requests).
	APID string
	// X2 sends peer messages; Core reaches the serving EPC stub.
	X2   Sender
	Core Core
	// Admit is the target-side admission policy; nil accepts everyone
	// (dLTE's default: always room for a re-attaching client).
	Admit AdmitFunc
	// Trigger governs RSRP-based handover decisions; the zero value is
	// replaced by DefaultTrigger.
	Trigger Trigger
	// Meter receives this plane's measurement records; nil allocates a
	// private one. Experiments share one meter across planes so a
	// handover's X2 bytes (recorded at the source) and its
	// interruption window (recorded at the UE seam) land in one place.
	Meter *Meter
}

// outbound is the source side's record of one UE's in-flight handover.
type outbound struct {
	target string
	state  State
	cause  uint8 // target's rejection cause, when state == StateRejected
}

// Plane is one AP's mobility plane.
type Plane struct {
	cfg     Config
	trigger Trigger
	meter   *Meter

	mu       sync.Mutex
	outbound map[string]*outbound // IMSI → source-side handover state
	prepared map[string]string    // IMSI → source AP (target-side prepared contexts)
}

// NewPlane builds a plane from cfg.
func NewPlane(cfg Config) *Plane {
	trig := cfg.Trigger
	if trig == (Trigger{}) {
		trig = DefaultTrigger()
	}
	m := cfg.Meter
	if m == nil {
		m = NewMeter()
	}
	return &Plane{
		cfg:      cfg,
		trigger:  trig,
		meter:    m,
		outbound: make(map[string]*outbound),
		prepared: make(map[string]string),
	}
}

// Meter exposes the plane's measurement seam.
func (p *Plane) Meter() *Meter { return p.meter }

// Trigger exposes the plane's RSRP decision policy.
func (p *Plane) Trigger() Trigger { return p.trigger }

// SetAdmit replaces the target-side admission policy (tests inject
// rejection here).
func (p *Plane) SetAdmit(f AdmitFunc) {
	p.mu.Lock()
	p.cfg.Admit = f
	p.mu.Unlock()
}

// wireSize reports the framed on-the-wire size of an X2 message — what
// the agent's traffic meter would charge for sending it.
func wireSize(msg x2.Message) int {
	b, err := x2.Marshal(msg)
	if err != nil {
		return 0
	}
	return len(b) + 4 // frame header
}

// Prepare runs the source side of handover preparation: push the
// roaming UE's published key to the target (so its re-attach there is
// purely local) and request admission. The ack arrives asynchronously
// through HandleX2; poll State. Any previous record for this IMSI is
// superseded (a re-prepare after rejection or abort is legal).
func (p *Plane) Prepare(targetAP string, pub auth.KeyPublication, rsrpDBm float64) error {
	imsi := string(pub.IMSI)
	p.mu.Lock()
	p.outbound[imsi] = &outbound{target: targetAP, state: StatePreparing}
	p.mu.Unlock()
	p.meter.Begin(imsi, p.cfg.APID, targetAP)

	push := &x2.UEContextPush{IMSI: imsi, K: pub.K, OPc: pub.OPc}
	req := &x2.HandoverRequest{IMSI: imsi, SourceAP: p.cfg.APID, RSRPdBm: int32(rsrpDBm * 100)}
	if err := p.cfg.X2.Send(targetAP, push); err != nil {
		p.abortLocked(imsi)
		return fmt.Errorf("mobility: context push to %s: %w", targetAP, err)
	}
	p.meter.AddX2(imsi, wireSize(push))
	if err := p.cfg.X2.Send(targetAP, req); err != nil {
		p.abortLocked(imsi)
		return fmt.Errorf("mobility: handover request to %s: %w", targetAP, err)
	}
	p.meter.AddX2(imsi, wireSize(req))
	return nil
}

// Abort gives up on an in-flight preparation (target unreachable, or
// the source decided against the roam). Completed/rejected records are
// left alone.
func (p *Plane) Abort(imsi string) { p.abortLocked(imsi) }

func (p *Plane) abortLocked(imsi string) {
	p.mu.Lock()
	if ho := p.outbound[imsi]; ho != nil && (ho.state == StatePreparing || ho.state == StatePrepared) {
		ho.state = StateAborted
	}
	p.mu.Unlock()
}

// State reports the source side's view of the named UE's handover.
func (p *Plane) State(imsi string) State {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ho := p.outbound[imsi]; ho != nil {
		return ho.state
	}
	return StateIdle
}

// RejectionCause reports the target's cause octet for a rejected
// handover (0 unless State is StateRejected).
func (p *Plane) RejectionCause(imsi string) uint8 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ho := p.outbound[imsi]; ho != nil && ho.state == StateRejected {
		return ho.cause
	}
	return 0
}

// PreparedBy reports which peer AP (if any) pushed the named UE's
// context here — the target-side table that used to live on the EPC's
// session shards.
func (p *Plane) PreparedBy(imsi string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	src, ok := p.prepared[imsi]
	return src, ok
}

// NotifyComplete runs the target side's final step: tell the source AP
// its former client landed here, and retire the prepared-context
// entry. A send failure (source died mid-handover) still retires the
// entry — the UE is attached here regardless, and the source's own
// release path owns its cleanup.
func (p *Plane) NotifyComplete(sourceAP, imsi string) error {
	p.mu.Lock()
	delete(p.prepared, imsi)
	p.mu.Unlock()
	msg := &x2.HandoverComplete{IMSI: imsi, TargetAP: p.cfg.APID}
	if err := p.cfg.X2.Send(sourceAP, msg); err != nil {
		return fmt.Errorf("mobility: handover complete to %s: %w", sourceAP, err)
	}
	return nil
}

// HandleX2 dispatches one inbound peer message if it belongs to the
// mobility plane, reporting whether it was consumed. Core's X2 handler
// funnels every message through here first.
func (p *Plane) HandleX2(peerID string, msg x2.Message) bool {
	switch m := msg.(type) {
	case *x2.UEContextPush:
		p.handlePush(peerID, m)
	case *x2.HandoverRequest:
		p.handleRequest(peerID, m)
	case *x2.HandoverRequestAck:
		p.handleAck(peerID, m)
	case *x2.HandoverComplete:
		p.handleComplete(peerID, m)
	default:
		return false
	}
	return true
}

// handlePush is the target side of preparation: import the key so the
// re-attach authenticates locally, and remember who prepared it.
func (p *Plane) handlePush(peerID string, m *x2.UEContextPush) {
	pub := auth.KeyPublication{IMSI: auth.IMSI(m.IMSI), K: m.K, OPc: m.OPc}
	if err := p.cfg.Core.ImportPublishedKey(pub); err != nil {
		return // unusable context: never record it as prepared
	}
	p.mu.Lock()
	p.prepared[m.IMSI] = peerID
	p.mu.Unlock()
}

// handleRequest is target-side admission. dLTE's default policy always
// has room for a re-attaching client; an injected Admit can refuse,
// which also retires any prepared context so a rejected UE cannot look
// locally provisioned.
func (p *Plane) handleRequest(peerID string, m *x2.HandoverRequest) {
	p.mu.Lock()
	admit := p.cfg.Admit
	p.mu.Unlock()
	ok, cause := true, uint8(0)
	if admit != nil {
		ok, cause = admit(m.IMSI, m.SourceAP, float64(m.RSRPdBm)/100)
	}
	if !ok {
		p.mu.Lock()
		delete(p.prepared, m.IMSI)
		p.mu.Unlock()
	}
	p.cfg.X2.Send(peerID, &x2.HandoverRequestAck{IMSI: m.IMSI, Accepted: ok, Cause: cause})
}

// handleAck is the source side learning the target's admission
// decision. Acks for unknown or already-settled handovers are ignored
// (a late ack after an abort must not resurrect the record).
func (p *Plane) handleAck(peerID string, m *x2.HandoverRequestAck) {
	p.mu.Lock()
	ho := p.outbound[m.IMSI]
	if ho == nil || ho.target != peerID || ho.state != StatePreparing {
		p.mu.Unlock()
		return
	}
	if m.Accepted {
		ho.state = StatePrepared
	} else {
		ho.state = StateRejected
		ho.cause = m.Cause
	}
	p.mu.Unlock()
	p.meter.AddX2(m.IMSI, wireSize(m))
}

// handleComplete is the source side's cleanup: the UE landed at the
// target, so the local lifecycle ends through the session FSM and the
// gateway session goes with it. Duplicates are deduped here (the EPC
// call is idempotent too, but a deduped duplicate must not re-charge
// the meter).
func (p *Plane) handleComplete(peerID string, m *x2.HandoverComplete) {
	p.mu.Lock()
	ho := p.outbound[m.IMSI]
	if ho != nil && ho.state == StateCompleted {
		p.mu.Unlock()
		return
	}
	if ho == nil {
		// Target-initiated complete without a local prepare (the UE
		// roamed without warning); record it so a duplicate dedupes.
		ho = &outbound{target: peerID}
		p.outbound[m.IMSI] = ho
	}
	ho.state = StateCompleted
	p.mu.Unlock()
	p.meter.AddX2(m.IMSI, wireSize(m))
	p.cfg.Core.CompleteHandover(m.IMSI)
}
