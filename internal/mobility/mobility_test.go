package mobility

import (
	"errors"
	"testing"
	"time"

	"dlte/internal/auth"
	"dlte/internal/x2"
)

// fakeSender records sent X2 messages and can be told to fail (a dead
// peer link).
type fakeSender struct {
	sent []struct {
		peer string
		msg  x2.Message
	}
	err error
}

func (f *fakeSender) Send(peer string, msg x2.Message) error {
	if f.err != nil {
		return f.err
	}
	f.sent = append(f.sent, struct {
		peer string
		msg  x2.Message
	}{peer, msg})
	return nil
}

// fakeCore records imports and completes.
type fakeCore struct {
	imported  []string
	completed []string
	importErr error
}

func (f *fakeCore) ImportPublishedKey(pub auth.KeyPublication) error {
	if f.importErr != nil {
		return f.importErr
	}
	f.imported = append(f.imported, string(pub.IMSI))
	return nil
}

func (f *fakeCore) CompleteHandover(imsi string) error {
	f.completed = append(f.completed, imsi)
	return nil
}

func testPub(imsi string) auth.KeyPublication {
	return auth.KeyPublication{IMSI: auth.IMSI(imsi), K: make([]byte, 16), OPc: make([]byte, 16)}
}

func newTestPlane(id string) (*Plane, *fakeSender, *fakeCore) {
	snd := &fakeSender{}
	core := &fakeCore{}
	p := NewPlane(Config{APID: id, X2: snd, Core: core})
	return p, snd, core
}

func TestPrepareHappyPath(t *testing.T) {
	p, snd, _ := newTestPlane("ap1")
	if err := p.Prepare("ap2", testPub("001010000000001"), -98.5); err != nil {
		t.Fatal(err)
	}
	if got := p.State("001010000000001"); got != StatePreparing {
		t.Fatalf("state after Prepare = %v, want PREPARING", got)
	}
	if len(snd.sent) != 2 {
		t.Fatalf("sent %d messages, want push+request", len(snd.sent))
	}
	if _, ok := snd.sent[0].msg.(*x2.UEContextPush); !ok {
		t.Errorf("first message = %T, want UEContextPush", snd.sent[0].msg)
	}
	req, ok := snd.sent[1].msg.(*x2.HandoverRequest)
	if !ok {
		t.Fatalf("second message = %T, want HandoverRequest", snd.sent[1].msg)
	}
	if req.SourceAP != "ap1" || req.RSRPdBm != -9850 {
		t.Errorf("request = %+v", req)
	}

	// Accepted ack from the target moves the record to PREPARED.
	p.HandleX2("ap2", &x2.HandoverRequestAck{IMSI: "001010000000001", Accepted: true})
	if got := p.State("001010000000001"); got != StatePrepared {
		t.Fatalf("state after ack = %v, want PREPARED", got)
	}
}

func TestPrepareRejected(t *testing.T) {
	p, _, _ := newTestPlane("ap1")
	if err := p.Prepare("ap2", testPub("001010000000002"), -100); err != nil {
		t.Fatal(err)
	}
	p.HandleX2("ap2", &x2.HandoverRequestAck{IMSI: "001010000000002", Accepted: false, Cause: 7})
	if got := p.State("001010000000002"); got != StateRejected {
		t.Fatalf("state = %v, want REJECTED", got)
	}
	if c := p.RejectionCause("001010000000002"); c != 7 {
		t.Fatalf("cause = %d, want 7", c)
	}
	// A re-prepare after rejection starts a fresh arc.
	if err := p.Prepare("ap3", testPub("001010000000002"), -100); err != nil {
		t.Fatal(err)
	}
	if got := p.State("001010000000002"); got != StatePreparing {
		t.Fatalf("state after re-prepare = %v, want PREPARING", got)
	}
}

func TestPrepareSendFailureAborts(t *testing.T) {
	p, snd, _ := newTestPlane("ap1")
	snd.err = errors.New("peer unreachable")
	if err := p.Prepare("ap2", testPub("001010000000003"), -100); err == nil {
		t.Fatal("Prepare with dead link returned nil")
	}
	if got := p.State("001010000000003"); got != StateAborted {
		t.Fatalf("state = %v, want ABORTED", got)
	}
}

func TestLateAckAfterAbortIgnored(t *testing.T) {
	p, _, _ := newTestPlane("ap1")
	if err := p.Prepare("ap2", testPub("001010000000004"), -100); err != nil {
		t.Fatal(err)
	}
	p.Abort("001010000000004")
	p.HandleX2("ap2", &x2.HandoverRequestAck{IMSI: "001010000000004", Accepted: true})
	if got := p.State("001010000000004"); got != StateAborted {
		t.Fatalf("late ack resurrected an aborted handover: %v", got)
	}
}

func TestAckFromWrongPeerIgnored(t *testing.T) {
	p, _, _ := newTestPlane("ap1")
	if err := p.Prepare("ap2", testPub("001010000000005"), -100); err != nil {
		t.Fatal(err)
	}
	p.HandleX2("ap3", &x2.HandoverRequestAck{IMSI: "001010000000005", Accepted: true})
	if got := p.State("001010000000005"); got != StatePreparing {
		t.Fatalf("ack from non-target changed state to %v", got)
	}
}

func TestTargetSidePreparedAndAdmission(t *testing.T) {
	p, snd, core := newTestPlane("ap2")
	pub := testPub("001010000000006")
	p.HandleX2("ap1", &x2.UEContextPush{IMSI: string(pub.IMSI), K: pub.K, OPc: pub.OPc})
	if len(core.imported) != 1 {
		t.Fatalf("imports = %v", core.imported)
	}
	if src, ok := p.PreparedBy("001010000000006"); !ok || src != "ap1" {
		t.Fatalf("PreparedBy = %q, %v", src, ok)
	}
	p.HandleX2("ap1", &x2.HandoverRequest{IMSI: "001010000000006", SourceAP: "ap1", RSRPdBm: -10000})
	if len(snd.sent) != 1 {
		t.Fatalf("sent %d, want one ack", len(snd.sent))
	}
	ack := snd.sent[0].msg.(*x2.HandoverRequestAck)
	if !ack.Accepted {
		t.Fatal("default admission rejected")
	}
}

func TestAdmissionRejectRetiresPreparedContext(t *testing.T) {
	p, snd, _ := newTestPlane("ap2")
	p.SetAdmit(func(imsi, sourceAP string, rsrpDBm float64) (bool, uint8) {
		if rsrpDBm < -105 {
			return false, 9
		}
		return true, 0
	})
	pub := testPub("001010000000007")
	p.HandleX2("ap1", &x2.UEContextPush{IMSI: string(pub.IMSI), K: pub.K, OPc: pub.OPc})
	p.HandleX2("ap1", &x2.HandoverRequest{IMSI: string(pub.IMSI), SourceAP: "ap1", RSRPdBm: -11000})
	ack := snd.sent[len(snd.sent)-1].msg.(*x2.HandoverRequestAck)
	if ack.Accepted || ack.Cause != 9 {
		t.Fatalf("ack = %+v, want rejection cause 9", ack)
	}
	if _, ok := p.PreparedBy(string(pub.IMSI)); ok {
		t.Fatal("rejected UE still looks prepared at the target")
	}
}

func TestFailedImportNeverPrepared(t *testing.T) {
	p, _, core := newTestPlane("ap2")
	core.importErr = errors.New("bad key material")
	pub := testPub("001010000000008")
	p.HandleX2("ap1", &x2.UEContextPush{IMSI: string(pub.IMSI), K: pub.K, OPc: pub.OPc})
	if _, ok := p.PreparedBy(string(pub.IMSI)); ok {
		t.Fatal("unusable context recorded as prepared")
	}
}

func TestDuplicateCompleteDeduped(t *testing.T) {
	p, _, core := newTestPlane("ap1")
	if err := p.Prepare("ap2", testPub("001010000000009"), -100); err != nil {
		t.Fatal(err)
	}
	p.HandleX2("ap2", &x2.HandoverRequestAck{IMSI: "001010000000009", Accepted: true})
	done := &x2.HandoverComplete{IMSI: "001010000000009", TargetAP: "ap2"}
	p.HandleX2("ap2", done)
	p.HandleX2("ap2", done) // duplicate
	if len(core.completed) != 1 {
		t.Fatalf("CompleteHandover called %d times, want 1", len(core.completed))
	}
	if got := p.State("001010000000009"); got != StateCompleted {
		t.Fatalf("state = %v, want COMPLETED", got)
	}
	// The meter charged push + request + ack + exactly one complete.
	recs := p.Meter().Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	pub := testPub("001010000000009")
	want := uint64(wireSize(&x2.UEContextPush{IMSI: "001010000000009", K: pub.K, OPc: pub.OPc}) +
		wireSize(&x2.HandoverRequest{IMSI: "001010000000009", SourceAP: "ap1", RSRPdBm: -10000}) +
		wireSize(&x2.HandoverRequestAck{IMSI: "001010000000009", Accepted: true}) +
		wireSize(done))
	if recs[0].X2Bytes != want {
		t.Fatalf("X2Bytes = %d, want %d (duplicate complete must not re-charge)", recs[0].X2Bytes, want)
	}
}

func TestUnannouncedCompleteStillCleansUp(t *testing.T) {
	// The UE roamed without the source preparing anything (registry-only
	// discovery): the complete must still end the local lifecycle.
	p, _, core := newTestPlane("ap1")
	p.HandleX2("ap2", &x2.HandoverComplete{IMSI: "001010000000010", TargetAP: "ap2"})
	if len(core.completed) != 1 {
		t.Fatalf("completed = %v", core.completed)
	}
	if got := p.State("001010000000010"); got != StateCompleted {
		t.Fatalf("state = %v", got)
	}
	// And it dedupes like any other complete.
	p.HandleX2("ap2", &x2.HandoverComplete{IMSI: "001010000000010", TargetAP: "ap2"})
	if len(core.completed) != 1 {
		t.Fatal("duplicate unannounced complete re-fired the core")
	}
}

func TestNotifyCompleteRetiresEvenOnSendFailure(t *testing.T) {
	p, snd, core := newTestPlane("ap2")
	pub := testPub("001010000000011")
	p.HandleX2("ap1", &x2.UEContextPush{IMSI: string(pub.IMSI), K: pub.K, OPc: pub.OPc})
	_ = core
	snd.err = errors.New("source died mid-handover")
	if err := p.NotifyComplete("ap1", string(pub.IMSI)); err == nil {
		t.Fatal("NotifyComplete to a dead source returned nil")
	}
	if _, ok := p.PreparedBy(string(pub.IMSI)); ok {
		t.Fatal("prepared entry survived a failed notify — stranded context")
	}
}

func TestHandleX2PassesThroughForeignMessages(t *testing.T) {
	p, _, _ := newTestPlane("ap1")
	if p.HandleX2("ap2", &x2.LoadInformation{}) {
		t.Fatal("mobility plane consumed a load report")
	}
}

func TestTriggerDecide(t *testing.T) {
	tr := DefaultTrigger() // 3 dB hysteresis, -110 floor
	cases := []struct {
		serving, neighbor float64
		want              bool
	}{
		{-90, -86, true},   // neighbour clears hysteresis
		{-90, -88, false},  // within hysteresis: hold
		{-90, -95, false},  // weaker neighbour
		{-112, -111, true}, // below floor: any improvement goes
		{-112, -113, false},
		{-110, -109, false}, // at the floor (not below): hysteresis rules
	}
	for _, c := range cases {
		if got := tr.Decide(c.serving, c.neighbor); got != c.want {
			t.Errorf("Decide(%v, %v) = %v, want %v", c.serving, c.neighbor, got, c.want)
		}
	}
}

func TestBestCell(t *testing.T) {
	if got := BestCell(nil); got != -1 {
		t.Errorf("BestCell(nil) = %d", got)
	}
	if got := BestCell([]float64{-100, -90, -95}); got != 1 {
		t.Errorf("BestCell = %d, want 1", got)
	}
	if got := BestCell([]float64{-90, -90}); got != 0 {
		t.Errorf("tie should break low: %d", got)
	}
}

func TestMeterLifecycle(t *testing.T) {
	m := NewMeter()
	base := time.Unix(1000, 0)
	m.Begin("imsi-a", "ap1", "ap2")
	m.AddX2("imsi-a", 40)
	m.AddNAS("imsi-a", 200)
	m.InterruptionStart("imsi-a", base)
	m.InterruptionEnd("imsi-a", base.Add(30*time.Millisecond))

	recs := m.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Source != "ap1" || r.Target != "ap2" {
		t.Errorf("record endpoints = %q→%q", r.Source, r.Target)
	}
	if r.Interruption != 30*time.Millisecond {
		t.Errorf("interruption = %v", r.Interruption)
	}
	if r.SignalingBytes() != 240 {
		t.Errorf("signaling = %d, want 240", r.SignalingBytes())
	}

	// A second handover for the same IMSI rolls the first into done.
	m.Begin("imsi-a", "ap2", "ap3")
	m.AddX2("imsi-a", 10)
	recs = m.Records()
	if len(recs) != 2 {
		t.Fatalf("records after second Begin = %d", len(recs))
	}
	if recs[0].Target != "ap2" || recs[1].Target != "ap3" {
		t.Errorf("record order wrong: %q then %q", recs[0].Target, recs[1].Target)
	}
	if recs[1].X2Bytes != 10 {
		t.Errorf("second record X2 = %d", recs[1].X2Bytes)
	}

	// Charges to unknown IMSIs are dropped, not panicking.
	m.AddX2("imsi-z", 5)
	m.AddNAS("imsi-z", 5)
	m.InterruptionStart("imsi-z", base)
	m.InterruptionEnd("imsi-z", base)
	if got := len(m.Records()); got != 2 {
		t.Fatalf("unknown-IMSI charges created records: %d", got)
	}
}
