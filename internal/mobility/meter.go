package mobility

import (
	"sync"
	"time"
)

// Record is one handover's measurements: the interruption window
// (break at the source → registered at the target, stamped at the UE
// seam) and the signaling spent on it, split into X2 choreography
// bytes (stamped by the source plane) and NAS re-attach bytes (stamped
// by the UE seam).
type Record struct {
	IMSI, Source, Target string
	// Start/End bound the service interruption; Interruption is their
	// difference (0 until both are stamped).
	Start, End   time.Time
	Interruption time.Duration
	// X2Bytes is the framed wire size of the choreography (context
	// push, request, ack, complete); NASBytes is the air-interface
	// signaling the re-attach cost.
	X2Bytes, NASBytes uint64
}

// SignalingBytes is the handover's total signaling cost.
func (r Record) SignalingBytes() uint64 { return r.X2Bytes + r.NASBytes }

// Meter is the mobility plane's measurement seam. One meter can be
// shared by many planes and the UE-side instrumentation: records are
// keyed by IMSI, and Begin rolls the previous record for an IMSI into
// the finished list, so per-UE sequences of handovers (a corridor
// drive) each get their own record.
//
// All methods are safe for concurrent use. Timestamps come from the
// caller's clock (virtual in simulation), so records are deterministic
// whenever the world is.
type Meter struct {
	mu   sync.Mutex
	open map[string]*Record
	done []Record
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{open: make(map[string]*Record)} }

// Begin opens a fresh record for imsi's next handover, rolling any
// previous open record into the finished list.
func (m *Meter) Begin(imsi, source, target string) {
	m.mu.Lock()
	if prev := m.open[imsi]; prev != nil {
		m.done = append(m.done, *prev)
	}
	m.open[imsi] = &Record{IMSI: imsi, Source: source, Target: target}
	m.mu.Unlock()
}

// AddX2 charges framed X2 choreography bytes to imsi's open record.
func (m *Meter) AddX2(imsi string, n int) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	if r := m.open[imsi]; r != nil {
		r.X2Bytes += uint64(n)
	}
	m.mu.Unlock()
}

// AddNAS charges air-interface signaling bytes to imsi's open record.
func (m *Meter) AddNAS(imsi string, n uint64) {
	m.mu.Lock()
	if r := m.open[imsi]; r != nil {
		r.NASBytes += n
	}
	m.mu.Unlock()
}

// InterruptionStart stamps the break instant (the UE dropping its
// source-AP radio link).
func (m *Meter) InterruptionStart(imsi string, at time.Time) {
	m.mu.Lock()
	if r := m.open[imsi]; r != nil {
		r.Start = at
	}
	m.mu.Unlock()
}

// InterruptionEnd stamps the recovery instant (registration complete
// at the target) and fixes the record's Interruption.
func (m *Meter) InterruptionEnd(imsi string, at time.Time) {
	m.mu.Lock()
	if r := m.open[imsi]; r != nil {
		r.End = at
		if !r.Start.IsZero() && at.After(r.Start) {
			r.Interruption = at.Sub(r.Start)
		}
	}
	m.mu.Unlock()
}

// Records snapshots every record: finished ones in Begin order, then
// the still-open ones in a deterministic (IMSI-sorted) order.
func (m *Meter) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, 0, len(m.done)+len(m.open))
	out = append(out, m.done...)
	// Sort open records by IMSI without importing sort for two maps'
	// worth of entries: insertion sort is fine at these sizes.
	openKeys := make([]string, 0, len(m.open))
	for k := range m.open {
		openKeys = append(openKeys, k)
	}
	for i := 1; i < len(openKeys); i++ {
		for j := i; j > 0 && openKeys[j] < openKeys[j-1]; j-- {
			openKeys[j], openKeys[j-1] = openKeys[j-1], openKeys[j]
		}
	}
	for _, k := range openKeys {
		out = append(out, *m.open[k])
	}
	return out
}
