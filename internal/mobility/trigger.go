package mobility

// Trigger is the RSRP handover decision policy — the 3GPP A3 event
// ("neighbour better than serving by a hysteresis") with an A2-style
// floor ("serving below threshold: take any usable neighbour"). It is
// a pure value type: experiments, the phy-driven spectrum modes, and
// the scenario compiler all evaluate the same policy, so "when does a
// dLTE client roam" has exactly one definition.
type Trigger struct {
	// HysteresisDB is how much stronger (dB) a neighbour must be
	// before a roam is worth its interruption.
	HysteresisDB float64
	// MinServingDBm is the serving-cell RSRP floor: below it, any
	// neighbour that beats the serving cell at all triggers a roam.
	MinServingDBm float64
}

// DefaultTrigger is the policy the experiments use: 3 dB hysteresis
// (the common A3 default) and a −110 dBm serving floor (near the edge
// of usable LTE coverage).
func DefaultTrigger() Trigger {
	return Trigger{HysteresisDB: 3, MinServingDBm: -110}
}

// Decide reports whether a UE at servingDBm should hand over to a
// neighbour heard at neighborDBm.
func (t Trigger) Decide(servingDBm, neighborDBm float64) bool {
	if neighborDBm >= servingDBm+t.HysteresisDB {
		return true
	}
	return servingDBm < t.MinServingDBm && neighborDBm > servingDBm
}

// BestCell reports the index of the strongest RSRP in cells, or -1 for
// an empty slice. Ties break toward the lower index, so the choice is
// deterministic.
func BestCell(cellsDBm []float64) int {
	best := -1
	for i, v := range cellsDBm {
		if best < 0 || v > cellsDBm[best] {
			best = i
		}
	}
	return best
}
