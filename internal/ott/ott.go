// Package ott implements the over-the-top services the dLTE paper
// delegates user-level capabilities to (§4.2): since a dLTE AP
// provides nothing but an Internet connection, identity, messaging,
// voice, and continuity all live at the endpoints and in services like
// these. The package provides an echo/RTT server (the measurement
// workhorse), a token-based identity provider (the OAuth/FIDO2
// stand-in), and a rendezvous relay (the WhatsApp-style message/voice
// stand-in used by the Papua deployment experiment, E8).
package ott

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"dlte/internal/simnet"
)

// EchoServer reflects every datagram back to its sender. Experiments
// use it to measure end-to-end RTT through whichever data path the
// architecture under test provides.
type EchoServer struct {
	pc      *simnet.PacketConn
	done    chan struct{}
	once    sync.Once
	echoed  sync.Map // from-addr string → count (for assertions)
	counter int64
	mu      sync.Mutex
}

// NewEchoServer starts an echo server on host:port.
func NewEchoServer(host *simnet.Host, port int) (*EchoServer, error) {
	pc, err := host.ListenPacket(port)
	if err != nil {
		return nil, fmt.Errorf("ott: echo: %w", err)
	}
	s := &EchoServer{pc: pc, done: make(chan struct{})}
	pc.Clock().Go(s.loop)
	return s, nil
}

func (s *EchoServer) loop() {
	clk := s.pc.Clock()
	buf := make([]byte, 64*1024)
	for {
		select {
		case <-s.done:
			return
		default:
		}
		s.pc.SetReadDeadline(clk.Now().Add(200 * time.Millisecond))
		n, from, err := s.pc.ReadFrom(buf)
		if err != nil {
			continue
		}
		s.mu.Lock()
		s.counter++
		s.mu.Unlock()
		if c, ok := s.echoed.Load(from.String()); ok {
			s.echoed.Store(from.String(), c.(int)+1)
		} else {
			s.echoed.Store(from.String(), 1)
		}
		s.pc.WriteTo(buf[:n], from)
	}
}

// Count reports total datagrams echoed.
func (s *EchoServer) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counter
}

// Close stops the server.
func (s *EchoServer) Close() {
	s.once.Do(func() {
		close(s.done)
		s.pc.Close()
	})
}

// --- Identity provider --------------------------------------------------

// IdentityProvider issues and verifies bearer tokens: the OTT identity
// layer (OAuth / FIDO2 stand-in) that replaces network-level identity
// in dLTE. Tokens are HMAC-signed and survive IP address changes —
// which is precisely why endpoint mobility works without the network's
// help.
type IdentityProvider struct {
	secret []byte
	mu     sync.Mutex
	users  map[string]string // user → password
}

// NewIdentityProvider creates a provider with the given signing secret.
func NewIdentityProvider(secret []byte) *IdentityProvider {
	return &IdentityProvider{secret: secret, users: make(map[string]string)}
}

// Register adds a user credential.
func (p *IdentityProvider) Register(user, password string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.users[user] = password
}

// Identity errors.
var (
	ErrBadCredentials = errors.New("ott: bad credentials")
	ErrBadToken       = errors.New("ott: invalid token")
	ErrTokenExpired   = errors.New("ott: token expired")
)

// Login verifies credentials and issues a token valid for ttl from
// now.
func (p *IdentityProvider) Login(user, password string, now time.Time, ttl time.Duration) (string, error) {
	p.mu.Lock()
	stored, ok := p.users[user]
	p.mu.Unlock()
	if !ok || stored != password {
		return "", ErrBadCredentials
	}
	exp := now.Add(ttl).Unix()
	payload := fmt.Sprintf("%s|%d", user, exp)
	return payload + "|" + p.sign(payload), nil
}

// Verify validates a token and returns the user it names. Tokens are
// independent of the client's current IP address.
func (p *IdentityProvider) Verify(token string, now time.Time) (string, error) {
	parts := strings.Split(token, "|")
	if len(parts) != 3 {
		return "", ErrBadToken
	}
	payload := parts[0] + "|" + parts[1]
	if !hmac.Equal([]byte(p.sign(payload)), []byte(parts[2])) {
		return "", ErrBadToken
	}
	var exp int64
	if _, err := fmt.Sscanf(parts[1], "%d", &exp); err != nil {
		return "", ErrBadToken
	}
	if now.Unix() > exp {
		return "", ErrTokenExpired
	}
	return parts[0], nil
}

func (p *IdentityProvider) sign(payload string) string {
	mac := hmac.New(sha256.New, p.secret)
	mac.Write([]byte(payload))
	return hex.EncodeToString(mac.Sum(nil)[:12])
}

// --- Rendezvous relay ----------------------------------------------------

// Relay is a datagram rendezvous service: clients register a mailbox
// name from whatever address they currently hold, and the relay
// forwards messages between mailboxes to each owner's latest address.
// This is the messaging/voice OTT model (§5: "voice and messaging
// provided via OTT services") — and its tolerance of address changes
// is what the mobility experiment (E4) exercises.
//
// Wire format (datagrams):
//
//	'R' nameLen name            — register/refresh mailbox at sender addr
//	'S' nameLen name payload    — send payload to mailbox name
//	'D' nameLen name payload    — delivery to a registered client
type Relay struct {
	pc   *simnet.PacketConn
	done chan struct{}
	once sync.Once

	mu    sync.Mutex
	boxes map[string]net.Addr

	delivered sync.Map // mailbox → count
}

// NewRelay starts a relay on host:port.
func NewRelay(host *simnet.Host, port int) (*Relay, error) {
	pc, err := host.ListenPacket(port)
	if err != nil {
		return nil, fmt.Errorf("ott: relay: %w", err)
	}
	r := &Relay{pc: pc, done: make(chan struct{}), boxes: make(map[string]net.Addr)}
	pc.Clock().Go(r.loop)
	return r, nil
}

func (r *Relay) loop() {
	clk := r.pc.Clock()
	buf := make([]byte, 64*1024)
	for {
		select {
		case <-r.done:
			return
		default:
		}
		r.pc.SetReadDeadline(clk.Now().Add(200 * time.Millisecond))
		n, from, err := r.pc.ReadFrom(buf)
		if err != nil || n < 2 {
			continue
		}
		op := buf[0]
		nameLen := int(buf[1])
		if n < 2+nameLen {
			continue
		}
		name := string(buf[2 : 2+nameLen])
		switch op {
		case 'R':
			r.mu.Lock()
			r.boxes[name] = from
			r.mu.Unlock()
		case 'S':
			r.mu.Lock()
			dst, ok := r.boxes[name]
			r.mu.Unlock()
			if !ok {
				continue
			}
			payload := buf[2+nameLen : n]
			out := make([]byte, 0, 2+nameLen+len(payload))
			out = append(out, 'D', byte(nameLen))
			out = append(out, name...)
			out = append(out, payload...)
			r.pc.WriteTo(out, dst)
			if c, ok := r.delivered.Load(name); ok {
				r.delivered.Store(name, c.(int)+1)
			} else {
				r.delivered.Store(name, 1)
			}
		}
	}
}

// Delivered reports messages delivered to the named mailbox.
func (r *Relay) Delivered(name string) int {
	if c, ok := r.delivered.Load(name); ok {
		return c.(int)
	}
	return 0
}

// Registered reports the mailbox's current address, if any.
func (r *Relay) Registered(name string) (net.Addr, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.boxes[name]
	return a, ok
}

// Close stops the relay.
func (r *Relay) Close() {
	r.once.Do(func() {
		close(r.done)
		r.pc.Close()
	})
}

// RegisterFrame builds a relay registration datagram.
func RegisterFrame(mailbox string) []byte {
	out := make([]byte, 0, 2+len(mailbox))
	out = append(out, 'R', byte(len(mailbox)))
	return append(out, mailbox...)
}

// SendFrame builds a relay send datagram.
func SendFrame(mailbox string, payload []byte) []byte {
	out := make([]byte, 0, 2+len(mailbox)+len(payload))
	out = append(out, 'S', byte(len(mailbox)))
	out = append(out, mailbox...)
	return append(out, payload...)
}

// ParseDelivery extracts mailbox and payload from a 'D' frame.
func ParseDelivery(b []byte) (mailbox string, payload []byte, err error) {
	if len(b) < 2 || b[0] != 'D' {
		return "", nil, errors.New("ott: not a delivery frame")
	}
	nameLen := int(b[1])
	if len(b) < 2+nameLen {
		return "", nil, errors.New("ott: truncated delivery frame")
	}
	return string(b[2 : 2+nameLen]), b[2+nameLen:], nil
}

// SeqPayload builds a sequenced probe payload, and ParseSeq reads it
// back; experiments use these to count losses during mobility events.
func SeqPayload(seq uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seq)
	return b[:]
}

// ParseSeq decodes a sequenced probe payload.
func ParseSeq(b []byte) (uint64, error) {
	if len(b) < 8 {
		return 0, errors.New("ott: short seq payload")
	}
	return binary.BigEndian.Uint64(b), nil
}
