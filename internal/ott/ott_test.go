package ott

import (
	"errors"
	"testing"
	"time"

	"dlte/internal/simnet"
)

// newNet builds a virtual-time network: delivery waits and timeouts
// below advance the VirtualClock instead of spinning wall-clock poll
// loops, so the tests are deterministic and complete in microseconds
// of real time.
func newNet(t *testing.T) *simnet.Network {
	t.Helper()
	n := simnet.NewVirtualNetwork(simnet.Link{Latency: time.Millisecond}, 1)
	t.Cleanup(n.Close)
	return n
}

func TestEchoServer(t *testing.T) {
	n := newNet(t)
	srv := n.MustAddHost("srv")
	cli := n.MustAddHost("cli")
	e, err := NewEchoServer(srv, 9000)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)

	clk := n.Clock()
	pc, _ := cli.ListenPacket(0)
	for i := 0; i < 3; i++ {
		pc.WriteToHost([]byte{byte(i)}, "srv", 9000)
		buf := make([]byte, 16)
		pc.SetReadDeadline(clk.Now().Add(2 * time.Second))
		nr, _, err := pc.ReadFrom(buf)
		if err != nil {
			t.Fatalf("echo %d: %v", i, err)
		}
		if nr != 1 || buf[0] != byte(i) {
			t.Errorf("echo %d = %v", i, buf[:nr])
		}
	}
	if e.Count() != 3 {
		t.Errorf("Count = %d", e.Count())
	}
}

func TestIdentityProvider(t *testing.T) {
	p := NewIdentityProvider([]byte("secret"))
	p.Register("esther", "hunter2")
	now := time.Date(2026, 7, 4, 10, 0, 0, 0, time.UTC)

	if _, err := p.Login("esther", "wrong", now, time.Hour); !errors.Is(err, ErrBadCredentials) {
		t.Errorf("wrong password: %v", err)
	}
	if _, err := p.Login("ghost", "x", now, time.Hour); !errors.Is(err, ErrBadCredentials) {
		t.Errorf("unknown user: %v", err)
	}
	tok, err := p.Login("esther", "hunter2", now, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	user, err := p.Verify(tok, now.Add(30*time.Minute))
	if err != nil || user != "esther" {
		t.Fatalf("verify: %q %v", user, err)
	}
	// The token survives any change of client address by construction
	// (it names the user, not the socket) — expiry is the only bound.
	if _, err := p.Verify(tok, now.Add(2*time.Hour)); !errors.Is(err, ErrTokenExpired) {
		t.Errorf("expired token: %v", err)
	}
	if _, err := p.Verify("garbage", now); !errors.Is(err, ErrBadToken) {
		t.Errorf("garbage token: %v", err)
	}
	if _, err := p.Verify(tok+"x", now); !errors.Is(err, ErrBadToken) {
		t.Errorf("tampered token: %v", err)
	}
}

func TestRelayDelivery(t *testing.T) {
	n := newNet(t)
	srv := n.MustAddHost("relay")
	alice := n.MustAddHost("alice")
	bob := n.MustAddHost("bob")
	r, err := NewRelay(srv, 9100)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)

	clk := n.Clock()
	pa, _ := alice.ListenPacket(0)
	pb, _ := bob.ListenPacket(0)
	pb.WriteToHost(RegisterFrame("bob"), "relay", 9100)

	// Wait for registration to land: one virtual sleep past the link
	// latency is enough, since virtual time only advances over a
	// quiescent network.
	deadline := clk.Now().Add(2 * time.Second)
	for {
		if _, ok := r.Registered("bob"); ok || clk.Now().After(deadline) {
			break
		}
		clk.Sleep(5 * time.Millisecond)
	}

	pa.WriteToHost(SendFrame("bob", []byte("hello bob")), "relay", 9100)
	buf := make([]byte, 256)
	pb.SetReadDeadline(clk.Now().Add(2 * time.Second))
	nr, _, err := pb.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	box, payload, err := ParseDelivery(buf[:nr])
	if err != nil || box != "bob" || string(payload) != "hello bob" {
		t.Fatalf("delivery = %q %q %v", box, payload, err)
	}
	if r.Delivered("bob") != 1 {
		t.Errorf("Delivered = %d", r.Delivered("bob"))
	}
}

func TestRelayAddressRefresh(t *testing.T) {
	// The dLTE mobility story: bob moves to a new address, re-registers,
	// and keeps receiving.
	n := newNet(t)
	srv := n.MustAddHost("relay")
	alice := n.MustAddHost("alice")
	bobOld := n.MustAddHost("bob-old")
	bobNew := n.MustAddHost("bob-new")
	r, _ := NewRelay(srv, 9100)
	t.Cleanup(r.Close)

	clk := n.Clock()
	pa, _ := alice.ListenPacket(0)
	po, _ := bobOld.ListenPacket(0)
	pn, _ := bobNew.ListenPacket(0)

	po.WriteToHost(RegisterFrame("bob"), "relay", 9100)
	waitReg := func(host string) {
		deadline := clk.Now().Add(2 * time.Second)
		for clk.Now().Before(deadline) {
			if a, ok := r.Registered("bob"); ok && a.(simnet.Addr).Host == host {
				return
			}
			clk.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("bob not registered at %s", host)
	}
	waitReg("bob-old")

	pn.WriteToHost(RegisterFrame("bob"), "relay", 9100)
	waitReg("bob-new")

	pa.WriteToHost(SendFrame("bob", []byte("after move")), "relay", 9100)
	buf := make([]byte, 256)
	pn.SetReadDeadline(clk.Now().Add(2 * time.Second))
	if _, _, err := pn.ReadFrom(buf); err != nil {
		t.Fatalf("new address starved: %v", err)
	}
	po.SetReadDeadline(clk.Now().Add(100 * time.Millisecond))
	if _, _, err := po.ReadFrom(buf); err == nil {
		t.Error("old address still receiving")
	}
}

func TestRelayUnknownMailboxDropped(t *testing.T) {
	n := newNet(t)
	srv := n.MustAddHost("relay")
	cli := n.MustAddHost("cli")
	r, _ := NewRelay(srv, 9100)
	t.Cleanup(r.Close)
	pc, _ := cli.ListenPacket(0)
	pc.WriteToHost(SendFrame("nobody", []byte("x")), "relay", 9100)
	// One virtual tick past delivery: the drop (or not) has happened.
	n.Clock().Sleep(50 * time.Millisecond)
	if r.Delivered("nobody") != 0 {
		t.Error("message to unknown mailbox delivered")
	}
}

func TestParseDeliveryErrors(t *testing.T) {
	if _, _, err := ParseDelivery([]byte{'S', 1, 'x'}); err == nil {
		t.Error("wrong op parsed")
	}
	if _, _, err := ParseDelivery([]byte{'D', 9, 'x'}); err == nil {
		t.Error("truncated frame parsed")
	}
	if _, _, err := ParseDelivery(nil); err == nil {
		t.Error("nil parsed")
	}
}

func TestSeqPayload(t *testing.T) {
	for _, v := range []uint64{0, 1, 1 << 40} {
		got, err := ParseSeq(SeqPayload(v))
		if err != nil || got != v {
			t.Errorf("seq %d round trip = %d %v", v, got, err)
		}
	}
	if _, err := ParseSeq([]byte{1}); err == nil {
		t.Error("short seq parsed")
	}
}
