package baseline

import (
	"strings"
	"testing"
	"time"

	"dlte/internal/auth"
	"dlte/internal/phy"
	"dlte/internal/simnet"
	"dlte/internal/ue"
)

func newCentral(t *testing.T, wan simnet.Link) (*simnet.Network, *Centralized) {
	t.Helper()
	n := simnet.New(simnet.Link{Latency: 2 * time.Millisecond}, 1)
	t.Cleanup(n.Close)
	c, err := NewCentralized(n, "telco-epc", CentralizedConfig{TAC: 1, WANLink: wan})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return n, c
}

func TestCentralizedAttachThroughWAN(t *testing.T) {
	n, c := newCentral(t, simnet.Link{Latency: 15 * time.Millisecond})
	site, err := c.AddSite("cell-1")
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := auth.NewSIM("001010000000501")
	if err := c.Core.Provision(sim); err != nil {
		t.Fatal(err)
	}
	ueHost := n.MustAddHost("ue1")
	n.SetLink("ue1", "cell-1", simnet.Link{Latency: 5 * time.Millisecond})
	d, _ := ue.NewDevice(ueHost, sim)
	t.Cleanup(d.Close)
	res, err := d.Attach(site.AirAddr(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirectBreakout {
		t.Error("telecom core advertised breakout")
	}
	if res.Duration < 60*time.Millisecond {
		t.Errorf("attach %v too fast for a 15 ms WAN", res.Duration)
	}
}

func TestClosedCoreRefusesRogueSite(t *testing.T) {
	_, c := newCentral(t, simnet.Link{Latency: time.Millisecond})
	if _, err := c.AddSite("authorized"); err != nil {
		t.Fatalf("authorized site refused: %v", err)
	}
	err := c.TryRogueSite("rogue")
	if err == nil {
		t.Fatal("rogue eNodeB joined the closed core — Table 1's closed-core property is broken")
	}
	if !strings.Contains(err.Error(), "S1") && !strings.Contains(err.Error(), "setup") {
		t.Logf("rogue refusal error (ok): %v", err)
	}
	if c.Site("authorized") == nil || c.Site("rogue") != nil {
		t.Error("site bookkeeping wrong")
	}
	if c.CoreHost() != "telco-epc" {
		t.Errorf("CoreHost = %s", c.CoreHost())
	}
}

func TestWiFiNetworkSaturation(t *testing.T) {
	w := WiFiNetwork{
		Stations: []phy.DCFStation{
			{ID: "ap1", RateBps: 54e6, Saturated: true},
			{ID: "ap2", RateBps: 54e6, Saturated: true},
			{ID: "ap3", RateBps: 54e6, Saturated: true},
		},
		Seed: 1,
	}
	res := w.SaturationThroughput(0.5)
	if res.TotalBps <= 0 {
		t.Fatal("no throughput")
	}
	if res.Collisions == 0 {
		t.Error("three saturated stations never collided")
	}
}

func TestWiFiAssociationLatencyOrder(t *testing.T) {
	// Sanity: the constant sits between "instant" and an LTE attach
	// over a WAN.
	if WiFiAssociationLatency < 10*time.Millisecond || WiFiAssociationLatency > time.Second {
		t.Errorf("WiFiAssociationLatency = %v", WiFiAssociationLatency)
	}
}

// runAttachStorm measures wall-clock time for nUE concurrent attaches
// against a centralized core with the given processing delay.
func runAttachStorm(t *testing.T, delay time.Duration, nUE int) time.Duration {
	t.Helper()
	n := simnet.New(simnet.Link{Latency: time.Millisecond}, 1)
	t.Cleanup(n.Close)
	c, err := NewCentralized(n, "epc", CentralizedConfig{
		TAC: 1, WANLink: simnet.Link{Latency: time.Millisecond},
		ProcessingDelay: delay,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	site, err := c.AddSite("cell-1")
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, nUE)
	start := time.Now()
	for i := 0; i < nUE; i++ {
		sim, _ := auth.NewSIM(auth.IMSI("0010100000006" + string(rune('0'+i)) + "0"))
		if err := c.Core.Provision(sim); err != nil {
			t.Fatal(err)
		}
		host := n.MustAddHost("ue" + string(rune('0'+i)))
		n.SetLink(host.Name(), "cell-1", simnet.Link{Latency: time.Millisecond})
		d, _ := ue.NewDevice(host, sim)
		t.Cleanup(d.Close)
		go func(d *ue.Device) {
			_, err := d.Attach(site.AirAddr(), 20*time.Second)
			done <- err
		}(d)
	}
	for i := 0; i < nUE; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(start)
}

func TestProcessingDelayCapsSignalingRate(t *testing.T) {
	fast := runAttachStorm(t, 0, 3)
	slow := runAttachStorm(t, 5*time.Millisecond, 3)
	// ~9+ core messages complete before the last UE finishes; they
	// serialize through the modeled processor.
	if slow < fast+30*time.Millisecond {
		t.Errorf("delayed storm %v vs undelayed %v — processor not serializing", slow, fast)
	}
}
