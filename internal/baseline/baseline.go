// Package baseline implements the comparison architectures from the
// paper's design-space table (Table 1): the centralized telecom LTE
// network (closed core, all traffic tunneled through a distant EPC),
// private/enterprise LTE (the same closed core on premises), and
// legacy WiFi (independent CSMA access points, no core, no
// coordination). Every dLTE experiment measures against one or more
// of these.
package baseline

import (
	"fmt"
	"time"

	"dlte/internal/enb"
	"dlte/internal/epc"
	"dlte/internal/phy"
	"dlte/internal/simnet"
)

// CentralizedConfig shapes a telecom-style deployment.
type CentralizedConfig struct {
	// Name labels the operator core.
	Name string
	// TAC is the (single) tracking area.
	TAC uint16
	// WANLink is the backhaul between each cell site and the EPC.
	WANLink simnet.Link
	// ProcessingDelay models the shared core's signaling capacity
	// (see epc.Config).
	ProcessingDelay time.Duration
	// SignalingProcessors models a sharded MME servicing this many
	// signaling messages in parallel (see epc.Config; 0 or 1 is the
	// classic single processor).
	SignalingProcessors int
	// Shards is the core's session shard count (see epc.Config).
	Shards int
	// OnPrem marks a private-LTE deployment: the core still admits
	// only authorized eNodeBs, but sits near the sites (the caller
	// sets a short WANLink accordingly).
	OnPrem bool
}

// Centralized is a running telecom/private LTE network: one closed
// core, N authorized cell sites.
type Centralized struct {
	cfg     CentralizedConfig
	net     *simnet.Network
	Core    *epc.Core
	epcHost *simnet.Host
	sites   map[string]*enb.ENodeB
	nextID  uint32
}

// NewCentralized brings up the operator core on a host named
// coreName.
func NewCentralized(n *simnet.Network, coreName string, cfg CentralizedConfig) (*Centralized, error) {
	if cfg.Name == "" {
		cfg.Name = coreName
	}
	host, err := n.AddHost(coreName)
	if err != nil {
		return nil, err
	}
	core, err := epc.NewCore(host, epc.Config{
		Name:                    cfg.Name,
		SNID:                    cfg.Name,
		TAC:                     cfg.TAC,
		DirectBreakout:          false, // everything tunnels through here
		OpenHSS:                 false, // closed subscriber store
		ProcessingDelay:         cfg.ProcessingDelay,
		SignalingProcessors:     cfg.SignalingProcessors,
		Shards:                  cfg.Shards,
		RequireENBAuthorization: true, // closed to organic expansion
	})
	if err != nil {
		return nil, err
	}
	l, err := host.Listen(epc.S1APPort)
	if err != nil {
		core.Close()
		return nil, err
	}
	n.Clock().Go(func() { core.ServeS1AP(l) })
	return &Centralized{
		cfg: cfg, net: n, Core: core, epcHost: host,
		sites: make(map[string]*enb.ENodeB),
	}, nil
}

// CoreHost reports the EPC's host name.
func (c *Centralized) CoreHost() string { return c.epcHost.Name() }

// AddSite provisions and authorizes a new cell site: the operator's
// deliberate act that dLTE replaces with open registry join. It
// creates the site host, sets its WAN link to the core, authorizes
// the eNodeB, and brings it up.
func (c *Centralized) AddSite(name string) (*enb.ENodeB, error) {
	host, err := c.net.AddHost(name)
	if err != nil {
		return nil, err
	}
	c.net.SetLink(name, c.epcHost.Name(), c.cfg.WANLink)
	c.nextID++
	id := c.nextID
	c.Core.AuthorizeENB(id)
	e, err := enb.New(host, enb.Config{
		ID: id, Name: name, TAC: c.cfg.TAC,
		MMEAddr: fmt.Sprintf("%s:%d", c.epcHost.Name(), epc.S1APPort),
	})
	if err != nil {
		return nil, err
	}
	c.sites[name] = e
	return e, nil
}

// TryRogueSite attempts to attach an unauthorized eNodeB — the organic
// expansion a closed core forbids. It returns the (expected) error.
func (c *Centralized) TryRogueSite(name string) error {
	host, err := c.net.AddHost(name)
	if err != nil {
		return err
	}
	c.net.SetLink(name, c.epcHost.Name(), c.cfg.WANLink)
	e, err := enb.New(host, enb.Config{
		ID: 0xDEAD, Name: name, TAC: c.cfg.TAC,
		MMEAddr: fmt.Sprintf("%s:%d", c.epcHost.Name(), epc.S1APPort),
	})
	if err == nil {
		e.Close()
		return nil
	}
	return err
}

// Site returns a running site by name.
func (c *Centralized) Site(name string) *enb.ENodeB { return c.sites[name] }

// Close tears everything down.
func (c *Centralized) Close() {
	for _, e := range c.sites {
		e.Close()
	}
	c.Core.Close()
}

// --- Legacy WiFi ---------------------------------------------------------

// WiFiNetwork models a set of independent WiFi APs: no core, no
// coordination, CSMA contention within sensing range. It is evaluated
// purely at the MAC/PHY level (phy.SimulateDCF); association has no
// signaling plane to speak of.
type WiFiNetwork struct {
	// Stations are the contending transmitters (APs and/or clients).
	Stations []phy.DCFStation
	// Sense is the carrier-sense matrix (nil = all mutually audible).
	Sense [][]bool
	// Seed drives the contention process.
	Seed int64
}

// SaturationThroughput runs the DCF contention simulation for the
// given virtual duration.
func (w WiFiNetwork) SaturationThroughput(seconds float64) phy.DCFResult {
	return phy.SimulateDCF(phy.DCFConfig{Stations: w.Stations, Sense: w.Sense, Seed: w.Seed}, seconds)
}

// WiFiAssociationLatency is the nominal open-auth association plus
// DHCP exchange of a legacy WiFi join — the "attach" comparison point
// for E1/E3. (Four management frames plus a DHCP DORA over a ~2 ms
// air RTT.)
const WiFiAssociationLatency = 40 * time.Millisecond

// OpennessResult captures Table 1's qualitative axes as measured
// outcomes for one architecture.
type OpennessResult struct {
	Architecture string
	// NewAPJoins reports whether an unauthorized newcomer AP could
	// join and serve clients.
	NewAPJoins bool
	// LicensedRadio reports whether the architecture can use
	// coordinated licensed spectrum.
	LicensedRadio bool
	// CoordinatedSpectrum reports whether co-channel APs coordinate
	// (scheduling/TDM) rather than contend.
	CoordinatedSpectrum bool
}
