package gtp

import (
	"bytes"
	"testing"
	"testing/quick"
)

// FuzzDecode feeds arbitrary bytes to the G-PDU decoder. GTP-U frames
// arrive from the network (in a telecom deployment, from another
// operator's SGW), so Decode must reject malformed input cleanly:
// no panics, no payload reaching past the buffer, and every accepted
// frame internally consistent with its length field.
//
// Run the unit seeds with `go test`; explore with
// `go test -fuzz=FuzzDecode ./internal/gtp`.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})                                             // empty
	f.Add([]byte{0x30})                                         // truncated header
	f.Add([]byte{0x30, 0xFF, 0x00, 0x00, 0, 0, 0})              // one byte short of a header
	f.Add([]byte{0x50, 0xFF, 0x00, 0x00, 0, 0, 0, 1})           // version 2
	f.Add([]byte{0x30, 0xFF, 0x00, 0x05, 0, 0, 0, 1, 'h', 'i'}) // length claims 5, has 2
	f.Add([]byte{0x30, 0xFF, 0xFF, 0xFF, 0, 0, 0, 1})           // length 65535, empty body
	f.Add(Encode(1, []byte("payload")))
	f.Add(Encode(0xFFFFFFFF, nil))
	f.Add(append(Encode(7, []byte("abc")), "trailing"...)) // valid frame + junk tail

	f.Fuzz(func(t *testing.T, b []byte) {
		h, payload, err := Decode(b)
		if err != nil {
			return
		}
		// Accepted frames must be self-consistent: the payload is the
		// region the length field described, inside the input.
		if len(payload) > len(b)-8 {
			t.Fatalf("payload longer than input allows: %d > %d", len(payload), len(b)-8)
		}
		// Re-encoding a decoded G-PDU must reproduce the original frame
		// bytes (modulo any junk tail past the declared length).
		if h.MessageType == 0xFF {
			round := Encode(h.TEID, payload)
			if !bytes.Equal(round, b[:len(round)]) {
				t.Fatalf("round trip mismatch:\n got %x\nwant %x", round, b[:len(round)])
			}
		}
	})
}

// TestEncodeDecodeRoundTripProperty checks Encode/Decode agreement on
// arbitrary valid inputs (payloads above the 16-bit length field are
// the caller's bug; the codec never sees them from this stack).
func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(teid uint32, payload []byte) bool {
		if len(payload) > 0xFFFF {
			payload = payload[:0xFFFF]
		}
		h, got, err := Decode(Encode(teid, payload))
		return err == nil && h.TEID == teid && h.MessageType == 0xFF && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
