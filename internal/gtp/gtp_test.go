package gtp

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"testing/quick"
	"time"

	"dlte/internal/simnet"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payload := []byte("ip-packet-bytes")
	pkt := Encode(0xDEADBEEF, payload)
	h, got, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h.TEID != 0xDEADBEEF {
		t.Errorf("TEID = %#x", h.TEID)
	}
	if h.MessageType != messageTypeGPDU {
		t.Errorf("type = %#x", h.MessageType)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %q", got)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(teid uint32, payload []byte) bool {
		if len(payload) > 0xFFFF {
			return true
		}
		h, got, err := Decode(Encode(teid, payload))
		return err == nil && h.TEID == teid && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode([]byte{0x30, 0xFF, 0, 0}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header: %v", err)
	}
	// Wrong version.
	bad := Encode(1, []byte("x"))
	bad[0] = 0x50 // version 2
	if _, _, err := Decode(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	// Length field promising more than present.
	short := Encode(1, []byte("hello"))
	if _, _, err := Decode(short[:10]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated payload: %v", err)
	}
}

func newPair(t *testing.T) (*Endpoint, *Endpoint, *simnet.Network) {
	t.Helper()
	n := simnet.New(simnet.Link{Latency: time.Millisecond}, 1)
	t.Cleanup(n.Close)
	a := n.MustAddHost("enb")
	b := n.MustAddHost("gw")
	pa, err := a.ListenPacket(Port)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.ListenPacket(Port)
	if err != nil {
		t.Fatal(err)
	}
	ea := NewEndpoint(pa)
	eb := NewEndpoint(pb)
	t.Cleanup(func() { ea.Close(); eb.Close() })
	return ea, eb, n
}

func TestTunnelForwarding(t *testing.T) {
	enb, gw, _ := newPair(t)

	got := make(chan []byte, 1)
	gwTEID := gw.AllocateTEID(func(p []byte, _ net.Addr) { got <- append([]byte(nil), p...) })
	enbTEID := enb.AllocateTEID(nil)

	if err := enb.Bind(enbTEID, gwTEID, simnet.Addr{Host: "gw", Port: Port}); err != nil {
		t.Fatal(err)
	}
	if err := enb.Send(enbTEID, []byte("uplink-ip-packet")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if string(p) != "uplink-ip-packet" {
			t.Errorf("payload = %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet not delivered")
	}
}

func TestBidirectionalTunnel(t *testing.T) {
	enb, gw, _ := newPair(t)

	up := make(chan []byte, 1)
	down := make(chan []byte, 1)
	gwTEID := gw.AllocateTEID(func(p []byte, _ net.Addr) { up <- append([]byte(nil), p...) })
	enbTEID := enb.AllocateTEID(func(p []byte, _ net.Addr) { down <- append([]byte(nil), p...) })

	enb.Bind(enbTEID, gwTEID, simnet.Addr{Host: "gw", Port: Port})
	gw.Bind(gwTEID, enbTEID, simnet.Addr{Host: "enb", Port: Port})

	enb.Send(enbTEID, []byte("up"))
	gw.Send(gwTEID, []byte("down"))
	for i := 0; i < 2; i++ {
		select {
		case p := <-up:
			if string(p) != "up" {
				t.Errorf("uplink = %q", p)
			}
		case p := <-down:
			if string(p) != "down" {
				t.Errorf("downlink = %q", p)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("tunnel traffic lost")
		}
	}
}

func TestTEIDDemux(t *testing.T) {
	enb, gw, _ := newPair(t)
	a := make(chan []byte, 1)
	b := make(chan []byte, 1)
	teidA := gw.AllocateTEID(func(p []byte, _ net.Addr) { a <- append([]byte(nil), p...) })
	teidB := gw.AllocateTEID(func(p []byte, _ net.Addr) { b <- append([]byte(nil), p...) })
	if teidA == teidB {
		t.Fatal("duplicate TEIDs allocated")
	}

	ta := enb.AllocateTEID(nil)
	tb := enb.AllocateTEID(nil)
	enb.Bind(ta, teidA, simnet.Addr{Host: "gw", Port: Port})
	enb.Bind(tb, teidB, simnet.Addr{Host: "gw", Port: Port})
	enb.Send(ta, []byte("for-a"))
	enb.Send(tb, []byte("for-b"))

	select {
	case p := <-a:
		if string(p) != "for-a" {
			t.Errorf("a got %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("a starved")
	}
	select {
	case p := <-b:
		if string(p) != "for-b" {
			t.Errorf("b got %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("b starved")
	}
}

func TestSendErrors(t *testing.T) {
	enb, _, _ := newPair(t)
	if err := enb.Send(999, []byte("x")); !errors.Is(err, ErrUnknownTEID) {
		t.Errorf("unknown TEID: %v", err)
	}
	// Allocated but unbound tunnel cannot send.
	teid := enb.AllocateTEID(nil)
	if err := enb.Send(teid, []byte("x")); !errors.Is(err, ErrUnknownTEID) {
		t.Errorf("unbound tunnel: %v", err)
	}
	if err := enb.Bind(999, 1, simnet.Addr{Host: "gw", Port: Port}); !errors.Is(err, ErrUnknownTEID) {
		t.Errorf("bind unknown: %v", err)
	}
}

func TestRelease(t *testing.T) {
	enb, gw, _ := newPair(t)
	got := make(chan []byte, 1)
	gwTEID := gw.AllocateTEID(func(p []byte, _ net.Addr) { got <- append([]byte(nil), p...) })
	enbTEID := enb.AllocateTEID(nil)
	enb.Bind(enbTEID, gwTEID, simnet.Addr{Host: "gw", Port: Port})

	if gw.NumTunnels() != 1 {
		t.Errorf("NumTunnels = %d", gw.NumTunnels())
	}
	gw.Release(gwTEID)
	if gw.NumTunnels() != 0 {
		t.Errorf("NumTunnels after release = %d", gw.NumTunnels())
	}
	enb.Send(enbTEID, []byte("late"))
	select {
	case <-got:
		t.Error("released tunnel delivered traffic")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestCloseStopsEndpoint(t *testing.T) {
	enb, gw, _ := newPair(t)
	gwTEID := gw.AllocateTEID(nil)
	enbTEID := enb.AllocateTEID(nil)
	enb.Bind(enbTEID, gwTEID, simnet.Addr{Host: "gw", Port: Port})
	if err := enb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := enb.Send(enbTEID, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close: %v", err)
	}
	if err := enb.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestGarbageTrafficIgnored(t *testing.T) {
	// Non-GTP and unknown-TEID packets must not crash the loop.
	n := simnet.New(simnet.Link{}, 1)
	t.Cleanup(n.Close)
	gwHost := n.MustAddHost("gw")
	srcHost := n.MustAddHost("src")
	pgw, _ := gwHost.ListenPacket(Port)
	gw := NewEndpoint(pgw)
	t.Cleanup(func() { gw.Close() })

	got := make(chan []byte, 1)
	gw.AllocateTEID(func(p []byte, _ net.Addr) { got <- append([]byte(nil), p...) })

	src, _ := srcHost.ListenPacket(0)
	src.WriteToHost([]byte{1, 2, 3}, "gw", Port)                      // garbage
	src.WriteToHost(Encode(424242, []byte("wrong-teid")), "gw", Port) // unknown TEID
	select {
	case p := <-got:
		t.Errorf("unexpected delivery: %q", p)
	case <-time.After(100 * time.Millisecond):
	}
}
