// Package gtp implements the GPRS Tunneling Protocol user plane
// (GTP-U, TS 29.281 subset) that carries subscriber IP packets between
// the eNodeB and the gateway. In a telecom EPC every user packet rides
// one of these tunnels to a distant P-GW (paper Fig. 1, left); in dLTE
// the tunnel terminates a few centimeters away in the AP's local stub
// and the packet exits directly to the Internet (Fig. 1, right). The
// experiments measure exactly that difference, so the tunnel layer is
// real: encode/decode, TEID demux, and per-tunnel forwarding.
//
// The send and demux paths are the user-plane fast path: tunnels
// mutate at attach/handover rate while packets arrive at line rate, so
// the TEID table is copy-on-write behind an atomic pointer (readers
// never lock) and per-packet scratch comes from the shared simnet
// payload pool (buffers released when their packet leaves the stack,
// never garbage). See DESIGN.md §7.
package gtp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dlte/internal/metrics"
	"dlte/internal/simnet"
)

// Port is the registered GTP-U UDP port.
const Port = 2152

// Errors returned by the GTP layer.
var (
	ErrTruncated   = errors.New("gtp: truncated packet")
	ErrBadVersion  = errors.New("gtp: unsupported version")
	ErrUnknownTEID = errors.New("gtp: unknown TEID")
	ErrClosed      = errors.New("gtp: endpoint closed")
)

// messageTypeGPDU is the G-PDU (encapsulated user data) message type.
const messageTypeGPDU = 0xFF

// headerLen is the mandatory GTP-U header length.
const headerLen = 8

// Header is the mandatory part of a GTP-U header.
type Header struct {
	// TEID is the receiver-allocated tunnel endpoint identifier.
	TEID uint32
	// MessageType distinguishes G-PDUs from path management.
	MessageType uint8
}

// putHeader writes the mandatory header into b[:headerLen].
func putHeader(b []byte, teid uint32, payloadLen int) {
	b[0] = 0x30 // version 1, protocol type GTP
	b[1] = messageTypeGPDU
	binary.BigEndian.PutUint16(b[2:4], uint16(payloadLen))
	binary.BigEndian.PutUint32(b[4:8], teid)
}

// Encode prepends a GTP-U header to payload in a freshly allocated
// slice. The fast path uses GetBuffer/SendBuffer instead; Encode
// remains for tests and one-shot callers.
func Encode(teid uint32, payload []byte) []byte {
	out := make([]byte, headerLen+len(payload))
	putHeader(out, teid, len(payload))
	copy(out[headerLen:], payload)
	return out
}

// Decode parses a GTP-U packet, returning the header and the payload
// (a subslice of b).
func Decode(b []byte) (Header, []byte, error) {
	if len(b) < headerLen {
		return Header{}, nil, ErrTruncated
	}
	if b[0]>>5 != 1 {
		return Header{}, nil, fmt.Errorf("%w: %d", ErrBadVersion, b[0]>>5)
	}
	if b[0] != 0x30 {
		// E/S/PN flag bits extend the header by 4 bytes; this stack
		// neither sends nor parses the optional fields, and silently
		// treating them as payload would corrupt the tunnel. PT=0
		// (GTP') is likewise unsupported.
		return Header{}, nil, fmt.Errorf("%w: flags %#02x", ErrBadVersion, b[0])
	}
	h := Header{
		MessageType: b[1],
		TEID:        binary.BigEndian.Uint32(b[4:8]),
	}
	plen := int(binary.BigEndian.Uint16(b[2:4]))
	if headerLen+plen > len(b) {
		return Header{}, nil, ErrTruncated
	}
	return h, b[headerLen : headerLen+plen], nil
}

// PacketConn is the datagram surface the endpoint runs over; both
// net.UDPConn and simnet.PacketConn satisfy it.
type PacketConn interface {
	WriteTo(b []byte, addr net.Addr) (int, error)
	ReadFrom(b []byte) (int, net.Addr, error)
	SetReadDeadline(t time.Time) error
	Close() error
}

// ownedWriter is the zero-copy send surface simnet.PacketConn offers:
// the buffer's ownership transfers to the network on every path.
type ownedWriter interface {
	WriteOwnedTo(b []byte, addr net.Addr) (int, error)
}

// ownedReader is the zero-copy receive surface: the returned buffer is
// pooled and owned by the caller.
type ownedReader interface {
	ReadFromOwned() ([]byte, net.Addr, error)
}

// handlerSetter is the run-to-completion receive surface
// (simnet.PacketConn): inbound packets run the handler inline on the
// network's dispatcher instead of waking a parked reader goroutine.
type handlerSetter interface {
	SetHandler(h func(data []byte, from net.Addr))
}

// Handler consumes a decapsulated user packet arriving on a tunnel.
//
// The payload is a view into a pooled receive buffer: it is valid only
// for the duration of the call. A handler that needs the bytes past
// its return must copy them.
type Handler func(payload []byte, from net.Addr)

// Tunnel is one direction pair of a GTP-U bearer.
type Tunnel struct {
	// LocalTEID demultiplexes inbound packets at this endpoint.
	LocalTEID uint32
	// RemoteTEID is stamped on outbound packets.
	RemoteTEID uint32
	// Peer is the remote GTP-U endpoint address.
	Peer net.Addr
}

// tunnelState is one table entry. Entries are immutable once published
// — Bind replaces the entry rather than mutating it — so readers can
// use them without synchronization.
type tunnelState struct {
	t       Tunnel
	handler Handler
}

// tunnelTable is the copy-on-write TEID table. Mutations (attach,
// bind, release — control-plane rate) build a fresh map under the
// endpoint mutex and publish it atomically; the per-packet send and
// demux paths only ever Load.
type tunnelTable struct {
	m map[uint32]*tunnelState
}

// DropCounters exposes the endpoint's packet-drop observability: the
// demux paths that previously dropped silently now count. Counters are
// cheap (drops are off the steady-state path) and safe for concurrent
// use.
type DropCounters struct {
	// Malformed counts inbound packets that fail Decode or carry a
	// non-G-PDU message type.
	Malformed *metrics.Counter
	// UnknownTEID counts well-formed G-PDUs addressed to no live
	// tunnel (or to a tunnel with no inbound handler).
	UnknownTEID *metrics.Counter
}

// Endpoint is one GTP-U node: it owns a packet socket, demultiplexes
// inbound G-PDUs by TEID, and sends outbound G-PDUs per tunnel.
type Endpoint struct {
	pc  PacketConn
	ow  ownedWriter // non-nil when pc supports zero-copy sends
	or  ownedReader // non-nil when pc supports zero-copy reads
	clk simnet.Clock

	table  atomic.Pointer[tunnelTable]
	closed atomic.Bool
	drops  DropCounters

	mu       sync.Mutex // serializes table mutations; never on the packet path
	nextTEID uint32
	done     chan struct{}
}

// NewEndpoint wraps pc and starts the demux loop.
func NewEndpoint(pc PacketConn) *Endpoint {
	e := &Endpoint{
		pc:       pc,
		clk:      simnet.ClockOf(pc),
		nextTEID: 1,
		done:     make(chan struct{}),
		drops: DropCounters{
			Malformed:   &metrics.Counter{},
			UnknownTEID: &metrics.Counter{},
		},
	}
	e.ow, _ = pc.(ownedWriter)
	e.or, _ = pc.(ownedReader)
	e.table.Store(&tunnelTable{m: map[uint32]*tunnelState{}})
	if hs, ok := pc.(handlerSetter); ok {
		// Run-to-completion: demux runs inline per delivered packet; no
		// reader goroutine exists to leak or park. demux is already a
		// conforming handler — it never blocks on the clock, and the
		// pooled buffer is only viewed for the duration of the call.
		hs.SetHandler(e.demux)
	} else {
		e.clk.Go(e.readLoop)
	}
	return e
}

// Drops exposes the endpoint's drop counters.
func (e *Endpoint) Drops() DropCounters { return e.drops }

// publish installs a mutated copy of the tunnel table. Callers hold
// e.mu.
func (e *Endpoint) publish(mutate func(m map[uint32]*tunnelState)) {
	old := e.table.Load().m
	m := make(map[uint32]*tunnelState, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	mutate(m)
	e.table.Store(&tunnelTable{m: m})
}

// AllocateTEID reserves a fresh local TEID with the given inbound
// handler; the remote side is bound later with Bind (mirroring how
// S1AP exchanges TEIDs in two messages).
func (e *Endpoint) AllocateTEID(h Handler) uint32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	teid := e.nextTEID
	e.nextTEID++
	e.publish(func(m map[uint32]*tunnelState) {
		m[teid] = &tunnelState{t: Tunnel{LocalTEID: teid}, handler: h}
	})
	return teid
}

// Bind completes a tunnel: packets sent on localTEID go to peer with
// remoteTEID.
func (e *Endpoint) Bind(localTEID, remoteTEID uint32, peer net.Addr) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	old, ok := e.table.Load().m[localTEID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownTEID, localTEID)
	}
	e.publish(func(m map[uint32]*tunnelState) {
		m[localTEID] = &tunnelState{
			t:       Tunnel{LocalTEID: localTEID, RemoteTEID: remoteTEID, Peer: peer},
			handler: old.handler,
		}
	})
	return nil
}

// Release tears down a tunnel.
func (e *Endpoint) Release(localTEID uint32) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.table.Load().m[localTEID]; !ok {
		return
	}
	e.publish(func(m map[uint32]*tunnelState) {
		delete(m, localTEID)
	})
}

// NumTunnels reports the number of live tunnels.
func (e *Endpoint) NumTunnels() int {
	return len(e.table.Load().m)
}

// GetBuffer returns a pooled buffer with GTP-U headroom reserved:
// len(buf) == headroom, append the payload behind it, then hand the
// buffer to SendBuffer, which fills the header in place. Release an
// unsent buffer with PutBuffer.
func GetBuffer() []byte { return simnet.GetPayload(headerLen) }

// PutBuffer releases a buffer from GetBuffer that will not be sent.
func PutBuffer(b []byte) { simnet.PutPayload(b) }

// Send encapsulates payload on the tunnel identified by localTEID.
// payload is copied; the caller's buffer is free on return.
func (e *Endpoint) Send(localTEID uint32, payload []byte) error {
	buf := simnet.GetPayload(headerLen + len(payload))
	copy(buf[headerLen:], payload)
	return e.SendBuffer(localTEID, buf)
}

// SendBuffer encapsulates and sends a buffer prepared via GetBuffer
// (headerLen bytes of headroom followed by the payload). Ownership of
// buf transfers to the endpoint on every path — sent, dropped, or
// errored — so the caller must not touch it after the call. This is
// the zero-copy fast path: header written into the headroom in place,
// buffer handed to the socket without an intermediate copy.
func (e *Endpoint) SendBuffer(localTEID uint32, buf []byte) error {
	if e.closed.Load() {
		simnet.PutPayload(buf)
		return ErrClosed
	}
	ts := e.table.Load().m[localTEID]
	if ts == nil || ts.t.Peer == nil {
		simnet.PutPayload(buf)
		return fmt.Errorf("%w: %d", ErrUnknownTEID, localTEID)
	}
	putHeader(buf, ts.t.RemoteTEID, len(buf)-headerLen)
	if e.ow != nil {
		_, err := e.ow.WriteOwnedTo(buf, ts.t.Peer)
		return err
	}
	_, err := e.pc.WriteTo(buf, ts.t.Peer)
	simnet.PutPayload(buf)
	return err
}

// demux routes one received G-PDU to its tunnel handler. data is the
// full packet; the handler sees a payload view into it.
func (e *Endpoint) demux(data []byte, from net.Addr) {
	h, payload, err := Decode(data)
	if err != nil || h.MessageType != messageTypeGPDU {
		e.drops.Malformed.Inc()
		return
	}
	ts := e.table.Load().m[h.TEID]
	if ts == nil || ts.handler == nil {
		e.drops.UnknownTEID.Inc()
		return
	}
	ts.handler(payload, from)
}

// readLoop demultiplexes inbound G-PDUs until Close. With a pooled
// socket (simnet) it blocks directly on owned reads — no per-packet
// deadline churn, no receive copy — and Close unblocks it by closing
// the socket. Other sockets take the portable deadline-polling path.
func (e *Endpoint) readLoop() {
	if e.or != nil {
		for {
			data, from, err := e.or.ReadFromOwned()
			if err != nil {
				if e.closed.Load() || errors.Is(err, simnet.ErrClosed) {
					return
				}
				continue // stray deadline; not set on this path
			}
			e.demux(data, from)
			simnet.PutPayload(data)
		}
	}
	buf := make([]byte, 64*1024)
	for {
		select {
		case <-e.done:
			return
		default:
		}
		e.pc.SetReadDeadline(e.clk.Now().Add(200 * time.Millisecond))
		n, from, err := e.pc.ReadFrom(buf)
		if err != nil {
			continue // deadline tick or transient; Close exits via done
		}
		e.demux(buf[:n], from)
	}
}

// Close stops the endpoint and its socket.
func (e *Endpoint) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(e.done)
	return e.pc.Close()
}
