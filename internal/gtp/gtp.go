// Package gtp implements the GPRS Tunneling Protocol user plane
// (GTP-U, TS 29.281 subset) that carries subscriber IP packets between
// the eNodeB and the gateway. In a telecom EPC every user packet rides
// one of these tunnels to a distant P-GW (paper Fig. 1, left); in dLTE
// the tunnel terminates a few centimeters away in the AP's local stub
// and the packet exits directly to the Internet (Fig. 1, right). The
// experiments measure exactly that difference, so the tunnel layer is
// real: encode/decode, TEID demux, and per-tunnel forwarding.
package gtp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dlte/internal/simnet"
)

// Port is the registered GTP-U UDP port.
const Port = 2152

// Errors returned by the GTP layer.
var (
	ErrTruncated   = errors.New("gtp: truncated packet")
	ErrBadVersion  = errors.New("gtp: unsupported version")
	ErrUnknownTEID = errors.New("gtp: unknown TEID")
	ErrClosed      = errors.New("gtp: endpoint closed")
)

// messageTypeGPDU is the G-PDU (encapsulated user data) message type.
const messageTypeGPDU = 0xFF

// headerLen is the mandatory GTP-U header length.
const headerLen = 8

// Header is the mandatory part of a GTP-U header.
type Header struct {
	// TEID is the receiver-allocated tunnel endpoint identifier.
	TEID uint32
	// MessageType distinguishes G-PDUs from path management.
	MessageType uint8
}

// Encode prepends a GTP-U header to payload.
func Encode(teid uint32, payload []byte) []byte {
	out := make([]byte, headerLen+len(payload))
	out[0] = 0x30 // version 1, protocol type GTP
	out[1] = messageTypeGPDU
	binary.BigEndian.PutUint16(out[2:4], uint16(len(payload)))
	binary.BigEndian.PutUint32(out[4:8], teid)
	copy(out[headerLen:], payload)
	return out
}

// Decode parses a GTP-U packet, returning the header and the payload
// (a subslice of b).
func Decode(b []byte) (Header, []byte, error) {
	if len(b) < headerLen {
		return Header{}, nil, ErrTruncated
	}
	if b[0]>>5 != 1 {
		return Header{}, nil, fmt.Errorf("%w: %d", ErrBadVersion, b[0]>>5)
	}
	h := Header{
		MessageType: b[1],
		TEID:        binary.BigEndian.Uint32(b[4:8]),
	}
	plen := int(binary.BigEndian.Uint16(b[2:4]))
	if headerLen+plen > len(b) {
		return Header{}, nil, ErrTruncated
	}
	return h, b[headerLen : headerLen+plen], nil
}

// PacketConn is the datagram surface the endpoint runs over; both
// net.UDPConn and simnet.PacketConn satisfy it.
type PacketConn interface {
	WriteTo(b []byte, addr net.Addr) (int, error)
	ReadFrom(b []byte) (int, net.Addr, error)
	SetReadDeadline(t time.Time) error
	Close() error
}

// Handler consumes a decapsulated user packet arriving on a tunnel.
type Handler func(payload []byte, from net.Addr)

// Tunnel is one direction pair of a GTP-U bearer.
type Tunnel struct {
	// LocalTEID demultiplexes inbound packets at this endpoint.
	LocalTEID uint32
	// RemoteTEID is stamped on outbound packets.
	RemoteTEID uint32
	// Peer is the remote GTP-U endpoint address.
	Peer net.Addr
}

// Endpoint is one GTP-U node: it owns a packet socket, demultiplexes
// inbound G-PDUs by TEID, and sends outbound G-PDUs per tunnel.
type Endpoint struct {
	pc  PacketConn
	clk simnet.Clock

	mu       sync.Mutex
	nextTEID uint32
	tunnels  map[uint32]*tunnelState
	closed   bool
	done     chan struct{}
}

type tunnelState struct {
	t       Tunnel
	handler Handler
}

// NewEndpoint wraps pc and starts the demux loop.
func NewEndpoint(pc PacketConn) *Endpoint {
	e := &Endpoint{
		pc:       pc,
		clk:      simnet.ClockOf(pc),
		nextTEID: 1,
		tunnels:  make(map[uint32]*tunnelState),
		done:     make(chan struct{}),
	}
	e.clk.Go(e.readLoop)
	return e
}

// AllocateTEID reserves a fresh local TEID with the given inbound
// handler; the remote side is bound later with Bind (mirroring how
// S1AP exchanges TEIDs in two messages).
func (e *Endpoint) AllocateTEID(h Handler) uint32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	teid := e.nextTEID
	e.nextTEID++
	e.tunnels[teid] = &tunnelState{t: Tunnel{LocalTEID: teid}, handler: h}
	return teid
}

// Bind completes a tunnel: packets sent on localTEID go to peer with
// remoteTEID.
func (e *Endpoint) Bind(localTEID, remoteTEID uint32, peer net.Addr) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	ts, ok := e.tunnels[localTEID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownTEID, localTEID)
	}
	ts.t.RemoteTEID = remoteTEID
	ts.t.Peer = peer
	return nil
}

// Release tears down a tunnel.
func (e *Endpoint) Release(localTEID uint32) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.tunnels, localTEID)
}

// NumTunnels reports the number of live tunnels.
func (e *Endpoint) NumTunnels() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.tunnels)
}

// Send encapsulates payload on the tunnel identified by localTEID.
func (e *Endpoint) Send(localTEID uint32, payload []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	ts, ok := e.tunnels[localTEID]
	if !ok || ts.t.Peer == nil {
		e.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownTEID, localTEID)
	}
	peer, remote := ts.t.Peer, ts.t.RemoteTEID
	e.mu.Unlock()
	_, err := e.pc.WriteTo(Encode(remote, payload), peer)
	return err
}

// readLoop demultiplexes inbound G-PDUs until Close.
func (e *Endpoint) readLoop() {
	buf := make([]byte, 64*1024)
	for {
		select {
		case <-e.done:
			return
		default:
		}
		e.pc.SetReadDeadline(e.clk.Now().Add(200 * time.Millisecond))
		n, from, err := e.pc.ReadFrom(buf)
		if err != nil {
			continue // deadline tick or transient; Close exits via done
		}
		h, payload, err := Decode(buf[:n])
		if err != nil || h.MessageType != messageTypeGPDU {
			continue // malformed or non-G-PDU traffic is dropped
		}
		e.mu.Lock()
		ts, ok := e.tunnels[h.TEID]
		e.mu.Unlock()
		if !ok || ts.handler == nil {
			continue
		}
		data := make([]byte, len(payload))
		copy(data, payload)
		ts.handler(data, from)
	}
}

// Close stops the endpoint and its socket.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.done)
	return e.pc.Close()
}
