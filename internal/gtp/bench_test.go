package gtp_test

import (
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dlte/internal/gtp"
	"dlte/internal/simnet"
)

// benchPair builds two GTP endpoints on a zero-latency wall-clock
// simnet with one bound tunnel in each direction.
type benchPair struct {
	net      *simnet.Network
	a, b     *gtp.Endpoint
	aTEID    uint32 // local TEID at a (b sends to it)
	bTEID    uint32 // local TEID at b (a sends to it)
	received atomic.Uint64
}

func newBenchPair(tb testing.TB) *benchPair {
	tb.Helper()
	p := &benchPair{net: simnet.New(simnet.Link{}, 1)}
	ha := p.net.MustAddHost("enb")
	hb := p.net.MustAddHost("sgw")
	pca, err := ha.ListenPacket(gtp.Port)
	if err != nil {
		tb.Fatal(err)
	}
	pcb, err := hb.ListenPacket(gtp.Port)
	if err != nil {
		tb.Fatal(err)
	}
	p.a = gtp.NewEndpoint(pca)
	p.b = gtp.NewEndpoint(pcb)
	p.aTEID = p.a.AllocateTEID(func(payload []byte, from net.Addr) {
		p.received.Add(1)
	})
	p.bTEID = p.b.AllocateTEID(func(payload []byte, from net.Addr) {
		p.received.Add(1)
	})
	if err := p.a.Bind(p.aTEID, p.bTEID, simnet.Addr{Host: "sgw", Port: gtp.Port}); err != nil {
		tb.Fatal(err)
	}
	if err := p.b.Bind(p.bTEID, p.aTEID, simnet.Addr{Host: "enb", Port: gtp.Port}); err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() {
		p.a.Close()
		p.b.Close()
		p.net.Close()
	})
	return p
}

// sendWindowed streams n packets a→b keeping at most window in flight
// (socket buffers are finite; UDP semantics drop on overflow), then
// waits for the far demux handler to have seen all n.
func (p *benchPair) sendWindowed(b *testing.B, n, window int, send func() error) {
	start := p.received.Load()
	for i := 0; i < n; i++ {
		for uint64(i)-(p.received.Load()-start) >= uint64(window) {
			runtime.Gosched()
		}
		if err := send(); err != nil {
			b.Fatal(err)
		}
	}
	for p.received.Load()-start < uint64(n) {
		runtime.Gosched()
	}
}

// stubConn is a PacketConn whose reads return the same pre-encoded
// G-PDU forever, isolating the endpoint's demux step (header decode,
// TEID table lookup, handler dispatch) from the socket underneath.
type stubConn struct {
	pkt    []byte
	closed atomic.Bool
}

var stubFrom net.Addr = simnet.Addr{Host: "peer", Port: gtp.Port}

func (s *stubConn) WriteTo(b []byte, addr net.Addr) (int, error) { return len(b), nil }

func (s *stubConn) ReadFrom(b []byte) (int, net.Addr, error) {
	if s.closed.Load() {
		return 0, nil, simnet.ErrClosed
	}
	return copy(b, s.pkt), stubFrom, nil
}

func (s *stubConn) ReadFromOwned() ([]byte, net.Addr, error) {
	if s.closed.Load() {
		return nil, nil, simnet.ErrClosed
	}
	return s.pkt, stubFrom, nil
}

func (s *stubConn) SetReadDeadline(t time.Time) error { return nil }

func (s *stubConn) Close() error { s.closed.Store(true); return nil }

// BenchmarkDemux measures the pure receive-side demux rate: the read
// loop spins against a stub socket that always has a 512-byte G-PDU
// ready, so one iteration is exactly decode + TEID lookup + dispatch.
func BenchmarkDemux(b *testing.B) {
	payload := make([]byte, 512)
	enc := gtp.Encode(1, payload)
	pkt := make([]byte, len(enc)) // exact cap: never recycled into the pool
	copy(pkt, enc)
	var count atomic.Uint64
	e := gtp.NewEndpoint(&stubConn{pkt: pkt})
	e.AllocateTEID(func(p []byte, _ net.Addr) { count.Add(1) }) // TEID 1
	b.Cleanup(func() { e.Close() })
	b.ReportAllocs()
	b.ResetTimer()
	start := count.Load()
	for count.Load()-start < uint64(b.N) {
		runtime.Gosched()
	}
	b.StopTimer()
}

// TestSendDemuxZeroAlloc gates the fast path: steady-state tunneled
// send (pooled buffer, headroom encap, owned handoff) plus receive
// demux must not allocate. A regression here is a performance bug even
// though every packet still arrives — hence a test, not a benchmark.
func TestSendDemuxZeroAlloc(t *testing.T) {
	p := newBenchPair(t)
	payload := make([]byte, 512)
	send := func() {
		start := p.received.Load()
		buf := gtp.GetBuffer()
		buf = append(buf, payload...)
		if err := p.a.SendBuffer(p.aTEID, buf); err != nil {
			t.Fatal(err)
		}
		for p.received.Load() == start {
			runtime.Gosched()
		}
	}
	for i := 0; i < 64; i++ {
		send() // warm the buffer pools and the socket path
	}
	// The demux runs on the endpoint's read goroutine; AllocsPerRun
	// still sees it (the counter is process-wide). Averaging over many
	// runs forgives a stray runtime allocation, not a per-packet one.
	if avg := testing.AllocsPerRun(200, send); avg > 0.5 {
		t.Fatalf("send+demux allocates %.2f times per packet, want 0", avg)
	}
}

// BenchmarkEndpointSendDemux drives G-PDUs a→b as fast as the demux
// keeps up: one iteration = encap (payload copied into a pooled
// buffer) + socket + TEID demux + handler dispatch.
func BenchmarkEndpointSendDemux(b *testing.B) {
	p := newBenchPair(b)
	payload := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	p.sendWindowed(b, b.N, 64, func() error { return p.a.Send(p.aTEID, payload) })
	b.StopTimer()
}

// BenchmarkEndpointSendBufferDemux is the zero-copy variant: payload
// built in place behind reserved GTP headroom, ownership handed down
// the stack — the fast path the eNB and gateway forwarding loops use.
func BenchmarkEndpointSendBufferDemux(b *testing.B) {
	p := newBenchPair(b)
	payload := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	p.sendWindowed(b, b.N, 64, func() error {
		buf := gtp.GetBuffer()
		buf = append(buf, payload...)
		return p.a.SendBuffer(p.aTEID, buf)
	})
	b.StopTimer()
}
