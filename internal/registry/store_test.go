package registry

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dlte/internal/geo"
	"dlte/internal/simnet"
)

func testKey(i int) KeyRecord {
	return KeyRecord{
		IMSI: fmt.Sprintf("00101%010d", i),
		K:    fmt.Sprintf("%032x", uint64(i)+1),
		OPc:  fmt.Sprintf("%032x", uint64(i)+2),
	}
}

// seedGrid fills a store with n APs on a 1 km grid (the E10 layout).
func seedGrid(tb testing.TB, s *Store, n int) {
	tb.Helper()
	cols := 64
	for i := 0; i < n; i++ {
		r := rec(fmt.Sprintf("ap-%04d", i), float64(i%cols)*1000, float64(i/cols)*1000)
		if err := s.Join(r); err != nil {
			tb.Fatal(err)
		}
	}
}

// TestInRegionGridMatchesLinear cross-checks the spatial-grid query
// path against a brute-force scan over random rectangles, including
// degenerate and out-of-bounds ones.
func TestInRegionGridMatchesLinear(t *testing.T) {
	s := NewStore()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		r := rec(fmt.Sprintf("ap-%04d", i), rng.Float64()*50_000, rng.Float64()*30_000)
		if i%3 == 0 {
			r.Band = "LTE band 13 (700 MHz)"
		}
		if err := s.Join(r); err != nil {
			t.Fatal(err)
		}
	}
	all := s.List("")
	rects := []geo.Rect{
		geo.NewRect(geo.Pt(-100, -100), geo.Pt(100, 100)),   // corner sliver
		geo.NewRect(geo.Pt(0, 0), geo.Pt(50_000, 30_000)),   // everything
		geo.NewRect(geo.Pt(60_000, 0), geo.Pt(70_000, 100)), // fully outside
		geo.NewRect(geo.Pt(5, 5), geo.Pt(5, 5)),             // degenerate point
	}
	for i := 0; i < 50; i++ {
		a := geo.Pt(rng.Float64()*60_000-5000, rng.Float64()*40_000-5000)
		b := geo.Pt(a.X+rng.Float64()*20_000, a.Y+rng.Float64()*20_000)
		rects = append(rects, geo.NewRect(a, b))
	}
	for _, band := range []string{"", "LTE band 5 (850 MHz)", "LTE band 13 (700 MHz)", "nope"} {
		for _, rect := range rects {
			got := s.InRegion(band, rect)
			var want []APRecord
			for _, r := range all {
				if (band == "" || r.Band == band) && rect.Contains(r.Position()) {
					want = append(want, r)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("band %q rect %+v: grid found %d, linear %d", band, rect, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("band %q rect %+v: [%d] = %+v, want %+v", band, rect, i, got[i], want[i])
				}
			}
		}
	}
}

// TestStoreReadsZeroAlloc pins the copy-on-write promise: at steady
// state (no interleaved mutations) List, Keys, Get, FetchKey,
// Revision, and grid-served InRegionAppend perform zero allocations —
// in particular, region queries must NOT allocate a full-table copy
// the way the pre-grid implementation did.
func TestStoreReadsZeroAlloc(t *testing.T) {
	s := NewStore()
	seedGrid(t, s, 2048)
	for i := 0; i < 64; i++ {
		if err := s.PublishKey(testKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	rect := geo.NewRect(geo.Pt(-500, -500), geo.Pt(3500, 1500)) // 8 of 2048 APs
	buf := make([]APRecord, 0, 64)
	warm := s.InRegionAppend("", rect, buf[:0])
	if len(warm) != 8 {
		t.Fatalf("region query found %d APs, want 8", len(warm))
	}
	imsi := testKey(0).IMSI
	checks := map[string]func(){
		"List":           func() { _ = s.List("") },
		"ListBand":       func() { _ = s.List("LTE band 5 (850 MHz)") },
		"Keys":           func() { _ = s.Keys() },
		"Get":            func() { _, _ = s.Get("ap-0000") },
		"FetchKey":       func() { _, _ = s.FetchKey(imsi) },
		"Revision":       func() { _ = s.Revision() },
		"InRegionAppend": func() { _ = s.InRegionAppend("", rect, buf[:0]) },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects/op at steady state, want 0", name, allocs)
		}
	}
}

// TestListSharedSnapshotStable: a snapshot handed out before a
// mutation must not change under the reader's feet.
func TestListSharedSnapshotStable(t *testing.T) {
	s := NewStore()
	seedGrid(t, s, 8)
	before := s.List("")
	if err := s.Leave("ap-0003"); err != nil {
		t.Fatal(err)
	}
	if len(before) != 8 || before[3].ID != "ap-0003" {
		t.Fatalf("pre-mutation snapshot changed: %+v", before)
	}
	after := s.List("")
	if len(after) != 7 {
		t.Fatalf("post-mutation List = %d records, want 7", len(after))
	}
}

// TestDeltasSince covers the revision log: contiguity, incremental
// reads, and the aged-out gap signal.
func TestDeltasSince(t *testing.T) {
	s := NewStore()
	seedGrid(t, s, 4)
	if err := s.PublishKey(testKey(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Leave("ap-0002"); err != nil {
		t.Fatal(err)
	}
	ds, ok := s.DeltasSince(0, nil)
	if !ok || len(ds) != 6 {
		t.Fatalf("DeltasSince(0) = %d deltas, ok=%v; want 6, true", len(ds), ok)
	}
	for i, d := range ds {
		if d.Rev != uint64(i+1) {
			t.Fatalf("delta %d has rev %d; log not contiguous", i, d.Rev)
		}
	}
	if ds[4].Kind != DeltaKey || ds[5].Kind != DeltaLeave || ds[5].ID != "ap-0002" {
		t.Fatalf("unexpected tail deltas: %+v", ds[4:])
	}
	ds, ok = s.DeltasSince(4, nil)
	if !ok || len(ds) != 2 {
		t.Fatalf("DeltasSince(4) = %d deltas, ok=%v", len(ds), ok)
	}
	if ds, ok = s.DeltasSince(s.Revision(), nil); !ok || len(ds) != 0 {
		t.Fatalf("DeltasSince(current) = %d deltas, ok=%v", len(ds), ok)
	}
}

// TestDeltaLogAgesOut pushes past the ring capacity and checks both
// the gap signal and that the retained window still replays exactly.
func TestDeltaLogAgesOut(t *testing.T) {
	s := NewStore()
	total := defaultLogCap + 100
	for i := 0; i < total; i++ {
		if err := s.PublishKey(testKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.DeltasSince(0, nil); ok {
		t.Fatal("rev 0 should have aged out of the log")
	}
	if _, ok := s.DeltasSince(99, nil); ok {
		t.Fatal("rev 99 should have aged out of the log")
	}
	ds, ok := s.DeltasSince(100, nil)
	if !ok {
		t.Fatal("oldest retained revision reported as a gap")
	}
	if len(ds) != defaultLogCap {
		t.Fatalf("retained window = %d deltas, want %d", len(ds), defaultLogCap)
	}
	if ds[0].Rev != 101 || ds[len(ds)-1].Rev != uint64(total) {
		t.Fatalf("window spans revs [%d, %d], want [101, %d]", ds[0].Rev, ds[len(ds)-1].Rev, total)
	}
}

// TestWatch verifies the mutation wakeup channel semantics the
// subscription pusher relies on.
func TestWatch(t *testing.T) {
	s := NewStore()
	ch := s.Watch()
	select {
	case <-ch:
		t.Fatal("watch channel closed before any mutation")
	default:
	}
	if ch2 := s.Watch(); ch2 != ch {
		t.Fatal("Watch between mutations returned a different channel")
	}
	seedGrid(t, s, 1)
	select {
	case <-ch:
	default:
		t.Fatal("watch channel not closed by a mutation")
	}
}

// newMirrorWorld runs a server plus helpers on a virtual-clock simnet.
func newMirrorWorld(t *testing.T) (*simnet.Network, *Store) {
	t.Helper()
	n := simnet.New(simnet.Link{Latency: time.Millisecond}, 1)
	t.Cleanup(n.Close)
	srvHost := n.MustAddHost("registry")
	store := NewStore()
	l, err := srvHost.Listen(8400)
	if err != nil {
		t.Fatal(err)
	}
	go NewServer(store).Serve(l)
	return n, store
}

// TestMirrorLiveFeed: a mirror subscribed at the current revision sees
// joins, leaves, and key publications as they happen, and WaitRev
// tracks the server's revision.
func TestMirrorLiveFeed(t *testing.T) {
	n, store := newMirrorWorld(t)
	host := n.MustAddHost("obs")
	m, err := NewMirror(host.Dial, "registry:8400", store.Revision())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if err := store.Join(rec("ap1", 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := store.PublishKey(testKey(7)); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitRev(store.Revision(), time.Second); err != nil {
		t.Fatal(err)
	}
	if got := m.List(""); len(got) != 1 || got[0].ID != "ap1" {
		t.Fatalf("mirror List = %+v", got)
	}
	if _, ok := m.FetchKey(testKey(7).IMSI); !ok {
		t.Fatal("published key not mirrored")
	}
	if err := store.Leave("ap1"); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitRev(store.Revision(), time.Second); err != nil {
		t.Fatal(err)
	}
	if got := m.List(""); len(got) != 0 {
		t.Fatalf("mirror still lists %+v after leave", got)
	}
	if got := m.InRegion("", geo.NewRect(geo.Pt(-1, -1), geo.Pt(1, 1))); len(got) != 0 {
		t.Fatalf("mirror InRegion after leave = %+v", got)
	}
}

// TestMirrorSnapshotFallback: subscribing from a revision that has
// aged out of the delta log must deliver a full snapshot and then
// resume the live feed seamlessly.
func TestMirrorSnapshotFallback(t *testing.T) {
	n, store := newMirrorWorld(t)
	// Age out revision 1: churn one key well past the log capacity,
	// with two real records and one key in the final state.
	if err := store.Join(rec("ap1", 0, 0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < defaultLogCap+50; i++ {
		if err := store.PublishKey(testKey(i % 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Join(rec("ap2", 5000, 0)); err != nil {
		t.Fatal(err)
	}

	host := n.MustAddHost("late")
	m, err := NewMirror(host.Dial, "registry:8400", 1) // far behind: gap
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.WaitRev(store.Revision(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := m.List(""); len(got) != 2 {
		t.Fatalf("after snapshot fallback, mirror List = %+v", got)
	}
	if _, ok := m.FetchKey(testKey(0).IMSI); !ok {
		t.Fatal("snapshot did not carry keys")
	}
	// The feed must be live after the fallback.
	if err := store.Join(rec("ap3", 9000, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitRev(store.Revision(), time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get("ap3"); !ok {
		t.Fatal("live join after snapshot fallback not mirrored")
	}
}

// TestMirrorKeysSince checks incremental key sync: each call hands
// back only keys that arrived after the fed-back revision.
func TestMirrorKeysSince(t *testing.T) {
	n, store := newMirrorWorld(t)
	host := n.MustAddHost("obs")
	m, err := NewMirror(host.Dial, "registry:8400", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if err := store.PublishKey(testKey(1)); err != nil {
		t.Fatal(err)
	}
	if err := store.PublishKey(testKey(2)); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitRev(store.Revision(), time.Second); err != nil {
		t.Fatal(err)
	}
	keys, upTo := m.KeysSince(0)
	if len(keys) != 2 {
		t.Fatalf("KeysSince(0) = %d keys, want 2", len(keys))
	}
	if more, _ := m.KeysSince(upTo); len(more) != 0 {
		t.Fatalf("KeysSince(%d) = %d keys, want 0", upTo, len(more))
	}
	if err := store.PublishKey(testKey(3)); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitRev(store.Revision(), time.Second); err != nil {
		t.Fatal(err)
	}
	more, upTo2 := m.KeysSince(upTo)
	if len(more) != 1 || more[0].IMSI != testKey(3).IMSI {
		t.Fatalf("KeysSince(%d) = %+v, want just key 3", upTo, more)
	}
	if upTo2 < upTo {
		t.Fatalf("through-revision went backwards: %d < %d", upTo2, upTo)
	}
}

// TestClientDeltaGap: pulling deltas from an aged-out revision must
// surface the typed sentinel so callers know to resync.
func TestClientDeltaGap(t *testing.T) {
	c, store := newClientServer(t)
	for i := 0; i < defaultLogCap+10; i++ {
		if err := store.PublishKey(testKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.DeltasSince(0); !errors.Is(err, ErrDeltaGap) {
		t.Fatalf("DeltasSince(0) err = %v, want ErrDeltaGap", err)
	}
	ds, rev, err := c.DeltasSince(store.Revision() - 3)
	if err != nil || len(ds) != 3 || rev != store.Revision() {
		t.Fatalf("DeltasSince(tail) = %d deltas, rev %d, err %v", len(ds), rev, err)
	}
}

// TestClientRevisionAndDeltas exercises the lightweight rev probe and
// a delta pull over the wire end to end.
func TestClientRevisionAndDeltas(t *testing.T) {
	c, store := newClientServer(t)
	rev0, err := c.Revision()
	if err != nil || rev0 != 0 {
		t.Fatalf("Revision = %d, %v", rev0, err)
	}
	if err := c.Join(rec("ap1", 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := c.PublishKey(testKey(5)); err != nil {
		t.Fatal(err)
	}
	rev, err := c.Revision()
	if err != nil || rev != store.Revision() || rev != 2 {
		t.Fatalf("Revision = %d, %v; store at %d", rev, err, store.Revision())
	}
	ds, drev, err := c.DeltasSince(0)
	if err != nil || len(ds) != 2 || drev != rev {
		t.Fatalf("DeltasSince(0) = %+v, rev %d, err %v", ds, drev, err)
	}
	if ds[0].Kind != DeltaJoin || ds[0].AP.ID != "ap1" || ds[1].Kind != DeltaKey {
		t.Fatalf("deltas = %+v", ds)
	}
}
