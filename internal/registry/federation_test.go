package registry

import (
	"testing"
	"time"

	"dlte/internal/auth"
	"dlte/internal/simnet"
)

// fedWorld brings up two independent registry operators on a simnet.
func fedWorld(t *testing.T) (*simnet.Network, *Store, *Store) {
	t.Helper()
	n := simnet.New(simnet.Link{Latency: 2 * time.Millisecond}, 1)
	t.Cleanup(n.Close)
	storeA, storeB := NewStore(), NewStore()
	for name, st := range map[string]*Store{"reg-a": storeA, "reg-b": storeB} {
		host := n.MustAddHost(name)
		l, err := host.Listen(8400)
		if err != nil {
			t.Fatal(err)
		}
		go NewServer(st).Serve(l)
	}
	return n, storeA, storeB
}

func TestFederationSyncOnce(t *testing.T) {
	n, storeA, storeB := fedWorld(t)
	storeB.Join(rec("remote-ap", 9000, 0))
	sim, _ := auth.NewSIM("001010000000601")
	storeB.PublishKey(NewKeyRecord(auth.KeyPublication{IMSI: sim.IMSI, K: sim.K, OPc: sim.OPc}))

	hostA, _ := n.Host("reg-a")
	fed := NewFederation(storeA, hostA.Dial)
	t.Cleanup(fed.Close)
	merged, err := fed.SyncOnce("reg-b:8400")
	if err != nil {
		t.Fatal(err)
	}
	if merged != 2 {
		t.Errorf("merged = %d, want 2 (one AP record + one key)", merged)
	}
	if _, ok := storeA.Get("remote-ap"); !ok {
		t.Error("remote AP record not merged")
	}
	if _, ok := storeA.FetchKey(string(sim.IMSI)); !ok {
		t.Error("remote key not merged")
	}
	if syncs, fails := fed.Stats(); syncs != 1 || fails != 0 {
		t.Errorf("stats = %d/%d", syncs, fails)
	}
}

func TestFederationPeriodicPull(t *testing.T) {
	n, storeA, storeB := fedWorld(t)
	hostA, _ := n.Host("reg-a")
	fed := NewFederation(storeA, hostA.Dial)
	t.Cleanup(fed.Close)
	fed.AddPeer("reg-b:8400", 30*time.Millisecond)

	// A record added at B after peering shows up at A within a few
	// pull intervals.
	storeB.Join(rec("late-ap", 1, 1))
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := storeA.Get("late-ap"); ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("late record never federated")
}

func TestFederationBidirectional(t *testing.T) {
	n, storeA, storeB := fedWorld(t)
	hostA, _ := n.Host("reg-a")
	hostB, _ := n.Host("reg-b")
	fedA := NewFederation(storeA, hostA.Dial)
	fedB := NewFederation(storeB, hostB.Dial)
	t.Cleanup(func() { fedA.Close(); fedB.Close() })

	storeA.Join(rec("ap-of-a", 0, 0))
	storeB.Join(rec("ap-of-b", 5000, 0))
	if _, err := fedA.SyncOnce("reg-b:8400"); err != nil {
		t.Fatal(err)
	}
	if _, err := fedB.SyncOnce("reg-a:8400"); err != nil {
		t.Fatal(err)
	}
	// Both operators now serve the union — an AP querying either
	// registry discovers the full contention domain.
	if len(storeA.List("")) != 2 || len(storeB.List("")) != 2 {
		t.Errorf("union not reached: a=%d b=%d", len(storeA.List("")), len(storeB.List("")))
	}
}

func TestFederationPeerFailure(t *testing.T) {
	n, storeA, _ := fedWorld(t)
	hostA, _ := n.Host("reg-a")
	fed := NewFederation(storeA, hostA.Dial)
	t.Cleanup(fed.Close)
	if _, err := fed.SyncOnce("ghost:8400"); err == nil {
		t.Fatal("sync to nonexistent peer succeeded")
	}
	// Periodic pulls from a dead peer count failures but do not crash.
	fed.AddPeer("ghost:8400", 20*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, fails := fed.Stats(); fails >= 2 {
			fed.RemovePeer("ghost:8400")
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("failures never recorded")
}

func TestFederationAddPeerAfterClose(t *testing.T) {
	n, storeA, _ := fedWorld(t)
	hostA, _ := n.Host("reg-a")
	fed := NewFederation(storeA, hostA.Dial)
	fed.Close()
	fed.AddPeer("reg-b:8400", time.Millisecond) // must be a no-op
	time.Sleep(30 * time.Millisecond)
	if syncs, _ := fed.Stats(); syncs != 0 {
		t.Error("closed federation synced")
	}
}
