package registry

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"dlte/internal/geo"
	"dlte/internal/simnet"

	"slices"
)

// Mirror is a local replica of the registry fed by the revision-delta
// subscription: joins, leaves, and key publications stream in as they
// happen, so reads (peer discovery, key sync) are local and the wire
// carries only changes — the scalable replacement for the full-list
// polling that core.AccessPoint used before.
type Mirror struct {
	sub *Subscription
	clk simnet.Clock

	mu      sync.Mutex
	onDelta func(Delta)
	aps     map[string]APRecord
	keys    map[string]KeyRecord
	keyLog  []keyArrival // arrival order; revisions non-decreasing
	rev     uint64
	inSnap  bool
	snapRev uint64
	err     error
}

// keyArrival remembers at which revision a key became visible locally,
// so KeysSince hands incremental syncs only the new material.
type keyArrival struct {
	rev uint64
	key KeyRecord
}

// NewMirror subscribes at addr from fromRev and starts the feed
// goroutine on the connection's clock. fromRev 0 replicates the full
// registry; a recent revision replays only what changed since.
func NewMirror(dial func(addr string) (net.Conn, error), addr string, fromRev uint64) (*Mirror, error) {
	sub, err := Subscribe(dial, addr, fromRev)
	if err != nil {
		return nil, err
	}
	m := &Mirror{
		sub:  sub,
		clk:  simnet.ClockOf(sub.Conn()),
		aps:  make(map[string]APRecord),
		keys: make(map[string]KeyRecord),
		rev:  fromRev,
	}
	m.clk.Go(m.loop)
	return m, nil
}

func (m *Mirror) loop() {
	for {
		ch, err := m.sub.next()
		if err != nil {
			m.mu.Lock()
			if m.err == nil {
				m.err = err
			}
			m.mu.Unlock()
			return
		}
		m.apply(ch)
	}
}

func (m *Mirror) apply(ch chunk) {
	m.mu.Lock()
	switch ch.kind {
	case respSnapshot:
		m.aps = make(map[string]APRecord)
		m.keys = make(map[string]KeyRecord)
		m.keyLog = m.keyLog[:0]
		m.inSnap = true
		m.snapRev = ch.rev
	case respRecords:
		for _, r := range ch.records {
			m.aps[r.ID] = r
		}
	case respKeys:
		for _, k := range ch.keys {
			m.keys[k.IMSI] = k
			m.keyLog = append(m.keyLog, keyArrival{rev: ch.rev, key: k})
		}
		// The keys chunks are the tail of a snapshot; its final frame
		// completes the resync.
		if m.inSnap && !ch.more {
			m.rev = m.snapRev
			m.inSnap = false
		}
	case respDeltas:
		for _, d := range ch.deltas {
			switch d.Kind {
			case DeltaJoin:
				m.aps[d.AP.ID] = d.AP
			case DeltaLeave:
				delete(m.aps, d.ID)
			case DeltaKey:
				m.keys[d.Key.IMSI] = d.Key
				m.keyLog = append(m.keyLog, keyArrival{rev: d.Rev, key: d.Key})
			}
			m.rev = d.Rev
		}
	case respErr:
		if m.err == nil {
			m.err = chunkError(ch)
		}
	}
	onDelta := m.onDelta
	m.mu.Unlock()
	if onDelta != nil && ch.kind == respDeltas {
		for _, d := range ch.deltas {
			onDelta(d)
		}
	}
}

// SetOnDelta installs an observer for every applied delta (called on
// the mirror's feed goroutine, outside the mirror lock). E10 uses it
// to timestamp join→discoverable latency.
func (m *Mirror) SetOnDelta(fn func(Delta)) {
	m.mu.Lock()
	m.onDelta = fn
	m.mu.Unlock()
}

// Rev reports the last fully applied revision.
func (m *Mirror) Rev() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rev
}

// Err reports a broken feed (nil while healthy).
func (m *Mirror) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// WaitRev blocks until the mirror has applied revision target, polling
// on the virtual clock. It fails fast if the feed broke.
func (m *Mirror) WaitRev(target uint64, timeout time.Duration) error {
	deadline := m.clk.Now().Add(timeout)
	for {
		m.mu.Lock()
		rev, err := m.rev, m.err
		m.mu.Unlock()
		if rev >= target {
			return nil
		}
		if err != nil {
			return fmt.Errorf("registry: mirror feed: %w", err)
		}
		if !m.clk.Now().Before(deadline) {
			return errors.New("registry: mirror revision wait timed out")
		}
		m.clk.Sleep(time.Millisecond)
	}
}

// List returns the mirrored records in a band ("" = all), sorted by ID.
// The slice is the caller's.
func (m *Mirror) List(band string) []APRecord {
	m.mu.Lock()
	var out []APRecord
	for _, r := range m.aps {
		if band == "" || r.Band == band {
			out = append(out, r)
		}
	}
	m.mu.Unlock()
	slices.SortFunc(out, func(a, b APRecord) int { return strings.Compare(a.ID, b.ID) })
	return out
}

// Get fetches one mirrored record.
func (m *Mirror) Get(id string) (APRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.aps[id]
	return r, ok
}

// InRegion returns mirrored records in a band within the rectangle,
// sorted by ID.
func (m *Mirror) InRegion(band string, rect geo.Rect) []APRecord {
	m.mu.Lock()
	var out []APRecord
	for _, r := range m.aps {
		if (band == "" || r.Band == band) && rect.Contains(r.Position()) {
			out = append(out, r)
		}
	}
	m.mu.Unlock()
	slices.SortFunc(out, func(a, b APRecord) int { return strings.Compare(a.ID, b.ID) })
	return out
}

// FetchKey retrieves one mirrored key.
func (m *Mirror) FetchKey(imsi string) (KeyRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k, ok := m.keys[imsi]
	return k, ok
}

// KeysSince returns the keys that arrived after revision `after`, in
// arrival order, plus the revision the result is current through —
// feed that back as the next call's `after` for incremental key sync.
func (m *Mirror) KeysSince(after uint64) ([]KeyRecord, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	i := sort.Search(len(m.keyLog), func(i int) bool { return m.keyLog[i].rev > after })
	if i == len(m.keyLog) {
		return nil, m.rev
	}
	out := make([]KeyRecord, 0, len(m.keyLog)-i)
	for _, e := range m.keyLog[i:] {
		out = append(out, e.key)
	}
	return out, m.rev
}

// Traffic reports total bytes the subscription moved on the wire.
func (m *Mirror) Traffic() (tx, rx uint64) { return m.sub.Traffic() }

// Close tears down the feed.
func (m *Mirror) Close() error { return m.sub.Close() }
