package registry

import (
	"errors"
	"fmt"

	"dlte/internal/geo"
	"dlte/internal/wire"
)

// ProtocolVersion identifies the registry wire protocol. Version 1 was
// JSON-over-frames; version 2 (this codec) is wire.Writer/Reader binary
// with chunked bulk responses and the revision-delta subscription. The
// version is implicit in the op space — a v1 JSON request starts with
// '{' (0x7B), which v2 rejects as an unknown op and closes the
// connection, so mixed deployments fail fast instead of misparsing.
const ProtocolVersion = 2

// Request ops (first byte of every request frame).
const (
	opJoin       uint8 = 1
	opLeave      uint8 = 2
	opList       uint8 = 3
	opRegion     uint8 = 4
	opPublishKey uint8 = 5
	opFetchKey   uint8 = 6
	opKeys       uint8 = 7
	opRev        uint8 = 8  // lightweight revision probe
	opDeltas     uint8 = 9  // pull deltas since a revision
	opSubscribe  uint8 = 10 // switch the connection to the push feed
)

// Response kinds (first byte of every response frame).
const (
	respErr      uint8 = 0 // U8 code, String16 message
	respAck      uint8 = 1 // U64 revision
	respRecords  uint8 = 2 // U64 rev, U8 more, U16 count, records
	respKeys     uint8 = 3 // U64 rev, U8 more, U32 count, keys
	respRev      uint8 = 4 // U64 revision
	respDeltas   uint8 = 5 // U64 rev, U8 more, U16 count, deltas
	respSnapshot uint8 = 6 // U64 rev; records+keys chunks follow on the feed
)

// Error codes carried by respErr so clients recover typed sentinels.
const (
	errCodeGeneric  uint8 = 0
	errCodeNotFound uint8 = 1
	errCodeGap      uint8 = 2
)

// Chunk caps: bulk responses split into frames well under
// wire.MaxFrameSize (a 100k-key dump is ~9 MB — far past one frame).
// Decoders reject counts above these bounds before allocating.
const (
	maxRecordsPerFrame = 2048
	maxKeysPerFrame    = 4096
	maxDeltasPerFrame  = 1024
)

func encodeAP(w *wire.Writer, r APRecord) {
	w.String8(r.ID)
	w.String8(r.X2Addr)
	w.F64(r.X)
	w.F64(r.Y)
	w.String8(r.Band)
	w.F64(r.EIRPdBm)
	w.F64(r.HeightM)
	w.String8(r.Mode)
}

func decodeAP(r *wire.Reader) APRecord {
	return APRecord{
		ID:      r.String8(),
		X2Addr:  r.String8(),
		X:       r.F64(),
		Y:       r.F64(),
		Band:    r.String8(),
		EIRPdBm: r.F64(),
		HeightM: r.F64(),
		Mode:    r.String8(),
	}
}

func encodeKey(w *wire.Writer, k KeyRecord) {
	w.String8(k.IMSI)
	w.String8(k.K)
	w.String8(k.OPc)
}

func decodeKey(r *wire.Reader) KeyRecord {
	return KeyRecord{IMSI: r.String8(), K: r.String8(), OPc: r.String8()}
}

func encodeDelta(w *wire.Writer, d Delta) {
	w.U8(d.Kind)
	w.U64(d.Rev)
	switch d.Kind {
	case DeltaJoin:
		encodeAP(w, d.AP)
	case DeltaLeave:
		w.String8(d.ID)
	case DeltaKey:
		encodeKey(w, d.Key)
	}
}

func decodeDelta(r *wire.Reader) (Delta, error) {
	d := Delta{Kind: r.U8(), Rev: r.U64()}
	switch d.Kind {
	case DeltaJoin:
		d.AP = decodeAP(r)
	case DeltaLeave:
		d.ID = r.String8()
	case DeltaKey:
		d.Key = decodeKey(r)
	default:
		return d, fmt.Errorf("registry: unknown delta kind %d", d.Kind)
	}
	return d, r.Err()
}

// request is the decoded form of one request frame. Exactly the fields
// implied by op are meaningful.
type request struct {
	op      uint8
	ap      APRecord // join
	id      string   // leave
	band    string   // list, region
	rect    geo.Rect // region
	key     KeyRecord
	imsi    string // fetchKey
	fromRev uint64 // deltas, subscribe
}

func decodeRequest(b []byte) (request, error) {
	r := wire.NewReader(b)
	req := request{op: r.U8()}
	switch req.op {
	case opJoin:
		req.ap = decodeAP(r)
	case opLeave:
		req.id = r.String8()
	case opList:
		req.band = r.String8()
	case opRegion:
		req.band = r.String8()
		req.rect = geo.NewRect(geo.Pt(r.F64(), r.F64()), geo.Pt(r.F64(), r.F64()))
	case opPublishKey:
		req.key = decodeKey(r)
	case opFetchKey:
		req.imsi = r.String8()
	case opKeys, opRev:
	case opDeltas, opSubscribe:
		req.fromRev = r.U64()
	default:
		return req, fmt.Errorf("registry: unknown op %d", req.op)
	}
	if err := r.Err(); err != nil {
		return req, err
	}
	if r.Remaining() != 0 {
		return req, fmt.Errorf("registry: %d trailing bytes after op %d", r.Remaining(), req.op)
	}
	return req, nil
}

// chunk is the decoded form of one response frame. Bulk responses span
// several chunks; more marks continuations of the same reply.
type chunk struct {
	kind    uint8
	rev     uint64
	more    bool
	errCode uint8
	errMsg  string
	records []APRecord
	keys    []KeyRecord
	deltas  []Delta
}

// readMore decodes the continuation flag strictly: the codec is
// canonical (one frame, one byte reading), so only 0 and 1 are legal
// encodings of a bool on this protocol.
func readMore(r *wire.Reader) (bool, error) {
	switch r.U8() {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, errors.New("registry: non-canonical bool")
}

func decodeChunk(b []byte) (chunk, error) {
	r := wire.NewReader(b)
	c := chunk{kind: r.U8()}
	switch c.kind {
	case respErr:
		c.errCode = r.U8()
		c.errMsg = r.String16()
	case respAck, respRev, respSnapshot:
		c.rev = r.U64()
	case respRecords:
		c.rev = r.U64()
		var merr error
		if c.more, merr = readMore(r); merr != nil {
			return c, merr
		}
		n := int(r.U16())
		if n > maxRecordsPerFrame {
			return c, fmt.Errorf("registry: record chunk count %d", n)
		}
		if n > 0 {
			c.records = make([]APRecord, n)
			for i := range c.records {
				c.records[i] = decodeAP(r)
			}
		}
	case respKeys:
		c.rev = r.U64()
		var merr error
		if c.more, merr = readMore(r); merr != nil {
			return c, merr
		}
		n := int(r.U32())
		if n > maxKeysPerFrame {
			return c, fmt.Errorf("registry: key chunk count %d", n)
		}
		if n > 0 {
			c.keys = make([]KeyRecord, n)
			for i := range c.keys {
				c.keys[i] = decodeKey(r)
			}
		}
	case respDeltas:
		c.rev = r.U64()
		var merr error
		if c.more, merr = readMore(r); merr != nil {
			return c, merr
		}
		n := int(r.U16())
		if n > maxDeltasPerFrame {
			return c, fmt.Errorf("registry: delta chunk count %d", n)
		}
		if n > 0 {
			c.deltas = make([]Delta, n)
			for i := range c.deltas {
				var err error
				if c.deltas[i], err = decodeDelta(r); err != nil {
					return c, err
				}
			}
		}
	default:
		return c, fmt.Errorf("registry: unknown response kind %d", c.kind)
	}
	if err := r.Err(); err != nil {
		return c, err
	}
	if r.Remaining() != 0 {
		return c, fmt.Errorf("registry: %d trailing bytes after response kind %d", r.Remaining(), c.kind)
	}
	return c, nil
}

// terminal reports whether this chunk completes a reply (no
// continuation frames follow it within the same request/response
// exchange).
func (c chunk) terminal() bool {
	switch c.kind {
	case respRecords, respKeys, respDeltas:
		return !c.more
	}
	return true
}
