package registry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dlte/internal/geo"
	"dlte/internal/simnet"
	"dlte/internal/wire"
)

// Client talks to a registry server over one stream connection.
// Methods are safe for concurrent use (requests serialize).
type Client struct {
	mu sync.Mutex
	fc *wire.FrameConn
	c  net.Conn

	bytesTx atomic.Uint64
	bytesRx atomic.Uint64
}

// Dial connects a client using the given dial function and address.
func Dial(dial func(addr string) (net.Conn, error), addr string) (*Client, error) {
	c, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("registry: dial %s: %w", addr, err)
	}
	return &Client{fc: wire.NewFrameConn(c), c: c}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.c.Close() }

// Traffic reports total bytes sent and received on the wire (payload
// plus frame headers) since the client connected.
func (c *Client) Traffic() (tx, rx uint64) {
	return c.bytesTx.Load(), c.bytesRx.Load()
}

// send ships the writer's frame and accounts the bytes. Caller holds
// c.mu and releases w.
func (c *Client) send(w *wire.Writer) error {
	if err := w.Err(); err != nil {
		return err
	}
	if err := c.fc.Send(w.Bytes()); err != nil {
		return fmt.Errorf("registry: send: %w", err)
	}
	c.bytesTx.Add(uint64(w.Len()) + 4)
	return nil
}

func chunkError(ch chunk) error {
	switch ch.errCode {
	case errCodeNotFound:
		return ErrNotFound
	case errCodeGap:
		return ErrDeltaGap
	}
	return fmt.Errorf("registry: %s", ch.errMsg)
}

// result accumulates a (possibly chunked) reply.
type result struct {
	rev     uint64
	records []APRecord
	keys    []KeyRecord
	deltas  []Delta
}

// exchange sends the request in w (and releases it), then reads reply
// frames until the terminal chunk. Caller holds c.mu.
func (c *Client) exchange(w *wire.Writer) (result, error) {
	err := c.send(w)
	wire.PutWriter(w)
	if err != nil {
		return result{}, err
	}
	var res result
	for {
		b, err := c.fc.RecvOwned()
		if err != nil {
			return res, fmt.Errorf("registry: recv: %w", err)
		}
		c.bytesRx.Add(uint64(len(b)) + 4)
		ch, derr := decodeChunk(b)
		wire.PutFrame(b)
		if derr != nil {
			return res, fmt.Errorf("registry: bad response: %w", derr)
		}
		if ch.kind == respErr {
			return res, chunkError(ch)
		}
		res.rev = ch.rev
		res.records = append(res.records, ch.records...)
		res.keys = append(res.keys, ch.keys...)
		res.deltas = append(res.deltas, ch.deltas...)
		if ch.terminal() {
			return res, nil
		}
	}
}

// Join registers the AP record.
func (c *Client) Join(r APRecord) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := wire.GetWriter()
	w.U8(opJoin)
	encodeAP(w, r)
	_, err := c.exchange(w)
	return err
}

// Leave removes the AP record.
func (c *Client) Leave(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := wire.GetWriter()
	w.U8(opLeave)
	w.String8(id)
	_, err := c.exchange(w)
	return err
}

// List fetches all records in a band ("" = all).
func (c *Client) List(band string) ([]APRecord, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := wire.GetWriter()
	w.U8(opList)
	w.String8(band)
	res, err := c.exchange(w)
	return res.records, err
}

// InRegion fetches records within the rectangle.
func (c *Client) InRegion(band string, rect geo.Rect) ([]APRecord, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := wire.GetWriter()
	w.U8(opRegion)
	w.String8(band)
	w.F64(rect.Min.X)
	w.F64(rect.Min.Y)
	w.F64(rect.Max.X)
	w.F64(rect.Max.Y)
	res, err := c.exchange(w)
	return res.records, err
}

// PublishKey publishes an open-SIM key.
func (c *Client) PublishKey(k KeyRecord) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := wire.GetWriter()
	w.U8(opPublishKey)
	encodeKey(w, k)
	_, err := c.exchange(w)
	return err
}

// FetchKey retrieves one published key.
func (c *Client) FetchKey(imsi string) (KeyRecord, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := wire.GetWriter()
	w.U8(opFetchKey)
	w.String8(imsi)
	res, err := c.exchange(w)
	if err != nil {
		return KeyRecord{}, err
	}
	if len(res.keys) == 0 {
		return KeyRecord{}, ErrNotFound
	}
	return res.keys[0], nil
}

// Keys retrieves all published keys.
func (c *Client) Keys() ([]KeyRecord, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := wire.GetWriter()
	w.U8(opKeys)
	res, err := c.exchange(w)
	return res.keys, err
}

// Revision reads the server's revision counter — one tiny frame each
// way, 0 allocs/op at steady state (this is what WaitForRevision polls
// instead of fetching the full AP list).
func (c *Client) Revision() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := wire.GetWriter()
	w.U8(opRev)
	err := c.send(w)
	wire.PutWriter(w)
	if err != nil {
		return 0, err
	}
	b, err := c.fc.RecvOwned()
	if err != nil {
		return 0, fmt.Errorf("registry: recv: %w", err)
	}
	c.bytesRx.Add(uint64(len(b)) + 4)
	// Decode in place: the reply is one kind byte and the counter.
	if len(b) == 9 && b[0] == respRev {
		rev := binary.BigEndian.Uint64(b[1:])
		wire.PutFrame(b)
		return rev, nil
	}
	ch, derr := decodeChunk(b)
	wire.PutFrame(b)
	if derr != nil {
		return 0, fmt.Errorf("registry: bad response: %w", derr)
	}
	if ch.kind == respErr {
		return 0, chunkError(ch)
	}
	return 0, fmt.Errorf("registry: unexpected response kind %d", ch.kind)
}

// DeltasSince pulls all deltas after fromRev. ErrDeltaGap means fromRev
// has aged out of the server's log and the caller must resync via
// List/Keys (or a Subscription, which handles the fallback itself).
func (c *Client) DeltasSince(fromRev uint64) ([]Delta, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := wire.GetWriter()
	w.U8(opDeltas)
	w.U64(fromRev)
	res, err := c.exchange(w)
	return res.deltas, res.rev, err
}

// WaitForRevision polls the revision counter until it reaches at least
// rev or the timeout elapses; used by tests and scenario setup.
func (c *Client) WaitForRevision(rev uint64, timeout time.Duration) error {
	clk := simnet.ClockOf(c.c)
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		cur, err := c.Revision()
		if err != nil {
			return err
		}
		if cur >= rev {
			return nil
		}
		clk.Sleep(5 * time.Millisecond)
	}
	return errors.New("registry: revision wait timed out")
}

// Subscription is the client side of the revision-delta push feed: one
// opSubscribe request, then the server streams snapshot and delta
// frames. Mirror wraps it with state; use a Subscription directly only
// to meter or relay the raw feed.
type Subscription struct {
	c  net.Conn
	fc *wire.FrameConn

	bytesTx atomic.Uint64
	bytesRx atomic.Uint64
}

// Subscribe opens a subscription whose feed starts after fromRev.
// Subscribing from 0 on a populated server yields a full snapshot
// first; subscribing from a recent revision yields only the deltas.
func Subscribe(dial func(addr string) (net.Conn, error), addr string, fromRev uint64) (*Subscription, error) {
	c, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("registry: dial %s: %w", addr, err)
	}
	s := &Subscription{c: c, fc: wire.NewFrameConn(c)}
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	w.U8(opSubscribe)
	w.U64(fromRev)
	if err := s.fc.Send(w.Bytes()); err != nil {
		c.Close()
		return nil, fmt.Errorf("registry: subscribe: %w", err)
	}
	s.bytesTx.Add(uint64(w.Len()) + 4)
	return s, nil
}

// next blocks for the next feed frame.
func (s *Subscription) next() (chunk, error) {
	b, err := s.fc.RecvOwned()
	if err != nil {
		return chunk{}, err
	}
	s.bytesRx.Add(uint64(len(b)) + 4)
	ch, derr := decodeChunk(b)
	wire.PutFrame(b)
	return ch, derr
}

// Conn exposes the underlying connection (clock discovery).
func (s *Subscription) Conn() net.Conn { return s.c }

// Traffic reports total bytes sent and received on the wire.
func (s *Subscription) Traffic() (tx, rx uint64) {
	return s.bytesTx.Load(), s.bytesRx.Load()
}

// Close tears down the feed.
func (s *Subscription) Close() error { return s.c.Close() }
