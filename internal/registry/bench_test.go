package registry

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"dlte/internal/geo"
	"dlte/internal/simnet"
	"dlte/internal/wire"
)

// benchStore is a 2048-AP deployment on a 64-column 1 km grid — the
// E10 full-scale population.
func benchStore(tb testing.TB) *Store {
	tb.Helper()
	s := NewStore()
	seedGrid(tb, s, 2048)
	s.List("") // build the snapshot outside the timed region
	return s
}

// benchRect covers 8 of the 2048 APs.
var benchRect = geo.NewRect(geo.Pt(-500, -500), geo.Pt(3500, 1500))

// BenchmarkRegistryLookup measures the discovery-plane read path at
// 2048 registered APs. Both sub-benchmarks are allocation-gated in CI
// (cmd/benchgate): List returns the shared copy-on-write snapshot and
// InRegion walks the spatial grid index, so neither copies or sorts
// the full table per call the way the pre-snapshot store did
// (~1.17 ms/op and 600 KB/op for List at this size).
func BenchmarkRegistryLookup(b *testing.B) {
	s := benchStore(b)
	b.Run("List", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := s.List(""); len(got) != 2048 {
				b.Fatalf("List = %d records", len(got))
			}
		}
	})
	b.Run("InRegion", func(b *testing.B) {
		buf := make([]APRecord, 0, 64)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = s.InRegionAppend("", benchRect, buf[:0])
			if len(buf) != 8 {
				b.Fatalf("InRegion = %d records", len(buf))
			}
		}
	})
	b.Run("Get", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := s.Get("ap-1024"); !ok {
				b.Fatal("missing record")
			}
		}
	})
}

// BenchmarkStoreJoin measures the mutation path (map insert, delta
// log push, watch wakeup) including the amortized snapshot
// invalidation cost it forces on the next read.
func BenchmarkStoreJoin(b *testing.B) {
	s := NewStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Join(rec(fmt.Sprintf("ap-%07d", i%100_000), float64(i%317)*100, float64(i%211)*100)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistryRevisionRTT measures the lightweight revision probe
// end to end over a zero-latency simnet connection — the whole
// request/response cycle that WaitForRevision polls.
func BenchmarkRegistryRevisionRTT(b *testing.B) {
	n := simnet.New(simnet.Link{}, 1)
	defer n.Close()
	srvHost := n.MustAddHost("registry")
	cliHost := n.MustAddHost("client")
	store := NewStore()
	seedGrid(b, store, 64)
	l, err := srvHost.Listen(8400)
	if err != nil {
		b.Fatal(err)
	}
	go NewServer(store).Serve(l)
	c, err := Dial(cliHost.Dial, "registry:8400")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Revision(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Revision(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRegistryLookupZeroAlloc is the hard gate behind the benchmark
// numbers: snapshot reads and grid-served region queries allocate
// nothing per op, independent of table size — a region query must not
// fall back to copying the full 2048-record table.
func TestRegistryLookupZeroAlloc(t *testing.T) {
	s := benchStore(t)
	buf := make([]APRecord, 0, 64)
	if allocs := testing.AllocsPerRun(500, func() { _ = s.List("") }); allocs != 0 {
		t.Errorf("List: %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(500, func() { buf = s.InRegionAppend("", benchRect, buf[:0]) }); allocs != 0 {
		t.Errorf("InRegionAppend: %.1f allocs/op, want 0", allocs)
	}
}

// TestInRegionAllocsScaleWithResult: the allocating convenience
// wrapper may allocate the result slice, but proportionally to the
// hits it returns — not to the 2048-record table.
func TestInRegionAllocsScaleWithResult(t *testing.T) {
	s := benchStore(t)
	allocs := testing.AllocsPerRun(100, func() {
		if got := s.InRegion("", benchRect); len(got) != 8 {
			t.Fatalf("InRegion = %d records", len(got))
		}
	})
	// Growing an 8-element result needs a handful of appends; copying
	// the full table (the old implementation) needed dozens of grow
	// steps plus a 600 KB backing array.
	if allocs > 6 {
		t.Errorf("InRegion allocates %.1f objects per 8-hit query; scaling with table size, not result size", allocs)
	}
}

// revLoopConn is a synchronous in-process registry endpoint: Write
// accepts one framed request and stages the respRev reply that the
// following Reads serve, all on the caller's goroutine. It removes the
// server conn goroutine from the measured window so the allocation
// gate sees only the client fast path (cross-goroutine sync.Pool
// traffic otherwise strands pooled frames in per-P private slots and
// reads as allocs that have nothing to do with the codec).
type revLoopConn struct {
	store *Store
	resp  [13]byte
	off   int
	pend  int
}

func (l *revLoopConn) Write(p []byte) (int, error) {
	if len(p) != 5 || p[4] != opRev {
		return 0, fmt.Errorf("revLoopConn: unexpected frame %x", p)
	}
	binary.BigEndian.PutUint32(l.resp[0:4], 9)
	l.resp[4] = respRev
	binary.BigEndian.PutUint64(l.resp[5:13], l.store.Revision())
	l.off, l.pend = 0, len(l.resp)
	return len(p), nil
}

func (l *revLoopConn) Read(p []byte) (int, error) {
	if l.off == l.pend {
		return 0, io.EOF
	}
	n := copy(p, l.resp[l.off:l.pend])
	l.off += n
	return n, nil
}

func (l *revLoopConn) Close() error                     { return nil }
func (l *revLoopConn) LocalAddr() net.Addr              { return nil }
func (l *revLoopConn) RemoteAddr() net.Addr             { return nil }
func (l *revLoopConn) SetDeadline(time.Time) error      { return nil }
func (l *revLoopConn) SetReadDeadline(time.Time) error  { return nil }
func (l *revLoopConn) SetWriteDeadline(time.Time) error { return nil }

// TestRevisionProbeZeroAlloc gates the client fast path WaitForRevision
// spins on: one pooled frame out, one pooled frame back, in-place
// decode — nothing allocated per probe.
func TestRevisionProbeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector; pooled paths allocate by design")
	}
	store := NewStore()
	seedGrid(t, store, 8)
	loop := &revLoopConn{store: store}
	c := &Client{fc: wire.NewFrameConn(loop), c: loop}
	if _, err := c.Revision(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := c.Revision(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Revision round trip: %.2f allocs/op, want 0", allocs)
	}
}

// TestWaitForRevisionUsesRevProbe pins the WaitForRevision traffic
// shape: polling must cost tiny fixed-size frames, not full list
// pulls (a 2048-AP list is ~180 KB; the rev probe is 13 bytes each
// way).
func TestWaitForRevisionUsesRevProbe(t *testing.T) {
	n := simnet.New(simnet.Link{Latency: time.Millisecond}, 1)
	defer n.Close()
	srvHost := n.MustAddHost("registry")
	cliHost := n.MustAddHost("client")
	store := NewStore()
	seedGrid(t, store, 2048)
	l, err := srvHost.Listen(8400)
	if err != nil {
		t.Fatal(err)
	}
	go NewServer(store).Serve(l)
	c, err := Dial(cliHost.Dial, "registry:8400")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForRevision(store.Revision(), time.Second); err != nil {
		t.Fatal(err)
	}
	tx, rx := c.Traffic()
	if total := tx + rx; total > 256 {
		t.Errorf("WaitForRevision moved %d bytes; polling full lists instead of the rev probe?", total)
	}
}
