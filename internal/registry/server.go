package registry

import (
	"net"

	"dlte/internal/simnet"
	"dlte/internal/wire"
)

// Listener abstracts net.Listener / simnet.Listener.
type Listener interface {
	Accept() (net.Conn, error)
	Close() error
}

// Server exposes a Store over the framed binary protocol.
type Server struct {
	store *Store
}

// NewServer wraps a store.
func NewServer(store *Store) *Server { return &Server{store: store} }

// Store returns the underlying store (for in-process seeding).
func (s *Server) Store() *Store { return s.store }

// Serve accepts clients until the listener closes. Run in a goroutine.
func (s *Server) Serve(l Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		simnet.ClockOf(c).Go(func() { s.serveConn(c) })
	}
}

// connState carries per-connection scratch so steady-state request
// handling stays allocation-free.
type connState struct {
	region []APRecord
	deltas []Delta
}

func (s *Server) serveConn(c net.Conn) {
	defer c.Close()
	fc := wire.NewFrameConn(c)
	var cs connState
	for {
		b, err := fc.RecvOwned()
		if err != nil {
			return
		}
		req, derr := decodeRequest(b)
		wire.PutFrame(b)
		if derr != nil {
			// Unknown op or malformed frame: the peer is broken (or
			// speaking protocol v1 JSON) — fail fast.
			sendErr(fc, errCodeGeneric, "bad request")
			return
		}
		if req.op == opSubscribe {
			// The connection becomes a one-way push feed.
			s.serveSubscription(c, fc, req.fromRev)
			return
		}
		if err := s.handle(fc, req, &cs); err != nil {
			return
		}
	}
}

// handle serves one request, writing the response frame(s) to fc. The
// returned error reports a broken connection, not a request failure
// (those travel to the client as respErr).
func (s *Server) handle(fc *wire.FrameConn, req request, cs *connState) error {
	switch req.op {
	case opJoin:
		if err := s.store.Join(req.ap); err != nil {
			return sendErr(fc, errCodeGeneric, err.Error())
		}
		return sendU64(fc, respAck, s.store.Revision())
	case opLeave:
		if err := s.store.Leave(req.id); err != nil {
			return sendErr(fc, errCodeGeneric, err.Error())
		}
		return sendU64(fc, respAck, s.store.Revision())
	case opList:
		return sendRecords(fc, s.store.Revision(), s.store.List(req.band))
	case opRegion:
		cs.region = s.store.InRegionAppend(req.band, req.rect, cs.region[:0])
		return sendRecords(fc, s.store.Revision(), cs.region)
	case opPublishKey:
		if err := s.store.PublishKey(req.key); err != nil {
			return sendErr(fc, errCodeGeneric, err.Error())
		}
		return sendU64(fc, respAck, s.store.Revision())
	case opFetchKey:
		k, ok := s.store.FetchKey(req.imsi)
		if !ok {
			return sendErr(fc, errCodeNotFound, ErrNotFound.Error())
		}
		return sendKeyFrame(fc, s.store.Revision(), k)
	case opKeys:
		return sendKeys(fc, s.store.Revision(), s.store.Keys())
	case opRev:
		return sendU64(fc, respRev, s.store.Revision())
	case opDeltas:
		ds, ok := s.store.DeltasSince(req.fromRev, cs.deltas[:0])
		cs.deltas = ds
		if !ok {
			return sendErr(fc, errCodeGap, ErrDeltaGap.Error())
		}
		return sendDeltas(fc, s.store.Revision(), ds)
	}
	return sendErr(fc, errCodeGeneric, "unknown op")
}

// serveSubscription pushes revision deltas until the client hangs up.
// If the client's revision has aged out of the delta log it receives a
// full snapshot first (respSnapshot, then records and keys chunks),
// then the live feed.
func (s *Server) serveSubscription(c net.Conn, fc *wire.FrameConn, fromRev uint64) {
	clk := simnet.ClockOf(c)
	done := make(chan struct{})
	// The subscriber sends nothing after opSubscribe; this reader exists
	// to observe the close. It parks in conn.Read, which handles its own
	// busy/blocked accounting.
	clk.Go(func() {
		defer close(done)
		for {
			b, err := fc.RecvOwned()
			if err != nil {
				return
			}
			wire.PutFrame(b)
		}
	})
	rev := fromRev
	var scratch []Delta
	live := false
	for {
		// Grab the wakeup channel before comparing revisions so a
		// mutation landing in between still wakes us.
		ch := s.store.Watch()
		if s.store.Revision() == rev {
			live = true // caught up; everything later is the live feed
			clk.Block()
			select {
			case <-ch:
			case <-done:
			}
			clk.Unblock()
			select {
			case <-done:
				return
			default:
			}
			continue
		}
		ds, ok := s.store.DeltasSince(rev, scratch[:0])
		if !ok {
			recs, keys, snapRev := s.store.SnapshotAll()
			if err := sendSnapshot(fc, snapRev, recs, keys); err != nil {
				return
			}
			rev = snapRev
			continue
		}
		scratch = ds
		if len(ds) == 0 {
			continue
		}
		rev = ds[len(ds)-1].Rev
		if !live {
			// Initial catch-up: one batched burst is fine (its content is
			// fixed by the subscribe revision).
			if err := sendDeltas(fc, rev, ds); err != nil {
				return
			}
			live = true
			continue
		}
		// Live feed: one delta per frame. Whether the pusher observes two
		// near-simultaneous mutations in one wakeup or two depends on
		// goroutine scheduling; per-delta framing keeps the bytes on the
		// wire (and so E10's traffic accounting) identical either way.
		for i := range ds {
			if err := sendDeltas(fc, ds[i].Rev, ds[i:i+1]); err != nil {
				return
			}
		}
	}
}

// --- frame senders -----------------------------------------------------

func sendErr(fc *wire.FrameConn, code uint8, msg string) error {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	w.U8(respErr)
	w.U8(code)
	w.String16(msg)
	return fc.Send(w.Bytes())
}

func sendU64(fc *wire.FrameConn, kind uint8, rev uint64) error {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	w.U8(kind)
	w.U64(rev)
	return fc.Send(w.Bytes())
}

// sendRecords ships recs as one or more respRecords frames (always at
// least one, so an empty result still carries the revision).
func sendRecords(fc *wire.FrameConn, rev uint64, recs []APRecord) error {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	for {
		n := len(recs)
		if n > maxRecordsPerFrame {
			n = maxRecordsPerFrame
		}
		w.Reset()
		w.U8(respRecords)
		w.U64(rev)
		w.Bool(len(recs) > n)
		w.U16(uint16(n))
		for _, r := range recs[:n] {
			encodeAP(w, r)
		}
		if err := w.Err(); err != nil {
			return sendErr(fc, errCodeGeneric, err.Error())
		}
		if err := fc.Send(w.Bytes()); err != nil {
			return err
		}
		recs = recs[n:]
		if len(recs) == 0 {
			return nil
		}
	}
}

func sendKeys(fc *wire.FrameConn, rev uint64, keys []KeyRecord) error {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	for {
		n := len(keys)
		if n > maxKeysPerFrame {
			n = maxKeysPerFrame
		}
		w.Reset()
		w.U8(respKeys)
		w.U64(rev)
		w.Bool(len(keys) > n)
		w.U32(uint32(n))
		for _, k := range keys[:n] {
			encodeKey(w, k)
		}
		if err := w.Err(); err != nil {
			return sendErr(fc, errCodeGeneric, err.Error())
		}
		if err := fc.Send(w.Bytes()); err != nil {
			return err
		}
		keys = keys[n:]
		if len(keys) == 0 {
			return nil
		}
	}
}

// sendKeyFrame ships a single key (fetchKey response).
func sendKeyFrame(fc *wire.FrameConn, rev uint64, k KeyRecord) error {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	w.U8(respKeys)
	w.U64(rev)
	w.Bool(false)
	w.U32(1)
	encodeKey(w, k)
	if err := w.Err(); err != nil {
		return sendErr(fc, errCodeGeneric, err.Error())
	}
	return fc.Send(w.Bytes())
}

func sendDeltas(fc *wire.FrameConn, rev uint64, ds []Delta) error {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	for {
		n := len(ds)
		if n > maxDeltasPerFrame {
			n = maxDeltasPerFrame
		}
		w.Reset()
		w.U8(respDeltas)
		w.U64(rev)
		w.Bool(len(ds) > n)
		w.U16(uint16(n))
		for _, d := range ds[:n] {
			encodeDelta(w, d)
		}
		if err := w.Err(); err != nil {
			return sendErr(fc, errCodeGeneric, err.Error())
		}
		if err := fc.Send(w.Bytes()); err != nil {
			return err
		}
		ds = ds[n:]
		if len(ds) == 0 {
			return nil
		}
	}
}

func sendSnapshot(fc *wire.FrameConn, rev uint64, recs []APRecord, keys []KeyRecord) error {
	if err := sendU64(fc, respSnapshot, rev); err != nil {
		return err
	}
	if err := sendRecords(fc, rev, recs); err != nil {
		return err
	}
	return sendKeys(fc, rev, keys)
}
