package registry

import (
	"errors"
	"testing"
	"time"

	"dlte/internal/auth"
	"dlte/internal/geo"
	"dlte/internal/simnet"
)

func rec(id string, x, y float64) APRecord {
	return APRecord{ID: id, X2Addr: id + ":36422", X: x, Y: y,
		Band: "LTE band 5 (850 MHz)", EIRPdBm: 58, HeightM: 20, Mode: "fair-share"}
}

func TestStoreJoinListLeave(t *testing.T) {
	s := NewStore()
	if err := s.Join(rec("ap1", 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Join(rec("ap2", 5000, 0)); err != nil {
		t.Fatal(err)
	}
	rev := s.Revision()
	if rev == 0 {
		t.Error("revision not advancing")
	}
	all := s.List("")
	if len(all) != 2 || all[0].ID != "ap1" {
		t.Fatalf("List = %+v", all)
	}
	if got := s.List("other band"); len(got) != 0 {
		t.Errorf("band filter broken: %v", got)
	}
	if _, ok := s.Get("ap1"); !ok {
		t.Error("Get failed")
	}
	if err := s.Leave("ap1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Leave("ap1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double leave: %v", err)
	}
	if s.Revision() <= rev {
		t.Error("revision did not advance on leave")
	}
}

func TestStoreOpenJoinUpdates(t *testing.T) {
	// Re-joining updates in place (an AP owner reconfiguring).
	s := NewStore()
	s.Join(rec("ap1", 0, 0))
	r := rec("ap1", 999, 999)
	r.Mode = "cooperative"
	s.Join(r)
	got, _ := s.Get("ap1")
	if got.X != 999 || got.Mode != "cooperative" {
		t.Errorf("update lost: %+v", got)
	}
	if len(s.List("")) != 1 {
		t.Error("rejoin duplicated the record")
	}
}

func TestStoreValidation(t *testing.T) {
	s := NewStore()
	if err := s.Join(APRecord{}); !errors.Is(err, ErrBadRecord) {
		t.Errorf("empty record: %v", err)
	}
}

func TestStoreRegion(t *testing.T) {
	s := NewStore()
	s.Join(rec("in", 100, 100))
	s.Join(rec("out", 99999, 99999))
	got := s.InRegion("LTE band 5 (850 MHz)", geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)))
	if len(got) != 1 || got[0].ID != "in" {
		t.Errorf("InRegion = %+v", got)
	}
}

func TestKeyPublicationRoundTrip(t *testing.T) {
	sim, err := auth.NewSIM("001010000000031")
	if err != nil {
		t.Fatal(err)
	}
	kr := NewKeyRecord(auth.KeyPublication{IMSI: sim.IMSI, K: sim.K, OPc: sim.OPc})
	pub, err := kr.Publication()
	if err != nil {
		t.Fatal(err)
	}
	if string(pub.IMSI) != string(sim.IMSI) || len(pub.K) != 16 || len(pub.OPc) != 16 {
		t.Errorf("publication = %+v", pub)
	}
	// And the recovered SIM authenticates.
	recovered := pub.SIM()
	if _, err := recovered.Milenage(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreKeys(t *testing.T) {
	s := NewStore()
	sim, _ := auth.NewSIM("001010000000032")
	kr := NewKeyRecord(auth.KeyPublication{IMSI: sim.IMSI, K: sim.K, OPc: sim.OPc})
	if err := s.PublishKey(kr); err != nil {
		t.Fatal(err)
	}
	if err := s.PublishKey(KeyRecord{IMSI: "bad"}); !errors.Is(err, ErrBadRecord) {
		t.Errorf("bad IMSI: %v", err)
	}
	if err := s.PublishKey(KeyRecord{IMSI: "001010000000033", K: "zz", OPc: "zz"}); err == nil {
		t.Error("bad hex accepted")
	}
	got, ok := s.FetchKey(string(sim.IMSI))
	if !ok || got.K != kr.K {
		t.Errorf("FetchKey = %+v ok=%v", got, ok)
	}
	if _, ok := s.FetchKey("404"); ok {
		t.Error("ghost key found")
	}
	if keys := s.Keys(); len(keys) != 1 {
		t.Errorf("Keys = %v", keys)
	}
}

func newClientServer(t *testing.T) (*Client, *Store) {
	t.Helper()
	n := simnet.New(simnet.Link{Latency: time.Millisecond}, 1)
	t.Cleanup(n.Close)
	srvHost := n.MustAddHost("registry")
	cliHost := n.MustAddHost("ap1")
	store := NewStore()
	srv := NewServer(store)
	l, err := srvHost.Listen(8400)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	c, err := Dial(cliHost.Dial, "registry:8400")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, store
}

func TestClientServerFlow(t *testing.T) {
	c, store := newClientServer(t)

	if err := c.Join(rec("ap1", 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(rec("ap2", 4000, 0)); err != nil {
		t.Fatal(err)
	}
	if store.Revision() < 2 {
		t.Error("server store not updated")
	}
	records, err := c.List("LTE band 5 (850 MHz)")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("List = %+v", records)
	}
	region, err := c.InRegion("LTE band 5 (850 MHz)", geo.NewRect(geo.Pt(-1, -1), geo.Pt(100, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if len(region) != 1 || region[0].ID != "ap1" {
		t.Errorf("InRegion = %+v", region)
	}
	if err := c.Leave("ap2"); err != nil {
		t.Fatal(err)
	}
	records, _ = c.List("")
	if len(records) != 1 {
		t.Errorf("after leave: %+v", records)
	}
	// Error propagation.
	if err := c.Leave("ghost"); err == nil {
		t.Error("leave ghost succeeded")
	}
}

func TestClientServerKeys(t *testing.T) {
	c, _ := newClientServer(t)
	sim, _ := auth.NewSIM("001010000000034")
	kr := NewKeyRecord(auth.KeyPublication{IMSI: sim.IMSI, K: sim.K, OPc: sim.OPc})
	if err := c.PublishKey(kr); err != nil {
		t.Fatal(err)
	}
	got, err := c.FetchKey(string(sim.IMSI))
	if err != nil {
		t.Fatal(err)
	}
	if got.K != kr.K || got.OPc != kr.OPc {
		t.Errorf("fetched = %+v", got)
	}
	if _, err := c.FetchKey("001010000009999"); err == nil {
		t.Error("ghost key fetched")
	}
	keys, err := c.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 {
		t.Errorf("Keys = %v", keys)
	}
}

func TestWaitForRevision(t *testing.T) {
	c, store := newClientServer(t)
	if err := c.Join(rec("ap1", 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForRevision(store.Revision(), time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForRevision(store.Revision()+100, 50*time.Millisecond); err == nil {
		t.Error("impossible revision reached")
	}
}

func TestConcurrentClients(t *testing.T) {
	n := simnet.New(simnet.Link{}, 1)
	t.Cleanup(n.Close)
	srvHost := n.MustAddHost("registry")
	store := NewStore()
	l, _ := srvHost.Listen(8400)
	go NewServer(store).Serve(l)

	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		host := n.MustAddHost(string(rune('a' + i)))
		go func(i int, h *simnet.Host) {
			c, err := Dial(h.Dial, "registry:8400")
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				r := rec(h.Name(), float64(i*1000), 0)
				if err := c.Join(r); err != nil {
					done <- err
					return
				}
				if _, err := c.List(""); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i, host)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(store.List("")); got != 8 {
		t.Errorf("records = %d, want 8", got)
	}
}
