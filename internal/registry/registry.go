// Package registry implements the dLTE global registry (paper §1,
// §4.3): an open, federation-style directory that (a) records which
// access points operate in which region and band — the peer-discovery
// substrate for out-of-band spectrum coordination — and (b) stores the
// pre-published subscriber keys that let any AP authenticate an open
// dLTE SIM (§4.2).
//
// The registry is deliberately simple: open join (any conforming AP is
// accepted, like BGP peering or a DNS zone), region/band queries, and
// a key-publication feed. It runs over any stream transport via a
// small JSON-over-frames protocol, so the same server binds to real
// TCP (cmd/dlte-registry) and to simnet WANs (experiments).
package registry

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"dlte/internal/auth"
	"dlte/internal/geo"
	"dlte/internal/simnet"
	"dlte/internal/wire"
)

// APRecord describes one registered access point.
type APRecord struct {
	// ID is the AP's unique identity.
	ID string `json:"id"`
	// X2Addr is where peers reach the AP's X2 endpoint ("host:port").
	X2Addr string `json:"x2_addr"`
	// X and Y are the AP position in meters (registry-declared).
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// Band names the operating band.
	Band string `json:"band"`
	// EIRPdBm and HeightM feed contention-domain analysis.
	EIRPdBm float64 `json:"eirp_dbm"`
	HeightM float64 `json:"height_m"`
	// Mode is the declared coordination mode ("fair-share",
	// "cooperative", "selfish").
	Mode string `json:"mode"`
}

// Position returns the record's location as a geo.Point.
func (r APRecord) Position() geo.Point { return geo.Pt(r.X, r.Y) }

// KeyRecord is a published open-SIM key (hex-encoded for JSON).
type KeyRecord struct {
	IMSI string `json:"imsi"`
	K    string `json:"k"`
	OPc  string `json:"opc"`
}

// Publication converts to auth material.
func (k KeyRecord) Publication() (auth.KeyPublication, error) {
	kb, err := hex.DecodeString(k.K)
	if err != nil {
		return auth.KeyPublication{}, fmt.Errorf("registry: bad K: %w", err)
	}
	ob, err := hex.DecodeString(k.OPc)
	if err != nil {
		return auth.KeyPublication{}, fmt.Errorf("registry: bad OPc: %w", err)
	}
	return auth.KeyPublication{IMSI: auth.IMSI(k.IMSI), K: kb, OPc: ob}, nil
}

// NewKeyRecord encodes auth material for publication.
func NewKeyRecord(p auth.KeyPublication) KeyRecord {
	return KeyRecord{IMSI: string(p.IMSI), K: hex.EncodeToString(p.K), OPc: hex.EncodeToString(p.OPc)}
}

// Store is the registry state, usable in process or behind a Server.
type Store struct {
	mu   sync.RWMutex
	aps  map[string]APRecord
	keys map[string]KeyRecord
	rev  uint64
}

// NewStore returns an empty registry store.
func NewStore() *Store {
	return &Store{aps: make(map[string]APRecord), keys: make(map[string]KeyRecord)}
}

// Errors from store operations.
var (
	ErrBadRecord = errors.New("registry: invalid record")
	ErrNotFound  = errors.New("registry: not found")
)

// Join registers (or updates) an AP record. Joining is open: any
// record with an ID and band is accepted — the paper's organic-growth
// property.
func (s *Store) Join(r APRecord) error {
	if r.ID == "" || r.Band == "" {
		return fmt.Errorf("%w: missing id or band", ErrBadRecord)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aps[r.ID] = r
	s.rev++
	return nil
}

// Leave removes an AP record.
func (s *Store) Leave(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.aps[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(s.aps, id)
	s.rev++
	return nil
}

// List returns all records in a band (empty band = all), sorted by ID.
func (s *Store) List(band string) []APRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []APRecord
	for _, r := range s.aps {
		if band == "" || r.Band == band {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// InRegion returns records in a band within the rectangle.
func (s *Store) InRegion(band string, rect geo.Rect) []APRecord {
	var out []APRecord
	for _, r := range s.List(band) {
		if rect.Contains(r.Position()) {
			out = append(out, r)
		}
	}
	return out
}

// Get fetches one AP record.
func (s *Store) Get(id string) (APRecord, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.aps[id]
	return r, ok
}

// Revision reports a counter that increases on every mutation, so
// clients can cheaply detect staleness.
func (s *Store) Revision() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rev
}

// PublishKey stores an open-SIM key publication.
func (s *Store) PublishKey(k KeyRecord) error {
	if !auth.IMSI(k.IMSI).Valid() {
		return fmt.Errorf("%w: bad IMSI %q", ErrBadRecord, k.IMSI)
	}
	if _, err := k.Publication(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keys[k.IMSI] = k
	s.rev++
	return nil
}

// FetchKey retrieves a published key.
func (s *Store) FetchKey(imsi string) (KeyRecord, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	k, ok := s.keys[imsi]
	return k, ok
}

// Keys lists all published keys, sorted by IMSI.
func (s *Store) Keys() []KeyRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]KeyRecord, 0, len(s.keys))
	for _, k := range s.keys {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IMSI < out[j].IMSI })
	return out
}

// --- Wire protocol -----------------------------------------------------

// request is the JSON request envelope.
type request struct {
	Op   string      `json:"op"`
	AP   *APRecord   `json:"ap,omitempty"`
	ID   string      `json:"id,omitempty"`
	Band string      `json:"band,omitempty"`
	Rect *[4]float64 `json:"rect,omitempty"` // minX, minY, maxX, maxY
	Key  *KeyRecord  `json:"key,omitempty"`
	IMSI string      `json:"imsi,omitempty"`
}

// response is the JSON response envelope.
type response struct {
	OK       bool        `json:"ok"`
	Error    string      `json:"error,omitempty"`
	Records  []APRecord  `json:"records,omitempty"`
	Keys     []KeyRecord `json:"keys,omitempty"`
	Revision uint64      `json:"revision,omitempty"`
}

// Listener abstracts net.Listener / simnet.Listener.
type Listener interface {
	Accept() (net.Conn, error)
	Close() error
}

// Server exposes a Store over the framed JSON protocol.
type Server struct {
	store *Store
}

// NewServer wraps a store.
func NewServer(store *Store) *Server { return &Server{store: store} }

// Store returns the underlying store (for in-process seeding).
func (s *Server) Store() *Store { return s.store }

// Serve accepts clients until the listener closes. Run in a goroutine.
func (s *Server) Serve(l Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		simnet.ClockOf(c).Go(func() { s.serveConn(c) })
	}
}

func (s *Server) serveConn(c net.Conn) {
	defer c.Close()
	fc := wire.NewFrameConn(c)
	for {
		b, err := fc.Recv()
		if err != nil {
			return
		}
		var req request
		if err := json.Unmarshal(b, &req); err != nil {
			s.reply(fc, response{Error: "bad request"})
			continue
		}
		s.reply(fc, s.handle(req))
	}
}

func (s *Server) reply(fc *wire.FrameConn, resp response) {
	resp.OK = resp.Error == ""
	b, err := json.Marshal(resp)
	if err != nil {
		return
	}
	fc.Send(b)
}

func (s *Server) handle(req request) response {
	switch req.Op {
	case "join":
		if req.AP == nil {
			return response{Error: "missing record"}
		}
		if err := s.store.Join(*req.AP); err != nil {
			return response{Error: err.Error()}
		}
		return response{Revision: s.store.Revision()}
	case "leave":
		if err := s.store.Leave(req.ID); err != nil {
			return response{Error: err.Error()}
		}
		return response{Revision: s.store.Revision()}
	case "list":
		return response{Records: s.store.List(req.Band), Revision: s.store.Revision()}
	case "region":
		if req.Rect == nil {
			return response{Error: "missing rect"}
		}
		rect := geo.NewRect(geo.Pt(req.Rect[0], req.Rect[1]), geo.Pt(req.Rect[2], req.Rect[3]))
		return response{Records: s.store.InRegion(req.Band, rect), Revision: s.store.Revision()}
	case "publish_key":
		if req.Key == nil {
			return response{Error: "missing key"}
		}
		if err := s.store.PublishKey(*req.Key); err != nil {
			return response{Error: err.Error()}
		}
		return response{Revision: s.store.Revision()}
	case "fetch_key":
		k, ok := s.store.FetchKey(req.IMSI)
		if !ok {
			return response{Error: ErrNotFound.Error()}
		}
		return response{Keys: []KeyRecord{k}}
	case "keys":
		return response{Keys: s.store.Keys(), Revision: s.store.Revision()}
	default:
		return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Client talks to a registry server over one stream connection.
// Methods are safe for concurrent use (requests serialize).
type Client struct {
	mu sync.Mutex
	fc *wire.FrameConn
	c  net.Conn
}

// Dial connects a client using the given dial function and address.
func Dial(dial func(addr string) (net.Conn, error), addr string) (*Client, error) {
	c, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("registry: dial %s: %w", addr, err)
	}
	return &Client{fc: wire.NewFrameConn(c), c: c}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.c.Close() }

func (c *Client) roundTrip(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, err := json.Marshal(req)
	if err != nil {
		return response{}, err
	}
	if err := c.fc.Send(b); err != nil {
		return response{}, fmt.Errorf("registry: send: %w", err)
	}
	rb, err := c.fc.Recv()
	if err != nil {
		return response{}, fmt.Errorf("registry: recv: %w", err)
	}
	var resp response
	if err := json.Unmarshal(rb, &resp); err != nil {
		return response{}, fmt.Errorf("registry: bad response: %w", err)
	}
	if !resp.OK {
		return resp, fmt.Errorf("registry: %s", resp.Error)
	}
	return resp, nil
}

// Join registers the AP record.
func (c *Client) Join(r APRecord) error {
	_, err := c.roundTrip(request{Op: "join", AP: &r})
	return err
}

// Leave removes the AP record.
func (c *Client) Leave(id string) error {
	_, err := c.roundTrip(request{Op: "leave", ID: id})
	return err
}

// List fetches all records in a band ("" = all).
func (c *Client) List(band string) ([]APRecord, error) {
	resp, err := c.roundTrip(request{Op: "list", Band: band})
	return resp.Records, err
}

// InRegion fetches records within the rectangle.
func (c *Client) InRegion(band string, rect geo.Rect) ([]APRecord, error) {
	resp, err := c.roundTrip(request{Op: "region", Band: band,
		Rect: &[4]float64{rect.Min.X, rect.Min.Y, rect.Max.X, rect.Max.Y}})
	return resp.Records, err
}

// PublishKey publishes an open-SIM key.
func (c *Client) PublishKey(k KeyRecord) error {
	_, err := c.roundTrip(request{Op: "publish_key", Key: &k})
	return err
}

// FetchKey retrieves one published key.
func (c *Client) FetchKey(imsi string) (KeyRecord, error) {
	resp, err := c.roundTrip(request{Op: "fetch_key", IMSI: imsi})
	if err != nil {
		return KeyRecord{}, err
	}
	if len(resp.Keys) == 0 {
		return KeyRecord{}, ErrNotFound
	}
	return resp.Keys[0], nil
}

// Keys retrieves all published keys.
func (c *Client) Keys() ([]KeyRecord, error) {
	resp, err := c.roundTrip(request{Op: "keys"})
	return resp.Keys, err
}

// WaitForRevision polls List until the server's revision reaches at
// least rev or the timeout elapses; used by tests and scenario setup.
func (c *Client) WaitForRevision(rev uint64, timeout time.Duration) error {
	clk := simnet.ClockOf(c.c)
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		resp, err := c.roundTrip(request{Op: "list"})
		if err != nil {
			return err
		}
		if resp.Revision >= rev {
			return nil
		}
		clk.Sleep(5 * time.Millisecond)
	}
	return errors.New("registry: revision wait timed out")
}
