// Package registry implements the dLTE global registry (paper §1,
// §4.3): an open, federation-style directory that (a) records which
// access points operate in which region and band — the peer-discovery
// substrate for out-of-band spectrum coordination — and (b) stores the
// pre-published subscriber keys that let any AP authenticate an open
// dLTE SIM (§4.2).
//
// The registry is deliberately simple: open join (any conforming AP is
// accepted, like BGP peering or a DNS zone), region/band queries, and
// a key-publication feed. It runs over any stream transport via a
// small binary framed protocol (see codec.go), so the same server
// binds to real TCP (cmd/dlte-registry) and to simnet WANs
// (experiments). Clients either poll (Client) or subscribe to a
// revision-delta feed (Subscription/Mirror) that ships only what
// changed since a known revision.
package registry

import (
	"encoding/hex"
	"errors"
	"fmt"

	"dlte/internal/auth"
	"dlte/internal/geo"
)

// APRecord describes one registered access point.
type APRecord struct {
	// ID is the AP's unique identity.
	ID string `json:"id"`
	// X2Addr is where peers reach the AP's X2 endpoint ("host:port").
	X2Addr string `json:"x2_addr"`
	// X and Y are the AP position in meters (registry-declared).
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// Band names the operating band.
	Band string `json:"band"`
	// EIRPdBm and HeightM feed contention-domain analysis.
	EIRPdBm float64 `json:"eirp_dbm"`
	HeightM float64 `json:"height_m"`
	// Mode is the declared coordination mode ("fair-share",
	// "cooperative", "selfish").
	Mode string `json:"mode"`
}

// Position returns the record's location as a geo.Point.
func (r APRecord) Position() geo.Point { return geo.Pt(r.X, r.Y) }

// KeyRecord is a published open-SIM key (hex-encoded).
type KeyRecord struct {
	IMSI string `json:"imsi"`
	K    string `json:"k"`
	OPc  string `json:"opc"`
}

// Publication converts to auth material.
func (k KeyRecord) Publication() (auth.KeyPublication, error) {
	kb, err := hex.DecodeString(k.K)
	if err != nil {
		return auth.KeyPublication{}, fmt.Errorf("registry: bad K: %w", err)
	}
	ob, err := hex.DecodeString(k.OPc)
	if err != nil {
		return auth.KeyPublication{}, fmt.Errorf("registry: bad OPc: %w", err)
	}
	return auth.KeyPublication{IMSI: auth.IMSI(k.IMSI), K: kb, OPc: ob}, nil
}

// NewKeyRecord encodes auth material for publication.
func NewKeyRecord(p auth.KeyPublication) KeyRecord {
	return KeyRecord{IMSI: string(p.IMSI), K: hex.EncodeToString(p.K), OPc: hex.EncodeToString(p.OPc)}
}

// Errors from store and protocol operations.
var (
	ErrBadRecord = errors.New("registry: invalid record")
	ErrNotFound  = errors.New("registry: not found")
	// ErrDeltaGap reports that the requested revision has aged out of
	// the server's bounded delta log; the caller must resync from a
	// full snapshot.
	ErrDeltaGap = errors.New("registry: delta gap (full resync required)")
)
