package registry

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"dlte/internal/auth"
	"dlte/internal/geo"

	"slices"
)

// Delta kinds carried by the revision log and the subscription feed.
const (
	DeltaJoin  uint8 = 1 // AP holds the joined/updated record
	DeltaLeave uint8 = 2 // ID holds the departed AP
	DeltaKey   uint8 = 3 // Key holds the published key
)

// Delta is one registry mutation at revision Rev. Exactly one of
// AP/ID/Key is meaningful, selected by Kind.
type Delta struct {
	Kind uint8
	Rev  uint64
	AP   APRecord
	ID   string
	Key  KeyRecord
}

// defaultLogCap bounds the revision delta log: clients more than this
// many mutations behind fall back to a full snapshot.
const defaultLogCap = 16384

// Store is the registry state, usable in process or behind a Server.
//
// Reads are served from copy-on-write snapshots behind atomic pointers
// (the gtp TEID-table pattern): List/InRegion/Get/Keys/FetchKey never
// take the mutation lock, and at steady state (no interleaved writes)
// they allocate nothing — List hands back a shared pre-sorted slice
// and InRegionAppend serves tiny rectangles from a spatial grid index
// in O(cells covered) instead of O(n·copy·sort).
//
// Snapshots rebuild lazily on the first read after a mutation, so bulk
// seeding (100k key publications) costs one rebuild, not 100k.
type Store struct {
	mu   sync.Mutex // serializes mutations and snapshot rebuilds
	aps  map[string]APRecord
	keys map[string]KeyRecord

	rev    atomic.Uint64 // global revision, bumped once per mutation
	apRev  atomic.Uint64 // rev of the last AP mutation
	keyRev atomic.Uint64 // rev of the last key mutation

	apSnap  atomic.Pointer[apSnapshot]
	keySnap atomic.Pointer[keySnapshot]

	log   deltaLog
	watch chan struct{} // closed and replaced on every mutation; nil until first Watch
}

// apSnapshot is an immutable view of the AP table at apRev: the shared
// ID-sorted slice List returns, per-band sorted slices, the ID lookup
// map, and the spatial grid over positions (indices into all).
type apSnapshot struct {
	apRev  uint64
	all    []APRecord
	byBand map[string][]APRecord
	byID   map[string]APRecord
	grid   *geo.Grid
}

// keySnapshot is the same treatment for published keys.
type keySnapshot struct {
	keyRev uint64
	all    []KeyRecord
	byIMSI map[string]KeyRecord
}

// NewStore returns an empty registry store.
func NewStore() *Store {
	s := &Store{aps: make(map[string]APRecord), keys: make(map[string]KeyRecord)}
	s.log.buf = make([]Delta, 0, defaultLogCap)
	return s
}

// bump records one mutation under s.mu: advances the revision, logs the
// delta, and wakes subscription pushers.
func (s *Store) bump(d Delta) {
	d.Rev = s.rev.Add(1)
	s.log.push(d)
	if s.watch != nil {
		close(s.watch)
		s.watch = nil
	}
}

// Watch returns a channel closed on the next mutation. Subscription
// pushers grab the channel, compare revisions, and block on it only if
// already caught up (the grab-before-compare order avoids lost wakeups).
func (s *Store) Watch() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.watch == nil {
		s.watch = make(chan struct{})
	}
	return s.watch
}

// Join registers (or updates) an AP record. Joining is open: any
// record with an ID and band is accepted — the paper's organic-growth
// property.
func (s *Store) Join(r APRecord) error {
	if r.ID == "" || r.Band == "" {
		return fmt.Errorf("%w: missing id or band", ErrBadRecord)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aps[r.ID] = r
	s.bump(Delta{Kind: DeltaJoin, AP: r})
	s.apRev.Store(s.rev.Load())
	return nil
}

// Leave removes an AP record.
func (s *Store) Leave(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.aps[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(s.aps, id)
	s.bump(Delta{Kind: DeltaLeave, ID: id})
	s.apRev.Store(s.rev.Load())
	return nil
}

// PublishKey stores an open-SIM key publication.
func (s *Store) PublishKey(k KeyRecord) error {
	if !auth.IMSI(k.IMSI).Valid() {
		return fmt.Errorf("%w: bad IMSI %q", ErrBadRecord, k.IMSI)
	}
	if _, err := k.Publication(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keys[k.IMSI] = k
	s.bump(Delta{Kind: DeltaKey, Key: k})
	s.keyRev.Store(s.rev.Load())
	return nil
}

// apSnapshot returns the current AP view, rebuilding it first if a
// mutation landed since the last build. The fast path is two atomic
// loads and no allocation.
func (s *Store) apSnapshot() *apSnapshot {
	if sn := s.apSnap.Load(); sn != nil && sn.apRev == s.apRev.Load() {
		return sn
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.apSnapshotLocked()
}

func (s *Store) apSnapshotLocked() *apSnapshot {
	cur := s.apRev.Load()
	if sn := s.apSnap.Load(); sn != nil && sn.apRev == cur {
		return sn
	}
	sn := &apSnapshot{
		apRev:  cur,
		all:    make([]APRecord, 0, len(s.aps)),
		byBand: make(map[string][]APRecord),
		byID:   make(map[string]APRecord, len(s.aps)),
	}
	for _, r := range s.aps {
		sn.all = append(sn.all, r)
		sn.byID[r.ID] = r
	}
	slices.SortFunc(sn.all, func(a, b APRecord) int { return strings.Compare(a.ID, b.ID) })
	pts := make([]geo.Point, len(sn.all))
	for i, r := range sn.all {
		pts[i] = r.Position()
		sn.byBand[r.Band] = append(sn.byBand[r.Band], r)
	}
	sn.grid = geo.BuildGrid(pts)
	s.apSnap.Store(sn)
	return sn
}

func (s *Store) keySnapshot() *keySnapshot {
	if sn := s.keySnap.Load(); sn != nil && sn.keyRev == s.keyRev.Load() {
		return sn
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.keySnapshotLocked()
}

func (s *Store) keySnapshotLocked() *keySnapshot {
	cur := s.keyRev.Load()
	if sn := s.keySnap.Load(); sn != nil && sn.keyRev == cur {
		return sn
	}
	sn := &keySnapshot{
		keyRev: cur,
		all:    make([]KeyRecord, 0, len(s.keys)),
		byIMSI: make(map[string]KeyRecord, len(s.keys)),
	}
	for _, k := range s.keys {
		sn.all = append(sn.all, k)
		sn.byIMSI[k.IMSI] = k
	}
	slices.SortFunc(sn.all, func(a, b KeyRecord) int { return strings.Compare(a.IMSI, b.IMSI) })
	s.keySnap.Store(sn)
	return sn
}

// List returns all records in a band (empty band = all), sorted by ID.
// The returned slice is a shared snapshot: treat it as read-only. It is
// valid indefinitely (later mutations build new snapshots).
func (s *Store) List(band string) []APRecord {
	sn := s.apSnapshot()
	if band == "" {
		if len(sn.all) == 0 {
			return nil
		}
		return sn.all
	}
	return sn.byBand[band]
}

// InRegion returns records in a band within the rectangle.
func (s *Store) InRegion(band string, rect geo.Rect) []APRecord {
	return s.InRegionAppend(band, rect, nil)
}

// InRegionAppend appends records in a band within the rectangle to dst
// and returns the extended slice, sorted by ID within the appended
// region. Queries walk the grid cells covering rect rather than the
// full table; with a reused dst this allocates nothing.
func (s *Store) InRegionAppend(band string, rect geo.Rect, dst []APRecord) []APRecord {
	sn := s.apSnapshot()
	start := len(dst)
	cx0, cy0, cx1, cy1 := sn.grid.CellRange(rect)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, i := range sn.grid.Cell(cx, cy) {
				r := &sn.all[i]
				if band != "" && r.Band != band {
					continue
				}
				if rect.Contains(geo.Pt(r.X, r.Y)) {
					dst = append(dst, *r)
				}
			}
		}
	}
	added := dst[start:]
	slices.SortFunc(added, func(a, b APRecord) int { return strings.Compare(a.ID, b.ID) })
	return dst
}

// Get fetches one AP record.
func (s *Store) Get(id string) (APRecord, bool) {
	r, ok := s.apSnapshot().byID[id]
	return r, ok
}

// Revision reports a counter that increases on every mutation, so
// clients can cheaply detect staleness. Lock-free.
func (s *Store) Revision() uint64 { return s.rev.Load() }

// FetchKey retrieves a published key.
func (s *Store) FetchKey(imsi string) (KeyRecord, bool) {
	k, ok := s.keySnapshot().byIMSI[imsi]
	return k, ok
}

// Keys lists all published keys, sorted by IMSI. Shared snapshot slice:
// treat as read-only.
func (s *Store) Keys() []KeyRecord {
	sn := s.keySnapshot()
	if len(sn.all) == 0 {
		return nil
	}
	return sn.all
}

// SnapshotAll returns a mutually consistent full view (AP records,
// keys, revision) for snapshot fallback on subscriptions.
func (s *Store) SnapshotAll() (recs []APRecord, keys []KeyRecord, rev uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ap := s.apSnapshotLocked()
	ks := s.keySnapshotLocked()
	return ap.all, ks.all, s.rev.Load()
}

// DeltasSince appends to dst every delta with revision > fromRev, in
// revision order, and reports whether the log still reaches back that
// far. ok == false means fromRev has aged out (the caller must resync
// from a snapshot); the appended prefix is then meaningless.
func (s *Store) DeltasSince(fromRev uint64, dst []Delta) (out []Delta, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.since(fromRev, s.rev.Load(), dst)
}

// deltaLog is a bounded ring of the most recent mutations. Revisions in
// the log are contiguous: every mutation pushes exactly one delta.
type deltaLog struct {
	buf   []Delta
	start int // index of the oldest entry
	n     int
}

func (l *deltaLog) push(d Delta) {
	if cap(l.buf) == 0 {
		l.buf = make([]Delta, 0, defaultLogCap)
	}
	if l.n < cap(l.buf) {
		l.buf = append(l.buf, d)
		l.n++
		return
	}
	l.buf[l.start] = d
	l.start = (l.start + 1) % l.n
}

func (l *deltaLog) since(fromRev, cur uint64, dst []Delta) ([]Delta, bool) {
	if fromRev >= cur {
		return dst, true
	}
	if l.n == 0 {
		return dst, false
	}
	oldest := l.buf[l.start].Rev
	if fromRev+1 < oldest {
		return dst, false
	}
	// Revisions are contiguous, so the first wanted entry is at a fixed
	// offset from the oldest.
	skip := int(fromRev + 1 - oldest)
	for i := skip; i < l.n; i++ {
		dst = append(dst, l.buf[(l.start+i)%l.n])
	}
	return dst, true
}
