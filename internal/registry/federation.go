package registry

import (
	"net"
	"sync"
	"time"
)

// Federation implements the paper's "federated system similar to the
// DNS" registry design (§4.3): independent registry operators peer
// with each other and periodically pull each other's AP records and
// key publications, so no single operator is a point of control — the
// same decentralization story as the access network itself.
//
// Merging is last-writer-wins per record ID; removal does not
// propagate (records age out of a real federation via expiry, which
// the dLTE architecture tolerates because contention-domain data only
// needs to be approximately fresh — experiment E9a quantifies the cost
// of staleness).
type Federation struct {
	store *Store
	dial  func(addr string) (net.Conn, error)

	mu       sync.Mutex
	peers    map[string]*federationPeer
	closed   bool
	syncs    uint64
	failures uint64
}

type federationPeer struct {
	addr   string
	cancel chan struct{}
}

// NewFederation wires a local store to a dial function (net.Dial for
// real deployments, simnet Host.Dial in scenarios).
func NewFederation(store *Store, dial func(addr string) (net.Conn, error)) *Federation {
	return &Federation{store: store, dial: dial, peers: make(map[string]*federationPeer)}
}

// AddPeer starts pulling from the registry at addr every interval.
// Adding the same address twice replaces the previous schedule.
func (f *Federation) AddPeer(addr string, interval time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	if old, ok := f.peers[addr]; ok {
		close(old.cancel)
	}
	p := &federationPeer{addr: addr, cancel: make(chan struct{})}
	f.peers[addr] = p
	go f.pullLoop(p, interval)
}

// RemovePeer stops pulling from addr.
func (f *Federation) RemovePeer(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p, ok := f.peers[addr]; ok {
		close(p.cancel)
		delete(f.peers, addr)
	}
}

// SyncOnce performs one immediate pull from addr, merging the remote
// registry's AP records and key publications into the local store.
// It returns the number of records merged.
func (f *Federation) SyncOnce(addr string) (int, error) {
	c, err := Dial(f.dial, addr)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	merged := 0
	records, err := c.List("")
	if err != nil {
		return 0, err
	}
	for _, r := range records {
		if err := f.store.Join(r); err == nil {
			merged++
		}
	}
	keys, err := c.Keys()
	if err != nil {
		return merged, err
	}
	for _, k := range keys {
		if err := f.store.PublishKey(k); err == nil {
			merged++
		}
	}
	f.mu.Lock()
	f.syncs++
	f.mu.Unlock()
	return merged, nil
}

func (f *Federation) pullLoop(p *federationPeer, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	// Immediate first pull, then periodic.
	if _, err := f.SyncOnce(p.addr); err != nil {
		f.mu.Lock()
		f.failures++
		f.mu.Unlock()
	}
	for {
		select {
		case <-p.cancel:
			return
		case <-t.C:
			if _, err := f.SyncOnce(p.addr); err != nil {
				f.mu.Lock()
				f.failures++
				f.mu.Unlock()
			}
		}
	}
}

// Stats reports successful syncs and failed pull attempts.
func (f *Federation) Stats() (syncs, failures uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs, f.failures
}

// Close stops all pull loops.
func (f *Federation) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	for addr, p := range f.peers {
		close(p.cancel)
		delete(f.peers, addr)
	}
}
