package registry

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"dlte/internal/wire"
)

// reqFrame hand-encodes a request the way Client does, for seeds and
// round-trip checks.
func reqFrame(build func(w *wire.Writer)) []byte {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	build(w)
	return bytes.Clone(w.Bytes())
}

// encodeChunk mirrors the server's frame senders (sendRecords,
// sendKeys, sendDeltas, sendErr, sendU64) so decode results can be
// re-encoded and compared.
func encodeChunk(c chunk) []byte {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	w.U8(c.kind)
	switch c.kind {
	case respErr:
		w.U8(c.errCode)
		w.String16(c.errMsg)
	case respAck, respRev, respSnapshot:
		w.U64(c.rev)
	case respRecords:
		w.U64(c.rev)
		w.Bool(c.more)
		w.U16(uint16(len(c.records)))
		for _, r := range c.records {
			encodeAP(w, r)
		}
	case respKeys:
		w.U64(c.rev)
		w.Bool(c.more)
		w.U32(uint32(len(c.keys)))
		for _, k := range c.keys {
			encodeKey(w, k)
		}
	case respDeltas:
		w.U64(c.rev)
		w.Bool(c.more)
		w.U16(uint16(len(c.deltas)))
		for _, d := range c.deltas {
			encodeDelta(w, d)
		}
	}
	return bytes.Clone(w.Bytes())
}

// FuzzDecode feeds arbitrary bytes to both registry frame decoders.
// Registry frames arrive from other administrative domains (any AP on
// the Internet can dial the global registry), so the decoders must
// reject malformed input cleanly: no panics, no oversized allocations
// from forged counts, and every accepted frame must re-encode to the
// exact bytes that were decoded (the codec admits no two readings of
// one frame).
//
// Run the seeds with `go test`; explore with
// `go test -fuzz=FuzzDecode ./internal/registry`.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})                                                            // empty
	f.Add([]byte{opJoin})                                                      // join with no record
	f.Add([]byte{0x7B})                                                        // '{' — a protocol-v1 JSON request
	f.Add([]byte{opRev, 0xFF})                                                 // trailing junk
	f.Add([]byte{respKeys, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0xFF, 0xFF, 0xFF, 0xFF}) // forged huge count
	f.Add(reqFrame(func(w *wire.Writer) {
		w.U8(opJoin)
		encodeAP(w, APRecord{ID: "ap1", X2Addr: "ap1:36422", Band: "b", Mode: "fair-share"})
	}))
	f.Add(reqFrame(func(w *wire.Writer) { w.U8(opLeave); w.String8("ap1") }))
	f.Add(reqFrame(func(w *wire.Writer) { w.U8(opList); w.String8("") }))
	f.Add(reqFrame(func(w *wire.Writer) {
		w.U8(opRegion)
		w.String8("b")
		w.F64(0)
		w.F64(0)
		w.F64(1000)
		w.F64(1000)
	}))
	f.Add(reqFrame(func(w *wire.Writer) {
		w.U8(opPublishKey)
		encodeKey(w, KeyRecord{IMSI: "001010000000001", K: "00", OPc: "00"})
	}))
	f.Add(reqFrame(func(w *wire.Writer) { w.U8(opFetchKey); w.String8("001010000000001") }))
	f.Add(reqFrame(func(w *wire.Writer) { w.U8(opKeys) }))
	f.Add(reqFrame(func(w *wire.Writer) { w.U8(opDeltas); w.U64(7) }))
	f.Add(reqFrame(func(w *wire.Writer) { w.U8(opSubscribe); w.U64(0) }))
	f.Add(encodeChunk(chunk{kind: respErr, errCode: errCodeGap, errMsg: ErrDeltaGap.Error()}))
	f.Add(encodeChunk(chunk{kind: respAck, rev: 42}))
	f.Add(encodeChunk(chunk{kind: respRecords, rev: 9, more: true, records: []APRecord{{ID: "a"}, {ID: "b"}}}))
	f.Add(encodeChunk(chunk{kind: respKeys, rev: 9, keys: []KeyRecord{{IMSI: "i", K: "k", OPc: "o"}}}))
	f.Add(encodeChunk(chunk{kind: respDeltas, rev: 3, deltas: []Delta{
		{Kind: DeltaJoin, Rev: 1, AP: APRecord{ID: "a"}},
		{Kind: DeltaLeave, Rev: 2, ID: "a"},
		{Kind: DeltaKey, Rev: 3, Key: KeyRecord{IMSI: "i"}},
	}}))
	f.Add(encodeChunk(chunk{kind: respSnapshot, rev: 12}))

	f.Fuzz(func(t *testing.T, b []byte) {
		if req, err := decodeRequest(b); err == nil {
			// Accepted requests re-encode to exactly the input frame.
			round := reqFrame(func(w *wire.Writer) {
				w.U8(req.op)
				switch req.op {
				case opJoin:
					encodeAP(w, req.ap)
				case opLeave:
					w.String8(req.id)
				case opList:
					w.String8(req.band)
				case opRegion:
					w.String8(req.band)
					w.F64(req.rect.Min.X)
					w.F64(req.rect.Min.Y)
					w.F64(req.rect.Max.X)
					w.F64(req.rect.Max.Y)
				case opPublishKey:
					encodeKey(w, req.key)
				case opFetchKey:
					w.String8(req.imsi)
				case opDeltas, opSubscribe:
					w.U64(req.fromRev)
				}
			})
			// geo.NewRect normalizes min/max, so opRegion frames with a
			// "backwards" rectangle legitimately re-encode differently;
			// everything else must round-trip byte for byte.
			normalized := req.op == opRegion &&
				(req.rect.Min.X != req.rect.Max.X || req.rect.Min.Y != req.rect.Max.Y)
			if !bytes.Equal(round, b) && !normalized {
				t.Fatalf("request round trip mismatch:\n got %x\nwant %x", round, b)
			}
		}
		if ch, err := decodeChunk(b); err == nil {
			if len(ch.records) > maxRecordsPerFrame || len(ch.keys) > maxKeysPerFrame || len(ch.deltas) > maxDeltasPerFrame {
				t.Fatalf("decoded chunk exceeds frame caps: %d/%d/%d", len(ch.records), len(ch.keys), len(ch.deltas))
			}
			if round := encodeChunk(ch); !bytes.Equal(round, b) {
				t.Fatalf("chunk round trip mismatch:\n got %x\nwant %x", round, b)
			}
		}
	})
}

// clampAP bounds string fields to what String8 can carry (the store
// also rejects longer IDs, so real records never exceed this).
func clampAP(r APRecord) APRecord {
	c := func(s string) string {
		if len(s) > 255 {
			return s[:255]
		}
		return s
	}
	r.ID, r.X2Addr, r.Band, r.Mode = c(r.ID), c(r.X2Addr), c(r.Band), c(r.Mode)
	return r
}

func clampKey(k KeyRecord) KeyRecord {
	c := func(s string) string {
		if len(s) > 255 {
			return s[:255]
		}
		return s
	}
	return KeyRecord{IMSI: c(k.IMSI), K: c(k.K), OPc: c(k.OPc)}
}

// TestAPCodecRoundTripProperty checks encodeAP/decodeAP agreement on
// arbitrary records.
func TestAPCodecRoundTripProperty(t *testing.T) {
	f := func(r APRecord) bool {
		r = clampAP(r)
		w := wire.GetWriter()
		defer wire.PutWriter(w)
		encodeAP(w, r)
		rd := wire.NewReader(w.Bytes())
		got := decodeAP(rd)
		return rd.Err() == nil && rd.Remaining() == 0 && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestKeyCodecRoundTripProperty does the same for key records.
func TestKeyCodecRoundTripProperty(t *testing.T) {
	f := func(k KeyRecord) bool {
		k = clampKey(k)
		w := wire.GetWriter()
		defer wire.PutWriter(w)
		encodeKey(w, k)
		rd := wire.NewReader(w.Bytes())
		got := decodeKey(rd)
		return rd.Err() == nil && rd.Remaining() == 0 && got == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestDeltaCodecRoundTripProperty covers all three delta kinds,
// including that only the fields the kind implies survive the wire.
func TestDeltaCodecRoundTripProperty(t *testing.T) {
	f := func(kindSel uint8, rev uint64, ap APRecord, id string, key KeyRecord) bool {
		d := Delta{Kind: kindSel%3 + 1, Rev: rev}
		switch d.Kind {
		case DeltaJoin:
			d.AP = clampAP(ap)
		case DeltaLeave:
			if len(id) > 255 {
				id = id[:255]
			}
			d.ID = id
		case DeltaKey:
			d.Key = clampKey(key)
		}
		w := wire.GetWriter()
		defer wire.PutWriter(w)
		encodeDelta(w, d)
		rd := wire.NewReader(w.Bytes())
		got, err := decodeDelta(rd)
		return err == nil && rd.Remaining() == 0 && reflect.DeepEqual(got, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestDecodeRequestRejects pins the failure modes the fuzzer explores:
// protocol-v1 JSON, unknown ops, truncation, and trailing bytes.
func TestDecodeRequestRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"v1 JSON":     []byte(`{"op":"join"}`),
		"unknown op":  {200},
		"truncated":   {opLeave, 5, 'a'},
		"trailing":    {opRev, 0},
		"region trim": {opRegion, 0, 1, 2, 3},
	}
	for name, b := range cases {
		if _, err := decodeRequest(b); err == nil {
			t.Errorf("%s: decodeRequest accepted %x", name, b)
		}
	}
	if _, err := decodeChunk([]byte{respKeys, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Error("decodeChunk accepted a forged 4-billion-key count")
	}
	if _, err := decodeChunk(append(encodeChunk(chunk{kind: respAck, rev: 1}), 0)); err == nil {
		t.Error("decodeChunk accepted trailing bytes")
	}
}
