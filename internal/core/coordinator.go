package core

import (
	"dlte/internal/x2"
)

// This file implements the AP's coordination behaviour: the X2 message
// handler and the share-negotiation logic for fair-share and
// cooperative modes (§4.3). The handover choreography that used to be
// dispatched here (context push, request/ack, complete) now belongs to
// the AP's mobility plane (internal/mobility): handleX2 funnels every
// message through the plane first and only handles what it declines.

// handleX2 dispatches inbound peer messages.
func (ap *AccessPoint) handleX2(peerID string, msg x2.Message) {
	if ap.Mobility.HandleX2(peerID, msg) {
		return
	}
	switch m := msg.(type) {
	case *x2.LoadInformation:
		ap.mu.Lock()
		ap.loads[m.APID] = *m
		ap.mu.Unlock()

	case *x2.ShareUpdate:
		// Adopt the broadcast share pattern.
		ap.mu.Lock()
		for i, id := range m.APIDs {
			ap.shares[id] = float64(m.Fractions[i]) / 10000
		}
		ap.mu.Unlock()

	case *x2.ModeProposal:
		// Owners opt in: accept cooperation only if our owner also
		// configured cooperative mode; always accept fair-share (it is
		// the protocol's baseline obligation).
		accept := m.Mode == x2.ModeFairShare || ap.cfg.Mode == x2.ModeCooperative
		ap.Agent.Send(peerID, &x2.ModeResponse{APID: ap.cfg.ID, Mode: m.Mode, Accepted: accept})

	case *x2.RelayRequest:
		// Grant relay capacity within our backhaul budget (§7); the
		// experiment harness measures the effect at the phy layer.
		ap.Agent.Send(peerID, &x2.RelayResponse{APID: ap.cfg.ID, Granted: true, GrantedBps: m.NeededBps})

	case *x2.RelayResponse:
		ap.mu.Lock()
		ap.relayGrantBps = 0
		if m.Granted {
			ap.relayGrantBps = m.GrantedBps
		}
		ap.relayGrantFrom = m.APID
		ap.mu.Unlock()
	}
}

// RequestRelay asks a peer to carry traffic during a backhaul outage
// (§7). The grant arrives asynchronously; poll RelayGrant.
func (ap *AccessPoint) RequestRelay(peer string, neededBps uint64) error {
	return ap.Agent.Send(peer, &x2.RelayRequest{APID: ap.cfg.ID, NeededBps: neededBps})
}

// RelayGrant reports the most recent relay grant (0 if none).
func (ap *AccessPoint) RelayGrant() (bps uint64, from string) {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	return ap.relayGrantBps, ap.relayGrantFrom
}

// AdvertiseLoad broadcasts this AP's current load to all peers.
func (ap *AccessPoint) AdvertiseLoad() error {
	load := ap.currentLoad()
	ap.mu.Lock()
	ap.loads[ap.cfg.ID] = load
	ap.mu.Unlock()
	return ap.Agent.Broadcast(&load)
}

func (ap *AccessPoint) currentLoad() x2.LoadInformation {
	return x2.LoadInformation{
		APID:        ap.cfg.ID,
		AttachedUEs: uint16(ap.Core.Gateway().NumSessions()),
	}
}

// NegotiateShares computes the airtime split for this AP's contention
// domain per the configured mode and broadcasts it over X2:
//
//   - fair-share: equal split regardless of load — "the bare minimum
//     of fair time-frequency sharing";
//   - cooperative: load-proportional split (empty peers cede airtime),
//     using the latest LoadInformation from each peer.
//
// It returns this AP's resulting share.
func (ap *AccessPoint) NegotiateShares() (float64, error) {
	ap.mu.Lock()
	members := append([]string{ap.cfg.ID}, ap.peers...)
	mode := ap.cfg.Mode
	loads := make(map[string]x2.LoadInformation, len(ap.loads))
	for k, v := range ap.loads {
		loads[k] = v
	}
	ap.mu.Unlock()

	shares := make(map[string]float64, len(members))
	switch mode {
	case x2.ModeCooperative:
		total := 0.0
		weights := make(map[string]float64, len(members))
		for _, id := range members {
			w := float64(loads[id].AttachedUEs)
			if id == ap.cfg.ID {
				w = float64(ap.currentLoad().AttachedUEs)
			}
			weights[id] = w
			total += w
		}
		if total == 0 {
			for _, id := range members {
				shares[id] = 1 / float64(len(members))
			}
		} else {
			for _, id := range members {
				shares[id] = weights[id] / total
			}
		}
	default: // fair-share (and selfish APs still honor fairness when asked)
		for _, id := range members {
			shares[id] = 1 / float64(len(members))
		}
	}

	upd := &x2.ShareUpdate{}
	for _, id := range members {
		upd.APIDs = append(upd.APIDs, id)
		upd.Fractions = append(upd.Fractions, uint16(shares[id]*10000))
	}
	ap.mu.Lock()
	for id, s := range shares {
		ap.shares[id] = s
	}
	own := ap.shares[ap.cfg.ID]
	ap.mu.Unlock()

	if err := ap.Agent.Broadcast(upd); err != nil {
		return own, err
	}
	return own, nil
}

// Share reports this AP's current negotiated airtime share.
func (ap *AccessPoint) Share() float64 {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	return ap.shares[ap.cfg.ID]
}

// ShareOf reports the negotiated share of any domain member.
func (ap *AccessPoint) ShareOf(id string) float64 {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	return ap.shares[id]
}
