// Package core implements the dLTE access point — the paper's primary
// contribution (§4). One AccessPoint bundles everything a standalone
// dLTE site needs:
//
//   - a local EPC stub (epc.Core with direct breakout and an open HSS)
//     virtualizing S-GW/P-GW/MME/HSS on the AP itself (§4.1);
//   - an eNodeB front-end standard clients attach to;
//   - a registry client for open join and peer discovery (§4.3);
//   - an X2 coordination agent implementing fair-share and cooperative
//     modes with its contention-domain neighbors (§4.3).
//
// The package also provides the Coordinator logic that turns registry
// state into contention domains and negotiated airtime shares.
package core

import (
	"fmt"
	"sync"
	"time"

	"dlte/internal/enb"
	"dlte/internal/epc"
	"dlte/internal/geo"
	"dlte/internal/mobility"
	"dlte/internal/radio"
	"dlte/internal/registry"
	"dlte/internal/simnet"
	"dlte/internal/spectrum"
	"dlte/internal/x2"
)

// X2Port is where APs listen for peer associations.
const X2Port = 36422

// APConfig shapes one dLTE access point.
type APConfig struct {
	// ID is the AP's registry identity (also its SNID).
	ID string
	// Position is the site location in scenario coordinates (meters).
	Position geo.Point
	// Band is the operating band.
	Band radio.Band
	// HeightM and EIRPdBm describe the transmitter for coordination.
	HeightM, EIRPdBm float64
	// Mode is the owner's chosen coordination mode.
	Mode x2.Mode
	// TAC is the AP's tracking area (each dLTE AP is its own TA).
	TAC uint16
	// RegistryAddr is the global registry ("host:port"); empty runs
	// the AP standalone (the paper's single-site deployment, §5).
	RegistryAddr string
	// ProcessingDelay models the stub core's per-signaling-message
	// service time (see epc.Config); experiments set it equal to the
	// centralized core's so scaling comparisons isolate sharing.
	ProcessingDelay time.Duration
	// Shards is the stub core's session shard count (see epc.Config;
	// 0 means one per CPU). Shard-count choice never changes simulated
	// results, only real-CPU signaling throughput.
	Shards int
	// Trigger is the AP's RSRP handover policy; the zero value means
	// mobility.DefaultTrigger.
	Trigger mobility.Trigger
	// Meter, when non-nil, is a shared mobility measurement seam (see
	// mobility.Config.Meter); nil gives the AP a private one.
	Meter *mobility.Meter
}

// AccessPoint is a running dLTE site.
type AccessPoint struct {
	cfg  APConfig
	host *simnet.Host

	Core     *epc.Core
	ENB      *enb.ENodeB
	Agent    *x2.Agent
	Mobility *mobility.Plane
	reg      *registry.Client
	mirror   *registry.Mirror
	keyRev   uint64 // registry revision key sync is current through

	s1Listener epc.Listener
	x2Listener x2.Listener

	mu             sync.Mutex
	shares         map[string]float64 // negotiated airtime by AP ID
	loads          map[string]x2.LoadInformation
	peers          []string // current contention-domain peers
	relayGrantBps  uint64
	relayGrantFrom string

	closed bool
}

// NewAccessPoint brings up the full AP stack on host: stub core, S1AP
// loopback, eNodeB, and X2 listener. Join the registry separately with
// JoinRegistry (so tests can run standalone APs).
func NewAccessPoint(host *simnet.Host, cfg APConfig) (*AccessPoint, error) {
	if cfg.ID == "" {
		cfg.ID = host.Name()
	}
	if cfg.Band.Name == "" {
		cfg.Band = radio.LTEBand5
	}
	ap := &AccessPoint{
		cfg:    cfg,
		host:   host,
		shares: map[string]float64{cfg.ID: 1},
		loads:  make(map[string]x2.LoadInformation),
	}

	core, err := epc.NewCore(host, epc.Config{
		Name:            cfg.ID,
		SNID:            cfg.ID,
		TAC:             cfg.TAC,
		DirectBreakout:  true,
		OpenHSS:         true,
		ProcessingDelay: cfg.ProcessingDelay,
		Shards:          cfg.Shards,
	})
	if err != nil {
		return nil, fmt.Errorf("core: stub EPC: %w", err)
	}
	ap.Core = core

	s1l, err := host.Listen(epc.S1APPort)
	if err != nil {
		core.Close()
		return nil, fmt.Errorf("core: S1AP listen: %w", err)
	}
	ap.s1Listener = s1l
	host.Clock().Go(func() { core.ServeS1AP(s1l) })

	e, err := enb.New(host, enb.Config{
		ID:      hashID(cfg.ID),
		Name:    cfg.ID,
		TAC:     cfg.TAC,
		MMEAddr: fmt.Sprintf("%s:%d", host.Name(), epc.S1APPort),
	})
	if err != nil {
		s1l.Close()
		core.Close()
		return nil, fmt.Errorf("core: eNodeB: %w", err)
	}
	ap.ENB = e

	ap.Agent = x2.NewAgent(cfg.ID, x2.PeerHello{
		X: cfg.Position.X, Y: cfg.Position.Y,
		BandName: cfg.Band.Name, Mode: cfg.Mode,
	}, ap.handleX2)
	ap.Mobility = mobility.NewPlane(mobility.Config{
		APID: cfg.ID, X2: ap.Agent, Core: core,
		Trigger: cfg.Trigger, Meter: cfg.Meter,
	})
	x2l, err := host.Listen(X2Port)
	if err != nil {
		e.Close()
		s1l.Close()
		core.Close()
		return nil, fmt.Errorf("core: X2 listen: %w", err)
	}
	ap.x2Listener = x2l
	host.Clock().Go(func() { ap.Agent.Serve(x2l) })

	return ap, nil
}

// hashID derives a stable numeric eNB ID from the AP name.
func hashID(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// ID reports the AP identity.
func (ap *AccessPoint) ID() string { return ap.cfg.ID }

// AirAddr is where UEs attach.
func (ap *AccessPoint) AirAddr() string { return ap.ENB.AirAddr() }

// Position reports the site location.
func (ap *AccessPoint) Position() geo.Point { return ap.cfg.Position }

// Mode reports the configured coordination mode.
func (ap *AccessPoint) Mode() x2.Mode { return ap.cfg.Mode }

// Record builds the AP's registry record.
func (ap *AccessPoint) Record() registry.APRecord {
	return registry.APRecord{
		ID:      ap.cfg.ID,
		X2Addr:  fmt.Sprintf("%s:%d", ap.host.Name(), X2Port),
		X:       ap.cfg.Position.X,
		Y:       ap.cfg.Position.Y,
		Band:    ap.cfg.Band.Name,
		EIRPdBm: ap.cfg.EIRPdBm,
		HeightM: ap.cfg.HeightM,
		Mode:    ap.cfg.Mode.String(),
	}
}

// registrySyncTimeout bounds how long AP reads wait for the local
// mirror to catch up to the server revision they observed.
const registrySyncTimeout = 5 * time.Second

// JoinRegistry connects to the global registry, publishes this AP's
// record — the open-join step that telecom cores have no analogue for —
// and subscribes a local mirror to the revision-delta feed, so later
// discovery and key syncs read locally instead of re-pulling full
// lists.
func (ap *AccessPoint) JoinRegistry() error {
	if ap.cfg.RegistryAddr == "" {
		return fmt.Errorf("core: no registry configured")
	}
	c, err := registry.Dial(ap.host.Dial, ap.cfg.RegistryAddr)
	if err != nil {
		return err
	}
	m, err := registry.NewMirror(ap.host.Dial, ap.cfg.RegistryAddr, 0)
	if err != nil {
		c.Close()
		return err
	}
	ap.mu.Lock()
	ap.reg = c
	ap.mirror = m
	ap.mu.Unlock()
	return c.Join(ap.Record())
}

// syncMirror reads the server's revision (one tiny round trip) and
// waits for the mirror to apply at least that much, so reads below see
// everything that existed when the caller asked.
func (ap *AccessPoint) syncMirror() (*registry.Mirror, error) {
	ap.mu.Lock()
	c, m := ap.reg, ap.mirror
	ap.mu.Unlock()
	if c == nil || m == nil {
		return nil, fmt.Errorf("core: not joined to a registry")
	}
	rev, err := c.Revision()
	if err != nil {
		return nil, err
	}
	if err := m.WaitRev(rev, registrySyncTimeout); err != nil {
		return nil, err
	}
	return m, nil
}

// SyncSubscriberKeys imports published open-SIM keys from the registry
// into the stub's HSS, so any published subscriber can attach here
// (§4.2 key publication). Sync is incremental: only keys that arrived
// on the delta feed since the previous call are imported, instead of
// re-pulling every key each time.
func (ap *AccessPoint) SyncSubscriberKeys() (int, error) {
	m, err := ap.syncMirror()
	if err != nil {
		return 0, err
	}
	ap.mu.Lock()
	since := ap.keyRev
	ap.mu.Unlock()
	keys, upTo := m.KeysSince(since)
	n := 0
	for _, k := range keys {
		pub, err := k.Publication()
		if err != nil {
			continue
		}
		if err := ap.Core.ImportPublishedKey(pub); err == nil {
			n++
		}
	}
	ap.mu.Lock()
	if upTo > ap.keyRev {
		ap.keyRev = upTo
	}
	ap.mu.Unlock()
	return n, nil
}

// DiscoverPeers reads same-band APs from the local registry mirror
// (after catching it up to the server's current revision), computes the
// RF contention domain this AP belongs to, and opens X2 associations
// to every domain member. It returns the domain's member IDs
// (including this AP).
func (ap *AccessPoint) DiscoverPeers() ([]string, error) {
	m, err := ap.syncMirror()
	if err != nil {
		return nil, err
	}
	records := m.List(ap.cfg.Band.Name)
	grants := make([]spectrum.Grant, 0, len(records))
	byID := make(map[string]registry.APRecord, len(records))
	for _, r := range records {
		grants = append(grants, spectrum.Grant{
			APID: r.ID, Band: r.Band, Position: r.Position(),
			EIRPdBm: r.EIRPdBm, HeightM: r.HeightM,
		})
		byID[r.ID] = r
	}
	domains := spectrum.ContentionDomains(grants, radio.Auto{}, spectrum.InterferenceThresholdDBm)
	domain := spectrum.DomainOf(domains, ap.cfg.ID)

	connected := map[string]bool{}
	for _, id := range ap.Agent.Peers() {
		connected[id] = true
	}
	for _, member := range domain {
		if member == ap.cfg.ID || connected[member] {
			continue
		}
		rec := byID[member]
		if _, err := ap.Agent.Connect(ap.host.Dial, rec.X2Addr); err != nil {
			continue // unreachable peers are retried at next discovery
		}
	}
	peers := make([]string, 0, len(domain)-1)
	for _, m := range domain {
		if m != ap.cfg.ID {
			peers = append(peers, m)
		}
	}
	ap.mu.Lock()
	ap.peers = peers
	ap.mu.Unlock()
	return domain, nil
}

// Peers reports the last-discovered contention-domain peers.
func (ap *AccessPoint) Peers() []string {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	return append([]string{}, ap.peers...)
}

// Close tears down the AP stack.
func (ap *AccessPoint) Close() {
	ap.mu.Lock()
	if ap.closed {
		ap.mu.Unlock()
		return
	}
	ap.closed = true
	reg, mirror := ap.reg, ap.mirror
	ap.mu.Unlock()
	if reg != nil {
		reg.Leave(ap.cfg.ID)
		reg.Close()
	}
	if mirror != nil {
		mirror.Close()
	}
	ap.Agent.Close()
	ap.x2Listener.Close()
	ap.ENB.Close()
	ap.s1Listener.Close()
	ap.Core.Close()
}

// waitSettle is a small helper: coordination messages are
// asynchronous; callers poll on the world's clock with deadlines
// rather than sleep.
func waitSettle(clk simnet.Clock, timeout time.Duration, cond func() bool) bool {
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		if cond() {
			return true
		}
		clk.Sleep(5 * time.Millisecond)
	}
	return cond()
}
