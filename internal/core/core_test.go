package core

import (
	"fmt"
	"math"
	"testing"
	"time"

	"dlte/internal/auth"
	"dlte/internal/geo"
	"dlte/internal/mobility"
	"dlte/internal/radio"
	"dlte/internal/simnet"
	"dlte/internal/ue"
	"dlte/internal/x2"
)

func newScenario(t *testing.T) *Scenario {
	t.Helper()
	s, err := NewScenario(simnet.Link{Latency: 2 * time.Millisecond}, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func addAP(t *testing.T, s *Scenario, id string, x float64, mode x2.Mode) *AccessPoint {
	t.Helper()
	ap, err := s.AddAP(APConfig{
		ID: id, Position: geo.Pt(x, 0), Band: radio.LTEBand5,
		HeightM: 20, EIRPdBm: 58, Mode: mode, TAC: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ap
}

func TestOpenJoinAndDiscovery(t *testing.T) {
	s := newScenario(t)
	ap1 := addAP(t, s, "ap1", 0, x2.ModeFairShare)
	ap2 := addAP(t, s, "ap2", 4000, x2.ModeFairShare)
	addAP(t, s, "far", 500_000, x2.ModeFairShare) // different contention domain

	// The registry reflects open joins.
	if got := len(s.Registry.List(radio.LTEBand5.Name)); got != 3 {
		t.Fatalf("registry records = %d", got)
	}

	domain, err := ap1.DiscoverPeers()
	if err != nil {
		t.Fatal(err)
	}
	if len(domain) != 2 || domain[0] != "ap1" || domain[1] != "ap2" {
		t.Fatalf("ap1 domain = %v", domain)
	}
	if peers := ap1.Peers(); len(peers) != 1 || peers[0] != "ap2" {
		t.Fatalf("ap1 peers = %v", peers)
	}
	// The X2 association is live in both directions.
	if !waitSettle(s.Clock(), 2*time.Second, func() bool { return len(ap2.Agent.Peers()) == 1 }) {
		t.Fatal("ap2 never saw the association")
	}
}

func TestFairShareNegotiation(t *testing.T) {
	s := newScenario(t)
	ap1 := addAP(t, s, "ap1", 0, x2.ModeFairShare)
	ap2 := addAP(t, s, "ap2", 3000, x2.ModeFairShare)
	ap3 := addAP(t, s, "ap3", 6000, x2.ModeFairShare)

	if _, err := ap1.DiscoverPeers(); err != nil {
		t.Fatal(err)
	}
	share, err := ap1.NegotiateShares()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(share-1.0/3) > 1e-9 {
		t.Errorf("ap1 share = %v, want 1/3", share)
	}
	// Peers adopt the broadcast pattern (quantized to 1/10000 on the
	// wire).
	ok := waitSettle(s.Clock(), 2*time.Second, func() bool {
		return math.Abs(ap2.Share()-1.0/3) < 1e-3 && math.Abs(ap3.Share()-1.0/3) < 1e-3
	})
	if !ok {
		t.Fatalf("shares not adopted: ap2=%v ap3=%v", ap2.Share(), ap3.Share())
	}
	if math.Abs(ap2.ShareOf("ap1")-1.0/3) > 1e-3 {
		t.Errorf("ap2's view of ap1 = %v", ap2.ShareOf("ap1"))
	}
}

func TestStandaloneAPNoRegistry(t *testing.T) {
	// The paper's Papua deployment: one AP, no registry at all (§5).
	n := simnet.New(simnet.Link{Latency: time.Millisecond}, 1)
	t.Cleanup(n.Close)
	host := n.MustAddHost("solo")
	ap, err := NewAccessPoint(host, APConfig{ID: "solo", Band: radio.LTEBand5, TAC: 9})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ap.Close)
	if err := ap.JoinRegistry(); err == nil {
		t.Error("standalone AP joined a nonexistent registry")
	}
	if _, err := ap.SyncSubscriberKeys(); err == nil {
		t.Error("standalone key sync succeeded without registry")
	}
	if ap.Share() != 1 {
		t.Errorf("standalone share = %v, want 1", ap.Share())
	}
}

func TestEndToEndAttachViaScenario(t *testing.T) {
	s := newScenario(t)
	ap := addAP(t, s, "ap1", 0, x2.ModeFairShare)

	d, err := s.AddUE("ue1", "001010000000201")
	if err != nil {
		t.Fatal(err)
	}
	// The AP learns the published key from the registry.
	if n, err := ap.SyncSubscriberKeys(); err != nil || n != 1 {
		t.Fatalf("key sync: n=%d err=%v", n, err)
	}
	// Radio link: 2 km from the site.
	if err := s.ConnectUERadio("ue1", "ap1", geo.Pt(2000, 0)); err != nil {
		t.Fatal(err)
	}
	res, err := d.Attach(ap.AirAddr(), 5*time.Second)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	if !res.DirectBreakout {
		t.Error("dLTE AP did not advertise direct breakout")
	}
	if res.IP == "" {
		t.Error("no PDN address")
	}
}

func TestAirLinkFromRadioModel(t *testing.T) {
	near := AirLink(radio.LTEBand5, 1)
	if near.Down || near.BandwidthBps < 1e6 {
		t.Errorf("1 km link = %+v", near)
	}
	mid := AirLink(radio.LTEBand5, 10)
	if mid.Down || mid.BandwidthBps >= near.BandwidthBps {
		t.Errorf("10 km link = %+v (near %v)", mid, near.BandwidthBps)
	}
	dead := AirLink(radio.LTEBand5, 95)
	if !dead.Down {
		t.Errorf("95 km link should be down: %+v", dead)
	}
}

func TestCooperativeSharesFollowLoad(t *testing.T) {
	s := newScenario(t)
	ap1 := addAP(t, s, "ap1", 0, x2.ModeCooperative)
	ap2 := addAP(t, s, "ap2", 3000, x2.ModeCooperative)

	if _, err := ap1.DiscoverPeers(); err != nil {
		t.Fatal(err)
	}
	if !waitSettle(s.Clock(), 2*time.Second, func() bool { return len(ap2.Agent.Peers()) == 1 }) {
		t.Fatal("association not established")
	}

	// Load ap1 with three clients, ap2 idle.
	for i := 0; i < 3; i++ {
		imsi := auth.IMSI(fmt.Sprintf("0010100000003%02d", i))
		d, err := s.AddUE(fmt.Sprintf("ue%d", i), imsi)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ap1.SyncSubscriberKeys(); err != nil {
			t.Fatal(err)
		}
		if err := s.ConnectUERadio(fmt.Sprintf("ue%d", i), "ap1", geo.Pt(500, 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Attach(ap1.AirAddr(), 5*time.Second); err != nil {
			t.Fatalf("ue%d attach: %v", i, err)
		}
	}

	// Both APs advertise load, then ap1 negotiates.
	if err := ap2.AdvertiseLoad(); err != nil {
		t.Fatal(err)
	}
	if err := ap1.AdvertiseLoad(); err != nil {
		t.Fatal(err)
	}
	ok := waitSettle(s.Clock(), 2*time.Second, func() bool {
		share, err := ap1.NegotiateShares()
		return err == nil && share > 0.9
	})
	if !ok {
		t.Fatalf("cooperative share for loaded AP = %v, want ≈1 (3 UEs vs 0)", ap1.Share())
	}
	if !waitSettle(s.Clock(), 2*time.Second, func() bool { return ap2.Share() < 0.1 }) {
		t.Errorf("idle AP share = %v, want ≈0", ap2.Share())
	}
}

func TestRoamingWithHandoverPrep(t *testing.T) {
	s := newScenario(t)
	ap1 := addAP(t, s, "ap1", 0, x2.ModeCooperative)
	ap2 := addAP(t, s, "ap2", 3000, x2.ModeCooperative)
	if _, err := ap1.DiscoverPeers(); err != nil {
		t.Fatal(err)
	}
	if !waitSettle(s.Clock(), 2*time.Second, func() bool { return len(ap2.Agent.Peers()) == 1 }) {
		t.Fatal("association not established")
	}

	d, err := s.AddUE("roamer", "001010000000250")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap1.SyncSubscriberKeys(); err != nil {
		t.Fatal(err)
	}
	s.ConnectUERadio("roamer", "ap1", geo.Pt(1000, 0))
	s.ConnectUERadio("roamer", "ap2", geo.Pt(2000, 0))

	if _, err := d.Attach(ap1.AirAddr(), 5*time.Second); err != nil {
		t.Fatalf("initial attach: %v", err)
	}
	ip1 := d.IP()

	// Source AP prepares the target over X2 (pushes the published
	// key), then the UE re-attaches at the target.
	if err := ap1.Mobility.Prepare("ap2", d.Publication(), -101.5); err != nil {
		t.Fatal(err)
	}
	if !waitSettle(s.Clock(), 2*time.Second, func() bool {
		_, ok := ap2.Mobility.PreparedBy(d.IMSI())
		return ok
	}) {
		t.Fatal("target AP never saw the context push")
	}
	src, _ := ap2.Mobility.PreparedBy(d.IMSI())
	if src != "ap1" {
		t.Errorf("prepared by %q", src)
	}

	res, err := d.Attach(ap2.AirAddr(), 5*time.Second)
	if err != nil {
		t.Fatalf("re-attach at target: %v", err)
	}
	// dLTE mobility: the IP address changes — continuity is the
	// transport layer's job (E4 measures that).
	if res.IP == ip1 && ip1 != "" {
		t.Logf("note: IPs collided across APs (%s); allowed but rare", ip1)
	}
	if err := ap2.Mobility.NotifyComplete("ap1", d.IMSI()); err != nil {
		t.Fatal(err)
	}
	// Source cleans up its session.
	if !waitSettle(s.Clock(), 2*time.Second, func() bool {
		return ap1.Core.Gateway().NumSessions() == 0
	}) {
		t.Errorf("source sessions = %d, want 0", ap1.Core.Gateway().NumSessions())
	}
}

func TestAttachSurvivesRadioFlap(t *testing.T) {
	// Failure injection: the radio link dies mid-attach; the attach
	// times out cleanly and succeeds on retry after the link recovers.
	s := newScenario(t)
	ap := addAP(t, s, "ap1", 0, x2.ModeFairShare)
	d, err := s.AddUE("flappy", "001010000000260")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.SyncSubscriberKeys(); err != nil {
		t.Fatal(err)
	}
	if err := s.ConnectUERadio("flappy", "ap1", geo.Pt(1000, 0)); err != nil {
		t.Fatal(err)
	}

	// Cut the link shortly after the attach starts.
	clk := s.Clock()
	clk.Go(func() {
		clk.Sleep(20 * time.Millisecond)
		s.Net.SetLinkDown("flappy", "ap1", true)
	})
	if _, err := d.Attach(ap.AirAddr(), 700*time.Millisecond); err == nil {
		t.Log("attach won the race against the flap (acceptable)")
	}

	// Restore and retry: must succeed.
	s.Net.SetLinkDown("flappy", "ap1", false)
	res, err := d.Attach(ap.AirAddr(), 10*time.Second)
	if err != nil {
		t.Fatalf("attach after link restore: %v", err)
	}
	if res.IP == "" {
		t.Error("no IP after recovery")
	}
}

func TestUEFailsOverToSurvivingAP(t *testing.T) {
	// Failure injection: the serving AP dies entirely; the client
	// scans, picks the strongest survivor, and re-attaches.
	s := newScenario(t)
	ap1 := addAP(t, s, "ap1", 0, x2.ModeFairShare)
	ap2 := addAP(t, s, "ap2", 4000, x2.ModeFairShare)

	d, err := s.AddUE("survivor", "001010000000261")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap1.SyncSubscriberKeys(); err != nil {
		t.Fatal(err)
	}
	if _, err := ap2.SyncSubscriberKeys(); err != nil {
		t.Fatal(err)
	}
	uePos := geo.Pt(1500, 0)
	s.ConnectUERadio("survivor", "ap1", uePos)
	s.ConnectUERadio("survivor", "ap2", uePos)
	if _, err := d.Attach(ap1.AirAddr(), 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// The serving AP dies (power loss at the site).
	ap1.Close()

	// Scan and fail over — cell selection ranks the survivor.
	ranked := s.RankAPs(uePos)
	var target *AccessPoint
	for _, sig := range ranked {
		if sig.ID == "ap1" || !sig.Usable {
			continue
		}
		target = s.AP(sig.ID)
		break
	}
	if target == nil {
		t.Fatal("no surviving AP found in scan")
	}
	res, err := d.Attach(target.AirAddr(), 10*time.Second)
	if err != nil {
		t.Fatalf("failover attach: %v", err)
	}
	if res.IP == "" {
		t.Error("no IP after failover")
	}
	if _, err := d.Attach(ap1.AirAddr(), 500*time.Millisecond); err == nil {
		t.Error("attach to the dead AP succeeded")
	}
	// Recover the session for cleanliness.
	if _, err := d.Attach(target.AirAddr(), 10*time.Second); err != nil {
		t.Fatalf("re-attach after dead-AP probe: %v", err)
	}
}

func TestRankAPsAndBestAP(t *testing.T) {
	s := newScenario(t)
	addAP(t, s, "near", 0, x2.ModeFairShare)
	addAP(t, s, "far", 10_000, x2.ModeFairShare)
	addAP(t, s, "dead", 400_000, x2.ModeFairShare)

	uePos := geo.Pt(1000, 0)
	ranked := s.RankAPs(uePos)
	if len(ranked) != 3 {
		t.Fatalf("ranked %d APs", len(ranked))
	}
	if ranked[0].ID != "near" || ranked[1].ID != "far" {
		t.Errorf("ranking = %v", ranked)
	}
	if ranked[0].RSRPdBm <= ranked[1].RSRPdBm {
		t.Errorf("RSRP not descending: %v", ranked)
	}
	if ranked[2].Usable {
		t.Error("400 km AP marked usable")
	}
	best, ok := s.BestAP(uePos)
	if !ok || best.ID() != "near" {
		t.Errorf("BestAP = %v ok=%v", best, ok)
	}
	// Mid-point between near and far leans to the closer one; a point
	// past "far" selects it.
	best, _ = s.BestAP(geo.Pt(11_000, 0))
	if best.ID() != "far" {
		t.Errorf("BestAP at 11 km = %s", best.ID())
	}
}

func TestBestAPNoneUsable(t *testing.T) {
	s := newScenario(t)
	addAP(t, s, "lonely", 0, x2.ModeFairShare)
	if _, ok := s.BestAP(geo.Pt(500_000, 0)); ok {
		t.Error("found a usable AP 500 km away")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	s := newScenario(t)
	ap := addAP(t, s, "ap9", 1234, x2.ModeCooperative)
	rec := ap.Record()
	if rec.ID != "ap9" || rec.X != 1234 || rec.Mode != "cooperative" || rec.X2Addr != "ap9:36422" {
		t.Errorf("record = %+v", rec)
	}
	got, ok := s.Registry.Get("ap9")
	if !ok || got.X2Addr != rec.X2Addr {
		t.Errorf("registry copy = %+v ok=%v", got, ok)
	}
}

// roamPair builds two associated cooperative APs with a UE attached at
// the first, radio-visible to both — the starting point of every
// handover failure-path test.
func roamPair(t *testing.T, imsi string) (*Scenario, *AccessPoint, *AccessPoint, *ue.Device) {
	t.Helper()
	s := newScenario(t)
	ap1 := addAP(t, s, "ap1", 0, x2.ModeCooperative)
	ap2 := addAP(t, s, "ap2", 3000, x2.ModeCooperative)
	if _, err := ap1.DiscoverPeers(); err != nil {
		t.Fatal(err)
	}
	if !waitSettle(s.Clock(), 2*time.Second, func() bool { return len(ap2.Agent.Peers()) == 1 }) {
		t.Fatal("association not established")
	}
	d, err := s.AddUE("roamer", auth.IMSI(imsi))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap1.SyncSubscriberKeys(); err != nil {
		t.Fatal(err)
	}
	s.ConnectUERadio("roamer", "ap1", geo.Pt(1000, 0))
	s.ConnectUERadio("roamer", "ap2", geo.Pt(2000, 0))
	if _, err := d.Attach(ap1.AirAddr(), 5*time.Second); err != nil {
		t.Fatalf("initial attach: %v", err)
	}
	return s, ap1, ap2, d
}

func TestHandoverTargetRejects(t *testing.T) {
	// Failure path: the target's admission policy refuses the UE. The
	// source must land in REJECTED with the target's cause, the target
	// must not keep a prepared context, and the UE stays attached and
	// served at the source — a refused handover is not an outage.
	s, ap1, ap2, d := roamPair(t, "001010000000270")
	ap2.Mobility.SetAdmit(func(imsi, sourceAP string, rsrpDBm float64) (bool, uint8) {
		return false, 42
	})
	if err := ap1.Mobility.Prepare("ap2", d.Publication(), -101); err != nil {
		t.Fatal(err)
	}
	if !waitSettle(s.Clock(), 2*time.Second, func() bool {
		return ap1.Mobility.State(d.IMSI()) == mobility.StateRejected
	}) {
		t.Fatalf("source state = %v, want REJECTED", ap1.Mobility.State(d.IMSI()))
	}
	if c := ap1.Mobility.RejectionCause(d.IMSI()); c != 42 {
		t.Errorf("cause = %d, want 42", c)
	}
	if _, ok := ap2.Mobility.PreparedBy(d.IMSI()); ok {
		t.Error("rejected UE still prepared at target")
	}
	// The session at the source is intact and service continues.
	if n := ap1.Core.Gateway().NumSessions(); n != 1 {
		t.Errorf("source sessions = %d, want 1", n)
	}
	if _, err := d.Attach(ap1.AirAddr(), 5*time.Second); err != nil {
		t.Errorf("UE lost service after rejected handover: %v", err)
	}
}

func TestHandoverSourceDiesMidPrepare(t *testing.T) {
	// Failure path: the source AP dies after pushing the UE context but
	// before the handover finishes. The UE must still land at the
	// prepared target, and the target's NotifyComplete must retire the
	// prepared entry even though the source is unreachable — nothing
	// strands.
	s, ap1, ap2, d := roamPair(t, "001010000000271")
	if err := ap1.Mobility.Prepare("ap2", d.Publication(), -101); err != nil {
		t.Fatal(err)
	}
	if !waitSettle(s.Clock(), 2*time.Second, func() bool {
		_, ok := ap2.Mobility.PreparedBy(d.IMSI())
		return ok
	}) {
		t.Fatal("context push never landed at target")
	}

	// The source dies: registry record gone, X2 agent and air side shut.
	ap1.Close()

	if _, err := d.Attach(ap2.AirAddr(), 5*time.Second); err != nil {
		t.Fatalf("re-attach at prepared target after source death: %v", err)
	}
	if n := ap2.Core.Gateway().NumSessions(); n != 1 {
		t.Fatalf("target sessions = %d, want 1", n)
	}
	// Completing toward a dead source may error — but the prepared
	// entry must be retired regardless, or the context leaks forever.
	if err := ap2.Mobility.NotifyComplete("ap1", d.IMSI()); err != nil {
		t.Logf("notify toward dead source failed as expected: %v", err)
	}
	if _, ok := ap2.Mobility.PreparedBy(d.IMSI()); ok {
		t.Error("prepared entry survived NotifyComplete — stranded context")
	}
	// The UE's session at the living AP is untouched by the failure.
	if n := ap2.Core.Gateway().NumSessions(); n != 1 {
		t.Errorf("target sessions after notify = %d, want 1", n)
	}
}

func TestHandoverDuplicateComplete(t *testing.T) {
	// Failure path: the target retransmits HandoverComplete (its first
	// notify looked lost). The source must tear the session down exactly
	// once, end in COMPLETED, and shrug off the duplicate.
	s, ap1, ap2, d := roamPair(t, "001010000000272")
	if err := ap1.Mobility.Prepare("ap2", d.Publication(), -101); err != nil {
		t.Fatal(err)
	}
	if !waitSettle(s.Clock(), 2*time.Second, func() bool {
		return ap1.Mobility.State(d.IMSI()) == mobility.StatePrepared
	}) {
		t.Fatalf("source state = %v, want PREPARED", ap1.Mobility.State(d.IMSI()))
	}
	if _, err := d.Attach(ap2.AirAddr(), 5*time.Second); err != nil {
		t.Fatalf("re-attach at target: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := ap2.Mobility.NotifyComplete("ap1", d.IMSI()); err != nil {
			t.Fatalf("notify %d: %v", i+1, err)
		}
	}
	if !waitSettle(s.Clock(), 2*time.Second, func() bool {
		return ap1.Core.Gateway().NumSessions() == 0 &&
			ap1.Mobility.State(d.IMSI()) == mobility.StateCompleted
	}) {
		t.Fatalf("after duplicate completes: sessions=%d state=%v",
			ap1.Core.Gateway().NumSessions(), ap1.Mobility.State(d.IMSI()))
	}
	// Both sides settled: target serves the UE, source holds nothing.
	if n := ap2.Core.Gateway().NumSessions(); n != 1 {
		t.Errorf("target sessions = %d, want 1", n)
	}
}
