package core

import (
	"fmt"
	"time"

	"dlte/internal/auth"
	"dlte/internal/geo"
	"dlte/internal/radio"
	"dlte/internal/registry"
	"dlte/internal/simnet"
	"dlte/internal/ue"
)

// RegistryPort is the global registry's listen port.
const RegistryPort = 8400

// Scenario wires a complete dLTE world on a simulated internetwork:
// one global registry, any number of APs, UEs, and service hosts. It
// is the builder the examples and experiments share.
type Scenario struct {
	Net      *simnet.Network
	Registry *registry.Store

	regListener registry.Listener
	aps         map[string]*AccessPoint
	ues         map[string]*ue.Device
	closed      bool
}

// RegistryAddr is the registry's dial address within a scenario.
const RegistryAddr = "registry:8400"

// NewScenario builds the simulated internetwork with the given default
// (WAN) link parameters and starts the registry. The scenario runs on
// a VirtualClock owned by its network: simulated latencies cost no
// wall time, and same-seed runs are deterministic. The calling
// goroutine is the clock's registered driver — helper goroutines it
// spawns must use Clock().Go, and out-of-band waits must be bracketed
// with Clock().Block/Unblock (see simnet.Clock).
func NewScenario(wan simnet.Link, seed int64) (*Scenario, error) {
	return buildScenario(simnet.NewVirtualNetwork(wan, seed))
}

// NewWallScenario is NewScenario on wall-clock time, for interactive
// demos whose pacing should match real time.
func NewWallScenario(wan simnet.Link, seed int64) (*Scenario, error) {
	return buildScenario(simnet.New(wan, seed))
}

func buildScenario(n *simnet.Network) (*Scenario, error) {
	s := &Scenario{
		Net:      n,
		Registry: registry.NewStore(),
		aps:      make(map[string]*AccessPoint),
		ues:      make(map[string]*ue.Device),
	}
	regHost, err := s.Net.AddHost("registry")
	if err != nil {
		s.Net.Close()
		return nil, err
	}
	l, err := regHost.Listen(RegistryPort)
	if err != nil {
		s.Net.Close()
		return nil, err
	}
	s.regListener = l
	srv := registry.NewServer(s.Registry)
	s.Net.Clock().Go(func() { srv.Serve(l) })
	return s, nil
}

// Clock returns the clock the scenario's world runs on.
func (s *Scenario) Clock() simnet.Clock { return s.Net.Clock() }

// AddAP creates a host named cfg.ID, brings up a dLTE AP on it, and
// joins it to the registry.
func (s *Scenario) AddAP(cfg APConfig) (*AccessPoint, error) {
	host, err := s.Net.AddHost(cfg.ID)
	if err != nil {
		return nil, err
	}
	cfg.RegistryAddr = RegistryAddr
	ap, err := NewAccessPoint(host, cfg)
	if err != nil {
		return nil, err
	}
	if err := ap.JoinRegistry(); err != nil {
		ap.Close()
		return nil, err
	}
	s.aps[cfg.ID] = ap
	return ap, nil
}

// AP returns a scenario AP by ID.
func (s *Scenario) AP(id string) *AccessPoint { return s.aps[id] }

// AddUE creates a UE host and device with a freshly provisioned SIM,
// and publishes its open-SIM key to the registry.
func (s *Scenario) AddUE(name string, imsi auth.IMSI) (*ue.Device, error) {
	sim, err := auth.NewSIM(imsi)
	if err != nil {
		return nil, err
	}
	host, err := s.Net.AddHost(name)
	if err != nil {
		return nil, err
	}
	d, err := ue.NewDevice(host, sim)
	if err != nil {
		return nil, err
	}
	if err := s.Registry.PublishKey(registry.NewKeyRecord(d.Publication())); err != nil {
		return nil, err
	}
	s.ues[name] = d
	return d, nil
}

// UE returns a scenario UE by name.
func (s *Scenario) UE(name string) *ue.Device { return s.ues[name] }

// AirLink derives simulated link parameters for a UE↔AP radio leg
// from the radio model: LTE scheduled-access latency plus the
// SNR-derived throughput at the given distance. A dead link (no
// throughput) is returned as a down link.
func AirLink(band radio.Band, dKm float64) simnet.Link {
	dl := radio.Link{Tx: radio.LTEBaseStation, Rx: radio.LTEHandset, Band: band}
	bps := radio.LTEThroughputBps(dl.SNRdB(dKm), band.BandwidthHz(), true)
	if bps <= 0 {
		return simnet.Link{Down: true}
	}
	return simnet.Link{
		// One scheduling round trip: SR + grant + HARQ timing ≈ 5 ms.
		Latency:      5 * time.Millisecond,
		BandwidthBps: bps,
	}
}

// ConnectUERadio configures the air link between a UE host and an AP
// using the AP's band and the geometric distance between uePos and the
// AP site.
func (s *Scenario) ConnectUERadio(ueName, apID string, uePos geo.Point) error {
	ap, ok := s.aps[apID]
	if !ok {
		return fmt.Errorf("core: no AP %q", apID)
	}
	dKm := uePos.DistanceTo(ap.Position()) / 1000
	s.Net.SetLink(ueName, apID, AirLink(ap.cfg.Band, dKm))
	return nil
}

// APSignal is one entry of a cell-selection scan.
type APSignal struct {
	// ID is the AP identity.
	ID string
	// RSRPdBm is the reference signal power a UE at the scan position
	// would receive.
	RSRPdBm float64
	// Usable reports whether the downlink closes at all.
	Usable bool
}

// RankAPs performs the UE-side cell-selection scan the paper's
// cooperative mode builds on ("assignment of the best AP to serve
// each client", §4.3): every scenario AP is ranked by RSRP at uePos,
// strongest first.
func (s *Scenario) RankAPs(uePos geo.Point) []APSignal {
	out := make([]APSignal, 0, len(s.aps))
	for id, ap := range s.aps {
		dKm := uePos.DistanceTo(ap.Position()) / 1000
		link := radio.Link{Tx: radio.LTEBaseStation, Rx: radio.LTEHandset, Band: ap.cfg.Band}
		rsrp := link.RxPowerDBm(dKm)
		eff, _ := radio.LTEEfficiency(link.SNRdB(dKm), true)
		out = append(out, APSignal{ID: id, RSRPdBm: rsrp, Usable: eff > 0})
	}
	// Insertion sort by RSRP descending (tiny n).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].RSRPdBm > out[j-1].RSRPdBm; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// BestAP returns the strongest usable AP at uePos, if any.
func (s *Scenario) BestAP(uePos geo.Point) (*AccessPoint, bool) {
	for _, sig := range s.RankAPs(uePos) {
		if sig.Usable {
			return s.aps[sig.ID], true
		}
	}
	return nil, false
}

// Close tears down every component.
func (s *Scenario) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, ap := range s.aps {
		ap.Close()
	}
	for _, d := range s.ues {
		d.Close()
	}
	s.regListener.Close()
	s.Net.Close()
}
