package epc

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dlte/internal/auth"
	"dlte/internal/nas"
	"dlte/internal/s1ap"
	"dlte/internal/session"
	"dlte/internal/simnet"
	"dlte/internal/wire"
)

// S1APPort is where cores listen for eNodeB associations.
const S1APPort = 36412

// Config shapes a Core deployment.
type Config struct {
	// Name identifies the core (MME name in S1 setup).
	Name string
	// SNID is the serving-network identity bound into KASME.
	SNID string
	// TAC is the served tracking area.
	TAC uint16
	// DirectBreakout marks dLTE semantics in AttachAccept: traffic
	// exits at this core's host (which, for a stub, is the AP itself).
	DirectBreakout bool
	// OpenHSS makes the subscriber store accept published keys — the
	// dLTE open-core property.
	OpenHSS bool
	// ProcessingDelay models the core's per-signaling-message service
	// time; with one logical signaling processor this caps the core at
	// 1/ProcessingDelay messages per second, which is what saturates a
	// shared centralized EPC in experiment E3. Zero disables.
	ProcessingDelay time.Duration
	// SignalingProcessors models how many signaling messages the core
	// services in parallel when ProcessingDelay is set — the sharded-
	// MME experimental knob (an M/D/k queue in virtual time). 0 or 1
	// is the single processor of a classic MME.
	SignalingProcessors int
	// RequireENBAuthorization closes the core to organic expansion:
	// only eNodeB IDs registered via AuthorizeENB may associate — the
	// telecom/private-LTE property the paper contrasts with dLTE's
	// open registry (§2.1, Table 1).
	RequireENBAuthorization bool
	// Shards is the number of per-UE session shards, each owning its
	// slice of the session/GUTI tables and serving its signaling
	// messages one at a time in deterministic (virtual arrival time,
	// eNB conn ID) order. Shards partition real-CPU execution only —
	// under a virtual clock, runnable goroutines execute in parallel
	// while virtual time stands still — so control-plane throughput
	// scales across cores while simulated results are byte-identical
	// at any value. 0 means one shard per CPU (capped at maxShards).
	Shards int
}

// maxShards caps the shard count: the GUTI layout reserves 16 bits
// for the owning shard and the MME UE ID layout 12, and beyond the
// CPU count extra shards only add memory.
const maxShards = 256

// gutiShardShift places the owning shard in a GUTI's top 16 bits, so
// any GUTI (including a foreign one carried in a roaming TAU) routes
// to exactly one shard without a global table.
const gutiShardShift = 48

// mmeShardShift places the owning shard in an MME UE ID's top bits.
const mmeShardShift = 20

// Stats are the core's cumulative signaling counters.
type Stats struct {
	// SignalingMessages counts S1AP messages processed.
	SignalingMessages uint64
	// Attaches counts completed registrations.
	Attaches uint64
	// Rejects counts refused or failed registrations.
	Rejects uint64
	// Detaches counts completed detaches.
	Detaches uint64
	// UserPlaneDrops aggregates the gateway's and GTP endpoint's
	// per-packet drop counters, so a run's silent-discard budget is
	// visible next to its signaling totals.
	UserPlaneDrops UserPlaneDrops
}

// UserPlaneDrops breaks down user-plane packet drops by cause.
type UserPlaneDrops struct {
	// Malformed counts packets failing GTP decode or user-packet
	// framing (including unparseable NAT remotes).
	Malformed uint64
	// UnknownTEID counts well-formed G-PDUs with no live tunnel.
	UnknownTEID uint64
	// UnboundDownlink counts Internet return traffic arriving before
	// the downlink path was bound.
	UnboundDownlink uint64
}

// Total sums all drop causes.
func (d UserPlaneDrops) Total() uint64 {
	return d.Malformed + d.UnknownTEID + d.UnboundDownlink
}

// Core is an EPC control+user plane: HSS, MME, and gateway. Deploy one
// per AP for dLTE stubs, or one shared instance for the centralized
// baseline.
//
// Per-UE state is partitioned across session shards keyed by IMSI (or
// GUTI owner, for TAU): each shard owns its sessions, GUTI map, and
// identity allocators, and serves at most one signaling message at a
// time, so shards scale signaling across cores without a core-wide
// lock while each UE's lifecycle stays single-writer.
type Core struct {
	cfg  Config
	host *simnet.Host
	hss  *auth.SubscriberDB
	gw   *Gateway

	shards []*sessShard
	proc   detGate // the modeled signaling processor(s)

	mu         sync.Mutex
	allowedENB map[uint32]bool

	sigMsgs  atomic.Uint64
	attaches atomic.Uint64
	rejects  atomic.Uint64
	detaches atomic.Uint64
}

// sessShard owns one partition of the per-UE control-plane state.
// The gate serializes signaling processing (so session fields other
// than the FSM and IMSI are single-writer); mu guards the tables and
// allocators, which release/handover paths read from other
// goroutines.
type sessShard struct {
	idx  int
	gate detGate

	mu       sync.Mutex
	nextMME  uint32
	nextGUTI uint64
	gutis    map[uint64]string     // GUTI → IMSI
	byIMSI   map[string]*ueSession // current session per registered IMSI
}

// NewCore creates a core whose gateway lives on host.
func NewCore(host *simnet.Host, cfg Config) (*Core, error) {
	if cfg.Name == "" {
		cfg.Name = "core-" + host.Name()
	}
	if cfg.SNID == "" {
		cfg.SNID = cfg.Name
	}
	gw, err := NewGateway(host)
	if err != nil {
		return nil, err
	}
	n := cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxShards {
		n = maxShards
	}
	hss := auth.NewSubscriberDB(cfg.OpenHSS)
	// SQN freshness must follow the simulation's clock, not the wall
	// clock: two cores challenging the same roaming SIM within one
	// *real* millisecond would otherwise race into AUTS resync.
	hss.Now = host.Clock().Now
	c := &Core{
		cfg:        cfg,
		host:       host,
		hss:        hss,
		gw:         gw,
		shards:     make([]*sessShard, n),
		allowedENB: make(map[uint32]bool),
	}
	c.proc.capacity = cfg.SignalingProcessors
	for i := range c.shards {
		c.shards[i] = &sessShard{
			idx:      i,
			nextGUTI: 0x100,
			gutis:    make(map[uint64]string),
			byIMSI:   make(map[string]*ueSession),
		}
	}
	return c, nil
}

// HSS exposes the subscriber store for provisioning.
func (c *Core) HSS() *auth.SubscriberDB { return c.hss }

// Gateway exposes the user-plane gateway.
func (c *Core) Gateway() *Gateway { return c.gw }

// Host reports the core's host name.
func (c *Core) Host() string { return c.host.Name() }

// Shards reports the resolved session shard count.
func (c *Core) Shards() int { return len(c.shards) }

// Provision adds a subscriber to the HSS.
func (c *Core) Provision(sim auth.SIM) error { return c.hss.Provision(sim) }

// errENBRefused aborts an unauthorized eNodeB association.
var errENBRefused = errors.New("epc: eNodeB not authorized")

// AuthorizeENB admits an eNodeB ID to a closed core (the operator's
// manual provisioning step dLTE eliminates).
func (c *Core) AuthorizeENB(id uint32) {
	c.mu.Lock()
	c.allowedENB[id] = true
	c.mu.Unlock()
}

// ImportPublishedKey admits an open-SIM publication (dLTE mode only;
// a closed core refuses, reproducing the paper's §2.1 moat).
func (c *Core) ImportPublishedKey(p auth.KeyPublication) error {
	return c.hss.ImportPublished(p.SIM())
}

// CompleteHandover finishes the source side of an X2 handover: the UE
// landed at a peer AP, so the local lifecycle ends (Attached →
// Detached via EvHandoverComplete) and its gateway session is torn
// down. Idempotent: a duplicate or late complete finds no session and
// only re-deletes the (already gone) user-plane state. A session still
// mid-attach falls back to EvRelease inside releaseSession, so a
// complete racing an attach can never strand the session. Handover
// bookkeeping (who prepared what, in-flight state) lives in
// internal/mobility, not here.
func (c *Core) CompleteHandover(imsi string) error {
	sh := c.shardFor(imsi)
	sh.mu.Lock()
	s := sh.byIMSI[imsi]
	sh.mu.Unlock()
	if s == nil {
		// No live control-plane session (it may already have been
		// released); make sure the user plane is gone regardless.
		c.gw.DeleteSession(imsi)
		return nil
	}
	_, err := s.nasSession.FSM().Fire(session.EvHandoverComplete)
	c.releaseSession(s)
	return err
}

// Stats snapshots the signaling counters.
func (c *Core) Stats() Stats {
	gd := c.gw.Drops()
	td := c.gw.TunnelDrops()
	return Stats{
		SignalingMessages: c.sigMsgs.Load(),
		Attaches:          c.attaches.Load(),
		Rejects:           c.rejects.Load(),
		Detaches:          c.detaches.Load(),
		UserPlaneDrops: UserPlaneDrops{
			Malformed:       uint64(td.Malformed.Value() + gd.MalformedUser.Value() + gd.BadRemote.Value()),
			UnknownTEID:     uint64(td.UnknownTEID.Value()),
			UnboundDownlink: uint64(gd.UnboundDownlink.Value()),
		},
	}
}

// Listener abstracts net.Listener / simnet.Listener for S1AP serving.
type Listener interface {
	Accept() (net.Conn, error)
	Close() error
}

// ServeS1AP accepts eNodeB associations until the listener closes.
// Run in a goroutine.
func (c *Core) ServeS1AP(l Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		simnet.ClockOf(conn).Go(func() { c.serveENB(conn) })
	}
}

// enbConn is one eNodeB association and its UE sessions. The map is
// touched only by the association's serving goroutine.
type enbConn struct {
	conn     *s1ap.Conn
	sessions map[uint32]*ueSession // ENBUEID → session
}

// ueSession is the EPC's handle on one UE. Lifecycle state lives in
// the NAS session's FSM; everything here but imsi is written only
// under the owning shard's gate. imsi (and the shard's byIMSI entry)
// is guarded by shard.mu because release and handover paths read it
// from other goroutines.
type ueSession struct {
	nasSession *nas.NetworkSession
	shard      *sessShard
	enbUEID    uint32
	mmeUEID    uint32
	imsi       string
	uplinkTEID uint32
	icsSent    bool
}

func (c *Core) serveENB(raw net.Conn) {
	if sc, ok := raw.(*simnet.Conn); ok {
		c.serveENBDispatch(sc)
		return
	}
	defer raw.Close()
	clk := simnet.ClockOf(raw)
	connID := raw.RemoteAddr().String()
	ec := &enbConn{conn: s1ap.NewConn(raw), sessions: make(map[uint32]*ueSession)}
	var v s1ap.MsgView
	for {
		// The frame is pooled and the view decoded in place; dispatch is
		// synchronous, so the buffer is released as soon as the message
		// (and any views into it, NAS PDU included) has been served.
		frame, err := ec.conn.RecvOwned()
		if err == nil {
			err = s1ap.DecodeView(frame, &v)
			if err != nil {
				wire.PutFrame(frame)
			}
		}
		if err != nil {
			// Association lost (or speaking garbage): tear down this
			// eNB's sessions.
			for _, s := range ec.sessions {
				c.releaseSession(s)
			}
			return
		}
		c.sigMsgs.Add(1)
		c.applyProcessingDelay(clk, connID)
		derr := c.dispatchS1AP(clk, ec, connID, &v)
		wire.PutFrame(frame)
		if errors.Is(derr, errENBRefused) {
			return // drop the association: closed core
		}
		// Per-UE errors are isolated; the association survives.
	}
}

// enbIngest is the run-to-completion ingest queue for one eNB
// association. The conn's delivery handler reassembles frames and
// queues pooled copies; the association's serving goroutine (the one
// ServeS1AP spawned) drains the queue through dispatchS1AP, which may
// sleep on admission gates and so cannot run inside a dispatch
// handler. One goroutine per eNB association — not per UE — keeps the
// pre-existing serialization (messages on one S1AP association are
// inherently serial) while the per-UE hot paths stay handler-driven.
type enbIngest struct {
	mu   sync.Mutex
	q    [][]byte // pooled frame copies, FIFO from head
	head int
	dead bool
	wake chan struct{} // buffered(1) doorbell for the serving goroutine
}

// push queues a copy of frame (which is only valid during the
// handler's call) for the serving goroutine.
func (in *enbIngest) push(frame []byte) {
	buf := append(wire.GetFrame(), frame...)
	in.mu.Lock()
	in.q = append(in.q, buf)
	in.mu.Unlock()
	in.signal()
}

// close marks the association dead; queued frames (already fully
// received) are still served first, matching the blocking reader that
// drained buffered stream data before seeing the close.
func (in *enbIngest) close() {
	in.mu.Lock()
	in.dead = true
	in.mu.Unlock()
	in.signal()
}

func (in *enbIngest) signal() {
	select {
	case in.wake <- struct{}{}:
	default:
	}
}

// pop returns the next queued frame, parking through the clock until
// one arrives. ok=false means dead and drained.
func (in *enbIngest) pop(clk simnet.Clock) (frame []byte, ok bool) {
	for {
		in.mu.Lock()
		if in.head < len(in.q) {
			f := in.q[in.head]
			in.q[in.head] = nil
			in.head++
			if in.head == len(in.q) {
				in.q, in.head = in.q[:0], 0
			}
			in.mu.Unlock()
			return f, true
		}
		if in.dead {
			in.mu.Unlock()
			return nil, false
		}
		in.mu.Unlock()
		clk.Block()
		<-in.wake
		clk.Unblock()
	}
}

// drain recycles any frames still queued when the association is torn
// down mid-stream (decode error, refused eNB).
func (in *enbIngest) drain() {
	in.mu.Lock()
	for i := in.head; i < len(in.q); i++ {
		wire.PutFrame(in.q[i])
		in.q[i] = nil
	}
	in.q, in.head, in.dead = nil, 0, true
	in.mu.Unlock()
}

// serveENBDispatch serves one eNB association with run-to-completion
// ingest: frames reassemble inside the delivery handler and the
// serving goroutine wakes only when there is a message to process —
// no read-deadline polling, no per-read park/unpark.
func (c *Core) serveENBDispatch(sc *simnet.Conn) {
	clk := simnet.ClockOf(sc)
	connID := sc.RemoteAddr().String()
	in := &enbIngest{wake: make(chan struct{}, 1)}
	asm := &wire.FrameAssembler{}
	sc.OnDeliver(func(data []byte) {
		if asm.Feed(data, func(frame []byte) error {
			in.push(frame)
			return nil
		}) != nil {
			asm.Reset()
			in.close()
		}
		// The serving goroutine may have parked on the doorbell; tell
		// the virtual clock a goroutine became runnable.
		simnet.Poke(clk)
	}, func() {
		asm.Reset()
		in.close()
		simnet.Poke(clk)
	})

	ec := &enbConn{conn: s1ap.NewConn(sc), sessions: make(map[uint32]*ueSession)}
	var v s1ap.MsgView
	for {
		frame, ok := in.pop(clk)
		if !ok {
			// Association lost: tear down this eNB's sessions.
			for _, s := range ec.sessions {
				c.releaseSession(s)
			}
			sc.Close()
			return
		}
		if err := s1ap.DecodeView(frame, &v); err != nil {
			wire.PutFrame(frame)
			for _, s := range ec.sessions {
				c.releaseSession(s)
			}
			sc.Close()
			in.drain()
			return
		}
		c.sigMsgs.Add(1)
		c.applyProcessingDelay(clk, connID)
		derr := c.dispatchS1AP(clk, ec, connID, &v)
		wire.PutFrame(frame)
		if errors.Is(derr, errENBRefused) {
			sc.Close()
			in.drain()
			return // drop the association: closed core
		}
		// Per-UE errors are isolated; the association survives.
	}
}

// applyProcessingDelay models the core's signaling processor(s): up
// to SignalingProcessors messages at a time, each taking
// ProcessingDelay. Under load, arrivals queue — the saturation
// behaviour of a shared EPC.
func (c *Core) applyProcessingDelay(clk simnet.Clock, connID string) {
	if c.cfg.ProcessingDelay <= 0 {
		return
	}
	c.proc.run(clk, connID, func() { clk.Sleep(c.cfg.ProcessingDelay) })
}

// shardFor maps an identity onto its owning shard (FNV-1a; no
// allocation — this runs per signaling message).
func (c *Core) shardFor(id string) *sessShard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return c.shards[h%uint32(len(c.shards))]
}

// shardForBytes is shardFor over a byte view (same FNV-1a, so a given
// identity routes identically whether it arrives as string or view).
func (c *Core) shardForBytes(id []byte) *sessShard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return c.shards[h%uint32(len(c.shards))]
}

// shardOfGUTI routes a GUTI to the shard that allocated it (or, for a
// foreign GUTI, to a deterministic shard that will not know it —
// yielding the standard TAU reject).
func (c *Core) shardOfGUTI(g uint64) *sessShard {
	return c.shards[(g>>gutiShardShift)%uint64(len(c.shards))]
}

// routeInitial peeks at the first NAS PDU of a new UE context to find
// the identity that keys the session's shard: the IMSI of an
// AttachRequest, the GUTI owner of a TAURequest. Undecodable or
// identity-free PDUs fall back to hashing the association, which is
// still deterministic.
func (c *Core) routeInitial(connID string, pdu []byte) *sessShard {
	var v nas.MsgView
	if err := nas.DecodeView(pdu, &v); err == nil {
		switch v.Type {
		case nas.TypeAttachRequest:
			return c.shardForBytes(v.IMSI)
		case nas.TypeTAURequest:
			return c.shardOfGUTI(v.GUTI)
		}
	}
	return c.shardFor(connID)
}

// runSharded executes fn under the shard's serving gate: one message
// per shard at a time, admitted in deterministic (virtual arrival
// time, eNB conn ID) order.
func (c *Core) runSharded(clk simnet.Clock, sh *sessShard, actor string, fn func() error) error {
	var err error
	sh.gate.run(clk, actor, func() { err = fn() })
	return err
}

// dispatchS1AP resolves a decoded message view to its session's shard
// and serves it there. Association-level messages (S1 setup) touch no
// per-UE state and bypass the shards. Views in v alias the pooled
// receive frame; everything here runs synchronously under it.
func (c *Core) dispatchS1AP(clk simnet.Clock, ec *enbConn, connID string, v *s1ap.MsgView) error {
	switch v.Type {
	case s1ap.TypeS1SetupRequest:
		if c.cfg.RequireENBAuthorization {
			c.mu.Lock()
			allowed := c.allowedENB[v.ENBID]
			c.mu.Unlock()
			if !allowed {
				// Closed core: the association is refused outright —
				// an unauthorized AP cannot extend this network.
				return errENBRefused
			}
		}
		return ec.conn.Send(&s1ap.S1SetupResponse{MMEName: c.cfg.Name, ServedTAC: c.cfg.TAC, SNID: c.cfg.SNID})

	case s1ap.TypeInitialUEMessage:
		sh := c.routeInitial(connID, v.NASPDU)
		return c.runSharded(clk, sh, connID, func() error {
			s := c.newUESession(sh, v.ENBUEID)
			ec.sessions[v.ENBUEID] = s
			return c.feedNAS(ec, s, v.NASPDU)
		})

	case s1ap.TypeUplinkNASTransport:
		s, ok := ec.sessions[v.ENBUEID]
		if !ok {
			return fmt.Errorf("epc: no session for eNB UE %d", v.ENBUEID)
		}
		return c.runSharded(clk, s.shard, connID, func() error {
			return c.feedNAS(ec, s, v.NASPDU)
		})

	case s1ap.TypeInitialContextSetupResponse:
		s, ok := ec.sessions[v.ENBUEID]
		if !ok {
			return fmt.Errorf("epc: no session for eNB UE %d", v.ENBUEID)
		}
		return c.runSharded(clk, s.shard, connID, func() error {
			addr, err := simnet.ParseAddr(string(v.ENBAddr))
			if err != nil {
				return err
			}
			return c.gw.BindDownlink(s.imsi, addr, v.ENBTEID)
		})

	case s1ap.TypePathSwitchRequest:
		// Locate the session by MME UE ID across this association.
		var s *ueSession
		for _, cand := range ec.sessions {
			if cand.mmeUEID == v.MMEUEID {
				s = cand
				break
			}
		}
		if s == nil {
			return fmt.Errorf("epc: path switch for unknown MME UE %d", v.MMEUEID)
		}
		return c.runSharded(clk, s.shard, connID, func() error {
			if _, err := s.nasSession.FSM().Fire(session.EvPathSwitch); err != nil {
				return err
			}
			addr, err := simnet.ParseAddr(string(v.NewENBAddr))
			if err != nil {
				return err
			}
			if err := c.gw.SwitchPath(s.imsi, addr, v.NewENBTEID); err != nil {
				return err
			}
			return ec.conn.Send(&s1ap.PathSwitchAck{MMEUEID: v.MMEUEID})
		})

	case s1ap.TypeUEContextReleaseRequest:
		// eNB-initiated release (radio loss): end the lifecycle, then
		// complete the standard command/complete exchange.
		if s, ok := ec.sessions[v.ENBUEID]; ok {
			c.runSharded(clk, s.shard, connID, func() error {
				c.releaseSession(s)
				return nil
			})
			delete(ec.sessions, v.ENBUEID)
		}
		return ec.conn.Send(&s1ap.UEContextReleaseCommand{ENBUEID: v.ENBUEID, MMEUEID: v.MMEUEID})

	case s1ap.TypeUEContextReleaseComplete:
		if s, ok := ec.sessions[v.ENBUEID]; ok {
			c.runSharded(clk, s.shard, connID, func() error {
				c.releaseSession(s)
				return nil
			})
			delete(ec.sessions, v.ENBUEID)
		}
		return nil

	default:
		return fmt.Errorf("epc: unhandled S1AP %s", v.Type)
	}
}

// newUESession builds a session owned by shard sh. Identities embed
// the shard index (GUTI top bits, MME UE ID top bits) so later
// messages route back to the owner without a global table.
func (c *Core) newUESession(sh *sessShard, enbUEID uint32) *ueSession {
	sh.mu.Lock()
	sh.nextMME++
	mmeUEID := uint32(sh.idx)<<mmeShardShift | sh.nextMME
	sh.mu.Unlock()

	s := &ueSession{shard: sh, enbUEID: enbUEID, mmeUEID: mmeUEID}
	s.nasSession = nas.NewNetworkSession(nas.NetworkConfig{
		HSS:              c.hss,
		ServingNetworkID: c.cfg.SNID,
		TrackingArea:     c.cfg.TAC,
		DirectBreakout:   c.cfg.DirectBreakout,
		AllocateIP: func(imsi string) (string, error) {
			// The UE passed authentication: it becomes the canonical
			// session for its IMSI (superseding any stale one).
			sh.mu.Lock()
			s.imsi = imsi
			sh.byIMSI[imsi] = s
			sh.mu.Unlock()
			ip, teid, err := c.gw.CreateSession(imsi)
			if err != nil {
				return "", err
			}
			s.uplinkTEID = teid
			return ip, nil
		},
		AllocateGUTI: func() uint64 {
			sh.mu.Lock()
			defer sh.mu.Unlock()
			sh.nextGUTI++
			return uint64(sh.idx)<<gutiShardShift | uint64(c.cfg.TAC)<<32 | sh.nextGUTI
		},
		KnownGUTI: func(g uint64) bool {
			own := c.shardOfGUTI(g)
			own.mu.Lock()
			defer own.mu.Unlock()
			_, ok := own.gutis[g]
			return ok
		},
	})
	return s
}

// feedNAS pushes an uplink NAS PDU into the session's protocol
// handler (which drives the lifecycle FSM) and relays any reply /
// context-setup downlink. Runs under the owning shard's gate.
//
// The downlink path is single-buffer: the S1AP transport header goes
// into a pooled frame first, the NAS handler appends its reply (NAS
// inner message, sealing envelope and all) directly after it, and the
// patched frame ships as-is — no per-message reply allocations.
func (c *Core) feedNAS(ec *enbConn, s *ueSession, pdu []byte) error {
	frame := wire.GetFrame()
	hdr, mark := s1ap.StartDownlinkNASTransport(frame, s.enbUEID, s.mmeUEID)
	out, ev, nasErr := s.nasSession.HandleAppend(pdu, hdr)

	// Activate the data path as soon as the session reaches Attaching,
	// before the NAS AttachAccept goes out (mirroring real S1AP, where
	// the InitialContextSetupRequest carries the accept): the eNodeB's
	// tunnels are live by the time the UE confirms.
	if !s.icsSent && s.nasSession.State() == session.Attaching && s.uplinkTEID != 0 {
		s.icsSent = true
		if err := ec.conn.Send(&s1ap.InitialContextSetupRequest{
			ENBUEID: s.enbUEID,
			MMEUEID: s.mmeUEID,
			SGWAddr: c.gw.GTPAddr(),
			SGWTEID: s.uplinkTEID,
			UEAddr:  s.nasSession.IP(),
		}); err != nil {
			wire.PutFrame(frame)
			return err
		}
	}

	switch ev.Kind {
	case nas.EventRegistered:
		c.attaches.Add(1)
		sh := s.shard
		sh.mu.Lock()
		sh.gutis[ev.GUTI] = ev.IMSI
		sh.mu.Unlock()
	case nas.EventDetached:
		c.detaches.Add(1)
		// The GUTI is UE-echoed: route the unmap to whichever shard
		// owns that value (a garbage GUTI unmaps nothing).
		own := c.shardOfGUTI(ev.GUTI)
		own.mu.Lock()
		delete(own.gutis, ev.GUTI)
		own.mu.Unlock()
		defer c.releaseSession(s)
	case nas.EventRejected, nas.EventAuthFailed:
		c.rejects.Add(1)
	}

	if len(out) > mark {
		out, ferr := s1ap.FinishNASTransport(out, mark)
		if ferr == nil {
			ferr = ec.conn.SendFrame(out)
		}
		if ferr != nil {
			wire.PutFrame(frame)
			return ferr
		}
	}
	wire.PutFrame(frame)
	// NAS-level failures (bad MAC, replay, illegal lifecycle
	// transitions) are per-UE; surface them without killing the
	// association.
	return nasErr
}

// releaseSession ends a session's lifecycle (EvRelease is legal from
// every state) and tears down its user plane — but only if it is
// still the canonical session for its IMSI: a stale, superseded
// session releasing late must not destroy its successor's gateway
// session.
func (c *Core) releaseSession(s *ueSession) {
	s.nasSession.FSM().Fire(session.EvRelease)
	sh := s.shard
	sh.mu.Lock()
	imsi := s.imsi
	owner := imsi != "" && sh.byIMSI[imsi] == s
	if owner {
		delete(sh.byIMSI, imsi)
	}
	sh.mu.Unlock()
	if owner {
		c.gw.DeleteSession(imsi)
	}
}

// Close tears down the gateway (S1AP listeners are owned by callers).
func (c *Core) Close() { c.gw.Close() }
