package epc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dlte/internal/auth"
	"dlte/internal/nas"
	"dlte/internal/s1ap"
	"dlte/internal/simnet"
)

// S1APPort is where cores listen for eNodeB associations.
const S1APPort = 36412

// Config shapes a Core deployment.
type Config struct {
	// Name identifies the core (MME name in S1 setup).
	Name string
	// SNID is the serving-network identity bound into KASME.
	SNID string
	// TAC is the served tracking area.
	TAC uint16
	// DirectBreakout marks dLTE semantics in AttachAccept: traffic
	// exits at this core's host (which, for a stub, is the AP itself).
	DirectBreakout bool
	// OpenHSS makes the subscriber store accept published keys — the
	// dLTE open-core property.
	OpenHSS bool
	// ProcessingDelay models the core's per-signaling-message service
	// time; with one logical signaling processor this caps the core at
	// 1/ProcessingDelay messages per second, which is what saturates a
	// shared centralized EPC in experiment E3. Zero disables.
	ProcessingDelay time.Duration
	// RequireENBAuthorization closes the core to organic expansion:
	// only eNodeB IDs registered via AuthorizeENB may associate — the
	// telecom/private-LTE property the paper contrasts with dLTE's
	// open registry (§2.1, Table 1).
	RequireENBAuthorization bool
}

// Stats are the core's cumulative signaling counters.
type Stats struct {
	// SignalingMessages counts S1AP messages processed.
	SignalingMessages uint64
	// Attaches counts completed registrations.
	Attaches uint64
	// Rejects counts refused or failed registrations.
	Rejects uint64
	// Detaches counts completed detaches.
	Detaches uint64
}

// Core is an EPC control+user plane: HSS, MME, and gateway. Deploy one
// per AP for dLTE stubs, or one shared instance for the centralized
// baseline.
type Core struct {
	cfg  Config
	host *simnet.Host
	hss  *auth.SubscriberDB
	gw   *Gateway

	mu         sync.Mutex
	nextMME    uint32
	nextGUTI   uint64
	gutis      map[uint64]string // GUTI → IMSI
	allowedENB map[uint32]bool
	proc       sigProc // the modeled signaling processor's queue

	sigMsgs  atomic.Uint64
	attaches atomic.Uint64
	rejects  atomic.Uint64
	detaches atomic.Uint64
}

// NewCore creates a core whose gateway lives on host.
func NewCore(host *simnet.Host, cfg Config) (*Core, error) {
	if cfg.Name == "" {
		cfg.Name = "core-" + host.Name()
	}
	if cfg.SNID == "" {
		cfg.SNID = cfg.Name
	}
	gw, err := NewGateway(host)
	if err != nil {
		return nil, err
	}
	return &Core{
		cfg:        cfg,
		host:       host,
		hss:        auth.NewSubscriberDB(cfg.OpenHSS),
		gw:         gw,
		nextGUTI:   uint64(cfg.TAC)<<32 + 0x100,
		gutis:      make(map[uint64]string),
		allowedENB: make(map[uint32]bool),
	}, nil
}

// HSS exposes the subscriber store for provisioning.
func (c *Core) HSS() *auth.SubscriberDB { return c.hss }

// Gateway exposes the user-plane gateway.
func (c *Core) Gateway() *Gateway { return c.gw }

// Host reports the core's host name.
func (c *Core) Host() string { return c.host.Name() }

// Provision adds a subscriber to the HSS.
func (c *Core) Provision(sim auth.SIM) error { return c.hss.Provision(sim) }

// errENBRefused aborts an unauthorized eNodeB association.
var errENBRefused = errors.New("epc: eNodeB not authorized")

// AuthorizeENB admits an eNodeB ID to a closed core (the operator's
// manual provisioning step dLTE eliminates).
func (c *Core) AuthorizeENB(id uint32) {
	c.mu.Lock()
	c.allowedENB[id] = true
	c.mu.Unlock()
}

// ImportPublishedKey admits an open-SIM publication (dLTE mode only;
// a closed core refuses, reproducing the paper's §2.1 moat).
func (c *Core) ImportPublishedKey(p auth.KeyPublication) error {
	return c.hss.ImportPublished(p.SIM())
}

// Stats snapshots the signaling counters.
func (c *Core) Stats() Stats {
	return Stats{
		SignalingMessages: c.sigMsgs.Load(),
		Attaches:          c.attaches.Load(),
		Rejects:           c.rejects.Load(),
		Detaches:          c.detaches.Load(),
	}
}

// Listener abstracts net.Listener / simnet.Listener for S1AP serving.
type Listener interface {
	Accept() (net.Conn, error)
	Close() error
}

// ServeS1AP accepts eNodeB associations until the listener closes.
// Run in a goroutine.
func (c *Core) ServeS1AP(l Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		simnet.ClockOf(conn).Go(func() { c.serveENB(conn) })
	}
}

// enbConn is one eNodeB association and its UE sessions.
type enbConn struct {
	conn     *s1ap.Conn
	sessions map[uint32]*ueSession // ENBUEID → session
}

type ueSession struct {
	nasSession *nas.NetworkSession
	enbUEID    uint32
	mmeUEID    uint32
	imsi       string
	uplinkTEID uint32
	registered bool
	pathBound  bool
	icsSent    bool
}

func (c *Core) serveENB(raw net.Conn) {
	defer raw.Close()
	clk := simnet.ClockOf(raw)
	connID := raw.RemoteAddr().String()
	ec := &enbConn{conn: s1ap.NewConn(raw), sessions: make(map[uint32]*ueSession)}
	for {
		msg, err := ec.conn.Recv()
		if err != nil {
			// Association lost: tear down this eNB's sessions.
			for _, s := range ec.sessions {
				c.releaseSession(s)
			}
			return
		}
		c.sigMsgs.Add(1)
		c.applyProcessingDelay(clk, connID)
		if err := c.handleS1AP(ec, msg); err != nil {
			if errors.Is(err, errENBRefused) {
				return // drop the association: closed core
			}
			// Per-UE errors are isolated; the association survives.
			continue
		}
	}
}

// procEpsilon is the registration window of the signaling processor:
// every message that arrives at one virtual instant gets this long (one
// virtual nanosecond — invisible at any rendered precision) to enqueue
// before service order is decided. Under a VirtualClock, time cannot
// pass the window until all goroutines woken at that instant have run,
// so the queue is complete when the window closes.
const procEpsilon = time.Nanosecond

// procWaiter is one message awaiting the signaling processor, keyed by
// virtual arrival time with the eNB connection ID as tiebreak.
type procWaiter struct {
	at   time.Time
	conn string
}

// sigProc orders the modeled signaling processor's queue. A bare mutex
// would serve same-instant arrivals in whatever order the Go scheduler
// unblocks them — nondeterministic under concurrent simulation worlds.
// Instead the queue is served strictly by (virtual arrival time, conn
// ID), both functions of simulation state alone: messages on one S1AP
// association are inherently serial, so the key is total, and
// earlier-instant arrivals are always enqueued before virtual time
// moves on (the VirtualClock only advances over a quiescent world).
type sigProc struct {
	mu      sync.Mutex
	waiters []procWaiter // sorted by (at, conn); small: one per eNB conn
	serving bool
	done    chan struct{} // closed and replaced at each service completion
}

func (p *sigProc) enqueue(w procWaiter) {
	p.mu.Lock()
	if p.done == nil {
		p.done = make(chan struct{})
	}
	i := 0
	for i < len(p.waiters) && (p.waiters[i].at.Before(w.at) ||
		(p.waiters[i].at.Equal(w.at) && p.waiters[i].conn < w.conn)) {
		i++
	}
	p.waiters = append(p.waiters, procWaiter{})
	copy(p.waiters[i+1:], p.waiters[i:])
	p.waiters[i] = w
	p.mu.Unlock()
}

// applyProcessingDelay models the core's signaling processor: one
// message at a time, each taking ProcessingDelay. Under load, arrivals
// queue — the saturation behaviour of a shared EPC. All waits go
// through the clock (Sleep, Block-bracketed channel receives) so a
// VirtualClock sees queued goroutines as parked and advances virtual
// time deterministically.
func (c *Core) applyProcessingDelay(clk simnet.Clock, connID string) {
	if c.cfg.ProcessingDelay <= 0 {
		return
	}
	p := &c.proc
	w := procWaiter{at: clk.Now(), conn: connID}
	p.enqueue(w)
	clk.Sleep(procEpsilon) // same-instant arrivals finish enqueueing
	for {
		p.mu.Lock()
		if !p.serving && p.waiters[0] == w {
			p.serving = true
			p.mu.Unlock()
			clk.Sleep(c.cfg.ProcessingDelay)
			p.mu.Lock()
			p.waiters = p.waiters[1:]
			p.serving = false
			close(p.done)
			p.done = make(chan struct{})
			p.mu.Unlock()
			return
		}
		ch := p.done
		p.mu.Unlock()
		clk.Block()
		<-ch
		clk.Unblock()
	}
}

func (c *Core) handleS1AP(ec *enbConn, msg s1ap.Message) error {
	switch m := msg.(type) {
	case *s1ap.S1SetupRequest:
		if c.cfg.RequireENBAuthorization {
			c.mu.Lock()
			allowed := c.allowedENB[m.ENBID]
			c.mu.Unlock()
			if !allowed {
				// Closed core: the association is refused outright —
				// an unauthorized AP cannot extend this network.
				return errENBRefused
			}
		}
		return ec.conn.Send(&s1ap.S1SetupResponse{MMEName: c.cfg.Name, ServedTAC: c.cfg.TAC, SNID: c.cfg.SNID})

	case *s1ap.InitialUEMessage:
		s := c.newUESession(m.ENBUEID)
		ec.sessions[m.ENBUEID] = s
		return c.feedNAS(ec, s, m.NASPDU)

	case *s1ap.UplinkNASTransport:
		s, ok := ec.sessions[m.ENBUEID]
		if !ok {
			return fmt.Errorf("epc: no session for eNB UE %d", m.ENBUEID)
		}
		return c.feedNAS(ec, s, m.NASPDU)

	case *s1ap.InitialContextSetupResponse:
		s, ok := ec.sessions[m.ENBUEID]
		if !ok {
			return fmt.Errorf("epc: no session for eNB UE %d", m.ENBUEID)
		}
		addr, err := simnet.ParseAddr(m.ENBAddr)
		if err != nil {
			return err
		}
		if err := c.gw.BindDownlink(s.imsi, addr, m.ENBTEID); err != nil {
			return err
		}
		s.pathBound = true
		return nil

	case *s1ap.PathSwitchRequest:
		// Locate the session by MME UE ID across this association.
		for _, s := range ec.sessions {
			if s.mmeUEID == m.MMEUEID {
				addr, err := simnet.ParseAddr(m.NewENBAddr)
				if err != nil {
					return err
				}
				if err := c.gw.SwitchPath(s.imsi, addr, m.NewENBTEID); err != nil {
					return err
				}
				return ec.conn.Send(&s1ap.PathSwitchAck{MMEUEID: m.MMEUEID})
			}
		}
		return fmt.Errorf("epc: path switch for unknown MME UE %d", m.MMEUEID)

	case *s1ap.UEContextReleaseComplete:
		s, ok := ec.sessions[m.ENBUEID]
		if ok {
			c.releaseSession(s)
			delete(ec.sessions, m.ENBUEID)
		}
		return nil

	default:
		return fmt.Errorf("epc: unhandled S1AP %s", msg.Type())
	}
}

func (c *Core) newUESession(enbUEID uint32) *ueSession {
	c.mu.Lock()
	c.nextMME++
	mmeUEID := c.nextMME
	c.mu.Unlock()

	s := &ueSession{enbUEID: enbUEID, mmeUEID: mmeUEID}
	s.nasSession = nas.NewNetworkSession(nas.NetworkConfig{
		HSS:              c.hss,
		ServingNetworkID: c.cfg.SNID,
		TrackingArea:     c.cfg.TAC,
		DirectBreakout:   c.cfg.DirectBreakout,
		AllocateIP: func(imsi string) (string, error) {
			s.imsi = imsi
			ip, teid, err := c.gw.CreateSession(imsi)
			if err != nil {
				return "", err
			}
			s.uplinkTEID = teid
			return ip, nil
		},
		AllocateGUTI: func() uint64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			c.nextGUTI++
			return c.nextGUTI
		},
		KnownGUTI: func(g uint64) bool {
			c.mu.Lock()
			defer c.mu.Unlock()
			_, ok := c.gutis[g]
			return ok
		},
	})
	return s
}

// feedNAS pushes an uplink NAS PDU into the session's state machine
// and relays any reply / context-setup downlink.
func (c *Core) feedNAS(ec *enbConn, s *ueSession, pdu []byte) error {
	reply, ev, nasErr := s.nasSession.Handle(pdu)
	s.imsi = s.nasSession.IMSI()

	// Activate the data path as soon as the accept is pending, before
	// the NAS AttachAccept goes out (mirroring real S1AP, where the
	// InitialContextSetupRequest carries the accept): the eNodeB's
	// tunnels are live by the time the UE confirms.
	if !s.icsSent && s.nasSession.State() == nas.NetAcceptPending && s.uplinkTEID != 0 {
		s.icsSent = true
		if err := ec.conn.Send(&s1ap.InitialContextSetupRequest{
			ENBUEID: s.enbUEID,
			MMEUEID: s.mmeUEID,
			SGWAddr: c.gw.GTPAddr(),
			SGWTEID: s.uplinkTEID,
			UEAddr:  s.nasSession.IP(),
		}); err != nil {
			return err
		}
	}

	switch ev.Kind {
	case nas.EventRegistered:
		c.attaches.Add(1)
		s.registered = true
		c.mu.Lock()
		c.gutis[ev.GUTI] = ev.IMSI
		c.mu.Unlock()
	case nas.EventDetached:
		c.detaches.Add(1)
		c.mu.Lock()
		delete(c.gutis, ev.GUTI)
		c.mu.Unlock()
		defer c.releaseSession(s)
	case nas.EventRejected, nas.EventAuthFailed:
		c.rejects.Add(1)
	}

	if reply != nil {
		if err := ec.conn.Send(&s1ap.DownlinkNASTransport{
			ENBUEID: s.enbUEID,
			MMEUEID: s.mmeUEID,
			NASPDU:  reply,
		}); err != nil {
			return err
		}
	}
	// NAS-level failures (bad MAC, replay, unknown messages) are
	// per-UE; surface them without killing the association.
	return nasErr
}

func (c *Core) releaseSession(s *ueSession) {
	if s.imsi != "" {
		c.gw.DeleteSession(s.imsi)
	}
}

// Close tears down the gateway (S1AP listeners are owned by callers).
func (c *Core) Close() { c.gw.Close() }
