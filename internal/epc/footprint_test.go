package epc_test

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestActiveUEGoroutineFootprint pins the run-to-completion dispatch
// contract (DESIGN.md §14) as a hard gate: attaching a population of
// UEs may cost at most 2 standing goroutines per active UE. Before the
// dispatch conversion every attached UE carried at least three parked
// readers (the UE's air reader, the eNodeB's per-association serveUE
// loop, and a share of the core's per-conn machinery); with handler
// registration the steady-state count stays near zero per UE, and this
// test keeps it from regressing.
func TestActiveUEGoroutineFootprint(t *testing.T) {
	const nENB, perENB = 4, 16
	const population = nENB * perENB

	sb := newStormBed(t, 1, nENB, perENB)

	// Baseline after the world is built but before any UE attaches:
	// core, eNodeBs, and idle devices all up.
	settleGoroutines()
	before := runtime.NumGoroutine()

	var wg sync.WaitGroup
	errs := make(chan error, len(sb.ues))
	for i, d := range sb.ues {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := d.Attach(sb.air[i], 30*time.Second); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("attach: %v", err)
	default:
	}

	// Attaches spawn transient helpers (the attach calls above, timer
	// callbacks); wait for the population to stop moving before
	// judging the standing cost.
	settleGoroutines()
	after := runtime.NumGoroutine()

	added := after - before
	if added > 2*population {
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("%d active UEs cost %d goroutines (%.2f/UE), budget is 2/UE:\n\n%s",
			population, added, float64(added)/population, buf)
	}
	t.Logf("%d active UEs: %d standing goroutines (%.2f/UE)", population, added, float64(added)/population)

	// The population must actually be riding the dispatcher: a silent
	// fallback to blocking readers would pass the count above only by
	// accident of budget.
	stats := sb.net.ExecStats()
	if stats.HandlerDispatches == 0 {
		t.Fatalf("no handler dispatches recorded; attach path fell back to legacy readers (stats %+v)", stats)
	}
}

// settleGoroutines waits for the goroutine count to hold still long
// enough to be read as steady state.
func settleGoroutines() {
	stable, last := 0, -1
	for i := 0; i < 500 && stable < 10; i++ {
		runtime.Gosched()
		if n := runtime.NumGoroutine(); n == last {
			stable++
		} else {
			stable, last = 0, n
		}
		time.Sleep(2 * time.Millisecond)
	}
}
