package epc_test

import (
	"fmt"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dlte/internal/auth"
	"dlte/internal/enb"
	"dlte/internal/epc"
	"dlte/internal/simnet"
	"dlte/internal/ue"
)

// upBed is a real-clock, zero-latency world for user-plane throughput
// benchmarking: one attached UE whose bearer traffic crosses the full
// stack (air framing → eNB → GTP or breakout → gateway NAT → external
// sink). With no modeled delay, wall time is the per-packet CPU cost
// of the data path itself.
type upBed struct {
	bc       *ue.BearerConn
	sink     *simnet.PacketConn
	sinkAddr net.Addr
	// gwAddr is the gateway's per-session external address, learned
	// from the first uplink packet; downlink injections target it.
	gwAddr net.Addr

	atSink atomic.Uint64 // uplink packets seen by the sink
	atUE   atomic.Uint64 // downlink packets seen by the UE pump
	stop   atomic.Bool

	core *epc.Core
}

func newUserPlaneBed(b testing.TB, tunneled bool) *upBed {
	b.Helper()
	n := simnet.New(simnet.Link{}, 1)
	ap := n.MustAddHost("ap")
	coreHost := ap
	if tunneled {
		coreHost = n.MustAddHost("epc")
	}
	core, err := epc.NewCore(coreHost, epc.Config{
		Name: "up-bench", TAC: 7, DirectBreakout: !tunneled,
	})
	if err != nil {
		b.Fatal(err)
	}
	l, err := coreHost.Listen(epc.S1APPort)
	if err != nil {
		b.Fatal(err)
	}
	go core.ServeS1AP(l)

	site, err := enb.New(ap, enb.Config{
		ID: 1, TAC: 7, MMEAddr: fmt.Sprintf("%s:%d", coreHost.Name(), epc.S1APPort),
	})
	if err != nil {
		b.Fatal(err)
	}

	sim, err := auth.NewSIM(auth.IMSI("001010000000077"))
	if err != nil {
		b.Fatal(err)
	}
	if err := core.Provision(sim); err != nil {
		b.Fatal(err)
	}
	dev, err := ue.NewDevice(n.MustAddHost("ue0"), sim)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := dev.Attach(site.AirAddr(), 30*time.Second); err != nil {
		b.Fatal(err)
	}

	sinkHost := n.MustAddHost("sink")
	sinkPC, err := sinkHost.ListenPacket(9000)
	if err != nil {
		b.Fatal(err)
	}

	bed := &upBed{
		bc:       dev.Bearer(),
		sink:     sinkPC,
		sinkAddr: simnet.Addr{Host: "sink", Port: 9000},
		core:     core,
	}
	b.Cleanup(func() {
		bed.stop.Store(true)
		bed.bc.Close()
		sinkPC.Close()
		site.Close()
		core.Close()
		dev.Close()
		n.Close()
	})

	// Learn the gateway's NAT address and wait for the downlink bind:
	// Attach returns at AttachAccept, but the gateway learns the eNB's
	// downlink TEID a beat later (when the core processes the context
	// setup response), and return traffic before that drops like on any
	// NAT without state. Ping until a pong makes the round trip.
	buf := make([]byte, 2048)
	clk := bed.bc.Clock()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			b.Fatal("user-plane round trip never came up")
		}
		if _, err := bed.bc.WriteTo([]byte("probe"), bed.sinkAddr); err != nil {
			b.Fatal(err)
		}
		sinkPC.SetReadDeadline(time.Now().Add(time.Second))
		_, from, err := sinkPC.ReadFrom(buf)
		if err != nil {
			continue
		}
		bed.gwAddr = from
		if _, err := sinkPC.WriteTo(buf[:5], from); err != nil {
			b.Fatal(err)
		}
		bed.bc.SetReadDeadline(clk.Now().Add(200 * time.Millisecond))
		if _, _, err := bed.bc.ReadFrom(buf); err == nil {
			return bed
		}
	}
}

// countUplink drains the sink, counting arrivals.
func (u *upBed) countUplink() {
	buf := make([]byte, 2048)
	for {
		u.sink.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		if _, _, err := u.sink.ReadFrom(buf); err == nil {
			u.atSink.Add(1)
		} else if u.stop.Load() {
			return
		}
	}
}

// countDownlink drains the UE bearer, counting arrivals.
func (u *upBed) countDownlink() {
	buf := make([]byte, 2048)
	clk := u.bc.Clock()
	for {
		u.bc.SetReadDeadline(clk.Now().Add(100 * time.Millisecond))
		if _, _, err := u.bc.ReadFrom(buf); err == nil {
			u.atUE.Add(1)
		} else if u.stop.Load() {
			return
		}
	}
}

// pump issues n sends keeping at most window in flight (counted at the
// far end via seen), then waits for all n to land.
func pump(b *testing.B, n, window int, seen *atomic.Uint64, send func() error) {
	b.Helper()
	start := seen.Load()
	for i := 0; i < n; i++ {
		for uint64(i)-(seen.Load()-start) >= uint64(window) {
			runtime.Gosched()
		}
		if err := send(); err != nil {
			b.Fatal(err)
		}
	}
	for seen.Load()-start < uint64(n) {
		runtime.Gosched()
	}
}

// BenchmarkUserPlaneUplink is the full uplink path per packet: bearer
// write → air frame → eNB decap → breakout gateway NAT → sink socket.
func BenchmarkUserPlaneUplink(b *testing.B) {
	bed := newUserPlaneBed(b, false)
	go bed.countUplink()
	payload := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	pump(b, b.N, 64, &bed.atSink, func() error {
		_, err := bed.bc.WriteTo(payload, bed.sinkAddr)
		return err
	})
	b.StopTimer()
}

// BenchmarkUserPlaneDownlink is the full downlink path per packet:
// external socket → gateway NAT return → GTP tunnel → eNB air frame →
// bearer read.
func BenchmarkUserPlaneDownlink(b *testing.B) {
	bed := newUserPlaneBed(b, false)
	go bed.countDownlink()
	payload := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	pump(b, b.N, 64, &bed.atUE, func() error {
		_, err := bed.sink.WriteTo(payload, bed.gwAddr)
		return err
	})
	b.StopTimer()
}

// BenchmarkBreakoutVsTunnel compares one bearer round trip (uplink +
// echo + downlink) through a dLTE direct-breakout stub against the
// same packet hauled through a telecom GTP tunnel to a remote EPC.
// The worlds have zero link latency, so the gap is pure per-packet
// CPU: the tunnel's extra encap/decap and forwarding hops.
func BenchmarkBreakoutVsTunnel(b *testing.B) {
	for _, mode := range []struct {
		name     string
		tunneled bool
	}{{"breakout", false}, {"tunnel", true}} {
		b.Run(mode.name, func(b *testing.B) {
			bed := newUserPlaneBed(b, mode.tunneled)
			payload := make([]byte, 512)
			buf := make([]byte, 2048)
			clk := bed.bc.Clock()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bed.bc.WriteTo(payload, bed.sinkAddr); err != nil {
					b.Fatal(err)
				}
				bed.sink.SetReadDeadline(time.Now().Add(5 * time.Second))
				_, from, err := bed.sink.ReadFrom(buf)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := bed.sink.WriteTo(buf[:len(payload)], from); err != nil {
					b.Fatal(err)
				}
				bed.bc.SetReadDeadline(clk.Now().Add(5 * time.Second))
				if _, _, err := bed.bc.ReadFrom(buf); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
		})
	}
}
