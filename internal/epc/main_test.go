package epc

import (
	"testing"

	"dlte/internal/leaktest"
)

// TestMain audits the package for leaked goroutines; see
// internal/leaktest. The S1AP service goroutines park on handler-fed
// ingest queues, so an association whose EOF never arrives (the bug
// class the forced teardown close exists for) fails the suite.
func TestMain(m *testing.M) { leaktest.Main(m) }
