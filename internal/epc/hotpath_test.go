package epc

import (
	"fmt"
	"testing"

	"dlte/internal/simnet"
)

// These are the allocation gates for the per-attach hot path: the
// session-shard routing helpers and the deterministic gate run on
// every signaling message. The FSM transition itself is gated to zero
// allocations in the session package (TestFireNoAllocs).

func newHotpathCore(t *testing.T, shards int) *Core {
	t.Helper()
	n := simnet.New(simnet.Link{}, 1)
	t.Cleanup(n.Close)
	c, err := NewCore(n.MustAddHost("core"), Config{Name: "hot", TAC: 7, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestShardRoutingNoAllocs(t *testing.T) {
	c := newHotpathCore(t, 8)
	ids := []string{"conn-1", "001010000000101", "a-longer-routing-key"}
	if got := testing.AllocsPerRun(1000, func() {
		for _, id := range ids {
			if c.shardFor(id) == nil {
				t.Fatal("nil shard")
			}
		}
	}); got != 0 {
		t.Errorf("shardFor allocates %v per run, want 0", got)
	}
	guti := uint64(3)<<gutiShardShift | uint64(7)<<32 | 0x123
	if got := testing.AllocsPerRun(1000, func() {
		if c.shardOfGUTI(guti) != c.shards[3] {
			t.Fatal("wrong shard")
		}
	}); got != 0 {
		t.Errorf("shardOfGUTI allocates %v per run, want 0", got)
	}
}

func TestShardRoutingStable(t *testing.T) {
	c := newHotpathCore(t, 8)
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("conn-%d", i)
		if c.shardFor(id) != c.shardFor(id) {
			t.Fatalf("shardFor(%q) unstable", id)
		}
	}
}

// TestGateRunAllocBound bounds the deterministic gate's steady-state
// cost: each run may allocate the two wake channels (admission +
// completion) and the occasional waiter-slice regrowth, nothing more.
func TestGateRunAllocBound(t *testing.T) {
	g := &detGate{capacity: 1}
	clk := simnet.Wall
	g.run(clk, "warm", func() {}) // first run allocates the queue itself
	if got := testing.AllocsPerRun(200, func() {
		g.run(clk, "actor", func() {})
	}); got > 4 {
		t.Errorf("detGate.run allocates %v per run, want ≤ 4", got)
	}
}
