package epc_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"dlte/internal/auth"
	"dlte/internal/enb"
	"dlte/internal/epc"
	"dlte/internal/simnet"
	"dlte/internal/ue"
)

// TestIdleSessionWorldFootprint measures the core+eNB-side heap
// retained per idle registered UE: each UE attaches through the real
// signaling stack and its Device is then closed, so what remains is
// exactly the state the network keeps for a quiescent subscriber
// (EPC session + GTP tunnel + gateway NAT entry + HSS record + simnet
// host). Measured as a marginal slope between two population sizes so
// fixed world overhead cancels. This is the regression tripwire for
// per-session retention on the network side; the per-session NAS
// number is pinned separately in internal/nas, and compact (SoA)
// idle UEs are priced by internal/exp BenchmarkIdleWorld.
func TestIdleSessionWorldFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("heap measurement; skipped in -short")
	}
	net := simnet.New(simnet.Link{}, 1)
	defer net.Close()
	coreHost := net.MustAddHost("core")
	core, err := epc.NewCore(coreHost, epc.Config{
		Name: "idle-core", TAC: 7, DirectBreakout: true, Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer core.Close()
	l, err := coreHost.Listen(epc.S1APPort)
	if err != nil {
		t.Fatal(err)
	}
	go core.ServeS1AP(l)
	apHost := net.MustAddHost("ap0")
	e, err := enb.New(apHost, enb.Config{
		ID: 1, TAC: 7,
		MMEAddr: fmt.Sprintf("%s:%d", coreHost.Name(), epc.S1APPort),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	attachBatch := func(from, to int) {
		for i := from; i < to; i++ {
			imsi := auth.IMSI(fmt.Sprintf("00101%010d", i))
			sim, serr := auth.NewSIM(imsi)
			if serr != nil {
				t.Fatal(serr)
			}
			if perr := core.Provision(sim); perr != nil {
				t.Fatal(perr)
			}
			ueHost := net.MustAddHost("ue-" + string(imsi))
			d, derr := ue.NewDevice(ueHost, sim)
			if derr != nil {
				t.Fatal(derr)
			}
			if _, aerr := d.Attach(e.AirAddr(), 30*time.Second); aerr != nil {
				t.Fatalf("attach %d: %v", i, aerr)
			}
			d.Close() // the session idles on without its Device
		}
	}

	heap := func() uint64 {
		runtime.GC()
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}

	const n1, n2 = 128, 512
	attachBatch(0, n1)
	h1 := heap()
	attachBatch(n1, n2)
	h2 := heap()
	perUE := float64(h2-h1) / float64(n2-n1)
	t.Logf("idle registered UE ≈ %.0f B retained on the network side", perUE)
	// CI-safe bound ~6x the measured ~1.4 KB: the budget is dominated
	// by the simnet host and GTP/NAT entries, not the NAS session
	// (~0.7 KB, pinned in internal/nas).
	if perUE > 8*1024 {
		t.Errorf("network retains %.0f B per idle UE, want ≤ 8KiB", perUE)
	}
}
