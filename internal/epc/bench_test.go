package epc_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dlte/internal/auth"
	"dlte/internal/enb"
	"dlte/internal/epc"
	"dlte/internal/simnet"
	"dlte/internal/ue"
)

// stormBed is a real-clock, zero-latency world sized for throughput
// benchmarking: one core, several eNodeBs (each its own S1AP
// association), and a population of provisioned UEs. With no modeled
// link latency or processing delay, wall time measures the signaling
// stack's real CPU cost — the thing session sharding parallelizes.
// The shard sweep only spreads when GOMAXPROCS > 1; on a single-CPU
// runner all shard counts serialize onto one core and measure flat.
type stormBed struct {
	net *simnet.Network
	ues []*ue.Device
	air []string // air address per UE
}

func newStormBed(b testing.TB, shards, nENB, uesPerENB int) *stormBed {
	b.Helper()
	sb := &stormBed{net: simnet.New(simnet.Link{}, 1)}
	coreHost := sb.net.MustAddHost("core")
	core, err := epc.NewCore(coreHost, epc.Config{
		Name: "bench-core", TAC: 7, DirectBreakout: true,
		Shards: shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	l, err := coreHost.Listen(epc.S1APPort)
	if err != nil {
		b.Fatal(err)
	}
	go core.ServeS1AP(l)
	b.Cleanup(func() {
		core.Close()
		sb.net.Close()
	})

	for i := 0; i < nENB; i++ {
		apHost := sb.net.MustAddHost(fmt.Sprintf("ap%d", i))
		e, err := enb.New(apHost, enb.Config{
			ID: uint32(i + 1), TAC: 7,
			MMEAddr: fmt.Sprintf("%s:%d", coreHost.Name(), epc.S1APPort),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(e.Close)
		for j := 0; j < uesPerENB; j++ {
			imsi := auth.IMSI(fmt.Sprintf("00101%010d", i*100+j))
			sim, err := auth.NewSIM(imsi)
			if err != nil {
				b.Fatal(err)
			}
			if err := core.Provision(sim); err != nil {
				b.Fatal(err)
			}
			ueHost := sb.net.MustAddHost("ue-" + string(imsi))
			d, err := ue.NewDevice(ueHost, sim)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(d.Close)
			sb.ues = append(sb.ues, d)
			sb.air = append(sb.air, e.AirAddr())
		}
	}
	return sb
}

// storm re-attaches every UE concurrently (re-attach without detach
// supersedes, so each round exercises the full attach path).
func (sb *stormBed) storm(b *testing.B) {
	var wg sync.WaitGroup
	errs := make(chan error, len(sb.ues))
	for i, d := range sb.ues {
		wg.Add(1)
		go func(d *ue.Device, air string) {
			defer wg.Done()
			if _, err := d.Attach(air, 30*time.Second); err != nil {
				errs <- err
			}
		}(d, sb.air[i])
	}
	wg.Wait()
	select {
	case err := <-errs:
		b.Fatalf("attach: %v", err)
	default:
	}
}

// BenchmarkAttachStorm measures attach-storm throughput at increasing
// session-shard counts: 8 eNodeB associations × 4 UEs re-attach
// concurrently per iteration. On a multi-core machine, higher shard
// counts admit more sessions' signaling in parallel; results are
// identical regardless (sharding is keyed on IMSI/GUTI, and each UE's
// state machine is served serially either way).
func BenchmarkAttachStorm(b *testing.B) {
	for _, shards := range []int{1, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sb := newStormBed(b, shards, 8, 4)
			sb.storm(b) // warm: first attach allocates sessions and tunnels
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sb.storm(b)
			}
		})
	}
}
