package epc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"dlte/internal/gtp"
	"dlte/internal/metrics"
	"dlte/internal/simnet"
)

// maxIPIndex bounds the PDN pool to the 10.45.0.0/16 block the
// ipForIndex formula can express: indices 1..63999 map onto
// 10.45.0.2 .. 10.45.255.250.
const maxIPIndex = 63999

// ErrAddressPoolExhausted reports that every PDN address is held by a
// live session. Sessions must be deleted (or superseded) to free one.
var ErrAddressPoolExhausted = errors.New("epc: PDN address pool exhausted")

// ipForIndex maps a pool index to its dotted address.
func ipForIndex(i int) string { return fmt.Sprintf("10.45.%d.%d", i/250, i%250+1) }

// GatewayDrops exposes the gateway's user-plane drop counters. Every
// silent discard on the forwarding path is accounted: drops are rare
// in healthy runs, so a nonzero counter is a diagnosis shortcut.
type GatewayDrops struct {
	// MalformedUser counts uplink G-PDUs whose user-packet framing
	// fails to decode.
	MalformedUser *metrics.Counter
	// BadRemote counts uplink packets whose remote endpoint does not
	// parse as an address.
	BadRemote *metrics.Counter
	// UnboundDownlink counts Internet return traffic arriving before
	// the eNodeB bound the downlink (dropped like a NAT without state).
	UnboundDownlink *metrics.Counter
}

// Gateway is the combined S/P-GW: it terminates GTP-U tunnels from
// eNodeBs, holds the PDN address pool, and performs NAT-style breakout
// to the (simulated) Internet — one external datagram socket per UE
// session, so return traffic maps back to the right tunnel.
type Gateway struct {
	host *simnet.Host
	ep   *gtp.Endpoint

	// nat caches parsed+boxed remote addresses keyed by their wire
	// string, copy-on-write so the uplink path reads without locking
	// (the remote set is the experiment's few servers, so the cache
	// stays tiny and is never evicted). natMu serializes cache misses.
	nat   atomic.Pointer[natCache]
	natMu sync.Mutex

	drops GatewayDrops

	mu       sync.Mutex
	sessions map[string]*gwSession // IMSI → session
	ipFree   []int                 // released pool indices, reused LIFO
	ipNext   int                   // high-water mark of never-used indices
	closed   bool
}

type natCache struct {
	m map[string]net.Addr // value boxed once; lookups return it alloc-free
}

// enbBind is the session's downlink target, published atomically so
// the forwarding loop reads it without a lock. Immutable once stored.
type enbBind struct {
	addr net.Addr
	teid uint32
}

type gwSession struct {
	imsi      string
	ueIP      string
	ipIdx     int
	localTEID uint32
	ext       *simnet.PacketConn
	bind      atomic.Pointer[enbBind]

	// Downlink dispatch-handler state (the source-address memo the old
	// reader loop kept on its stack). Touched only by the handler,
	// which the dispatcher runs serially per socket.
	lastFrom   net.Addr
	lastRemote string
}

// ErrNoSession reports an operation on an unknown subscriber session.
var ErrNoSession = errors.New("epc: no such session")

// GTPPort is where gateways listen for GTP-U.
const GTPPort = gtp.Port

// NewGateway opens the gateway's GTP-U endpoint on its host.
func NewGateway(host *simnet.Host) (*Gateway, error) {
	pc, err := host.ListenPacket(GTPPort)
	if err != nil {
		return nil, fmt.Errorf("epc: gateway: %w", err)
	}
	g := &Gateway{
		host:     host,
		ep:       gtp.NewEndpoint(pc),
		sessions: make(map[string]*gwSession),
		drops: GatewayDrops{
			MalformedUser:   &metrics.Counter{},
			BadRemote:       &metrics.Counter{},
			UnboundDownlink: &metrics.Counter{},
		},
	}
	g.nat.Store(&natCache{m: map[string]net.Addr{}})
	return g, nil
}

// Host reports the gateway's host (its GTP-U address is Host():2152).
func (g *Gateway) Host() string { return g.host.Name() }

// GTPAddr reports the gateway's GTP-U endpoint address string.
func (g *Gateway) GTPAddr() string { return fmt.Sprintf("%s:%d", g.host.Name(), GTPPort) }

// Drops exposes the gateway's forwarding drop counters.
func (g *Gateway) Drops() GatewayDrops { return g.drops }

// TunnelDrops exposes the underlying GTP endpoint's demux drop
// counters (malformed G-PDUs, unknown TEIDs).
func (g *Gateway) TunnelDrops() gtp.DropCounters { return g.ep.Drops() }

// allocIP hands out a PDN pool index, preferring released ones so a
// long-lived gateway cycles a bounded address block instead of walking
// off the subnet. Callers hold g.mu.
func (g *Gateway) allocIP() (int, error) {
	if n := len(g.ipFree); n > 0 {
		idx := g.ipFree[n-1]
		g.ipFree = g.ipFree[:n-1]
		return idx, nil
	}
	if g.ipNext >= maxIPIndex {
		return 0, ErrAddressPoolExhausted
	}
	g.ipNext++
	return g.ipNext, nil
}

// releaseIP returns a session's pool index for reuse. Callers hold g.mu.
func (g *Gateway) releaseIP(idx int) { g.ipFree = append(g.ipFree, idx) }

// CreateSession allocates a PDN address and an uplink TEID for imsi.
// The returned TEID is what the eNodeB must stamp on uplink G-PDUs.
// A fresh attach supersedes any existing session for the same
// subscriber (TS 24.301: a new attach implicitly detaches the old
// context) — without this, a client that lost its radio without
// detaching could never come back.
func (g *Gateway) CreateSession(imsi string) (ueIP string, uplinkTEID uint32, err error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return "", 0, errors.New("epc: gateway closed")
	}
	if old, ok := g.sessions[imsi]; ok {
		delete(g.sessions, imsi)
		g.releaseIP(old.ipIdx)
		g.mu.Unlock()
		g.ep.Release(old.localTEID)
		old.ext.Close()
		g.mu.Lock()
	}
	defer g.mu.Unlock()
	idx, err := g.allocIP()
	if err != nil {
		return "", 0, err
	}

	ext, err := g.host.ListenPacket(0)
	if err != nil {
		g.releaseIP(idx)
		return "", 0, fmt.Errorf("epc: external socket: %w", err)
	}
	s := &gwSession{imsi: imsi, ueIP: ipForIndex(idx), ipIdx: idx, ext: ext}
	s.localTEID = g.ep.AllocateTEID(func(payload []byte, _ net.Addr) {
		g.uplink(s, payload)
	})
	g.sessions[imsi] = s
	// Downlink runs run-to-completion on the network dispatcher: no
	// per-session reader goroutine, nothing to unwind on teardown.
	ext.SetHandler(func(data []byte, from net.Addr) { g.downlink(s, data, from) })
	return s.ueIP, s.localTEID, nil
}

// BindDownlink completes the data path: downlink packets for imsi are
// tunneled to the eNodeB's GTP endpoint enbAddr with enbTEID.
func (g *Gateway) BindDownlink(imsi string, enbAddr net.Addr, enbTEID uint32) error {
	g.mu.Lock()
	s, ok := g.sessions[imsi]
	g.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSession, imsi)
	}
	s.bind.Store(&enbBind{addr: enbAddr, teid: enbTEID})
	// The uplink tunnel's reverse direction targets the eNodeB.
	return g.ep.Bind(s.localTEID, enbTEID, enbAddr)
}

// SwitchPath retargets an existing session's downlink to a new eNodeB
// (the S1 path-switch after an X2 handover in the centralized core).
func (g *Gateway) SwitchPath(imsi string, enbAddr net.Addr, enbTEID uint32) error {
	return g.BindDownlink(imsi, enbAddr, enbTEID)
}

// DeleteSession releases imsi's address, tunnel, and external socket.
func (g *Gateway) DeleteSession(imsi string) error {
	g.mu.Lock()
	s, ok := g.sessions[imsi]
	if ok {
		delete(g.sessions, imsi)
		g.releaseIP(s.ipIdx)
	}
	g.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSession, imsi)
	}
	g.ep.Release(s.localTEID)
	s.ext.Close()
	return nil
}

// SessionIP reports the PDN address assigned to imsi.
func (g *Gateway) SessionIP(imsi string) (string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.sessions[imsi]
	if !ok {
		return "", false
	}
	return s.ueIP, true
}

// NumSessions reports live session count.
func (g *Gateway) NumSessions() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.sessions)
}

// natDst resolves a wire-form remote endpoint to its boxed address via
// the copy-on-write cache: the steady-state path is one lock-free map
// lookup (keyed by the byte view without conversion cost).
func (g *Gateway) natDst(remote []byte) (net.Addr, bool) {
	if a, ok := g.nat.Load().m[string(remote)]; ok {
		return a, true
	}
	addr, err := simnet.ParseAddr(string(remote))
	if err != nil {
		return nil, false
	}
	g.natMu.Lock()
	old := g.nat.Load().m
	m := make(map[string]net.Addr, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[string(remote)] = addr
	g.nat.Store(&natCache{m: m})
	g.natMu.Unlock()
	return addr, true
}

// uplink handles a decapsulated uplink user packet: NAT it out the
// session's external socket toward its Internet peer. payload is a
// view into the GTP receive buffer; the view decode and the socket's
// own interior copy keep the path allocation-free.
func (g *Gateway) uplink(s *gwSession, payload []byte) {
	remote, data, err := DecodeUserPacketView(payload)
	if err != nil {
		g.drops.MalformedUser.Inc()
		return
	}
	addr, ok := g.natDst(remote)
	if !ok {
		g.drops.BadRemote.Inc()
		return
	}
	s.ext.WriteTo(data, addr)
}

// downlink forwards one Internet return packet back through the
// session's tunnel toward the eNodeB. It is the session's dispatch
// handler: data is the dispatcher's pooled delivery buffer, valid only
// for the duration of the call (the user-packet append below consumes
// it before returning). The source-address memo and the pooled
// GTP-headroom build keep steady state allocation-free, as the old
// reader loop did.
func (g *Gateway) downlink(s *gwSession, data []byte, from net.Addr) {
	bind := s.bind.Load()
	if bind == nil {
		g.drops.UnboundDownlink.Inc()
		return
	}
	if from != s.lastFrom {
		s.lastFrom, s.lastRemote = from, from.String()
	}
	buf := gtp.GetBuffer()
	buf, err := AppendUserPacket(buf, s.lastRemote, data)
	if err != nil {
		gtp.PutBuffer(buf)
		return
	}
	g.ep.SendBuffer(s.localTEID, buf)
}

// Close tears down all sessions and the GTP endpoint.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	sessions := make([]*gwSession, 0, len(g.sessions))
	for _, s := range g.sessions {
		sessions = append(sessions, s)
		g.releaseIP(s.ipIdx)
	}
	g.sessions = make(map[string]*gwSession)
	g.mu.Unlock()
	for _, s := range sessions {
		s.ext.Close()
	}
	g.ep.Close()
}
