package epc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dlte/internal/gtp"
	"dlte/internal/simnet"
)

// Gateway is the combined S/P-GW: it terminates GTP-U tunnels from
// eNodeBs, holds the PDN address pool, and performs NAT-style breakout
// to the (simulated) Internet — one external datagram socket per UE
// session, so return traffic maps back to the right tunnel.
type Gateway struct {
	host *simnet.Host
	ep   *gtp.Endpoint

	mu       sync.Mutex
	sessions map[string]*gwSession // IMSI → session
	nextIP   int
	closed   bool
}

type gwSession struct {
	imsi      string
	ueIP      string
	localTEID uint32
	ext       *simnet.PacketConn
	done      chan struct{}

	mu       sync.Mutex
	enbAddr  net.Addr
	enbTEID  uint32
	boundENB bool
}

// ErrNoSession reports an operation on an unknown subscriber session.
var ErrNoSession = errors.New("epc: no such session")

// GTPPort is where gateways listen for GTP-U.
const GTPPort = gtp.Port

// NewGateway opens the gateway's GTP-U endpoint on its host.
func NewGateway(host *simnet.Host) (*Gateway, error) {
	pc, err := host.ListenPacket(GTPPort)
	if err != nil {
		return nil, fmt.Errorf("epc: gateway: %w", err)
	}
	return &Gateway{
		host:     host,
		ep:       gtp.NewEndpoint(pc),
		sessions: make(map[string]*gwSession),
	}, nil
}

// Host reports the gateway's host (its GTP-U address is Host():2152).
func (g *Gateway) Host() string { return g.host.Name() }

// GTPAddr reports the gateway's GTP-U endpoint address string.
func (g *Gateway) GTPAddr() string { return fmt.Sprintf("%s:%d", g.host.Name(), GTPPort) }

// CreateSession allocates a PDN address and an uplink TEID for imsi.
// The returned TEID is what the eNodeB must stamp on uplink G-PDUs.
// A fresh attach supersedes any existing session for the same
// subscriber (TS 24.301: a new attach implicitly detaches the old
// context) — without this, a client that lost its radio without
// detaching could never come back.
func (g *Gateway) CreateSession(imsi string) (ueIP string, uplinkTEID uint32, err error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return "", 0, errors.New("epc: gateway closed")
	}
	if old, ok := g.sessions[imsi]; ok {
		delete(g.sessions, imsi)
		g.mu.Unlock()
		close(old.done)
		g.ep.Release(old.localTEID)
		old.ext.Close()
		g.mu.Lock()
	}
	defer g.mu.Unlock()
	g.nextIP++
	ip := fmt.Sprintf("10.45.%d.%d", g.nextIP/250, g.nextIP%250+1)

	ext, err := g.host.ListenPacket(0)
	if err != nil {
		return "", 0, fmt.Errorf("epc: external socket: %w", err)
	}
	s := &gwSession{imsi: imsi, ueIP: ip, ext: ext, done: make(chan struct{})}
	s.localTEID = g.ep.AllocateTEID(func(payload []byte, _ net.Addr) {
		g.uplink(s, payload)
	})
	g.sessions[imsi] = s
	g.host.Clock().Go(func() { g.downlinkLoop(s) })
	return ip, s.localTEID, nil
}

// BindDownlink completes the data path: downlink packets for imsi are
// tunneled to the eNodeB's GTP endpoint enbAddr with enbTEID.
func (g *Gateway) BindDownlink(imsi string, enbAddr net.Addr, enbTEID uint32) error {
	g.mu.Lock()
	s, ok := g.sessions[imsi]
	g.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSession, imsi)
	}
	s.mu.Lock()
	s.enbAddr = enbAddr
	s.enbTEID = enbTEID
	s.boundENB = true
	s.mu.Unlock()
	// The uplink tunnel's reverse direction targets the eNodeB.
	return g.ep.Bind(s.localTEID, enbTEID, enbAddr)
}

// SwitchPath retargets an existing session's downlink to a new eNodeB
// (the S1 path-switch after an X2 handover in the centralized core).
func (g *Gateway) SwitchPath(imsi string, enbAddr net.Addr, enbTEID uint32) error {
	return g.BindDownlink(imsi, enbAddr, enbTEID)
}

// DeleteSession releases imsi's address, tunnel, and external socket.
func (g *Gateway) DeleteSession(imsi string) error {
	g.mu.Lock()
	s, ok := g.sessions[imsi]
	if ok {
		delete(g.sessions, imsi)
	}
	g.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSession, imsi)
	}
	close(s.done)
	g.ep.Release(s.localTEID)
	s.ext.Close()
	return nil
}

// SessionIP reports the PDN address assigned to imsi.
func (g *Gateway) SessionIP(imsi string) (string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok := g.sessions[imsi]
	if !ok {
		return "", false
	}
	return s.ueIP, true
}

// NumSessions reports live session count.
func (g *Gateway) NumSessions() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.sessions)
}

// uplink handles a decapsulated uplink user packet: NAT it out the
// session's external socket toward its Internet peer.
func (g *Gateway) uplink(s *gwSession, payload []byte) {
	p, err := DecodeUserPacket(payload)
	if err != nil {
		return
	}
	addr, err := simnet.ParseAddr(p.Remote)
	if err != nil {
		return
	}
	s.ext.WriteTo(p.Payload, addr)
}

// downlinkLoop forwards Internet return traffic back through the
// session's tunnel toward the eNodeB.
func (g *Gateway) downlinkLoop(s *gwSession) {
	clk := g.host.Clock()
	buf := make([]byte, 64*1024)
	for {
		select {
		case <-s.done:
			return
		default:
		}
		s.ext.SetReadDeadline(clk.Now().Add(200 * time.Millisecond))
		n, from, err := s.ext.ReadFrom(buf)
		if err != nil {
			continue
		}
		s.mu.Lock()
		bound := s.boundENB
		s.mu.Unlock()
		if !bound {
			continue // no data path yet; drop like a NAT without state
		}
		enc, err := EncodeUserPacket(UserPacket{Remote: from.String(), Payload: buf[:n]})
		if err != nil {
			continue
		}
		g.ep.Send(s.localTEID, enc)
	}
}

// Close tears down all sessions and the GTP endpoint.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	sessions := make([]*gwSession, 0, len(g.sessions))
	for _, s := range g.sessions {
		sessions = append(sessions, s)
	}
	g.sessions = make(map[string]*gwSession)
	g.mu.Unlock()
	for _, s := range sessions {
		close(s.done)
		s.ext.Close()
	}
	g.ep.Close()
}
