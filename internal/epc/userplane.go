// Package epc implements the Evolved Packet Core functions the dLTE
// paper virtualizes into a per-AP "local core" stub (§4.1): the HSS
// (subscriber store, here auth.SubscriberDB plus a published-key
// import path), the MME (NAS orchestration over S1AP), and a combined
// S/P-GW (GTP-U termination, IP address pool, NAT-style Internet
// breakout).
//
// One Core type serves both deployment shapes the paper contrasts:
// place it on a distant host serving many eNodeBs and it is the
// telecom EPC of Figure 1 (left); place one per AP host serving its
// own eNodeB and it is the dLTE stub of Figure 1 (right). The code
// path is identical — the measured differences (E2, E3) come purely
// from where the packets have to travel.
package epc

import (
	"fmt"

	"dlte/internal/wire"
)

// UserPacket is the abstract subscriber IP packet carried through
// GTP-U tunnels and over the air interface: a remote endpoint plus an
// opaque payload. (A full IP header adds nothing to the experiments;
// the remote address is what routing acts on.)
type UserPacket struct {
	// Remote is the Internet peer, "host:port".
	Remote string
	// Payload is the application data.
	Payload []byte
}

// EncodeUserPacket serializes a user packet for tunneling.
func EncodeUserPacket(p UserPacket) ([]byte, error) {
	w := wire.NewWriter(8 + len(p.Remote) + len(p.Payload))
	w.String8(p.Remote)
	w.Bytes16(p.Payload)
	if err := w.Err(); err != nil {
		return nil, fmt.Errorf("epc: encode user packet: %w", err)
	}
	return w.Bytes(), nil
}

// AppendUserPacket appends the wire form of a user packet to dst and
// returns the extended slice. It is the allocation-free encode the
// forwarding loops use: dst is typically a pooled buffer with GTP
// headroom already reserved (gtp.GetBuffer), so the tunneled packet is
// built in place and handed down the stack without a copy.
func AppendUserPacket(dst []byte, remote string, payload []byte) ([]byte, error) {
	if len(remote) > 0xFF {
		return dst, fmt.Errorf("epc: encode user packet: %w: remote length %d", wire.ErrOverflow, len(remote))
	}
	if len(payload) > 0xFFFF {
		return dst, fmt.Errorf("epc: encode user packet: %w: payload length %d", wire.ErrOverflow, len(payload))
	}
	dst = append(dst, byte(len(remote)))
	dst = append(dst, remote...)
	dst = append(dst, byte(len(payload)>>8), byte(len(payload)))
	dst = append(dst, payload...)
	return dst, nil
}

// DecodeUserPacketView parses a tunneled user packet without copying:
// remote and payload are views into b, valid only as long as b is.
// Retainers must copy; the forwarding loops consume both before the
// receive buffer is recycled.
func DecodeUserPacketView(b []byte) (remote, payload []byte, err error) {
	r := wire.NewReader(b)
	remote = r.View8()
	payload = r.View16()
	if err := r.Err(); err != nil {
		return nil, nil, fmt.Errorf("epc: decode user packet: %w", err)
	}
	return remote, payload, nil
}

// DecodeUserPacket parses a tunneled user packet.
func DecodeUserPacket(b []byte) (UserPacket, error) {
	r := wire.NewReader(b)
	p := UserPacket{Remote: r.String8(), Payload: r.Bytes16()}
	if err := r.Err(); err != nil {
		return UserPacket{}, fmt.Errorf("epc: decode user packet: %w", err)
	}
	return p, nil
}
