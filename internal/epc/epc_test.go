package epc_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"dlte/internal/auth"
	"dlte/internal/enb"
	"dlte/internal/epc"
	"dlte/internal/ott"
	"dlte/internal/simnet"
	"dlte/internal/ue"
)

// testbed wires a full network: a core (stub or remote), an eNodeB, an
// OTT echo server, and UEs.
type testbed struct {
	net  *simnet.Network
	core *epc.Core
	enb  *enb.ENodeB
	echo *ott.EchoServer
}

// newTestbed builds the topology. If stub is true the core shares the
// AP host (dLTE); otherwise it sits behind a WAN link with the given
// extra latency (telecom EPC).
func newTestbed(t *testing.T, stub bool, epcLatency time.Duration) *testbed {
	t.Helper()
	tb := &testbed{}
	tb.net = simnet.New(simnet.Link{Latency: time.Millisecond}, 1)
	t.Cleanup(tb.net.Close)

	ap := tb.net.MustAddHost("ap")
	ottHost := tb.net.MustAddHost("ott")

	coreHost := ap
	if !stub {
		coreHost = tb.net.MustAddHost("epc")
		tb.net.SetLink("ap", "epc", simnet.Link{Latency: epcLatency})
	}

	core, err := epc.NewCore(coreHost, epc.Config{
		Name: "test-core", TAC: 7, DirectBreakout: stub, OpenHSS: stub,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.core = core
	t.Cleanup(core.Close)
	l, err := coreHost.Listen(epc.S1APPort)
	if err != nil {
		t.Fatal(err)
	}
	go core.ServeS1AP(l)

	e, err := enb.New(ap, enb.Config{ID: 1, TAC: 7, MMEAddr: coreHost.Name() + ":36412"})
	if err != nil {
		t.Fatal(err)
	}
	tb.enb = e
	t.Cleanup(e.Close)

	echo, err := ott.NewEchoServer(ottHost, 9000)
	if err != nil {
		t.Fatal(err)
	}
	tb.echo = echo
	t.Cleanup(echo.Close)
	return tb
}

func (tb *testbed) newUE(t *testing.T, imsi string) *ue.Device {
	t.Helper()
	sim, err := auth.NewSIM(auth.IMSI(imsi))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.core.Provision(sim); err != nil {
		t.Fatal(err)
	}
	ueHost := tb.net.MustAddHost("ue-" + imsi)
	// Air link: 5 ms, like a scheduled LTE radio leg.
	tb.net.SetLink(ueHost.Name(), "ap", simnet.Link{Latency: 5 * time.Millisecond})
	d, err := ue.NewDevice(ueHost, sim)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestStubAttachAndEcho(t *testing.T) {
	tb := newTestbed(t, true, 0)
	d := tb.newUE(t, "001010000000101")

	res, err := d.Attach(tb.enb.AirAddr(), 5*time.Second)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	if res.IP == "" || res.GUTI == 0 {
		t.Fatalf("result = %+v", res)
	}
	if !res.DirectBreakout {
		t.Error("stub core did not advertise direct breakout")
	}
	if !strings.HasPrefix(res.IP, "10.45.") {
		t.Errorf("IP = %q", res.IP)
	}

	rtt, err := d.Echo("ott:9000", []byte("ping"), 200*time.Millisecond, 5*time.Second)
	if err != nil {
		t.Fatalf("echo: %v", err)
	}
	if rtt <= 0 || rtt > 3*time.Second {
		t.Errorf("rtt = %v", rtt)
	}
	if tb.core.Gateway().NumSessions() != 1 {
		t.Errorf("gateway sessions = %d", tb.core.Gateway().NumSessions())
	}
	st := tb.core.Stats()
	if st.Attaches != 1 || st.SignalingMessages == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCentralizedAttachAndEcho(t *testing.T) {
	tb := newTestbed(t, false, 20*time.Millisecond)
	d := tb.newUE(t, "001010000000102")

	res, err := d.Attach(tb.enb.AirAddr(), 10*time.Second)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	if res.DirectBreakout {
		t.Error("centralized core advertised direct breakout")
	}
	// Attach crosses the WAN several times: latency must reflect it.
	if res.Duration < 60*time.Millisecond {
		t.Errorf("centralized attach took only %v; expected ≥ 3 WAN RTTs", res.Duration)
	}
	if _, err := d.Echo("ott:9000", []byte("ping"), 200*time.Millisecond, 5*time.Second); err != nil {
		t.Fatalf("echo through tunnel: %v", err)
	}
}

func TestStubFasterThanCentralized(t *testing.T) {
	stub := newTestbed(t, true, 0)
	central := newTestbed(t, false, 30*time.Millisecond)

	dStub := stub.newUE(t, "001010000000103")
	dCentral := central.newUE(t, "001010000000104")

	resStub, err := dStub.Attach(stub.enb.AirAddr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resCentral, err := dCentral.Attach(central.enb.AirAddr(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resStub.Duration >= resCentral.Duration {
		t.Errorf("stub attach %v not faster than centralized %v", resStub.Duration, resCentral.Duration)
	}

	// Data-path RTT advantage (Figure 1 / E2): breakout at the AP vs
	// tunneling through the remote EPC.
	rttStub, err := dStub.Echo("ott:9000", []byte("x"), 200*time.Millisecond, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rttCentral, err := dCentral.Echo("ott:9000", []byte("x"), 200*time.Millisecond, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rttStub >= rttCentral {
		t.Errorf("stub RTT %v not lower than centralized %v", rttStub, rttCentral)
	}
}

func TestMultipleUEsConcurrentAttach(t *testing.T) {
	tb := newTestbed(t, true, 0)
	const n = 8
	devices := make([]*ue.Device, n)
	for i := 0; i < n; i++ {
		devices[i] = tb.newUE(t, fmt.Sprintf("0010100000002%02d", i))
	}
	errs := make(chan error, n)
	for _, d := range devices {
		go func(d *ue.Device) {
			if _, err := d.Attach(tb.enb.AirAddr(), 10*time.Second); err != nil {
				errs <- err
				return
			}
			_, err := d.Echo("ott:9000", []byte("hi"), 200*time.Millisecond, 5*time.Second)
			errs <- err
		}(d)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := tb.core.Gateway().NumSessions(); got != n {
		t.Errorf("sessions = %d, want %d", got, n)
	}
	// Distinct IPs for all.
	seen := map[string]bool{}
	for _, d := range devices {
		ip := d.IP()
		if seen[ip] {
			t.Errorf("duplicate IP %s", ip)
		}
		seen[ip] = true
	}
}

func TestDetachReleasesSession(t *testing.T) {
	tb := newTestbed(t, true, 0)
	d := tb.newUE(t, "001010000000130")
	if _, err := d.Attach(tb.enb.AirAddr(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.Detach(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for tb.core.Gateway().NumSessions() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := tb.core.Gateway().NumSessions(); got != 0 {
		t.Errorf("sessions after detach = %d", got)
	}
	if st := tb.core.Stats(); st.Detaches != 1 {
		t.Errorf("detaches = %d", st.Detaches)
	}
	if err := d.Send("ott:9000", []byte("x")); !errors.Is(err, ue.ErrNotAttached) {
		t.Errorf("send after detach: %v", err)
	}
}

func TestUnknownUERejected(t *testing.T) {
	tb := newTestbed(t, true, 0)
	sim, _ := auth.NewSIM("001010000000140") // NOT provisioned
	ueHost := tb.net.MustAddHost("ue-x")
	d, _ := ue.NewDevice(ueHost, sim)
	t.Cleanup(d.Close)
	_, err := d.Attach(tb.enb.AirAddr(), 5*time.Second)
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("attach of unknown IMSI: %v", err)
	}
	if st := tb.core.Stats(); st.Rejects != 1 {
		t.Errorf("rejects = %d", st.Rejects)
	}
}

func TestOpenCoreImportsPublishedKey(t *testing.T) {
	tb := newTestbed(t, true, 0) // stub core is open
	sim, _ := auth.NewSIM("001010000000150")
	ueHost := tb.net.MustAddHost("ue-pub")
	d, _ := ue.NewDevice(ueHost, sim)
	t.Cleanup(d.Close)

	// Not provisioned: first attach fails.
	if _, err := d.Attach(tb.enb.AirAddr(), 5*time.Second); err == nil {
		t.Fatal("unprovisioned attach succeeded")
	}
	// Import the published key (as the AP would from the registry).
	if err := tb.core.ImportPublishedKey(d.Publication()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Attach(tb.enb.AirAddr(), 5*time.Second); err != nil {
		t.Fatalf("attach after key import: %v", err)
	}
}

func TestClosedCoreRefusesPublishedKey(t *testing.T) {
	tb := newTestbed(t, false, 5*time.Millisecond) // telecom core: closed
	sim, _ := auth.NewSIM("001010000000160")
	pub := auth.KeyPublication{IMSI: sim.IMSI, K: sim.K, OPc: sim.OPc}
	if err := tb.core.ImportPublishedKey(pub); err == nil {
		t.Fatal("closed core accepted a published key")
	}
}

func TestReattachSameCore(t *testing.T) {
	tb := newTestbed(t, true, 0)
	d := tb.newUE(t, "001010000000170")
	if _, err := d.Attach(tb.enb.AirAddr(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := d.Detach(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := d.Attach(tb.enb.AirAddr(), 5*time.Second)
	if err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	if res.IP == "" {
		t.Error("no IP on re-attach")
	}
	if _, err := d.Echo("ott:9000", []byte("again"), 200*time.Millisecond, 5*time.Second); err != nil {
		t.Fatalf("echo after re-attach: %v", err)
	}
}

func TestReattachWithoutDetachSupersedes(t *testing.T) {
	// A client that lost its radio without detaching re-attaches: the
	// new attach supersedes the stale session (TS 24.301 semantics)
	// and the data path works again.
	tb := newTestbed(t, true, 0)
	d := tb.newUE(t, "001010000000180")
	if _, err := d.Attach(tb.enb.AirAddr(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// No detach — just re-attach (e.g. after a radio blackout).
	res, err := d.Attach(tb.enb.AirAddr(), 5*time.Second)
	if err != nil {
		t.Fatalf("supersede attach: %v", err)
	}
	if res.IP == "" {
		t.Error("no IP on superseding attach")
	}
	if got := tb.core.Gateway().NumSessions(); got != 1 {
		t.Errorf("sessions after supersede = %d, want 1", got)
	}
	if _, err := d.Echo("ott:9000", []byte("alive"), 200*time.Millisecond, 5*time.Second); err != nil {
		t.Fatalf("data path after supersede: %v", err)
	}
}

func TestUserPacketCodec(t *testing.T) {
	p := epc.UserPacket{Remote: "ott:9000", Payload: []byte("data")}
	b, err := epc.EncodeUserPacket(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := epc.DecodeUserPacket(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Remote != p.Remote || string(got.Payload) != "data" {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := epc.DecodeUserPacket([]byte{5, 1}); err == nil {
		t.Error("truncated packet decoded")
	}
}
