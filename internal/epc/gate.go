package epc

import (
	"sync"
	"time"

	"dlte/internal/simnet"
)

// gateEpsilon is the registration window of a deterministic gate:
// every entrant that arrives at one virtual instant gets this long
// (one virtual nanosecond — invisible at any rendered precision) to
// enqueue before admission order is decided. Under a VirtualClock,
// time cannot pass the window until all goroutines woken at that
// instant have run, so the queue is complete when the window closes.
const gateEpsilon = time.Nanosecond

// gateWaiter is one entrant awaiting admission, keyed by virtual
// arrival time with an actor ID (the eNB connection ID) as tiebreak.
// Each waiter owns a buffered(1) ready channel for direct handoff:
// the admitting goroutine signals exactly the waiters it admits, and
// nobody else wakes.
type gateWaiter struct {
	at    time.Time
	actor string
	ready chan struct{}
}

var gateWaiterPool = sync.Pool{
	New: func() interface{} { return &gateWaiter{ready: make(chan struct{}, 1)} },
}

// detGate admits work onto a bounded number of slots in deterministic
// order. A bare mutex (or semaphore) would admit same-instant
// entrants in whatever order the Go scheduler unblocks them —
// nondeterministic under concurrent simulation worlds. Instead
// admission is strictly by (virtual arrival time, actor ID), both
// functions of simulation state alone: messages on one S1AP
// association are inherently serial, so the key is total, and
// earlier-instant arrivals are always enqueued before virtual time
// moves on (the VirtualClock only advances over a quiescent world).
//
// Admission is batched: whenever a slot frees or the registration
// window closes, tryAdmit pops the whole admissible run of queue
// heads in one pass and hands each admitted waiter its slot directly
// over its own channel. The earlier design instead closed a shared
// broadcast channel and let every parked entrant re-check — O(n)
// spurious wakeups per admission, O(n²) per storm burst, which
// dominated the attach-storm profile at high shard counts.
//
// Two gates are built on this: each session shard's serving gate
// (capacity 1 — at most one signaling message per shard in flight,
// which is what makes shard state single-writer) and the modeled
// signaling processor of a centralized EPC (capacity =
// SignalingProcessors, where the admitted work is a ProcessingDelay
// sleep — an M/D/k queue in virtual time).
type detGate struct {
	capacity int // admission slots; 0 means 1

	mu      sync.Mutex
	waiters []*gateWaiter // sorted by (at, actor); small: one per eNB conn
	running int
}

func (g *detGate) enqueue(w *gateWaiter) {
	g.mu.Lock()
	i := 0
	for i < len(g.waiters) && (g.waiters[i].at.Before(w.at) ||
		(g.waiters[i].at.Equal(w.at) && g.waiters[i].actor < w.actor)) {
		i++
	}
	g.waiters = append(g.waiters, nil)
	copy(g.waiters[i+1:], g.waiters[i:])
	g.waiters[i] = w
	g.mu.Unlock()
}

// tryAdmit pops every queue head an open slot can take — a whole run
// of same-window arrivals in one pass — and signals each admitted
// waiter's ready channel. Caller holds g.mu.
func (g *detGate) tryAdmit() {
	slots := g.capacity
	if slots < 1 {
		slots = 1
	}
	n := 0
	for g.running < slots && n < len(g.waiters) {
		w := g.waiters[n]
		g.waiters[n] = nil
		n++
		g.running++
		w.ready <- struct{}{}
	}
	if n > 0 {
		rem := copy(g.waiters, g.waiters[n:])
		clear := g.waiters[rem:]
		for i := range clear {
			clear[i] = nil
		}
		g.waiters = g.waiters[:rem]
	}
}

// run executes fn once admitted. All waits go through the clock
// (Sleep, Block-bracketed channel receives) so a VirtualClock sees
// queued goroutines as parked and advances virtual time
// deterministically.
func (g *detGate) run(clk simnet.Clock, actor string, fn func()) {
	w := gateWaiterPool.Get().(*gateWaiter)
	w.at = clk.Now()
	w.actor = actor
	g.enqueue(w)
	if _, virtual := clk.(*simnet.VirtualClock); virtual {
		// Same-instant arrivals finish enqueueing before admission
		// order is decided. Only a virtual clock has the quiescence
		// guarantee that makes the window meaningful; on a wall clock
		// the 1 ns sleep is a ~50 µs real timer for nothing.
		clk.Sleep(gateEpsilon)
	}
	g.mu.Lock()
	g.tryAdmit()
	g.mu.Unlock()
	select {
	case <-w.ready:
		// Admitted in our own pass (or by a peer before we got here).
	default:
		clk.Block()
		<-w.ready
		clk.Unblock()
	}

	fn()

	g.mu.Lock()
	g.running--
	g.tryAdmit()
	g.mu.Unlock()
	gateWaiterPool.Put(w)
}
