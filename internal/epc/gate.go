package epc

import (
	"sync"
	"time"

	"dlte/internal/simnet"
)

// gateEpsilon is the registration window of a deterministic gate:
// every entrant that arrives at one virtual instant gets this long
// (one virtual nanosecond — invisible at any rendered precision) to
// enqueue before admission order is decided. Under a VirtualClock,
// time cannot pass the window until all goroutines woken at that
// instant have run, so the queue is complete when the window closes.
const gateEpsilon = time.Nanosecond

// gateWaiter is one entrant awaiting admission, keyed by virtual
// arrival time with an actor ID (the eNB connection ID) as tiebreak.
type gateWaiter struct {
	at    time.Time
	actor string
}

// detGate admits work onto a bounded number of slots in deterministic
// order. A bare mutex (or semaphore) would admit same-instant
// entrants in whatever order the Go scheduler unblocks them —
// nondeterministic under concurrent simulation worlds. Instead
// admission is strictly by (virtual arrival time, actor ID), both
// functions of simulation state alone: messages on one S1AP
// association are inherently serial, so the key is total, and
// earlier-instant arrivals are always enqueued before virtual time
// moves on (the VirtualClock only advances over a quiescent world).
//
// Two gates are built on this: each session shard's serving gate
// (capacity 1 — at most one signaling message per shard in flight,
// which is what makes shard state single-writer) and the modeled
// signaling processor of a centralized EPC (capacity =
// SignalingProcessors, where the admitted work is a ProcessingDelay
// sleep — an M/D/k queue in virtual time).
type detGate struct {
	capacity int // admission slots; 0 means 1

	mu      sync.Mutex
	waiters []gateWaiter // sorted by (at, actor); small: one per eNB conn
	running int
	done    chan struct{} // closed and replaced at each admission/completion
}

func (g *detGate) enqueue(w gateWaiter) {
	g.mu.Lock()
	if g.done == nil {
		g.done = make(chan struct{})
	}
	i := 0
	for i < len(g.waiters) && (g.waiters[i].at.Before(w.at) ||
		(g.waiters[i].at.Equal(w.at) && g.waiters[i].actor < w.actor)) {
		i++
	}
	g.waiters = append(g.waiters, gateWaiter{})
	copy(g.waiters[i+1:], g.waiters[i:])
	g.waiters[i] = w
	g.mu.Unlock()
}

// wake unblocks every parked entrant so it can re-check admission.
// Called whenever a slot frees or the queue head is consumed.
func (g *detGate) wake() {
	close(g.done)
	g.done = make(chan struct{})
}

// run executes fn once admitted. All waits go through the clock
// (Sleep, Block-bracketed channel receives) so a VirtualClock sees
// queued goroutines as parked and advances virtual time
// deterministically.
func (g *detGate) run(clk simnet.Clock, actor string, fn func()) {
	w := gateWaiter{at: clk.Now(), actor: actor}
	g.enqueue(w)
	clk.Sleep(gateEpsilon) // same-instant arrivals finish enqueueing
	for {
		g.mu.Lock()
		slots := g.capacity
		if slots < 1 {
			slots = 1
		}
		if g.running < slots && g.waiters[0] == w {
			g.waiters = g.waiters[1:]
			g.running++
			// The next waiter may be admissible right now (capacity > 1):
			// let it re-check instead of waiting for a completion.
			g.wake()
			g.mu.Unlock()

			fn()

			g.mu.Lock()
			g.running--
			g.wake()
			g.mu.Unlock()
			return
		}
		ch := g.done
		g.mu.Unlock()
		clk.Block()
		<-ch
		clk.Unblock()
	}
}
