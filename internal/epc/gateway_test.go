package epc

import (
	"errors"
	"testing"

	"dlte/internal/simnet"
)

// TestIPPoolReusesReleasedAddresses guards the free-list allocator:
// the old bump-only counter never reused a released address and walked
// off the 10.45.0.0/16 block after ~64k sessions.
func TestIPPoolReusesReleasedAddresses(t *testing.T) {
	n := simnet.New(simnet.Link{}, 1)
	defer n.Close()
	gw, err := NewGateway(n.MustAddHost("gw"))
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	ip1, _, err := gw.CreateSession("imsi-1")
	if err != nil {
		t.Fatal(err)
	}
	if ip1 != "10.45.0.2" {
		t.Fatalf("first address = %s, want 10.45.0.2", ip1)
	}
	if err := gw.DeleteSession("imsi-1"); err != nil {
		t.Fatal(err)
	}
	ip2, _, err := gw.CreateSession("imsi-2")
	if err != nil {
		t.Fatal(err)
	}
	if ip2 != ip1 {
		t.Fatalf("released address not reused: got %s, want %s", ip2, ip1)
	}

	// Superseding an attach must also recycle the old session's address.
	ip3, _, err := gw.CreateSession("imsi-2")
	if err != nil {
		t.Fatal(err)
	}
	if ip3 != ip2 {
		t.Fatalf("superseded address not reused: got %s, want %s", ip3, ip2)
	}
}

// TestIPPoolExhaustion checks the typed error at the pool bound and
// that releasing a session makes an address available again.
func TestIPPoolExhaustion(t *testing.T) {
	n := simnet.New(simnet.Link{}, 1)
	defer n.Close()
	gw, err := NewGateway(n.MustAddHost("gw"))
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	// Pretend every never-used index is gone; only the free list can
	// satisfy allocations now.
	gw.mu.Lock()
	gw.ipNext = maxIPIndex
	gw.mu.Unlock()

	if _, _, err := gw.CreateSession("imsi-a"); !errors.Is(err, ErrAddressPoolExhausted) {
		t.Fatalf("err = %v, want ErrAddressPoolExhausted", err)
	}

	gw.mu.Lock()
	gw.releaseIP(42)
	gw.mu.Unlock()
	ip, _, err := gw.CreateSession("imsi-a")
	if err != nil {
		t.Fatal(err)
	}
	if want := ipForIndex(42); ip != want {
		t.Fatalf("ip = %s, want recycled %s", ip, want)
	}
	if _, _, err := gw.CreateSession("imsi-b"); !errors.Is(err, ErrAddressPoolExhausted) {
		t.Fatalf("second create err = %v, want ErrAddressPoolExhausted", err)
	}
}

// TestIPFormulaSpansSubnet pins the index→address formula at its
// bounds so pool-size arithmetic and formula stay in sync.
func TestIPFormulaSpansSubnet(t *testing.T) {
	if got := ipForIndex(1); got != "10.45.0.2" {
		t.Errorf("ipForIndex(1) = %s", got)
	}
	if got := ipForIndex(maxIPIndex); got != "10.45.255.250" {
		t.Errorf("ipForIndex(max) = %s", got)
	}
}
