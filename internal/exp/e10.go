package exp

import (
	"fmt"
	"math"
	"sync"
	"time"

	"dlte/internal/geo"
	"dlte/internal/metrics"
	"dlte/internal/radio"
	"dlte/internal/registry"
	"dlte/internal/simnet"
	"dlte/internal/x2"

	"math/rand"
)

// E10Result quantifies the discovery/coordination plane at town scale
// (§4.3): how an AP population learns about each other through the
// global registry, comparing full-list polling against the
// revision-delta subscription, plus spatial region queries and X2
// full-mesh bring-up among the discovered neighbors.
type E10Result struct {
	// SyncTable is the poll-vs-delta comparison per AP count.
	SyncTable *metrics.Table
	// MeshTable covers region queries and X2 mesh convergence.
	MeshTable *metrics.Table
	// PollKBByAPs / DeltaKBByAPs are steady-state sync KB on the wire
	// over the observation window, by AP count.
	PollKBByAPs, DeltaKBByAPs map[int]float64
	// ReductionByAPs is poll/delta bytes; MinReduction its minimum.
	ReductionByAPs map[int]float64
	MinReduction   float64
	// PollP50ByAPs / DeltaP50ByAPs are join→discoverable medians (ms).
	PollP50ByAPs, DeltaP50ByAPs map[int]float64
}

// E10 timeline (virtual time, per world). All mutation instants land
// on a coarse lattice (multiples of the join/churn stagger) while all
// reader requests carry a +333 ns phase offset, so no read ever shares
// an instant with a mutation: results cannot depend on goroutine
// scheduling between a registry write and a concurrent read.
const (
	e10JoinStart  = 200 * time.Millisecond
	e10JoinWindow = 4 * time.Second
	e10PollStart  = 100*time.Millisecond + 333*time.Nanosecond
	e10PollPeriod = 500 * time.Millisecond
	// Every e10KeyPullEvery-th poll also re-pulls the full key table —
	// the pre-delta way an AP kept its HSS import current.
	e10KeyPullEvery = 5
	// Margin past the last join so the poller observes every AP.
	e10Margin = 600 * time.Millisecond
)

type e10Config struct {
	apCounts []int
	nKeys    int // published subscriber keys pre-seeded in the registry
	churn    int // key publications during the join window
	meshK    int // X2 full-mesh size
	queries  int // region queries
}

func e10Params(quick bool) e10Config {
	if quick {
		return e10Config{apCounts: []int{64, 256}, nKeys: 10_000, churn: 64, meshK: 8, queries: 32}
	}
	return e10Config{apCounts: []int{64, 512, 2048}, nKeys: 100_000, churn: 256, meshK: 16, queries: 64}
}

// e10Point is one world's measurements.
type e10Point struct {
	n          int
	initialKB  float64 // one-time full bootstrap (List+Keys), same for both modes
	pollKB     float64 // window bytes, full-list polling observer
	deltaKB    float64 // window bytes, delta-subscription observer
	pollP50Ms  float64
	pollP99Ms  float64
	deltaP50Ms float64
	deltaP99Ms float64
	regionP50  float64
	regionHits float64
	convergeMs float64
	x2KB       float64
}

// RunE10 sweeps AP population sizes; each size is an independent world
// (run concurrently under opt.Parallelism, rendered in index order).
// In each world the registry starts pre-loaded with the full key
// population, two observers track membership — one polling full lists,
// one on the revision-delta feed — while every AP joins at its own
// staggered instant and keys churn; then region queries run and the
// first K APs bring up an X2 full mesh.
func RunE10(opt Options) (E10Result, error) {
	cfg := e10Params(opt.Quick)
	res := E10Result{
		PollKBByAPs:    map[int]float64{},
		DeltaKBByAPs:   map[int]float64{},
		ReductionByAPs: map[int]float64{},
		PollP50ByAPs:   map[int]float64{},
		DeltaP50ByAPs:  map[int]float64{},
		MinReduction:   math.Inf(1),
	}

	pts := make([]e10Point, len(cfg.apCounts))
	err := forEachWorld(opt, len(cfg.apCounts), func(i int) error {
		p, e := runE10World(opt.Seed+int64(i)*1000, cfg.apCounts[i], cfg)
		pts[i] = p
		return e
	})
	if err != nil {
		return res, err
	}

	syncT := metrics.NewTable("E10 — §4.3: discovery at scale, full-list polling vs revision-delta sync",
		"APs", "keys", "bootstrap KB", "poll KB", "delta KB", "reduction",
		"poll p50 ms", "poll p99 ms", "delta p50 ms", "delta p99 ms")
	meshT := metrics.NewTable("E10 — region queries and X2 full-mesh bring-up",
		"APs", "region p50 ms", "avg APs hit", "mesh K", "converge ms", "X2 KB")
	for _, p := range pts {
		red := p.pollKB / p.deltaKB
		syncT.AddRow(p.n, cfg.nKeys, fmt.Sprintf("%.1f", p.initialKB),
			fmt.Sprintf("%.1f", p.pollKB), fmt.Sprintf("%.1f", p.deltaKB),
			fmt.Sprintf("%.0fx", red),
			fmt.Sprintf("%.1f", p.pollP50Ms), fmt.Sprintf("%.1f", p.pollP99Ms),
			fmt.Sprintf("%.1f", p.deltaP50Ms), fmt.Sprintf("%.1f", p.deltaP99Ms))
		meshT.AddRow(p.n, fmt.Sprintf("%.1f", p.regionP50), fmt.Sprintf("%.1f", p.regionHits),
			cfg.meshK, fmt.Sprintf("%.1f", p.convergeMs), fmt.Sprintf("%.1f", p.x2KB))
		res.PollKBByAPs[p.n] = p.pollKB
		res.DeltaKBByAPs[p.n] = p.deltaKB
		res.ReductionByAPs[p.n] = red
		res.PollP50ByAPs[p.n] = p.pollP50Ms
		res.DeltaP50ByAPs[p.n] = p.deltaP50Ms
		if red < res.MinReduction {
			res.MinReduction = red
		}
	}
	res.SyncTable, res.MeshTable = syncT, meshT
	opt.emit(syncT, meshT)
	return res, nil
}

// sleepUntil parks the calling goroutine until the absolute instant t.
func sleepUntil(clk simnet.Clock, t time.Time) {
	if d := t.Sub(clk.Now()); d > 0 {
		clk.Sleep(d)
	}
}

func runE10World(seed int64, n int, cfg e10Config) (e10Point, error) {
	pt := e10Point{n: n}
	net := simnet.NewVirtualNetwork(defaultWAN, seed)
	defer net.Close()
	clk := net.Clock()
	t0 := clk.Now()

	// Registry host with the store pre-loaded: the full key population
	// exists before any observer subscribes, so the delta feed carries
	// only what changes — the point of syncing from a known revision.
	regHost, err := net.AddHost("registry")
	if err != nil {
		return pt, err
	}
	store := registry.NewStore()
	for k := 0; k < cfg.nKeys; k++ {
		rec := registry.KeyRecord{
			IMSI: string(imsiFor(90, k)),
			K:    fmt.Sprintf("%032x", uint64(k)+1),
			OPc:  fmt.Sprintf("%032x", uint64(k)^0x5a5a),
		}
		if err := store.PublishKey(rec); err != nil {
			return pt, fmt.Errorf("e10: seed key %d: %w", k, err)
		}
	}
	r0 := store.Revision()
	regL, err := regHost.Listen(8400)
	if err != nil {
		return pt, err
	}
	srv := registry.NewServer(store)
	clk.Go(func() { srv.Serve(regL) })
	const regAddr = "registry:8400"

	// Site layout: a grid with 1 km pitch; the first meshK sites share
	// row 0 so a known rectangle selects exactly the mesh members.
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	if cols < cfg.meshK {
		cols = cfg.meshK
	}
	rows := (n + cols - 1) / cols
	ids := make([]string, n)
	recs := make([]registry.APRecord, n)
	band := radio.LTEBand5.Name
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("ap-%04d", i)
		x2addr := "joiners:1" // placeholder; only mesh members get dialed
		if i < cfg.meshK {
			x2addr = fmt.Sprintf("mesh%02d:%d", i, 36422)
		}
		recs[i] = registry.APRecord{
			ID: ids[i], X2Addr: x2addr,
			X: float64(i%cols) * 1000, Y: float64(i/cols) * 1000,
			Band: band, EIRPdBm: 58, HeightM: 20, Mode: "fair-share",
		}
	}

	joinHost, err := net.AddHost("joiners")
	if err != nil {
		return pt, err
	}
	obsHost, err := net.AddHost("observer")
	if err != nil {
		return pt, err
	}

	// One-time bootstrap both modes would pay identically: pull the
	// full membership and key tables once.
	boot, err := registry.Dial(obsHost.Dial, regAddr)
	if err != nil {
		return pt, err
	}
	if _, err := boot.List(""); err != nil {
		return pt, err
	}
	if _, err := boot.Keys(); err != nil {
		return pt, err
	}
	btx, brx := boot.Traffic()
	pt.initialKB = float64(btx+brx) / 1024
	boot.Close()

	// Delta observer: a mirror subscribed from the bootstrap revision.
	// Join arrivals are timestamped by the feed callback.
	var obsMu sync.Mutex
	deltaSeen := make(map[string]time.Time, n)
	mir, err := registry.NewMirror(obsHost.Dial, regAddr, r0)
	if err != nil {
		return pt, err
	}
	defer mir.Close()
	mir.SetOnDelta(func(d registry.Delta) {
		if d.Kind == registry.DeltaJoin {
			obsMu.Lock()
			deltaSeen[d.AP.ID] = clk.Now()
			obsMu.Unlock()
		}
	})

	// Poll observer: the pre-delta strategy — re-pull the full AP list
	// every period and the full key table every few periods.
	pollC, err := registry.Dial(obsHost.Dial, regAddr)
	if err != nil {
		return pt, err
	}
	defer pollC.Close()
	pollSeen := make(map[string]time.Time, n)

	stagger := e10JoinWindow / time.Duration(n)
	churnStagger := e10JoinWindow / time.Duration(cfg.churn)
	tEnd := t0.Add(e10JoinStart + e10JoinWindow + e10Margin)
	numPolls := int((e10JoinStart+e10JoinWindow+e10Margin-e10PollStart)/e10PollPeriod) + 1

	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		for k := 0; k < numPolls; k++ {
			sleepUntil(clk, t0.Add(e10PollStart+time.Duration(k)*e10PollPeriod))
			list, err := pollC.List("")
			if err != nil {
				fail(fmt.Errorf("e10: poll list: %w", err))
				return
			}
			now := clk.Now()
			for _, r := range list {
				if _, ok := pollSeen[r.ID]; !ok {
					pollSeen[r.ID] = now
				}
			}
			if k%e10KeyPullEvery == e10KeyPullEvery-1 {
				if _, err := pollC.Keys(); err != nil {
					fail(fmt.Errorf("e10: poll keys: %w", err))
					return
				}
			}
		}
	})

	// Joins: every AP dials its own registry connection and joins at
	// its staggered instant. Instants are all distinct, so each join is
	// one delta frame on the feed.
	joinAt := make([]time.Time, n)
	for i := 0; i < n; i++ {
		i := i
		joinAt[i] = t0.Add(e10JoinStart + time.Duration(i)*stagger)
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			sleepUntil(clk, joinAt[i])
			c, err := registry.Dial(joinHost.Dial, regAddr)
			if err != nil {
				fail(err)
				return
			}
			defer c.Close()
			if err := c.Join(recs[i]); err != nil {
				fail(fmt.Errorf("e10: join %s: %w", ids[i], err))
			}
		})
	}

	// Key churn during the join window: new subscribers publish while
	// membership is in flux (in-process, like Scenario.AddUE does).
	wg.Add(1)
	clk.Go(func() {
		defer wg.Done()
		for j := 0; j < cfg.churn; j++ {
			sleepUntil(clk, t0.Add(e10JoinStart+time.Duration(j)*churnStagger))
			rec := registry.KeyRecord{
				IMSI: string(imsiFor(89, j)),
				K:    fmt.Sprintf("%032x", uint64(j)+7),
				OPc:  fmt.Sprintf("%032x", uint64(j)+9),
			}
			if err := store.PublishKey(rec); err != nil {
				fail(fmt.Errorf("e10: churn key %d: %w", j, err))
				return
			}
		}
	})

	clk.Block()
	wg.Wait()
	clk.Unblock()
	if firstErr != nil {
		return pt, firstErr
	}

	// Let the mirror drain the tail of the feed, then settle accounts.
	if err := mir.WaitRev(store.Revision(), 5*time.Second); err != nil {
		return pt, err
	}
	ptx, prx := pollC.Traffic()
	pt.pollKB = float64(ptx+prx) / 1024
	dtx, drx := mir.Traffic()
	pt.deltaKB = float64(dtx+drx) / 1024

	pollH, deltaH := metrics.NewHistogram(), metrics.NewHistogram()
	obsMu.Lock()
	for i := 0; i < n; i++ {
		dt, ok := deltaSeen[ids[i]]
		if !ok {
			obsMu.Unlock()
			return pt, fmt.Errorf("e10: %s never reached the delta observer", ids[i])
		}
		pt2, ok := pollSeen[ids[i]]
		if !ok {
			obsMu.Unlock()
			return pt, fmt.Errorf("e10: %s never reached the poll observer", ids[i])
		}
		deltaH.ObserveDuration(dt.Sub(joinAt[i]))
		pollH.ObserveDuration(pt2.Sub(joinAt[i]))
	}
	obsMu.Unlock()
	pt.pollP50Ms, pt.pollP99Ms = pollH.Quantile(0.5), pollH.Quantile(0.99)
	pt.deltaP50Ms, pt.deltaP99Ms = deltaH.Quantile(0.5), deltaH.Quantile(0.99)

	// Region queries: random rectangles over the deployment, answered
	// by the server's spatial grid index.
	sleepUntil(clk, tEnd)
	queryC, err := registry.Dial(obsHost.Dial, regAddr)
	if err != nil {
		return pt, err
	}
	defer queryC.Close()
	rng := rand.New(rand.NewSource(seed + 7))
	regionH := metrics.NewHistogram()
	hits := 0
	w, h := float64(cols)*1000, float64(rows)*1000
	for q := 0; q < cfg.queries; q++ {
		cx, cy := rng.Float64()*w, rng.Float64()*h
		half := 1000 + rng.Float64()*3000
		rect := geo.Rect{Min: geo.Pt(cx-half, cy-half), Max: geo.Pt(cx+half, cy+half)}
		tq := clk.Now()
		got, err := queryC.InRegion(band, rect)
		if err != nil {
			return pt, err
		}
		regionH.ObserveDuration(clk.Since(tq))
		hits += len(got)
	}
	pt.regionP50 = regionH.Quantile(0.5)
	pt.regionHits = float64(hits) / float64(cfg.queries)

	// X2 full mesh among the meshK sites in row 0: each discovers the
	// member set with one region query, then dials every lower-indexed
	// member (so each pair associates exactly once).
	meshRect := geo.Rect{Min: geo.Pt(-500, -500), Max: geo.Pt(float64(cfg.meshK-1)*1000+500, 500)}
	agents := make([]*x2.Agent, cfg.meshK)
	meshHosts := make([]*simnet.Host, cfg.meshK)
	for k := 0; k < cfg.meshK; k++ {
		hst, err := net.AddHost(fmt.Sprintf("mesh%02d", k))
		if err != nil {
			return pt, err
		}
		meshHosts[k] = hst
		agents[k] = x2.NewAgent(ids[k], x2.PeerHello{
			X: recs[k].X, Y: recs[k].Y, BandName: band, Mode: x2.ModeFairShare,
		}, nil)
		l, err := hst.Listen(36422)
		if err != nil {
			return pt, err
		}
		defer l.Close()
		ag := agents[k]
		clk.Go(func() { ag.Serve(l) })
	}
	meshStart := clk.Now()
	for k := 0; k < cfg.meshK; k++ {
		k := k
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			sleepUntil(clk, meshStart.Add(time.Duration(k)*2*time.Millisecond))
			c, err := registry.Dial(meshHosts[k].Dial, regAddr)
			if err != nil {
				fail(err)
				return
			}
			defer c.Close()
			members, err := c.InRegion(band, meshRect)
			if err != nil {
				fail(err)
				return
			}
			for _, m := range members {
				if m.ID >= ids[k] { // dial down the ID order only
					continue
				}
				if _, err := agents[k].Connect(meshHosts[k].Dial, m.X2Addr); err != nil {
					fail(fmt.Errorf("e10: x2 connect %s→%s: %w", ids[k], m.ID, err))
					return
				}
			}
		})
	}
	clk.Block()
	wg.Wait()
	clk.Unblock()
	if firstErr != nil {
		return pt, firstErr
	}
	meshed := func() bool {
		for _, ag := range agents {
			if len(ag.Peers()) != cfg.meshK-1 {
				return false
			}
		}
		return true
	}
	for !meshed() && clk.Since(meshStart) < 10*time.Second {
		clk.Sleep(5 * time.Millisecond)
	}
	if !meshed() {
		return pt, fmt.Errorf("e10: X2 mesh did not converge")
	}
	pt.convergeMs = ms(clk.Since(meshStart))

	// One load-report broadcast round across the converged mesh.
	for k, ag := range agents {
		if err := ag.Broadcast(&x2.LoadInformation{
			APID: ids[k], AttachedUEs: uint16(k + 1), PRBUtilization: 500, DemandBps: 50_000_000,
		}); err != nil {
			return pt, err
		}
	}
	bcastDone := func() bool {
		for _, ag := range agents {
			_, _, _, rxMsgs := ag.Traffic()
			if rxMsgs < uint64(cfg.meshK-1) {
				return false
			}
		}
		return true
	}
	bt := clk.Now()
	for !bcastDone() && clk.Since(bt) < 5*time.Second {
		clk.Sleep(5 * time.Millisecond)
	}
	if !bcastDone() {
		return pt, fmt.Errorf("e10: broadcast round did not complete")
	}
	var x2Bytes uint64
	for _, ag := range agents {
		tx, _, _, _ := ag.Traffic()
		x2Bytes += tx
	}
	pt.x2KB = float64(x2Bytes) / 1024
	for _, ag := range agents {
		ag.Close()
	}
	return pt, nil
}
