package exp

import (
	"fmt"
	"time"

	"dlte/internal/metrics"
	"dlte/internal/simnet"
	"dlte/internal/x2"
)

// E7Result quantifies §4.3's claim that X2 coordination is "relatively
// low bandwidth" and degrades gracefully when backhaul-constrained.
type E7Result struct {
	Table            *metrics.Table
	ConstrainedTable *metrics.Table
	// BytesPerSec maps AP count → measured per-AP X2 coordination
	// bytes/second at the 100 ms update period.
	BytesPerSec map[int]float64
	// FractionOf256k is coordination traffic as a fraction of a 256
	// kbit/s rural backhaul at the fastest period swept.
	FractionOf256k float64
	// ConvergenceOn256kMs is share-negotiation convergence over a 256
	// kbit/s, 200 ms-latency backhaul (graceful degradation).
	ConvergenceOn256kMs float64
}

// RunE7 measures coordination traffic by running the real X2 protocol
// (load advertisement + share negotiation) between live APs.
func RunE7(opt Options) (E7Result, error) {
	res := E7Result{BytesPerSec: map[int]float64{}}
	apCounts := []int{2, 4, 8}
	rounds := 20
	if opt.Quick {
		apCounts = []int{2, 4}
		rounds = 8
	}
	const period = 100 * time.Millisecond

	t := metrics.NewTable("E7 — §4.3: X2 coordination overhead",
		"APs", "update period ms", "X2 bytes/s per AP", "% of 256kbps backhaul", "% of 10Mbps backhaul")

	for _, n := range apCounts {
		bps, err := measureX2Rate(n, rounds, period, opt.Seed, opt.Shards)
		if err != nil {
			return res, fmt.Errorf("E7 n=%d: %w", n, err)
		}
		res.BytesPerSec[n] = bps
		t.AddRow(n, ms(period), bps, 100*bps*8/256e3, 100*bps*8/10e6)
	}
	res.FractionOf256k = res.BytesPerSec[apCounts[len(apCounts)-1]] * 8 / 256e3
	res.Table = t

	// Graceful degradation: the same negotiation over a constrained
	// backhaul still converges, just slower.
	ct := metrics.NewTable("E7b — negotiation over constrained backhaul",
		"backhaul", "one-way ms", "converged", "convergence ms")
	for _, bh := range []struct {
		name string
		link simnet.Link
	}{
		{"100 Mbps / 10 ms", simnet.Link{Latency: 10 * time.Millisecond, BandwidthBps: 100e6}},
		{"1 Mbps / 50 ms", simnet.Link{Latency: 50 * time.Millisecond, BandwidthBps: 1e6}},
		{"256 kbps / 200 ms", simnet.Link{Latency: 200 * time.Millisecond, BandwidthBps: 256e3}},
	} {
		conv, err := measureConvergence(bh.link, opt.Seed, opt.Shards)
		if err != nil {
			return res, fmt.Errorf("E7b %s: %w", bh.name, err)
		}
		ct.AddRow(bh.name, ms(bh.link.Latency), conv > 0, conv)
		if bh.link.BandwidthBps == 256e3 {
			res.ConvergenceOn256kMs = conv
		}
	}
	res.ConstrainedTable = ct
	opt.emit(t, ct)
	return res, nil
}

// measureX2Rate runs `rounds` coordination cycles across n APs and
// reports per-AP coordination bytes per second (tx+rx averaged).
func measureX2Rate(n, rounds int, period time.Duration, seed int64, shards int) (float64, error) {
	s, aps, err := newDLTEWorld(n, 3, x2.ModeCooperative, seed, shards)
	if err != nil {
		return 0, err
	}
	defer s.Close()
	if _, err := aps[0].DiscoverPeers(); err != nil {
		return 0, err
	}
	// Full mesh: every AP discovers (connections dedupe).
	for _, ap := range aps[1:] {
		if _, err := ap.DiscoverPeers(); err != nil {
			return 0, err
		}
	}

	var tx0, rx0 uint64
	for _, ap := range aps {
		t, r, _, _ := ap.Agent.Traffic()
		tx0 += t
		rx0 += r
	}
	clk := s.Clock()
	start := clk.Now()
	for i := 0; i < rounds; i++ {
		for _, ap := range aps {
			ap.AdvertiseLoad()
		}
		aps[0].NegotiateShares()
		clk.Sleep(period)
	}
	elapsed := clk.Since(start).Seconds()
	var tx1, rx1 uint64
	for _, ap := range aps {
		t, r, _, _ := ap.Agent.Traffic()
		tx1 += t
		rx1 += r
	}
	totalBytes := float64((tx1 - tx0) + (rx1 - rx0))
	// Each byte is counted twice (sender tx + receiver rx); halve,
	// then normalize per AP per second.
	return totalBytes / 2 / float64(n) / elapsed, nil
}

// measureConvergence times one full advertise+negotiate+adopt cycle
// between two APs over the given backhaul link.
func measureConvergence(backhaul simnet.Link, seed int64, shards int) (float64, error) {
	s, aps, err := newDLTEWorld(2, 3, x2.ModeFairShare, seed, shards)
	if err != nil {
		return 0, err
	}
	defer s.Close()
	s.Net.SetLink("ap1", "ap2", backhaul)
	if _, err := aps[0].DiscoverPeers(); err != nil {
		return 0, err
	}
	clk := s.Clock()
	start := clk.Now()
	if _, err := aps[0].NegotiateShares(); err != nil {
		return 0, err
	}
	deadline := clk.Now().Add(10 * time.Second)
	for clk.Now().Before(deadline) {
		if s := aps[1].Share(); s > 0.49 && s < 0.51 {
			return ms(clk.Since(start)), nil
		}
		clk.Sleep(2 * time.Millisecond)
	}
	return 0, fmt.Errorf("shares never converged")
}
