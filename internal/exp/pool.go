package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the parallel world-runner. Every experiment sweep is a
// set of *independent* simulation worlds: each world owns its own
// simnet.Network, its own VirtualClock, and a seed derived purely from
// (Options.Seed, job index), so worlds never share mutable state and
// may run concurrently. Results are written into index-addressed slots
// and tables are rendered only after the pool's barrier, which makes
// the rendered output byte-identical at any parallelism — the
// regression test in determinism_test.go holds the harness to that.

// workers resolves the effective worker count: Parallelism if set,
// otherwise one worker per CPU.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.NumCPU()
}

// ForEach runs fn(0), …, fn(n-1) on at most parallelism concurrent
// goroutines and waits for all of them. With parallelism ≤ 1 the jobs
// run inline on the caller's goroutine in index order, exactly like
// the serial loops this replaces. Every job runs even if an earlier
// one fails (jobs are independent worlds; there is nothing to
// salvage by stopping early) and the error reported is the one from
// the lowest-numbered failing job, so the error path does not depend
// on scheduling order either.
func ForEach(parallelism, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}

	var (
		next     atomic.Int64
		mu       sync.Mutex
		errIdx   = n
		firstErr error
		wg       sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// forEachWorld is ForEach at the Options' worker count — the form the
// experiment sweeps use.
func forEachWorld(opt Options, n int, fn func(i int) error) error {
	return ForEach(opt.workers(), n, fn)
}
