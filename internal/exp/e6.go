package exp

import (
	"dlte/internal/metrics"
	"dlte/internal/radio"
)

// E6Result quantifies §3.2: the LTE waveform and sub-GHz bands
// outrange WiFi's ISM-band operation, the uplink asymmetry, and HARQ's
// weak-signal extension.
type E6Result struct {
	ThroughputTable *metrics.Table
	RangeTable      *metrics.Table
	// RangeKm maps technology name → max range at 512 kbps downlink.
	RangeKm map[string]float64
	// HARQGainKm is the extra LTE band-5 range HARQ buys.
	HARQGainKm float64
}

// e6Tech describes one technology under sweep.
type e6Tech struct {
	name    string
	band    radio.Band
	wifi    bool
	pathCap float64 // hard range cap (WiFi ACK timeout), 0 = none
}

func e6Techs() []e6Tech {
	return []e6Tech{
		{name: "LTE band 31 (450 MHz)", band: radio.LTEBand31},
		{name: "LTE band 5 (850 MHz)", band: radio.LTEBand5},
		{name: "LTE CBRS (3.5 GHz)", band: radio.CBRS},
		{name: "WiFi 2.4 GHz", band: radio.ISM24, wifi: true, pathCap: radio.WiFiDefaultMaxRangeKm},
		{name: "WiFi 5.8 GHz", band: radio.ISM58, wifi: true, pathCap: radio.WiFiDefaultMaxRangeKm},
	}
}

// e6Throughput computes downlink and uplink goodput for a technology
// at distance dKm.
func e6Throughput(tech e6Tech, dKm float64) (dlBps, ulBps float64) {
	if tech.wifi {
		dl := radio.Link{Tx: radio.WiFiAccessPoint, Rx: radio.WiFiClient, Band: tech.band}
		ul := radio.Link{Tx: radio.WiFiClient, Rx: radio.WiFiAccessPoint, Band: tech.band, Uplink: true}
		return radio.WiFiThroughputBps(dl.SNRdB(dKm), dKm, tech.pathCap),
			radio.WiFiThroughputBps(ul.SNRdB(dKm), dKm, tech.pathCap)
	}
	dl := radio.Link{Tx: radio.LTEBaseStation, Rx: radio.LTEHandset, Band: tech.band}
	ul := radio.Link{Tx: radio.LTEHandset, Rx: radio.LTEBaseStation, Band: tech.band, Uplink: true}
	bw := tech.band.BandwidthHz()
	// The uplink schedules a UE over a fraction of the grid; report
	// full-grid for comparability (single active user).
	return radio.LTEThroughputBps(dl.SNRdB(dKm), bw, true),
		radio.LTEThroughputBps(ul.SNRdB(dKm), bw, true)
}

// RunE6 sweeps throughput vs distance per technology and computes
// service ranges.
func RunE6(opt Options) (E6Result, error) {
	res := E6Result{RangeKm: map[string]float64{}}
	distances := []float64{0.5, 1, 2, 5, 10, 15, 20, 30}
	if opt.Quick {
		distances = []float64{1, 5, 15}
	}

	// Per-technology sweeps are independent pure computations; one job
	// per technology plus one for the HARQ ablation, rendered in sweep
	// order after the barrier.
	techs := e6Techs()
	type techOut struct {
		dl, ul    []float64 // per distance
		r512, r2m float64
	}
	outs := make([]techOut, len(techs))
	var harqGain float64
	err := forEachWorld(opt, len(techs)+1, func(i int) error {
		if i == len(techs) {
			// HARQ ablation: band-5 range with and without HARQ.
			dlLink := radio.Link{Tx: radio.LTEBaseStation, Rx: radio.LTEHandset, Band: radio.LTEBand5}
			withHARQ := radio.MaxRangeKm(func(d float64) float64 {
				return radio.LTEThroughputBps(dlLink.SNRdB(d), dlLink.Band.BandwidthHz(), true)
			}, 128e3, radio.LTETimingAdvanceMaxKm)
			withoutHARQ := radio.MaxRangeKm(func(d float64) float64 {
				return radio.LTEThroughputBps(dlLink.SNRdB(d), dlLink.Band.BandwidthHz(), false)
			}, 128e3, radio.LTETimingAdvanceMaxKm)
			harqGain = withHARQ - withoutHARQ
			return nil
		}
		tech := techs[i]
		o := techOut{dl: make([]float64, len(distances)), ul: make([]float64, len(distances))}
		for j, d := range distances {
			o.dl[j], o.ul[j] = e6Throughput(tech, d)
		}
		rangeAt := func(minBps float64) float64 {
			cap := radio.LTETimingAdvanceMaxKm
			if tech.pathCap > 0 {
				cap = tech.pathCap
			}
			return radio.MaxRangeKm(func(d float64) float64 {
				dl, _ := e6Throughput(tech, d)
				return dl
			}, minBps, cap)
		}
		o.r512 = rangeAt(512e3)
		o.r2m = rangeAt(2e6)
		outs[i] = o
		return nil
	})
	if err != nil {
		return res, err
	}

	t := metrics.NewTable("E6 — §3.2: throughput vs distance by technology",
		"technology", "km", "downlink Mbps", "uplink Mbps")
	for i, tech := range techs {
		for j, d := range distances {
			t.AddRow(tech.name, d, Mbps(outs[i].dl[j]), Mbps(outs[i].ul[j]))
		}
	}
	res.ThroughputTable = t

	rt := metrics.NewTable("E6b — service range (512 kbps / 2 Mbps downlink)",
		"technology", "512kbps range km", "2Mbps range km")
	for i, tech := range techs {
		res.RangeKm[tech.name] = outs[i].r512
		rt.AddRow(tech.name, outs[i].r512, outs[i].r2m)
	}
	res.HARQGainKm = harqGain
	rt.AddRow("LTE b5 HARQ gain (128 kbps edge)", res.HARQGainKm, "")
	res.RangeTable = rt
	opt.emit(t, rt)
	return res, nil
}
