package exp

import (
	"fmt"
	"time"

	"dlte/internal/baseline"
	"dlte/internal/metrics"
	"dlte/internal/phy"
	"dlte/internal/radio"
	"dlte/internal/simnet"
	"dlte/internal/x2"
)

// E1Result quantifies the paper's Table 1: the wireless design space
// along open-core and licensed-radio axes, with measured openness and
// measured radio performance for each architecture.
type E1Result struct {
	Table *metrics.Table
	// DLTEOpen reports whether a newcomer dLTE AP joined and served a
	// client with no operator action (must be true).
	DLTEOpen bool
	// TelecomOpen reports whether a rogue eNodeB could join the
	// closed core (must be false).
	TelecomOpen bool
	// DLTEAggMbps and WiFiAggMbps are 4-AP co-channel aggregate
	// throughputs under coordination vs CSMA.
	DLTEAggMbps, WiFiAggMbps float64
	// DLTERangeKm and WiFiRangeKm are 512 kbps service ranges.
	DLTERangeKm, WiFiRangeKm float64
}

// RunE1 measures the design-space quadrant (paper Table 1).
func RunE1(opt Options) (E1Result, error) {
	var res E1Result

	// --- Openness, dLTE: a newcomer AP joins the registry and serves
	// a client, with nobody's permission.
	s, aps, err := newDLTEWorld(1, 3, x2.ModeFairShare, opt.Seed, opt.Shards)
	if err != nil {
		return res, err
	}
	defer s.Close()
	newcomer, err := s.AddAP(coreAPConfig("newcomer", 3000))
	if err == nil {
		_, _, aerr := attachNewUE(s, newcomer, "ue-n", imsiFor(1, 1), 1)
		res.DLTEOpen = aerr == nil
	}
	_ = aps

	// --- Openness, telecom/private LTE: a rogue eNodeB is refused.
	n2 := simnet.NewVirtualNetwork(simnet.Link{Latency: 5 * time.Millisecond}, opt.Seed)
	defer n2.Close()
	telco, err := baseline.NewCentralized(n2, "telco", baseline.CentralizedConfig{
		TAC: 1, WANLink: simnet.Link{Latency: 5 * time.Millisecond},
	})
	if err != nil {
		return res, err
	}
	defer telco.Close()
	if _, err := telco.AddSite("authorized"); err != nil {
		return res, err
	}
	res.TelecomOpen = telco.TryRogueSite("rogue") == nil

	// --- Radio efficiency: 4 co-channel APs, coordinated (registry
	// TDM) vs CSMA, at equal PHY rate.
	const phyRate = 24e6
	var dcfStations []phy.DCFStation
	var tdmShares []phy.TDMShare
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("s%d", i)
		dcfStations = append(dcfStations, phy.DCFStation{ID: id, RateBps: phyRate, Saturated: true})
		tdmShares = append(tdmShares, phy.TDMShare{ID: id, RateBps: phyRate * phy.WiFiLikeMACFactor})
	}
	seconds := 1.0
	if opt.Quick {
		seconds = 0.3
	}
	dcf := phy.SimulateDCF(phy.DCFConfig{Stations: dcfStations, Seed: opt.Seed}, seconds)
	tdm := phy.SimulateTDM(tdmShares)
	res.WiFiAggMbps = Mbps(dcf.TotalBps)
	res.DLTEAggMbps = Mbps(tdm.TotalBps)

	// --- Range at 512 kbps.
	lteDL := radio.Link{Tx: radio.LTEBaseStation, Rx: radio.LTEHandset, Band: radio.LTEBand5}
	wifiDL := radio.Link{Tx: radio.WiFiAccessPoint, Rx: radio.WiFiClient, Band: radio.ISM24}
	const minBps = 512e3
	res.DLTERangeKm = radio.MaxRangeKm(func(d float64) float64 {
		return radio.LTEThroughputBps(lteDL.SNRdB(d), lteDL.Band.BandwidthHz(), true)
	}, minBps, radio.LTETimingAdvanceMaxKm)
	res.WiFiRangeKm = radio.MaxRangeKm(func(d float64) float64 {
		return radio.WiFiThroughputBps(wifiDL.SNRdB(d), d, radio.WiFiDefaultMaxRangeKm)
	}, minBps, radio.WiFiDefaultMaxRangeKm)

	t := metrics.NewTable("E1 — Table 1 measured: the wireless design space",
		"architecture", "open core", "licensed radio", "coordinated RF", "4-AP agg Mbps", "512kbps range km")
	t.AddRow("legacy WiFi", true, false, false, res.WiFiAggMbps, res.WiFiRangeKm)
	t.AddRow("enterprise WiFi", false, false, true, res.DLTEAggMbps, res.WiFiRangeKm)
	t.AddRow("private LTE", false, true, true, res.DLTEAggMbps, res.DLTERangeKm)
	t.AddRow("telecom LTE", res.TelecomOpen, true, true, res.DLTEAggMbps, res.DLTERangeKm)
	t.AddRow("dLTE", res.DLTEOpen, true, true, res.DLTEAggMbps, res.DLTERangeKm)
	res.Table = t
	opt.emit(t)
	return res, nil
}
