package exp

import (
	"fmt"

	"dlte/internal/metrics"
	"dlte/internal/mobility"
	"dlte/internal/phy"
	"dlte/internal/radio"
)

// E5Result quantifies §4.3's sharing claims: registry-coordinated
// fair-share achieves WiFi-like fairness far more efficiently than
// CSMA, rescues cell-edge users that uncoordinated (reuse-1) operation
// starves, and cooperative mode (joint assignment + load-proportional
// airtime) recovers aggregate throughput on top. Note the honest
// physics: uncoordinated reuse-1 can post the highest *total* when
// most clients sit close to their AP — coordination's win is fairness
// and the worst-served user, which is exactly the paper's claim.
type E5Result struct {
	Table         *metrics.Table
	AblationTable *metrics.Table
	// TotalMbps, Jain, and MinUserMbps (worst-served user) per mode.
	TotalMbps   map[string]float64
	Jain        map[string]float64
	MinUserMbps map[string]float64
	// TriggerEligible counts users whose RSRP geometry trips the
	// mobility plane's handover trigger (mobility.DefaultTrigger)
	// toward the neighbor cell. Cooperative mode reassigns on load as
	// well as signal, so its cross-AP handoff count can exceed this —
	// the delta is load balancing, not radio necessity.
	TriggerEligible int
}

// e5APSpacingM places the two co-channel APs close enough that their
// coverage overlaps heavily — the contention-domain situation §4.3
// coordinates. (With well-separated cells, frequency reuse 1 wins and
// no coordination is needed; E5's point is the overlapping case.)
const e5APSpacingM = 1500

// e5Positions / e5Homes lay out the 8 clients every E5 comparator
// shares (the LTE modes, the WiFi DCF baseline, and the mobility
// trigger audit): six ap1 clients spread from near the site out past
// the cell-edge midpoint, two ap2 clients (one comfortable, one at
// the edge).
var (
	e5Positions = []float64{150, 350, 500, 650, 750, 800, 1300, 780}
	e5Homes     = []int{0, 0, 0, 0, 0, 0, 1, 1}
)

// e5Geometry builds the canonical two-AP scenario: overlapping cells
// with clients spread through the shared corridor, load skewed toward
// ap1. SINRs are computed from the radio models for both interference
// regimes.
func e5Geometry() []phy.MultiUser {
	band := radio.LTEBand5
	apX := []float64{0, e5APSpacingM}
	mkUser := func(id string, x float64, home int) phy.MultiUser {
		u := phy.MultiUser{ID: id, Home: home,
			SINRInterfered: make([]float64, 2), SINROrthogonal: make([]float64, 2)}
		for c := 0; c < 2; c++ {
			dKm := abs(x-apX[c]) / 1000
			link := radio.Link{Tx: radio.LTEBaseStation, Rx: radio.LTEHandset, Band: band}
			u.SINROrthogonal[c] = link.SNRdB(dKm)
			// Interference from the other cell transmitting at full
			// power.
			other := 1 - c
			iLink := radio.Link{Tx: radio.LTEBaseStation, Rx: radio.LTEHandset, Band: band}
			iPow := iLink.RxPowerDBm(abs(x-apX[other]) / 1000)
			u.SINRInterfered[c] = link.SINRdB(dKm, iPow)
		}
		return u
	}
	var users []phy.MultiUser
	for i, x := range e5Positions {
		id := fmt.Sprintf("a%d", i)
		if e5Homes[i] == 1 {
			id = fmt.Sprintf("b%d", i-6)
		}
		users = append(users, mkUser(id, x, e5Homes[i]))
	}
	return users
}

// e5TriggerEligible audits the same geometry through the mobility
// plane's production handover policy: per-user RSRP toward each AP
// from the radio model, decision by mobility.BestCell +
// mobility.DefaultTrigger — the exact seam the live mobility.Plane
// and E11's scenario compiler evaluate.
func e5TriggerEligible() int {
	band := radio.LTEBand5
	apX := []float64{0, e5APSpacingM}
	trig := mobility.DefaultTrigger()
	n := 0
	for i, x := range e5Positions {
		rsrp := make([]float64, 2)
		for c := 0; c < 2; c++ {
			link := radio.Link{Tx: radio.LTEBaseStation, Rx: radio.LTEHandset, Band: band}
			rsrp[c] = link.RxPowerDBm(abs(x-apX[c]) / 1000)
		}
		serving := e5Homes[i]
		if best := mobility.BestCell(rsrp); best != serving && trig.Decide(rsrp[serving], rsrp[best]) {
			n++
		}
	}
	return n
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// RunE5 compares spectrum sharing modes on one contention domain.
func RunE5(opt Options) (E5Result, error) {
	res := E5Result{TotalMbps: map[string]float64{}, Jain: map[string]float64{}, MinUserMbps: map[string]float64{}}
	users := e5Geometry()
	res.TriggerEligible = e5TriggerEligible()
	ttis := 2000
	dcfSeconds := 1.0
	if opt.Quick {
		ttis = 500
		dcfSeconds = 0.3
	}

	t := metrics.NewTable("E5 — §4.3: spectrum sharing modes (2 overlapping APs, 8 clients)",
		"mode", "total Mbps", "min-user Mbps", "Jain fairness", "cross-AP handoffs")

	record := func(name string, total float64, vals []float64, handoffs int) {
		j := metrics.JainIndex(vals)
		min := 0.0
		if len(vals) > 0 {
			min = vals[0]
			for _, v := range vals {
				if v < min {
					min = v
				}
			}
		}
		res.TotalMbps[name] = Mbps(total)
		res.Jain[name] = j
		res.MinUserMbps[name] = Mbps(min)
		t.AddRow(name, Mbps(total), Mbps(min), j, handoffs)
	}

	// The comparison points are independent simulations over a shared
	// read-only geometry; run all eight concurrently and record rows
	// in sweep order after the barrier. Slots 0–3 feed the main table
	// (WiFi DCF + three LTE modes), 4–7 the ablations.
	modes := []phy.MultiCellMode{phy.Uncoordinated, phy.FairShare, phy.Cooperative}
	schedulers := []phy.LTEScheduler{&phy.RoundRobin{}, phy.ProportionalFair{}, phy.MaxRate{}}
	type simOut struct {
		total    float64
		vals     []float64
		handoffs int
	}
	outs := make([]simOut, 4+1+len(schedulers))
	err := forEachWorld(opt, len(outs), func(i int) error {
		switch {
		case i == 0:
			// Legacy WiFi comparator: the same 8 clients contend via
			// CSMA on ISM spectrum (rates from WiFi SINR at their
			// positions, capped by association range).
			var stations []phy.DCFStation
			var wifiDead int
			for j, u := range users {
				apX := float64(e5Homes[j]) * e5APSpacingM
				dKm := abs(e5Positions[j]-apX) / 1000
				wl := radio.Link{Tx: radio.WiFiAccessPoint, Rx: radio.WiFiClient, Band: radio.ISM24}
				rate, _ := radio.WiFiRate(wl.SNRdB(dKm))
				if dKm > radio.WiFiDefaultMaxRangeKm {
					rate = 0
				}
				if rate == 0 {
					wifiDead++
					continue
				}
				stations = append(stations, phy.DCFStation{ID: u.ID, RateBps: rate, Saturated: true})
			}
			dcf := phy.SimulateDCF(phy.DCFConfig{Stations: stations, Seed: opt.Seed}, dcfSeconds)
			var wifiVals []float64
			for _, v := range dcf.PerStationBps {
				wifiVals = append(wifiVals, v)
			}
			for j := 0; j < wifiDead; j++ {
				wifiVals = append(wifiVals, 0) // out-of-range clients get nothing
			}
			outs[i] = simOut{total: dcf.TotalBps, vals: wifiVals}
		case i <= 3:
			// LTE modes over the multi-cell simulator.
			r := phy.SimulateMultiCell(phy.MultiCellConfig{
				NumCells: 2, ChannelMHz: 10, Mode: modes[i-1],
				TTIs: ttis, HARQ: true, FastFading: true, Seed: opt.Seed,
			}, users)
			var vals []float64
			for _, v := range r.PerUserBps {
				vals = append(vals, v)
			}
			outs[i] = simOut{total: r.TotalBps, vals: vals, handoffs: r.Handovers}
		case i == 4:
			// Ablation (DESIGN.md §4): equal vs load-proportional
			// cooperative shares.
			coopEq := phy.SimulateMultiCell(phy.MultiCellConfig{
				NumCells: 2, ChannelMHz: 10, Mode: phy.FairShare, // equal shares
				TTIs: ttis, HARQ: true, FastFading: true, Seed: opt.Seed,
			}, reassignToBest(users))
			var eqVals []float64
			for _, v := range coopEq.PerUserBps {
				eqVals = append(eqVals, v)
			}
			outs[i] = simOut{total: coopEq.TotalBps, vals: eqVals}
		default:
			// Ablation: scheduler choice within a cell.
			var cellUsers []phy.LTEUser
			for _, u := range users {
				if u.Home == 0 {
					cellUsers = append(cellUsers, phy.LTEUser{ID: u.ID, SINRdB: u.SINROrthogonal[0]})
				}
			}
			r := phy.SimulateLTECell(phy.LTECellConfig{
				ChannelMHz: 10, Scheduler: schedulers[i-5], HARQ: true, FastFading: true, Seed: opt.Seed,
			}, cellUsers, ttis)
			var vals []float64
			for _, v := range r.PerUserBps {
				vals = append(vals, v)
			}
			outs[i] = simOut{total: r.TotalBps, vals: vals}
		}
		return nil
	})
	if err != nil {
		return res, err
	}

	record("legacy WiFi (CSMA)", outs[0].total, outs[0].vals, 0)
	for mi, mode := range modes {
		name := "dLTE " + mode.String()
		if mode == phy.Uncoordinated {
			name = "selfish LTE (no coordination)"
		}
		o := outs[1+mi]
		record(name, o.total, o.vals, o.handoffs)
	}
	res.Table = t

	at := metrics.NewTable("E5b — ablations",
		"variant", "total Mbps", "Jain fairness")
	at.AddRow("cooperative assignment + equal shares", Mbps(outs[4].total), metrics.JainIndex(outs[4].vals))
	for si, sched := range schedulers {
		o := outs[5+si]
		at.AddRow("single cell, "+sched.Name(), Mbps(o.total), metrics.JainIndex(o.vals))
	}
	res.AblationTable = at
	opt.emit(t, at)
	return res, nil
}

// reassignToBest pins each user to the cell the mobility plane would
// pick — mobility.BestCell over the orthogonal-SINR vector — so the
// ablation isolates share policy from assignment under the production
// selection logic. (Identical to phy's internal strongest-cell fallback
// for unpinned users, but the decision now lives in one place.)
func reassignToBest(users []phy.MultiUser) []phy.MultiUser {
	out := make([]phy.MultiUser, len(users))
	copy(out, users)
	for i := range out {
		out[i].Home = mobility.BestCell(out[i].SINROrthogonal)
	}
	return out
}
