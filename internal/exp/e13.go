package exp

import (
	"fmt"
	"runtime"
	"time"

	"dlte/internal/enb"
	"dlte/internal/metrics"
	"dlte/internal/simnet"
	"dlte/internal/ue"
	"dlte/internal/x2"
)

// E13 — million-UE attach-and-idle worlds (DESIGN.md §11). The paper's
// premise is per-AP cores cheap enough to deploy like WiFi; the
// corresponding scaling question for the *population* is how much a
// network pays to keep a registered-but-quiescent subscriber. E13
// builds a world of up to a million compact UEs — each a
// struct-of-arrays slot (ue.IdlePool) plus one timer parked in the
// hierarchical timing wheel — spread over fixed regions drained by a
// simnet.ShardedScheduler. Every UE attaches (modeled latency), then
// idles with periodic tracking-area updates; a handful later see real
// activity and are promoted through the full Device/EPC stack.
//
// Determinism: the printed table is byte-identical at any Parallelism
// or Shards. The region count is a constant (regions are a modeling
// unit; Shards only sets how many OS threads drain them), every per-UE
// quantity is a pure function of (seed, global index), cross-region
// aggregates are commutative sums, and the promotion log is merged
// with simnet.MergeRegions before it touches output. Wall time and
// events/sec are real-CPU measurements and therefore live only in
// E13Result, never in the rendered table.

// E13Result carries the rendered table plus the real-CPU throughput
// numbers (benchmark food, not table food).
type E13Result struct {
	Table *metrics.Table
	// BytesPerUE is the accounted steady-state cost of one idle UE:
	// its SoA slot plus its parked wheel timer. A constant of the
	// representation, independent of population, regions, or shards.
	BytesPerUE int
	// EventsByUEs / TAUByUEs / PromotedByUEs are deterministic world
	// outcomes by population size.
	EventsByUEs   map[int]uint64
	TAUByUEs      map[int]uint64
	PromotedByUEs map[int]int
	// WallByUEs / EventsPerSecByUEs are real-CPU measurements.
	WallByUEs         map[int]time.Duration
	EventsPerSecByUEs map[int]float64
}

// E13 world shape. The region count is part of the model (like a cell
// plan), not a performance knob: changing it would re-partition UEs
// and must not be conflated with -shards, which only picks how many
// OS threads drain the fixed regions.
const (
	e13Regions    = 64
	e13Window     = 250 * time.Millisecond
	e13TAC        = 13
	e13Promotions = 4

	// Per-UE timeline, jittered per UE from (seed, global index):
	// attach requests stagger over a window, complete after a modeled
	// signaling latency, then idle-mode TAUs tick until the horizon.
	e13AttachStart  = 1 * time.Second
	e13AttachSpread = 4 * time.Second
	e13AttachBase   = 15 * time.Millisecond
	e13AttachJitter = 20 * time.Millisecond
	e13TAUBase      = 22 * time.Second
	e13TAUJitter    = 16 * time.Second
	// Promotions fire near e13Activity (spaced 1 ms apart so the
	// merged log has a stable order even if two land in one region).
	e13Activity = 100 * time.Second
	e13Horizon  = 150 * time.Second
)

// Event kinds, packed into the wheel's uint64 arg next to the slot
// index: kind in the top two bits, region-local slot index below.
const (
	e13KindStart = iota
	e13KindDone
	e13KindTAU
	e13KindActivity
)

func e13Arg(kind uint64, l int) uint64 { return kind<<62 | uint64(l) }

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed pure
// hash, so per-UE draws depend only on (seed, global index) and never
// on region boundaries or firing order.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// e13UE is one UE's drawn timeline and identity. Never stored — worlds
// recompute it on demand (a few multiplies) precisely so a million
// idle UEs cost slots and timers, not cached profiles.
type e13UE struct {
	start   time.Duration // attach request instant
	latency time.Duration // modeled attach signaling latency
	period  time.Duration // idle-mode TAU period
	guti    uint64
	ip      uint32
}

func e13Draw(seed int64, gi int) e13UE {
	h := splitmix64(uint64(seed) ^ 0xD1B54A32D192ED03)
	h = splitmix64(h ^ uint64(gi))
	h1 := splitmix64(h)
	h2 := splitmix64(h1)
	h3 := splitmix64(h2)
	return e13UE{
		start:   e13AttachStart + time.Duration(h%uint64(e13AttachSpread)),
		latency: e13AttachBase + time.Duration(h1%uint64(e13AttachJitter)),
		period:  e13TAUBase + time.Duration(h2%uint64(e13TAUJitter)),
		guti:    h3,
		ip:      uint32(h3 >> 32),
	}
}

// e13Promo is one promotion-log record; merged across regions by
// (at, gi) — gi doubles as the merge seq since promotion instants are
// unique per UE.
type e13Promo struct {
	at  time.Duration
	gi  uint64
	rec ue.PromoteRecord
}

// e13Region owns one wheel, one IdlePool, and one cell's counters.
// Inside a barrier window it touches nothing outside its own slots —
// the cells pool is shared but indexed by region, which is exactly the
// commutative-aggregation pattern ShardedScheduler permits.
type e13Region struct {
	idx    int
	base   int // global index of local slot 0
	count  int
	seed   int64
	sch    *simnet.Scheduler
	pool   *ue.IdlePool
	cells  *enb.CellPool
	events uint64
	promos []e13Promo
}

func (r *e13Region) handle(arg uint64) {
	r.events++
	l := int(arg &^ (uint64(3) << 62))
	now := r.sch.Now()
	switch arg >> 62 {
	case e13KindStart:
		r.pool.StartAttach(l)
		r.sch.AtIndexed(now+e13Draw(r.seed, r.base+l).latency, e13Arg(e13KindDone, l))
	case e13KindDone:
		u := e13Draw(r.seed, r.base+l)
		r.pool.Register(l, u.guti, u.ip)
		r.cells.Attach(r.idx)
		r.sch.AtIndexed(now+u.period, e13Arg(e13KindTAU, l))
	case e13KindTAU:
		// A promoted (or released) slot's parked timer dies here: the
		// full Device owns the endpoint now.
		if r.pool.State(l) != ue.IdleAttached {
			return
		}
		r.pool.TrackingAreaUpdate(l)
		r.cells.TrackingAreaUpdate(r.idx)
		r.sch.AtIndexed(now+e13Draw(r.seed, r.base+l).period, e13Arg(e13KindTAU, l))
	case e13KindActivity:
		if r.pool.State(l) != ue.IdleAttached {
			return
		}
		r.promos = append(r.promos, e13Promo{
			at: now, gi: uint64(r.base + l), rec: r.pool.Promote(l),
		})
	}
}

// e13World is the compact attach-and-idle world: n UEs block-
// partitioned over e13Regions wheels.
type e13World struct {
	n       int
	seed    int64
	ss      *simnet.ShardedScheduler
	regions []*e13Region
	cells   *enb.CellPool
}

func newE13World(seed int64, n, workers int) *e13World {
	if workers == 0 {
		workers = runtime.NumCPU() // match the Options.Shards convention
	}
	w := &e13World{
		n: n, seed: seed,
		ss:    simnet.NewShardedScheduler(e13Regions, e13Window, workers),
		cells: enb.NewCellPool(e13Regions, 1, e13TAC),
	}
	q, rem := n/e13Regions, n%e13Regions
	base := 0
	for r := 0; r < e13Regions; r++ {
		count := q
		if r < rem {
			count++
		}
		reg := &e13Region{
			idx: r, base: base, count: count, seed: seed,
			sch: w.ss.Region(r), pool: ue.NewIdlePool(count), cells: w.cells,
		}
		reg.sch.OnIndexed = reg.handle
		w.regions = append(w.regions, reg)
		base += count
	}
	return w
}

// regionOf finds the region owning global index gi under the block
// partition.
func (w *e13World) regionOf(gi int) *e13Region {
	for _, reg := range w.regions {
		if gi < reg.base+reg.count {
			return reg
		}
	}
	return w.regions[len(w.regions)-1]
}

// start allocates every slot and parks each UE's first event plus the
// activity events for the UEs that will be promoted.
func (w *e13World) start() error {
	for _, reg := range w.regions {
		for l := 0; l < reg.count; l++ {
			if _, ok := reg.pool.Alloc(); !ok {
				return fmt.Errorf("e13: region %d pool exhausted at %d", reg.idx, l)
			}
			reg.sch.AtIndexed(e13Draw(reg.seed, reg.base+l).start, e13Arg(e13KindStart, l))
		}
	}
	for k := 0; k < e13Promotions && k < w.n; k++ {
		gi := k * w.n / e13Promotions // spread across the population
		reg := w.regionOf(gi)
		reg.sch.AtIndexed(e13Activity+time.Duration(k)*time.Millisecond,
			e13Arg(e13KindActivity, gi-reg.base))
	}
	return nil
}

// run drains every region to the horizon.
func (w *e13World) run() { w.ss.RunUntil(e13Horizon, nil) }

// totalEvents sums per-region event counts (commutative; worker-order
// invariant).
func (w *e13World) totalEvents() uint64 {
	var n uint64
	for _, reg := range w.regions {
		n += reg.events
	}
	return n
}

// mergedPromos is the global promotion log in (at, gi) order.
func (w *e13World) mergedPromos() []e13Promo {
	parts := make([][]e13Promo, len(w.regions))
	for i, reg := range w.regions {
		parts[i] = reg.promos
	}
	return simnet.MergeRegions(parts, func(p e13Promo) (time.Duration, uint64) {
		return p.at, p.gi
	})
}

// verify checks the world's end-state invariants: every UE attached,
// every slot still live (promotion holds the slot), counters balanced.
func (w *e13World) verify() error {
	live := 0
	for _, reg := range w.regions {
		live += reg.pool.Live()
	}
	if live != w.n {
		return fmt.Errorf("e13: %d live slots, want %d", live, w.n)
	}
	if got := w.cells.TotalAttached(); got != uint64(w.n) {
		return fmt.Errorf("e13: %d attaches completed, want %d", got, w.n)
	}
	return nil
}

type e13Point struct {
	n                    int
	attachP50, attachP99 float64 // modeled, ms
	tau, events          uint64
	promoted             int
	promoP50             float64 // real-stack re-attach, ms
	wall                 time.Duration
}

func e13Sizes(opt Options) []int {
	if opt.UEs > 0 {
		return []int{opt.UEs}
	}
	if opt.Quick {
		return []int{2_000, 10_000}
	}
	return []int{100_000, 1_000_000}
}

func runE13World(seed int64, n int, opt Options) (e13Point, error) {
	p := e13Point{n: n}
	w := newE13World(seed, n, opt.Shards)
	t0 := time.Now()
	if err := w.start(); err != nil {
		return p, err
	}
	w.run()
	p.wall = time.Since(t0)
	if err := w.verify(); err != nil {
		return p, err
	}
	p.tau = w.cells.TotalTAU()
	p.events = w.totalEvents()

	// Modeled attach latency, recomputed in global-index order so the
	// quantiles cannot depend on the region partition.
	h := metrics.NewHistogram()
	for gi := 0; gi < n; gi++ {
		h.Observe(ms(e13Draw(seed, gi).latency))
	}
	p.attachP50, p.attachP99 = h.Quantile(0.5), h.Quantile(0.99)

	// Replay the merged promotion log through the real stack: each
	// promoted UE becomes a full Device attaching through an actual
	// AP/core — the compact world's exit ramp, measured end to end.
	promos := w.mergedPromos()
	p.promoted = len(promos)
	s, aps, err := newDLTEWorld(1, 1.0, x2.ModeFairShare, seed, opt.Shards)
	if err != nil {
		return p, err
	}
	defer s.Close()
	ph := metrics.NewHistogram()
	for _, pr := range promos {
		name := fmt.Sprintf("pue%d", pr.gi)
		d, ar, aerr := attachNewUE(s, aps[0], name, imsiFor(13, int(pr.gi)), 0.4)
		if aerr != nil {
			return p, fmt.Errorf("e13: promote gi=%d: %w", pr.gi, aerr)
		}
		ph.Observe(ms(ar.Duration))
		d.Close()
	}
	p.promoP50 = ph.Quantile(0.5)
	return p, nil
}

// RunE13 sweeps population sizes (or runs the single opt.UEs world).
// Each size is an independent world, run concurrently under
// opt.Parallelism and rendered in index order.
func RunE13(opt Options) (E13Result, error) {
	sizes := e13Sizes(opt)
	res := E13Result{
		BytesPerUE:        ue.IdleSlotBytes + simnet.EventBytes,
		EventsByUEs:       map[int]uint64{},
		TAUByUEs:          map[int]uint64{},
		PromotedByUEs:     map[int]int{},
		WallByUEs:         map[int]time.Duration{},
		EventsPerSecByUEs: map[int]float64{},
	}
	pts := make([]e13Point, len(sizes))
	err := forEachWorld(opt, len(sizes), func(i int) error {
		p, e := runE13World(opt.Seed+int64(i)*1000, sizes[i], opt)
		pts[i] = p
		return e
	})
	if err != nil {
		return res, err
	}

	t := metrics.NewTable("E13 — million-UE attach-and-idle world (compact SoA endpoints, region wheels)",
		"UEs", "B/idle-UE", "attach p50 ms", "attach p99 ms", "TAU fires", "events", "promoted", "promo attach p50 ms")
	for _, p := range pts {
		t.AddRow(p.n, res.BytesPerUE,
			fmt.Sprintf("%.1f", p.attachP50), fmt.Sprintf("%.1f", p.attachP99),
			p.tau, p.events, p.promoted, fmt.Sprintf("%.1f", p.promoP50))
		res.EventsByUEs[p.n] = p.events
		res.TAUByUEs[p.n] = p.tau
		res.PromotedByUEs[p.n] = p.promoted
		res.WallByUEs[p.n] = p.wall
		if p.wall > 0 {
			res.EventsPerSecByUEs[p.n] = float64(p.events) / p.wall.Seconds()
		}
	}
	res.Table = t
	opt.emit(t)
	return res, nil
}
