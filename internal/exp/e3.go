package exp

import (
	"fmt"
	"sync"
	"time"

	"dlte/internal/baseline"
	"dlte/internal/core"
	"dlte/internal/geo"
	"dlte/internal/metrics"
	"dlte/internal/radio"
	"dlte/internal/simnet"
	"dlte/internal/ue"
	"dlte/internal/x2"
)

// E3Result quantifies §4.1's scaling claim: one stub per AP scales
// naturally with AP count, while a shared centralized EPC's signaling
// processor saturates.
type E3Result struct {
	Table *metrics.Table
	// ProcTable is the E3b sweep: the centralized core at MaxAPs with a
	// sharded MME serving 1, 4, and 8 signaling messages in parallel.
	ProcTable *metrics.Table
	// P99ByArch maps "dlte"/"central" → AP count → p99 attach ms.
	P99ByArch map[string]map[int]float64
	// ShardedP99ByProcs maps signaling-processor count → p99 attach ms
	// for the centralized core at MaxAPs (the E3b sweep).
	ShardedP99ByProcs map[int]float64
	// Largest N swept.
	MaxAPs int
}

// e3ProcDelay is the modeled per-message core processing time; both
// architectures get identical processors — dLTE just has one per AP.
const e3ProcDelay = 2 * time.Millisecond

// uesPerAP is the attach-storm size per site.
const uesPerAP = 3

// e3ProcSweep is the E3b signaling-processor counts swept on the
// centralized core at MaxAPs. K=1 is the classic single-threaded MME;
// larger K models a sharded MME draining K messages concurrently.
var e3ProcSweep = []int{1, 4, 8}

// RunE3 runs simultaneous attach storms against dLTE stubs and a
// shared centralized EPC at increasing AP counts, then sweeps the
// centralized core's signaling-processor count at the largest storm
// (E3b): sharding the MME recovers some headroom, but the shared core
// remains the serialization point dLTE removes entirely.
func RunE3(opt Options) (E3Result, error) {
	res := E3Result{
		P99ByArch:         map[string]map[int]float64{"dlte": {}, "central": {}},
		ShardedP99ByProcs: map[int]float64{},
	}
	apCounts := []int{1, 2, 4, 8}
	if opt.Quick {
		apCounts = []int{1, 4}
	}
	res.MaxAPs = apCounts[len(apCounts)-1]

	t := metrics.NewTable("E3 — §4.1: local-core scaling under attach storms",
		"architecture", "APs", "UEs", "attach p50 ms", "attach p99 ms", "core msgs")

	// Each (architecture, AP count) point is an independent world, and
	// so is each E3b processor count; run them all concurrently and
	// render rows index-ordered afterwards. Index layout:
	// [0, len(apCounts)) dLTE storms, [len, 2*len) central storms,
	// [2*len, 2*len+len(e3ProcSweep)) E3b processor sweep at MaxAPs.
	type point struct {
		p50, p99 float64
		msgs     uint64
	}
	pts := make([]point, 2*len(apCounts)+len(e3ProcSweep))
	err := forEachWorld(opt, len(pts), func(i int) error {
		var (
			p point
			e error
		)
		switch {
		case i < len(apCounts):
			nAP := apCounts[i]
			p.p50, p.p99, p.msgs, e = runDLTEStorm(nAP, opt.Seed, opt.Shards)
			if e != nil {
				return fmt.Errorf("E3 dlte n=%d: %w", nAP, e)
			}
		case i < 2*len(apCounts):
			nAP := apCounts[i-len(apCounts)]
			p.p50, p.p99, p.msgs, e = runCentralStorm(nAP, opt.Seed, opt.Shards, 1)
			if e != nil {
				return fmt.Errorf("E3 central n=%d: %w", nAP, e)
			}
		default:
			procs := e3ProcSweep[i-2*len(apCounts)]
			p.p50, p.p99, p.msgs, e = runCentralStorm(res.MaxAPs, opt.Seed, opt.Shards, procs)
			if e != nil {
				return fmt.Errorf("E3b central k=%d: %w", procs, e)
			}
		}
		pts[i] = p
		return nil
	})
	if err != nil {
		return res, err
	}
	for i, nAP := range apCounts {
		res.P99ByArch["dlte"][nAP] = pts[i].p99
		t.AddRow("dLTE stubs", nAP, nAP*uesPerAP, pts[i].p50, pts[i].p99, pts[i].msgs)
	}
	for i, nAP := range apCounts {
		p := pts[len(apCounts)+i]
		res.P99ByArch["central"][nAP] = p.p99
		t.AddRow("telecom LTE", nAP, nAP*uesPerAP, p.p50, p.p99, p.msgs)
	}
	res.Table = t

	pt := metrics.NewTable("E3b — sharded MME: attach storm vs signaling processors",
		"architecture", "signaling procs", "APs", "UEs", "attach p50 ms", "attach p99 ms")
	for i, procs := range e3ProcSweep {
		p := pts[2*len(apCounts)+i]
		res.ShardedP99ByProcs[procs] = p.p99
		pt.AddRow("telecom LTE (sharded MME)", procs, res.MaxAPs, res.MaxAPs*uesPerAP, p.p50, p.p99)
	}
	// The comparison row: dLTE at the same storm size, where every AP
	// is its own core and the latency floor needs no provisioning.
	pt.AddRow("dLTE stubs", res.MaxAPs, res.MaxAPs, res.MaxAPs*uesPerAP,
		pts[len(apCounts)-1].p50, pts[len(apCounts)-1].p99)
	res.ProcTable = pt
	opt.emit(t, pt)
	return res, nil
}

// runDLTEStorm attaches uesPerAP UEs at each of nAP independent stub
// APs simultaneously. Each stub carries exactly the same per-message
// processing cost as the centralized core — the only difference under
// test is that dLTE has one processor per site instead of one shared.
func runDLTEStorm(nAP int, seed int64, shards int) (p50, p99 float64, coreMsgs uint64, err error) {
	s, err := core.NewScenario(defaultWAN, seed)
	if err != nil {
		return 0, 0, 0, err
	}
	defer s.Close()
	aps := make([]*core.AccessPoint, 0, nAP)
	for i := 0; i < nAP; i++ {
		ap, aerr := s.AddAP(core.APConfig{
			ID:       fmt.Sprintf("ap%d", i+1),
			Position: geo.Pt(float64(i)*3000, 0),
			Band:     radio.LTEBand5, HeightM: 20, EIRPdBm: 58,
			Mode: x2.ModeFairShare, TAC: uint16(i + 1),
			ProcessingDelay: e3ProcDelay,
			Shards:          shards,
		})
		if aerr != nil {
			return 0, 0, 0, aerr
		}
		aps = append(aps, ap)
	}
	hist := metrics.NewHistogram()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, ap := range aps {
		// Pre-provision all this AP's subscribers (published keys).
		devices := make([]*ue.Device, 0, uesPerAP)
		for j := 0; j < uesPerAP; j++ {
			name := fmt.Sprintf("ue-%d-%d", i, j)
			d, derr := s.AddUE(name, imsiFor(3, i*100+j))
			if derr != nil {
				return 0, 0, 0, derr
			}
			if cerr := s.ConnectUERadio(name, ap.ID(), ap.Position().Add(1000, 0)); cerr != nil {
				return 0, 0, 0, cerr
			}
			devices = append(devices, d)
		}
		if _, kerr := ap.SyncSubscriberKeys(); kerr != nil {
			return 0, 0, 0, kerr
		}
		for _, d := range devices {
			wg.Add(1)
			d := d
			ap := ap
			s.Clock().Go(func() {
				defer wg.Done()
				r, aerr := d.Attach(ap.AirAddr(), 60*time.Second)
				mu.Lock()
				defer mu.Unlock()
				if aerr != nil && firstErr == nil {
					firstErr = aerr
					return
				}
				hist.ObserveDuration(r.Duration)
			})
		}
	}
	clk := s.Clock()
	clk.Block()
	wg.Wait()
	clk.Unblock()
	if firstErr != nil {
		return 0, 0, 0, firstErr
	}
	// Attach() returns when the UE sends its fire-and-forget
	// AttachComplete; drain until every core has processed its last one
	// so the message count is a complete, deterministic total rather
	// than a racy snapshot.
	for {
		var attaches uint64
		for _, ap := range aps {
			attaches += ap.Core.Stats().Attaches
		}
		if attaches >= uint64(nAP*uesPerAP) {
			break
		}
		clk.Sleep(time.Millisecond)
	}
	var msgs uint64
	for _, ap := range aps {
		msgs += ap.Core.Stats().SignalingMessages
	}
	return hist.Quantile(0.5), hist.Quantile(0.99), msgs, nil
}

// runCentralStorm attaches the same UE population through one shared
// EPC whose signaling processor costs e3ProcDelay per message; procs
// is the modeled number of parallel signaling processors (1 = the
// classic single-threaded MME, >1 = E3b's sharded MME).
func runCentralStorm(nAP int, seed int64, shards, procs int) (p50, p99 float64, coreMsgs uint64, err error) {
	n := simnet.NewVirtualNetwork(simnet.Link{Latency: 10 * time.Millisecond}, seed)
	defer n.Close()
	central, err := baseline.NewCentralized(n, "epc", baseline.CentralizedConfig{
		TAC:                 1,
		WANLink:             simnet.Link{Latency: 10 * time.Millisecond},
		ProcessingDelay:     e3ProcDelay,
		SignalingProcessors: procs,
		Shards:              shards,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer central.Close()

	type site struct{ air string }
	sites := make([]site, 0, nAP)
	for i := 0; i < nAP; i++ {
		e, serr := central.AddSite(fmt.Sprintf("cell%d", i))
		if serr != nil {
			return 0, 0, 0, serr
		}
		sites = append(sites, site{air: e.AirAddr()})
	}

	hist := metrics.NewHistogram()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := range sites {
		for j := 0; j < uesPerAP; j++ {
			imsi := imsiFor(4, i*100+j)
			sim, serr := newProvisionedSIM(central, imsi)
			if serr != nil {
				return 0, 0, 0, serr
			}
			host, herr := n.AddHost(fmt.Sprintf("ue-%d-%d", i, j))
			if herr != nil {
				return 0, 0, 0, herr
			}
			n.SetLink(host.Name(), fmt.Sprintf("cell%d", i), simnet.Link{Latency: 5 * time.Millisecond})
			d, derr := ue.NewDevice(host, sim)
			if derr != nil {
				return 0, 0, 0, derr
			}
			air := sites[i].air
			wg.Add(1)
			n.Clock().Go(func() {
				defer wg.Done()
				r, aerr := d.Attach(air, 120*time.Second)
				mu.Lock()
				defer mu.Unlock()
				if aerr != nil && firstErr == nil {
					firstErr = aerr
					return
				}
				hist.ObserveDuration(r.Duration)
			})
		}
	}
	clk := n.Clock()
	clk.Block()
	wg.Wait()
	clk.Unblock()
	if firstErr != nil {
		return 0, 0, 0, firstErr
	}
	// Same drain as the dLTE storm: the last AttachComplete per UE is
	// still in flight when Attach() returns.
	for central.Core.Stats().Attaches < uint64(nAP*uesPerAP) {
		clk.Sleep(time.Millisecond)
	}
	return hist.Quantile(0.5), hist.Quantile(0.99), central.Core.Stats().SignalingMessages, nil
}
