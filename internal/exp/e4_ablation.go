package exp

import (
	"fmt"
	"time"

	"dlte/internal/metrics"
	"dlte/internal/simnet"
	"dlte/internal/transport"
	"dlte/internal/x2"
)

// RunE4Ablation isolates how much of §4.2's mobility story each
// transport feature buys: connection migration (sockets survive),
// 0-RTT resumption (reconnect without handshake round trips), and the
// plain 2-RTT reconnect. The paper's argument is precisely that
// "current-generation transport protocols make this approach more
// feasible than it was in the past" — this ablation prices each
// generation.
func RunE4Ablation(opt Options) (*metrics.Table, error) {
	ottRTT := 100
	if opt.Quick {
		ottRTT = 50
	}
	t := metrics.NewTable("E4c — ablation: which transport feature carries the mobility story?",
		"reconnect strategy", "OTT one-way ms", "roam disruption ms")

	// The three strategies are independent worlds; run them
	// concurrently with their original derived seeds.
	var disruption [3]float64
	err := forEachWorld(opt, 3, func(i int) error {
		switch i {
		case 0:
			mig, e := runRoam(opt.Seed+11, ottRTT, transport.Migratory, opt.Shards)
			if e != nil {
				return fmt.Errorf("migration: %w", e)
			}
			disruption[0] = mig.disruptionMs
		case 1:
			zero, e := runResumeRoam(opt.Seed+12, ottRTT, true, opt.Shards)
			if e != nil {
				return fmt.Errorf("0-RTT resume: %w", e)
			}
			disruption[1] = zero
		case 2:
			leg, e := runRoam(opt.Seed+13, ottRTT, transport.Legacy, opt.Shards)
			if e != nil {
				return fmt.Errorf("legacy: %w", e)
			}
			disruption[2] = leg.disruptionMs
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("connection migration (QUIC-style)", ottRTT, disruption[0])
	t.AddRow("close + 0-RTT resume (session ticket)", ottRTT, disruption[1])
	t.AddRow("close + full 2-RTT reconnect (TCP+TLS-style)", ottRTT, disruption[2])

	opt.emit(t)
	return t, nil
}

// runResumeRoam roams with an explicit close-and-resume instead of
// migration: the client tears its session down at the roam and
// reopens it with the resume token (0-RTT when resume is true).
func runResumeRoam(seed int64, ottOneWayMs int, resume bool, shards int) (float64, error) {
	s, aps, err := newDLTEWorld(2, 3, x2.ModeCooperative, seed, shards)
	if err != nil {
		return 0, err
	}
	defer s.Close()
	for _, ap := range []string{"ap1", "ap2"} {
		s.Net.SetLink(ap, "ott", simnet.Link{Latency: time.Duration(ottOneWayMs) * time.Millisecond})
	}
	ottHost, _ := s.Net.Host("ott")
	pc, err := ottHost.ListenPacket(7000)
	if err != nil {
		return 0, err
	}
	srv := transport.NewServer(pc, transport.ServerConfig{
		Mode: transport.Migratory,
		Handler: func(ss *transport.ServerSession) {
			for {
				b, rerr := ss.Recv(10 * time.Second)
				if rerr != nil {
					return
				}
				if ss.Send(b) != nil {
					return
				}
			}
		},
	})
	defer srv.Close()

	d, _, err := attachNewUE(s, aps[0], "roamer", imsiFor(6, int(seed%1000)), 1)
	if err != nil {
		return 0, err
	}
	if err := s.ConnectUERadio("roamer", "ap2", aps[0].Position().Add(1000, 0)); err != nil {
		return 0, err
	}
	if _, err := aps[1].SyncSubscriberKeys(); err != nil {
		return 0, err
	}

	cli, err := transport.Dial(d.Bearer(), simnet.Addr{Host: "ott", Port: 7000},
		transport.DialConfig{Mode: transport.Migratory, Timeout: 15 * time.Second})
	if err != nil {
		return 0, err
	}
	if err := cli.Send([]byte("warm")); err != nil {
		return 0, err
	}
	if _, err := cli.Recv(5 * time.Second); err != nil {
		return 0, fmt.Errorf("warm-up echo: %w", err)
	}
	token := cli.Token()

	// Roam: close the session, re-attach, resume.
	clk := s.Clock()
	start := clk.Now()
	cli.Close()
	if _, err := d.Attach(aps[1].AirAddr(), 15*time.Second); err != nil {
		return 0, fmt.Errorf("re-attach: %w", err)
	}
	var resumeToken []byte
	if resume {
		resumeToken = token
	}
	cli2, err := transport.Dial(d.Bearer(), simnet.Addr{Host: "ott", Port: 7000},
		transport.DialConfig{Mode: transport.Migratory, ResumeToken: resumeToken, Timeout: 15 * time.Second})
	if err != nil {
		return 0, fmt.Errorf("resume dial: %w", err)
	}
	defer cli2.Close()
	if err := cli2.Send([]byte("resumed")); err != nil {
		return 0, err
	}
	if _, err := cli2.Recv(10 * time.Second); err != nil {
		return 0, fmt.Errorf("post-resume echo: %w", err)
	}
	return ms(clk.Since(start)), nil
}
