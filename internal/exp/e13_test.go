package exp

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"dlte/internal/simnet"
	"dlte/internal/ue"
)

// TestE13Quick sanity-checks the compact world end to end: every UE
// attaches, TAUs tick, promotions replay through the real stack, and
// the accounted footprint honors the budget the experiment exists to
// defend.
func TestE13Quick(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunE13(Options{Quick: true, Seed: 42, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesPerUE != ue.IdleSlotBytes+simnet.EventBytes {
		t.Errorf("accounted B/UE = %d, want slot+timer = %d",
			res.BytesPerUE, ue.IdleSlotBytes+simnet.EventBytes)
	}
	if res.BytesPerUE > 128 {
		t.Errorf("accounted B/UE = %d, want ≤ 128", res.BytesPerUE)
	}
	for _, n := range e13Sizes(Options{Quick: true}) {
		if res.PromotedByUEs[n] != e13Promotions {
			t.Errorf("ues=%d: promoted %d, want %d", n, res.PromotedByUEs[n], e13Promotions)
		}
		// Each UE contributes start+done plus at least one TAU before
		// the horizon (max first TAU ≈ 5s start + 35ms + 38s period).
		if res.EventsByUEs[n] < uint64(3*n) {
			t.Errorf("ues=%d: %d events, want ≥ %d", n, res.EventsByUEs[n], 3*n)
		}
		if res.TAUByUEs[n] < uint64(n) {
			t.Errorf("ues=%d: %d TAU fires, want ≥ %d", n, res.TAUByUEs[n], n)
		}
	}
	if buf.Len() == 0 {
		t.Error("no table rendered")
	}
}

// TestE13SerialParallelShardedIdentical is E13's leg of the
// determinism gate: the rendered table must be byte-identical whether
// worlds run serially or concurrently (Parallelism) and whether the
// region wheels drain on one OS thread or eight (Shards). This is the
// property that lets -shards scale a million-UE world across cores
// without auditing output stability.
func TestE13SerialParallelShardedIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(parallelism, shards int) []byte {
		var buf bytes.Buffer
		opt := Options{Quick: true, Seed: 42, Out: &buf, Parallelism: parallelism, Shards: shards}
		if _, err := RunE13(opt); err != nil {
			t.Fatalf("E13 (p=%d s=%d): %v", parallelism, shards, err)
		}
		return buf.Bytes()
	}
	serial := run(1, 1)
	for _, leg := range []struct {
		label string
		p, s  int
	}{{"parallel (p=8,s=1)", 8, 1}, {"sharded (p=1,s=8)", 1, 8}, {"both (p=8,s=8)", 8, 8}} {
		got := run(leg.p, leg.s)
		if !bytes.Equal(serial, got) {
			i := 0
			for i < len(serial) && i < len(got) && serial[i] == got[i] {
				i++
			}
			t.Fatalf("serial and %s diverge at byte %d:\n--- serial ---\n%s\n--- %s ---\n%s",
				leg.label, i, serial, leg.label, got)
		}
	}
}

// TestE13UEsOverride pins the -ues plumbing: a single-world sweep of
// exactly the requested population.
func TestE13UEsOverride(t *testing.T) {
	res, err := RunE13(Options{Quick: true, Seed: 42, UEs: 3_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EventsByUEs) != 1 || res.EventsByUEs[3_000] == 0 {
		t.Fatalf("UEs override ran sizes %v, want exactly {3000}", res.EventsByUEs)
	}
}

// measureIdleWorld builds and runs an n-UE world and returns the heap
// bytes it retains per UE once quiescent — slots, parked timers, slab
// slack, region overhead, everything.
func measureIdleWorld(seed int64, n int) (float64, *e13World, error) {
	heap := func() uint64 {
		runtime.GC()
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}
	h0 := heap()
	w := newE13World(seed, n, 0)
	if err := w.start(); err != nil {
		return 0, nil, err
	}
	w.run()
	if err := w.verify(); err != nil {
		return 0, nil, err
	}
	h1 := heap()
	return float64(h1-h0) / float64(n), w, nil
}

// TestIdleWorldFootprint is the measured (not accounted) form of the
// E13 budget, at the headline scale: a million-UE world — SoA slots,
// the wheel's event slabs at their high-water mark, region structures
// — must retain ≤ 128 B per idle UE. The accounted floor is
// ue.IdleSlotBytes + simnet.EventBytes (93 B as of this writing);
// measured sits near 104 B (allocator size-class rounding on slabs
// and pool arrays), so the headroom is real but thin: a new per-UE
// field or a fatter wheel record trips this first. Smaller
// populations read higher — per-region slab rounding is a fixed
// ~2 MB that only amortizes at scale — so the bound is pinned here,
// not in the quick sizes.
func TestIdleWorldFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("heap measurement; skipped in -short")
	}
	const n = 1_000_000
	perUE, w, err := measureIdleWorld(42, n)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("idle compact UE ≈ %.1f B retained (accounted %d)", perUE, ue.IdleSlotBytes+simnet.EventBytes)
	if perUE > 128 {
		t.Errorf("idle world retains %.1f B/UE, want ≤ 128", perUE)
	}
	runtime.KeepAlive(w)
}

// BenchmarkIdleWorld prices the compact world at three population
// scales: ns/op is build+run wall time, with bytes/idle-UE and
// events/sec reported alongside. The 10k and 100k sizes are CI-gated
// via BENCH_BASELINE.json; 1M is the headline number.
func BenchmarkIdleWorld(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("ues=%d", n), func(b *testing.B) {
			var lastPerUE, lastEvPerSec float64
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				perUE, w, err := measureIdleWorld(42, n)
				if err != nil {
					b.Fatal(err)
				}
				wall := time.Since(t0)
				lastPerUE = perUE
				if wall > 0 {
					lastEvPerSec = float64(w.totalEvents()) / wall.Seconds()
				}
				runtime.KeepAlive(w)
			}
			b.ReportMetric(lastPerUE, "B/ue")
			b.ReportMetric(lastEvPerSec, "events/s")
		})
	}
}
