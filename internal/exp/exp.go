// Package exp implements the dLTE experiment harness: one runnable
// experiment per table/figure/claim in the paper, as indexed in
// DESIGN.md §3. Each experiment builds its scenario from the real
// protocol stacks (signaling measured end to end over simulated
// networks) and/or the radio/MAC simulators, and renders fixed-width
// result tables plus a headline struct the tests and benchmarks
// assert the paper's qualitative shapes against.
package exp

import (
	"fmt"
	"io"
	"time"

	"dlte/internal/auth"
	"dlte/internal/baseline"
	"dlte/internal/core"
	"dlte/internal/geo"
	"dlte/internal/metrics"
	"dlte/internal/ott"
	"dlte/internal/radio"
	"dlte/internal/simnet"
	"dlte/internal/ue"
	"dlte/internal/x2"
)

// Options tune an experiment run.
type Options struct {
	// Quick shrinks sweeps for CI and benchmarks.
	Quick bool
	// Seed drives all randomness.
	Seed int64
	// Out, when non-nil, receives the rendered tables.
	Out io.Writer
	// Parallelism bounds how many independent simulation worlds run
	// concurrently inside one experiment. 0 means one per CPU; 1 runs
	// the sweeps serially. Results are byte-identical at any value —
	// each world derives its seed from (Seed, job index) and tables
	// are rendered only after all worlds finish.
	Parallelism int
	// Shards is each simulated core's session shard count (see
	// epc.Config.Shards). Like Parallelism it is a real-CPU knob only:
	// rendered results are byte-identical at any value, because shards
	// change which OS threads serve signaling, never the virtual-time
	// order it is served in. E13 additionally uses it as the worker
	// budget for draining its region wheels — again real-CPU only.
	Shards int
	// UEs, when > 0, replaces E13's default population sweep with a
	// single world of exactly this many compact UEs. Other experiments
	// ignore it. Validation (rejecting values ≤ 0 typed explicitly)
	// happens at the flag layer in cmd/dlte-sim.
	UEs int
}

func (o Options) emit(tables ...*metrics.Table) {
	if o.Out == nil {
		return
	}
	for _, t := range tables {
		t.Render(o.Out)
		fmt.Fprintln(o.Out)
	}
}

// Mbps converts bits/second to megabits/second for table rendering.
func Mbps(bps float64) float64 { return bps / 1e6 }

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// defaultWAN is the scenario-wide Internet link: 10 ms one-way,
// uncongested.
var defaultWAN = simnet.Link{Latency: 10 * time.Millisecond}

// newDLTEWorld builds a scenario with n dLTE APs spaced apKm apart in
// a line, all in one contention domain, plus an OTT host named "ott".
// shards is threaded into every stub core (0 = one per CPU); it never
// changes results, only real-CPU signaling throughput.
func newDLTEWorld(n int, apKm float64, mode x2.Mode, seed int64, shards int) (*core.Scenario, []*core.AccessPoint, error) {
	s, err := core.NewScenario(defaultWAN, seed)
	if err != nil {
		return nil, nil, err
	}
	aps := make([]*core.AccessPoint, 0, n)
	for i := 0; i < n; i++ {
		ap, err := s.AddAP(core.APConfig{
			ID:       fmt.Sprintf("ap%d", i+1),
			Position: geo.Pt(float64(i)*apKm*1000, 0),
			Band:     radio.LTEBand5,
			HeightM:  20, EIRPdBm: 58,
			Mode:   mode,
			TAC:    uint16(i + 1),
			Shards: shards,
		})
		if err != nil {
			s.Close()
			return nil, nil, err
		}
		aps = append(aps, ap)
	}
	if _, err := s.Net.AddHost("ott"); err != nil {
		s.Close()
		return nil, nil, err
	}
	return s, aps, nil
}

// attachNewUE provisions, radio-links, and attaches a fresh UE to the
// given AP at distance dKm, returning the device and measured attach
// result.
func attachNewUE(s *core.Scenario, ap *core.AccessPoint, name string, imsi auth.IMSI, dKm float64) (*ue.Device, ue.AttachResult, error) {
	d, err := s.AddUE(name, imsi)
	if err != nil {
		return nil, ue.AttachResult{}, err
	}
	if _, err := ap.SyncSubscriberKeys(); err != nil {
		return nil, ue.AttachResult{}, err
	}
	pos := ap.Position().Add(dKm*1000, 0)
	if err := s.ConnectUERadio(name, ap.ID(), pos); err != nil {
		return nil, ue.AttachResult{}, err
	}
	res, err := d.Attach(ap.AirAddr(), 15*time.Second)
	return d, res, err
}

// coreAPConfig is the standard AP shape used across experiments.
func coreAPConfig(id string, x float64) core.APConfig {
	return core.APConfig{
		ID: id, Position: geo.Pt(x, 0), Band: radio.LTEBand5,
		HeightM: 20, EIRPdBm: 58, Mode: x2.ModeFairShare, TAC: 99,
	}
}

// imsiFor derives a deterministic valid IMSI from an index.
func imsiFor(block, i int) auth.IMSI {
	return auth.IMSI(fmt.Sprintf("00101%02d%08d", block%100, i))
}

// newEcho starts an OTT echo server on an existing host.
func newEcho(n *simnet.Network, hostName string, port int) (*ott.EchoServer, error) {
	h, ok := n.Host(hostName)
	if !ok {
		var err error
		h, err = n.AddHost(hostName)
		if err != nil {
			return nil, err
		}
	}
	return ott.NewEchoServer(h, port)
}

// medianEchoRTT probes the echo server count times and returns the
// median RTT (robust to the first packet's path-setup cost).
func medianEchoRTT(d *ue.Device, remote string, count int) (time.Duration, error) {
	h := metrics.NewHistogram()
	for i := 0; i < count; i++ {
		rtt, err := d.Echo(remote, []byte("probe"), 300*time.Millisecond, 10*time.Second)
		if err != nil {
			return 0, err
		}
		h.ObserveDuration(rtt)
	}
	return time.Duration(h.Quantile(0.5) * float64(time.Millisecond)), nil
}

// newProvisionedSIM creates a SIM and provisions it on the
// centralized core's HSS.
func newProvisionedSIM(central *baseline.Centralized, imsi auth.IMSI) (auth.SIM, error) {
	sim, err := auth.NewSIM(imsi)
	if err != nil {
		return auth.SIM{}, err
	}
	return sim, central.Core.Provision(sim)
}

// attachCentralUE provisions a fresh SIM on the centralized core,
// creates a UE host with a 5 ms air link to the site, and attaches.
func attachCentralUE(n *simnet.Network, central *baseline.Centralized, siteName, airAddr string, imsi auth.IMSI) (*ue.Device, ue.AttachResult, error) {
	sim, err := auth.NewSIM(imsi)
	if err != nil {
		return nil, ue.AttachResult{}, err
	}
	if err := central.Core.Provision(sim); err != nil {
		return nil, ue.AttachResult{}, err
	}
	host, err := n.AddHost("ue-" + string(imsi))
	if err != nil {
		return nil, ue.AttachResult{}, err
	}
	n.SetLink(host.Name(), siteName, simnet.Link{Latency: 5 * time.Millisecond})
	d, err := ue.NewDevice(host, sim)
	if err != nil {
		return nil, ue.AttachResult{}, err
	}
	res, err := d.Attach(airAddr, 30*time.Second)
	if err != nil {
		d.Close()
		return nil, ue.AttachResult{}, err
	}
	return d, res, nil
}
