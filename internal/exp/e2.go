package exp

import (
	"fmt"
	"time"

	"dlte/internal/baseline"
	"dlte/internal/metrics"
	"dlte/internal/simnet"
	"dlte/internal/x2"
)

// E2Result quantifies Figure 1: the data-path cost of tunneling every
// packet through a distant EPC versus dLTE's direct breakout at the AP.
type E2Result struct {
	Table *metrics.Table
	// DLTERTTms is the (EPC-distance-independent) dLTE echo RTT.
	DLTERTTms float64
	// CentralRTTms maps EPC one-way latency (ms) to measured RTT.
	CentralRTTms map[int]float64
	// DLTEAttachms and CentralAttachms compare registration latency at
	// the largest EPC distance swept.
	DLTEAttachms, CentralAttachms float64
}

// RunE2 measures the Figure 1 data paths end to end: a UE attaches and
// echoes through (a) a dLTE AP with local breakout and (b) a telecom
// EPC at increasing WAN distances. The tunnel path pays two extra WAN
// traversals per packet; attach pays one per signaling round trip.
func RunE2(opt Options) (E2Result, error) {
	res := E2Result{CentralRTTms: make(map[int]float64)}
	// The smallest value sits below the scenario's 10 ms AP→Internet
	// distance, where tunneling costs almost nothing — the honest
	// lower end of the sweep.
	epcLatencies := []int{5, 10, 20, 40, 80}
	if opt.Quick {
		epcLatencies = []int{20, 80}
	}

	// --- dLTE: stub core on the AP, breakout at the AP.
	s, aps, err := newDLTEWorld(1, 3, x2.ModeFairShare, opt.Seed, opt.Shards)
	if err != nil {
		return res, err
	}
	defer s.Close()
	echoSrv, err := newEcho(s.Net, "ott", 9000)
	if err != nil {
		return res, err
	}
	defer echoSrv.Close()

	d, att, err := attachNewUE(s, aps[0], "ue-d", imsiFor(2, 1), 1)
	if err != nil {
		return res, err
	}
	res.DLTEAttachms = ms(att.Duration)
	rtt, err := medianEchoRTT(d, "ott:9000", 5)
	if err != nil {
		return res, err
	}
	res.DLTERTTms = ms(rtt)

	t := metrics.NewTable("E2 — Figure 1 measured: direct breakout vs EPC tunnel",
		"architecture", "EPC one-way ms", "attach ms", "echo RTT ms", "RTT penalty ×")
	t.AddRow("dLTE (breakout)", "n/a", res.DLTEAttachms, res.DLTERTTms, 1.0)

	// --- Centralized: sweep the EPC's distance.
	for _, lat := range epcLatencies {
		n := simnet.NewVirtualNetwork(simnet.Link{Latency: 10 * time.Millisecond}, opt.Seed)
		central, err := baseline.NewCentralized(n, "epc", baseline.CentralizedConfig{
			TAC: 1, WANLink: simnet.Link{Latency: time.Duration(lat) * time.Millisecond},
		})
		if err != nil {
			n.Close()
			return res, err
		}
		site, err := central.AddSite("cell")
		if err != nil {
			central.Close()
			n.Close()
			return res, err
		}
		if _, err := n.AddHost("ott"); err != nil {
			central.Close()
			n.Close()
			return res, err
		}
		echo2, err := newEcho(n, "ott", 9000)
		if err != nil {
			central.Close()
			n.Close()
			return res, err
		}

		dev, attC, err := attachCentralUE(n, central, "cell", site.AirAddr(), imsiFor(2, 100+lat))
		if err != nil {
			echo2.Close()
			central.Close()
			n.Close()
			return res, err
		}
		rttC, err := medianEchoRTT(dev, "ott:9000", 5)
		dev.Close()
		echo2.Close()
		central.Close()
		n.Close()
		if err != nil {
			return res, err
		}
		res.CentralRTTms[lat] = ms(rttC)
		res.CentralAttachms = ms(attC.Duration)
		t.AddRow(fmt.Sprintf("telecom LTE"), lat, ms(attC.Duration), ms(rttC), ms(rttC)/res.DLTERTTms)
	}
	res.Table = t
	opt.emit(t)
	return res, nil
}
