package exp

import (
	"bytes"
	"testing"
)

// TestExperimentsDeterministic is the regression gate for the virtual
// clock's core promise: two runs with the same seed produce
// byte-identical result tables. E2 exercises the full attach + data
// path; E4 adds roaming, retransmission, and 0-RTT resume — the flows
// that historically exposed scheduling races (ack-vs-delivery wire
// order, map-ordered retransmits, cross-world goroutine leaks).
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func() []byte {
		var buf bytes.Buffer
		opt := Options{Quick: true, Seed: 42, Out: &buf}
		if _, err := RunE2(opt); err != nil {
			t.Fatalf("E2: %v", err)
		}
		if _, err := RunE4(opt); err != nil {
			t.Fatalf("E4: %v", err)
		}
		return buf.Bytes()
	}
	a := run()
	b := run()
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 120
		if lo < 0 {
			lo = 0
		}
		hiA, hiB := i+120, i+120
		if hiA > len(a) {
			hiA = len(a)
		}
		if hiB > len(b) {
			hiB = len(b)
		}
		t.Fatalf("same-seed runs diverge at byte %d:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			i, a[lo:hiA], b[lo:hiB])
	}
}

// TestSerialParallelIdentical is the regression gate for the two
// real-CPU knobs: the same seed must render byte-identical tables
// whether the sweeps run serially or with every world concurrent
// (Parallelism), and whether each simulated core serves its sessions
// on one shard or eight (Shards). E3 covers the
// contended-signaling-processor worlds (the shared centralized EPC,
// historically the first place scheduler interleaving leaked into
// results); E4 covers roaming and retransmission timing; E10 covers
// the discovery plane, where concurrent joins, key churn, pollers,
// and a push subscription all race on one registry — its wire-byte
// accounting depends on every delta landing in its own frame. E12
// covers the pure-compute fan-out: thousands of coexistence domains on
// the event-driven PHY engine, reduced in index order. The
// shards=32 leg is the attach-storm gate: E3's storm worlds at the
// widest shard count the storm benchmark sweeps must render the same
// bytes as the single-shard serial run, pinning batched shard-gate
// admission to the virtual-time order.
func TestSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(parallelism, shards int) []byte {
		var buf bytes.Buffer
		opt := Options{Quick: true, Seed: 42, Out: &buf, Parallelism: parallelism, Shards: shards}
		if _, err := RunE3(opt); err != nil {
			t.Fatalf("E3 (p=%d s=%d): %v", parallelism, shards, err)
		}
		if _, err := RunE4(opt); err != nil {
			t.Fatalf("E4 (p=%d s=%d): %v", parallelism, shards, err)
		}
		if _, err := RunE10(opt); err != nil {
			t.Fatalf("E10 (p=%d s=%d): %v", parallelism, shards, err)
		}
		if _, err := RunE12(opt); err != nil {
			t.Fatalf("E12 (p=%d s=%d): %v", parallelism, shards, err)
		}
		return buf.Bytes()
	}
	diverge := func(labelA, labelB string, a, b []byte) {
		t.Helper()
		if bytes.Equal(a, b) {
			return
		}
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 120
		if lo < 0 {
			lo = 0
		}
		hiA, hiB := i+120, i+120
		if hiA > len(a) {
			hiA = len(a)
		}
		if hiB > len(b) {
			hiB = len(b)
		}
		t.Fatalf("%s and %s runs diverge at byte %d:\n--- %s ---\n%s\n--- %s ---\n%s",
			labelA, labelB, i, labelA, a[lo:hiA], labelB, b[lo:hiB])
	}
	serial := run(1, 1)
	parallel := run(8, 1)
	sharded := run(8, 8)
	storm := run(8, 32)
	diverge("serial (p=1,s=1)", "parallel (p=8,s=1)", serial, parallel)
	diverge("serial (p=1,s=1)", "sharded (p=8,s=8)", serial, sharded)
	diverge("serial (p=1,s=1)", "storm (p=8,s=32)", serial, storm)
}
