package exp

import (
	"bytes"
	"testing"
)

// TestExperimentsDeterministic is the regression gate for the virtual
// clock's core promise: two runs with the same seed produce
// byte-identical result tables. E2 exercises the full attach + data
// path; E4 adds roaming, retransmission, and 0-RTT resume — the flows
// that historically exposed scheduling races (ack-vs-delivery wire
// order, map-ordered retransmits, cross-world goroutine leaks).
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func() []byte {
		var buf bytes.Buffer
		opt := Options{Quick: true, Seed: 42, Out: &buf}
		if _, err := RunE2(opt); err != nil {
			t.Fatalf("E2: %v", err)
		}
		if _, err := RunE4(opt); err != nil {
			t.Fatalf("E4: %v", err)
		}
		return buf.Bytes()
	}
	a := run()
	b := run()
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 120
		if lo < 0 {
			lo = 0
		}
		hiA, hiB := i+120, i+120
		if hiA > len(a) {
			hiA = len(a)
		}
		if hiB > len(b) {
			hiB = len(b)
		}
		t.Fatalf("same-seed runs diverge at byte %d:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			i, a[lo:hiA], b[lo:hiB])
	}
}

// TestSerialParallelIdentical is the regression gate for the parallel
// world-runner: the same seed must render byte-identical tables whether
// the sweeps run serially or with every world concurrent. E3 covers
// the contended-signaling-processor worlds (the shared centralized EPC,
// historically the first place scheduler interleaving leaked into
// results); E4 covers roaming and retransmission timing.
func TestSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(parallelism int) []byte {
		var buf bytes.Buffer
		opt := Options{Quick: true, Seed: 42, Out: &buf, Parallelism: parallelism}
		if _, err := RunE3(opt); err != nil {
			t.Fatalf("E3 (p=%d): %v", parallelism, err)
		}
		if _, err := RunE4(opt); err != nil {
			t.Fatalf("E4 (p=%d): %v", parallelism, err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		i := 0
		for i < len(serial) && i < len(parallel) && serial[i] == parallel[i] {
			i++
		}
		lo := i - 120
		if lo < 0 {
			lo = 0
		}
		hiS, hiP := i+120, i+120
		if hiS > len(serial) {
			hiS = len(serial)
		}
		if hiP > len(parallel) {
			hiP = len(parallel)
		}
		t.Fatalf("serial and parallel runs diverge at byte %d:\n--- serial (p=1) ---\n%s\n--- parallel (p=8) ---\n%s",
			i, serial[lo:hiS], parallel[lo:hiP])
	}
}
