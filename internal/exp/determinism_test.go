package exp

import (
	"bytes"
	"testing"
)

// TestExperimentsDeterministic is the regression gate for the virtual
// clock's core promise: two runs with the same seed produce
// byte-identical result tables. E2 exercises the full attach + data
// path; E4 adds roaming, retransmission, and 0-RTT resume — the flows
// that historically exposed scheduling races (ack-vs-delivery wire
// order, map-ordered retransmits, cross-world goroutine leaks).
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func() []byte {
		var buf bytes.Buffer
		opt := Options{Quick: true, Seed: 42, Out: &buf}
		if _, err := RunE2(opt); err != nil {
			t.Fatalf("E2: %v", err)
		}
		if _, err := RunE4(opt); err != nil {
			t.Fatalf("E4: %v", err)
		}
		return buf.Bytes()
	}
	a := run()
	b := run()
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 120
		if lo < 0 {
			lo = 0
		}
		hiA, hiB := i+120, i+120
		if hiA > len(a) {
			hiA = len(a)
		}
		if hiB > len(b) {
			hiB = len(b)
		}
		t.Fatalf("same-seed runs diverge at byte %d:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			i, a[lo:hiA], b[lo:hiB])
	}
}
