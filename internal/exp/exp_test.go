package exp

import (
	"testing"
)

// Every experiment runs in Quick mode and must reproduce the paper's
// qualitative shape — these are the repository's headline assertions.

func quick() Options { return Options{Quick: true, Seed: 42} }

func TestE1DesignSpaceShape(t *testing.T) {
	res, err := RunE1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !res.DLTEOpen {
		t.Error("dLTE is not open: a newcomer AP failed to join and serve")
	}
	if res.TelecomOpen {
		t.Error("telecom core accepted a rogue eNodeB")
	}
	if res.DLTEAggMbps <= res.WiFiAggMbps {
		t.Errorf("coordinated aggregate %v ≤ CSMA %v", res.DLTEAggMbps, res.WiFiAggMbps)
	}
	if res.DLTERangeKm < 5*res.WiFiRangeKm {
		t.Errorf("LTE range %v < 5× WiFi range %v", res.DLTERangeKm, res.WiFiRangeKm)
	}
	if res.Table.NumRows() != 5 {
		t.Errorf("table rows = %d", res.Table.NumRows())
	}
}

func TestE2DataPathShape(t *testing.T) {
	res, err := RunE2(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Breakout beats the tunnel once the EPC sits beyond the AP's own
	// Internet distance, and the gap grows with distance.
	var prev float64
	for _, lat := range []int{20, 80} {
		rtt := res.CentralRTTms[lat]
		if rtt <= res.DLTERTTms {
			t.Errorf("central RTT %v at %dms ≤ dLTE %v", rtt, lat, res.DLTERTTms)
		}
		if rtt <= prev {
			t.Errorf("central RTT not increasing with EPC distance: %v after %v", rtt, prev)
		}
		prev = rtt
	}
	if res.CentralAttachms <= res.DLTEAttachms {
		t.Errorf("central attach %v ≤ dLTE attach %v", res.CentralAttachms, res.DLTEAttachms)
	}
}

func TestE3CoreScalingShape(t *testing.T) {
	res, err := RunE3(quick())
	if err != nil {
		t.Fatal(err)
	}
	d1, dN := res.P99ByArch["dlte"][1], res.P99ByArch["dlte"][res.MaxAPs]
	c1, cN := res.P99ByArch["central"][1], res.P99ByArch["central"][res.MaxAPs]
	// The centralized core's p99 grows with scale; dLTE's stays flat
	// (within noise).
	if cN <= c1 {
		t.Errorf("central p99 did not grow: %v → %v", c1, cN)
	}
	if dN > 3*d1+50 {
		t.Errorf("dLTE p99 not flat: %v → %v", d1, dN)
	}
	// At max scale, centralized saturation is visible vs dLTE.
	if cN <= dN {
		t.Errorf("at %d APs: central p99 %v ≤ dLTE p99 %v", res.MaxAPs, cN, dN)
	}
	// E3b: a sharded MME (more signaling processors) relieves the
	// storm — p99 at K=8 must beat the single-processor core. (At the
	// quick storm size K=8 drains the queue entirely, converging on
	// dLTE's latency floor; the centralized core's remaining cost is
	// capacity provisioning, not queueing.)
	k1, k8 := res.ShardedP99ByProcs[1], res.ShardedP99ByProcs[8]
	if k1 == 0 || k8 == 0 {
		t.Fatalf("E3b sweep missing points: %v", res.ShardedP99ByProcs)
	}
	if k8 >= k1 {
		t.Errorf("E3b: p99 at K=8 procs %v ≥ K=1 %v", k8, k1)
	}
	// The K=1 sweep point and the E3 central row at MaxAPs are the
	// same world; their p99s must agree exactly.
	if k1 != cN {
		t.Errorf("E3b K=1 p99 %v != E3 central p99 %v at %d APs", k1, cN, res.MaxAPs)
	}
}

func TestE4MobilityShape(t *testing.T) {
	res, err := RunE4(quick())
	if err != nil {
		t.Fatal(err)
	}
	// MST keeps disruption well below the legacy reconnect path, and
	// both sessions must actually recover.
	if res.MSTDisruptionMs >= res.LegacyDisruptionMs {
		t.Errorf("MST disruption %v ≥ legacy %v", res.MSTDisruptionMs, res.LegacyDisruptionMs)
	}
	if res.LegacyDisruptionMs >= 10000 {
		t.Error("legacy session never recovered after the roam")
	}
	// And the paper's honest concession: MME-masked handover still
	// beats dLTE's re-attach (its breakdown under rapid mobility).
	if res.MSTDisruptionMs <= res.CentralDisruptionMs {
		t.Logf("note: dLTE roam (%vms) beat the modeled MME handover (%vms)", res.MSTDisruptionMs, res.CentralDisruptionMs)
	}
	if res.CrossoverDwellMs == 0 {
		t.Log("no crossover found in swept dwell range (dLTE roam cheap enough)")
	}
	if res.AblationTable == nil || res.AblationTable.NumRows() != 3 {
		t.Error("transport-feature ablation missing")
	}
}

func TestE5SpectrumModesShape(t *testing.T) {
	res, err := RunE5(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Efficiency: coordinated LTE beats CSMA WiFi on total throughput.
	if res.TotalMbps["dLTE fair-share"] <= res.TotalMbps["legacy WiFi (CSMA)"] {
		t.Errorf("fair-share total %v ≤ WiFi %v",
			res.TotalMbps["dLTE fair-share"], res.TotalMbps["legacy WiFi (CSMA)"])
	}
	// Fairness: coordination rescues the worst-served (cell-edge)
	// user that uncoordinated reuse-1 starves.
	if res.MinUserMbps["dLTE fair-share"] <= res.MinUserMbps["selfish LTE (no coordination)"] {
		t.Errorf("fair-share min-user %v ≤ selfish %v",
			res.MinUserMbps["dLTE fair-share"], res.MinUserMbps["selfish LTE (no coordination)"])
	}
	if res.Jain["dLTE fair-share"] <= res.Jain["selfish LTE (no coordination)"] {
		t.Errorf("fair-share Jain %v ≤ selfish %v",
			res.Jain["dLTE fair-share"], res.Jain["selfish LTE (no coordination)"])
	}
	// Fair-share at least matches WiFi's fairness.
	if res.Jain["dLTE fair-share"] < res.Jain["legacy WiFi (CSMA)"]-0.05 {
		t.Errorf("fair-share Jain %v below WiFi %v", res.Jain["dLTE fair-share"], res.Jain["legacy WiFi (CSMA)"])
	}
	// Cooperation recovers aggregate on top of fair-share.
	if res.TotalMbps["dLTE cooperative"] <= res.TotalMbps["dLTE fair-share"] {
		t.Errorf("cooperative total %v ≤ fair-share %v",
			res.TotalMbps["dLTE cooperative"], res.TotalMbps["dLTE fair-share"])
	}
}

func TestE6WaveformShape(t *testing.T) {
	res, err := RunE6(quick())
	if err != nil {
		t.Fatal(err)
	}
	b5 := res.RangeKm["LTE band 5 (850 MHz)"]
	b31 := res.RangeKm["LTE band 31 (450 MHz)"]
	wifi := res.RangeKm["WiFi 2.4 GHz"]
	if b5 < 5*wifi {
		t.Errorf("band 5 range %v < 5× WiFi %v", b5, wifi)
	}
	if b31 < b5 {
		t.Errorf("450 MHz range %v < 850 MHz range %v", b31, b5)
	}
	if res.HARQGainKm <= 0 {
		t.Errorf("HARQ gain = %v km", res.HARQGainKm)
	}
}

func TestE7X2OverheadShape(t *testing.T) {
	res, err := RunE7(quick())
	if err != nil {
		t.Fatal(err)
	}
	// X2 is low-bandwidth: under 10% of even a 256 kbit/s backhaul.
	if res.FractionOf256k > 0.10 {
		t.Errorf("X2 consumes %.1f%% of a 256k backhaul", 100*res.FractionOf256k)
	}
	// And negotiation still converges over the constrained link.
	if res.ConvergenceOn256kMs <= 0 {
		t.Error("negotiation failed over the constrained backhaul")
	}
	// Overhead grows with AP count but stays modest.
	if res.BytesPerSec[4] <= res.BytesPerSec[2] {
		t.Logf("note: X2 rate did not grow 2→4 APs (%v vs %v)", res.BytesPerSec[2], res.BytesPerSec[4])
	}
}

func TestE8DeploymentShape(t *testing.T) {
	res, err := RunE8(quick())
	if err != nil {
		t.Fatal(err)
	}
	// One site covers the town.
	if res.CoveragePct512k < 90 {
		t.Errorf("coverage = %.0f%%, want ≥ 90%%", res.CoveragePct512k)
	}
	if res.PerHomeMbps <= 0 {
		t.Error("no per-home capacity")
	}
	// OTT messaging works end to end through the live stack.
	if res.OTTDelivered < 5 {
		t.Errorf("OTT delivered %d of 6", res.OTTDelivered)
	}
}

func TestE9HiddenAndRelayShape(t *testing.T) {
	res, err := RunE9(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.RegistryMbps <= res.CSMAHiddenMbps {
		t.Errorf("registry TDM %v ≤ hidden CSMA %v", res.RegistryMbps, res.CSMAHiddenMbps)
	}
	if res.HiddenCollisionRate < 0.2 {
		t.Errorf("hidden collision rate %v suspiciously low", res.HiddenCollisionRate)
	}
	if !res.RelayGranted {
		t.Error("relay grant never arrived during the outage")
	}
	if res.OutageDetectedMs <= 0 {
		t.Error("outage not detected")
	}
	if res.RelayMbps <= 0 {
		t.Error("no relay capacity")
	}
}

func TestE10DiscoveryAtScaleShape(t *testing.T) {
	res, err := RunE10(quick())
	if err != nil {
		t.Fatal(err)
	}
	// The headline claim: revision deltas cut steady-state sync bytes
	// by at least an order of magnitude versus list polling, at every
	// deployment size.
	if res.MinReduction < 10 {
		t.Errorf("poll/delta byte reduction %.1f× < 10×", res.MinReduction)
	}
	for n, pollKB := range res.PollKBByAPs {
		deltaKB := res.DeltaKBByAPs[n]
		if deltaKB <= 0 || pollKB <= deltaKB {
			t.Errorf("%d APs: poll %.1f KB vs delta %.1f KB", n, pollKB, deltaKB)
		}
		// Push beats poll on join→discoverable latency: a delta arrives
		// one propagation after the join; a poller waits out its period.
		if res.DeltaP50ByAPs[n] >= res.PollP50ByAPs[n] {
			t.Errorf("%d APs: delta p50 %.1f ms ≥ poll p50 %.1f ms",
				n, res.DeltaP50ByAPs[n], res.PollP50ByAPs[n])
		}
	}
	if got, want := res.SyncTable.NumRows(), len(res.PollKBByAPs); got != want {
		t.Errorf("sync table rows = %d, want %d", got, want)
	}
	if got, want := res.MeshTable.NumRows(), len(res.PollKBByAPs); got != want {
		t.Errorf("mesh table rows = %d, want %d", got, want)
	}
}

func TestE5MobilityTriggerAudit(t *testing.T) {
	// The E5 geometry sits entirely inside the mobility trigger's 3 dB
	// hysteresis: no client's neighbor RSRP justifies a handover, so
	// every cross-AP handoff cooperative mode reports is load
	// balancing, not radio necessity. If this starts failing the
	// geometry or the trigger policy changed — update the E5Result
	// commentary along with it.
	if n := e5TriggerEligible(); n != 0 {
		t.Errorf("trigger-eligible users = %d, want 0", n)
	}
	// reassignToBest must pin exactly what phy's internal
	// strongest-cell fallback picks (argmax with lower-index ties):
	// home cell for every comfortable client, and never a cell the
	// user can't hear.
	for i, u := range reassignToBest(e5Geometry()) {
		best := 0
		for c := 1; c < len(u.SINROrthogonal); c++ {
			if u.SINROrthogonal[c] > u.SINROrthogonal[best] {
				best = c
			}
		}
		if u.Home != best {
			t.Errorf("user %d pinned to %d, strongest is %d", i, u.Home, best)
		}
	}
}

func TestE11MobilityScenariosShape(t *testing.T) {
	res, err := RunE11(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"corridor", "flash-crowd", "failure-wave"} {
		if res.Handovers[name] == 0 {
			t.Errorf("%s: compact world recorded no dLTE handovers", name)
		}
		if res.ProbeInterruptMs[name] <= 0 {
			t.Errorf("%s: probe interruption %.1f ms", name, res.ProbeInterruptMs[name])
		}
		if res.BytesPerHandover[name] <= 0 {
			t.Errorf("%s: %.0f signaling bytes per handover", name, res.BytesPerHandover[name])
		}
	}
	// Outside a failure wave every session survives, under both schemes.
	for _, name := range []string{"corridor", "flash-crowd"} {
		if res.Survival[name] != 1 || res.TelecomSurvival[name] != 1 {
			t.Errorf("%s: survival dLTE %.2f telecom %.2f, want 1/1",
				name, res.Survival[name], res.TelecomSurvival[name])
		}
	}
	// The headline resilience claim: dLTE islands keep serving through
	// the AP failure wave while the telecom baseline behind a dead EPC
	// loses everything.
	if res.Survival["failure-wave"] <= 0 {
		t.Error("failure wave: dLTE survival is 0")
	}
	if res.TelecomSurvival["failure-wave"] != 0 {
		t.Errorf("failure wave: telecom survival %.2f, want 0", res.TelecomSurvival["failure-wave"])
	}
	if !res.FailureProbeSurvived {
		t.Error("real-stack failure probe: dLTE UE did not re-attach to a surviving island")
	}
	if res.FailureProbeTelecomSurvived {
		t.Error("real-stack failure probe: telecom UE attached through a dead EPC")
	}
	if res.TelecomBytesPerHandover <= 0 {
		t.Error("telecom baseline handover bytes not derived")
	}
	if got, want := res.Table.NumRows(), 6; got != want {
		t.Errorf("table rows = %d, want %d", got, want)
	}
}

func TestE12CoexFrontierShape(t *testing.T) {
	res, err := RunE12(quick())
	if err != nil {
		t.Fatal(err)
	}
	// The registry partition must recover exactly the constructed
	// geometry at every size.
	for _, size := range res.Sizes {
		if got := res.DomainsBySize[size]; got != size {
			t.Errorf("size %d: registry found %d contention domains", size, got)
		}
	}
	alone := res.WiFiMbps["wifi-alone"]
	if alone <= 0 {
		t.Fatal("wifi-alone produced no throughput")
	}
	// Blind duty cycling degrades WiFi monotonically with the duty
	// fraction and drives the collision rate up.
	prev := alone
	for _, s := range []string{"LTE-U duty 0.33", "LTE-U duty 0.50", "LTE-U duty 0.80"} {
		if res.WiFiMbps[s] >= prev {
			t.Errorf("%s: WiFi %.2f did not degrade below %.2f", s, res.WiFiMbps[s], prev)
		}
		prev = res.WiFiMbps[s]
		if res.WiFiCollisionRate[s] <= res.WiFiCollisionRate["wifi-alone"] {
			t.Errorf("%s: collision rate %.3f not above alone %.3f",
				s, res.WiFiCollisionRate[s], res.WiFiCollisionRate["wifi-alone"])
		}
	}
	// LBT partially restores WiFi versus half-duty LTE-U while carrying
	// far more LTE traffic (its bursts are clean).
	if res.WiFiMbps["LTE LBT"] <= res.WiFiMbps["LTE-U duty 0.50"] {
		t.Errorf("LBT WiFi %.2f ≤ duty-0.50 WiFi %.2f",
			res.WiFiMbps["LTE LBT"], res.WiFiMbps["LTE-U duty 0.50"])
	}
	if res.LTEMbps["LTE LBT"] <= 2*res.LTEMbps["LTE-U duty 0.50"] {
		t.Errorf("LBT LTE %.2f not ≫ duty-0.50 LTE %.2f",
			res.LTEMbps["LTE LBT"], res.LTEMbps["LTE-U duty 0.50"])
	}
	// Registry TDM dominates the frontier: highest total, highest WiFi
	// among the sharing schemes, and the best airtime fairness.
	for _, s := range res.Schemes {
		if s == "registry TDM" {
			continue
		}
		if res.TotalMbps["registry TDM"] <= res.TotalMbps[s] {
			t.Errorf("TDM total %.2f ≤ %s total %.2f", res.TotalMbps["registry TDM"], s, res.TotalMbps[s])
		}
		if s != "wifi-alone" {
			if res.WiFiMbps["registry TDM"] <= res.WiFiMbps[s] {
				t.Errorf("TDM WiFi %.2f ≤ %s WiFi %.2f", res.WiFiMbps["registry TDM"], s, res.WiFiMbps[s])
			}
			if res.AirtimeJain["registry TDM"] < res.AirtimeJain[s] {
				t.Errorf("TDM Jain %.3f < %s Jain %.3f", res.AirtimeJain["registry TDM"], s, res.AirtimeJain[s])
			}
		}
	}
	if res.FrontierTable.NumRows() != len(res.Schemes) {
		t.Errorf("frontier rows = %d, want %d", res.FrontierTable.NumRows(), len(res.Schemes))
	}
	if res.ScaleTable.NumRows() != len(res.Sizes) {
		t.Errorf("scale rows = %d, want %d", res.ScaleTable.NumRows(), len(res.Sizes))
	}
}

// BenchmarkE12 prices the full quick-mode coexistence sweep — city
// construction, the registry partition, and six schemes per domain on
// the event-driven engine — as the experiment-level gate for PHY
// contention performance.
func BenchmarkE12(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunE12(quick()); err != nil {
			b.Fatal(err)
		}
	}
}
