package exp

import (
	"fmt"
	"time"

	"dlte/internal/geo"
	"dlte/internal/metrics"
	"dlte/internal/simnet"
	"dlte/internal/transport"
	"dlte/internal/x2"
)

// E4Result quantifies §4.2's mobility story: session disruption when a
// client roams between dLTE APs under (a) a migratory transport (MST,
// the QUIC stand-in), (b) a legacy TCP-like transport, against (c) the
// centralized baseline's MME-masked handover. It also locates the
// paper's predicted breakdown: dLTE loses when time-on-AP approaches
// the RTT to the in-use OTT service.
type E4Result struct {
	DisruptionTable *metrics.Table
	BreakdownTable  *metrics.Table
	AblationTable   *metrics.Table
	// MSTDisruptionMs and LegacyDisruptionMs are measured roam gaps at
	// the default OTT RTT.
	MSTDisruptionMs, LegacyDisruptionMs float64
	// CentralDisruptionMs is the modeled MME handover interruption.
	CentralDisruptionMs float64
	// CrossoverDwellMs is the dwell time below which dLTE's per-roam
	// overhead exceeds the centralized handover's (the §4.2 breakdown
	// point) at the largest OTT RTT swept.
	CrossoverDwellMs float64
}

// centralHandoverMs models the user-plane interruption of an
// MME-coordinated X2 handover with path switch (~50 ms is the
// textbook LTE figure). The centralized baseline masks mobility at
// this constant cost, independent of any OTT RTT.
const centralHandoverMs = 50.0

// RunE4 measures roam disruption end to end.
//
// Topology: two dLTE APs 3 km apart sharing a registry, an OTT host
// running an MST echo server, and a UE that streams sequenced probes,
// roams from ap1 to ap2 (with X2 handover preparation), and keeps
// streaming. Disruption is the largest probe-echo gap around the roam.
func RunE4(opt Options) (E4Result, error) {
	var res E4Result
	ottRTTs := []int{10, 50, 200} // extra one-way ms to the OTT service
	if opt.Quick {
		ottRTTs = []int{10, 100}
	}

	t := metrics.NewTable("E4 — §4.2: session disruption across an AP roam",
		"scheme", "OTT one-way ms", "roam disruption ms", "probes lost", "session survived")

	// Every (RTT, transport mode) roam is its own world with the same
	// derived seed the serial loop used; run them all concurrently and
	// render afterwards in sweep order.
	mstOut := make([]roamOutcome, len(ottRTTs))
	legOut := make([]roamOutcome, len(ottRTTs))
	err := forEachWorld(opt, 2*len(ottRTTs), func(j int) error {
		i := j / 2
		rtt := ottRTTs[i]
		if j%2 == 0 {
			mst, e := runRoam(opt.Seed+int64(i), rtt, transport.Migratory, opt.Shards)
			if e != nil {
				return fmt.Errorf("E4 mst rtt=%d: %w", rtt, e)
			}
			mstOut[i] = mst
			return nil
		}
		leg, e := runRoam(opt.Seed+int64(i)+100, rtt, transport.Legacy, opt.Shards)
		if e != nil {
			return fmt.Errorf("E4 legacy rtt=%d: %w", rtt, e)
		}
		legOut[i] = leg
		return nil
	})
	if err != nil {
		return res, err
	}
	for i, rtt := range ottRTTs {
		mst, leg := mstOut[i], legOut[i]
		t.AddRow("dLTE + MST", rtt, mst.disruptionMs, mst.lost, mst.survived)
		t.AddRow("dLTE + legacy TCP-like", rtt, leg.disruptionMs, leg.lost, leg.survived)
		t.AddRow("telecom LTE (MME handover, modeled)", rtt, centralHandoverMs, 0, true)
		if i == 0 {
			res.MSTDisruptionMs = mst.disruptionMs
			res.LegacyDisruptionMs = leg.disruptionMs
		}
	}
	res.CentralDisruptionMs = centralHandoverMs
	res.DisruptionTable = t

	// Breakdown analysis (§4.2 last paragraph): fraction of airtime
	// lost to roaming as dwell time shrinks. dLTE pays its measured
	// per-roam disruption once per dwell; centralized pays 50 ms.
	bt := metrics.NewTable("E4b — breakdown: utilization vs time-on-AP",
		"dwell ms", "dLTE+MST util %", "telecom util %", "dLTE wins")
	dlteCost := res.MSTDisruptionMs
	for _, dwell := range []float64{500, 1000, 2000, 5000, 20000, 60000} {
		du := 100 * (1 - dlteCost/dwell)
		cu := 100 * (1 - centralHandoverMs/dwell)
		if du < 0 {
			du = 0
		}
		wins := du >= cu
		if !wins && res.CrossoverDwellMs == 0 {
			res.CrossoverDwellMs = dwell
		}
		bt.AddRow(dwell, du, cu, wins)
	}
	if res.CrossoverDwellMs == 0 && dlteCost > centralHandoverMs {
		res.CrossoverDwellMs = 500 // below the smallest dwell swept
	}
	res.BreakdownTable = bt
	opt.emit(t, bt)

	at, err := RunE4Ablation(opt)
	if err != nil {
		return res, err
	}
	res.AblationTable = at
	return res, nil
}

type roamOutcome struct {
	disruptionMs float64
	lost         int
	survived     bool
}

// runRoam executes one instrumented roam with connection migration
// (Migratory) or reconnect-from-scratch (Legacy).
func runRoam(seed int64, ottOneWayMs int, mode transport.Mode, shards int) (roamOutcome, error) {
	var out roamOutcome
	s, aps, err := newDLTEWorld(2, 3, x2.ModeCooperative, seed, shards)
	if err != nil {
		return out, err
	}
	defer s.Close()
	// Slow the OTT path specifically.
	for _, ap := range []string{"ap1", "ap2"} {
		s.Net.SetLink(ap, "ott", simnet.Link{Latency: time.Duration(ottOneWayMs) * time.Millisecond})
	}

	ottHost, _ := s.Net.Host("ott")
	pc, err := ottHost.ListenPacket(7000)
	if err != nil {
		return out, err
	}
	srv := transport.NewServer(pc, transport.ServerConfig{
		Mode: mode,
		Handler: func(ss *transport.ServerSession) {
			for {
				b, rerr := ss.Recv(10 * time.Second)
				if rerr != nil {
					return
				}
				if ss.Send(b) != nil {
					return
				}
			}
		},
	})
	defer srv.Close()

	// Attach at ap1; both APs get radio links (the UE sits between).
	uePos := geo.Pt(1000, 0)
	d, _, err := attachNewUE(s, aps[0], "roamer", imsiFor(5, int(seed%1000)), 1)
	if err != nil {
		return out, err
	}
	if err := s.ConnectUERadio("roamer", "ap2", uePos); err != nil {
		return out, err
	}
	if _, err := aps[1].SyncSubscriberKeys(); err != nil {
		return out, err
	}

	cli, err := transport.Dial(d.Bearer(), simnet.Addr{Host: "ott", Port: 7000},
		transport.DialConfig{Mode: mode, Timeout: 15 * time.Second})
	if err != nil {
		return out, err
	}
	defer cli.Close()

	clk := s.Clock()
	// Probe loop: send seq, count echoes, track the largest gap.
	const probePeriod = 10 * time.Millisecond
	echoes := make(chan time.Time, 1024)
	clk.Go(func() {
		for {
			if _, rerr := cli.Recv(5 * time.Second); rerr != nil {
				return
			}
			select {
			case echoes <- clk.Now():
			default:
			}
		}
	})
	stop := make(chan struct{})
	probeLoop := func(stopCh chan struct{}, c *transport.Client) func() {
		return func() {
			t := clk.NewTicker(probePeriod)
			defer t.Stop()
			for {
				clk.Block()
				select {
				case <-stopCh:
					clk.Unblock()
					return
				case <-t.C:
					clk.Unblock()
					c.Send([]byte("probe"))
				}
			}
		}
	}
	clk.Go(probeLoop(stop, cli))

	// Warm up, then roam.
	drainUntil(clk, echoes, 400*time.Millisecond)
	aps[0].Mobility.Prepare("ap2", d.Publication(), -101)
	// Flush any echo that slipped in between warm-up and the roam so
	// the first item on the channel is genuinely post-roam.
	for {
		select {
		case <-echoes:
			continue
		default:
		}
		break
	}
	lastBefore := clk.Now()
	if _, err := d.Attach(aps[1].AirAddr(), 15*time.Second); err != nil {
		close(stop)
		return out, fmt.Errorf("re-attach: %w", err)
	}

	// Legacy transports die at the roam: detect RESET and redial (the
	// application-level reconnect TCP forces).
	if mode == transport.Legacy {
		deadline := clk.Now().Add(5 * time.Second)
		for clk.Now().Before(deadline) {
			if err := cli.Send([]byte("probe")); err != nil {
				break // reset observed
			}
			clk.Sleep(5 * time.Millisecond)
		}
		// Tear the dead connection down completely before redialing:
		// its reader would otherwise keep consuming bearer packets
		// meant for the new connection.
		close(stop)
		stop = make(chan struct{})
		cli.Close()
		cli2, rerr := transport.Dial(d.Bearer(), simnet.Addr{Host: "ott", Port: 7000},
			transport.DialConfig{Mode: mode, Timeout: 15 * time.Second})
		if rerr != nil {
			close(stop)
			return out, fmt.Errorf("legacy redial: %w", rerr)
		}
		defer cli2.Close()
		cli2.Send([]byte("probe"))
		clk.Go(func() {
			for {
				if _, rerr := cli2.Recv(5 * time.Second); rerr != nil {
					return
				}
				select {
				case echoes <- clk.Now():
				default:
				}
			}
		})
	}

	// First echo after the roam bounds the disruption.
	var firstAfter time.Time
	giveUp := clk.NewTimer(10 * time.Second)
	clk.Block()
	select {
	case firstAfter = <-echoes:
		clk.Unblock()
		giveUp.Stop()
	case <-giveUp.C:
		clk.Unblock()
		close(stop)
		out.survived = false
		out.disruptionMs = 10000
		return out, nil
	}
	close(stop)
	out.survived = true
	out.disruptionMs = ms(firstAfter.Sub(lastBefore))
	st := cli.Stats()
	out.lost = int(st.Retransmits)
	return out, nil
}

// drainUntil consumes echo timestamps for the given duration.
func drainUntil(clk simnet.Clock, ch chan time.Time, d time.Duration) {
	deadline := clk.NewTimer(d)
	defer deadline.Stop()
	for {
		clk.Block()
		select {
		case <-ch:
			clk.Unblock()
		case <-deadline.C:
			clk.Unblock()
			return
		}
	}
}
