package exp

import (
	"fmt"
	"math/rand"
	"time"

	"dlte/internal/geo"
	"dlte/internal/metrics"
	"dlte/internal/ott"
	"dlte/internal/phy"
	"dlte/internal/radio"
	"dlte/internal/x2"
)

// E8Result reproduces §5's deployment as a synthetic experiment: one
// band-5 dLTE site on the town gym covering scattered homes, data-only
// service with OTT messaging.
type E8Result struct {
	CoverageTable *metrics.Table
	ServiceTable  *metrics.Table
	// CoveragePct512k is the fraction of homes with ≥512 kbps downlink.
	CoveragePct512k float64
	// PerHomeMbps is the mean per-home throughput with all homes
	// active.
	PerHomeMbps float64
	// OTTDelivered counts relay messages delivered end to end through
	// the live stack.
	OTTDelivered int
}

// RunE8 builds the synthetic town and measures coverage, shared-cell
// capacity, and OTT messaging through the real data path.
func RunE8(opt Options) (E8Result, error) {
	var res E8Result
	rng := rand.New(rand.NewSource(opt.Seed))
	nHomes := 40
	ttis := 2000
	if opt.Quick {
		nHomes = 15
		ttis = 500
	}

	// Homes scattered within 3 km of the gym (AP at origin, 20 m
	// mast, 15 dBi sectors — the paper's hardware).
	type home struct {
		pos   geo.Point
		sinr  float64
		dlBps float64
	}
	band := radio.LTEBand5
	link := radio.Link{Tx: radio.LTEBaseStation, Rx: radio.LTEHandset, Band: band,
		PathLoss: radio.Shadowing{Median: radio.HataSuburban{}, SigmaDB: 6, Seed: opt.Seed}}
	homes := make([]home, nHomes)
	covered512, covered2M := 0, 0
	for i := range homes {
		// Uniform over the disk.
		for {
			p := geo.Pt(rng.Float64()*6000-3000, rng.Float64()*6000-3000)
			if p.Norm() <= 3000 {
				homes[i].pos = p
				break
			}
		}
		dKm := homes[i].pos.Norm() / 1000
		homes[i].sinr = link.SNRdB(dKm)
		homes[i].dlBps = radio.LTEThroughputBps(homes[i].sinr, band.BandwidthHz(), true)
		if homes[i].dlBps >= 512e3 {
			covered512++
		}
		if homes[i].dlBps >= 2e6 {
			covered2M++
		}
	}
	res.CoveragePct512k = 100 * float64(covered512) / float64(nHomes)

	ct := metrics.NewTable("E8 — §5 deployment: coverage of the town (1 site, band 5)",
		"metric", "value")
	ct.AddRow("homes", nHomes)
	ct.AddRow("coverage ≥512 kbps (%)", res.CoveragePct512k)
	ct.AddRow("coverage ≥2 Mbps (%)", 100*float64(covered2M)/float64(nHomes))
	res.CoverageTable = ct

	// The shared-cell capacity sim and the live OTT messaging world
	// are independent; run them concurrently.
	var (
		cell      phy.LTEResult
		delivered int
	)
	err := forEachWorld(opt, 2, func(i int) error {
		if i == 0 {
			// Shared-cell capacity with every home active (PF scheduler).
			var cellUsers []phy.LTEUser
			for j, h := range homes {
				cellUsers = append(cellUsers, phy.LTEUser{ID: fmt.Sprintf("home%d", j), SINRdB: h.sinr})
			}
			cell = phy.SimulateLTECell(phy.LTECellConfig{
				ChannelMHz: band.ChannelWidthMHz, Scheduler: phy.ProportionalFair{},
				HARQ: true, FastFading: true, Seed: opt.Seed,
			}, cellUsers, ttis)
			return nil
		}
		// OTT messaging through the real AP: two attached UEs exchange
		// relay messages (the WhatsApp model of §5).
		d, e := runOTTMessaging(opt.Seed, opt.Shards)
		if e != nil {
			return fmt.Errorf("E8 ott: %w", e)
		}
		delivered = d
		return nil
	})
	if err != nil {
		return res, err
	}
	res.PerHomeMbps = Mbps(cell.TotalBps) / float64(nHomes)

	st := metrics.NewTable("E8b — service through the live stack",
		"metric", "value")
	st.AddRow("cell aggregate Mbps (all homes active)", Mbps(cell.TotalBps))
	st.AddRow("mean per-home Mbps", res.PerHomeMbps)
	res.OTTDelivered = delivered
	st.AddRow("OTT relay messages delivered (of 6)", delivered)
	res.ServiceTable = st
	opt.emit(ct, st)
	return res, nil
}

// runOTTMessaging attaches two UEs to the town AP and exchanges relay
// messages through the live data path.
func runOTTMessaging(seed int64, shards int) (int, error) {
	s, aps, err := newDLTEWorld(1, 3, x2.ModeFairShare, seed, shards)
	if err != nil {
		return 0, err
	}
	defer s.Close()
	ottHost, _ := s.Net.Host("ott")
	relay, err := ott.NewRelay(ottHost, 9100)
	if err != nil {
		return 0, err
	}
	defer relay.Close()

	a, _, err := attachNewUE(s, aps[0], "home-a", imsiFor(8, 1), 0.8)
	if err != nil {
		return 0, err
	}
	b, _, err := attachNewUE(s, aps[0], "home-b", imsiFor(8, 2), 1.6)
	if err != nil {
		return 0, err
	}

	// Register mailboxes through the bearer.
	if err := a.Send("ott:9100", ott.RegisterFrame("alice")); err != nil {
		return 0, err
	}
	if err := b.Send("ott:9100", ott.RegisterFrame("bob")); err != nil {
		return 0, err
	}
	// Wait until both registrations land at the relay.
	clk := s.Clock()
	deadline := clk.Now().Add(5 * time.Second)
	for clk.Now().Before(deadline) {
		_, aOK := relay.Registered("alice")
		_, bOK := relay.Registered("bob")
		if aOK && bOK {
			break
		}
		clk.Sleep(10 * time.Millisecond)
	}

	delivered := 0
	for i := 0; i < 3; i++ {
		a.Send("ott:9100", ott.SendFrame("bob", []byte(fmt.Sprintf("a→b %d", i))))
		if pkt, err := b.Recv(3 * time.Second); err == nil {
			if _, _, perr := ott.ParseDelivery(pkt.Payload); perr == nil {
				delivered++
			}
		}
		b.Send("ott:9100", ott.SendFrame("alice", []byte(fmt.Sprintf("b→a %d", i))))
		if pkt, err := a.Recv(3 * time.Second); err == nil {
			if _, _, perr := ott.ParseDelivery(pkt.Payload); perr == nil {
				delivered++
			}
		}
	}
	return delivered, nil
}
