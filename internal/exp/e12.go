package exp

import (
	"fmt"
	"time"

	"dlte/internal/geo"
	"dlte/internal/metrics"
	"dlte/internal/phy"
	"dlte/internal/radio"
	"dlte/internal/spectrum"
)

// E12 — the spectrum-coexistence frontier (DESIGN.md §13, ROADMAP item
// 4): LTE sharing an unlicensed channel with WiFi, across city-scale
// worlds of independent contention domains. Each domain holds one WiFi
// AP with a drawn population of stations and one LTE AP, both licensed
// in the 2.4 GHz ISM band through the SAS-style spectrum.Database; the
// registry's ContentionDomains computation partitions the city and is
// verified against the intended geometry (domain centers sit beyond the
// radio horizon). Per domain, the frontier compares:
//
//   - wifi-alone: the DCF baseline, no LTE in the band;
//   - LTE-U duty cycling at 1/3, 1/2, 4/5 (CSAT-style blind bursts —
//     invisible to carrier sense, so they trample WiFi frames and get
//     trampled back: the related work's "neither friend nor foe");
//   - LTE LBT (category-4 listen-before-talk, 4 ms TXOP, CW 63 —
//     defers like a WiFi station, restoring WiFi at real LTE goodput);
//   - registry TDM: spectrum.PlanTDM splits the frame between the
//     domain's registered APs and phy.SimulateTDM prices the schedule —
//     dLTE's coordinated alternative (§4.3), which needs no contention
//     at all because the license database knows every transmitter.
//
// Determinism: every per-domain quantity is a pure function of (seed,
// size, domain index) via splitmix64; domains run concurrently under
// Options.Parallelism into index-addressed slots and are reduced in
// index order, so the rendered tables are byte-identical at any -p.
type E12Result struct {
	FrontierTable, ScaleTable *metrics.Table
	// Sizes are the domain counts swept; DomainsBySize the number of
	// registry-computed contention domains per size (must equal the
	// size — the partition verification).
	Sizes         []int
	DomainsBySize map[int]int
	// Per-scheme per-domain means at the largest size, keyed by scheme
	// name.
	WiFiMbps, LTEMbps, TotalMbps map[string]float64
	// AirtimeJain is the two-network airtime fairness (WiFi aggregate
	// vs LTE) per scheme; wifi-alone has no second network and is
	// absent.
	AirtimeJain map[string]float64
	// WiFiCollisionRate aggregates station collisions/attempts.
	WiFiCollisionRate map[string]float64
	Schemes           []string
}

const (
	e12SpacingM   = 50_000.0 // domain grid pitch: beyond the radio horizon
	e12EIRPdBm    = 30.0
	e12HeightM    = 10.0
	e12LTERateBps = 36e6 // 10 MHz LTE carrier, near peak
	e12PeriodMs   = 40.0 // CSAT duty period
	e12TXOPMs     = 4.0  // LBT burst bound
	e12LBTCW      = 63   // LBT fixed contention window
	e12TDMSlots   = 20   // registry TDM frame length
)

// e12Now anchors grant expiry handling; fixed so runs are reproducible.
var e12Now = time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)

var e12Schemes = []string{
	"wifi-alone", "LTE-U duty 0.33", "LTE-U duty 0.50", "LTE-U duty 0.80",
	"LTE LBT", "registry TDM",
}

func e12Sizes(opt Options) []int {
	if opt.Quick {
		return []int{16, 64}
	}
	return []int{64, 512, 2048}
}

func e12Seconds(opt Options) float64 {
	if opt.Quick {
		return 0.4
	}
	return 1.0
}

func e12WiFiAP(d int) string { return fmt.Sprintf("wifi-d%d", d) }
func e12LTEAP(d int) string  { return fmt.Sprintf("lte-d%d", d) }

// e12Stations draws domain d's WiFi population: 4–8 saturated stations
// with rates from the 54/24/12 Mbps mix (the DCF rate-anomaly
// population), purely from (seed, size, d).
func e12Stations(seed int64, size, d int) []phy.DCFStation {
	h := splitmix64(uint64(seed) ^ 0xE12C0E815FB1ED01)
	h = splitmix64(h ^ uint64(size)<<32 ^ uint64(d))
	n := 4 + int(h%5)
	rates := []float64{54e6, 24e6, 12e6}
	stations := make([]phy.DCFStation, n)
	for i := range stations {
		h = splitmix64(h)
		stations[i] = phy.DCFStation{
			ID:        fmt.Sprintf("d%d-s%d", d, i),
			RateBps:   rates[h%3],
			Saturated: true,
		}
	}
	return stations
}

// e12Offset draws domain d's CSAT phase offset in [0, period).
func e12Offset(seed int64, size, d int) float64 {
	h := splitmix64(uint64(seed) ^ 0x0FF5E7D12E12E12E)
	h = splitmix64(h ^ uint64(size)<<32 ^ uint64(d))
	return float64(h % uint64(e12PeriodMs))
}

// e12City registers both APs of every domain in the ISM band and
// returns the registry's contention-domain members per domain index,
// verifying the partition matches the geometry: exactly `size` domains
// of exactly the two co-located APs each.
func e12City(size int) ([][]string, error) {
	db := spectrum.NewDatabase()
	side := 1
	for side*side < size {
		side++
	}
	for d := 0; d < size; d++ {
		cx := float64(d%side) * e12SpacingM
		cy := float64(d/side) * e12SpacingM
		for _, g := range []spectrum.Grant{
			{APID: e12LTEAP(d), Position: geo.Pt(cx, cy)},
			{APID: e12WiFiAP(d), Position: geo.Pt(cx+150, cy)},
		} {
			g.Band = radio.ISM24.Name
			g.EIRPdBm = e12EIRPdBm
			g.HeightM = e12HeightM
			if err := db.Request(g, e12Now); err != nil {
				return nil, fmt.Errorf("e12: grant %s: %w", g.APID, err)
			}
		}
	}
	domains := spectrum.ContentionDomains(db.Active(radio.ISM24.Name, e12Now), nil,
		spectrum.InterferenceThresholdDBm)
	if len(domains) != size {
		return nil, fmt.Errorf("e12: registry found %d contention domains, want %d", len(domains), size)
	}
	byMember := make(map[string]int, 2*size)
	for i, members := range domains {
		if len(members) != 2 {
			return nil, fmt.Errorf("e12: domain %v has %d members, want 2", members, len(members))
		}
		for _, m := range members {
			byMember[m] = i
		}
	}
	out := make([][]string, size)
	for d := 0; d < size; d++ {
		wi, ok1 := byMember[e12WiFiAP(d)]
		li, ok2 := byMember[e12LTEAP(d)]
		if !ok1 || !ok2 || wi != li {
			return nil, fmt.Errorf("e12: domain %d APs not co-resident in the registry partition", d)
		}
		out[d] = domains[wi]
	}
	return out, nil
}

// e12DomainOut is one domain's outcome for every scheme.
type e12DomainOut struct {
	wifiBps, lteBps      []float64
	attempts, collisions []int
	jain                 []float64 // two-network airtime fairness; NaN-free, -1 = n/a
}

// e12WiFiAirtime converts per-station goodput into airtime occupied:
// Σ tput/rate (the denominator the fairness literature normalizes by).
func e12WiFiAirtime(stations []phy.DCFStation, perNode map[string]float64, macFactor float64) float64 {
	var air float64
	for _, st := range stations {
		air += perNode[st.ID] / (st.RateBps * macFactor)
	}
	return air
}

// e12Domain runs all schemes for one domain.
func e12Domain(opt Options, size, d int, members []string, seconds float64) e12DomainOut {
	ns := len(e12Schemes)
	out := e12DomainOut{
		wifiBps: make([]float64, ns), lteBps: make([]float64, ns),
		attempts: make([]int, ns), collisions: make([]int, ns),
		jain: make([]float64, ns),
	}
	stations := e12Stations(opt.Seed, size, d)
	seed := opt.Seed ^ int64(splitmix64(uint64(size)<<32|uint64(d)))

	record := func(s int, r phy.CoexResult) {
		out.wifiBps[s] = r.WiFiBps
		out.lteBps[s] = r.LTEBps
		out.attempts[s] = r.WiFiAttempts
		out.collisions[s] = r.WiFiCollisions
		out.jain[s] = -1
		if r.LTEBps > 0 || s > 0 {
			out.jain[s] = metrics.JainIndex([]float64{
				e12WiFiAirtime(stations, r.PerNodeBps, 1),
				r.LTEBps / e12LTERateBps,
			})
		}
	}

	// wifi-alone.
	record(0, phy.SimulateCoex(phy.CoexConfig{WiFi: stations, Seed: seed}, seconds))
	// LTE-U duty sweep.
	for s, duty := range []float64{0.33, 0.5, 0.8} {
		record(1+s, phy.SimulateCoex(phy.CoexConfig{
			WiFi: stations,
			LTE: []phy.LTENode{{
				ID: e12LTEAP(d), Kind: phy.LTEUDuty, RateBps: e12LTERateBps,
				OnMs: duty * e12PeriodMs, PeriodMs: e12PeriodMs,
				OffsetMs: e12Offset(opt.Seed, size, d),
			}},
			Seed: seed,
		}, seconds))
	}
	// LTE LBT.
	record(4, phy.SimulateCoex(phy.CoexConfig{
		WiFi: stations,
		LTE: []phy.LTENode{{
			ID: e12LTEAP(d), Kind: phy.LTELBT, RateBps: e12LTERateBps,
			TXOPMs: e12TXOPMs, CW: e12LBTCW,
		}},
		Seed: seed,
	}, seconds))

	// Registry TDM: the domain's member list (as the registry computed
	// it) is split 50/50 between the two APs; the WiFi AP schedules its
	// stations inside its share at the contention-free MAC rate.
	plan := spectrum.PlanTDM(members, nil, e12TDMSlots)
	frac := make(map[string]float64, len(plan))
	for _, sh := range plan {
		frac[sh.APID] = sh.Fraction
	}
	fw, fl := frac[e12WiFiAP(d)], frac[e12LTEAP(d)]
	shares := make([]phy.TDMShare, 0, len(stations)+1)
	for _, st := range stations {
		shares = append(shares, phy.TDMShare{
			ID: st.ID, Weight: fw / float64(len(stations)),
			RateBps: st.RateBps * phy.WiFiLikeMACFactor,
		})
	}
	shares = append(shares, phy.TDMShare{ID: e12LTEAP(d), Weight: fl, RateBps: e12LTERateBps})
	tdm := phy.SimulateTDM(shares)
	lte := tdm.PerStationBps[e12LTEAP(d)]
	out.wifiBps[5] = tdm.TotalBps - lte
	out.lteBps[5] = lte
	out.jain[5] = metrics.JainIndex([]float64{
		e12WiFiAirtime(stations, tdm.PerStationBps, phy.WiFiLikeMACFactor),
		lte / e12LTERateBps,
	})
	return out
}

// RunE12 sweeps the city sizes and renders the coexistence frontier (at
// the largest size) plus the per-size scale table.
func RunE12(opt Options) (E12Result, error) {
	sizes := e12Sizes(opt)
	seconds := e12Seconds(opt)
	res := E12Result{
		Sizes:         sizes,
		DomainsBySize: map[int]int{},
		WiFiMbps:      map[string]float64{}, LTEMbps: map[string]float64{},
		TotalMbps: map[string]float64{}, AirtimeJain: map[string]float64{},
		WiFiCollisionRate: map[string]float64{},
		Schemes:           e12Schemes,
	}
	ns := len(e12Schemes)

	scale := metrics.NewTable("E12 — city scale (one WiFi AP + one LTE AP per domain, ISM 2.4 GHz)",
		"domains", "grants", "registry domains", "WiFi-alone Gbps", "LTE-U 0.50 Gbps", "LBT Gbps", "TDM Gbps")

	var frontier *metrics.Table
	for _, size := range sizes {
		members, err := e12City(size)
		if err != nil {
			return res, err
		}
		res.DomainsBySize[size] = size

		outs := make([]e12DomainOut, size)
		if err := forEachWorld(opt, size, func(d int) error {
			outs[d] = e12Domain(opt, size, d, members[d], seconds)
			return nil
		}); err != nil {
			return res, err
		}

		// Index-ordered reduction: per-scheme sums across domains.
		wifi := make([]float64, ns)
		lte := make([]float64, ns)
		jain := make([]float64, ns)
		att := make([]int, ns)
		coll := make([]int, ns)
		for d := 0; d < size; d++ {
			for s := 0; s < ns; s++ {
				wifi[s] += outs[d].wifiBps[s]
				lte[s] += outs[d].lteBps[s]
				att[s] += outs[d].attempts[s]
				coll[s] += outs[d].collisions[s]
				if outs[d].jain[s] >= 0 {
					jain[s] += outs[d].jain[s]
				}
			}
		}

		cityGbps := func(s int) string {
			return fmt.Sprintf("%.2f", (wifi[s]+lte[s])/1e9)
		}
		scale.AddRow(size, 2*size, len(members), cityGbps(0), cityGbps(2), cityGbps(4), cityGbps(5))

		if size == sizes[len(sizes)-1] {
			frontier = metrics.NewTable(
				fmt.Sprintf("E12 — spectrum-coexistence frontier (%d domains, per-domain means)", size),
				"scheme", "WiFi Mbps", "LTE Mbps", "total Mbps", "WiFi vs alone", "WiFi coll rate", "airtime Jain")
			n := float64(size)
			for s, name := range e12Schemes {
				res.WiFiMbps[name] = Mbps(wifi[s] / n)
				res.LTEMbps[name] = Mbps(lte[s] / n)
				res.TotalMbps[name] = Mbps((wifi[s] + lte[s]) / n)
				rate := 0.0
				if att[s] > 0 {
					rate = float64(coll[s]) / float64(att[s])
				}
				res.WiFiCollisionRate[name] = rate
				vsAlone := "1.00"
				if s > 0 {
					vsAlone = fmt.Sprintf("%.2f", wifi[s]/wifi[0])
				}
				jainCell, collCell := "n/a", "n/a"
				if s != 0 {
					res.AirtimeJain[name] = jain[s] / n
					jainCell = fmt.Sprintf("%.3f", jain[s]/n)
				}
				if s != 5 {
					collCell = fmt.Sprintf("%.3f", rate)
				}
				frontier.AddRow(name,
					fmt.Sprintf("%.2f", res.WiFiMbps[name]),
					fmt.Sprintf("%.2f", res.LTEMbps[name]),
					fmt.Sprintf("%.2f", res.TotalMbps[name]),
					vsAlone, collCell, jainCell)
			}
		}
	}

	res.FrontierTable, res.ScaleTable = frontier, scale
	opt.emit(frontier, scale)
	return res, nil
}
