package exp

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"dlte/internal/metrics"
	"dlte/internal/mobility"
	"dlte/internal/simnet"
	"dlte/internal/ue"
)

// Scenario compiler: declarative city-scale mobility specs lowered onto
// the PR 7 sharded-scheduler machinery. A ScenarioSpec describes *what
// happens* — a vehicular corridor through a string of APs, a flash
// crowd converging on a stadium, an AP failure/recovery wave — and
// Compile lowers it to a compact world: UEs are struct-of-arrays slots
// (ue.IdlePool plus a serving-cell array), their behaviour is periodic
// measurement events parked in per-region timing wheels, and every
// per-UE quantity is a pure function of (seed, global index, event
// ordinal), so the world is byte-deterministic at any worker count.
//
// The same spec runs under two schemes. SchemeDLTE evaluates the real
// mobility.Trigger policy per measurement tick and pays a modeled
// per-handover interruption draw; SchemeTelecom performs the same
// movement but pays the constant MME-masked handover cost
// (centralHandoverMs, as in E4) — and, in a failure wave, loses every
// UE the moment the wave takes out the shared EPC, while dLTE islands
// keep serving whoever can hear a surviving AP.

// Scheme selects whose mobility plane the compiled world models.
type Scheme int

// The two schemes every scenario compiles under.
const (
	SchemeDLTE Scheme = iota
	SchemeTelecom
)

// String names the scheme as the E11 table prints it.
func (s Scheme) String() string {
	if s == SchemeTelecom {
		return "telecom LTE"
	}
	return "dLTE"
}

// ScenarioKind is the shape of a compiled scenario.
type ScenarioKind int

// The three E11 scenario shapes.
const (
	KindCorridor ScenarioKind = iota
	KindFlashCrowd
	KindFailureWave
)

// ScenarioSpec declares a mobility scenario. Fields are interpreted by
// kind; zero values take the defaults noted per field.
type ScenarioSpec struct {
	Name string
	Kind ScenarioKind
	// UEs is the compact population; APs the number of cells.
	UEs, APs int
	// SpacingM is the inter-AP distance along the corridor (or the
	// home-cell grid pitch), meters.
	SpacingM float64
	// SpeedMps is the corridor's mean vehicle speed (jittered ±25% per
	// UE).
	SpeedMps float64
	// HotCells is how many cells the flash crowd converges on;
	// ConvergeAt/DisperseAt bound the event.
	HotCells               int
	ConvergeAt, DisperseAt time.Duration
	// FailAPs cells (indices 0..FailAPs-1) crash at FailAt and restart
	// at RecoverAt — the simnet-injected failure wave.
	FailAPs           int
	FailAt, RecoverAt time.Duration
	// Promotions is how many compact UEs get real activity (flash
	// crowd): they are promoted out of the IdlePool standing army and
	// replayed through the full stack by the experiment.
	Promotions int
	// Horizon ends the world.
	Horizon time.Duration
}

// Scenario world shape. Like E13, the region count is a modeling unit
// — a fixed partition of the population — never a performance knob;
// Options.Shards only picks how many OS threads drain the regions.
const (
	scenRegions = 64
	scenWindow  = 250 * time.Millisecond

	// Measurement cadence: each UE evaluates its radio environment
	// every measureBase + [0, measureJitter) — drawn per (UE, tick) so
	// the population desynchronizes naturally.
	scenMeasureBase   = 2 * time.Second
	scenMeasureJitter = 1 * time.Second

	// Modeled dLTE handover interruption: break-before-make re-attach,
	// drawn per handover. The telecom scheme pays centralHandoverMs
	// flat (E4's modeled MME handover).
	scenHOBaseMs   = 18
	scenHOJitterMs = 22

	// Radio model: log-distance pathloss anchored at −60 dBm @ 100 m,
	// 35 dB/decade. Cells are audible to ~3 km — pure geometry, no rng.
	scenRSRPRefDBm  = -60.0
	scenRSRPRefM    = 100.0
	scenRSRPSlope   = 35.0
	scenMinUsableDB = -120.0
)

// Event kinds packed kind<<62 | region-local slot index.
const (
	scenKindStart = iota
	scenKindMeasure
	scenKindActivity
)

func scenArg(kind uint64, l int) uint64 { return kind<<62 | uint64(l) }

// scenUE is one UE's drawn identity: start stagger, speed factor, home
// cell, and position offsets. Recomputed on demand, never stored.
type scenUE struct {
	start time.Duration // first measurement tick
	speed float64       // corridor m/s (already jittered)
	home  int           // home cell index
	offM  float64       // offset within the home cell, meters
	guti  uint64
	ip    uint32
}

func scenDraw(spec *ScenarioSpec, seed int64, gi int) scenUE {
	h := splitmix64(uint64(seed) ^ 0xA24BAED4963EE407)
	h = splitmix64(h ^ uint64(gi))
	h1 := splitmix64(h)
	h2 := splitmix64(h1)
	h3 := splitmix64(h2)
	u := scenUE{
		start: time.Duration(h % uint64(2*time.Second)),
		speed: spec.SpeedMps * (0.75 + 0.5*float64(h1%1000)/1000),
		home:  int(h2 % uint64(spec.APs)),
		offM:  (float64(h2>>32%1000)/1000 - 0.5) * spec.SpacingM,
		guti:  h3,
		ip:    uint32(h3 >> 32),
	}
	return u
}

// scenMeasurePeriod draws the gap to a UE's next measurement tick, pure
// in (seed, gi, tick ordinal).
func scenMeasurePeriod(seed int64, gi, tick int) time.Duration {
	h := splitmix64(uint64(seed) ^ 0xC2B2AE3D27D4EB4F)
	h = splitmix64(h ^ uint64(gi)<<20 ^ uint64(tick))
	return scenMeasureBase + time.Duration(h%uint64(scenMeasureJitter))
}

// scenHODraw is the modeled dLTE interruption for UE gi's k-th
// handover, milliseconds.
func scenHODraw(seed int64, gi int, k uint32) float64 {
	h := splitmix64(uint64(seed) ^ 0x9FB21C651E98DF25)
	h = splitmix64(h ^ uint64(gi)<<16 ^ uint64(k))
	return scenHOBaseMs + float64(h%(scenHOJitterMs*1000))/1000
}

// scenRSRP is the audible power at distance d meters — the same
// log-distance model everywhere, so trigger decisions are pure
// geometry.
func scenRSRP(dM float64) float64 {
	if dM < scenRSRPRefM {
		dM = scenRSRPRefM
	}
	return scenRSRPRefDBm - scenRSRPSlope*math.Log10(dM/scenRSRPRefM)
}

// cellX is cell c's position along the corridor axis.
func (spec *ScenarioSpec) cellX(c int) float64 { return float64(c) * spec.SpacingM }

// cellDown reports whether cell c is inside the failure window at t —
// a pure function of time, so regions need no cross-talk to agree on
// the wave.
func (spec *ScenarioSpec) cellDown(c int, t time.Duration) bool {
	if spec.Kind != KindFailureWave || c >= spec.FailAPs {
		return false
	}
	return t >= spec.FailAt && t < spec.RecoverAt
}

// uePos is UE gi's position along the corridor axis at time t — pure
// geometry per kind.
func (spec *ScenarioSpec) uePos(u scenUE, t time.Duration) float64 {
	switch spec.Kind {
	case KindCorridor:
		// Vehicles enter at their home cell and drive toward the far
		// end, wrapping back to the start of the corridor (a loop
		// road), so handovers keep coming for the whole horizon.
		span := float64(spec.APs-1) * spec.SpacingM
		if span <= 0 {
			return 0
		}
		x := spec.cellX(u.home) + u.offM + u.speed*t.Seconds()
		return math.Mod(math.Mod(x, span)+span, span)
	case KindFlashCrowd:
		// Home cell, except during the event window when the crowd
		// stands at one of the hot cells (center of the deployment).
		if t >= spec.ConvergeAt && t < spec.DisperseAt {
			hot := spec.APs/2 - spec.HotCells/2 + u.home%spec.HotCells
			return spec.cellX(hot) + u.offM/8 // packed tight
		}
		return spec.cellX(u.home) + u.offM
	default: // KindFailureWave: stationary population
		return spec.cellX(u.home) + u.offM
	}
}

// bestLiveCell picks the strongest audible live cell for a UE at x —
// the compact analogue of mobility.BestCell over the cell string.
func (spec *ScenarioSpec) bestLiveCell(x float64, t time.Duration) (int, float64) {
	best, bestRSRP := -1, math.Inf(-1)
	// Only cells within a few spacings matter; scan a window.
	c0 := int(x/spec.SpacingM) - 3
	if c0 < 0 {
		c0 = 0
	}
	for c := c0; c < spec.APs && c <= c0+6; c++ {
		if spec.cellDown(c, t) {
			continue
		}
		r := scenRSRP(math.Abs(x - spec.cellX(c)))
		if r > bestRSRP {
			best, bestRSRP = c, r
		}
	}
	if bestRSRP < scenMinUsableDB {
		return -1, bestRSRP
	}
	return best, bestRSRP
}

// scenPromo is one flash-crowd promotion record, merged across regions
// by (at, gi).
type scenPromo struct {
	at  time.Duration
	gi  uint64
	rec ue.PromoteRecord
}

// scenRegion owns one wheel's worth of the population. Within a
// barrier window it touches only its own slots and counters — the
// commutative-aggregation pattern ShardedScheduler permits.
type scenRegion struct {
	idx, base, count int
	spec             *ScenarioSpec
	scheme           Scheme
	seed             int64
	sch              *simnet.Scheduler
	pool             *ue.IdlePool
	serving          []int32  // cell index, -1 while out of service
	hoCount          []uint32 // per-slot handovers (the draw ordinal)

	events, handovers   uint64
	dropped, reattached uint64 // failure-wave outcomes
	interruptMs         []float64
	promos              []scenPromo
}

func (r *scenRegion) handle(arg uint64) {
	r.events++
	l := int(arg &^ (uint64(3) << 62))
	gi := r.base + l
	now := r.sch.Now()
	switch arg >> 62 {
	case scenKindStart:
		u := scenDraw(r.spec, r.seed, gi)
		r.pool.StartAttach(l)
		r.pool.Register(l, u.guti, u.ip)
		cell, _ := r.spec.bestLiveCell(r.spec.uePos(u, now), now)
		r.serving[l] = int32(cell)
		r.sch.AtIndexed(now+scenMeasurePeriod(r.seed, gi, 0), scenArg(scenKindMeasure, l))
	case scenKindMeasure:
		r.measure(l, gi, now)
	case scenKindActivity:
		if r.pool.State(l) != ue.IdleAttached {
			return
		}
		r.promos = append(r.promos, scenPromo{at: now, gi: uint64(gi), rec: r.pool.Promote(l)})
	}
}

// measure is one UE's periodic radio check — the compact lowering of
// the mobility plane's trigger loop.
func (r *scenRegion) measure(l, gi int, now time.Duration) {
	spec := r.spec
	u := scenDraw(spec, r.seed, gi)
	x := spec.uePos(u, now)
	cur := int(r.serving[l])

	telecomDead := r.scheme == SchemeTelecom && spec.Kind == KindFailureWave &&
		now >= spec.FailAt && now < spec.RecoverAt

	switch {
	case telecomDead:
		// The shared EPC died with the wave: no AP can serve anyone,
		// islands or not.
		if cur >= 0 {
			r.serving[l] = -1
			r.dropped++
		}
	case cur >= 0 && spec.cellDown(cur, now):
		// Serving cell crashed under the UE: grab the best survivor or
		// drop.
		if best, _ := spec.bestLiveCell(x, now); best >= 0 {
			r.serving[l] = int32(best)
			r.recordHandover(gi, l)
			r.reattached++
		} else {
			r.serving[l] = -1
			r.dropped++
		}
	case cur < 0:
		// Out of service (dropped earlier): re-attach as soon as any
		// cell is audible again.
		if best, _ := spec.bestLiveCell(x, now); best >= 0 {
			r.serving[l] = int32(best)
		}
	default:
		// Normal trigger evaluation: does the best neighbour beat the
		// serving cell by the A3 hysteresis (or the serving cell fall
		// below the floor)?
		servingRSRP := scenRSRP(math.Abs(x - spec.cellX(cur)))
		if best, bestRSRP := spec.bestLiveCell(x, now); best >= 0 && best != cur &&
			scenTrigger.Decide(servingRSRP, bestRSRP) {
			r.serving[l] = int32(best)
			r.recordHandover(gi, l)
		}
	}

	tick := int(r.hoCount[l]) + int(r.pool.TAUCount(l))
	r.pool.TrackingAreaUpdate(l) // tick counter doubles as measure count
	r.sch.AtIndexed(now+scenMeasurePeriod(r.seed, gi, tick+1), scenArg(scenKindMeasure, l))
}

func (r *scenRegion) recordHandover(gi, l int) {
	r.handovers++
	if r.scheme == SchemeTelecom {
		r.interruptMs = append(r.interruptMs, centralHandoverMs)
	} else {
		r.interruptMs = append(r.interruptMs, scenHODraw(r.seed, gi, r.hoCount[l]))
	}
	r.hoCount[l]++
}

// scenTrigger is the one handover policy every compiled scenario
// evaluates — the same mobility.Trigger the real planes run.
var scenTrigger = mobility.DefaultTrigger()

// CompiledScenario is a runnable compact world.
type CompiledScenario struct {
	Spec    ScenarioSpec
	Scheme  Scheme
	seed    int64
	ss      *simnet.ShardedScheduler
	regions []*scenRegion
}

// CompileScenario lowers spec onto a sharded compact world. workers
// follows the Options.Shards convention (0 = one per CPU) and never
// changes results.
func CompileScenario(spec ScenarioSpec, scheme Scheme, seed int64, workers int) (*CompiledScenario, error) {
	if spec.UEs <= 0 || spec.APs <= 1 || spec.SpacingM <= 0 {
		return nil, fmt.Errorf("scenario %q: need UEs>0, APs>1, SpacingM>0", spec.Name)
	}
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	w := &CompiledScenario{
		Spec: spec, Scheme: scheme, seed: seed,
		ss: simnet.NewShardedScheduler(scenRegions, scenWindow, workers),
	}
	q, rem := spec.UEs/scenRegions, spec.UEs%scenRegions
	base := 0
	for i := 0; i < scenRegions; i++ {
		count := q
		if i < rem {
			count++
		}
		reg := &scenRegion{
			idx: i, base: base, count: count,
			spec: &w.Spec, scheme: scheme, seed: seed,
			sch:     w.ss.Region(i),
			pool:    ue.NewIdlePool(count),
			serving: make([]int32, count),
			hoCount: make([]uint32, count),
		}
		reg.sch.OnIndexed = reg.handle
		w.regions = append(w.regions, reg)
		base += count
	}
	return w, nil
}

// Run seeds every UE's start event (plus flash-crowd activity events)
// and drains the world to the spec's horizon.
func (w *CompiledScenario) Run() error {
	spec := &w.Spec
	for _, reg := range w.regions {
		for l := 0; l < reg.count; l++ {
			if _, ok := reg.pool.Alloc(); !ok {
				return fmt.Errorf("scenario %q: region %d pool exhausted", spec.Name, reg.idx)
			}
			reg.sch.AtIndexed(scenDraw(spec, w.seed, reg.base+l).start, scenArg(scenKindStart, l))
		}
	}
	if spec.Kind == KindFlashCrowd {
		for k := 0; k < spec.Promotions && k < spec.UEs; k++ {
			gi := k * spec.UEs / spec.Promotions
			reg := w.regionOf(gi)
			// Activity hits mid-event, 1 ms apart so the merged log has
			// a stable order even if two land in one region.
			at := spec.ConvergeAt + 5*time.Second + time.Duration(k)*time.Millisecond
			reg.sch.AtIndexed(at, scenArg(scenKindActivity, gi-reg.base))
		}
	}
	w.ss.RunUntil(spec.Horizon, nil)
	return nil
}

func (w *CompiledScenario) regionOf(gi int) *scenRegion {
	for _, reg := range w.regions {
		if gi < reg.base+reg.count {
			return reg
		}
	}
	return w.regions[len(w.regions)-1]
}

// Handovers is the world's total handover count (commutative sum).
func (w *CompiledScenario) Handovers() uint64 {
	var n uint64
	for _, reg := range w.regions {
		n += reg.handovers
	}
	return n
}

// Events sums per-region event counts.
func (w *CompiledScenario) Events() uint64 {
	var n uint64
	for _, reg := range w.regions {
		n += reg.events
	}
	return n
}

// Outage reports the failure-wave outcome: how many UEs lost their
// serving cell to the wave, how many of those immediately re-attached
// to a surviving island, and the resulting survival rate. A scenario
// with no failure wave reports 1.0.
func (w *CompiledScenario) Outage() (dropped, reattached uint64, survival float64) {
	for _, reg := range w.regions {
		dropped += reg.dropped
		reattached += reg.reattached
	}
	affected := dropped + reattached
	if affected == 0 {
		return 0, 0, 1.0
	}
	return dropped, reattached, float64(reattached) / float64(affected)
}

// InterruptionQuantiles reports the modeled per-handover interruption
// p50/p99 in ms. Samples are concatenated in region order — the region
// partition is a fixed modeling unit, so the multiset and its order
// are worker-invariant.
func (w *CompiledScenario) InterruptionQuantiles() (p50, p99 float64) {
	h := metrics.NewHistogram()
	for _, reg := range w.regions {
		for _, v := range reg.interruptMs {
			h.Observe(v)
		}
	}
	return h.Quantile(0.5), h.Quantile(0.99)
}

// Promotions is the merged flash-crowd promotion log in (at, gi)
// order, ready to replay through the real stack.
func (w *CompiledScenario) Promotions() []scenPromo {
	parts := make([][]scenPromo, len(w.regions))
	for i, reg := range w.regions {
		parts[i] = reg.promos
	}
	return simnet.MergeRegions(parts, func(p scenPromo) (time.Duration, uint64) {
		return p.at, p.gi
	})
}

// Verify checks end-state invariants: every slot live, and (outside a
// telecom failure wave) everyone back in service by the horizon.
func (w *CompiledScenario) Verify() error {
	live, outOfService := 0, 0
	for _, reg := range w.regions {
		live += reg.pool.Live()
		for _, s := range reg.serving {
			if s < 0 {
				outOfService++
			}
		}
	}
	if live != w.Spec.UEs {
		return fmt.Errorf("scenario %q: %d live slots, want %d", w.Spec.Name, live, w.Spec.UEs)
	}
	if w.Spec.Kind == KindFailureWave && w.Spec.RecoverAt < w.Spec.Horizon && outOfService > 0 {
		return fmt.Errorf("scenario %q: %d UEs still out of service after recovery", w.Spec.Name, outOfService)
	}
	return nil
}
