package exp

import (
	"fmt"
	"time"

	"dlte/internal/baseline"
	"dlte/internal/core"
	"dlte/internal/geo"
	"dlte/internal/metrics"
	"dlte/internal/mobility"
	"dlte/internal/radio"
	"dlte/internal/s1ap"
	"dlte/internal/simnet"
	"dlte/internal/ue"
	"dlte/internal/x2"
)

// E11 — city-scale mobility under the unified mobility plane
// (DESIGN.md §12). Three compiled scenarios — a vehicular corridor
// through a string of APs, a 50k flash crowd converging on a handful of
// cells, and an AP failure/recovery wave — each run under both schemes
// (dLTE's distributed planes vs the telecom baseline's MME-masked
// handover), reporting handover interruption p50/p99, session survival
// through the failure wave, and signaling bytes per handover.
//
// Two measurement layers per scenario:
//
//   - The compact layer (internal/exp/scenario.go) lowers the spec onto
//     the PR 7 ShardedScheduler: tens of thousands of SoA UEs evaluate
//     the real mobility.Trigger per measurement tick; handover counts,
//     modeled interruption quantiles, and failure-wave survival come
//     from commutative per-region tallies.
//   - The probe layer drives ONE real UE through the full stack — X2
//     prepare via mobility.Plane, break-before-make re-attach, GTP
//     re-point — with a shared mobility.Meter stitching the source
//     plane's X2 bytes and the UE seam's interruption window into one
//     Record per handover. Probe numbers anchor the compact model to
//     the real protocol cost.
//
// Determinism: tables are byte-identical at any -p/-shards. The compact
// worlds are worker-invariant by construction; the probe worlds run on
// virtual clocks; telecom byte costs come from real codec sizes, not
// timing.

// E11Result carries the table plus headline metrics per scenario name.
type E11Result struct {
	Table *metrics.Table
	// Handovers / TelecomHandovers are the compact worlds' totals.
	Handovers, TelecomHandovers map[string]uint64
	// Survival / TelecomSurvival are the failure-wave session survival
	// rates (1.0 outside a failure wave).
	Survival, TelecomSurvival map[string]float64
	// ProbeInterruptMs is the real-stack measured handover interruption
	// (median across probe handovers).
	ProbeInterruptMs map[string]float64
	// BytesPerHandover is the dLTE probe's measured signaling cost
	// (X2 choreography + NAS re-attach); TelecomBytesPerHandover is the
	// baseline's codec-derived cost (X2 request/ack + S1AP path switch).
	BytesPerHandover        map[string]float64
	TelecomBytesPerHandover float64
	// FailureProbeSurvived / FailureProbeTelecomSurvived are the real
	// failure-wave probe outcomes: a dLTE UE re-attaching to a
	// surviving island vs a telecom UE stranded behind a dead EPC.
	FailureProbeSurvived, FailureProbeTelecomSurvived bool
	// WallByScenario is real-CPU (never rendered).
	WallByScenario map[string]time.Duration
}

// e11Specs declares the three scenarios. Quick shrinks populations and
// horizons for CI; the shapes are identical.
func e11Specs(opt Options) []ScenarioSpec {
	if opt.Quick {
		return []ScenarioSpec{
			{Name: "corridor", Kind: KindCorridor, UEs: 2_000, APs: 8,
				SpacingM: 1000, SpeedMps: 25, Horizon: 120 * time.Second},
			{Name: "flash-crowd", Kind: KindFlashCrowd, UEs: 5_000, APs: 12,
				SpacingM: 1000, HotCells: 4, Promotions: 2,
				ConvergeAt: 30 * time.Second, DisperseAt: 80 * time.Second,
				Horizon: 110 * time.Second},
			{Name: "failure-wave", Kind: KindFailureWave, UEs: 3_000, APs: 10,
				SpacingM: 1000, FailAPs: 3,
				FailAt: 30 * time.Second, RecoverAt: 80 * time.Second,
				Horizon: 110 * time.Second},
		}
	}
	return []ScenarioSpec{
		{Name: "corridor", Kind: KindCorridor, UEs: 10_000, APs: 12,
			SpacingM: 1000, SpeedMps: 25, Horizon: 240 * time.Second},
		{Name: "flash-crowd", Kind: KindFlashCrowd, UEs: 50_000, APs: 20,
			SpacingM: 1000, HotCells: 4, Promotions: 4,
			ConvergeAt: 60 * time.Second, DisperseAt: 150 * time.Second,
			Horizon: 200 * time.Second},
		{Name: "failure-wave", Kind: KindFailureWave, UEs: 20_000, APs: 12,
			SpacingM: 1000, FailAPs: 4,
			FailAt: 60 * time.Second, RecoverAt: 150 * time.Second,
			Horizon: 200 * time.Second},
	}
}

// telecomHandoverBytes is the baseline's per-handover signaling cost,
// sized from the real codecs: the inter-eNodeB X2 request/ack plus the
// S1AP path switch the MME needs to re-point the core tunnel. Framing
// matches the X2 agent's 4-byte length prefix.
func telecomHandoverBytes() (uint64, error) {
	var total uint64
	for _, m := range []x2.Message{
		&x2.HandoverRequest{IMSI: "001010000000000", SourceAP: "site1", RSRPdBm: -9500},
		&x2.HandoverRequestAck{IMSI: "001010000000000", Accepted: true},
	} {
		b, err := x2.Marshal(m)
		if err != nil {
			return 0, err
		}
		total += uint64(len(b) + 4)
	}
	psr, err := s1ap.AppendPathSwitchRequest(nil, s1ap.PathSwitchRequest{
		MMEUEID: 1, NewENBAddr: "site2:2152", NewENBTEID: 1,
	})
	if err != nil {
		return 0, err
	}
	total += uint64(len(psr) + 4)
	total += uint64(len(s1ap.AppendPathSwitchAck(nil, s1ap.PathSwitchAck{MMEUEID: 1})) + 4)
	return total, nil
}

// e11Row is one scenario's full outcome, filled by one forEachWorld
// job (compact dLTE + compact telecom + real probe legs).
type e11Row struct {
	spec ScenarioSpec

	hoDLTE, hoTelecom uint64
	p50DLTE, p99DLTE  float64
	p50Tel, p99Tel    float64
	survDLTE, survTel float64
	probeMs           float64 // real-stack dLTE handover interruption (median)
	probeBytes        float64 // real-stack dLTE signaling bytes per handover
	probeSurvived     bool    // failure wave: dLTE probe re-attached on an island
	probeTelSurvived  bool    // failure wave: telecom probe behind the dead EPC
	promoted          int     // flash crowd: compact UEs replayed through the stack
	promoP50          float64 // their real attach p50, ms
	wall              time.Duration
}

// newMobilityWorld is newDLTEWorld with cooperative X2 mode and a
// shared mobility meter threaded into every AP — the probe worlds'
// standard shape.
func newMobilityWorld(n int, apKm float64, seed int64, shards int, m *mobility.Meter) (*core.Scenario, []*core.AccessPoint, error) {
	s, err := core.NewScenario(defaultWAN, seed)
	if err != nil {
		return nil, nil, err
	}
	aps := make([]*core.AccessPoint, 0, n)
	for i := 0; i < n; i++ {
		ap, err := s.AddAP(core.APConfig{
			ID:       fmt.Sprintf("ap%d", i+1),
			Position: geo.Pt(float64(i)*apKm*1000, 0),
			Band:     radio.LTEBand5,
			HeightM:  20, EIRPdBm: 58,
			Mode:   x2.ModeCooperative,
			TAC:    uint16(i + 1),
			Shards: shards,
			Meter:  m,
		})
		if err != nil {
			s.Close()
			return nil, nil, err
		}
		aps = append(aps, ap)
	}
	if _, err := s.Net.AddHost("ott"); err != nil {
		s.Close()
		return nil, nil, err
	}
	return s, aps, nil
}

// associate peers every AP via the registry and waits for the X2 mesh.
func associate(s *core.Scenario, aps []*core.AccessPoint) error {
	for _, ap := range aps {
		if _, err := ap.DiscoverPeers(); err != nil {
			return err
		}
	}
	ok := waitSettleExported(s, 5*time.Second, func() bool {
		for _, ap := range aps {
			if len(ap.Agent.Peers()) < len(aps)-1 {
				return false
			}
		}
		return true
	})
	if !ok {
		return fmt.Errorf("e11: X2 mesh never settled")
	}
	return nil
}

// waitSettleExported polls cond on the scenario's virtual clock.
func waitSettleExported(s *core.Scenario, timeout time.Duration, cond func() bool) bool {
	clk := s.Clock()
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		if cond() {
			return true
		}
		clk.Sleep(5 * time.Millisecond)
	}
	return cond()
}

// probeHandover runs one full-arc handover of device d from src to dst
// through the mobility plane, stitching the interruption window and
// NAS bytes into the shared meter. Returns the measured interruption.
func probeHandover(s *core.Scenario, src, dst *core.AccessPoint, d *ue.Device, m *mobility.Meter) (time.Duration, error) {
	imsi := d.IMSI()
	// RSRP at the cell edge between the two APs.
	edge := src.Position().DistanceTo(dst.Position()) / 2
	if err := src.Mobility.Prepare(dst.ID(), d.Publication(), scenRSRP(edge)); err != nil {
		return 0, err
	}
	if !waitSettleExported(s, 5*time.Second, func() bool {
		return src.Mobility.State(imsi) == mobility.StatePrepared
	}) {
		return 0, fmt.Errorf("e11: prepare %s→%s stuck in %v", src.ID(), dst.ID(), src.Mobility.State(imsi))
	}
	start := s.Clock().Now()
	hr, err := d.Handover(dst.AirAddr(), 15*time.Second)
	if err != nil {
		return 0, fmt.Errorf("e11: handover %s→%s: %w", src.ID(), dst.ID(), err)
	}
	m.InterruptionStart(imsi, start)
	m.InterruptionEnd(imsi, start.Add(hr.Interruption))
	m.AddNAS(imsi, hr.SignalingBytes)
	if err := dst.Mobility.NotifyComplete(src.ID(), imsi); err != nil {
		return 0, err
	}
	if !waitSettleExported(s, 5*time.Second, func() bool {
		return src.Mobility.State(imsi) == mobility.StateCompleted &&
			src.Core.Gateway().NumSessions() == 0
	}) {
		return 0, fmt.Errorf("e11: complete %s→%s never settled", src.ID(), dst.ID())
	}
	return hr.Interruption, nil
}

// probeCorridor drives one real UE down a 4-AP corridor: three full
// handovers, each metered end to end. Returns the median interruption
// and mean signaling bytes per handover.
func probeCorridor(seed int64, shards int) (float64, float64, error) {
	m := mobility.NewMeter()
	s, aps, err := newMobilityWorld(4, 1.0, seed, shards, m)
	if err != nil {
		return 0, 0, err
	}
	defer s.Close()
	if err := associate(s, aps); err != nil {
		return 0, 0, err
	}
	d, _, err := attachNewUE(s, aps[0], "car", imsiFor(11, 1), 0.4)
	if err != nil {
		return 0, 0, err
	}
	defer d.Close()
	h := metrics.NewHistogram()
	for i := 0; i+1 < len(aps); i++ {
		// The car reaches the next cell edge; radio follows it.
		pos := aps[i+1].Position().Add(-400, 0)
		if err := s.ConnectUERadio("car", aps[i+1].ID(), pos); err != nil {
			return 0, 0, err
		}
		gap, err := probeHandover(s, aps[i], aps[i+1], d, m)
		if err != nil {
			return 0, 0, err
		}
		h.ObserveDuration(gap)
	}
	var bytes, n uint64
	for _, rec := range m.Records() {
		if rec.SignalingBytes() > 0 {
			bytes += rec.SignalingBytes()
			n++
		}
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("e11: corridor probe metered no handovers")
	}
	return h.Quantile(0.5), float64(bytes) / float64(n), nil
}

// probeFlash replays the compact world's merged promotion log through
// the real stack — each promoted UE becomes a full Device attaching at
// one of the hot cells — then disperses one of them through a real
// plane handover. Returns the promotion attach p50 and the disperse
// handover's interruption/bytes.
func probeFlash(seed int64, shards int, promos []scenPromo) (promoP50, hoMs, hoBytes float64, err error) {
	m := mobility.NewMeter()
	s, aps, err := newMobilityWorld(4, 1.0, seed, shards, m)
	if err != nil {
		return 0, 0, 0, err
	}
	defer s.Close()
	if err := associate(s, aps); err != nil {
		return 0, 0, 0, err
	}
	ph := metrics.NewHistogram()
	var last *ue.Device
	for i, pr := range promos {
		name := fmt.Sprintf("fan%d", pr.gi)
		d, ar, aerr := attachNewUE(s, aps[i%len(aps)], name, imsiFor(11, 100+int(pr.gi)), 0.3)
		if aerr != nil {
			return 0, 0, 0, fmt.Errorf("e11: flash promote gi=%d: %w", pr.gi, aerr)
		}
		ph.Observe(ms(ar.Duration))
		if i == 0 {
			last = d // the disperse probe
		} else {
			defer d.Close()
		}
	}
	if last == nil {
		return 0, 0, 0, fmt.Errorf("e11: flash probe got no promotions")
	}
	defer last.Close()
	// Disperse: the first fan leaves the hot cell for its neighbour.
	pos := aps[1].Position().Add(-400, 0)
	if err := s.ConnectUERadio(fmt.Sprintf("fan%d", promos[0].gi), aps[1].ID(), pos); err != nil {
		return 0, 0, 0, err
	}
	gap, err := probeHandover(s, aps[0], aps[1], last, m)
	if err != nil {
		return 0, 0, 0, err
	}
	var rec mobility.Record
	for _, r := range m.Records() {
		if r.IMSI == last.IMSI() {
			rec = r
		}
	}
	return ph.Quantile(0.5), ms(gap), float64(rec.SignalingBytes()), nil
}

// probeFailureDLTE crashes the probe's serving AP (simnet link cut —
// the AP is unreachable from UE, registry, and peers) and checks the
// UE re-attaches to a surviving island. Returns (survived, outage).
func probeFailureDLTE(seed int64, shards int) (bool, time.Duration, error) {
	s, aps, err := newMobilityWorld(3, 2.0, seed, shards, nil)
	if err != nil {
		return false, 0, err
	}
	defer s.Close()
	// The survivor island must authenticate the refugee locally: sync
	// the open registry's published keys ahead of time (dLTE's standing
	// posture — any AP can serve any published subscriber).
	d, _, err := attachNewUE(s, aps[0], "refugee", imsiFor(11, 500), 0.8)
	if err != nil {
		return false, 0, err
	}
	defer d.Close()
	if _, err := aps[1].SyncSubscriberKeys(); err != nil {
		return false, 0, err
	}
	pos := aps[0].Position().Add(800, 0)
	if err := s.ConnectUERadio("refugee", aps[1].ID(), pos); err != nil {
		return false, 0, err
	}
	// The wave hits: ap1 drops off the network entirely.
	for _, peer := range []string{"refugee", aps[1].ID(), aps[2].ID(), "registry", "ott"} {
		s.Net.SetLinkDown(aps[0].ID(), peer, true)
	}
	clk := s.Clock()
	t0 := clk.Now()
	if _, err := d.Attach(aps[1].AirAddr(), 10*time.Second); err != nil {
		return false, 0, nil // stranded: no island in reach
	}
	outage := clk.Now().Sub(t0)
	// Recovery: the AP restarts; nothing should still reference it.
	for _, peer := range []string{"refugee", aps[1].ID(), aps[2].ID(), "registry", "ott"} {
		s.Net.SetLinkDown(aps[0].ID(), peer, false)
	}
	return true, outage, nil
}

// probeFailureTelecom runs the same wave against the centralized
// baseline: the wave takes out the operator core's site, so even the
// surviving cell site cannot attach anyone — sessions behind a dead
// EPC do not survive.
func probeFailureTelecom(seed int64, shards int) (bool, error) {
	n := simnet.NewVirtualNetwork(defaultWAN, seed)
	defer n.Close()
	central, err := baseline.NewCentralized(n, "epc", baseline.CentralizedConfig{
		TAC: 11, WANLink: defaultWAN, Shards: shards,
	})
	if err != nil {
		return false, err
	}
	defer central.Close()
	site1, err := central.AddSite("site1")
	if err != nil {
		return false, err
	}
	site2, err := central.AddSite("site2")
	if err != nil {
		return false, err
	}
	d, _, err := attachCentralUE(n, central, "site1", site1.AirAddr(), imsiFor(11, 600))
	if err != nil {
		return false, err
	}
	defer d.Close()
	// The wave takes the core's site with it: both cell sites lose
	// their backhaul to the EPC.
	n.SetLinkDown("site1", central.CoreHost(), true)
	n.SetLinkDown("site2", central.CoreHost(), true)
	// The UE can hear site2 perfectly well — but site2 has no core.
	n.SetLink("ue-"+string(imsiFor(11, 600)), "site2", simnet.Link{Latency: 5 * time.Millisecond})
	if _, err := d.Attach(site2.AirAddr(), 5*time.Second); err != nil {
		return false, nil // stranded, as the architecture dictates
	}
	return true, nil
}

// runE11Scenario executes one scenario end to end: both compact
// schemes plus the scenario's real probe legs.
func runE11Scenario(spec ScenarioSpec, opt Options, seed int64) (e11Row, error) {
	row := e11Row{spec: spec}
	t0 := time.Now()

	for _, scheme := range []Scheme{SchemeDLTE, SchemeTelecom} {
		w, err := CompileScenario(spec, scheme, seed, opt.Shards)
		if err != nil {
			return row, err
		}
		if err := w.Run(); err != nil {
			return row, err
		}
		if err := w.Verify(); err != nil {
			return row, err
		}
		p50, p99 := w.InterruptionQuantiles()
		_, _, surv := w.Outage()
		if scheme == SchemeDLTE {
			row.hoDLTE, row.p50DLTE, row.p99DLTE, row.survDLTE = w.Handovers(), p50, p99, surv
			if spec.Kind == KindFlashCrowd {
				promos := w.Promotions()
				row.promoted = len(promos)
				pp50, hoMs, hoBytes, perr := probeFlash(seed, opt.Shards, promos)
				if perr != nil {
					return row, perr
				}
				row.promoP50, row.probeMs, row.probeBytes = pp50, hoMs, hoBytes
			}
		} else {
			row.hoTelecom, row.p50Tel, row.p99Tel, row.survTel = w.Handovers(), p50, p99, surv
		}
	}

	switch spec.Kind {
	case KindCorridor:
		probeMs, probeBytes, err := probeCorridor(seed, opt.Shards)
		if err != nil {
			return row, err
		}
		row.probeMs, row.probeBytes = probeMs, probeBytes
	case KindFailureWave:
		survived, outage, err := probeFailureDLTE(seed, opt.Shards)
		if err != nil {
			return row, err
		}
		row.probeSurvived, row.probeMs = survived, ms(outage)
		// Bytes per handover: the wave's re-attach is a cold attach at
		// the island (no X2 prepare possible — the source is dead), so
		// reuse the corridor probe's full-arc cost for the table.
		_, probeBytes, err := probeCorridor(seed+7, opt.Shards)
		if err != nil {
			return row, err
		}
		row.probeBytes = probeBytes
		telOK, err := probeFailureTelecom(seed, opt.Shards)
		if err != nil {
			return row, err
		}
		row.probeTelSurvived = telOK
	}
	row.wall = time.Since(t0)
	return row, nil
}

// RunE11 runs the three scenarios (each an independent job under
// opt.Parallelism) and renders one table, dLTE and telecom rows per
// scenario.
func RunE11(opt Options) (E11Result, error) {
	res := E11Result{
		Handovers:        map[string]uint64{},
		TelecomHandovers: map[string]uint64{},
		Survival:         map[string]float64{},
		TelecomSurvival:  map[string]float64{},
		ProbeInterruptMs: map[string]float64{},
		BytesPerHandover: map[string]float64{},
		WallByScenario:   map[string]time.Duration{},
	}
	telBytes, err := telecomHandoverBytes()
	if err != nil {
		return res, err
	}
	res.TelecomBytesPerHandover = float64(telBytes)

	specs := e11Specs(opt)
	rows := make([]e11Row, len(specs))
	err = forEachWorld(opt, len(specs), func(i int) error {
		r, e := runE11Scenario(specs[i], opt, opt.Seed+int64(i)*1000)
		rows[i] = r
		return e
	})
	if err != nil {
		return res, err
	}

	t := metrics.NewTable("E11 — §4.2 at city scale: compiled mobility scenarios, dLTE vs telecom",
		"scenario", "scheme", "UEs", "handovers", "interrupt p50 ms", "p99 ms", "probe ms", "B/handover", "survival %")
	for _, r := range rows {
		name := r.spec.Name
		probeDLTE := fmt.Sprintf("%.1f", r.probeMs)
		probeTel := fmt.Sprintf("%.1f", centralHandoverMs)
		survTelProbe := ""
		if r.spec.Kind == KindFailureWave {
			if !r.probeSurvived {
				probeDLTE = "stranded"
			}
			if r.probeTelSurvived {
				survTelProbe = " (probe survived?)"
			} else {
				probeTel = "dead EPC"
			}
		}
		t.AddRow(name, SchemeDLTE.String(), r.spec.UEs, r.hoDLTE,
			fmt.Sprintf("%.1f", r.p50DLTE), fmt.Sprintf("%.1f", r.p99DLTE),
			probeDLTE, fmt.Sprintf("%.0f", r.probeBytes),
			fmt.Sprintf("%.1f", 100*r.survDLTE))
		t.AddRow(name, SchemeTelecom.String(), r.spec.UEs, r.hoTelecom,
			fmt.Sprintf("%.1f", r.p50Tel), fmt.Sprintf("%.1f", r.p99Tel),
			probeTel, fmt.Sprintf("%.0f", float64(telBytes)),
			fmt.Sprintf("%.1f%s", 100*r.survTel, survTelProbe))

		res.Handovers[name] = r.hoDLTE
		res.TelecomHandovers[name] = r.hoTelecom
		res.Survival[name] = r.survDLTE
		res.TelecomSurvival[name] = r.survTel
		res.ProbeInterruptMs[name] = r.probeMs
		res.BytesPerHandover[name] = r.probeBytes
		res.WallByScenario[name] = r.wall
		if r.spec.Kind == KindFailureWave {
			res.FailureProbeSurvived = r.probeSurvived
			res.FailureProbeTelecomSurvived = r.probeTelSurvived
		}
	}
	res.Table = t
	opt.emit(t)
	return res, nil
}
