package exp

import (
	"fmt"
	"time"

	"dlte/internal/metrics"
	"dlte/internal/phy"
	"dlte/internal/radio"
	"dlte/internal/x2"
)

// E9Result quantifies two remaining claims: (a) §4.3 — a license
// registry eliminates the hidden-terminal problem CSMA suffers, with a
// staleness ablation; (b) §7 — multi-hop relay between neighboring APs
// restores service when one AP's backhaul fails.
type E9Result struct {
	HiddenTable *metrics.Table
	RelayTable  *metrics.Table
	// CSMAHiddenMbps / RegistryMbps compare the hidden-terminal
	// topology under CSMA vs registry-coordinated TDM.
	CSMAHiddenMbps, RegistryMbps float64
	// HiddenCollisionRate is CSMA's collision rate with hidden nodes.
	HiddenCollisionRate float64
	// RelayGranted reports whether the X2 relay negotiation succeeded
	// during the injected outage.
	RelayGranted bool
	// OutageDetectedMs is how quickly the AP's echo probe failed after
	// the backhaul was cut.
	OutageDetectedMs float64
	// RelayMbps is the usable relayed capacity (inter-AP radio bound).
	RelayMbps float64
}

// RunE9 runs the hidden-terminal and backhaul-relay experiments.
func RunE9(opt Options) (E9Result, error) {
	var res E9Result
	seconds := 1.0
	if opt.Quick {
		seconds = 0.3
	}

	// --- (a) Hidden terminals: three stations around a receiver; the
	// two outer ones cannot sense each other.
	const rate = 24e6
	stations := []phy.DCFStation{
		{ID: "west", RateBps: rate, Saturated: true},
		{ID: "mid", RateBps: rate, Saturated: true},
		{ID: "east", RateBps: rate, Saturated: true},
	}
	hiddenSense := [][]bool{
		{true, true, false}, // west hears mid, not east
		{true, true, true},  // mid hears all
		{false, true, true}, // east hears mid, not west
	}

	// The two CSMA sims and the live relay-outage world (part b) are
	// independent; run all three concurrently.
	var (
		csmaHidden, csmaFull phy.DCFResult
		granted              bool
		detectMs             float64
	)
	err := forEachWorld(opt, 3, func(i int) error {
		switch i {
		case 0:
			csmaHidden = phy.SimulateDCF(phy.DCFConfig{Stations: stations, Sense: hiddenSense, Seed: opt.Seed}, seconds)
		case 1:
			csmaFull = phy.SimulateDCF(phy.DCFConfig{Stations: stations, Seed: opt.Seed}, seconds)
		case 2:
			g, d, e := runRelayOutage(opt.Seed, opt.Shards)
			if e != nil {
				return fmt.Errorf("E9b: %w", e)
			}
			granted, detectMs = g, d
		}
		return nil
	})
	if err != nil {
		return res, err
	}

	// Registry-coordinated TDM over the same PHY: every transmitter is
	// known (licensed), so the schedule is collision-free regardless
	// of sensing topology.
	var shares []phy.TDMShare
	for _, st := range stations {
		shares = append(shares, phy.TDMShare{ID: st.ID, RateBps: rate * phy.WiFiLikeMACFactor})
	}
	tdm := phy.SimulateTDM(shares)

	// Staleness ablation: one transmitter missing from the registry
	// transmits uncoordinated with duty cycle δ; every overlapping TDM
	// slot is corrupted.
	stale := func(duty float64) float64 { return tdm.TotalBps * (1 - duty) }

	ht := metrics.NewTable("E9a — §4.3: hidden terminals, CSMA vs registry coordination",
		"scheme", "total Mbps", "collision rate")
	ht.AddRow("CSMA, full carrier sense", Mbps(csmaFull.TotalBps), csmaFull.CollisionRate)
	ht.AddRow("CSMA, hidden terminals", Mbps(csmaHidden.TotalBps), csmaHidden.CollisionRate)
	ht.AddRow("registry TDM (all known)", Mbps(tdm.TotalBps), 0.0)
	ht.AddRow("registry TDM, stale (unknown tx, 20% duty)", Mbps(stale(0.2)), 0.2)
	ht.AddRow("registry TDM, stale (unknown tx, 90% duty)", Mbps(stale(0.9)), 0.9)
	res.HiddenTable = ht
	res.CSMAHiddenMbps = Mbps(csmaHidden.TotalBps)
	res.RegistryMbps = Mbps(tdm.TotalBps)
	res.HiddenCollisionRate = csmaHidden.CollisionRate

	// --- (b) Backhaul relay (§7): cut ap1's backhaul, watch its echo
	// probe fail, negotiate relay over X2 (which rides the still-up
	// inter-AP path), and size the relayed capacity by the inter-AP
	// radio link budget. (Measured above, concurrently with the CSMA
	// sims.)
	res.RelayGranted = granted
	res.OutageDetectedMs = detectMs

	// Relayed capacity: AP↔AP link at 3 km, tower to tower.
	interAP := radio.Link{
		Tx: radio.LTEBaseStation, Rx: radio.LTEBaseStation, Band: radio.LTEBand5,
	}
	res.RelayMbps = Mbps(radio.LTEThroughputBps(interAP.SNRdB(3), radio.LTEBand5.BandwidthHz(), true))

	rt := metrics.NewTable("E9b — §7: backhaul failure and multi-hop relay",
		"metric", "value")
	rt.AddRow("outage detected after (ms)", detectMs)
	rt.AddRow("X2 relay grant obtained", granted)
	rt.AddRow("relayed capacity over 3 km inter-AP link (Mbps)", res.RelayMbps)
	res.RelayTable = rt
	opt.emit(ht, rt)
	return res, nil
}

// runRelayOutage injects a backhaul failure at ap1 and drives the X2
// relay negotiation with ap2 over the surviving inter-AP path.
func runRelayOutage(seed int64, shards int) (granted bool, detectMs float64, err error) {
	s, aps, err := newDLTEWorld(2, 3, x2.ModeCooperative, seed, shards)
	if err != nil {
		return false, 0, err
	}
	defer s.Close()
	if _, err := aps[0].DiscoverPeers(); err != nil {
		return false, 0, err
	}

	// A UE attached at ap1 with live echo service.
	echoSrv, err := newEcho(s.Net, "ott", 9000)
	if err != nil {
		return false, 0, err
	}
	defer echoSrv.Close()
	d, _, err := attachNewUE(s, aps[0], "ue-relay", imsiFor(9, 1), 1)
	if err != nil {
		return false, 0, err
	}
	if _, err := d.Echo("ott:9000", []byte("pre"), 200*time.Millisecond, 5*time.Second); err != nil {
		return false, 0, fmt.Errorf("pre-outage echo: %w", err)
	}

	// Cut ap1's backhaul toward the Internet (OTT and registry), but
	// not the dedicated inter-AP path.
	clk := s.Clock()
	cut := clk.Now()
	s.Net.SetLinkDown("ap1", "ott", true)
	s.Net.SetLinkDown("ap1", "registry", true)

	// Outage detection: the echo probe now fails.
	_, echoErr := d.Echo("ott:9000", []byte("post"), 100*time.Millisecond, 500*time.Millisecond)
	if echoErr == nil {
		return false, 0, fmt.Errorf("echo survived a cut backhaul")
	}
	detectMs = ms(clk.Since(cut))

	// Relay negotiation over X2 (the ap1↔ap2 path is unaffected).
	if err := aps[0].RequestRelay("ap2", 5e6); err != nil {
		return false, detectMs, err
	}
	deadline := clk.Now().Add(3 * time.Second)
	for clk.Now().Before(deadline) {
		if bps, from := aps[0].RelayGrant(); bps > 0 && from == "ap2" {
			granted = true
			break
		}
		clk.Sleep(5 * time.Millisecond)
	}
	return granted, detectMs, nil
}
