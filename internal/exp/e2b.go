package exp

import (
	"fmt"
	"sync"
	"time"

	"dlte/internal/auth"
	"dlte/internal/enb"
	"dlte/internal/epc"
	"dlte/internal/metrics"
	"dlte/internal/simnet"
	"dlte/internal/ue"
)

// E2b saturates the user plane: N UEs stream windowed echo traffic
// concurrently through (a) a dLTE stub core with direct breakout at
// the AP and (b) a telecom EPC whose GTP tunnel hauls every packet
// across a WAN. Virtual time makes the throughput numbers exact and
// reproducible: each UE's flow rides disjoint bandwidth-limited links,
// so delivery instants — and therefore packets/second — are functions
// of the topology alone, not of host scheduling. The CPU-side cost of
// the same fast path (ns/packet, allocs/packet) is measured by the
// benchmarks in internal/gtp and internal/epc (see EXPERIMENTS.md E2b
// methodology), which keeps this table byte-identical across runs.

// E2bResult quantifies data-plane saturation for both architectures.
type E2bResult struct {
	Table *metrics.Table
	// AggregatePktsPerSec maps (tunneled, nUE) to aggregate delivered
	// packets per virtual second; keys are "dlte-N" / "telecom-N".
	AggregatePktsPerSec map[string]float64
	// Drops is the total user-plane drops observed across all runs
	// (expected 0; nonzero would flag an overrun or decode bug).
	Drops uint64
}

// e2bPackets is the per-UE echo count (round trips) per run.
const (
	e2bPackets      = 200
	e2bPacketsQuick = 60
	e2bWindow       = 8
	e2bPayloadBytes = 512
)

// e2bRun holds one (architecture, N) world's measurements.
type e2bRun struct {
	tunneled bool
	nUE      int
	// elapsed is the longest per-UE virtual duration from first send
	// to last echo received.
	elapsed time.Duration
	// delivered and sent sum across UEs.
	delivered, sent int
	drops           epc.UserPlaneDrops
}

// RunE2b measures user-plane saturation (data-plane companion to E2's
// RTT comparison): tunneled EPC vs direct breakout under N concurrent
// bulk flows.
func RunE2b(opt Options) (E2bResult, error) {
	res := E2bResult{AggregatePktsPerSec: make(map[string]float64)}
	ueCounts := []int{1, 4, 16}
	packets := e2bPackets
	if opt.Quick {
		ueCounts = []int{1, 4}
		packets = e2bPacketsQuick
	}

	runs := make([]e2bRun, 0, 2*len(ueCounts))
	for _, tunneled := range []bool{false, true} {
		for _, n := range ueCounts {
			runs = append(runs, e2bRun{tunneled: tunneled, nUE: n})
		}
	}
	err := forEachWorld(opt, len(runs), func(i int) error {
		r := &runs[i]
		return e2bWorld(r, packets, opt.Seed+int64(i)*1000)
	})
	if err != nil {
		return res, err
	}

	t := metrics.NewTable("E2b — user-plane saturation: direct breakout vs EPC tunnel",
		"architecture", "UEs", "pkts offered", "delivered", "delivery %", "agg pkts/s", "agg Mbps", "drops")
	for _, r := range runs {
		arch, key := "dLTE (breakout)", fmt.Sprintf("dlte-%d", r.nUE)
		if r.tunneled {
			arch, key = "telecom LTE", fmt.Sprintf("telecom-%d", r.nUE)
		}
		pps := float64(r.delivered) / r.elapsed.Seconds()
		res.AggregatePktsPerSec[key] = pps
		res.Drops += r.drops.Total()
		t.AddRow(arch, r.nUE, r.sent, r.delivered,
			100*float64(r.delivered)/float64(r.sent),
			pps, pps*e2bPayloadBytes*8/1e6, r.drops.Total())
	}
	res.Table = t
	opt.emit(t)
	return res, nil
}

// e2bWorld builds one architecture world, attaches r.nUE UEs, streams
// the windowed echo load concurrently, and records the result into r.
//
// Determinism: every UE gets its own air link and its own echo host,
// so no two flows share a bandwidth-limited (stateful) link — shared
// segments (AP↔EPC WAN, breakout hops) carry latency only. Per-flow
// delivery times then depend only on the topology and the virtual
// clock, regardless of how the runtime schedules the UE goroutines.
func e2bWorld(r *e2bRun, packets int, seed int64) error {
	n := simnet.NewVirtualNetwork(defaultWAN, seed)
	defer n.Close()

	ap, err := n.AddHost("ap")
	if err != nil {
		return err
	}
	coreHost := ap
	if r.tunneled {
		coreHost, err = n.AddHost("epc")
		if err != nil {
			return err
		}
		n.SetLink("ap", "epc", simnet.Link{Latency: 40 * time.Millisecond})
	}
	core, err := epc.NewCore(coreHost, epc.Config{
		Name: "e2b-core", TAC: 7, DirectBreakout: !r.tunneled,
	})
	if err != nil {
		return err
	}
	defer core.Close()
	l, err := coreHost.Listen(epc.S1APPort)
	if err != nil {
		return err
	}
	n.Clock().Go(func() { core.ServeS1AP(l) })

	site, err := enb.New(ap, enb.Config{
		ID: 1, TAC: 7, MMEAddr: fmt.Sprintf("%s:%d", coreHost.Name(), epc.S1APPort),
	})
	if err != nil {
		return err
	}
	defer site.Close()

	type flow struct {
		dev  *ue.Device
		sink string
	}
	flows := make([]flow, r.nUE)
	for i := range flows {
		sim, err := auth.NewSIM(imsiFor(21, i+1))
		if err != nil {
			return err
		}
		if err := core.Provision(sim); err != nil {
			return err
		}
		ueHost, err := n.AddHost(fmt.Sprintf("ue%d", i))
		if err != nil {
			return err
		}
		// The air leg is each flow's bandwidth bottleneck; it is private
		// to the UE, so its serialization state is flow-local.
		n.SetLink(ueHost.Name(), "ap", simnet.Link{
			Latency: 2 * time.Millisecond, BandwidthBps: 20e6,
		})
		sinkName := fmt.Sprintf("ott%d", i)
		echo, err := newEcho(n, sinkName, 9000)
		if err != nil {
			return err
		}
		defer echo.Close()
		dev, err := ue.NewDevice(ueHost, sim)
		if err != nil {
			return err
		}
		defer dev.Close()
		if _, err := dev.Attach(site.AirAddr(), 30*time.Second); err != nil {
			return fmt.Errorf("e2b attach ue%d: %w", i, err)
		}
		flows[i] = flow{dev: dev, sink: sinkName + ":9000"}
	}

	clk := n.Clock()
	payload := make([]byte, e2bPayloadBytes)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		longest time.Duration
		okTotal int
		firstE  error
	)
	for i := range flows {
		f := flows[i]
		wg.Add(1)
		clk.Go(func() {
			defer wg.Done()
			got, took, err := e2bStream(f.dev, f.sink, payload, packets)
			mu.Lock()
			defer mu.Unlock()
			okTotal += got
			if took > longest {
				longest = took
			}
			if err != nil && firstE == nil {
				firstE = err
			}
		})
	}
	clk.Block()
	wg.Wait()
	clk.Unblock()
	if firstE != nil {
		return firstE
	}

	r.sent = r.nUE * packets
	r.delivered = okTotal
	r.elapsed = longest
	r.drops = core.Stats().UserPlaneDrops
	return nil
}

// e2bStream pushes `packets` echo round trips through the bearer with
// at most e2bWindow requests in flight, returning the delivered count
// and the virtual time from first send to last echo.
func e2bStream(dev *ue.Device, sink string, payload []byte, packets int) (int, time.Duration, error) {
	bc := dev.Bearer()
	defer bc.Close()
	addr, err := simnet.ParseAddr(sink)
	if err != nil {
		return 0, 0, err
	}
	clk := bc.Clock()
	start := clk.Now()
	buf := make([]byte, 2*e2bPayloadBytes)
	sent, recvd := 0, 0
	for recvd < packets {
		for sent < packets && sent-recvd < e2bWindow {
			if _, err := bc.WriteTo(payload, addr); err != nil {
				return recvd, clk.Since(start), err
			}
			sent++
		}
		bc.SetReadDeadline(clk.Now().Add(10 * time.Second))
		if _, _, err := bc.ReadFrom(buf); err != nil {
			// A lost window would stall the whole stream; report how far
			// it got rather than failing the run.
			return recvd, clk.Since(start), nil
		}
		recvd++
	}
	return recvd, clk.Since(start), nil
}
