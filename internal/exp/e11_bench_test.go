package exp

import (
	"fmt"
	"testing"
	"time"

	"dlte/internal/core"
	"dlte/internal/mobility"
	"dlte/internal/ue"
)

// benchHandoverWorld builds a 2-AP cooperative world with n UEs parked
// at the cell-edge midpoint, radio to both cells, all attached at ap1.
// Returns a teardown-free scenario (caller closes) plus the devices.
func benchHandoverWorld(b *testing.B, n int) *handoverBench {
	b.Helper()
	m := mobility.NewMeter()
	s, aps, err := newMobilityWorld(2, 1.0, 42, 0, m)
	if err != nil {
		b.Fatal(err)
	}
	if err := associate(s, aps); err != nil {
		s.Close()
		b.Fatal(err)
	}
	hb := &handoverBench{s: s, aps: aps, m: m}
	mid := aps[0].Position().Add(500, 0)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("ho%d", i)
		d, _, err := attachNewUE(s, aps[0], name, imsiFor(77, i+1), 0.5)
		if err != nil {
			s.Close()
			b.Fatal(err)
		}
		// Radio to the neighbor too, so the ping-pong never has to
		// re-plumb the air interface inside the timed region.
		if err := s.ConnectUERadio(name, aps[1].ID(), mid); err != nil {
			s.Close()
			b.Fatal(err)
		}
		hb.ues = append(hb.ues, d)
	}
	return hb
}

type handoverBench struct {
	s   *core.Scenario
	aps []*core.AccessPoint
	m   *mobility.Meter
	ues []*ue.Device
}

// BenchmarkHandover prices the mobility plane end to end on the real
// stack (DESIGN.md §12): X2 prepare/ack choreography, break-before-make
// NAS re-attach, GTP TEID re-point, transport path migration, and the
// complete/retire exchange.
//
//   - single: one UE ping-pongs between the two APs; each op is one
//     full prepared handover arc.
//   - storm: a 16-UE population hands over in one wave per op —
//     prepare all, move all, complete all — the mobility-plane
//     analogue of epc's BenchmarkAttachStorm.
func BenchmarkHandover(b *testing.B) {
	b.Run("single", func(b *testing.B) {
		hb := benchHandoverWorld(b, 1)
		defer hb.s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src, dst := hb.aps[i%2], hb.aps[(i+1)%2]
			if _, err := probeHandover(hb.s, src, dst, hb.ues[0], hb.m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("storm", func(b *testing.B) {
		const pop = 16
		hb := benchHandoverWorld(b, pop)
		defer hb.s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src, dst := hb.aps[i%2], hb.aps[(i+1)%2]
			for j, d := range hb.ues {
				// Mid-wave the source still holds the UEs that have
				// not moved yet, so settle on the per-UE count, not 0.
				if err := benchArc(hb, src, dst, d, pop-1-j); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// benchArc is probeHandover with a population-aware settle condition:
// after this UE completes, the source must be down to `remaining`
// sessions (probeHandover insists on 0, which only fits a lone UE).
func benchArc(hb *handoverBench, src, dst *core.AccessPoint, d *ue.Device, remaining int) error {
	imsi := d.IMSI()
	edge := src.Position().DistanceTo(dst.Position()) / 2
	if err := src.Mobility.Prepare(dst.ID(), d.Publication(), scenRSRP(edge)); err != nil {
		return err
	}
	if !waitSettleExported(hb.s, 5*time.Second, func() bool {
		return src.Mobility.State(imsi) == mobility.StatePrepared
	}) {
		return fmt.Errorf("storm: prepare %s→%s stuck in %v", src.ID(), dst.ID(), src.Mobility.State(imsi))
	}
	start := hb.s.Clock().Now()
	hr, err := d.Handover(dst.AirAddr(), 15*time.Second)
	if err != nil {
		return fmt.Errorf("storm: handover %s→%s: %w", src.ID(), dst.ID(), err)
	}
	hb.m.InterruptionStart(imsi, start)
	hb.m.InterruptionEnd(imsi, start.Add(hr.Interruption))
	hb.m.AddNAS(imsi, hr.SignalingBytes)
	if err := dst.Mobility.NotifyComplete(src.ID(), imsi); err != nil {
		return err
	}
	if !waitSettleExported(hb.s, 5*time.Second, func() bool {
		return src.Mobility.State(imsi) == mobility.StateCompleted &&
			src.Core.Gateway().NumSessions() == remaining
	}) {
		return fmt.Errorf("storm: complete %s→%s never settled", src.ID(), dst.ID())
	}
	return nil
}
