package simnet

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBarrierWindow is the barrier interval a ShardedScheduler uses
// when the caller does not pick one. Wide enough to amortize the
// barrier over many events, short enough that cross-region effects
// (handover, registry sync) stay responsive at simulation timescales.
const DefaultBarrierWindow = 100 * time.Millisecond

// ShardedScheduler drains independent per-region Schedulers in
// lockstep barrier windows: within a window every region's wheel runs
// on its own (possibly on its own OS thread), and all regions
// quiesce at the window boundary before the next window starts —
// the same sync-point structure the VirtualClock's quiescence barrier
// gives the goroutine-based worlds. Regions must not touch each
// other's state inside a window; cross-region work happens in the
// onBarrier callback (which runs serially, with every region parked)
// or through commutative aggregation.
//
// Determinism: a region's event stream depends only on that region's
// own state, so per-region results are identical at any worker count.
// Byte-identical *global* output additionally requires the caller to
// aggregate region results in a region-count-invariant way — merge
// ordered logs with MergeRegions, sum counters, or derive values from
// global indices rather than region-local ones (DESIGN.md §11).
type ShardedScheduler struct {
	regions []*Scheduler
	window  time.Duration
	workers int
	now     time.Duration
}

// NewShardedScheduler builds a world of `regions` independent wheels
// advanced in `window`-sized barriers by up to `workers` OS threads
// (workers <= 1 drains serially on the caller's goroutine; either way
// the result is identical).
func NewShardedScheduler(regions int, window time.Duration, workers int) *ShardedScheduler {
	if regions < 1 {
		regions = 1
	}
	if window <= 0 {
		window = DefaultBarrierWindow
	}
	if workers < 1 {
		workers = 1
	}
	rs := make([]*Scheduler, regions)
	for i := range rs {
		rs[i] = NewScheduler()
	}
	return &ShardedScheduler{regions: rs, window: window, workers: workers}
}

// Regions reports the number of region wheels.
func (ss *ShardedScheduler) Regions() int { return len(ss.regions) }

// Region returns region i's Scheduler. Safe to use directly between
// (not during) RunUntil calls, and from region i's own events.
func (ss *ShardedScheduler) Region(i int) *Scheduler { return ss.regions[i] }

// Now reports the last barrier the world has fully reached.
func (ss *ShardedScheduler) Now() time.Duration { return ss.now }

// Pending sums live queued events across all regions.
func (ss *ShardedScheduler) Pending() int {
	n := 0
	for _, r := range ss.regions {
		n += r.Pending()
	}
	return n
}

// RunUntil advances every region to t in barrier windows. After each
// window all regions have reached the same virtual instant; onBarrier
// (optional) then runs serially and may mutate any region — including
// scheduling new events — before the next window opens.
func (ss *ShardedScheduler) RunUntil(t time.Duration, onBarrier func(now time.Duration)) {
	for ss.now < t {
		end := ss.now + ss.window
		if end > t || end < ss.now { // clamp, and guard overflow near the horizon
			end = t
		}
		ss.drain(end)
		ss.now = end
		if onBarrier != nil {
			onBarrier(end)
		}
	}
}

// drain advances every region wheel to end, fanning regions out over
// the worker budget. Work-stealing order does not matter: regions are
// independent, so scheduling is invisible in the results.
func (ss *ShardedScheduler) drain(end time.Duration) {
	w := ss.workers
	if w > len(ss.regions) {
		w = len(ss.regions)
	}
	if w <= 1 {
		for _, r := range ss.regions {
			r.RunUntil(end)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1))
				if j >= len(ss.regions) {
					return
				}
				ss.regions[j].RunUntil(end)
			}
		}()
	}
	wg.Wait()
}

// MergeRegions merges per-region record slices — each already in that
// region's local (at, seq) order — into the single global (at, seq,
// region) order, the canonical way to turn sharded event logs into
// region-count-stable output.
func MergeRegions[T any](parts [][]T, key func(T) (at time.Duration, seq uint64)) []T {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	idx := make([]int, len(parts))
	for len(out) < total {
		best := -1
		var bestAt time.Duration
		var bestSeq uint64
		for r, p := range parts {
			if idx[r] >= len(p) {
				continue
			}
			at, seq := key(p[idx[r]])
			if best < 0 || at < bestAt || (at == bestAt && seq < bestSeq) {
				best, bestAt, bestSeq = r, at, seq
			}
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}
