package simnet

import (
	"fmt"
	"net"
	"sync"
)

// Host is a named endpoint in a Network. A host can listen for stream
// connections, dial other hosts, and open packet sockets. Hosts model
// the machines of the dLTE world: access points, the registry, OTT
// servers, a centralized EPC, and user equipment.
type Host struct {
	net  *Network
	name string

	mu        sync.Mutex
	listeners map[int]*Listener
	pktConns  map[int]*PacketConn
	ephemeral int
	closed    bool
}

// Name reports the host's network-unique name (its address).
func (h *Host) Name() string { return h.name }

// Network returns the Network the host belongs to.
func (h *Host) Network() *Network { return h.net }

// Clock returns the clock governing the host's network.
func (h *Host) Clock() Clock { return h.net.clock }

func (h *Host) allocEphemeralLocked() int {
	for {
		h.ephemeral++
		if h.ephemeral > 65535 {
			h.ephemeral = 49152
		}
		p := h.ephemeral
		if _, used := h.listeners[p]; used {
			continue
		}
		if _, used := h.pktConns[p]; used {
			continue
		}
		return p
	}
}

// Listen opens a stream listener on the given port (0 allocates an
// ephemeral port).
func (h *Host) Listen(port int) (*Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if port == 0 {
		port = h.allocEphemeralLocked()
	}
	if _, used := h.listeners[port]; used {
		return nil, fmt.Errorf("%w: %s:%d", ErrPortInUse, h.name, port)
	}
	l := &Listener{
		host:   h,
		addr:   Addr{Host: h.name, Port: port},
		accept: make(chan *Conn, 64),
		done:   make(chan struct{}),
	}
	h.listeners[port] = l
	return l, nil
}

// Dial opens a stream connection to addr ("host:port"). The connection
// is usable immediately on the dialer side; the SYN-equivalent delivery
// to the listener incurs one link latency, and data queued before the
// accept is preserved (as with a real TCP accept queue).
func (h *Host) Dial(addr string) (net.Conn, error) {
	a, err := ParseAddr(addr)
	if err != nil {
		return nil, err
	}
	h.net.mu.Lock()
	remote, ok := h.net.hosts[a.Host]
	h.net.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoHost, a.Host)
	}
	remote.mu.Lock()
	l, ok := remote.listeners[a.Port]
	remote.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
	if !h.net.linkUp(h.name, a.Host) {
		return nil, fmt.Errorf("dial %s: %w", addr, ErrLinkDown)
	}

	h.mu.Lock()
	localPort := h.allocEphemeralLocked()
	h.mu.Unlock()

	local := Addr{Host: h.name, Port: localPort}
	cliConn, srvConn := newConnPair(h.net, local, a)
	h.net.addConn(cliConn)
	h.net.addConn(srvConn)

	delay, up := h.net.delayFor(h.name, a.Host, 64, false)
	if !up {
		return nil, fmt.Errorf("dial %s: %w", addr, ErrLinkDown)
	}
	clk := h.net.clock
	clk.Go(func() {
		if delay > 0 {
			clk.Sleep(delay)
		}
		select {
		case l.accept <- srvConn:
		case <-l.done:
			cliConn.Close()
		default:
			clk.Block()
			select {
			case l.accept <- srvConn:
			case <-l.done:
				cliConn.Close()
			}
			clk.Unblock()
		}
	})
	return cliConn, nil
}

// ListenPacket opens a datagram socket on the given port (0 allocates
// an ephemeral port).
func (h *Host) ListenPacket(port int) (*PacketConn, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if port == 0 {
		port = h.allocEphemeralLocked()
	}
	if _, used := h.pktConns[port]; used {
		return nil, fmt.Errorf("%w: %s:%d (udp)", ErrPortInUse, h.name, port)
	}
	// The inbox channel is allocated lazily on first blocking read;
	// handler-mode sockets never pay for it.
	pc := &PacketConn{
		host: h,
		addr: Addr{Host: h.name, Port: port},
		done: make(chan struct{}),
	}
	pc.boxedSrc = pc.addr
	h.pktConns[port] = pc
	return pc, nil
}

func (h *Host) removeListener(port int) {
	h.mu.Lock()
	delete(h.listeners, port)
	h.mu.Unlock()
}

func (h *Host) removePacketConn(port int) {
	h.mu.Lock()
	delete(h.pktConns, port)
	h.mu.Unlock()
}

func (h *Host) closeAll() {
	h.mu.Lock()
	h.closed = true
	ls := make([]*Listener, 0, len(h.listeners))
	for _, l := range h.listeners {
		ls = append(ls, l)
	}
	ps := make([]*PacketConn, 0, len(h.pktConns))
	for _, p := range h.pktConns {
		ps = append(ps, p)
	}
	h.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, p := range ps {
		p.Close()
	}
}

// Listener accepts stream connections on a host port.
type Listener struct {
	host   *Host
	addr   Addr
	accept chan *Conn

	closeOnce sync.Once
	done      chan struct{}
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	default:
	}
	clk := l.host.net.clock
	clk.Block()
	defer clk.Unblock()
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// Clock returns the clock governing the listener's network.
func (l *Listener) Clock() Clock { return l.host.net.clock }

// Addr reports the listening address.
func (l *Listener) Addr() net.Addr { return l.addr }

// Close stops the listener. Established connections are unaffected.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.host.removeListener(l.addr.Port)
	})
	return nil
}
