package simnet

import "sync"

// payloadClassBytes is the pooled payload buffer size. One class covers
// every datagram the MTU admits and the stream chunks the protocol
// stacks write; oversized writes fall back to the garbage collector.
const payloadClassBytes = 4096

// payloadPool recycles the per-delivery payload copies made on the
// simnet hot path (Conn.Write, PacketConn.WriteTo). Copy semantics at
// the API boundary are unchanged — callers may reuse their buffers the
// moment a write returns, and readers receive copies — but the interior
// copy now comes from this pool and is returned on the final read
// instead of burning an allocation per delivery.
var payloadPool = sync.Pool{
	New: func() interface{} { return new([payloadClassBytes]byte) },
}

// payloadGet returns a length-n buffer, pooled when n fits the class.
func payloadGet(n int) []byte {
	if n > payloadClassBytes {
		return make([]byte, n)
	}
	return payloadPool.Get().(*[payloadClassBytes]byte)[:n:payloadClassBytes]
}

// payloadPut recycles a buffer obtained from payloadGet. Buffers from
// the oversize fallback (recognizable by capacity) go to the GC; the
// full-capacity check also means a subslice can never be recycled by
// accident while its backing array is still referenced elsewhere.
func payloadPut(b []byte) {
	if cap(b) != payloadClassBytes {
		return
	}
	payloadPool.Put((*[payloadClassBytes]byte)(b[:payloadClassBytes]))
}

// GetPayload returns a length-n buffer from the shared payload pool —
// the same class the simnet hot path recycles. Protocol layers above
// simnet (GTP-U encap, user-packet framing) draw their per-packet
// scratch from here so a buffer can travel down the stack and be
// recycled wherever it ends its life. Release with PutPayload, or hand
// ownership to PacketConn.WriteOwnedTo.
func GetPayload(n int) []byte { return payloadGet(n) }

// PutPayload recycles a buffer from GetPayload (or ReadFromOwned).
// Callers must not retain any reference after the put; oversize
// buffers are left to the garbage collector.
func PutPayload(b []byte) { payloadPut(b) }
