package simnet

import (
	"testing"
	"time"
)

// BenchmarkDispatchHop prices the steady-state unit of the dispatch
// model: one handler-to-handler round trip (a delivery into a handler
// that writes back, and the echoed delivery into the far handler). The
// ping-pong sustains itself on the advancer with no goroutine parked
// anywhere, so ns/op is the pure event cost and allocs/op must be 0 —
// payload buffers and event records recycle through their pools. The
// bench rides make bench-gate with a 0-alloc baseline; any allocation
// creeping onto the hot path fails the gate.
func BenchmarkDispatchHop(b *testing.B) {
	n := NewVirtualNetwork(Link{Latency: 50 * time.Microsecond}, 1)
	defer n.Close()
	ha := n.MustAddHost("a")
	hb := n.MustAddHost("b")
	l, err := hb.Listen(9000)
	if err != nil {
		b.Fatal(err)
	}
	clk := n.Clock().(*VirtualClock)
	acceptCh := make(chan *Conn, 1)
	clk.Go(func() {
		c, err := l.Accept()
		if err == nil {
			acceptCh <- c.(*Conn)
		}
	})
	ccRaw, err := ha.Dial("b:9000")
	if err != nil {
		b.Fatal(err)
	}
	cc := ccRaw.(*Conn)
	clk.Block()
	sc := <-acceptCh
	clk.Unblock()

	// Warmup hops fill the payload and event-record pools; the timed
	// hops then run allocation-free.
	const warmup = 256
	count := 0
	warmDone := make(chan struct{})
	done := make(chan struct{})
	sc.OnDeliver(func(data []byte) { sc.Write(data) }, nil)
	cc.OnDeliver(func(data []byte) {
		count++
		switch count {
		case warmup:
			close(warmDone)
		case warmup + b.N:
			close(done)
		default:
			cc.Write(data)
		}
	}, nil)

	msg := make([]byte, 64)
	cc.Write(msg)
	clk.Block()
	<-warmDone
	clk.Unblock()

	b.ReportAllocs()
	b.ResetTimer()
	cc.Write(msg)
	clk.Block()
	<-done
	clk.Unblock()
	b.StopTimer()
}
