package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Errors returned by Network operations.
var (
	ErrHostExists   = errors.New("simnet: host already exists")
	ErrNoHost       = errors.New("simnet: no such host")
	ErrPortInUse    = errors.New("simnet: port in use")
	ErrConnRefused  = errors.New("simnet: connection refused")
	ErrClosed       = errors.New("simnet: closed")
	ErrLinkDown     = errors.New("simnet: link down")
	ErrDeadline     = errors.New("simnet: deadline exceeded")
	ErrPacketTooBig = errors.New("simnet: packet exceeds MTU")
)

// Link describes one direction of connectivity between two hosts.
type Link struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) per packet.
	Jitter time.Duration
	// BandwidthBps is the serialization rate in bits/second; 0 means
	// unlimited.
	BandwidthBps float64
	// Loss is the independent per-packet drop probability in [0, 1).
	// Loss applies to packet sends only; stream bytes are reliable
	// (they model TCP over the link).
	Loss float64
	// Down drops everything: packet sends vanish, stream writes fail.
	Down bool
}

// MTU is the maximum datagram size the packet layer accepts, matching a
// typical tunnel-friendly Internet path.
const MTU = 1400

// Network is an in-memory internetwork of named hosts. The zero value
// is not usable; call New.
type Network struct {
	clock       Clock
	ownedVC     *VirtualClock // closed with the network when it created the clock
	mu          sync.Mutex
	hosts       map[string]*Host
	links       map[[2]string]*linkState
	conns       map[*Conn]struct{} // live stream conns, closed with the network
	defaultLink Link
	rng         *rand.Rand
	closed      bool

	// disp is the run-to-completion dispatch engine, created lazily on
	// the first handler registration (dispatcherFor).
	disp atomic.Pointer[dispatcher]
	// legacyDeliveries counts deliveries that took the channel path to
	// a blocking reader instead of a handler (ExecStats).
	legacyDeliveries atomic.Uint64
}

type linkState struct {
	cfg Link
	// busyUntil models serialization: the time the link's transmitter
	// becomes free. Protected by Network.mu.
	busyUntil time.Time
}

// New creates a Network whose links default to the given Link
// parameters and whose randomness is seeded for reproducibility. The
// network runs on wall-clock time; use NewWithClock or
// NewVirtualNetwork for discrete-event time.
func New(defaultLink Link, seed int64) *Network {
	return NewWithClock(defaultLink, seed, Wall)
}

// NewWithClock creates a Network whose time (link delays, deadlines,
// delivery instants) is governed by clk.
func NewWithClock(defaultLink Link, seed int64, clk Clock) *Network {
	if clk == nil {
		clk = Wall
	}
	return &Network{
		clock:       clk,
		hosts:       make(map[string]*Host),
		links:       make(map[[2]string]*linkState),
		conns:       make(map[*Conn]struct{}),
		defaultLink: defaultLink,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// NewVirtualNetwork creates a Network on a fresh VirtualClock owned by
// the network: Close shuts the clock down too. The calling goroutine
// is the clock's registered driver (see NewVirtual).
func NewVirtualNetwork(defaultLink Link, seed int64) *Network {
	vc := NewVirtual()
	n := NewWithClock(defaultLink, seed, vc)
	n.ownedVC = vc
	return n
}

// Clock returns the clock governing this network's time.
func (n *Network) Clock() Clock { return n.clock }

// AddHost creates a host with the given name (its address). Names must
// be unique within the network.
func (n *Network) AddHost(name string) (*Host, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.hosts[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrHostExists, name)
	}
	h := &Host{
		net:       n,
		name:      name,
		listeners: make(map[int]*Listener),
		pktConns:  make(map[int]*PacketConn),
		ephemeral: 49152,
	}
	n.hosts[name] = h
	return h, nil
}

// MustAddHost is AddHost that panics on error; intended for scenario
// construction in tests and examples where names are static.
func (n *Network) MustAddHost(name string) *Host {
	h, err := n.AddHost(name)
	if err != nil {
		panic(err)
	}
	return h
}

// Host returns the named host, if present.
func (n *Network) Host(name string) (*Host, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[name]
	return h, ok
}

// SetLink configures both directions between hosts a and b.
func (n *Network) SetLink(a, b string, l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]string{a, b}] = &linkState{cfg: l}
	n.links[[2]string{b, a}] = &linkState{cfg: l}
}

// SetLinkOneWay configures only the a→b direction.
func (n *Network) SetLinkOneWay(a, b string, l Link) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]string{a, b}] = &linkState{cfg: l}
}

// SetLinkDown marks both directions between a and b up or down,
// preserving the other link parameters. Used for failure injection.
func (n *Network) SetLinkDown(a, b string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, key := range [][2]string{{a, b}, {b, a}} {
		ls, ok := n.links[key]
		if !ok {
			cfg := n.defaultLink
			ls = &linkState{cfg: cfg}
			n.links[key] = ls
		}
		ls.cfg.Down = down
	}
}

// linkFor returns the directional link state from src to dst, creating
// a default entry on first use so busyUntil tracking is stable.
func (n *Network) linkFor(src, dst string) *linkState {
	key := [2]string{src, dst}
	ls, ok := n.links[key]
	if !ok {
		ls = &linkState{cfg: n.defaultLink}
		n.links[key] = ls
	}
	return ls
}

// delayFor computes the delivery delay for size bytes from src to dst
// at the current clock instant, advancing the link's serialization
// state. It returns ok=false when the link is down or the packet is
// randomly lost (lossy true enables random loss).
func (n *Network) delayFor(src, dst string, size int, lossy bool) (time.Duration, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ls := n.linkFor(src, dst)
	cfg := ls.cfg
	if cfg.Down {
		return 0, false
	}
	if lossy && cfg.Loss > 0 && n.rng.Float64() < cfg.Loss {
		return 0, false
	}
	if cfg.BandwidthBps == 0 && ls.busyUntil.IsZero() {
		// Unbounded-capacity link with no queued transmissions: the
		// delay is fully determined without reading the clock, which
		// keeps the per-packet fast path free of time syscalls.
		delay := cfg.Latency
		if cfg.Jitter > 0 {
			delay += time.Duration(n.rng.Int63n(int64(cfg.Jitter)))
		}
		return delay, true
	}
	now := n.clock.Now()
	var txTime time.Duration
	if cfg.BandwidthBps > 0 {
		txTime = time.Duration(float64(size*8) / cfg.BandwidthBps * float64(time.Second))
	}
	start := now
	if ls.busyUntil.After(now) {
		start = ls.busyUntil
	}
	ls.busyUntil = start.Add(txTime)
	delay := start.Add(txTime).Sub(now) + cfg.Latency
	if cfg.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(cfg.Jitter)))
	}
	return delay, true
}

// addConn registers a live stream conn so Close can tear it down:
// readers parked on an orphaned conn would otherwise outlive the
// network (and its clock) forever.
func (n *Network) addConn(c *Conn) {
	n.mu.Lock()
	n.conns[c] = struct{}{}
	n.mu.Unlock()
}

// dropConn removes a conn closed by its owner.
func (n *Network) dropConn(c *Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// linkUp reports whether the src→dst direction is currently up.
func (n *Network) linkUp(src, dst string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.linkFor(src, dst).cfg.Down
}

// Close tears down the network: all listeners, conns, and packet conns
// are closed.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	hosts := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		hosts = append(hosts, h)
	}
	conns := make([]*Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	for _, h := range hosts {
		h.closeAll()
	}
	for _, c := range conns {
		c.closeTeardown()
	}
	if n.ownedVC != nil {
		n.ownedVC.Close()
	}
}

// Addr is the net.Addr implementation for simnet endpoints.
type Addr struct {
	Host string
	Port int
}

// Network implements net.Addr.
func (a Addr) Network() string { return "sim" }

// String implements net.Addr, rendering "host:port".
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Host, a.Port) }

// ParseAddr splits "host:port". The host part may itself contain no
// colons (simnet host names are flat identifiers). The port must be a
// bare decimal integer in [0, 65535]; trailing garbage is rejected.
func ParseAddr(s string) (Addr, error) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ':' {
			portStr := s[i+1:]
			if portStr == "" {
				return Addr{}, fmt.Errorf("simnet: bad address %q: empty port", s)
			}
			for _, c := range portStr {
				// Digits only: Atoi alone would admit signs ("+80").
				if c < '0' || c > '9' {
					return Addr{}, fmt.Errorf("simnet: bad address %q: invalid port %q", s, portStr)
				}
			}
			port, err := strconv.Atoi(portStr)
			if err != nil || port > 65535 {
				return Addr{}, fmt.Errorf("simnet: bad address %q: port %q out of range", s, portStr)
			}
			return Addr{Host: s[:i], Port: port}, nil
		}
	}
	return Addr{}, fmt.Errorf("simnet: bad address %q: missing port", s)
}
