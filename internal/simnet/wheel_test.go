package simnet

import (
	"math/rand"
	"testing"
	"time"
)

// ---- differential property test: wheel vs reference heap ----------------

const (
	opAt = iota
	opEvery
	opCancel
	opRunUntil
)

type schedOp struct {
	kind      int
	t         time.Duration // absolute: At target, Every start, RunUntil limit
	period    time.Duration
	stopAfter int // Every: self-cancel from inside fn after this many fires
	cancelIdx int
}

// genSchedOps builds a deterministic randomized workload mixing every
// scheduler operation across time scales that exercise all wheel
// levels (ns .. hundreds of seconds), including past-time clamps,
// external cancels in every dispatch state, and self-canceling chains.
func genSchedOps(seed int64, n int) []schedOp {
	rng := rand.New(rand.NewSource(seed))
	scales := []time.Duration{
		time.Nanosecond, time.Microsecond, time.Millisecond,
		time.Second, 100 * time.Second,
	}
	var ops []schedOp
	now := time.Duration(0)
	handles := 0
	off := func() time.Duration {
		d := time.Duration(rng.Int63n(200)) * scales[rng.Intn(len(scales))]
		if rng.Intn(8) == 0 {
			d = -d // past target: exercises the clamp-to-now path
		}
		return d
	}
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); {
		case k < 4:
			ops = append(ops, schedOp{kind: opAt, t: now + off()})
			handles++
		case k < 6:
			period := time.Duration(rng.Int63n(50*int64(scales[rng.Intn(len(scales))])) + 1)
			ops = append(ops, schedOp{
				kind: opEvery, t: now + off(), period: period,
				stopAfter: 1 + rng.Intn(8), // always bounded: chains self-cancel
			})
			handles++
		case k < 8 && handles > 0:
			ops = append(ops, schedOp{kind: opCancel, cancelIdx: rng.Intn(handles)})
		default:
			now += time.Duration(rng.Int63n(100*int64(scales[rng.Intn(len(scales))])) + 1)
			ops = append(ops, schedOp{kind: opRunUntil, t: now})
		}
	}
	ops = append(ops, schedOp{kind: opRunUntil, t: now + 500*time.Second})
	return ops
}

// schedDriver adapts one scheduler implementation to the op script.
type schedDriver struct {
	now      func() time.Duration
	at       func(t time.Duration, fn func()) func()
	every    func(start, period time.Duration, fn func()) func()
	runUntil func(t time.Duration)
	pending  func() int
}

type fireRec struct {
	at time.Duration
	id int
}

func driveSchedOps(ops []schedOp, d schedDriver) (fires []fireRec, pend []int) {
	var cancels []func()
	for id, op := range ops {
		id := id
		switch op.kind {
		case opAt:
			c := d.at(op.t, func() { fires = append(fires, fireRec{d.now(), id}) })
			cancels = append(cancels, c)
		case opEvery:
			count := 0
			stop := op.stopAfter
			var self func()
			self = d.every(op.t, op.period, func() {
				count++
				fires = append(fires, fireRec{d.now(), id})
				if count == stop {
					self()
				}
			})
			cancels = append(cancels, self)
		case opCancel:
			cancels[op.cancelIdx]()
		case opRunUntil:
			d.runUntil(op.t)
			pend = append(pend, d.pending())
		}
	}
	return fires, pend
}

func wheelDriver() schedDriver {
	s := NewScheduler()
	return schedDriver{
		now: s.Now,
		at: func(t time.Duration, fn func()) func() {
			return s.At(t, fn).Cancel
		},
		every: func(start, period time.Duration, fn func()) func() {
			return s.Every(start, period, fn).Cancel
		},
		runUntil: s.RunUntil,
		pending:  s.Pending,
	}
}

func refDriver() schedDriver {
	s := newRefScheduler()
	return schedDriver{
		now: s.Now,
		at: func(t time.Duration, fn func()) func() {
			return s.At(t, fn).Cancel
		},
		every: func(start, period time.Duration, fn func()) func() {
			return s.Every(start, period, fn).Cancel
		},
		runUntil: s.RunUntil,
		pending:  s.Pending,
	}
}

// TestSchedulerDifferentialVsRefHeap drives the timing wheel and the
// old container/heap scheduler with identical randomized workloads and
// requires identical firing order and identical pending counts at
// every quiescent point.
func TestSchedulerDifferentialVsRefHeap(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		ops := genSchedOps(seed, 600)
		wf, wp := driveSchedOps(ops, wheelDriver())
		rf, rp := driveSchedOps(ops, refDriver())
		if len(wf) != len(rf) {
			t.Fatalf("seed %d: wheel fired %d events, heap %d", seed, len(wf), len(rf))
		}
		for i := range wf {
			if wf[i] != rf[i] {
				t.Fatalf("seed %d: firing %d diverges: wheel %v heap %v", seed, i, wf[i], rf[i])
			}
		}
		if len(wp) != len(rp) {
			t.Fatalf("seed %d: pending snapshots %d vs %d", seed, len(wp), len(rp))
		}
		for i := range wp {
			if wp[i] != rp[i] {
				t.Fatalf("seed %d: pending snapshot %d diverges: wheel %d heap %d", seed, i, wp[i], rp[i])
			}
		}
	}
}

// ---- wheel-specific regressions ------------------------------------------

// TestSchedulerCancelReclaimsStore is the regression for the heap
// scheduler's memory pinning: canceled events stayed in the queue
// until their deadline. The wheel must return every record of 100k
// canceled periodic chains to the free list immediately, and reuse
// them for later events instead of growing the store.
func TestSchedulerCancelReclaimsStore(t *testing.T) {
	s := NewScheduler()
	const n = 100_000
	ctls := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		ctls = append(ctls, s.Every(time.Duration(i)*time.Microsecond, time.Hour, func() {}))
	}
	inUse := s.storeCap() - s.storeFree()
	if inUse != 2*n { // one control + one chain link per Every
		t.Fatalf("in-use records = %d, want %d", inUse, 2*n)
	}
	for _, c := range ctls {
		c.Cancel()
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after mass cancel = %d, want 0", got)
	}
	if free, cap := s.storeFree(), s.storeCap(); free != cap {
		t.Fatalf("canceled events still pin %d of %d records", cap-free, cap)
	}
	// The reclaimed store is reused: scheduling n fresh timers must not
	// allocate a single new slab.
	capBefore := s.storeCap()
	for i := 0; i < n; i++ {
		s.AtIndexed(time.Duration(i), uint64(i))
	}
	if s.storeCap() != capBefore {
		t.Fatalf("store grew %d -> %d records despite %d free", capBefore, s.storeCap(), capBefore)
	}
	s.RunUntil(time.Hour)
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
}

// TestSchedulerWheelLevels pins ordering across every time scale a
// world uses — events parked many wheel levels apart must still fire
// in (at, seq) order as they cascade down.
func TestSchedulerWheelLevels(t *testing.T) {
	s := NewScheduler()
	targets := []time.Duration{
		1, 63, 64, 65, // around the level-0/1 boundary
		4095, 4096, 4097, // level-1/2 boundary
		5 * time.Microsecond, 3 * time.Millisecond, 450 * time.Millisecond,
		7 * time.Second, 90 * time.Minute, 300 * time.Hour,
	}
	var fired []time.Duration
	for i := len(targets) - 1; i >= 0; i-- { // schedule in reverse
		at := targets[i]
		s.At(at, func() {
			if s.Now() != at {
				t.Errorf("event for %v fired at %v", at, s.Now())
			}
			fired = append(fired, at)
		})
	}
	s.Run()
	if len(fired) != len(targets) {
		t.Fatalf("fired %d of %d events", len(fired), len(targets))
	}
	for i, at := range targets {
		if fired[i] != at {
			t.Fatalf("firing order %v, want %v", fired, targets)
		}
	}
}

// TestSchedulerSameInstantCrossLevel pins the cascade-before-fire tie
// rule: an early-scheduled event parked in an upper wheel and a
// late-scheduled event already on level 0 share one deadline; the
// earlier seq must fire first even though it has further to cascade.
func TestSchedulerSameInstantCrossLevel(t *testing.T) {
	s := NewScheduler()
	const deadline = 100 * time.Millisecond
	var order []string
	s.At(deadline, func() { order = append(order, "early-seq") }) // parks high
	s.At(deadline-time.Nanosecond, func() {
		// Runs just before the deadline: this sibling lands on level 0.
		s.At(deadline, func() { order = append(order, "late-seq") })
	})
	s.Run()
	if len(order) != 2 || order[0] != "early-seq" || order[1] != "late-seq" {
		t.Fatalf("same-instant order = %v", order)
	}
}

// TestSchedulerIndexedEvents covers the closure-free timer path used
// by compact worlds.
func TestSchedulerIndexedEvents(t *testing.T) {
	s := NewScheduler()
	var got []uint64
	s.OnIndexed = func(arg uint64) {
		got = append(got, arg)
		if arg == 7 {
			s.AtIndexed(s.Now()+time.Millisecond, 8) // reschedule from handler
		}
	}
	s.AtIndexed(2*time.Millisecond, 7)
	s.AtIndexed(time.Millisecond, 3)
	s.Run()
	want := []uint64{3, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("indexed fires = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("indexed fires = %v, want %v", got, want)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
}

// TestSchedulerStaleHandleCancel pins the generation guard: a handle
// kept past its event's firing must not cancel whatever event reuses
// the record.
func TestSchedulerStaleHandleCancel(t *testing.T) {
	s := NewScheduler()
	stale := s.At(time.Millisecond, func() {})
	s.Run() // fires and recycles the record
	fired := false
	fresh := s.At(2*time.Millisecond, func() { fired = true }) // reuses it
	stale.Cancel()                                             // must be a no-op
	s.Run()
	if !fired {
		t.Fatal("stale Cancel killed an innocent reused event")
	}
	fresh.Cancel() // already fired: no-op
}

// ---- sharded scheduler ----------------------------------------------------

// TestShardedSchedulerDeterministicAcrossWorkers runs the same
// per-region workload serially and with maximal worker parallelism and
// requires identical per-region logs, barrier sequences, and clocks.
func TestShardedSchedulerDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) ([][]time.Duration, []time.Duration) {
		ss := NewShardedScheduler(8, 10*time.Millisecond, workers)
		logs := make([][]time.Duration, ss.Regions())
		for i := 0; i < ss.Regions(); i++ {
			i := i
			r := ss.Region(i)
			r.Every(time.Duration(i+1)*time.Millisecond, 7*time.Millisecond, func() {
				logs[i] = append(logs[i], r.Now())
			})
		}
		var barriers []time.Duration
		ss.RunUntil(100*time.Millisecond, func(now time.Duration) {
			barriers = append(barriers, now)
		})
		return logs, barriers
	}
	serialLogs, serialBarriers := run(1)
	parLogs, parBarriers := run(8)
	for i := range serialLogs {
		if len(serialLogs[i]) != len(parLogs[i]) {
			t.Fatalf("region %d: %d vs %d fires", i, len(serialLogs[i]), len(parLogs[i]))
		}
		for j := range serialLogs[i] {
			if serialLogs[i][j] != parLogs[i][j] {
				t.Fatalf("region %d fire %d: %v vs %v", i, j, serialLogs[i][j], parLogs[i][j])
			}
		}
	}
	if len(serialBarriers) != len(parBarriers) || len(serialBarriers) != 10 {
		t.Fatalf("barriers: serial %v par %v", serialBarriers, parBarriers)
	}
	if serialBarriers[len(serialBarriers)-1] != 100*time.Millisecond {
		t.Fatalf("last barrier = %v", serialBarriers[len(serialBarriers)-1])
	}
}

// TestShardedSchedulerBarrierScheduling verifies onBarrier may feed
// new cross-region work into the next window.
func TestShardedSchedulerBarrierScheduling(t *testing.T) {
	ss := NewShardedScheduler(2, 10*time.Millisecond, 2)
	var fired []time.Duration
	ss.RunUntil(30*time.Millisecond, func(now time.Duration) {
		if now == 10*time.Millisecond {
			ss.Region(1).At(now+5*time.Millisecond, func() {
				fired = append(fired, ss.Region(1).Now())
			})
		}
	})
	if len(fired) != 1 || fired[0] != 15*time.Millisecond {
		t.Fatalf("barrier-scheduled fires = %v", fired)
	}
	if ss.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v", ss.Now())
	}
}

func TestMergeRegions(t *testing.T) {
	type rec struct {
		at  time.Duration
		seq uint64
		val string
	}
	parts := [][]rec{
		{{1, 1, "a1"}, {5, 2, "a2"}, {5, 9, "a3"}},
		{{2, 1, "b1"}, {5, 3, "b2"}},
		{},
		{{1, 1, "d1"}, {9, 1, "d2"}},
	}
	got := MergeRegions(parts, func(r rec) (time.Duration, uint64) { return r.at, r.seq })
	want := []string{"a1", "d1", "b1", "a2", "b2", "a3", "d2"}
	if len(got) != len(want) {
		t.Fatalf("merged %d records, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].val != w {
			t.Fatalf("merge order %v, want %v at %d", got[i].val, w, i)
		}
	}
}
