package simnet

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

func newTestNet(t *testing.T, link Link) *Network {
	t.Helper()
	n := New(link, 1)
	t.Cleanup(n.Close)
	return n
}

func TestAddHostDuplicate(t *testing.T) {
	n := newTestNet(t, Link{})
	if _, err := n.AddHost("ap1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddHost("ap1"); !errors.Is(err, ErrHostExists) {
		t.Fatalf("want ErrHostExists, got %v", err)
	}
	if _, ok := n.Host("ap1"); !ok {
		t.Error("Host lookup failed")
	}
	if _, ok := n.Host("nope"); ok {
		t.Error("Host lookup found ghost")
	}
}

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"registry:8400", Addr{Host: "registry", Port: 8400}, true},
		{"ap1:0", Addr{Host: "ap1", Port: 0}, true},
		{"ap1:65535", Addr{Host: "ap1", Port: 65535}, true},
		{":80", Addr{Host: "", Port: 80}, true},
		{"a:b:8080", Addr{Host: "a:b", Port: 8080}, true}, // last colon splits
		{"noport", Addr{}, false},
		{"", Addr{}, false},
		{"host:", Addr{}, false},
		{"host:abc", Addr{}, false},
		{"host:80x", Addr{}, false},  // trailing garbage
		{"host: 80", Addr{}, false},  // embedded space
		{"host:+80", Addr{}, false},  // sign rejected
		{"host:-1", Addr{}, false},   // negative
		{"host:65536", Addr{}, false}, // out of range
		{"host:999999999999999999999", Addr{}, false}, // overflow
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseAddr(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}

	a := Addr{Host: "registry", Port: 8400}
	if a.String() != "registry:8400" {
		t.Errorf("String = %q", a.String())
	}
	if a.Network() != "sim" {
		t.Errorf("Network = %q", a.Network())
	}
}

func TestStreamEcho(t *testing.T) {
	n := newTestNet(t, Link{Latency: time.Millisecond})
	a := n.MustAddHost("a")
	b := n.MustAddHost("b")
	l, err := b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer c.Close()
		io.Copy(c, c)
	}()

	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello dlte")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("echo = %q", got)
	}
	c.Close()
	wg.Wait()
}

func TestStreamLatency(t *testing.T) {
	const lat = 20 * time.Millisecond
	n := newTestNet(t, Link{Latency: lat})
	a := n.MustAddHost("a")
	b := n.MustAddHost("b")
	l, _ := b.Listen(80)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(c, c)
	}()
	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	c.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	if rtt < 2*lat {
		t.Errorf("RTT %v < 2×latency %v", rtt, 2*lat)
	}
	if rtt > 2*lat+150*time.Millisecond {
		t.Errorf("RTT %v implausibly large", rtt)
	}
}

func TestDialErrors(t *testing.T) {
	n := newTestNet(t, Link{})
	a := n.MustAddHost("a")
	n.MustAddHost("b")
	if _, err := a.Dial("ghost:80"); !errors.Is(err, ErrNoHost) {
		t.Errorf("want ErrNoHost, got %v", err)
	}
	if _, err := a.Dial("b:80"); !errors.Is(err, ErrConnRefused) {
		t.Errorf("want ErrConnRefused, got %v", err)
	}
	if _, err := a.Dial("bad-addr"); err == nil {
		t.Error("want parse error")
	}
}

func TestListenPortInUse(t *testing.T) {
	n := newTestNet(t, Link{})
	a := n.MustAddHost("a")
	if _, err := a.Listen(80); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Listen(80); !errors.Is(err, ErrPortInUse) {
		t.Errorf("want ErrPortInUse, got %v", err)
	}
	// Ephemeral allocation avoids used ports.
	l2, err := a.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Addr().(Addr).Port == 80 {
		t.Error("ephemeral allocated bound port")
	}
}

func TestCloseUnblocksReader(t *testing.T) {
	n := newTestNet(t, Link{})
	a := n.MustAddHost("a")
	b := n.MustAddHost("b")
	l, _ := b.Listen(80)
	accepted := make(chan io.ReadWriteCloser, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted

	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, err := srv.Read(buf)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err != io.EOF {
			t.Errorf("read after close = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader not unblocked by close")
	}
}

func TestReadDeadline(t *testing.T) {
	n := newTestNet(t, Link{})
	a := n.MustAddHost("a")
	b := n.MustAddHost("b")
	l, _ := b.Listen(80)
	go l.Accept()
	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 1)
	start := time.Now()
	_, err = c.Read(buf)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("deadline took %v", elapsed)
	}
	// Expired deadline fails immediately.
	c.SetDeadline(time.Now().Add(-time.Second))
	if _, err := c.Read(buf); !errors.Is(err, ErrDeadline) {
		t.Errorf("want immediate ErrDeadline, got %v", err)
	}
}

func TestLinkDownStream(t *testing.T) {
	n := newTestNet(t, Link{})
	a := n.MustAddHost("a")
	b := n.MustAddHost("b")
	l, _ := b.Listen(80)
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	n.SetLinkDown("a", "b", true)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrLinkDown) {
		t.Errorf("want ErrLinkDown on write, got %v", err)
	}
	if _, err := a.Dial("b:80"); !errors.Is(err, ErrLinkDown) {
		t.Errorf("want ErrLinkDown on dial, got %v", err)
	}
	// Restore and verify recovery.
	n.SetLinkDown("a", "b", false)
	if _, err := a.Dial("b:80"); err != nil {
		t.Errorf("dial after restore: %v", err)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	n := newTestNet(t, Link{Latency: time.Millisecond})
	a := n.MustAddHost("a")
	b := n.MustAddHost("b")
	pa, err := a.ListenPacket(2152)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.ListenPacket(2152)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pa.WriteToHost([]byte("gtp"), "b", 2152); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	pb.SetReadDeadline(time.Now().Add(time.Second))
	nr, from, err := pb.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:nr]) != "gtp" {
		t.Errorf("payload = %q", buf[:nr])
	}
	if from.(Addr).Host != "a" {
		t.Errorf("from = %v", from)
	}
}

func TestPacketLossTotal(t *testing.T) {
	n := newTestNet(t, Link{Loss: 1.0})
	a := n.MustAddHost("a")
	b := n.MustAddHost("b")
	pa, _ := a.ListenPacket(1000)
	pb, _ := b.ListenPacket(1000)
	for i := 0; i < 20; i++ {
		pa.WriteToHost([]byte("x"), "b", 1000)
	}
	pb.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := pb.ReadFrom(make([]byte, 8)); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expected all packets lost, got %v", err)
	}
}

func TestPacketLossPartial(t *testing.T) {
	n := newTestNet(t, Link{Loss: 0.5})
	a := n.MustAddHost("a")
	b := n.MustAddHost("b")
	pa, _ := a.ListenPacket(1000)
	pb, _ := b.ListenPacket(1000)
	const sent = 400
	for i := 0; i < sent; i++ {
		pa.WriteToHost([]byte("x"), "b", 1000)
	}
	received := 0
	buf := make([]byte, 8)
	for {
		pb.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		if _, _, err := pb.ReadFrom(buf); err != nil {
			break
		}
		received++
	}
	// With p=0.5 and n=400, expect ~200; 120–280 is ±8σ.
	if received < 120 || received > 280 {
		t.Errorf("received %d of %d at 50%% loss", received, sent)
	}
}

func TestPacketMTU(t *testing.T) {
	n := newTestNet(t, Link{})
	a := n.MustAddHost("a")
	pa, _ := a.ListenPacket(1000)
	if _, err := pa.WriteToHost(make([]byte, MTU+1), "a", 1000); !errors.Is(err, ErrPacketTooBig) {
		t.Errorf("want ErrPacketTooBig, got %v", err)
	}
}

func TestPacketToUnknownDropsSilently(t *testing.T) {
	n := newTestNet(t, Link{})
	a := n.MustAddHost("a")
	pa, _ := a.ListenPacket(1000)
	if _, err := pa.WriteToHost([]byte("x"), "ghost", 1); err != nil {
		t.Errorf("write to unknown host should drop silently: %v", err)
	}
	if _, err := pa.WriteToHost([]byte("x"), "a", 9); err != nil {
		t.Errorf("write to unbound port should drop silently: %v", err)
	}
}

func TestPacketLinkDownDropsSilently(t *testing.T) {
	n := newTestNet(t, Link{})
	a := n.MustAddHost("a")
	b := n.MustAddHost("b")
	pa, _ := a.ListenPacket(1000)
	pb, _ := b.ListenPacket(1000)
	n.SetLinkDown("a", "b", true)
	if _, err := pa.WriteToHost([]byte("x"), "b", 1000); err != nil {
		t.Fatalf("packet on down link should drop, not error: %v", err)
	}
	pb.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, _, err := pb.ReadFrom(make([]byte, 8)); !errors.Is(err, ErrDeadline) {
		t.Error("packet delivered across down link")
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 80 kbit/s link: a 1000-byte message takes 100 ms to serialize.
	n := newTestNet(t, Link{BandwidthBps: 80_000})
	a := n.MustAddHost("a")
	b := n.MustAddHost("b")
	l, _ := b.Listen(80)
	done := make(chan time.Time, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		io.ReadFull(c, make([]byte, 1000))
		done <- time.Now()
	}()
	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	c.Write(make([]byte, 1000))
	end := <-done
	if d := end.Sub(start); d < 90*time.Millisecond {
		t.Errorf("1000B over 80kbps arrived in %v, want ≥ ~100ms", d)
	}
}

func TestClosedPacketConnWrite(t *testing.T) {
	n := newTestNet(t, Link{})
	a := n.MustAddHost("a")
	pa, _ := a.ListenPacket(1000)
	pa.Close()
	if _, err := pa.WriteToHost([]byte("x"), "a", 1000); !errors.Is(err, ErrClosed) {
		t.Errorf("want ErrClosed, got %v", err)
	}
	if _, _, err := pa.ReadFrom(make([]byte, 8)); !errors.Is(err, ErrClosed) {
		t.Errorf("want ErrClosed on read, got %v", err)
	}
	// Port is reusable after close.
	if _, err := a.ListenPacket(1000); err != nil {
		t.Errorf("rebind after close: %v", err)
	}
}

func TestNetworkClose(t *testing.T) {
	n := New(Link{}, 1)
	a := n.MustAddHost("a")
	l, _ := a.Listen(80)
	n.Close()
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Errorf("accept after network close = %v", err)
	}
	if _, err := n.AddHost("b"); !errors.Is(err, ErrClosed) {
		t.Errorf("AddHost after close = %v", err)
	}
	n.Close() // idempotent
}

func TestConnAddrs(t *testing.T) {
	n := newTestNet(t, Link{})
	a := n.MustAddHost("a")
	b := n.MustAddHost("b")
	l, _ := b.Listen(80)
	go l.Accept()
	c, err := a.Dial("b:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.LocalAddr().(Addr).Host != "a" {
		t.Errorf("LocalAddr = %v", c.LocalAddr())
	}
	ra := c.RemoteAddr().(Addr)
	if ra.Host != "b" || ra.Port != 80 {
		t.Errorf("RemoteAddr = %v", ra)
	}
}
