package simnet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// datagram is one queued packet with its delivery instant. Under a
// VirtualClock, bar keeps virtual time from jumping past the delivery
// before the receiver parks on it. from carries the sender's pre-boxed
// address so the ReadFrom return costs no interface allocation.
type datagram struct {
	data []byte
	from net.Addr
	at   time.Time
	bar  *vbarrier
}

// PacketConn is a simnet datagram socket. It implements the
// net.PacketConn read/write surface used by the GTP-U and mobility
// transport layers: unreliable, unordered-within-jitter, loss- and
// latency-afflicted delivery.
//
// Like a stream halfPipe, a socket receives through one of three
// paths: prebox buffers packets arriving before the receiver engages,
// inbox is the legacy channel a blocking reader parks on (allocated on
// first ReadFrom), and a registered dispatch handler replaces both.
// The receive buffer is bounded at inboxDepth on every path — overflow
// drops model kernel receive-buffer loss identically in all modes.
type PacketConn struct {
	host     *Host
	addr     Addr
	boxedSrc net.Addr // addr boxed once, stamped on outgoing datagrams

	imu    sync.Mutex
	prebox []datagram
	inbox  chan datagram // legacy path; nil until a reader engages

	// dc is the receiver's dispatch endpoint. Written under imu; read
	// lock-free on the send fast path.
	dc atomic.Pointer[dconn]

	// lastDst memoizes the most recent resolved destination so a
	// socket streaming to one peer (the common user-plane shape) skips
	// the two mutex-guarded map lookups per packet. Invalidated by
	// comparing the address and checking the target's done channel.
	lastDst atomic.Pointer[pktDst]

	readDeadline deadline
	closeOnce    sync.Once
	done         chan struct{}
}

// pktDst is one memoized destination resolution.
type pktDst struct {
	a   Addr
	dst *PacketConn
}

// resolveDst finds the destination socket for a, consulting the memo
// first. ok=false means the packet black-holes (unknown host or
// unbound port), matching UDP.
func (p *PacketConn) resolveDst(a Addr) (*PacketConn, bool) {
	if m := p.lastDst.Load(); m != nil && m.a == a {
		select {
		case <-m.dst.done:
			// Socket since closed; fall through and re-resolve (the
			// port may have been rebound).
		default:
			return m.dst, true
		}
	}
	p.host.net.mu.Lock()
	remote, ok := p.host.net.hosts[a.Host]
	p.host.net.mu.Unlock()
	if !ok {
		return nil, false
	}
	remote.mu.Lock()
	dst, ok := remote.pktConns[a.Port]
	remote.mu.Unlock()
	if !ok {
		return nil, false
	}
	p.lastDst.Store(&pktDst{a: a, dst: dst})
	return dst, true
}

// LocalAddr reports the socket's bound address.
func (p *PacketConn) LocalAddr() net.Addr { return p.addr }

// SetHandler switches the socket to run-to-completion dispatch: h runs
// inline on the network's dispatcher for every delivered datagram, in
// delivery order, at the delivery instant. The buffer is owned by the
// dispatcher and valid only for the duration of the call. Packets
// already buffered are re-registered at their original delivery
// instants. The same handler contract as Conn.OnDeliver applies: no
// clock waits inside h, and Poke after waking goroutines through
// channels the clock cannot see.
func (p *PacketConn) SetHandler(h func(data []byte, from net.Addr)) {
	d := p.host.net.dispatcherFor()
	dc := d.register()
	dc.onPacket = h
	dc.bounded = true
	p.imu.Lock()
	if p.inbox != nil {
	drain:
		for {
			select {
			case dg := <-p.inbox:
				d.migrateDatagram(dc, dg)
			default:
				break drain
			}
		}
	}
	for _, dg := range p.prebox {
		d.migrateDatagram(dc, dg)
	}
	p.prebox = nil
	p.dc.Store(dc)
	p.imu.Unlock()
}

// engage returns the legacy inbox, allocating it and draining any
// pre-engagement datagrams into it on first use.
func (p *PacketConn) engage() chan datagram {
	p.imu.Lock()
	if p.inbox == nil {
		p.inbox = make(chan datagram, inboxDepth)
		for _, dg := range p.prebox {
			p.inbox <- dg
		}
		p.prebox = nil
	}
	in := p.inbox
	p.imu.Unlock()
	return in
}

// coerceAddr normalizes the destination address forms WriteTo accepts.
func coerceAddr(addr net.Addr) (Addr, error) {
	switch v := addr.(type) {
	case Addr:
		return v, nil
	case *Addr:
		return *v, nil
	default:
		return ParseAddr(addr.String())
	}
}

// queueTo hands an owned payload to dst's receive path after delay:
// the dispatch handler when one is registered, otherwise the legacy
// inbox (or prebox). Overflow beyond inboxDepth drops the packet on
// every path.
func (p *PacketConn) queueTo(dst *PacketConn, data []byte, delay time.Duration) {
	// Dispatch fast path: no barrier, no channel.
	if dc := dst.dc.Load(); dc != nil {
		dc.d.send(dc, data, p.boxedSrc, delay)
		return
	}
	clk := p.host.net.clock
	dg := datagram{data: data, from: p.boxedSrc}
	vc, virtual := clk.(*VirtualClock)
	if virtual {
		dg.at = clk.Now().Add(delay)
		dg.bar = vc.addBarrier(dg.at)
	} else if delay > 0 {
		// Wall clock with no link delay leaves at zero: holdUntil
		// skips the clock read entirely for immediate deliveries.
		dg.at = clk.Now().Add(delay)
	}
	// Legacy enqueue, mode-checked under the receive lock so a
	// concurrent SetHandler migration cannot strand the datagram.
	dst.imu.Lock()
	if dc := dst.dc.Load(); dc != nil {
		dst.imu.Unlock()
		if virtual {
			vc.releaseBarrier(dg.bar)
		}
		dc.d.send(dc, data, p.boxedSrc, delay)
		return
	}
	if dst.inbox == nil {
		if len(dst.prebox) < inboxDepth {
			dst.prebox = append(dst.prebox, dg)
			dst.imu.Unlock()
			p.host.net.noteLegacyDelivery()
			return
		}
		dst.imu.Unlock()
	} else {
		select {
		case dst.inbox <- dg:
			dst.imu.Unlock()
			p.host.net.noteLegacyDelivery()
			return
		default:
			dst.imu.Unlock()
		}
	}
	// Receiver queue overflow models receive-buffer drops.
	if virtual {
		vc.releaseBarrier(dg.bar)
	}
	payloadPut(data)
}

// WriteTo sends a datagram to addr ("host:port" or an Addr). Sends on a
// down link or lost by the link's loss process are silently dropped, as
// with UDP. Sends to unknown hosts or unbound ports are also dropped
// (real networks emit ICMP; our protocols treat both as loss).
func (p *PacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	select {
	case <-p.done:
		return 0, ErrClosed
	default:
	}
	if len(b) > MTU {
		return 0, fmt.Errorf("%w: %d > %d", ErrPacketTooBig, len(b), MTU)
	}
	a, err := coerceAddr(addr)
	if err != nil {
		return 0, err
	}

	dst, ok := p.resolveDst(a)
	if !ok {
		return len(b), nil // silently dropped, like UDP into a black hole
	}

	delay, deliver := p.host.net.delayFor(p.host.name, a.Host, len(b), true)
	if !deliver {
		return len(b), nil // lost or link down
	}
	data := payloadGet(len(b))
	copy(data, b)
	p.queueTo(dst, data, delay)
	return len(b), nil
}

// WriteToHost is WriteTo with a pre-parsed destination.
func (p *PacketConn) WriteToHost(b []byte, host string, port int) (int, error) {
	return p.WriteTo(b, Addr{Host: host, Port: port})
}

// WriteOwnedTo is WriteTo for a buffer whose ownership transfers to
// the network: b must come from GetPayload (or ReadFromOwned) and is
// consumed on every path — delivered, dropped, or errored — so the
// caller must not touch it after the call. Skipping the interior
// defensive copy is what lets an encapsulation layer build a packet in
// a pooled buffer and send it with zero copies inside simnet.
func (p *PacketConn) WriteOwnedTo(b []byte, addr net.Addr) (int, error) {
	select {
	case <-p.done:
		payloadPut(b)
		return 0, ErrClosed
	default:
	}
	if len(b) > MTU {
		n := len(b)
		payloadPut(b)
		return 0, fmt.Errorf("%w: %d > %d", ErrPacketTooBig, n, MTU)
	}
	a, err := coerceAddr(addr)
	if err != nil {
		payloadPut(b)
		return 0, err
	}

	dst, ok := p.resolveDst(a)
	if !ok {
		n := len(b)
		payloadPut(b)
		return n, nil // silently dropped, like UDP into a black hole
	}

	delay, deliver := p.host.net.delayFor(p.host.name, a.Host, len(b), true)
	if !deliver {
		n := len(b)
		payloadPut(b)
		return n, nil // lost or link down
	}
	n := len(b)
	p.queueTo(dst, b, delay)
	return n, nil
}

// ReadFrom receives the next datagram, blocking until one is
// deliverable, the socket closes, or the read deadline fires.
func (p *PacketConn) ReadFrom(b []byte) (int, net.Addr, error) {
	clk := p.host.net.clock
	inbox := p.engage()

	// Fast path: a datagram is already queued; no need to park.
	select {
	case dg := <-inbox:
		p.holdUntil(dg, nil)
		n := copy(b, dg.data)
		payloadPut(dg.data)
		return n, dg.from, nil
	default:
	}

	var deadlineC <-chan time.Time
	if dl := p.readDeadline.get(); !dl.IsZero() {
		wait := clk.Until(dl)
		if wait <= 0 {
			return 0, nil, ErrDeadline
		}
		t := clk.NewTimer(wait)
		deadlineC = t.C
		defer t.Stop()
	}
	clk.Block()
	select {
	case dg := <-inbox:
		clk.Unblock()
		p.holdUntil(dg, deadlineC)
		n := copy(b, dg.data)
		payloadPut(dg.data)
		return n, dg.from, nil
	case <-p.done:
		clk.Unblock()
		return 0, nil, ErrClosed
	case <-deadlineC:
		clk.Unblock()
		return 0, nil, ErrDeadline
	}
}

// ReadFromOwned receives the next datagram and returns its pooled
// delivery buffer directly, avoiding ReadFrom's copy-out. Ownership of
// the returned slice transfers to the caller, who must release it with
// PutPayload (or pass it on via WriteOwnedTo) exactly once. Deadline
// and close behavior match ReadFrom.
func (p *PacketConn) ReadFromOwned() ([]byte, net.Addr, error) {
	clk := p.host.net.clock
	inbox := p.engage()

	// Fast path: a datagram is already queued; no need to park.
	select {
	case dg := <-inbox:
		p.holdUntil(dg, nil)
		return dg.data, dg.from, nil
	default:
	}

	var deadlineC <-chan time.Time
	if dl := p.readDeadline.get(); !dl.IsZero() {
		wait := clk.Until(dl)
		if wait <= 0 {
			return nil, nil, ErrDeadline
		}
		t := clk.NewTimer(wait)
		deadlineC = t.C
		defer t.Stop()
	}
	clk.Block()
	select {
	case dg := <-inbox:
		clk.Unblock()
		p.holdUntil(dg, deadlineC)
		return dg.data, dg.from, nil
	case <-p.done:
		clk.Unblock()
		return nil, nil, ErrClosed
	case <-deadlineC:
		clk.Unblock()
		return nil, nil, ErrDeadline
	}
}

// holdUntil waits out the datagram's remaining link delay. The
// datagram is consumed even if the deadline fires first; a real kernel
// would have buffered it past the deadline too.
func (p *PacketConn) holdUntil(dg datagram, deadlineC <-chan time.Time) {
	if vc, ok := p.host.net.clock.(*VirtualClock); ok {
		vc.holdDelivery(dg.bar, dg.at, deadlineC)
		return
	}
	if dg.at.IsZero() {
		return // immediate delivery; no clock read
	}
	wait := time.Until(dg.at)
	if wait <= 0 {
		return
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
	case <-deadlineC:
	}
}

// Clock returns the clock governing this socket's network.
func (p *PacketConn) Clock() Clock { return p.host.net.clock }

// SetReadDeadline bounds future ReadFrom calls. It does not interrupt a
// blocked ReadFrom.
func (p *PacketConn) SetReadDeadline(t time.Time) error {
	p.readDeadline.set(t)
	return nil
}

// Close releases the socket.
func (p *PacketConn) Close() error {
	p.closeOnce.Do(func() {
		if dc := p.dc.Load(); dc != nil {
			dc.d.markClosed(dc)
		}
		close(p.done)
		p.host.removePacketConn(p.addr.Port)
	})
	return nil
}
