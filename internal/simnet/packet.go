package simnet

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// datagram is one queued packet with its delivery instant. Under a
// VirtualClock, bar keeps virtual time from jumping past the delivery
// before the receiver parks on it. from carries the sender's pre-boxed
// address so the ReadFrom return costs no interface allocation.
type datagram struct {
	data []byte
	from net.Addr
	at   time.Time
	bar  *vbarrier
}

// PacketConn is a simnet datagram socket. It implements the
// net.PacketConn read/write surface used by the GTP-U and mobility
// transport layers: unreliable, unordered-within-jitter, loss- and
// latency-afflicted delivery.
type PacketConn struct {
	host     *Host
	addr     Addr
	boxedSrc net.Addr // addr boxed once, stamped on outgoing datagrams
	inbox    chan datagram

	readDeadline deadline
	closeOnce    sync.Once
	done         chan struct{}
}

// LocalAddr reports the socket's bound address.
func (p *PacketConn) LocalAddr() net.Addr { return p.addr }

// WriteTo sends a datagram to addr ("host:port" or an Addr). Sends on a
// down link or lost by the link's loss process are silently dropped, as
// with UDP. Sends to unknown hosts or unbound ports are also dropped
// (real networks emit ICMP; our protocols treat both as loss).
func (p *PacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	select {
	case <-p.done:
		return 0, ErrClosed
	default:
	}
	if len(b) > MTU {
		return 0, fmt.Errorf("%w: %d > %d", ErrPacketTooBig, len(b), MTU)
	}
	var a Addr
	switch v := addr.(type) {
	case Addr:
		a = v
	case *Addr:
		a = *v
	default:
		parsed, err := ParseAddr(addr.String())
		if err != nil {
			return 0, err
		}
		a = parsed
	}

	p.host.net.mu.Lock()
	remote, ok := p.host.net.hosts[a.Host]
	p.host.net.mu.Unlock()
	if !ok {
		return len(b), nil // silently dropped, like UDP into a black hole
	}
	remote.mu.Lock()
	dst, ok := remote.pktConns[a.Port]
	remote.mu.Unlock()
	if !ok {
		return len(b), nil
	}

	delay, deliver := p.host.net.delayFor(p.host.name, a.Host, len(b), true)
	if !deliver {
		return len(b), nil // lost or link down
	}
	clk := p.host.net.clock
	data := payloadGet(len(b))
	copy(data, b)
	dg := datagram{data: data, from: p.boxedSrc, at: clk.Now().Add(delay)}
	vc, virtual := clk.(*VirtualClock)
	if virtual {
		dg.bar = vc.addBarrier(dg.at)
	}
	select {
	case dst.inbox <- dg:
	default:
		// Receiver queue overflow models receive-buffer drops.
		if virtual {
			vc.releaseBarrier(dg.bar)
		}
		payloadPut(data)
	}
	return len(b), nil
}

// WriteToHost is WriteTo with a pre-parsed destination.
func (p *PacketConn) WriteToHost(b []byte, host string, port int) (int, error) {
	return p.WriteTo(b, Addr{Host: host, Port: port})
}

// ReadFrom receives the next datagram, blocking until one is
// deliverable, the socket closes, or the read deadline fires.
func (p *PacketConn) ReadFrom(b []byte) (int, net.Addr, error) {
	clk := p.host.net.clock

	// Fast path: a datagram is already queued; no need to park.
	select {
	case dg := <-p.inbox:
		p.holdUntil(dg, nil)
		n := copy(b, dg.data)
		payloadPut(dg.data)
		return n, dg.from, nil
	default:
	}

	var deadlineC <-chan time.Time
	if dl := p.readDeadline.get(); !dl.IsZero() {
		wait := clk.Until(dl)
		if wait <= 0 {
			return 0, nil, ErrDeadline
		}
		t := clk.NewTimer(wait)
		deadlineC = t.C
		defer t.Stop()
	}
	clk.Block()
	select {
	case dg := <-p.inbox:
		clk.Unblock()
		p.holdUntil(dg, deadlineC)
		n := copy(b, dg.data)
		payloadPut(dg.data)
		return n, dg.from, nil
	case <-p.done:
		clk.Unblock()
		return 0, nil, ErrClosed
	case <-deadlineC:
		clk.Unblock()
		return 0, nil, ErrDeadline
	}
}

// holdUntil waits out the datagram's remaining link delay. The
// datagram is consumed even if the deadline fires first; a real kernel
// would have buffered it past the deadline too.
func (p *PacketConn) holdUntil(dg datagram, deadlineC <-chan time.Time) {
	if vc, ok := p.host.net.clock.(*VirtualClock); ok {
		vc.holdDelivery(dg.bar, dg.at, deadlineC)
		return
	}
	wait := time.Until(dg.at)
	if wait <= 0 {
		return
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
	case <-deadlineC:
	}
}

// Clock returns the clock governing this socket's network.
func (p *PacketConn) Clock() Clock { return p.host.net.clock }

// SetReadDeadline bounds future ReadFrom calls. It does not interrupt a
// blocked ReadFrom.
func (p *PacketConn) SetReadDeadline(t time.Time) error {
	p.readDeadline.set(t)
	return nil
}

// Close releases the socket.
func (p *PacketConn) Close() error {
	p.closeOnce.Do(func() {
		close(p.done)
		p.host.removePacketConn(p.addr.Port)
	})
	return nil
}
