// Package simnet provides the two simulation substrates every dLTE
// experiment runs on:
//
//   - Scheduler: a single-threaded virtual-time discrete-event engine
//     used by the radio/PHY simulations and the compact million-UE
//     worlds (E13), where wall-clock time is irrelevant and
//     determinism is mandatory.
//
//   - Network: an in-memory packet/stream network with per-link latency,
//     bandwidth, loss, and failure injection, exposing net.Conn-style
//     endpoints so the real protocol stacks (NAS, S1AP, GTP, X2,
//     registry, transport) run unmodified over simulated WANs and over
//     real sockets.
package simnet

import (
	"math/bits"
	"slices"
	"time"
	"unsafe"
)

// The scheduler is a hierarchical timing wheel: wheelLevels wheels of
// wheelSlots slots each, where a level-k slot spans 64^k nanoseconds of
// virtual time. Level 0 resolves single instants; an event whose
// deadline is further out parks in the coarsest wheel that still
// separates it from the current time, and cascades down one level at a
// time as the clock reaches its slot's span. Schedule, cancel, and fire
// are all O(1) amortized (a cascade touches each event at most
// wheelLevels times over its whole lifetime), versus O(log n) per
// operation for the old container/heap queue — and cancellation
// reclaims the event slot immediately instead of pinning it in the
// heap until its deadline.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64
	wheelMask   = wheelSlots - 1
	wheelLevels = 11 // 64^11 ns > max time.Duration: any deadline fits

	maxDuration = time.Duration(1<<63 - 1)

	// Events are arena-allocated in slabs and recycled through a free
	// list, so a million parked timers cost one allocation per
	// eventSlab and zero per event at steady state.
	eventSlab = 512
)

// wevent is the wheel's internal event record. It lives in a slab and
// is recycled (generation-bumped) after firing or cancellation; user
// code only ever holds the Event value handle.
type wevent struct {
	at   time.Duration
	seq  uint64
	gen  uint64 // bumped on recycle; stale Event handles check it
	prev *wevent
	next *wevent
	// armed is the queued chain link of an Every control record; nil
	// for ordinary events.
	armed *wevent
	fn    func()
	arg   uint64 // payload for fn == nil (indexed) events
	level uint8
	slot  uint8
	flags uint8
}

const (
	wfLinked uint8 = 1 << iota // on a wheel slot list
	wfDue                      // pulled into the due buffer, not yet run
	wfDead                     // canceled while due or firing; skip and recycle
)

// EventBytes is the in-memory size of one parked event record — the
// per-timer cost a compact world accounts per idle UE.
var EventBytes = int(unsafe.Sizeof(wevent{}))

// Event is a cancelable handle to a scheduled callback. It is a value:
// the zero Event is valid and Cancel/At on it are no-ops. Handles stay
// safe after the event fires — the scheduler recycles the underlying
// record and a generation check turns stale cancels into no-ops.
type Event struct {
	s   *Scheduler
	e   *wevent
	gen uint64
	at  time.Duration
}

// Cancel prevents the event from firing. Canceling an already-fired,
// already-canceled, or zero Event is a no-op. The event's record is
// reclaimed immediately (or, mid-dispatch, as soon as the current
// instant finishes) instead of lingering until its deadline.
func (ev Event) Cancel() {
	if ev.s == nil || ev.e == nil || ev.e.gen != ev.gen {
		return
	}
	ev.s.cancelEvent(ev.e)
}

// At reports the virtual time the event was scheduled for.
func (ev Event) At() time.Duration { return ev.at }

// slotList is an intrusive doubly-linked list threaded through wevent
// prev/next pointers; one per wheel slot.
type slotList struct {
	head, tail *wevent
}

// Scheduler is a deterministic virtual-time event loop. It is not safe
// for concurrent use: all events run on the caller's goroutine, in
// timestamp order with FIFO tie-breaking.
type Scheduler struct {
	now  time.Duration
	seq  uint64
	live int // queued, non-canceled events

	slots    [wheelLevels][wheelSlots]slotList
	occupied [wheelLevels]uint64 // bitmap of non-empty slots per level

	// due holds the current instant's events, seq-sorted; dueIdx is the
	// dispatch cursor. The buffer is reused across instants.
	due    []*wevent
	dueIdx int

	free  *wevent
	slabs int // slabs ever allocated (diagnostic; see storeCap)

	// OnIndexed dispatches events scheduled with AtIndexed: closure-free
	// timers for compact worlds, where arg encodes the target endpoint.
	// It must be set before the first such event fires.
	OnIndexed func(arg uint64)
}

// NewScheduler returns a Scheduler at virtual time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

func (s *Scheduler) alloc() *wevent {
	e := s.free
	if e == nil {
		slab := make([]wevent, eventSlab)
		s.slabs++
		for i := range slab {
			slab[i].next = s.free
			s.free = &slab[i]
		}
		e = s.free
	}
	s.free = e.next
	e.next = nil
	return e
}

// recycle returns a record to the free list, bumping its generation so
// outstanding handles go stale.
func (s *Scheduler) recycle(e *wevent) {
	e.gen++
	e.fn = nil
	e.arg = 0
	e.prev = nil
	e.armed = nil
	e.flags = 0
	e.next = s.free
	s.free = e
}

// insert links e (with at/seq set, at >= s.now) into the wheel.
func (s *Scheduler) insert(e *wevent) {
	at, now := uint64(e.at), uint64(s.now)
	k := 0
	if delta := at - now; delta > 0 {
		k = (bits.Len64(delta) - 1) / wheelBits
	}
	// A delta just under a level's span can still land on that level's
	// current position (a full revolution ahead, which would fire one
	// revolution late); bump such events one level up, where their slot
	// is strictly ahead. A single bump always suffices.
	for k < wheelLevels-1 && (at>>(uint(k)*wheelBits))-(now>>(uint(k)*wheelBits)) >= wheelSlots {
		k++
	}
	slot := int((at >> (uint(k) * wheelBits)) & wheelMask)
	e.level, e.slot = uint8(k), uint8(slot)
	e.flags |= wfLinked
	l := &s.slots[k][slot]
	e.prev = l.tail
	e.next = nil
	if l.tail != nil {
		l.tail.next = e
	} else {
		l.head = e
	}
	l.tail = e
	s.occupied[k] |= 1 << uint(slot)
}

func (s *Scheduler) unlink(e *wevent) {
	l := &s.slots[e.level][e.slot]
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.flags &^= wfLinked
	if l.head == nil {
		s.occupied[e.level] &^= 1 << uint(e.slot)
	}
}

// At schedules fn to run at virtual time t. Scheduling in the past runs
// the event at the current time (it will still fire after all events
// already due). The returned Event may be used to cancel.
func (s *Scheduler) At(t time.Duration, fn func()) Event {
	if fn == nil {
		panic("simnet: Scheduler.At with nil fn")
	}
	if t < s.now {
		t = s.now
	}
	e := s.alloc()
	s.seq++
	e.at, e.seq, e.fn = t, s.seq, fn
	s.insert(e)
	s.live++
	return Event{s: s, e: e, gen: e.gen, at: t}
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) Event {
	return s.At(s.now+d, fn)
}

// AtIndexed schedules a closure-free event: when it fires, the
// scheduler calls OnIndexed(arg). There is no handle — the record is
// recycled on firing — so compact worlds pay EventBytes per parked
// timer and zero allocations per schedule at steady state. A timer
// that must stop firing is skipped by the handler (the arg encodes
// enough state to tell), not canceled.
func (s *Scheduler) AtIndexed(t time.Duration, arg uint64) {
	if t < s.now {
		t = s.now
	}
	e := s.alloc()
	s.seq++
	e.at, e.seq, e.arg = t, s.seq, arg
	s.insert(e)
	s.live++
}

// Every schedules fn to run at t, t+period, t+2·period, … until the
// returned Event is canceled.
func (s *Scheduler) Every(start, period time.Duration, fn func()) Event {
	if fn == nil {
		panic("simnet: Scheduler.Every with nil fn")
	}
	// One chain link and one closure serve the whole chain: each firing
	// requeues the same record instead of allocating per period — the
	// dominant allocation in long PHY simulations. The control record
	// exists only to give Cancel a stable target; it is never queued.
	ctl := s.alloc()
	link := s.alloc()
	ctl.armed = link
	ctl.at = 0
	ctlGen := ctl.gen
	next := start
	link.fn = func() {
		if ctl.gen != ctlGen || ctl.flags&wfDead != 0 {
			return
		}
		fn()
		if ctl.gen != ctlGen || ctl.flags&wfDead != 0 {
			return // fn canceled the chain; do not re-arm
		}
		next += period
		t := next
		if t < s.now {
			t = s.now
		}
		s.seq++
		link.at, link.seq = t, s.seq
		s.insert(link)
		s.live++
	}
	// Clamp only the queued time: `next` keeps the raw chain phase, so a
	// past start still yields firings at start+period, start+2·period, …
	t0 := next
	if t0 < s.now {
		t0 = s.now
	}
	s.seq++
	link.at, link.seq = t0, s.seq
	s.insert(link)
	s.live++
	return Event{s: s, e: ctl, gen: ctlGen, at: 0}
}

// cancelEvent handles a live (generation-matched) cancel.
func (s *Scheduler) cancelEvent(e *wevent) {
	if e.flags&wfDead != 0 {
		return
	}
	if l := e.armed; l != nil {
		// Every control: kill the queued chain link, reclaim the
		// control record.
		e.armed = nil
		e.flags |= wfDead // closure may observe this before the gen bump
		s.cancelQueued(l)
		s.recycle(e)
		return
	}
	s.cancelQueued(e)
}

// cancelQueued cancels an event in whatever dispatch state it is in:
// parked in the wheel (unlink and reclaim now), pulled into the due
// buffer (flag dead; the dispatch scan reclaims it), or currently
// firing (flag dead; runEvent reclaims it after fn returns).
func (s *Scheduler) cancelQueued(e *wevent) {
	switch {
	case e.flags&wfLinked != 0:
		s.unlink(e)
		s.live--
		s.recycle(e)
	case e.flags&wfDue != 0:
		e.flags |= wfDead
		s.live--
	default:
		e.flags |= wfDead
	}
}

// pullSlot drains level-0 slot (all events share at == s.now) into the
// due buffer in seq order.
func (s *Scheduler) pullSlot(slot int) {
	l := &s.slots[0][slot]
	for e := l.head; e != nil; {
		n := e.next
		e.prev, e.next = nil, nil
		e.flags = e.flags&^wfLinked | wfDue
		s.due = append(s.due, e)
		e = n
	}
	l.head, l.tail = nil, nil
	s.occupied[0] &^= 1 << uint(slot)
	if len(s.due)-s.dueIdx > 1 {
		slices.SortFunc(s.due[s.dueIdx:], func(a, b *wevent) int {
			switch {
			case a.seq < b.seq:
				return -1
			case a.seq > b.seq:
				return 1
			}
			return 0
		})
	}
}

// cascade empties an upper-level slot whose span the clock has reached;
// every event re-inserts at a strictly lower level.
func (s *Scheduler) cascade(level, slot int) {
	l := &s.slots[level][slot]
	head := l.head
	l.head, l.tail = nil, nil
	s.occupied[level] &^= 1 << uint(slot)
	for e := head; e != nil; {
		n := e.next
		e.prev, e.next = nil, nil
		e.flags &^= wfLinked
		s.insert(e)
		e = n
	}
}

// nextDue advances the wheel to the next occupied instant ≤ limit,
// pulling that instant's events into the due buffer, and reports
// whether it found one. Upper-level slots cascade as virtual time
// reaches their span — before any level-0 instant at the same time
// fires, so same-instant events always merge into one seq-sorted
// batch. When nothing is due by limit, the clock advances to limit if
// advance is set (safe: every occupied slot's span then starts after
// limit).
func (s *Scheduler) nextDue(limit time.Duration, advance bool) bool {
	for {
		now := uint64(s.now)

		// Earliest exact instant on the level-0 wheel, if any.
		cand := time.Duration(-1)
		if bm := s.occupied[0]; bm != 0 {
			pos := int(now & wheelMask)
			d := bits.TrailingZeros64(bits.RotateLeft64(bm, -pos))
			cand = s.now + time.Duration(d)
		}

		// Earliest upper-level slot boundary: events there must drop a
		// level before they can fire.
		casLevel := -1
		var casStart time.Duration
		for k := 1; k < wheelLevels; k++ {
			bm := s.occupied[k]
			if bm == 0 {
				continue
			}
			shift := uint(k) * wheelBits
			pos := int((now >> shift) & wheelMask)
			// Distance 0 is valid: once the clock lands on an occupied
			// slot's span start (common when several levels share one
			// boundary), that slot cascades immediately. Inserts never
			// target the current position (the bump rule keeps them
			// strictly ahead), so a cascaded slot stays empty and the
			// loop always descends.
			d := bits.TrailingZeros64(bits.RotateLeft64(bm, -pos))
			start := time.Duration(((now >> shift) + uint64(d)) << shift)
			if casLevel < 0 || start < casStart {
				casLevel, casStart = k, start
			}
		}

		// Strict <: on a tie the upper slot may hold same-instant events
		// with smaller seq, so it must cascade into the batch first.
		if cand >= 0 && (casLevel < 0 || cand < casStart) {
			if cand > limit {
				break
			}
			s.now = cand
			s.pullSlot(int(uint64(cand) & wheelMask))
			return true
		}
		if casLevel >= 0 {
			if casStart > limit {
				break
			}
			if casStart > s.now {
				s.now = casStart
			}
			s.cascade(casLevel, int((uint64(casStart)>>(uint(casLevel)*wheelBits))&wheelMask))
			continue
		}
		break // nothing queued anywhere
	}
	if advance && limit > s.now {
		s.now = limit
	}
	return false
}

// popDue returns the next live event at or before limit, advancing the
// clock, or nil.
func (s *Scheduler) popDue(limit time.Duration, advance bool) *wevent {
	for {
		for s.dueIdx < len(s.due) {
			e := s.due[s.dueIdx]
			s.due[s.dueIdx] = nil
			s.dueIdx++
			e.flags &^= wfDue
			if e.flags&wfDead != 0 {
				s.recycle(e)
				continue
			}
			return e
		}
		if len(s.due) > 0 {
			s.due = s.due[:0]
			s.dueIdx = 0
		}
		if !s.nextDue(limit, advance) {
			return nil
		}
	}
}

// runEvent dispatches one popped event and reclaims its record unless
// it re-queued itself (an Every chain link).
func (s *Scheduler) runEvent(e *wevent) {
	s.live--
	if e.fn == nil {
		arg := e.arg
		s.recycle(e)
		if h := s.OnIndexed; h != nil {
			h(arg)
		}
		return
	}
	e.fn()
	if e.flags&wfLinked == 0 {
		s.recycle(e)
	}
}

// Step runs the single next event, if any, advancing virtual time to it.
// It reports whether an event ran.
func (s *Scheduler) Step() bool {
	e := s.popDue(maxDuration, false)
	if e == nil {
		return false
	}
	s.runEvent(e)
	return true
}

// RunUntil runs events in order until the queue is empty or the next
// event is later than t, then advances time to exactly t.
func (s *Scheduler) RunUntil(t time.Duration) {
	for {
		e := s.popDue(t, true)
		if e == nil {
			return
		}
		s.runEvent(e)
	}
}

// Run drains the event queue completely. Use RunUntil for simulations
// with self-perpetuating periodic events.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// Pending reports the number of live queued events.
func (s *Scheduler) Pending() int { return s.live }

// storeCap reports the event-record capacity ever allocated; storeFree
// walks the free list. Together they let tests assert that cancellation
// actually reclaims records (live + free == cap, with free growing on
// cancel) instead of pinning them until their deadline.
func (s *Scheduler) storeCap() int { return s.slabs * eventSlab }

func (s *Scheduler) storeFree() int {
	n := 0
	for e := s.free; e != nil; e = e.next {
		n++
	}
	return n
}
