// Package simnet provides the two simulation substrates every dLTE
// experiment runs on:
//
//   - Scheduler: a single-threaded virtual-time discrete-event engine
//     used by the radio/PHY simulations (airtime, contention, HARQ),
//     where wall-clock time is irrelevant and determinism is mandatory.
//
//   - Network: an in-memory packet/stream network with per-link latency,
//     bandwidth, loss, and failure injection, exposing net.Conn-style
//     endpoints so the real protocol stacks (NAS, S1AP, GTP, X2,
//     registry, transport) run unmodified over simulated WANs and over
//     real sockets.
package simnet

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback inside a Scheduler run.
type Event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	dead bool
	idx  int
	// armed is the currently queued link of an Every chain; Cancel on
	// the chain's control event kills it so the heap does not
	// accumulate dead periodic events.
	armed *Event
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e == nil {
		return
	}
	e.dead = true
	if e.armed != nil {
		e.armed.dead = true
		e.armed = nil
	}
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x interface{}) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Scheduler is a deterministic virtual-time event loop. It is not safe
// for concurrent use: all events run on the caller's goroutine, in
// timestamp order with FIFO tie-breaking.
type Scheduler struct {
	now  time.Duration
	seq  uint64
	heap eventHeap
}

// NewScheduler returns a Scheduler at virtual time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{heap: make(eventHeap, 0, 64)}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// At schedules fn to run at virtual time t. Scheduling in the past runs
// the event at the current time (it will still fire after all events
// already due). The returned Event may be used to cancel.
func (s *Scheduler) At(t time.Duration, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e := &Event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.heap, e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Every schedules fn to run at t, t+period, t+2·period, … until the
// returned Event is canceled.
func (s *Scheduler) Every(start, period time.Duration, fn func()) *Event {
	// One link Event and one closure serve the whole chain: each firing
	// requeues the same (already popped) link instead of allocating a
	// fresh event and closure per period — the dominant allocation in
	// long PHY simulations. Cancel marks both the control struct and the
	// link dead, so Pending stays accurate and Step skips the corpse.
	ctl := &Event{}
	link := &Event{idx: -1}
	next := start
	link.fn = func() {
		if ctl.dead {
			return
		}
		fn()
		if ctl.dead {
			return // fn canceled the chain; do not re-arm
		}
		next += period
		s.requeue(link, next)
	}
	ctl.armed = link
	s.requeue(link, next)
	return ctl
}

// requeue schedules an already-popped event to fire again at t, reusing
// its allocation. Scheduling in the past runs it at the current time.
func (s *Scheduler) requeue(e *Event, t time.Duration) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e.at = t
	e.seq = s.seq
	heap.Push(&s.heap, e)
}

// Step runs the single next event, if any, advancing virtual time to it.
// It reports whether an event ran.
func (s *Scheduler) Step() bool {
	for s.heap.Len() > 0 {
		e := heap.Pop(&s.heap).(*Event)
		if e.dead {
			continue
		}
		s.now = e.at
		e.fn()
		return true
	}
	return false
}

// RunUntil runs events in order until the queue is empty or the next
// event is later than t, then advances time to exactly t.
func (s *Scheduler) RunUntil(t time.Duration) {
	for s.heap.Len() > 0 {
		e := s.heap[0]
		if e.dead {
			heap.Pop(&s.heap)
			continue
		}
		if e.at > t {
			break
		}
		heap.Pop(&s.heap)
		s.now = e.at
		e.fn()
	}
	if t > s.now {
		s.now = t
	}
}

// Run drains the event queue completely. Use RunUntil for simulations
// with self-perpetuating periodic events.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// Pending reports the number of live queued events.
func (s *Scheduler) Pending() int {
	n := 0
	for _, e := range s.heap {
		if !e.dead {
			n++
		}
	}
	return n
}
