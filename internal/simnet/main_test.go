package simnet

import (
	"testing"

	"dlte/internal/leaktest"
)

// TestMain audits the package for leaked goroutines: every world a
// test builds must tear back down to the starting population (the
// point of run-to-completion dispatch is that conns cost no standing
// goroutines, so a leak here is a correctness bug, not noise).
func TestMain(m *testing.M) { leaktest.Main(m) }
