package simnet

import (
	"fmt"
	"net"
	"testing"
	"time"
)

// The differential harness: the same scripted traffic runs through two
// identically-seeded virtual worlds, once received by a run-to-
// completion handler and once by the legacy blocking-read shim. The
// observable contract of the dispatch conversion is that the execution
// model is invisible: every delivery must surface the same bytes at
// the same virtual instant in the same order in both worlds.

// delivery is one observed receive event: what arrived and the virtual
// instant the receiver saw it.
type delivery struct {
	at   time.Duration
	data string
	eof  bool
}

func (d delivery) String() string {
	if d.eof {
		return fmt.Sprintf("[%v EOF]", d.at)
	}
	return fmt.Sprintf("[%v %q]", d.at, d.data)
}

// diffWorld builds a fresh virtual two-host world and returns the
// network plus a connected stream pair (client conn on "a", accepted
// conn on "b").
func diffWorld(t *testing.T, link Link) (*Network, *Conn, *Conn) {
	t.Helper()
	n := NewVirtualNetwork(link, 7)
	t.Cleanup(n.Close)
	a := n.MustAddHost("a")
	b := n.MustAddHost("b")
	l, err := b.Listen(9000)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan *Conn, 1)
	clk := n.Clock()
	clk.Go(func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c.(*Conn)
	})
	cc, err := a.Dial("b:9000")
	if err != nil {
		t.Fatal(err)
	}
	// The test goroutine holds the clock's creator slot, so any plain
	// channel wait must release it or virtual time stalls.
	clk.Block()
	sc := <-accepted
	clk.Unblock()
	return n, cc.(*Conn), sc
}

// runStreamScript plays a fixed write schedule from the sender side:
// bursts of varied sizes, same-instant back-to-back writes, virtual
// gaps between bursts, then a close. The schedule exercises delivery
// ordering within one instant and across instants.
func runStreamScript(clk Clock, c *Conn) {
	for round := 0; round < 5; round++ {
		for j := 0; j < 3; j++ {
			msg := fmt.Sprintf("r%d-m%d:%s", round, j, "xxxxxxxxxx"[:round*2+j%3])
			c.Write([]byte(msg))
		}
		clk.Sleep(time.Duration(round+1) * 3 * time.Millisecond)
	}
	c.Close()
}

// TestDispatchDifferentialStream runs the stream script into a handler
// receiver and into a blocking-read receiver in separate same-seed
// worlds and requires byte- and timestamp-identical delivery traces.
func TestDispatchDifferentialStream(t *testing.T) {
	link := Link{Latency: 2 * time.Millisecond, Jitter: time.Millisecond}

	// Handler world.
	var handlerTrace []delivery
	{
		n, cc, sc := diffWorld(t, link)
		clk := n.Clock().(*VirtualClock)
		done := make(chan struct{})
		sc.OnDeliver(func(data []byte) {
			handlerTrace = append(handlerTrace, delivery{at: clk.nowDur(), data: string(data)})
		}, func() {
			handlerTrace = append(handlerTrace, delivery{at: clk.nowDur(), eof: true})
			close(done)
		})
		clk.Go(func() { runStreamScript(clk, cc) })
		clk.Block()
		<-done
		clk.Unblock()
	}

	// Legacy world: a clock-registered goroutine blocks in Read.
	var legacyTrace []delivery
	{
		n, cc, sc := diffWorld(t, link)
		clk := n.Clock().(*VirtualClock)
		done := make(chan struct{})
		clk.Go(func() {
			buf := make([]byte, 4096)
			for {
				nr, err := sc.Read(buf)
				if nr > 0 {
					legacyTrace = append(legacyTrace, delivery{at: clk.nowDur(), data: string(buf[:nr])})
				}
				if err != nil {
					legacyTrace = append(legacyTrace, delivery{at: clk.nowDur(), eof: true})
					close(done)
					return
				}
			}
		})
		clk.Go(func() { runStreamScript(clk, cc) })
		clk.Block()
		<-done
		clk.Unblock()
	}

	compareTraces(t, "stream", handlerTrace, legacyTrace)
}

// TestDispatchDifferentialPacket does the same for datagram sockets:
// SetHandler against a blocking ReadFrom loop, including a lossy,
// jittered link (same seed, so both worlds drop the same packets).
func TestDispatchDifferentialPacket(t *testing.T) {
	link := Link{Latency: 2 * time.Millisecond, Jitter: time.Millisecond, Loss: 0.2}
	const packets = 40

	script := func(clk Clock, pc *PacketConn) {
		for i := 0; i < packets; i++ {
			pc.WriteToHost([]byte(fmt.Sprintf("pkt-%02d", i)), "b", 9001)
			if i%5 == 4 {
				clk.Sleep(2 * time.Millisecond)
			}
		}
		// The trailing fence is past every possible jittered delivery.
		clk.Sleep(50 * time.Millisecond)
	}

	build := func(t *testing.T) (*Network, *VirtualClock, *PacketConn, *PacketConn) {
		n := NewVirtualNetwork(link, 7)
		t.Cleanup(n.Close)
		a := n.MustAddHost("a")
		b := n.MustAddHost("b")
		tx, err := a.ListenPacket(9001)
		if err != nil {
			t.Fatal(err)
		}
		rx, err := b.ListenPacket(9001)
		if err != nil {
			t.Fatal(err)
		}
		return n, n.Clock().(*VirtualClock), tx, rx
	}

	var handlerTrace []delivery
	{
		_, clk, tx, rx := build(t)
		rx.SetHandler(func(data []byte, from net.Addr) {
			handlerTrace = append(handlerTrace, delivery{at: clk.nowDur(), data: string(data)})
		})
		done := make(chan struct{})
		clk.Go(func() { script(clk, tx); close(done) })
		clk.Block()
		<-done
		clk.Unblock()
	}

	var legacyTrace []delivery
	{
		_, clk, tx, rx := build(t)
		stop := make(chan struct{})
		drained := make(chan struct{})
		clk.Go(func() {
			defer close(drained)
			buf := make([]byte, 4096)
			for {
				rx.SetReadDeadline(clk.Now().Add(5 * time.Millisecond))
				nr, _, err := rx.ReadFrom(buf)
				if nr > 0 {
					legacyTrace = append(legacyTrace, delivery{at: clk.nowDur(), data: string(buf[:nr])})
				}
				if err != nil {
					select {
					case <-stop:
						return
					default:
					}
				}
			}
		})
		done := make(chan struct{})
		clk.Go(func() { script(clk, tx); close(done) })
		clk.Block()
		<-done
		clk.Unblock()
		close(stop)
		clk.Block()
		<-drained
		clk.Unblock()
	}

	compareTraces(t, "packet", handlerTrace, legacyTrace)
}

func compareTraces(t *testing.T, kind string, handler, legacy []delivery) {
	t.Helper()
	if len(handler) == 0 {
		t.Fatalf("%s: handler trace empty", kind)
	}
	n := len(handler)
	if len(legacy) != n {
		t.Errorf("%s: handler saw %d deliveries, legacy saw %d", kind, n, len(legacy))
		if len(legacy) < n {
			n = len(legacy)
		}
	}
	for i := 0; i < n; i++ {
		if handler[i] != legacy[i] {
			t.Fatalf("%s: delivery %d diverges:\n  handler %v\n  legacy  %v", kind, i, handler[i], legacy[i])
		}
	}
	if t.Failed() {
		t.Fatalf("%s traces:\nhandler %v\nlegacy  %v", kind, handler, legacy)
	}
}
