package simnet

// The pre-wheel container/heap scheduler, kept verbatim (renamed) as a
// build-internal reference implementation: the differential property
// test drives it and the timing wheel with identical workloads and
// asserts identical firing order, and the scheduler benchmarks price
// the wheel against it. Test-only — it does not ship in the package.

import (
	"container/heap"
	"time"
)

type refEvent struct {
	at    time.Duration
	seq   uint64
	fn    func()
	dead  bool
	idx   int
	armed *refEvent
}

func (e *refEvent) Cancel() {
	if e == nil {
		return
	}
	e.dead = true
	if e.armed != nil {
		e.armed.dead = true
		e.armed = nil
	}
}

type refEventHeap []*refEvent

func (h refEventHeap) Len() int { return len(h) }
func (h refEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refEventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *refEventHeap) Push(x interface{}) {
	e := x.(*refEvent)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *refEventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

type refScheduler struct {
	now  time.Duration
	seq  uint64
	heap refEventHeap
}

func newRefScheduler() *refScheduler {
	return &refScheduler{heap: make(refEventHeap, 0, 64)}
}

func (s *refScheduler) Now() time.Duration { return s.now }

func (s *refScheduler) At(t time.Duration, fn func()) *refEvent {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e := &refEvent{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.heap, e)
	return e
}

func (s *refScheduler) After(d time.Duration, fn func()) *refEvent {
	return s.At(s.now+d, fn)
}

func (s *refScheduler) Every(start, period time.Duration, fn func()) *refEvent {
	ctl := &refEvent{}
	link := &refEvent{idx: -1}
	next := start
	link.fn = func() {
		if ctl.dead {
			return
		}
		fn()
		if ctl.dead {
			return
		}
		next += period
		s.requeue(link, next)
	}
	ctl.armed = link
	s.requeue(link, next)
	return ctl
}

func (s *refScheduler) requeue(e *refEvent, t time.Duration) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e.at = t
	e.seq = s.seq
	heap.Push(&s.heap, e)
}

func (s *refScheduler) Step() bool {
	for s.heap.Len() > 0 {
		e := heap.Pop(&s.heap).(*refEvent)
		if e.dead {
			continue
		}
		s.now = e.at
		e.fn()
		return true
	}
	return false
}

func (s *refScheduler) RunUntil(t time.Duration) {
	for s.heap.Len() > 0 {
		e := s.heap[0]
		if e.dead {
			heap.Pop(&s.heap)
			continue
		}
		if e.at > t {
			break
		}
		heap.Pop(&s.heap)
		s.now = e.at
		e.fn()
	}
	if t > s.now {
		s.now = t
	}
}

func (s *refScheduler) Run() {
	for s.Step() {
	}
}

func (s *refScheduler) Pending() int {
	n := 0
	for _, e := range s.heap {
		if !e.dead {
			n++
		}
	}
	return n
}
