package simnet

import (
	"sync"
	"testing"
	"time"
)

// clockConformance runs the Clock-contract checks shared by both
// implementations. Durations are kept small so the wall-clock variant
// stays fast; assertions use one-sided bounds (at least d elapsed) so
// wall scheduling slop cannot flake them.
func clockConformance(t *testing.T, clk Clock) {
	t.Helper()

	// Sleep advances Now by at least d.
	start := clk.Now()
	clk.Sleep(10 * time.Millisecond)
	if got := clk.Since(start); got < 10*time.Millisecond {
		t.Errorf("Sleep(10ms) advanced only %v", got)
	}

	// Until/Since are consistent around Now.
	future := clk.Now().Add(time.Second)
	if u := clk.Until(future); u <= 0 || u > time.Second {
		t.Errorf("Until(+1s) = %v", u)
	}

	// NewTimer fires once, roughly on time, and a second receive would
	// block (buffered chan of one send).
	start = clk.Now()
	tm := clk.NewTimer(15 * time.Millisecond)
	clk.Block()
	at := <-tm.C
	clk.Unblock()
	if at.Sub(start) < 15*time.Millisecond {
		t.Errorf("timer fired early: %v", at.Sub(start))
	}
	if tm.Stop() {
		t.Error("Stop after fire reported true")
	}

	// Stop before fire prevents delivery.
	tm2 := clk.NewTimer(time.Hour)
	if !tm2.Stop() {
		t.Error("Stop before fire reported false")
	}

	// After is a one-shot convenience for NewTimer.
	start = clk.Now()
	clk.Block()
	<-clk.After(5 * time.Millisecond)
	clk.Unblock()
	if got := clk.Since(start); got < 5*time.Millisecond {
		t.Errorf("After(5ms) returned after only %v", got)
	}

	// Ticker fires repeatedly with at least the period between ticks.
	tk := clk.NewTicker(5 * time.Millisecond)
	start = clk.Now()
	for i := 0; i < 3; i++ {
		clk.Block()
		<-tk.C
		clk.Unblock()
	}
	tk.Stop()
	if got := clk.Since(start); got < 15*time.Millisecond {
		t.Errorf("3 ticks of 5ms took only %v", got)
	}

	// Go runs the function; Block/Unblock bracket foreign waits.
	done := make(chan struct{})
	clk.Go(func() {
		clk.Sleep(time.Millisecond)
		close(done)
	})
	clk.Block()
	<-done
	clk.Unblock()

	// Timer order: two timers armed together fire earliest-first.
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	wg.Add(2)
	arm := func(id int, d time.Duration) {
		clk.Go(func() {
			defer wg.Done()
			clk.Sleep(d)
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		})
	}
	arm(2, 40*time.Millisecond)
	arm(1, 20*time.Millisecond)
	clk.Block()
	wg.Wait()
	clk.Unblock()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("wake order = %v, want [1 2]", order)
	}
}

func TestWallClockConformance(t *testing.T) {
	clockConformance(t, Wall)
}

func TestVirtualClockConformance(t *testing.T) {
	clk := NewVirtual()
	defer clk.Close()
	clockConformance(t, clk)
}

func TestVirtualClockExactness(t *testing.T) {
	// Virtual time is exact, not approximate: a sleep advances the
	// clock by precisely its duration, regardless of wall time.
	clk := NewVirtual()
	defer clk.Close()
	start := clk.Now()
	clk.Sleep(3 * time.Hour) // costs microseconds of wall time
	if got := clk.Since(start); got != 3*time.Hour {
		t.Fatalf("Sleep(3h) advanced %v", got)
	}
}

func TestVirtualClockDeterministicTimeline(t *testing.T) {
	// Same program, two runs: identical sequence of fire instants.
	run := func() []time.Duration {
		clk := NewVirtual()
		defer clk.Close()
		epoch := clk.Now()
		var mu sync.Mutex
		var log []time.Duration
		var wg sync.WaitGroup
		for _, d := range []time.Duration{70, 10, 40, 10, 99} {
			d := d * time.Millisecond
			wg.Add(1)
			clk.Go(func() {
				defer wg.Done()
				clk.Sleep(d)
				mu.Lock()
				log = append(log, clk.Since(epoch))
				mu.Unlock()
			})
		}
		clk.Block()
		wg.Wait()
		clk.Unblock()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timelines diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestVirtualClockCloseReleasesSleepers(t *testing.T) {
	clk := NewVirtual()
	released := make(chan struct{})
	clk.Go(func() {
		clk.Sleep(24 * time.Hour)
		close(released)
	})
	// Give the sleeper a moment to park, then close.
	time.Sleep(10 * time.Millisecond)
	clk.Close()
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("Close did not release a parked sleeper")
	}
}

func TestVirtualClockStopAfterClose(t *testing.T) {
	// Regression: Timer.Stop after Close used to call heap.Remove with
	// a stale index into the already-cleared heap and panic.
	clk := NewVirtual()
	tm := clk.NewTimer(time.Hour)
	tk := clk.NewTicker(time.Hour)
	clk.Close()
	tm.Stop()
	tk.Stop()
	clk.Close() // double Close is a no-op
	// Clock calls after Close stay safe.
	clk.Sleep(time.Hour)
	t2 := clk.NewTimer(time.Hour)
	t2.Stop()
}

func TestClockOf(t *testing.T) {
	n := NewVirtualNetwork(Link{}, 1)
	defer n.Close()
	h := n.MustAddHost("a")
	pc, err := h.ListenPacket(1)
	if err != nil {
		t.Fatal(err)
	}
	if ClockOf(pc) != n.Clock() {
		t.Error("ClockOf(PacketConn) did not inherit the network clock")
	}
	if ClockOf(42) != Wall {
		t.Error("ClockOf(non-clocked) != Wall")
	}
	if ClockOf(nil) != Wall {
		t.Error("ClockOf(nil) != Wall")
	}
}
