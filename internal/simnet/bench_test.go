package simnet

import (
	"io"
	"net"
	"testing"
	"time"
)

// benchPair builds a zero-latency wall-clock network with a connected
// stream pair: writes are deliverable immediately, so a synchronous
// write-then-read ping exercises the full hot path without parking.
func benchPair(b *testing.B) (*Conn, *Conn) {
	b.Helper()
	n := New(Link{}, 1)
	b.Cleanup(n.Close)
	a := n.MustAddHost("a")
	z := n.MustAddHost("z")
	l, err := z.Listen(80)
	if err != nil {
		b.Fatal(err)
	}
	accepted := make(chan *Conn, 1)
	go func() {
		c, aerr := l.Accept()
		if aerr != nil {
			return
		}
		accepted <- c.(*Conn)
	}()
	c, err := a.Dial("z:80")
	if err != nil {
		b.Fatal(err)
	}
	return c.(*Conn), <-accepted
}

// BenchmarkSimnetStreamThroughput measures the stream delivery hot path
// (Conn.Write → queue → Conn.Read) with MTU-sized payloads. The
// payload pool should hold steady-state allocations near zero.
func BenchmarkSimnetStreamThroughput(b *testing.B) {
	c, peer := benchPair(b)
	defer c.Close()
	defer peer.Close()
	buf := make([]byte, 1200)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(buf); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(peer, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimnetPacketConn measures the datagram hot path
// (PacketConn.WriteTo → inbox → PacketConn.ReadFrom).
func BenchmarkSimnetPacketConn(b *testing.B) {
	n := New(Link{}, 1)
	defer n.Close()
	a := n.MustAddHost("a")
	z := n.MustAddHost("z")
	src, err := a.ListenPacket(9000)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := z.ListenPacket(9001)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1200)
	var to net.Addr = Addr{Host: "z", Port: 9001} // boxed once, like a kept net.Addr
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.WriteTo(payload, to); err != nil {
			b.Fatal(err)
		}
		if _, _, err := dst.ReadFrom(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerEvery measures the periodic-event engine the PHY
// simulations are built on; the reused chain link should keep it
// allocation-free per firing.
func BenchmarkSchedulerEvery(b *testing.B) {
	s := NewScheduler()
	ticks := 0
	s.Every(0, time.Microsecond, func() { ticks++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	if ticks != b.N {
		b.Fatalf("ticks = %d, want %d", ticks, b.N)
	}
}

// schedTimerSizes are the populations BenchmarkSchedulerTimers and its
// reference-heap twin sweep: one op schedules n timers over a fixed
// per-timer density, cancels a third, and drains the rest — the
// schedule+fire+cancel mix of an attach-and-idle world.
var schedTimerSizes = []struct {
	name string
	n    int
}{
	{"1k", 1_000},
	{"100k", 100_000},
	{"1M", 1_000_000},
}

// timerOffset spreads timer j pseudo-randomly over a span of 100ns per
// population member, so the wheel sees realistic slot occupancy rather
// than one timer per instant.
func timerOffset(j, n int) time.Duration {
	return time.Duration(uint64(j)*2654435761%(uint64(n)*100)) + 1
}

// BenchmarkSchedulerTimers prices the hierarchical timing wheel; its
// RefHeap twin below runs the identical workload on the old
// container/heap scheduler. The wheel must win on both ns/op and
// allocs/op (see TestSchedulerWheelAllocsBeatHeap); benchgate pins the
// wheel numbers against BENCH_BASELINE.json.
func BenchmarkSchedulerTimers(b *testing.B) {
	for _, bc := range schedTimerSizes {
		b.Run(bc.name, func(b *testing.B) {
			s := NewScheduler()
			fn := func() {}
			handles := make([]Event, bc.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := s.Now()
				for j := 0; j < bc.n; j++ {
					handles[j] = s.At(base+timerOffset(j, bc.n), fn)
				}
				for j := 0; j < bc.n; j += 3 {
					handles[j].Cancel()
				}
				s.RunUntil(base + time.Duration(bc.n)*100)
			}
		})
	}
}

// BenchmarkSchedulerTimersRefHeap is the comparison baseline; it is
// deliberately not gated (the old implementation only exists for the
// differential test and this price tag).
func BenchmarkSchedulerTimersRefHeap(b *testing.B) {
	for _, bc := range schedTimerSizes {
		b.Run(bc.name, func(b *testing.B) {
			s := newRefScheduler()
			fn := func() {}
			handles := make([]*refEvent, bc.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := s.Now()
				for j := 0; j < bc.n; j++ {
					handles[j] = s.At(base+timerOffset(j, bc.n), fn)
				}
				for j := 0; j < bc.n; j += 3 {
					handles[j].Cancel()
				}
				s.RunUntil(base + time.Duration(bc.n)*100)
			}
		})
	}
}

// TestSchedulerWheelAllocsBeatHeap pins the allocation half of the
// wheel-vs-heap acceptance bar: at steady state the slab-recycling
// wheel schedules+cancels+drains an entire population with ~zero
// allocations, where the heap pays one Event per timer.
func TestSchedulerWheelAllocsBeatHeap(t *testing.T) {
	const n = 10_000
	ws := NewScheduler()
	fn := func() {}
	wh := make([]Event, n)
	wheelAvg := testing.AllocsPerRun(5, func() {
		base := ws.Now()
		for j := 0; j < n; j++ {
			wh[j] = ws.At(base+timerOffset(j, n), fn)
		}
		for j := 0; j < n; j += 3 {
			wh[j].Cancel()
		}
		ws.RunUntil(base + time.Duration(n)*100)
	})
	hs := newRefScheduler()
	hh := make([]*refEvent, n)
	heapAvg := testing.AllocsPerRun(5, func() {
		base := hs.Now()
		for j := 0; j < n; j++ {
			hh[j] = hs.At(base+timerOffset(j, n), fn)
		}
		for j := 0; j < n; j += 3 {
			hh[j].Cancel()
		}
		hs.RunUntil(base + time.Duration(n)*100)
	})
	if wheelAvg > float64(n)/100 {
		t.Errorf("wheel workload allocates %.0f objects for %d timers, want ~0", wheelAvg, n)
	}
	if wheelAvg*10 >= heapAvg {
		t.Errorf("wheel allocs %.0f not clearly below heap allocs %.0f", wheelAvg, heapAvg)
	}
}

// TestSchedulerEveryNoAllocPerFiring pins the Every-chain optimization:
// a firing requeues the same link event, so steady state allocates
// nothing.
func TestSchedulerEveryNoAllocPerFiring(t *testing.T) {
	s := NewScheduler()
	s.Every(0, time.Microsecond, func() {})
	// Warm the heap so append growth does not count.
	for i := 0; i < 128; i++ {
		s.Step()
	}
	if avg := testing.AllocsPerRun(1000, func() { s.Step() }); avg > 0 {
		t.Errorf("Every firing allocates %.2f objects/op, want 0", avg)
	}
}

// TestPacketRoundTripNoAllocSteadyState pins the payload pool on the
// datagram path: after warm-up, a WriteTo/ReadFrom pair recycles its
// buffer instead of allocating.
func TestPacketRoundTripNoAllocSteadyState(t *testing.T) {
	n := New(Link{}, 1)
	defer n.Close()
	a := n.MustAddHost("a")
	z := n.MustAddHost("z")
	src, err := a.ListenPacket(9000)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := z.ListenPacket(9001)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1200)
	var to net.Addr = Addr{Host: "z", Port: 9001}
	roundTrip := func() {
		if _, werr := src.WriteTo(payload, to); werr != nil {
			t.Fatal(werr)
		}
		if _, _, rerr := dst.ReadFrom(payload); rerr != nil {
			t.Fatal(rerr)
		}
	}
	for i := 0; i < 64; i++ {
		roundTrip() // warm the pool
	}
	// The wall clock's time.Now and the rng draw stay; the per-packet
	// payload copy must not. Allow a small epsilon for runtime noise.
	if avg := testing.AllocsPerRun(500, roundTrip); avg > 0.5 {
		t.Errorf("datagram round trip allocates %.2f objects/op, want ~0", avg)
	}
}

// TestPayloadPool exercises the pool helpers directly: class-sized
// buffers recycle, oversized ones fall back to the GC, and subslices
// are never recycled by accident.
func TestPayloadPool(t *testing.T) {
	b := payloadGet(100)
	if len(b) != 100 || cap(b) != payloadClassBytes {
		t.Fatalf("payloadGet(100): len %d cap %d", len(b), cap(b))
	}
	payloadPut(b)

	big := payloadGet(payloadClassBytes + 1)
	if len(big) != payloadClassBytes+1 {
		t.Fatalf("oversize get: len %d", len(big))
	}
	payloadPut(big) // must not panic, silently GC'd

	payloadPut(nil)     // no-op
	payloadPut(b[10:])  // subslice: wrong cap, not recycled
	payloadPut(b[:0:0]) // re-sliced to nothing: not recycled
}
