package simnet

import (
	"io"
	"net"
	"testing"
	"time"
)

// benchPair builds a zero-latency wall-clock network with a connected
// stream pair: writes are deliverable immediately, so a synchronous
// write-then-read ping exercises the full hot path without parking.
func benchPair(b *testing.B) (*Conn, *Conn) {
	b.Helper()
	n := New(Link{}, 1)
	b.Cleanup(n.Close)
	a := n.MustAddHost("a")
	z := n.MustAddHost("z")
	l, err := z.Listen(80)
	if err != nil {
		b.Fatal(err)
	}
	accepted := make(chan *Conn, 1)
	go func() {
		c, aerr := l.Accept()
		if aerr != nil {
			return
		}
		accepted <- c.(*Conn)
	}()
	c, err := a.Dial("z:80")
	if err != nil {
		b.Fatal(err)
	}
	return c.(*Conn), <-accepted
}

// BenchmarkSimnetStreamThroughput measures the stream delivery hot path
// (Conn.Write → queue → Conn.Read) with MTU-sized payloads. The
// payload pool should hold steady-state allocations near zero.
func BenchmarkSimnetStreamThroughput(b *testing.B) {
	c, peer := benchPair(b)
	defer c.Close()
	defer peer.Close()
	buf := make([]byte, 1200)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(buf); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(peer, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimnetPacketConn measures the datagram hot path
// (PacketConn.WriteTo → inbox → PacketConn.ReadFrom).
func BenchmarkSimnetPacketConn(b *testing.B) {
	n := New(Link{}, 1)
	defer n.Close()
	a := n.MustAddHost("a")
	z := n.MustAddHost("z")
	src, err := a.ListenPacket(9000)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := z.ListenPacket(9001)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1200)
	var to net.Addr = Addr{Host: "z", Port: 9001} // boxed once, like a kept net.Addr
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.WriteTo(payload, to); err != nil {
			b.Fatal(err)
		}
		if _, _, err := dst.ReadFrom(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerEvery measures the periodic-event engine the PHY
// simulations are built on; the reused chain link should keep it
// allocation-free per firing.
func BenchmarkSchedulerEvery(b *testing.B) {
	s := NewScheduler()
	ticks := 0
	s.Every(0, time.Microsecond, func() { ticks++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	if ticks != b.N {
		b.Fatalf("ticks = %d, want %d", ticks, b.N)
	}
}

// TestSchedulerEveryNoAllocPerFiring pins the Every-chain optimization:
// a firing requeues the same link event, so steady state allocates
// nothing.
func TestSchedulerEveryNoAllocPerFiring(t *testing.T) {
	s := NewScheduler()
	s.Every(0, time.Microsecond, func() {})
	// Warm the heap so append growth does not count.
	for i := 0; i < 128; i++ {
		s.Step()
	}
	if avg := testing.AllocsPerRun(1000, func() { s.Step() }); avg > 0 {
		t.Errorf("Every firing allocates %.2f objects/op, want 0", avg)
	}
}

// TestPacketRoundTripNoAllocSteadyState pins the payload pool on the
// datagram path: after warm-up, a WriteTo/ReadFrom pair recycles its
// buffer instead of allocating.
func TestPacketRoundTripNoAllocSteadyState(t *testing.T) {
	n := New(Link{}, 1)
	defer n.Close()
	a := n.MustAddHost("a")
	z := n.MustAddHost("z")
	src, err := a.ListenPacket(9000)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := z.ListenPacket(9001)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1200)
	var to net.Addr = Addr{Host: "z", Port: 9001}
	roundTrip := func() {
		if _, werr := src.WriteTo(payload, to); werr != nil {
			t.Fatal(werr)
		}
		if _, _, rerr := dst.ReadFrom(payload); rerr != nil {
			t.Fatal(rerr)
		}
	}
	for i := 0; i < 64; i++ {
		roundTrip() // warm the pool
	}
	// The wall clock's time.Now and the rng draw stay; the per-packet
	// payload copy must not. Allow a small epsilon for runtime noise.
	if avg := testing.AllocsPerRun(500, roundTrip); avg > 0.5 {
		t.Errorf("datagram round trip allocates %.2f objects/op, want ~0", avg)
	}
}

// TestPayloadPool exercises the pool helpers directly: class-sized
// buffers recycle, oversized ones fall back to the GC, and subslices
// are never recycled by accident.
func TestPayloadPool(t *testing.T) {
	b := payloadGet(100)
	if len(b) != 100 || cap(b) != payloadClassBytes {
		t.Fatalf("payloadGet(100): len %d cap %d", len(b), cap(b))
	}
	payloadPut(b)

	big := payloadGet(payloadClassBytes + 1)
	if len(big) != payloadClassBytes+1 {
		t.Fatalf("oversize get: len %d", len(big))
	}
	payloadPut(big) // must not panic, silently GC'd

	payloadPut(nil)     // no-op
	payloadPut(b[10:])  // subslice: wrong cap, not recycled
	payloadPut(b[:0:0]) // re-sliced to nothing: not recycled
}
