package simnet

import "time"

// Clock abstracts the passage of time for everything that runs over a
// Network. Two implementations exist:
//
//   - WallClock (the package-level Wall): real time via the time
//     package. The cmd/ binaries and any component running over real
//     sockets use this; it is also the default for Networks created
//     with New, preserving historical behavior.
//
//   - VirtualClock: deterministic discrete-event time. Virtual time
//     stands still while any registered goroutine is runnable and
//     jumps straight to the next timer's expiry when all of them are
//     blocked, so simulated link latencies cost no wall-clock time.
//
// The contract for code running under a Clock:
//
//   - Spawn every goroutine that touches the simulated world with
//     Go, never with a bare `go` statement (a VirtualClock counts
//     runnable goroutines; an uncounted one makes time advance while
//     work is still pending).
//   - Wrap every blocking operation the clock cannot see — a channel
//     select, sync.Cond.Wait, WaitGroup.Wait, mutex acquisition that
//     can stall — in Block/Unblock, and take any timeout channels in
//     that select from NewTimer/After on the same clock.
//   - Derive deadlines from Now on the same clock, never time.Now.
//
// WallClock implements Block/Unblock/Go as no-ops/bare spawns, so
// code written against the contract behaves identically on real time.
type Clock interface {
	// Now reports the current instant on this clock.
	Now() time.Time
	// Since is Now().Sub(t).
	Since(t time.Time) time.Duration
	// Until is t.Sub(Now()).
	Until(t time.Time) time.Duration
	// Sleep blocks the calling goroutine for d of this clock's time.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d
	// has elapsed. Prefer NewTimer when the wait may be abandoned.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a Timer that fires once after d.
	NewTimer(d time.Duration) *Timer
	// NewTicker returns a Ticker that fires every d. d must be > 0.
	NewTicker(d time.Duration) *Ticker
	// Go runs fn on a new goroutine registered with the clock.
	Go(fn func())
	// Block declares that the calling goroutine is about to wait on
	// something the clock cannot observe (a channel, a cond, a
	// WaitGroup). It must be paired with Unblock when the goroutine
	// resumes.
	Block()
	// Unblock declares that the goroutine blocked via Block is
	// runnable again.
	Unblock()
}

// Timer is a clock-agnostic one-shot timer. C delivers the clock's
// time when the timer fires.
type Timer struct {
	C    <-chan time.Time
	stop func() bool
}

// Stop cancels the timer. It reports whether the call prevented the
// timer from firing.
func (t *Timer) Stop() bool {
	if t.stop == nil {
		return false
	}
	return t.stop()
}

// Ticker is a clock-agnostic periodic timer.
type Ticker struct {
	C    <-chan time.Time
	stop func()
}

// Stop turns off the ticker.
func (t *Ticker) Stop() {
	if t.stop != nil {
		t.stop()
	}
}

// Wall is the process-wide wall-clock Clock.
var Wall Clock = wallClock{}

// wallClock adapts the time package to the Clock interface.
type wallClock struct{}

func (wallClock) Now() time.Time                       { return time.Now() }
func (wallClock) Since(t time.Time) time.Duration      { return time.Since(t) }
func (wallClock) Until(t time.Time) time.Duration      { return time.Until(t) }
func (wallClock) Sleep(d time.Duration)                { time.Sleep(d) }
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (wallClock) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, stop: t.Stop}
}

func (wallClock) NewTicker(d time.Duration) *Ticker {
	t := time.NewTicker(d)
	return &Ticker{C: t.C, stop: t.Stop}
}

func (wallClock) Go(fn func()) { go fn() }
func (wallClock) Block()       {}
func (wallClock) Unblock()     {}

// ClockOf returns the Clock governing v — any value exposing a
// `Clock() Clock` method (Network, Host, Conn, PacketConn, Listener,
// ue.BearerConn, …) — or Wall for plain OS-backed values such as
// *net.UDPConn. It lets transport-agnostic code (MST, registry, X2)
// inherit virtual time when running over a simulated network and real
// time when running over real sockets, without new constructor
// parameters.
func ClockOf(v any) Clock {
	if h, ok := v.(interface{ Clock() Clock }); ok {
		if c := h.Clock(); c != nil {
			return c
		}
	}
	return Wall
}
