package simnet

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// VirtualClock is a deterministic discrete-event Clock. It tracks how
// many registered goroutines are runnable ("busy"); when that count
// reaches zero the world is quiescent — everyone is parked in a clock
// wait (Sleep, a Timer in a select, a Block-bracketed channel op) —
// and a background advancer jumps virtual time straight to the next
// timer's expiry and fires it. Simulated latencies therefore cost
// microseconds of wall time instead of their face value, and two runs
// with the same seed see the same virtual timeline.
//
// Delivery barriers close the one race quiescence counting cannot see:
// a packet already handed to a receiver's queue whose receiving
// goroutine has not been rescheduled yet. The sender registers the
// delivery instant as a barrier; the advancer never jumps past the
// earliest barrier until the receiver has swapped it for a real timer
// (holdDelivery) or the barrier's instant has been reached.
//
// The zero value is not usable; call NewVirtual. The goroutine that
// creates the clock is the initial registered goroutine and must be
// the one driving the simulation.
type VirtualClock struct {
	mu   sync.Mutex
	cond *sync.Cond // wakes the advancer; waited on only by it

	base time.Time     // fixed epoch virtual instants are rendered from
	now  time.Duration // virtual time since base

	busy     int // registered goroutines currently runnable
	gen      uint64
	seq      uint64
	timers   waiterHeap
	barriers barrierHeap
	closed   bool

	// disp holds the run-to-completion dispatchers attached to this
	// clock (one per Network with registered handlers; almost always
	// zero or one). The advancer treats their earliest pending
	// delivery as a third event source next to timers and barriers.
	disp []*dispatcher

	live  atomic.Int64  // goroutines spawned via Go that have not returned
	parks atomic.Uint64 // goroutine parks: Sleep, Block, delivery holds
}

// vwaiter is one scheduled wakeup. Exactly one of wake/ch is set:
// wake is a parked goroutine (the advancer transfers the busy slot to
// it before closing the channel); ch is a Timer/Ticker target whose
// receiver, if any, accounts for itself via Block/Unblock.
type vwaiter struct {
	at     time.Duration
	seq    uint64
	idx    int
	wake   chan struct{}
	ch     chan time.Time
	period time.Duration // > 0 re-arms (Ticker)
}

type waiterHeap []*vwaiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *waiterHeap) Push(x interface{}) {
	w := x.(*vwaiter)
	w.idx = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.idx = -1
	*h = old[:n-1]
	return w
}

// vbarrier marks an in-flight delivery the clock may not jump past.
type vbarrier struct {
	at  time.Duration
	idx int
}

type barrierHeap []*vbarrier

func (h barrierHeap) Len() int           { return len(h) }
func (h barrierHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h barrierHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *barrierHeap) Push(x interface{}) {
	b := x.(*vbarrier)
	b.idx = len(*h)
	*h = append(*h, b)
}
func (h *barrierHeap) Pop() interface{} {
	old := *h
	n := len(old)
	b := old[n-1]
	old[n-1] = nil
	b.idx = -1
	*h = old[:n-1]
	return b
}

// virtualEpoch is the fixed origin of every VirtualClock. It is
// deliberately far from the real date so a wall-clock deadline leaking
// into a virtual world is obvious (it lands decades in the future and
// never fires early).
var virtualEpoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// liveClocks counts open VirtualClocks process-wide. The parallel
// experiment harness runs many worlds concurrently, and each world's
// settle loop (settleLocked) must give its own runnable-but-unscheduled
// goroutines a chance to surface before time moves — a chance measured
// in scheduler yields, which foreign worlds' goroutines also consume.
// The settle budget therefore scales with how many worlds are sharing
// the scheduler.
var liveClocks atomic.Int64

// NewVirtual returns a VirtualClock at its epoch with the calling
// goroutine registered as the single runnable driver.
func NewVirtual() *VirtualClock {
	c := &VirtualClock{base: virtualEpoch, busy: 1}
	c.cond = sync.NewCond(&c.mu)
	liveClocks.Add(1)
	go c.advance()
	return c
}

// Close shuts the clock down: the advancer exits and every parked
// sleeper is released (their sleeps end early). Further clock calls
// are safe no-ops; Now keeps returning the final virtual time.
//
// Close then waits (bounded) for goroutines spawned via Go to return,
// so a subsequent world starts on a quiet scheduler — leftover churn
// from a dying world would otherwise perturb the next clock's settle
// loop and with it run-to-run determinism.
func (c *VirtualClock) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	liveClocks.Add(-1)
	for _, w := range c.timers {
		w.idx = -1
		if w.wake != nil {
			close(w.wake)
		}
	}
	for _, b := range c.barriers {
		b.idx = -1
	}
	c.timers = nil
	c.barriers = nil
	c.cond.Broadcast()
	c.mu.Unlock()

	deadline := time.Now().Add(200 * time.Millisecond)
	for i := 0; c.live.Load() > 0 && time.Now().Before(deadline); i++ {
		if i < 100 {
			runtime.Gosched()
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// Now implements Clock. Virtual time only moves while every
// registered goroutine is parked, so between two clock waits a
// goroutine always observes a single consistent instant.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base.Add(c.now)
}

// Since implements Clock.
func (c *VirtualClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// Until implements Clock.
func (c *VirtualClock) Until(t time.Time) time.Duration { return t.Sub(c.Now()) }

// Sleep implements Clock: the goroutine parks and virtual time will
// reach now+d before it runs again.
func (c *VirtualClock) Sleep(d time.Duration) {
	c.mu.Lock()
	if c.closed || d <= 0 {
		c.mu.Unlock()
		runtime.Gosched()
		return
	}
	w := c.pushWaiterLocked(d, nil)
	c.busy--
	c.parks.Add(1)
	if c.busy == 0 {
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	<-w.wake // the advancer transfers our busy slot back before closing
}

// pushWaiterLocked schedules a wakeup d from now. A nil ch makes a
// parked-goroutine waiter (wake channel), otherwise ch is the fire
// target.
func (c *VirtualClock) pushWaiterLocked(d time.Duration, ch chan time.Time) *vwaiter {
	c.seq++
	w := &vwaiter{at: c.now + d, seq: c.seq, ch: ch}
	if ch == nil {
		w.wake = make(chan struct{})
	}
	heap.Push(&c.timers, w)
	return w
}

// NewTimer implements Clock.
func (c *VirtualClock) NewTimer(d time.Duration) *Timer {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return &Timer{C: ch, stop: func() bool { return false }}
	}
	if d <= 0 {
		ch <- c.base.Add(c.now)
		c.mu.Unlock()
		return &Timer{C: ch, stop: func() bool { return false }}
	}
	w := c.pushWaiterLocked(d, ch)
	if c.busy == 0 {
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	return &Timer{C: ch, stop: func() bool { return c.removeWaiter(w) }}
}

// After implements Clock.
func (c *VirtualClock) After(d time.Duration) <-chan time.Time { return c.NewTimer(d).C }

// NewTicker implements Clock.
func (c *VirtualClock) NewTicker(d time.Duration) *Ticker {
	if d <= 0 {
		panic("simnet: non-positive Ticker period")
	}
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return &Ticker{C: ch, stop: func() {}}
	}
	w := c.pushWaiterLocked(d, ch)
	w.period = d
	if c.busy == 0 {
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	return &Ticker{C: ch, stop: func() { c.removeWaiter(w) }}
}

func (c *VirtualClock) removeWaiter(w *vwaiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.idx < 0 {
		return false
	}
	heap.Remove(&c.timers, w.idx)
	return true
}

// Go implements Clock: fn runs registered, so virtual time stands
// still while it is runnable.
func (c *VirtualClock) Go(fn func()) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		go fn()
		return
	}
	c.busy++
	c.gen++
	c.live.Add(1)
	c.mu.Unlock()
	go func() {
		defer func() {
			c.mu.Lock()
			c.busy--
			if c.busy == 0 {
				c.cond.Broadcast()
			}
			c.mu.Unlock()
			c.live.Add(-1)
		}()
		fn()
	}()
}

// Block implements Clock.
func (c *VirtualClock) Block() {
	c.mu.Lock()
	c.busy--
	c.parks.Add(1)
	if c.busy == 0 {
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// Unblock implements Clock.
func (c *VirtualClock) Unblock() {
	c.mu.Lock()
	c.busy++
	c.gen++
	c.mu.Unlock()
}

// addBarrier registers an in-flight delivery due at the given instant.
// It returns nil (no barrier needed) when at is not in the virtual
// future.
func (c *VirtualClock) addBarrier(at time.Time) *vbarrier {
	d := at.Sub(c.base)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || d <= c.now {
		return nil
	}
	b := &vbarrier{at: d}
	heap.Push(&c.barriers, b)
	return b
}

// releaseBarrier drops a barrier whose delivery was consumed or
// abandoned (packet dropped on queue overflow, write aborted).
func (c *VirtualClock) releaseBarrier(b *vbarrier) {
	if b == nil {
		return
	}
	c.mu.Lock()
	if b.idx >= 0 {
		heap.Remove(&c.barriers, b.idx)
		if c.busy == 0 {
			c.cond.Broadcast()
		}
	}
	c.mu.Unlock()
}

// holdDelivery parks the calling goroutine until virtual time reaches
// the delivery instant at, atomically swapping the delivery's barrier
// for a timed waiter so the advancer can neither jump past the
// delivery nor stall on its barrier. A receive on abortC (a read
// deadline on the same clock) ends the hold early.
func (c *VirtualClock) holdDelivery(b *vbarrier, at time.Time, abortC <-chan time.Time) {
	d := at.Sub(c.base)
	c.mu.Lock()
	if b != nil && b.idx >= 0 {
		heap.Remove(&c.barriers, b.idx)
	}
	if c.closed || d <= c.now {
		c.mu.Unlock()
		return
	}
	c.seq++
	w := &vwaiter{at: d, seq: c.seq, wake: make(chan struct{})}
	heap.Push(&c.timers, w)
	c.busy--
	c.parks.Add(1)
	if c.busy == 0 {
		c.cond.Broadcast()
	}
	c.mu.Unlock()

	select {
	case <-w.wake:
		// Fired: the advancer transferred our busy slot back.
	case <-abortC:
		c.mu.Lock()
		if w.idx >= 0 {
			// Not fired yet: reclaim our own busy slot.
			heap.Remove(&c.timers, w.idx)
			c.busy++
			c.gen++
		}
		// Otherwise the waiter fired concurrently and the busy slot
		// was already transferred to us.
		c.mu.Unlock()
	}
}

// Pending reports the number of scheduled wakeups (timers and
// tickers). Intended for tests.
func (c *VirtualClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// attachDispatcher registers a Network's run-to-completion dispatcher
// as an event source for the advancer.
func (c *VirtualClock) attachDispatcher(d *dispatcher) {
	c.mu.Lock()
	c.disp = append(c.disp, d)
	c.mu.Unlock()
}

// nowDur returns the current virtual time as a duration since the
// clock's base — the representation delivery events are keyed on.
func (c *VirtualClock) nowDur() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Poke tells the clock that the calling dispatch handler made a
// registered goroutine runnable through something the clock cannot see
// (an application channel send, a cond broadcast), so the advancer
// must run a settle round before moving time again. See Poke (the
// package function) for the handler-facing contract.
func (c *VirtualClock) Poke() {
	c.mu.Lock()
	c.gen++
	for _, d := range c.disp {
		d.woke.Store(true)
	}
	c.mu.Unlock()
}

// stabilizeRounds bounds the advancer's settle loop: how many yield
// rounds of unchanged state it requires before trusting that no woken
// goroutine is still on a run queue waiting to declare itself busy.
// This is the single-world budget for ordinary steps; settleRounds
// scales it by the number of concurrently-open clocks, because each
// runtime.Gosched may run a foreign world's goroutine instead of one
// of ours.
const stabilizeRounds = 12

// wakeStabilizeRounds is the settle budget after a step that carried a
// wake signal the clock cannot track — a dispatch handler that woke a
// goroutine through a plain channel send (Poke), or a legacy enqueue
// made from inside a dispatch batch. Unlike a barrier-protected legacy
// delivery, such a wake is only caught if the woken goroutine gets
// scheduled within the settle window, so the window must absorb
// ambient scheduler load (GC assists, a dying world's stragglers).
// The full budget is burned only when the signal turns out to have
// woken nobody — any actual wake exits the loop early via the
// busy/gen check — and wake steps are a small fraction of advances,
// so the deep budget does not tax the common quiet step.
const wakeStabilizeRounds = 64

// maxStabilizeRounds / maxWakeStabilizeRounds cap the scaled settle
// budgets. Yields under load execute other worlds' useful work, so a
// generous cap costs little wall time; it only bounds advancer latency
// on an otherwise idle scheduler.
const (
	maxStabilizeRounds     = 384
	maxWakeStabilizeRounds = 1024
)

// settleRounds is the current settle budget: the per-world base
// (deeper when the last step carried an untracked wake signal) per
// live VirtualClock sharing the scheduler.
func settleRounds(deep bool) int {
	n := int(liveClocks.Load())
	if n < 1 {
		n = 1
	}
	base, cap := stabilizeRounds, maxStabilizeRounds
	if deep {
		base, cap = wakeStabilizeRounds, maxWakeStabilizeRounds
	}
	r := base * n
	if r > cap {
		r = cap
	}
	return r
}

// stepKind classifies what one advancer step did, which decides
// whether the next step must settle the Go scheduler first.
type stepKind int

const (
	stepIdle     stepKind = iota // nothing to step
	stepQuiet                    // moved time only; nobody became runnable
	stepWake                     // fired a timer: someone may be runnable
	stepDispatch                 // a dispatch batch is due at c.now
)

// advance is the clock's background engine. Whenever the world is
// quiescent (busy == 0) and wakeups, barriers, or dispatch deliveries
// are scheduled, it settles the Go scheduler, then moves virtual time
// one step: to the earliest barrier (making that delivery current so
// its receiver can run), the earliest timer (firing it), or the
// earliest dispatch batch (running its handlers inline).
//
// Settle rounds are the expensive part of a step, and they exist only
// to catch goroutines that became runnable outside the clock's
// bookkeeping. Steps that provably woke nobody — barrier advances, and
// dispatch batches whose handlers only wrote handler-mode conns — skip
// the settle before the next step; that skip is what makes a
// handler-to-handler hop a plain scheduler event instead of a
// park/settle/unpark round.
func (c *VirtualClock) advance() {
	c.mu.Lock()
	defer c.mu.Unlock()
	needSettle := true
	deepSettle := false
	for {
		if c.closed {
			// Deliveries scheduled during teardown (every conn close
			// becomes a dispatcher event) would otherwise strand, and
			// with them any goroutine waiting on a handler to see EOF;
			// run them so Close's drain finishes promptly.
			disp := append([]*dispatcher(nil), c.disp...)
			c.mu.Unlock()
			for _, d := range disp {
				d.flush()
			}
			c.mu.Lock()
			return
		}
		if c.busy > 0 || !c.pendingWorkLocked() {
			c.cond.Wait()
			needSettle, deepSettle = true, false
			continue
		}
		if needSettle && !c.settleLocked(deepSettle) {
			deepSettle = false // whoever woke will re-park through the clock
			continue           // someone became runnable; re-evaluate
		}
		kind, d := c.stepLocked()
		switch kind {
		case stepIdle:
			needSettle, deepSettle = true, false
		case stepQuiet:
			needSettle = false
		case stepWake:
			needSettle, deepSettle = true, false
		case stepDispatch:
			at := c.now
			gen := c.gen
			c.mu.Unlock()
			woke := d.runAt(at)
			c.mu.Lock()
			needSettle = woke || c.gen != gen || c.busy > 0
			// A woke flag or gen bump is an untracked wake: the woken
			// goroutine may sit on a run queue for a while before it
			// can declare itself busy, so the next settle digs deeper.
			deepSettle = woke || c.gen != gen
		}
	}
}

// pendingWorkLocked reports whether any event source has work.
func (c *VirtualClock) pendingWorkLocked() bool {
	if len(c.timers) > 0 || len(c.barriers) > 0 {
		return true
	}
	for _, d := range c.disp {
		if d.pending.Load() > 0 {
			return true
		}
	}
	return false
}

// settleLocked gives runnable-but-unscheduled goroutines (a receiver
// whose channel was just filled, a select whose timer just fired) a
// chance to run and re-register as busy before time moves. It reports
// whether the world stayed quiescent throughout.
func (c *VirtualClock) settleLocked(deep bool) bool {
	gen := c.gen
	rounds := settleRounds(deep)
	for i := 0; i < rounds; i++ {
		c.mu.Unlock()
		runtime.Gosched()
		c.mu.Lock()
		if c.closed || c.busy > 0 || c.gen != gen {
			return false
		}
	}
	return true
}

// stepLocked advances virtual time by one event. Ordering among the
// three sources at one instant: barriers strictly first (they only
// move time), then timers (legacy receivers parked on a delivery run
// before same-instant handlers), then dispatch batches. For
// stepDispatch the returned dispatcher's batch at the (already
// advanced) current instant must be run by the caller with the clock
// unlocked.
func (c *VirtualClock) stepLocked() (stepKind, *dispatcher) {
	// Barriers already in the past never hold time back.
	for len(c.barriers) > 0 && c.barriers[0].at <= c.now {
		heap.Pop(&c.barriers)
	}
	nextTimer := time.Duration(-1)
	if len(c.timers) > 0 {
		nextTimer = c.timers[0].at
	}
	nextDispatch := time.Duration(-1)
	var dispSrc *dispatcher
	for _, d := range c.disp {
		if at, ok := d.next(); ok {
			if at < c.now {
				at = c.now // already due: runs at the current instant
			}
			if nextDispatch < 0 || at < nextDispatch {
				nextDispatch, dispSrc = at, d
			}
		}
	}
	if len(c.barriers) > 0 {
		b := c.barriers[0].at
		if (nextTimer < 0 || b < nextTimer) && (nextDispatch < 0 || b < nextDispatch) {
			// An in-flight delivery is due first: advance to its instant
			// only. Its receiver (if one is parked on the queue) has been
			// runnable since the enqueue and will be caught by the next
			// settle round; a queue nobody reads stops capping time once
			// matured.
			heap.Pop(&c.barriers)
			if b > c.now {
				c.now = b
			}
			return stepQuiet, nil
		}
	}
	if nextTimer >= 0 && (nextDispatch < 0 || nextTimer <= nextDispatch) {
		w := heap.Pop(&c.timers).(*vwaiter)
		if w.at > c.now {
			c.now = w.at
		}
		if w.wake != nil {
			c.busy++ // transfer a busy slot to the woken sleeper
			close(w.wake)
			return stepWake, nil
		}
		select {
		case w.ch <- c.base.Add(c.now):
		default: // ticker receiver lagging; skip the tick like time.Ticker
		}
		if w.period > 0 {
			w.at += w.period
			heap.Push(&c.timers, w)
		}
		return stepWake, nil
	}
	if nextDispatch >= 0 {
		// The bound may be an upper-wheel slot boundary rather than an
		// exact event instant; advancing to it and running the (possibly
		// empty) batch lets the wheel cascade and refine the bound, the
		// same way barrier steps move time without firing anything.
		if nextDispatch > c.now {
			c.now = nextDispatch
		}
		return stepDispatch, dispSrc
	}
	return stepIdle, nil
}
