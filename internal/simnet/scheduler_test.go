package simnet

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30*time.Millisecond, func() { order = append(order, 3) })
	s.At(10*time.Millisecond, func() { order = append(order, 1) })
	s.At(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("final time = %v", s.Now())
	}
}

func TestSchedulerFIFOTieBreak(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order = %v", order)
		}
	}
}

func TestSchedulerAfterNesting(t *testing.T) {
	s := NewScheduler()
	var times []time.Duration
	s.After(time.Second, func() {
		times = append(times, s.Now())
		s.After(2*time.Second, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 3*time.Second {
		t.Fatalf("times = %v", times)
	}
}

func TestSchedulerPastEventRunsNow(t *testing.T) {
	s := NewScheduler()
	var ran time.Duration = -1
	s.At(5*time.Second, func() {
		s.At(time.Second, func() { ran = s.Now() }) // scheduled in the past
	})
	s.Run()
	if ran != 5*time.Second {
		t.Fatalf("past event ran at %v, want 5s", ran)
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.At(time.Second, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	// Cancel is idempotent and zero-value-safe.
	e.Cancel()
	var zero Event
	zero.Cancel()
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if s.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	// RunUntil past the end advances the clock.
	s.RunUntil(10 * time.Second)
	if len(fired) != 3 || s.Now() != 10*time.Second {
		t.Errorf("after second RunUntil: fired=%v now=%v", fired, s.Now())
	}
}

func TestSchedulerEvery(t *testing.T) {
	s := NewScheduler()
	count := 0
	ctl := s.Every(time.Second, time.Second, func() { count++ })
	s.RunUntil(5500 * time.Millisecond)
	if count != 5 {
		t.Fatalf("periodic fired %d times, want 5", count)
	}
	ctl.Cancel()
	s.RunUntil(20 * time.Second)
	if count != 5 {
		t.Fatalf("periodic fired after cancel: %d", count)
	}
}

func TestSchedulerStep(t *testing.T) {
	s := NewScheduler()
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	ran := false
	s.At(time.Millisecond, func() { ran = true })
	if !s.Step() || !ran {
		t.Fatal("Step did not run the event")
	}
}

func TestSchedulerEventAt(t *testing.T) {
	s := NewScheduler()
	e := s.At(7*time.Second, func() {})
	if e.At() != 7*time.Second {
		t.Errorf("At = %v", e.At())
	}
}

func TestSchedulerManyEventsDeterministic(t *testing.T) {
	run := func() []time.Duration {
		s := NewScheduler()
		var log []time.Duration
		// Interleaved periodic producers, like two cell schedulers.
		s.Every(0, 3*time.Millisecond, func() { log = append(log, s.Now()) })
		s.Every(time.Millisecond, 5*time.Millisecond, func() { log = append(log, s.Now()) })
		s.RunUntil(100 * time.Millisecond)
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSchedulerEveryCancelLeavesNoZombie(t *testing.T) {
	// Regression: Cancel used to kill only the control struct, leaving
	// the queued chain link alive in the heap — Pending reported ghost
	// events and RunUntil kept popping them.
	s := NewScheduler()
	ctl := s.Every(time.Second, time.Second, func() {})
	s.RunUntil(2500 * time.Millisecond)
	ctl.Cancel()
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after cancel = %d, want 0", got)
	}
	if s.Step() {
		t.Fatal("Step ran a canceled chain event")
	}
}

func TestSchedulerEveryCancelFromInsideFn(t *testing.T) {
	s := NewScheduler()
	count := 0
	var ctl Event
	ctl = s.Every(time.Second, time.Second, func() {
		count++
		if count == 3 {
			ctl.Cancel()
		}
	})
	s.RunUntil(time.Minute)
	if count != 3 {
		t.Fatalf("fired %d times, want 3 (self-cancel ignored)", count)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after self-cancel = %d, want 0", got)
	}
}

func TestSchedulerCancelNilAndDouble(t *testing.T) {
	s := NewScheduler()
	var zero Event
	zero.Cancel() // must not panic
	e := s.After(time.Second, func() { t.Fatal("canceled event fired") })
	e.Cancel()
	e.Cancel() // double cancel is a no-op
	s.RunUntil(2 * time.Second)
}
