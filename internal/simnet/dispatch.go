package simnet

import (
	"math/bits"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the run-to-completion dispatch core (DESIGN.md §14).
//
// A Conn or PacketConn with a registered handler no longer delivers
// through a buffered channel to a parked reader goroutine: each write
// becomes a closure-free delivery event and the receiver's handler runs
// inline when the event fires. Under a VirtualClock the events live on
// the PR 7 timing wheel and the clock's advancer executes each
// instant's batch in deterministic (delivery instant, conn ID) order —
// the same admission-order convention epc's detGate uses — with no
// channel, no barrier, no park/unpark, and no settle round for pure
// handler-to-handler hops. Under the wall clock, delivery is a per-conn
// FIFO drained inline by whichever goroutine finds the dispatcher idle;
// nested writes from inside a handler flatten into the active drain
// loop instead of recursing, so a handler may write (even back into the
// conn whose send triggered it) without re-entering application locks.

// streamQueueDepth is the buffered-channel depth of a legacy (blocking
// Read) stream conn. The channel is allocated lazily on first use;
// handler-mode conns never allocate it.
const streamQueueDepth = 4096

// inboxDepth bounds a packet socket's receive queue: datagrams beyond
// it drop, modeling kernel receive-buffer overflow. Handler-mode
// sockets deliver through the dispatcher and never queue.
const inboxDepth = 1024

// dconn is one registered dispatch endpoint: a stream half-pipe or a
// packet socket whose deliveries run through handlers. The id is
// assigned at registration time from the dispatcher's counter and is
// the deterministic tie-break for same-instant deliveries.
type dconn struct {
	d  *dispatcher
	id uint64

	sink     StreamHandler                    // interface-form stream handler
	onData   func(data []byte)                // stream payload handler
	onPacket func(data []byte, from net.Addr) // datagram handler
	onClose  func()                           // stream EOF handler

	// closed marks a self-closed endpoint: deliveries already in
	// flight are dropped when they fire. closeSent dedups the peer
	// close event. lastAt is the latest delivery instant scheduled to
	// this endpoint, so a close event never overtakes queued data.
	// All three are guarded by the owning dispatcher's mutexes.
	closed    bool
	closeSent bool
	lastAt    time.Duration

	// closeDelivered dedups the close callback itself: a teardown
	// (forced) close event may coexist with the peer's ordinary close
	// event, and the handler must see EOF exactly once. Touched only
	// on the engine's single delivery thread.
	closeDelivered bool

	// bounded endpoints (packet sockets) cap scheduled-but-undelivered
	// datagrams at inboxDepth, preserving the legacy inbox's
	// receive-buffer overflow drops. inflight is guarded by the active
	// engine's mutex.
	bounded  bool
	inflight int

	// Wall-clock engine state: the per-conn FIFO and its scheduling
	// flags, guarded by dispatcher.wmu. wtimer is the conn's reusable
	// head-of-line maturity timer — allocated once, re-armed with Reset,
	// so a future-dated delivery costs no timer allocation at steady
	// state.
	wq         []wrec
	ready      bool
	timerArmed bool
	wtimer     *time.Timer
}

// wrec is one wall-clock delivery: payload, source, and the wall
// instant it matures (zero = deliverable immediately).
type wrec struct {
	data    []byte
	from    net.Addr
	at      time.Time
	isClose bool
	force   bool // teardown close: deliver even to a closed endpoint
}

// vrec is one virtual-clock delivery record. Records live in a slab
// indexed by the wheel event's arg, so scheduling a delivery allocates
// nothing at steady state.
type vrec struct {
	data    []byte
	from    net.Addr
	dc      *dconn
	isClose bool
	force   bool // teardown close: deliver even to a closed endpoint
}

// dispatcher is the per-Network run-to-completion engine. Exactly one
// of the two engines is active: the virtual engine (vc != nil) runs
// delivery batches from the clock's advancer; the wall engine drains
// per-conn FIFOs inline on writer goroutines.
type dispatcher struct {
	n  *Network
	vc *VirtualClock // nil = wall engine

	// Virtual engine, guarded by mu.
	mu      sync.Mutex
	sched   *Scheduler
	recs    []vrec
	freeRec []uint32
	batch   []uint32
	scratch []vrec
	pending atomic.Int64

	// woke notes that a delivery batch did something the quiescence
	// detector cannot see on its own — a legacy channel enqueue or an
	// explicit Poke — so the advancer must run a settle round before
	// moving time again.
	woke atomic.Bool

	connSeq atomic.Uint64

	dispatches atomic.Uint64 // handler deliveries run (ExecStats)

	// Wall engine, guarded by wmu.
	wmu      sync.Mutex
	readyQ   []*dconn
	draining bool
}

// dispatcherFor returns the network's dispatcher, creating it on first
// handler registration.
func (n *Network) dispatcherFor() *dispatcher {
	if d := n.disp.Load(); d != nil {
		return d
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if d := n.disp.Load(); d != nil {
		return d
	}
	d := &dispatcher{n: n}
	if vc, ok := n.clock.(*VirtualClock); ok {
		d.vc = vc
		d.sched = NewScheduler()
		vc.attachDispatcher(d)
	}
	n.disp.Store(d)
	return d
}

// register creates a dispatch endpoint with the next conn ID.
func (d *dispatcher) register() *dconn {
	return &dconn{d: d, id: d.connSeq.Add(1)}
}

// --- Virtual engine --------------------------------------------------

// enqueueV schedules one delivery at virtual instant at (duration since
// the clock's base). Caller must not hold d.mu.
func (d *dispatcher) enqueueV(dc *dconn, data []byte, from net.Addr, at time.Duration, isClose, force bool) {
	d.mu.Lock()
	if (dc.closed && !force) || (dc.bounded && dc.inflight >= inboxDepth) {
		d.mu.Unlock()
		payloadPut(data)
		return
	}
	dc.inflight++
	var idx uint32
	if n := len(d.freeRec); n > 0 {
		idx = d.freeRec[n-1]
		d.freeRec = d.freeRec[:n-1]
	} else {
		d.recs = append(d.recs, vrec{})
		idx = uint32(len(d.recs) - 1)
	}
	d.recs[idx] = vrec{data: data, from: from, dc: dc, isClose: isClose, force: force}
	// Per-endpoint FIFO: a delivery never overtakes an earlier one on
	// the same conn. Jitter can draw a smaller delay for a later write;
	// the legacy queue serialized those at the running max instant, and
	// stream byte order (and differential equivalence) depends on the
	// dispatcher doing the same.
	if at < dc.lastAt {
		at = dc.lastAt
	} else {
		dc.lastAt = at
	}
	d.sched.AtIndexed(at, uint64(idx))
	d.pending.Add(1)
	d.mu.Unlock()
}

// next reports the earliest instant at or after the wheel's position
// that may hold a delivery. The bound is exact when it comes from the
// level-0 wheel; an upper-level bound is a lower bound only, and the
// advancer resolves it by advancing the clock (and wheel) to the bound
// and asking again — exactly how delivery barriers already move time
// without firing anything.
func (d *dispatcher) next() (time.Duration, bool) {
	if d.pending.Load() == 0 {
		return 0, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sched.peekBound()
}

// peekBound is the read-only half of nextDue: the earliest level-0
// instant, or the earliest upper-level slot boundary when no level-0
// candidate precedes it. ok=false means nothing is queued.
func (s *Scheduler) peekBound() (time.Duration, bool) {
	now := uint64(s.now)
	cand := time.Duration(-1)
	if bm := s.occupied[0]; bm != 0 {
		pos := int(now & wheelMask)
		d := bits.TrailingZeros64(bits.RotateLeft64(bm, -pos))
		cand = s.now + time.Duration(d)
	}
	casLevel := -1
	var casStart time.Duration
	for k := 1; k < wheelLevels; k++ {
		bm := s.occupied[k]
		if bm == 0 {
			continue
		}
		shift := uint(k) * wheelBits
		pos := int((now >> shift) & wheelMask)
		d := bits.TrailingZeros64(bits.RotateLeft64(bm, -pos))
		start := time.Duration(((now >> shift) + uint64(d)) << shift)
		if casLevel < 0 || start < casStart {
			casLevel, casStart = k, start
		}
	}
	if cand >= 0 && (casLevel < 0 || cand < casStart) {
		return cand, true
	}
	if casLevel >= 0 {
		return casStart, true
	}
	return 0, false
}

// flush runs every event still queued on the virtual engine, instant
// by instant. Called once at clock shutdown: conns closed during world
// teardown schedule their close events here, and with the advancer
// gone nothing else would ever run them — leaving handler-fed
// consumers (a service goroutine parked on its ingest queue) waiting
// for an EOF that never comes until the close-side drain deadline
// expires. The step cap only guards against a pathological handler
// loop re-scheduling forever at shutdown.
func (d *dispatcher) flush() {
	for i := 0; i < 1<<16 && d.pending.Load() > 0; i++ {
		at, ok := d.next()
		if !ok {
			return
		}
		d.runAt(at)
	}
}

// runAt executes every delivery due at virtual instant `at`,
// run-to-completion: each sub-batch is sorted by conn ID (write order
// within a conn is already preserved by wheel seq order), handlers run
// in that order, and deliveries they schedule for the same instant form
// the next sub-batch until the instant drains. It reports whether the
// batch might have made a registered goroutine runnable (a legacy
// enqueue or Poke happened), which tells the advancer whether the next
// step needs a settle round. Called by the advancer with the clock's
// mutex released and virtual time already at `at`.
func (d *dispatcher) runAt(at time.Duration) bool {
	d.woke.Store(false)
	for {
		d.mu.Lock()
		d.batch = d.batch[:0]
		for {
			e := d.sched.popDue(at, true)
			if e == nil {
				break
			}
			d.batch = append(d.batch, uint32(e.arg))
			d.sched.live--
			d.sched.recycle(e)
		}
		n := len(d.batch)
		if n == 0 {
			d.mu.Unlock()
			break
		}
		d.pending.Add(-int64(n))
		// Copy the records out (and free their slots) so handlers can
		// enqueue — growing d.recs — while we iterate. Stable sort by
		// conn ID; within a conn, wheel seq order (= write order) holds.
		d.scratch = d.scratch[:0]
		for _, idx := range d.batch {
			r := d.recs[idx]
			r.dc.inflight--
			d.scratch = append(d.scratch, r)
			d.recs[idx] = vrec{}
			d.freeRec = append(d.freeRec, idx)
		}
		stableSortByConn(d.scratch)
		d.mu.Unlock()
		for i := range d.scratch {
			d.deliver(&d.scratch[i])
		}
	}
	return d.woke.Load()
}

// stableSortByConn orders a sub-batch by conn ID, preserving input
// (write) order within each conn. Insertion sort: sub-batches are
// small and usually already sorted.
func stableSortByConn(recs []vrec) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].dc.id < recs[j-1].dc.id; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

// deliver runs one delivery's handler and recycles its payload buffer.
// The buffer is valid only for the duration of the handler call.
func (d *dispatcher) deliver(r *vrec) {
	dc := r.dc
	if dc.closed && !r.force {
		payloadPut(r.data)
		return
	}
	if r.isClose {
		if dc.closeDelivered {
			return
		}
		dc.closeDelivered = true
		if dc.sink != nil {
			dc.sink.HandleStreamClose()
		} else if f := dc.onClose; f != nil {
			f()
		}
		return
	}
	d.dispatches.Add(1)
	if dc.onPacket != nil {
		dc.onPacket(r.data, r.from)
	} else if dc.sink != nil {
		dc.sink.HandleDeliver(r.data)
	} else {
		dc.onData(r.data)
	}
	payloadPut(r.data)
}

// noteLegacyWake records a legacy channel enqueue. If it happened
// inside a dispatch batch, the receiver may have become runnable in a
// way quiescence counting cannot see, so the advancer must settle
// before moving time.
func (d *dispatcher) noteLegacyWake() {
	d.woke.Store(true)
}

// Poke tells a virtual clock that the calling handler made a goroutine
// runnable through something other than a simnet write — a send on an
// application channel, a cond broadcast — so the clock must settle the
// scheduler before advancing time. Handlers that only write simnet
// conns never need it; it is a no-op on wall clocks.
func Poke(clk Clock) {
	if vc, ok := clk.(*VirtualClock); ok {
		vc.Poke()
	}
}

// --- Wall engine -----------------------------------------------------

// enqueueW appends one delivery to the endpoint's FIFO and drains the
// dispatcher if no goroutine is already draining. Deliveries mature in
// write order per conn; a head-of-line delivery with a future instant
// arms a real timer rather than stalling the drain loop.
func (d *dispatcher) enqueueW(dc *dconn, data []byte, from net.Addr, at time.Time, isClose, force bool) {
	d.wmu.Lock()
	if (dc.closed && !force) || (dc.bounded && dc.inflight >= inboxDepth) {
		d.wmu.Unlock()
		payloadPut(data)
		return
	}
	dc.inflight++
	if dc.wq == nil {
		dc.wq = make([]wrec, 0, 8)
	}
	dc.wq = append(dc.wq, wrec{data: data, from: from, at: at, isClose: isClose, force: force})
	d.scheduleW(dc)
}

// armTimerW arms dc's reusable maturity timer for the given wait.
// Caller holds d.wmu; timerArmed must be false.
func (d *dispatcher) armTimerW(dc *dconn, wait time.Duration) {
	dc.timerArmed = true
	if dc.wtimer == nil {
		dc.wtimer = time.AfterFunc(wait, func() {
			d.wmu.Lock()
			dc.timerArmed = false
			d.scheduleW(dc)
		})
		return
	}
	dc.wtimer.Reset(wait)
}

// scheduleW marks dc ready (or arms its maturity timer) and drains if
// idle. Caller holds d.wmu; released on return.
func (d *dispatcher) scheduleW(dc *dconn) {
	if !dc.ready && len(dc.wq) > 0 {
		head := dc.wq[0]
		if head.at.IsZero() || !head.at.After(time.Now()) {
			dc.ready = true
			d.readyQ = append(d.readyQ, dc)
		} else if !dc.timerArmed {
			d.armTimerW(dc, time.Until(head.at))
		}
	}
	if d.draining || len(d.readyQ) == 0 {
		d.wmu.Unlock()
		return
	}
	d.draining = true
	d.drainW()
}

// drainW runs ready deliveries until none remain. Caller holds d.wmu
// with draining set; released on return. Handlers run with the lock
// dropped, so a handler writing to any conn — including the one whose
// send started this drain — only enqueues; the loop here picks the
// write up after the handler returns, flattening what would otherwise
// be recursion through application locks.
func (d *dispatcher) drainW() {
	for len(d.readyQ) > 0 {
		dc := d.readyQ[0]
		copy(d.readyQ, d.readyQ[1:])
		d.readyQ = d.readyQ[:len(d.readyQ)-1]
		for len(dc.wq) > 0 {
			head := dc.wq[0]
			if !head.at.IsZero() && head.at.After(time.Now()) {
				break
			}
			copy(dc.wq, dc.wq[1:])
			dc.wq = dc.wq[:len(dc.wq)-1]
			dc.inflight--
			closed := dc.closed
			d.wmu.Unlock()
			if closed && !head.force {
				payloadPut(head.data)
			} else if head.isClose {
				if !dc.closeDelivered {
					dc.closeDelivered = true
					if dc.sink != nil {
						dc.sink.HandleStreamClose()
					} else if f := dc.onClose; f != nil {
						f()
					}
				}
			} else {
				d.dispatches.Add(1)
				if dc.onPacket != nil {
					dc.onPacket(head.data, head.from)
				} else if dc.sink != nil {
					dc.sink.HandleDeliver(head.data)
				} else {
					dc.onData(head.data)
				}
				payloadPut(head.data)
			}
			d.wmu.Lock()
		}
		dc.ready = false
		if len(dc.wq) > 0 {
			d.scheduleTimerW(dc)
		}
	}
	d.draining = false
	d.wmu.Unlock()
}

// scheduleTimerW arms dc's head-of-line maturity timer. Caller holds
// d.wmu.
func (d *dispatcher) scheduleTimerW(dc *dconn) {
	if dc.timerArmed || len(dc.wq) == 0 {
		return
	}
	head := dc.wq[0]
	if head.at.IsZero() || !head.at.After(time.Now()) {
		// Already mature (delivered next drain round): re-ready.
		dc.ready = true
		d.readyQ = append(d.readyQ, dc)
		return
	}
	d.armTimerW(dc, time.Until(head.at))
}

// --- Shared entry points ---------------------------------------------

// send schedules one delivery to dc after the link delay, dispatching
// to whichever engine the network runs on. data ownership transfers to
// the dispatcher (it is recycled after the handler returns).
func (d *dispatcher) send(dc *dconn, data []byte, from net.Addr, delay time.Duration) {
	if d.vc != nil {
		d.enqueueV(dc, data, from, d.vc.nowDur()+delay, false, false)
		return
	}
	var at time.Time
	if delay > 0 {
		at = time.Now().Add(delay)
	}
	d.enqueueW(dc, data, from, at, false, false)
}

// migrateChunk re-registers a delivery that was buffered on the legacy
// path before the handler existed, preserving its original delivery
// instant (and releasing its delivery barrier — the dispatcher's
// pending count now holds time back instead). Callers are running
// goroutines, so a virtual clock cannot advance mid-migration.
func (d *dispatcher) migrateChunk(dc *dconn, ch chunk, from net.Addr) {
	if d.vc != nil {
		at := d.vc.nowDur()
		if !ch.at.IsZero() {
			if t := ch.at.Sub(d.vc.base); t > at {
				at = t
			}
		}
		d.enqueueV(dc, ch.data, from, at, false, false)
		d.vc.releaseBarrier(ch.bar)
		return
	}
	d.enqueueW(dc, ch.data, from, ch.at, false, false)
}

// migrateDatagram is migrateChunk for a packet socket's buffered
// datagrams.
func (d *dispatcher) migrateDatagram(dc *dconn, dg datagram) {
	if d.vc != nil {
		at := d.vc.nowDur()
		if !dg.at.IsZero() {
			if t := dg.at.Sub(d.vc.base); t > at {
				at = t
			}
		}
		d.enqueueV(dc, dg.data, dg.from, at, false, false)
		d.vc.releaseBarrier(dg.bar)
		return
	}
	d.enqueueW(dc, dg.data, dg.from, dg.at, false, false)
}

// sendClose schedules the endpoint's close notification after every
// already-scheduled delivery (a close never overtakes data).
func (d *dispatcher) sendClose(dc *dconn) {
	if d.vc != nil {
		d.mu.Lock()
		if dc.closeSent {
			d.mu.Unlock()
			return
		}
		dc.closeSent = true
		at := dc.lastAt
		d.mu.Unlock()
		if now := d.vc.nowDur(); now > at {
			at = now
		}
		d.enqueueV(dc, nil, nil, at, true, false)
		return
	}
	d.wmu.Lock()
	if dc.closeSent {
		d.wmu.Unlock()
		return
	}
	dc.closeSent = true
	d.wmu.Unlock()
	d.enqueueW(dc, nil, nil, time.Time{}, true, false)
}

// sendCloseForce schedules a close notification that fires even after
// the endpoint itself is marked closed. World teardown closes both
// ends of every conn administratively; without the force bit the first
// end's markClosed would drop the second end's close event, and a
// goroutine parked on a handler-fed queue would never learn its conn
// died. Scheduled before markClosed so it passes the enqueue-side
// closed check regardless of engine.
func (d *dispatcher) sendCloseForce(dc *dconn) {
	if d.vc != nil {
		d.mu.Lock()
		dc.closeSent = true
		at := dc.lastAt
		d.mu.Unlock()
		if now := d.vc.nowDur(); now > at {
			at = now
		}
		d.enqueueV(dc, nil, nil, at, true, true)
		return
	}
	d.wmu.Lock()
	dc.closeSent = true
	d.wmu.Unlock()
	d.enqueueW(dc, nil, nil, time.Time{}, true, true)
}

// markClosed marks a self-closed endpoint so deliveries already in
// flight are dropped when they fire.
func (d *dispatcher) markClosed(dc *dconn) {
	if d.vc != nil {
		d.mu.Lock()
		dc.closed = true
		d.mu.Unlock()
		return
	}
	d.wmu.Lock()
	dc.closed = true
	d.wmu.Unlock()
}

// ExecStats are a world's execution-model counters: how many deliveries
// ran as run-to-completion handler dispatches, how many took the legacy
// channel path to a blocking reader, and how many times a registered
// goroutine parked in the virtual clock (sleeps, blocking reads,
// delivery holds). The dispatches/parks ratio is the direct measure of
// what the dispatch conversion bought.
type ExecStats struct {
	HandlerDispatches uint64
	LegacyDeliveries  uint64
	GoroutineParks    uint64
}

// ExecStats reports the network's execution counters since creation.
func (n *Network) ExecStats() ExecStats {
	var s ExecStats
	if d := n.disp.Load(); d != nil {
		s.HandlerDispatches = d.dispatches.Load()
	}
	s.LegacyDeliveries = n.legacyDeliveries.Load()
	if vc, ok := n.clock.(*VirtualClock); ok {
		s.GoroutineParks = vc.parks.Load()
	}
	return s
}

// noteLegacyDelivery counts a legacy channel enqueue and, when a
// dispatch batch is running, flags the wake for the advancer.
func (n *Network) noteLegacyDelivery() {
	n.legacyDeliveries.Add(1)
	if d := n.disp.Load(); d != nil {
		d.noteLegacyWake()
	}
}
