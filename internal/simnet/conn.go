package simnet

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// chunk is a batch of stream bytes due for delivery at a clock
// instant (its send time plus the link delay at send time). Under a
// VirtualClock, bar holds the delivery barrier keeping virtual time
// from jumping past the delivery before the receiver parks on it.
type chunk struct {
	data []byte
	at   time.Time
	bar  *vbarrier
}

// halfPipe is one direction of a stream connection. Bytes written are
// delivered after the link delay; the byte stream is reliable and
// ordered (it models TCP riding the simulated link).
//
// A pipe delivers through exactly one of three paths, in lifecycle
// order: preq buffers writes that arrive before the receiver engages
// (no reader parked yet, no handler installed — typically a dial
// handshake frame in flight); queue is the legacy channel a blocking
// reader parks on, allocated on first Read; a registered dispatch
// handler (dc) replaces both and runs deliveries run-to-completion on
// the network's dispatcher.
type halfPipe struct {
	mu         sync.Mutex
	preq       []chunk    // writes before engagement, in write order
	queue      chan chunk // legacy path; nil until a reader engages
	pending    []byte     // unread remainder of the last delivered chunk
	pendingBuf []byte     // pending's backing pool buffer, recycled when drained
	closed     chan struct{}
	once       sync.Once

	// dc is the receiver's dispatch endpoint. Written under mu (so
	// installation can migrate buffered chunks atomically against
	// writers); read lock-free on the write fast path.
	dc atomic.Pointer[dconn]
}

func newHalfPipe() *halfPipe {
	return &halfPipe{closed: make(chan struct{})}
}

func (p *halfPipe) close() {
	p.once.Do(func() { close(p.closed) })
}

// engage returns the legacy delivery channel, allocating it and
// draining any pre-engagement chunks into it on first use.
func (p *halfPipe) engage() chan chunk {
	p.mu.Lock()
	if p.queue == nil {
		depth := streamQueueDepth
		if len(p.preq) >= depth {
			depth = len(p.preq) + 64
		}
		p.queue = make(chan chunk, depth)
		for _, ch := range p.preq {
			p.queue <- ch
		}
		p.preq = nil
	}
	q := p.queue
	p.mu.Unlock()
	return q
}

// Conn is a simnet stream connection implementing net.Conn.
type Conn struct {
	network *Network
	local   Addr
	remote  Addr
	// rx is the pipe this side reads from; tx is the pipe it writes to.
	rx, tx *halfPipe

	readDeadline  deadline
	writeDeadline deadline
}

type deadline struct {
	mu sync.Mutex
	t  time.Time
}

func (d *deadline) set(t time.Time) {
	d.mu.Lock()
	d.t = t
	d.mu.Unlock()
}

func (d *deadline) get() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.t
}

// newConnPair wires two Conns back to back across the network's links.
func newConnPair(n *Network, local, remote Addr) (*Conn, *Conn) {
	aToB := newHalfPipe()
	bToA := newHalfPipe()
	a := &Conn{network: n, local: local, remote: remote, rx: bToA, tx: aToB}
	b := &Conn{network: n, local: remote, remote: local, rx: aToB, tx: bToA}
	return a, b
}

// OnDeliver switches the conn to run-to-completion dispatch: h runs
// inline on the network's dispatcher for every delivered write, in
// delivery order, at the delivery instant; onClose (optional) runs
// after the final delivery when the peer closes. The buffer passed to
// h is owned by the dispatcher and valid only for the duration of the
// call — copy anything retained.
//
// Anything already buffered (a handshake frame read partially, chunks
// queued before the handler existed) is re-registered with the
// dispatcher at its original delivery instant, so installing a handler
// mid-stream loses nothing and shifts no timestamps. After
// installation the blocking Read path must not be used again. The
// caller must be a clock-registered goroutine, and h must not block on
// clock waits (no Sleep, no blocking simnet reads); a handler that
// wakes other goroutines through plain channels must call Poke.
func (c *Conn) OnDeliver(h func(data []byte), onClose func()) {
	d := c.network.dispatcherFor()
	dc := d.register()
	dc.onData = h
	dc.onClose = onClose
	c.installDispatch(d, dc)
}

// StreamHandler is the allocation-free form of OnDeliver: one receiver
// carries both callbacks, so a per-conn registration costs no closure
// allocations — it matters on paths that register a fresh conn per
// protocol event (every attach creates a radio association). The same
// contract as OnDeliver applies to both methods.
type StreamHandler interface {
	HandleDeliver(data []byte) // one delivered write; buffer valid for the call only
	HandleStreamClose()        // peer closed, after the final delivery
}

// OnDeliverHandler is OnDeliver with an interface receiver in place of
// the two closures.
func (c *Conn) OnDeliverHandler(h StreamHandler) {
	d := c.network.dispatcherFor()
	dc := d.register()
	dc.sink = h
	c.installDispatch(d, dc)
}

// closeTeardown is Close for world teardown: if the conn runs a
// dispatch handler, its close callback is scheduled as a forced event
// first, so the handler sees EOF even though the close is
// administrative rather than the peer's — a service goroutine parked
// on a handler-fed queue depends on that callback to exit.
func (c *Conn) closeTeardown() error {
	if dc := c.rx.dc.Load(); dc != nil && (dc.sink != nil || dc.onClose != nil) {
		dc.d.sendCloseForce(dc)
	}
	return c.Close()
}

// installDispatch migrates buffered data to the endpoint's dispatcher
// and publishes the registration, preserving original delivery
// instants (see OnDeliver).
func (c *Conn) installDispatch(d *dispatcher, dc *dconn) {
	p := c.rx
	p.mu.Lock()
	if len(p.pending) > 0 {
		// Remainder of a partially-read chunk: already deliverable.
		d.migrateChunk(dc, chunk{data: p.pending}, nil)
		p.pending, p.pendingBuf = nil, nil
	}
	if p.queue != nil {
	drain:
		for {
			select {
			case ch := <-p.queue:
				d.migrateChunk(dc, ch, nil)
			default:
				break drain
			}
		}
	}
	for _, ch := range p.preq {
		d.migrateChunk(dc, ch, nil)
	}
	p.preq = nil
	p.dc.Store(dc)
	p.mu.Unlock()
	select {
	case <-p.closed:
		// Peer closed before the handler existed; its close event was
		// never scheduled, so schedule it now (after migrated data).
		d.sendClose(dc)
	default:
	}
}

// Read implements net.Conn. It blocks until data is deliverable (its
// link delay has elapsed), the peer closes, or the read deadline fires.
func (c *Conn) Read(b []byte) (int, error) {
	c.rx.mu.Lock()
	if len(c.rx.pending) > 0 {
		n := copy(b, c.rx.pending)
		c.rx.pending = c.rx.pending[n:]
		if len(c.rx.pending) == 0 {
			c.rx.pending = nil
			payloadPut(c.rx.pendingBuf)
			c.rx.pendingBuf = nil
		}
		c.rx.mu.Unlock()
		return n, nil
	}
	c.rx.mu.Unlock()

	clk := c.network.clock
	queue := c.rx.engage()

	// Fast path: a chunk is already queued; no need to park.
	select {
	case ch := <-queue:
		return c.deliver(ch, b, nil), nil
	default:
	}

	var timer *Timer
	var deadlineC <-chan time.Time
	if dl := c.readDeadline.get(); !dl.IsZero() {
		wait := clk.Until(dl)
		if wait <= 0 {
			return 0, ErrDeadline
		}
		timer = clk.NewTimer(wait)
		deadlineC = timer.C
		defer timer.Stop()
	}

	clk.Block()
	select {
	case ch := <-queue:
		clk.Unblock()
		return c.deliver(ch, b, deadlineC), nil
	case <-c.rx.closed:
		clk.Unblock()
		// Drain anything queued before the close won the race.
		select {
		case ch := <-queue:
			return c.deliver(ch, b, deadlineC), nil
		default:
			return 0, io.EOF
		}
	case <-deadlineC:
		clk.Unblock()
		return 0, ErrDeadline
	}
}

// deliver waits out the chunk's remaining link delay, then copies its
// bytes into b, stashing any remainder as pending. A fully consumed
// chunk's buffer goes back to the payload pool; a partially consumed
// one is recycled once the pending remainder drains.
func (c *Conn) deliver(ch chunk, b []byte, deadlineC <-chan time.Time) int {
	c.holdUntil(ch, deadlineC)
	c.rx.mu.Lock()
	n := copy(b, ch.data)
	if n < len(ch.data) {
		c.rx.pending = ch.data[n:]
		c.rx.pendingBuf = ch.data
	} else {
		payloadPut(ch.data)
	}
	c.rx.mu.Unlock()
	return n
}

// holdUntil sleeps until the delivery instant, or returns early if the
// deadline channel fires (the data stays consumed: real kernels would
// have buffered it, and our single-reader protocols never rely on
// post-deadline re-reads).
func (c *Conn) holdUntil(ch chunk, deadlineC <-chan time.Time) {
	if vc, ok := c.network.clock.(*VirtualClock); ok {
		vc.holdDelivery(ch.bar, ch.at, deadlineC)
		return
	}
	if ch.at.IsZero() {
		return // immediate delivery; no clock read
	}
	wait := time.Until(ch.at)
	if wait <= 0 {
		return
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
	case <-deadlineC:
	}
}

// Write implements net.Conn. Bytes are queued with the link delay
// computed at write time; writes fail if the link is down or the peer
// has closed.
func (c *Conn) Write(b []byte) (int, error) {
	select {
	case <-c.tx.closed:
		return 0, ErrClosed
	default:
	}
	delay, up := c.network.delayFor(c.local.Host, c.remote.Host, len(b), false)
	if !up {
		return 0, ErrLinkDown
	}
	p := c.tx

	// Dispatch fast path: the receiver runs a handler; schedule a
	// delivery event. No channel, no barrier, no blocking (deadlines
	// are moot — the event queue never exerts backpressure).
	if dc := p.dc.Load(); dc != nil {
		data := payloadGet(len(b))
		copy(data, b)
		dc.d.send(dc, data, nil, delay)
		return len(b), nil
	}

	clk := c.network.clock
	data := payloadGet(len(b))
	copy(data, b)
	ch := chunk{data: data}
	if vc, ok := clk.(*VirtualClock); ok {
		ch.at = clk.Now().Add(delay)
		ch.bar = vc.addBarrier(ch.at)
	} else if delay > 0 {
		ch.at = clk.Now().Add(delay)
	}

	// Legacy enqueue, mode-checked under the pipe lock so a concurrent
	// OnDeliver migration cannot strand the chunk behind the handler.
	p.mu.Lock()
	if dc := p.dc.Load(); dc != nil {
		p.mu.Unlock()
		c.releaseBarrier(ch.bar)
		dc.d.send(dc, data, nil, delay)
		return len(b), nil
	}
	if p.queue == nil {
		// Receiver not engaged yet: buffer in write order.
		p.preq = append(p.preq, ch)
		p.mu.Unlock()
		c.network.noteLegacyDelivery()
		return len(b), nil
	}
	queue := p.queue
	select {
	case queue <- ch:
		p.mu.Unlock()
		c.network.noteLegacyDelivery()
		return len(b), nil
	default:
	}
	p.mu.Unlock()

	var deadlineC <-chan time.Time
	if dl := c.writeDeadline.get(); !dl.IsZero() {
		wait := clk.Until(dl)
		if wait <= 0 {
			c.releaseBarrier(ch.bar)
			payloadPut(data)
			return 0, ErrDeadline
		}
		t := clk.NewTimer(wait)
		deadlineC = t.C
		defer t.Stop()
	}

	clk.Block()
	select {
	case queue <- ch:
		clk.Unblock()
		c.network.noteLegacyDelivery()
		return len(b), nil
	case <-c.tx.closed:
		clk.Unblock()
		c.releaseBarrier(ch.bar)
		payloadPut(data)
		return 0, ErrClosed
	case <-deadlineC:
		clk.Unblock()
		c.releaseBarrier(ch.bar)
		payloadPut(data)
		return 0, ErrDeadline
	}
}

func (c *Conn) releaseBarrier(b *vbarrier) {
	if b == nil {
		return
	}
	if vc, ok := c.network.clock.(*VirtualClock); ok {
		vc.releaseBarrier(b)
	}
}

// Close implements net.Conn. It closes both directions, so the peer's
// pending Read returns io.EOF (or its dispatch handler sees onClose)
// after draining delivered data.
func (c *Conn) Close() error {
	if dc := c.rx.dc.Load(); dc != nil {
		dc.d.markClosed(dc) // drop own in-flight deliveries
	}
	if dc := c.tx.dc.Load(); dc != nil {
		dc.d.sendClose(dc) // peer's handler sees EOF after queued data
	}
	c.tx.close()
	c.rx.close()
	c.network.dropConn(c)
	return nil
}

// Clock returns the clock governing this connection's network.
func (c *Conn) Clock() Clock { return c.network.clock }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn. Deadlines apply to operations
// started after the call; they do not interrupt a blocked operation.
func (c *Conn) SetDeadline(t time.Time) error {
	c.readDeadline.set(t)
	c.writeDeadline.set(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.readDeadline.set(t)
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.writeDeadline.set(t)
	return nil
}
