package simnet

import (
	"io"
	"net"
	"sync"
	"time"
)

// chunk is a batch of stream bytes due for delivery at a clock
// instant (its send time plus the link delay at send time). Under a
// VirtualClock, bar holds the delivery barrier keeping virtual time
// from jumping past the delivery before the receiver parks on it.
type chunk struct {
	data []byte
	at   time.Time
	bar  *vbarrier
}

// halfPipe is one direction of a stream connection. Bytes written are
// delivered after the link delay; the byte stream is reliable and
// ordered (it models TCP riding the simulated link).
type halfPipe struct {
	mu         sync.Mutex
	queue      chan chunk
	pending    []byte // unread remainder of the last delivered chunk
	pendingBuf []byte // pending's backing pool buffer, recycled when drained
	closed     chan struct{}
	once       sync.Once
}

func newHalfPipe() *halfPipe {
	return &halfPipe{
		queue:  make(chan chunk, 4096),
		closed: make(chan struct{}),
	}
}

func (p *halfPipe) close() {
	p.once.Do(func() { close(p.closed) })
}

// Conn is a simnet stream connection implementing net.Conn.
type Conn struct {
	network *Network
	local   Addr
	remote  Addr
	// rx is the pipe this side reads from; tx is the pipe it writes to.
	rx, tx *halfPipe

	readDeadline  deadline
	writeDeadline deadline
}

type deadline struct {
	mu sync.Mutex
	t  time.Time
}

func (d *deadline) set(t time.Time) {
	d.mu.Lock()
	d.t = t
	d.mu.Unlock()
}

func (d *deadline) get() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.t
}

// newConnPair wires two Conns back to back across the network's links.
func newConnPair(n *Network, local, remote Addr) (*Conn, *Conn) {
	aToB := newHalfPipe()
	bToA := newHalfPipe()
	a := &Conn{network: n, local: local, remote: remote, rx: bToA, tx: aToB}
	b := &Conn{network: n, local: remote, remote: local, rx: aToB, tx: bToA}
	return a, b
}

// Read implements net.Conn. It blocks until data is deliverable (its
// link delay has elapsed), the peer closes, or the read deadline fires.
func (c *Conn) Read(b []byte) (int, error) {
	c.rx.mu.Lock()
	if len(c.rx.pending) > 0 {
		n := copy(b, c.rx.pending)
		c.rx.pending = c.rx.pending[n:]
		if len(c.rx.pending) == 0 {
			c.rx.pending = nil
			payloadPut(c.rx.pendingBuf)
			c.rx.pendingBuf = nil
		}
		c.rx.mu.Unlock()
		return n, nil
	}
	c.rx.mu.Unlock()

	clk := c.network.clock

	// Fast path: a chunk is already queued; no need to park.
	select {
	case ch := <-c.rx.queue:
		return c.deliver(ch, b, nil), nil
	default:
	}

	var timer *Timer
	var deadlineC <-chan time.Time
	if dl := c.readDeadline.get(); !dl.IsZero() {
		wait := clk.Until(dl)
		if wait <= 0 {
			return 0, ErrDeadline
		}
		timer = clk.NewTimer(wait)
		deadlineC = timer.C
		defer timer.Stop()
	}

	clk.Block()
	select {
	case ch := <-c.rx.queue:
		clk.Unblock()
		return c.deliver(ch, b, deadlineC), nil
	case <-c.rx.closed:
		clk.Unblock()
		// Drain anything queued before the close won the race.
		select {
		case ch := <-c.rx.queue:
			return c.deliver(ch, b, deadlineC), nil
		default:
			return 0, io.EOF
		}
	case <-deadlineC:
		clk.Unblock()
		return 0, ErrDeadline
	}
}

// deliver waits out the chunk's remaining link delay, then copies its
// bytes into b, stashing any remainder as pending. A fully consumed
// chunk's buffer goes back to the payload pool; a partially consumed
// one is recycled once the pending remainder drains.
func (c *Conn) deliver(ch chunk, b []byte, deadlineC <-chan time.Time) int {
	c.holdUntil(ch, deadlineC)
	c.rx.mu.Lock()
	n := copy(b, ch.data)
	if n < len(ch.data) {
		c.rx.pending = ch.data[n:]
		c.rx.pendingBuf = ch.data
	} else {
		payloadPut(ch.data)
	}
	c.rx.mu.Unlock()
	return n
}

// holdUntil sleeps until the delivery instant, or returns early if the
// deadline channel fires (the data stays consumed: real kernels would
// have buffered it, and our single-reader protocols never rely on
// post-deadline re-reads).
func (c *Conn) holdUntil(ch chunk, deadlineC <-chan time.Time) {
	if vc, ok := c.network.clock.(*VirtualClock); ok {
		vc.holdDelivery(ch.bar, ch.at, deadlineC)
		return
	}
	if ch.at.IsZero() {
		return // immediate delivery; no clock read
	}
	wait := time.Until(ch.at)
	if wait <= 0 {
		return
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
	case <-deadlineC:
	}
}

// Write implements net.Conn. Bytes are queued with the link delay
// computed at write time; writes fail if the link is down or the peer
// has closed.
func (c *Conn) Write(b []byte) (int, error) {
	select {
	case <-c.tx.closed:
		return 0, ErrClosed
	default:
	}
	delay, up := c.network.delayFor(c.local.Host, c.remote.Host, len(b), false)
	if !up {
		return 0, ErrLinkDown
	}
	clk := c.network.clock
	data := payloadGet(len(b))
	copy(data, b)
	ch := chunk{data: data}
	if vc, ok := clk.(*VirtualClock); ok {
		ch.at = clk.Now().Add(delay)
		ch.bar = vc.addBarrier(ch.at)
	} else if delay > 0 {
		ch.at = clk.Now().Add(delay)
	}

	// Fast path: queue has room.
	select {
	case c.tx.queue <- ch:
		return len(b), nil
	default:
	}

	var deadlineC <-chan time.Time
	if dl := c.writeDeadline.get(); !dl.IsZero() {
		wait := clk.Until(dl)
		if wait <= 0 {
			c.releaseBarrier(ch.bar)
			payloadPut(data)
			return 0, ErrDeadline
		}
		t := clk.NewTimer(wait)
		deadlineC = t.C
		defer t.Stop()
	}

	clk.Block()
	select {
	case c.tx.queue <- ch:
		clk.Unblock()
		return len(b), nil
	case <-c.tx.closed:
		clk.Unblock()
		c.releaseBarrier(ch.bar)
		payloadPut(data)
		return 0, ErrClosed
	case <-deadlineC:
		clk.Unblock()
		c.releaseBarrier(ch.bar)
		payloadPut(data)
		return 0, ErrDeadline
	}
}

func (c *Conn) releaseBarrier(b *vbarrier) {
	if b == nil {
		return
	}
	if vc, ok := c.network.clock.(*VirtualClock); ok {
		vc.releaseBarrier(b)
	}
}

// Close implements net.Conn. It closes both directions, so the peer's
// pending Read returns io.EOF after draining delivered data.
func (c *Conn) Close() error {
	c.tx.close()
	c.rx.close()
	c.network.dropConn(c)
	return nil
}

// Clock returns the clock governing this connection's network.
func (c *Conn) Clock() Clock { return c.network.clock }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn. Deadlines apply to operations
// started after the call; they do not interrupt a blocked operation.
func (c *Conn) SetDeadline(t time.Time) error {
	c.readDeadline.set(t)
	c.writeDeadline.set(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.readDeadline.set(t)
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.writeDeadline.set(t)
	return nil
}
