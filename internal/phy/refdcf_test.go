package phy

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// This file keeps the pre-engine slot-stepped contention loops as
// differential oracles (the refheap_test.go pattern): simulateDCFRef is
// the old SimulateDCF body ticking every 9 µs slot, adapted only to the
// keyed splitmix64 backoff draws and the Drops counter; simulateCoexRef
// extends the same three-phase loop to LTE-U/LBT nodes. The event-driven
// engine must reproduce both bit for bit — same per-station goodput
// floats, attempts, collisions, drops, busy airtime — on randomized
// topologies including hidden terminals.

type refStationState struct {
	cfg          DCFStation
	idx          int
	backoff      int
	cw           int
	retries      int
	txRemaining  int
	txCorrupted  bool
	frameSlots   int
	payloadBits  float64
	deliveredBit float64
	draws        uint32
}

func (s *refStationState) newBackoff(seed int64) {
	s.backoff = backoffDraw(seed, s.idx, s.draws, s.cw)
	s.draws++
}

// simulateDCFRef is the slot-stepped oracle: O(slots·n²), one iteration
// per 9 µs slot.
func simulateDCFRef(cfg DCFConfig, seconds float64) DCFResult {
	n := len(cfg.Stations)
	states := make([]*refStationState, n)
	for i, st := range cfg.Stations {
		slots, bits := dcfFrameSlots(st)
		s := &refStationState{
			cfg:         st,
			idx:         i,
			cw:          dcfCWMin,
			frameSlots:  slots,
			payloadBits: bits,
		}
		if st.Saturated {
			s.newBackoff(cfg.Seed)
		}
		states[i] = s
	}
	senses := func(i, j int) bool {
		if cfg.Sense == nil {
			return true
		}
		return cfg.Sense[i][j]
	}

	totalSlots := int(seconds * 1e6 / dcfSlotUs)
	attempts, collisions, drops, busySlots := 0, 0, 0, 0
	result := DCFResult{PerStationBps: make(map[string]float64, n)}

	for slot := 0; slot < totalSlots; slot++ {
		// Phase 1: stations with expired backoff and an idle medium (as
		// they sense it at slot start) begin transmitting.
		var starting []int
		for i, s := range states {
			if s.txRemaining > 0 || !s.cfg.Saturated || s.backoff > 0 {
				continue
			}
			idle := true
			for j, o := range states {
				if j != i && o.txRemaining > 0 && senses(i, j) {
					idle = false
					break
				}
			}
			if idle {
				starting = append(starting, i)
			}
		}
		for _, i := range starting {
			states[i].txRemaining = states[i].frameSlots
			states[i].txCorrupted = false
			attempts++
		}

		// Phase 2: collision detection at the AP — any overlap of
		// transmissions (the AP hears everyone) corrupts all involved.
		active := 0
		for _, s := range states {
			if s.txRemaining > 0 {
				active++
			}
		}
		if active > 0 {
			busySlots++
		}
		if active > 1 {
			for _, s := range states {
				if s.txRemaining > 0 {
					s.txCorrupted = true
				}
			}
		}

		// Phase 3: advance transmissions and count down backoff for
		// stations that sense an idle medium.
		for i, s := range states {
			if s.txRemaining > 0 {
				s.txRemaining--
				if s.txRemaining == 0 {
					if s.txCorrupted {
						collisions++
						s.retries++
						if s.retries > dcfRetryLimit {
							drops++
							s.retries = 0
							s.cw = dcfCWMin
						} else if s.cw < dcfCWMax {
							s.cw = min(2*(s.cw+1)-1, dcfCWMax)
						}
					} else {
						s.deliveredBit += s.payloadBits
						s.retries = 0
						s.cw = dcfCWMin
					}
					s.newBackoff(cfg.Seed)
				}
				continue
			}
			if !s.cfg.Saturated || s.backoff == 0 {
				continue
			}
			idle := true
			for j, o := range states {
				if j != i && o.txRemaining > 0 && senses(i, j) {
					idle = false
					break
				}
			}
			if idle {
				s.backoff--
			}
		}
	}

	for _, s := range states {
		bps := s.deliveredBit / seconds
		result.PerStationBps[s.cfg.ID] = bps
		result.TotalBps += bps
	}
	result.Attempts = attempts
	result.Collisions = collisions
	result.Drops = drops
	if attempts > 0 {
		result.CollisionRate = float64(collisions) / float64(attempts)
	}
	if totalSlots > 0 {
		result.BusyAirtimeFraction = float64(busySlots) / float64(totalSlots)
	}
	return result
}

// refCoexNode mirrors the engine's per-node shape for the slot-stepped
// coexistence reference.
type refCoexNode struct {
	kind        uint8
	contender   bool
	senseRow    []bool
	frameSlots  int
	periodSlots int
	offsetSlots int
	payloadBits float64
	bitsPerSlot float64

	backoff      int
	cw           int
	retries      int
	txRemaining  int
	corrupted    bool
	corruptSlots int
	nextBurst    int
	delivered    float64
	attempts     int
	collisions   int
	drops        int
	draws        uint32
}

func refMsSlots(ms, def float64) int {
	if ms <= 0 {
		ms = def
	}
	s := int(ms * 1e3 / dcfSlotUs)
	if s < 2 {
		s = 2
	}
	return s
}

// simulateCoexRef is the slot-stepped coexistence reference: the same
// three-phase loop extended with blind duty bursts and LBT contenders,
// with per-slot (rather than whole-frame) corruption accounting for LTE
// bursts.
func simulateCoexRef(cfg CoexConfig, seconds float64) CoexResult {
	nw := len(cfg.WiFi)
	n := nw + len(cfg.LTE)
	nodes := make([]*refCoexNode, n)
	for i, st := range cfg.WiFi {
		slots, bits := dcfFrameSlots(st)
		nodes[i] = &refCoexNode{
			kind:        nodeWiFi,
			contender:   st.Saturated,
			cw:          dcfCWMin,
			frameSlots:  slots,
			payloadBits: bits,
		}
	}
	for k, nd := range cfg.LTE {
		i := nw + k
		rn := &refCoexNode{bitsPerSlot: nd.RateBps * dcfSlotUs * 1e-6}
		switch nd.Kind {
		case LTEUDuty:
			rn.kind = nodeDuty
			rn.frameSlots = refMsSlots(nd.OnMs, 20)
			rn.periodSlots = refMsSlots(nd.PeriodMs, 40)
			if rn.periodSlots < rn.frameSlots {
				rn.periodSlots = rn.frameSlots
			}
			if nd.OffsetMs > 0 {
				rn.offsetSlots = int(nd.OffsetMs * 1e3 / dcfSlotUs)
			}
		case LTELBT:
			rn.kind = nodeLBT
			rn.contender = true
			rn.frameSlots = refMsSlots(nd.TXOPMs, 4)
			rn.cw = nd.CW
			if rn.cw <= 0 {
				rn.cw = dcfCWMin
			}
		}
		nodes[i] = rn
	}
	for i, rn := range nodes {
		if cfg.Sense != nil {
			rn.senseRow = cfg.Sense[i]
		}
		if rn.contender {
			rn.backoff = backoffDraw(cfg.Seed, i, 0, rn.cw)
			rn.draws = 1
		}
	}
	senses := func(i, j int) bool {
		if nodes[i].senseRow == nil {
			// Default matrix: duty bursts are below the energy-detection
			// threshold — hidden from every carrier sensor.
			return nodes[j].kind != nodeDuty
		}
		return nodes[i].senseRow[j]
	}

	totalSlots := int(seconds * 1e6 / dcfSlotUs)
	busySlots, lteBurstSlots, lteCorruptSlots := 0, 0, 0

	for slot := 0; slot < totalSlots; slot++ {
		var starting []int
		for i, rn := range nodes {
			if rn.txRemaining > 0 {
				continue
			}
			if rn.kind == nodeDuty {
				if slot == rn.offsetSlots+rn.nextBurst*rn.periodSlots {
					rn.nextBurst++
					starting = append(starting, i)
				}
				continue
			}
			if !rn.contender || rn.backoff > 0 {
				continue
			}
			idle := true
			for j, o := range nodes {
				if j != i && o.txRemaining > 0 && senses(i, j) {
					idle = false
					break
				}
			}
			if idle {
				starting = append(starting, i)
			}
		}
		for _, i := range starting {
			nodes[i].txRemaining = nodes[i].frameSlots
			nodes[i].corrupted = false
			nodes[i].corruptSlots = 0
			nodes[i].attempts++
		}

		active := 0
		for _, rn := range nodes {
			if rn.txRemaining > 0 {
				active++
			}
		}
		if active > 0 {
			busySlots++
		}
		if active > 1 {
			for _, rn := range nodes {
				if rn.txRemaining > 0 {
					if rn.kind == nodeWiFi {
						rn.corrupted = true
					} else {
						rn.corruptSlots++
					}
				}
			}
		}

		for i, rn := range nodes {
			if rn.txRemaining > 0 {
				rn.txRemaining--
				if rn.txRemaining == 0 {
					if rn.kind == nodeWiFi {
						if rn.corrupted {
							rn.collisions++
							rn.retries++
							if rn.retries > dcfRetryLimit {
								rn.drops++
								rn.retries = 0
								rn.cw = dcfCWMin
							} else if rn.cw < dcfCWMax {
								rn.cw = min(2*(rn.cw+1)-1, dcfCWMax)
							}
						} else {
							rn.delivered += rn.payloadBits
							rn.retries = 0
							rn.cw = dcfCWMin
						}
						rn.backoff = backoffDraw(cfg.Seed, i, rn.draws, rn.cw)
						rn.draws++
					} else {
						rn.delivered += rn.bitsPerSlot * float64(rn.frameSlots-rn.corruptSlots)
						lteBurstSlots += rn.frameSlots
						lteCorruptSlots += rn.corruptSlots
						if rn.corruptSlots > 0 {
							rn.collisions++
						}
						if rn.kind == nodeLBT {
							rn.backoff = backoffDraw(cfg.Seed, i, rn.draws, rn.cw)
							rn.draws++
						}
					}
				}
				continue
			}
			if !rn.contender || rn.backoff == 0 {
				continue
			}
			idle := true
			for j, o := range nodes {
				if j != i && o.txRemaining > 0 && senses(i, j) {
					idle = false
					break
				}
			}
			if idle {
				rn.backoff--
			}
		}
	}

	res := CoexResult{PerNodeBps: make(map[string]float64, n)}
	for i, st := range cfg.WiFi {
		bps := nodes[i].delivered / seconds
		res.PerNodeBps[st.ID] = bps
		res.WiFiBps += bps
		res.WiFiAttempts += nodes[i].attempts
		res.WiFiCollisions += nodes[i].collisions
		res.WiFiDrops += nodes[i].drops
	}
	for k, nd := range cfg.LTE {
		bps := nodes[nw+k].delivered / seconds
		res.PerNodeBps[nd.ID] = bps
		res.LTEBps += bps
	}
	if res.WiFiAttempts > 0 {
		res.WiFiCollisionRate = float64(res.WiFiCollisions) / float64(res.WiFiAttempts)
	}
	if totalSlots > 0 {
		res.LTEAirtimeFraction = float64(lteBurstSlots) / float64(totalSlots)
		res.BusyAirtimeFraction = float64(busySlots) / float64(totalSlots)
	}
	if lteBurstSlots > 0 {
		res.LTECorruptFraction = float64(lteCorruptSlots) / float64(lteBurstSlots)
	}
	return res
}

// randomSense builds a sense matrix over n nodes: mode 0 full sensing,
// mode 1 a hidden pair (first two nodes deaf to each other), mode 2
// random symmetric, mode 3 random asymmetric.
func randomSense(rng *rand.Rand, n, mode int) [][]bool {
	if mode == 0 {
		return nil
	}
	m := make([][]bool, n)
	for i := range m {
		m[i] = make([]bool, n)
		for j := range m[i] {
			m[i][j] = true
		}
	}
	switch mode {
	case 1:
		if n >= 2 {
			m[0][1], m[1][0] = false, false
		}
	case 2:
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Float64() < 0.7
				m[i][j], m[j][i] = v, v
			}
		}
	case 3:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					m[i][j] = rng.Float64() < 0.8
				}
			}
		}
	}
	return m
}

func randomStations(rng *rand.Rand, n int) []DCFStation {
	rates := []float64{6e6, 12e6, 24e6, 54e6}
	payloads := []int{0, 300, 1500}
	ss := make([]DCFStation, n)
	for i := range ss {
		ss[i] = DCFStation{
			ID:           fmt.Sprintf("s%d", i),
			RateBps:      rates[rng.Intn(len(rates))],
			PayloadBytes: payloads[rng.Intn(len(payloads))],
			Saturated:    rng.Float64() < 0.85,
		}
	}
	if n > 0 {
		ss[0].Saturated = true
	}
	return ss
}

// TestDCFDifferential drives the event engine and the slot-stepped
// oracle across randomized seeds and topologies — including hidden
// terminals — and requires identical results: the same goodput floats,
// attempts, collisions, drops, and busy airtime.
func TestDCFDifferential(t *testing.T) {
	for c := 0; c < 12; c++ {
		rng := rand.New(rand.NewSource(int64(1000 + c)))
		n := 1 + rng.Intn(12)
		cfg := DCFConfig{
			Stations: randomStations(rng, n),
			Sense:    randomSense(rng, n, c%4),
			Seed:     int64(c * 31),
		}
		want := simulateDCFRef(cfg, 0.25)
		got := SimulateDCF(cfg, 0.25)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d (n=%d, sense mode %d): engine diverged from oracle\n got %+v\nwant %+v",
				c, n, c%4, got, want)
		}
	}
}

// TestCoexDifferential does the same for mixed WiFi + LTE-U + LBT
// domains against the slot-stepped coexistence reference.
func TestCoexDifferential(t *testing.T) {
	for c := 0; c < 10; c++ {
		rng := rand.New(rand.NewSource(int64(7000 + c)))
		nW := 1 + rng.Intn(6)
		cfg := CoexConfig{
			WiFi: randomStations(rng, nW),
			Seed: int64(c * 17),
		}
		// 1–2 LTE nodes of random kinds and timing.
		nL := 1 + rng.Intn(2)
		for k := 0; k < nL; k++ {
			nd := LTENode{ID: fmt.Sprintf("lte%d", k), RateBps: 36e6}
			if rng.Intn(2) == 0 {
				nd.Kind = LTEUDuty
				nd.OnMs = 5 + rng.Float64()*20
				nd.PeriodMs = nd.OnMs + rng.Float64()*30
				nd.OffsetMs = rng.Float64() * 10
			} else {
				nd.Kind = LTELBT
				nd.TXOPMs = 1 + rng.Float64()*7
				nd.CW = []int{15, 31, 63}[rng.Intn(3)]
			}
			cfg.LTE = append(cfg.LTE, nd)
		}
		cfg.Sense = randomSense(rng, nW+nL, c%4)
		want := simulateCoexRef(cfg, 0.25)
		got := SimulateCoex(cfg, 0.25)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d (nW=%d nL=%d, sense mode %d): engine diverged from reference\n got %+v\nwant %+v",
				c, nW, nL, c%4, got, want)
		}
	}
}

// TestDCFEngineSpeedup holds the tentpole's perf bar: the event engine
// must be ≥ 20× faster than the slot-stepped oracle on a 32-station
// 10-second saturated domain.
func TestDCFEngineSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("timing test is meaningless under the race detector")
	}
	cfg := DCFConfig{Stations: benchDCFStations(32), Seed: 5}
	const seconds = 10.0

	start := time.Now()
	want := simulateDCFRef(cfg, seconds)
	refDur := time.Since(start)

	eng := newCoexEngine(CoexConfig{WiFi: cfg.Stations, Seed: cfg.Seed}, seconds)
	// Warm run outside the timed region; timed runs reuse the engine
	// the way sweeps do.
	eng.run()
	const reps = 3
	start = time.Now()
	for r := 0; r < reps; r++ {
		eng.reset()
		eng.run()
	}
	engDur := time.Since(start) / reps

	got := SimulateDCF(cfg, seconds)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("speedup config diverged: got %+v want %+v", got, want)
	}
	speedup := float64(refDur) / float64(engDur)
	t.Logf("oracle %v, engine %v, speedup %.1fx", refDur, engDur, speedup)
	if speedup < 20 {
		t.Errorf("engine only %.1fx faster than oracle, want ≥ 20x", speedup)
	}
}

// TestDCFEngineZeroAlloc pins the event loop at zero heap allocations
// per run once the engine is constructed.
func TestDCFEngineZeroAlloc(t *testing.T) {
	stations := benchDCFStations(32)
	sense := randomSense(rand.New(rand.NewSource(3)), 32, 2)
	eng := newCoexEngine(CoexConfig{WiFi: stations, Sense: sense, Seed: 7}, 1.0)
	allocs := testing.AllocsPerRun(5, func() {
		eng.reset()
		eng.run()
	})
	if allocs != 0 {
		t.Errorf("event loop allocates %.1f/op, want 0", allocs)
	}
	coex := newCoexEngine(CoexConfig{
		WiFi: benchDCFStations(8),
		LTE: []LTENode{
			{ID: "duty", Kind: LTEUDuty, RateBps: 36e6, OnMs: 20, PeriodMs: 40},
			{ID: "lbt", Kind: LTELBT, RateBps: 36e6, TXOPMs: 4, CW: 31},
		},
		Seed: 7,
	}, 1.0)
	allocs = testing.AllocsPerRun(5, func() {
		coex.reset()
		coex.run()
	})
	if allocs != 0 {
		t.Errorf("coex event loop allocates %.1f/op, want 0", allocs)
	}
}
