package phy

import (
	"math"
	"testing"

	"dlte/internal/metrics"
)

func TestNumPRB(t *testing.T) {
	cases := map[float64]int{1.4: 6, 3: 15, 5: 25, 10: 50, 15: 75, 20: 100}
	for mhz, want := range cases {
		if got := NumPRB(mhz); got != want {
			t.Errorf("NumPRB(%v) = %d, want %d", mhz, got, want)
		}
	}
}

func TestLTECellSingleUserPeakRate(t *testing.T) {
	// One perfect-channel user gets the whole grid: 50 PRB × 180 kHz ×
	// 5.5547 b/s/Hz × 0.75 ≈ 37.5 Mbps.
	res := SimulateLTECell(LTECellConfig{ChannelMHz: 10}, []LTEUser{{ID: "u", SINRdB: 30}}, 200)
	want := 50 * PRBBandwidthHz * 5.5547 * LTEOverhead
	if math.Abs(res.PerUserBps["u"]-want)/want > 0.01 {
		t.Errorf("peak rate = %v, want ≈%v", res.PerUserBps["u"], want)
	}
	if res.ScheduledTTIs != 200 {
		t.Errorf("ScheduledTTIs = %d", res.ScheduledTTIs)
	}
}

func TestLTECellDeadUserGetsNothing(t *testing.T) {
	res := SimulateLTECell(LTECellConfig{ChannelMHz: 10},
		[]LTEUser{{ID: "alive", SINRdB: 20}, {ID: "dead", SINRdB: -20}}, 100)
	if res.PerUserBps["dead"] != 0 {
		t.Errorf("dead user got %v bps", res.PerUserBps["dead"])
	}
	if res.PerUserBps["alive"] <= 0 {
		t.Error("alive user starved")
	}
}

func TestLTECellHARQExtendsCoverage(t *testing.T) {
	users := []LTEUser{{ID: "edge", SINRdB: -9}}
	off := SimulateLTECell(LTECellConfig{ChannelMHz: 10, HARQ: false}, users, 100)
	on := SimulateLTECell(LTECellConfig{ChannelMHz: 10, HARQ: true}, users, 100)
	if off.PerUserBps["edge"] != 0 {
		t.Errorf("edge user alive without HARQ: %v", off.PerUserBps["edge"])
	}
	if on.PerUserBps["edge"] <= 0 {
		t.Error("edge user dead with HARQ")
	}
}

func TestLTERoundRobinEqualAirtime(t *testing.T) {
	// Equal channels → equal throughput under round robin.
	users := []LTEUser{{ID: "a", SINRdB: 15}, {ID: "b", SINRdB: 15}, {ID: "c", SINRdB: 15}}
	res := SimulateLTECell(LTECellConfig{ChannelMHz: 10, Scheduler: &RoundRobin{}}, users, 300)
	var vals []float64
	for _, v := range res.PerUserBps {
		vals = append(vals, v)
	}
	if j := metrics.JainIndex(vals); j < 0.999 {
		t.Errorf("round robin fairness = %v", j)
	}
}

func TestLTERoundRobinUnequalChannels(t *testing.T) {
	// Round robin shares PRBs equally, so throughputs track channel
	// quality (unlike equal-throughput schedulers).
	users := []LTEUser{{ID: "near", SINRdB: 25}, {ID: "far", SINRdB: 0}}
	res := SimulateLTECell(LTECellConfig{ChannelMHz: 10, Scheduler: &RoundRobin{}}, users, 300)
	if res.PerUserBps["near"] <= res.PerUserBps["far"]*2 {
		t.Errorf("near %v vs far %v: expected large gap", res.PerUserBps["near"], res.PerUserBps["far"])
	}
}

func TestLTEProportionalFairBalancesAirtime(t *testing.T) {
	users := []LTEUser{{ID: "near", SINRdB: 25}, {ID: "far", SINRdB: 2}}
	res := SimulateLTECell(LTECellConfig{ChannelMHz: 10, Scheduler: ProportionalFair{}, FastFading: true, Seed: 1}, users, 500)
	// PF gives comparable airtime: far user gets nonzero but lower
	// throughput; near user must not monopolize.
	if res.PerUserBps["far"] <= 0 {
		t.Fatal("PF starved the far user")
	}
	ratio := res.PerUserBps["near"] / res.PerUserBps["far"]
	effRatio := 5.5547 / 0.8770 // CQI15 vs CQI5 efficiency ≈ 6.3
	if ratio < 2 || ratio > effRatio*2 {
		t.Errorf("PF throughput ratio = %v, want within [2, %v]", ratio, effRatio*2)
	}
}

func TestLTEMaxRateStarves(t *testing.T) {
	users := []LTEUser{{ID: "near", SINRdB: 25}, {ID: "far", SINRdB: 5}}
	res := SimulateLTECell(LTECellConfig{ChannelMHz: 10, Scheduler: MaxRate{}}, users, 200)
	if res.PerUserBps["far"] != 0 {
		t.Errorf("max-rate gave far user %v", res.PerUserBps["far"])
	}
	// And MaxRate total ≥ PF total (it is the throughput bound).
	pf := SimulateLTECell(LTECellConfig{ChannelMHz: 10, Scheduler: ProportionalFair{}}, users, 200)
	if res.TotalBps < pf.TotalBps-1 {
		t.Errorf("max-rate total %v < PF total %v", res.TotalBps, pf.TotalBps)
	}
}

func TestLTEDemandCap(t *testing.T) {
	users := []LTEUser{{ID: "capped", SINRdB: 25, DemandBps: 1e6}, {ID: "bulk", SINRdB: 25}}
	res := SimulateLTECell(LTECellConfig{ChannelMHz: 10, Scheduler: ProportionalFair{}}, users, 500)
	if res.PerUserBps["capped"] > 1.05e6 {
		t.Errorf("capped user exceeded demand: %v", res.PerUserBps["capped"])
	}
	// The bulk user absorbs the remaining capacity.
	if res.PerUserBps["bulk"] < 10e6 {
		t.Errorf("bulk user got only %v", res.PerUserBps["bulk"])
	}
}

func TestLTEShareFraction(t *testing.T) {
	users := []LTEUser{{ID: "u", SINRdB: 20}}
	full := SimulateLTECell(LTECellConfig{ChannelMHz: 10}, users, 1000)
	half := SimulateLTECell(LTECellConfig{ChannelMHz: 10, ShareFraction: 0.5}, users, 1000)
	ratio := half.PerUserBps["u"] / full.PerUserBps["u"]
	if math.Abs(ratio-0.5) > 0.05 {
		t.Errorf("half share delivered %.3f of full, want ≈0.5", ratio)
	}
	if half.ScheduledTTIs < 450 || half.ScheduledTTIs > 550 {
		t.Errorf("half share owned %d of 1000 TTIs", half.ScheduledTTIs)
	}
}

func TestLTESchedulerNames(t *testing.T) {
	if (&RoundRobin{}).Name() == "" || (ProportionalFair{}).Name() == "" || (MaxRate{}).Name() == "" {
		t.Error("schedulers must have names")
	}
}

func TestLTEEmptyCell(t *testing.T) {
	res := SimulateLTECell(LTECellConfig{ChannelMHz: 10}, nil, 100)
	if res.TotalBps != 0 || len(res.PerUserBps) != 0 {
		t.Errorf("empty cell produced traffic: %+v", res)
	}
	// Round robin with no users must not spin forever.
	res = SimulateLTECell(LTECellConfig{ChannelMHz: 10, Scheduler: &RoundRobin{}}, nil, 100)
	if res.TotalBps != 0 {
		t.Error("round robin empty cell produced traffic")
	}
}

func TestDCFSingleStationEfficiency(t *testing.T) {
	res := SimulateDCF(DCFConfig{
		Stations: []DCFStation{{ID: "s", RateBps: 54e6, Saturated: true}},
		Seed:     1,
	}, 1.0)
	// One saturated station: goodput well above half the PHY rate,
	// below the PHY rate.
	if res.PerStationBps["s"] < 25e6 || res.PerStationBps["s"] > 54e6 {
		t.Errorf("single-station goodput = %v", res.PerStationBps["s"])
	}
	if res.Collisions != 0 {
		t.Errorf("single station collided %d times", res.Collisions)
	}
	if res.BusyAirtimeFraction < 0.7 {
		t.Errorf("saturated station busy fraction = %v", res.BusyAirtimeFraction)
	}
}

func TestDCFContentionOverhead(t *testing.T) {
	mk := func(n int) []DCFStation {
		var ss []DCFStation
		for i := 0; i < n; i++ {
			ss = append(ss, DCFStation{ID: string(rune('a' + i)), RateBps: 54e6, Saturated: true})
		}
		return ss
	}
	one := SimulateDCF(DCFConfig{Stations: mk(1), Seed: 1}, 1.0)
	eight := SimulateDCF(DCFConfig{Stations: mk(8), Seed: 1}, 1.0)
	// Aggregate throughput degrades under contention (collisions +
	// backoff) relative to a single transmitter.
	if eight.TotalBps >= one.TotalBps {
		t.Errorf("8 stations total %v ≥ 1 station %v", eight.TotalBps, one.TotalBps)
	}
	if eight.Collisions == 0 {
		t.Error("8 saturated stations never collided")
	}
	// But fairness across equal stations stays high.
	var vals []float64
	for _, v := range eight.PerStationBps {
		vals = append(vals, v)
	}
	if j := metrics.JainIndex(vals); j < 0.9 {
		t.Errorf("DCF fairness across equals = %v", j)
	}
}

func TestDCFHiddenTerminalCollapse(t *testing.T) {
	// Two stations that cannot sense each other: throughput collapses
	// versus the same pair with carrier sense.
	stations := []DCFStation{
		{ID: "a", RateBps: 24e6, Saturated: true},
		{ID: "b", RateBps: 24e6, Saturated: true},
	}
	visible := SimulateDCF(DCFConfig{Stations: stations, Seed: 2}, 1.0)
	hiddenSense := [][]bool{{true, false}, {false, true}} // self only
	hidden := SimulateDCF(DCFConfig{Stations: stations, Sense: hiddenSense, Seed: 2}, 1.0)
	if hidden.TotalBps > visible.TotalBps*0.65 {
		t.Errorf("hidden pair %v vs visible pair %v: expected collapse", hidden.TotalBps, visible.TotalBps)
	}
	// Hidden stations collide roughly 5× more often than sensing ones.
	if hidden.CollisionRate < 0.4 {
		t.Errorf("hidden collision rate = %v, want > 0.4", hidden.CollisionRate)
	}
	if visible.CollisionRate > hidden.CollisionRate/2 {
		t.Errorf("visible collision rate %v not ≪ hidden %v", visible.CollisionRate, hidden.CollisionRate)
	}
}

// TestDCFHiddenPairCollapse is the hidden-terminal regression the
// registry story rests on: two mutually-unsensing saturated stations
// whose frames (12 Mbps, 12 kB aggregates — ~8 ms on air, longer than
// any backoff the 1023-slot CW can draw) always overlap. Collision rate
// goes to ~1 and AP goodput to ~0; the same pair with carrier sense is
// fine.
func TestDCFHiddenPairCollapse(t *testing.T) {
	stations := []DCFStation{
		{ID: "a", RateBps: 12e6, PayloadBytes: 12000, Saturated: true},
		{ID: "b", RateBps: 12e6, PayloadBytes: 12000, Saturated: true},
	}
	hidden := SimulateDCF(DCFConfig{
		Stations: stations,
		Sense:    [][]bool{{true, false}, {false, true}},
		Seed:     2,
	}, 1.0)
	sensing := SimulateDCF(DCFConfig{Stations: stations, Seed: 2}, 1.0)

	if hidden.CollisionRate < 0.95 {
		t.Errorf("hidden pair collision rate = %.3f, want ≈1", hidden.CollisionRate)
	}
	if hidden.TotalBps > 0.02*sensing.TotalBps {
		t.Errorf("hidden pair goodput %.0f not ≈0 (sensing pair %.0f)", hidden.TotalBps, sensing.TotalBps)
	}
	if sensing.CollisionRate > 0.3 {
		t.Errorf("sensing pair collision rate = %.3f, want low", sensing.CollisionRate)
	}
	if sensing.TotalBps < 5e6 {
		t.Errorf("sensing pair goodput = %.0f, want healthy", sensing.TotalBps)
	}
}

// TestDCFDropAccounting pins the retry-limit bookkeeping: a frame that
// collides more than dcfRetryLimit times in a row is dropped and
// counted, not silently recycled. Every drop costs retryLimit+1
// collided attempts, and attempts reconcile with successes, collisions,
// and at most one in-flight frame per station.
func TestDCFDropAccounting(t *testing.T) {
	clean := SimulateDCF(DCFConfig{
		Stations: []DCFStation{{ID: "s", RateBps: 54e6, Saturated: true}},
		Seed:     1,
	}, 1.0)
	if clean.Drops != 0 {
		t.Errorf("lone station dropped %d frames", clean.Drops)
	}

	stations := []DCFStation{
		{ID: "a", RateBps: 24e6, Saturated: true},
		{ID: "b", RateBps: 24e6, Saturated: true},
	}
	hidden := SimulateDCF(DCFConfig{
		Stations: stations,
		Sense:    [][]bool{{true, false}, {false, true}},
		Seed:     2,
	}, 1.0)
	if hidden.Drops == 0 {
		t.Fatal("hidden saturated pair never exhausted the retry limit")
	}
	if hidden.Drops*(dcfRetryLimit+1) > hidden.Collisions {
		t.Errorf("%d drops need ≥ %d collisions, have %d",
			hidden.Drops, hidden.Drops*(dcfRetryLimit+1), hidden.Collisions)
	}
	successes := 0
	for _, bps := range hidden.PerStationBps {
		successes += int(bps / (1500 * 8)) // 1 s of default-payload frames
	}
	inFlight := hidden.Attempts - hidden.Collisions - successes
	if inFlight < 0 || inFlight > len(stations) {
		t.Errorf("attempts %d, collisions %d, successes %d: %d unaccounted",
			hidden.Attempts, hidden.Collisions, successes, inFlight)
	}
}

func TestDCFDeterministic(t *testing.T) {
	cfg := DCFConfig{
		Stations: []DCFStation{
			{ID: "a", RateBps: 24e6, Saturated: true},
			{ID: "b", RateBps: 12e6, Saturated: true},
		},
		Seed: 9,
	}
	r1 := SimulateDCF(cfg, 0.5)
	r2 := SimulateDCF(cfg, 0.5)
	if r1.TotalBps != r2.TotalBps || r1.Collisions != r2.Collisions {
		t.Errorf("DCF not deterministic: %+v vs %+v", r1, r2)
	}
}

func TestDCFUnsaturatedStationSilent(t *testing.T) {
	res := SimulateDCF(DCFConfig{
		Stations: []DCFStation{
			{ID: "on", RateBps: 24e6, Saturated: true},
			{ID: "off", RateBps: 24e6, Saturated: false},
		},
		Seed: 3,
	}, 0.5)
	if res.PerStationBps["off"] != 0 {
		t.Errorf("idle station transmitted: %v", res.PerStationBps["off"])
	}
	if res.PerStationBps["on"] <= 0 {
		t.Error("active station starved")
	}
}

func TestTDMNoCollisionsAndFairness(t *testing.T) {
	shares := []TDMShare{
		{ID: "ap1", RateBps: 20e6},
		{ID: "ap2", RateBps: 20e6},
	}
	res := SimulateTDM(shares)
	want := 0.5 * 20e6 * (1 - TDMGuardOverhead)
	for _, id := range []string{"ap1", "ap2"} {
		if math.Abs(res.PerStationBps[id]-want) > 1 {
			t.Errorf("%s = %v, want %v", id, res.PerStationBps[id], want)
		}
		if math.Abs(res.AirtimeFraction[id]-0.5) > 1e-9 {
			t.Errorf("%s airtime = %v", id, res.AirtimeFraction[id])
		}
	}
}

func TestTDMWeights(t *testing.T) {
	res := SimulateTDM([]TDMShare{
		{ID: "big", Weight: 3, RateBps: 10e6},
		{ID: "small", Weight: 1, RateBps: 10e6},
	})
	if math.Abs(res.AirtimeFraction["big"]-0.75) > 1e-9 {
		t.Errorf("weighted airtime = %v", res.AirtimeFraction["big"])
	}
	if res.PerStationBps["big"] <= res.PerStationBps["small"]*2.9 {
		t.Errorf("weights not honored: %v vs %v", res.PerStationBps["big"], res.PerStationBps["small"])
	}
}

func TestTDMEmpty(t *testing.T) {
	res := SimulateTDM(nil)
	if res.TotalBps != 0 {
		t.Errorf("empty TDM total = %v", res.TotalBps)
	}
}

func TestTDMBeatsContendedDCF(t *testing.T) {
	// The paper's efficiency claim: explicit coordination beats CSMA
	// under contention at equal fairness. 6 transmitters at 24 Mbps.
	var dcfStations []DCFStation
	var tdmShares []TDMShare
	for i := 0; i < 6; i++ {
		id := string(rune('a' + i))
		dcfStations = append(dcfStations, DCFStation{ID: id, RateBps: 24e6, Saturated: true})
		tdmShares = append(tdmShares, TDMShare{ID: id, RateBps: 24e6 * WiFiLikeMACFactor})
	}
	dcf := SimulateDCF(DCFConfig{Stations: dcfStations, Seed: 4}, 1.0)
	tdm := SimulateTDM(tdmShares)
	if tdm.TotalBps <= dcf.TotalBps {
		t.Errorf("TDM %v ≤ DCF %v under 6-way contention", tdm.TotalBps, dcf.TotalBps)
	}
	var dcfVals, tdmVals []float64
	for _, v := range dcf.PerStationBps {
		dcfVals = append(dcfVals, v)
	}
	for _, v := range tdm.PerStationBps {
		tdmVals = append(tdmVals, v)
	}
	if metrics.JainIndex(tdmVals) < metrics.JainIndex(dcfVals)-0.02 {
		t.Errorf("TDM fairness %v below DCF %v", metrics.JainIndex(tdmVals), metrics.JainIndex(dcfVals))
	}
}

func TestMultiCellModeString(t *testing.T) {
	if Uncoordinated.String() != "uncoordinated" || FairShare.String() != "fair-share" ||
		Cooperative.String() != "cooperative" || MultiCellMode(99).String() != "unknown" {
		t.Error("mode names wrong")
	}
}

// twoCellScenario builds a canonical 2-cell topology: each cell has
// clients near it; interference halves effective SINR; one cell is
// overloaded so cooperation has something to win.
func twoCellScenario() []MultiUser {
	var users []MultiUser
	// 6 users homed on cell 0 (overloaded), 1 on cell 1.
	for i := 0; i < 6; i++ {
		users = append(users, MultiUser{
			ID:             "a" + string(rune('0'+i)),
			SINRInterfered: []float64{6, -3},
			SINROrthogonal: []float64{18, 9},
			Home:           0,
		})
	}
	users = append(users, MultiUser{
		ID:             "b0",
		SINRInterfered: []float64{-3, 6},
		SINROrthogonal: []float64{9, 18},
		Home:           1,
	})
	return users
}

func TestMultiCellOrthogonalBeatsInterference(t *testing.T) {
	users := twoCellScenario()
	cfg := MultiCellConfig{NumCells: 2, ChannelMHz: 10, TTIs: 400, HARQ: true, Seed: 1}

	cfg.Mode = Uncoordinated
	un := SimulateMultiCell(cfg, users)
	cfg.Mode = FairShare
	fair := SimulateMultiCell(cfg, users)

	// Orthogonal sharing halves airtime but more than recovers it in
	// spectral efficiency when interference is severe: total goes up.
	if fair.TotalBps <= un.TotalBps {
		t.Errorf("fair-share total %v ≤ uncoordinated %v", fair.TotalBps, un.TotalBps)
	}
	if un.Handovers != 0 || fair.Handovers != 0 {
		t.Error("non-cooperative modes performed handovers")
	}
}

func TestMultiCellCooperativeWins(t *testing.T) {
	users := twoCellScenario()
	cfg := MultiCellConfig{NumCells: 2, ChannelMHz: 10, TTIs: 400, HARQ: true, Seed: 1}

	cfg.Mode = FairShare
	fair := SimulateMultiCell(cfg, users)
	cfg.Mode = Cooperative
	coop := SimulateMultiCell(cfg, users)

	// Cooperation load-balances: some users of the overloaded AP are
	// served by the idle neighbor, and aggregate throughput rises.
	if coop.Handovers == 0 {
		t.Error("cooperative mode made no cross-AP assignments")
	}
	if coop.TotalBps <= fair.TotalBps {
		t.Errorf("cooperative %v ≤ fair-share %v", coop.TotalBps, fair.TotalBps)
	}
	// Shares are load-proportional and sum to ≈1.
	sum := 0.0
	for _, s := range coop.CellShare {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("cooperative shares sum to %v", sum)
	}
}

func TestMultiCellEmpty(t *testing.T) {
	res := SimulateMultiCell(MultiCellConfig{}, nil)
	if res.TotalBps != 0 {
		t.Error("empty multicell produced traffic")
	}
}

func TestFastFadeDeterministic(t *testing.T) {
	a := fastFadeDB(1, "u", 7)
	b := fastFadeDB(1, "u", 7)
	if a != b {
		t.Error("fastFade not deterministic")
	}
	if fastFadeDB(1, "u", 7) == fastFadeDB(1, "u", 8) &&
		fastFadeDB(1, "u", 8) == fastFadeDB(1, "u", 9) {
		t.Error("fastFade constant across TTIs")
	}
	if math.Abs(a) > 4 {
		t.Errorf("fade %v outside ±4 dB", a)
	}
}
