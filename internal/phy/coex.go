package phy

// Unlicensed-band coexistence: LTE transmitters sharing one channel
// with DCF WiFi. Two uncoordinated access modes from the related work
// are modeled — duty-cycled LTE-U (CSAT-style blind on/off bursts that
// ignore the medium) and licensed-assisted listen-before-talk (a
// CSMA-like category-4 access with a fixed contention window and a
// bounded TXOP) — and run through the same event-driven engine as the
// WiFi stations (DESIGN.md §13). Registry-coordinated TDM, the dLTE
// alternative, needs no contention engine at all: see SimulateTDM and
// spectrum.PlanTDM.

// LTEKind selects the channel-access behaviour of an LTENode.
type LTEKind int

const (
	// LTEUDuty transmits blind periodic bursts: on for OnMs out of
	// every PeriodMs, regardless of what the medium carries. WiFi
	// frames overlapping a burst are lost whole; the burst loses only
	// the overlapped subframes.
	LTEUDuty LTEKind = iota
	// LTELBT carrier-senses like a WiFi station: it draws a backoff
	// from a fixed contention window [0, CW], freezes while the medium
	// is busy, and on expiry holds the channel for one TXOP.
	LTELBT
)

// LTENode is one LTE transmitter sharing the channel.
type LTENode struct {
	// ID labels the node in results.
	ID string
	// Kind selects duty-cycled LTE-U or listen-before-talk access.
	Kind LTEKind
	// RateBps is the PHY rate the node sustains while transmitting
	// cleanly.
	RateBps float64

	// OnMs and PeriodMs shape the LTEUDuty cycle (defaults 20/40).
	// OffsetMs delays the first burst, staggering neighbours.
	OnMs, PeriodMs, OffsetMs float64

	// TXOPMs is the LTELBT burst length (default 4). CW is the fixed
	// contention window (default dcfCWMin).
	TXOPMs float64
	CW     int
}

// CoexConfig describes one shared-channel contention domain holding
// WiFi stations and LTE nodes. The combined node index space is WiFi
// stations first (in order), then LTE nodes; Sense is indexed over that
// combined space. Nil Sense means everyone senses everyone — except
// duty-cycled LTE-U bursts, which carry no WiFi-detectable preamble and
// sit below the energy-detection threshold, so by default no carrier
// sensor defers to them (the blind-both-ways CSAT asymmetry the LTE-U
// coexistence papers measure). Pass an explicit matrix to override.
type CoexConfig struct {
	WiFi  []DCFStation
	LTE   []LTENode
	Sense [][]bool
	Seed  int64
}

// CoexResult reports a shared-channel simulation outcome.
type CoexResult struct {
	// PerNodeBps is goodput per transmitter (stations and LTE nodes).
	PerNodeBps map[string]float64
	// WiFiBps and LTEBps aggregate goodput per technology.
	WiFiBps, LTEBps float64
	// WiFiAttempts/Collisions/Drops aggregate the stations' DCF
	// counters; WiFiCollisionRate is their ratio.
	WiFiAttempts, WiFiCollisions, WiFiDrops int
	WiFiCollisionRate                       float64
	// LTEAirtimeFraction is the fraction of time LTE bursts occupied;
	// LTECorruptFraction is the fraction of that burst airtime that
	// overlapped another transmission and carried nothing.
	LTEAirtimeFraction, LTECorruptFraction float64
	// BusyAirtimeFraction is the fraction of time the medium carried
	// at least one transmission of either technology.
	BusyAirtimeFraction float64
}

// SimulateCoex runs WiFi stations and LTE nodes on one shared channel
// for the given number of seconds of virtual time. With no LTE nodes it
// degenerates to SimulateDCF's contention process exactly.
func SimulateCoex(cfg CoexConfig, seconds float64) CoexResult {
	eng := newCoexEngine(cfg, seconds)
	eng.run()

	nw := len(cfg.WiFi)
	res := CoexResult{PerNodeBps: make(map[string]float64, eng.n)}
	for i, st := range cfg.WiFi {
		bps := eng.delivered[i] / seconds
		res.PerNodeBps[st.ID] = bps
		res.WiFiBps += bps
		res.WiFiAttempts += eng.attempts[i]
		res.WiFiCollisions += eng.collisions[i]
		res.WiFiDrops += eng.drops[i]
	}
	for k, nd := range cfg.LTE {
		bps := eng.delivered[nw+k] / seconds
		res.PerNodeBps[nd.ID] = bps
		res.LTEBps += bps
	}
	if res.WiFiAttempts > 0 {
		res.WiFiCollisionRate = float64(res.WiFiCollisions) / float64(res.WiFiAttempts)
	}
	if eng.totalSlots > 0 {
		res.LTEAirtimeFraction = float64(eng.lteBurstSlots) / float64(eng.totalSlots)
		res.BusyAirtimeFraction = float64(eng.busySlots) / float64(eng.totalSlots)
	}
	if eng.lteBurstSlots > 0 {
		res.LTECorruptFraction = float64(eng.lteCorruptSlots) / float64(eng.lteBurstSlots)
	}
	return res
}
