package phy

import (
	"fmt"
	"testing"
)

// benchDCFStations builds n saturated stations with the mixed-rate
// population E12 uses (the DCF rate-anomaly mix).
func benchDCFStations(n int) []DCFStation {
	rates := []float64{54e6, 24e6, 12e6}
	ss := make([]DCFStation, n)
	for i := range ss {
		ss[i] = DCFStation{
			ID:        fmt.Sprintf("s%d", i),
			RateBps:   rates[i%len(rates)],
			Saturated: true,
		}
	}
	return ss
}

// BenchmarkDCF prices one simulated second of saturated contention in
// the event-driven engine at the gate sizes (32 and 256 stations). The
// loop reuses one engine the way parameter sweeps do, so allocs/op is
// pinned at 0.
func BenchmarkDCF(b *testing.B) {
	for _, n := range []int{32, 256} {
		b.Run(fmt.Sprint(n), func(b *testing.B) {
			eng := newCoexEngine(CoexConfig{WiFi: benchDCFStations(n), Seed: 11}, 1.0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.reset()
				eng.run()
			}
		})
	}
}

// BenchmarkDCFOracle prices the slot-stepped reference on the same
// 32-station second — informational, not gated; the ratio to
// BenchmarkDCF/32 is the tentpole's speedup.
func BenchmarkDCFOracle(b *testing.B) {
	cfg := DCFConfig{Stations: benchDCFStations(32), Seed: 11}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simulateDCFRef(cfg, 1.0)
	}
}

// BenchmarkCoex prices a full E12-style domain: 8 WiFi stations sharing
// the channel with one duty-cycled LTE-U node and one LBT node.
func BenchmarkCoex(b *testing.B) {
	eng := newCoexEngine(CoexConfig{
		WiFi: benchDCFStations(8),
		LTE: []LTENode{
			{ID: "duty", Kind: LTEUDuty, RateBps: 36e6, OnMs: 20, PeriodMs: 40},
			{ID: "lbt", Kind: LTELBT, RateBps: 36e6, TXOPMs: 4, CW: 31},
		},
		Seed: 11,
	}, 1.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.reset()
		eng.run()
	}
}
