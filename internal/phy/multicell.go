package phy

import "dlte/internal/radio"

// MultiCellMode selects how neighboring co-channel cells share the
// medium — the three operating points of the paper's §4.3 story.
type MultiCellMode int

const (
	// Uncoordinated cells transmit whenever they have traffic and
	// interfere with each other, like independent selfish deployments.
	Uncoordinated MultiCellMode = iota
	// FairShare is dLTE's default mode: peers negotiate the bare
	// minimum fair time split over X2, so transmissions are orthogonal
	// but the split ignores load.
	FairShare
	// Cooperative is dLTE's opt-in mode: peers jointly assign each
	// client to the best AP and size airtime shares by load.
	Cooperative
)

// String names the mode for experiment tables.
func (m MultiCellMode) String() string {
	switch m {
	case Uncoordinated:
		return "uncoordinated"
	case FairShare:
		return "fair-share"
	case Cooperative:
		return "cooperative"
	default:
		return "unknown"
	}
}

// MultiUser is a client in a multi-cell scenario. SINR values are
// supplied by the caller (computed from radio geometry) for the two
// interference regimes the modes create.
type MultiUser struct {
	// ID labels the user.
	ID string
	// DemandBps caps useful throughput (0 = full buffer).
	DemandBps float64
	// SINRInterfered[c] is the user's SINR toward cell c while all
	// other cells transmit concurrently (uncoordinated mode).
	SINRInterfered []float64
	// SINROrthogonal[c] is the user's SINR toward cell c when
	// transmissions are time-orthogonal (fair-share / cooperative).
	SINROrthogonal []float64
	// Home, if ≥ 0, pins the user to a cell (its subscription AP) in
	// modes without cooperative reassignment; -1 lets the user attach
	// to the strongest signal.
	Home int
}

// MultiCellConfig configures a co-channel multi-cell simulation.
type MultiCellConfig struct {
	// NumCells is the number of co-channel cells.
	NumCells int
	// ChannelMHz is each cell's channel width.
	ChannelMHz float64
	// Mode selects the sharing regime.
	Mode MultiCellMode
	// TTIs is the simulation length per cell.
	TTIs int
	// HARQ and FastFading are passed through to the cell simulations.
	HARQ, FastFading bool
	// Seed drives fading.
	Seed int64
}

// MultiCellResult reports the outcome across all cells.
type MultiCellResult struct {
	// PerUserBps maps user ID to delivered throughput.
	PerUserBps map[string]float64
	// TotalBps is the aggregate across cells.
	TotalBps float64
	// Assignment maps user ID to the serving cell index.
	Assignment map[string]int
	// CellShare is each cell's airtime fraction.
	CellShare []float64
	// Handovers counts users served by a cell other than Home — the
	// cross-AP assignments only cooperative mode can make.
	Handovers int
}

// SimulateMultiCell runs the selected sharing mode and reports per-user
// throughput. It reproduces the E5 comparison: uncoordinated cells
// suffer inter-cell interference, fair-share trades peak rate for
// orthogonality, cooperative additionally load-balances clients.
func SimulateMultiCell(cfg MultiCellConfig, users []MultiUser) MultiCellResult {
	res := MultiCellResult{
		PerUserBps: make(map[string]float64, len(users)),
		Assignment: make(map[string]int, len(users)),
		CellShare:  make([]float64, cfg.NumCells),
	}
	if cfg.NumCells == 0 {
		return res
	}

	sinrFor := func(u MultiUser, c int) float64 {
		if cfg.Mode == Uncoordinated {
			return u.SINRInterfered[c]
		}
		return u.SINROrthogonal[c]
	}

	// Client-to-cell assignment.
	assign := make([]int, len(users))
	switch cfg.Mode {
	case Cooperative:
		// Greedy joint assignment: order-independent enough for the
		// experiment — each user picks the cell maximizing its expected
		// rate discounted by current load.
		load := make([]int, cfg.NumCells)
		for i, u := range users {
			best, bestVal := 0, -1.0
			for c := 0; c < cfg.NumCells; c++ {
				eff, _ := radio.LTEEfficiency(u.SINROrthogonal[c], cfg.HARQ)
				val := eff / float64(load[c]+1)
				if val > bestVal {
					bestVal = val
					best = c
				}
			}
			assign[i] = best
			load[best]++
		}
	default:
		// Users stay on their home AP (or strongest signal if roaming
		// is unpinned). Without cooperation there is no cross-AP
		// handoff: a client of AP a cannot be served by AP b.
		for i, u := range users {
			if u.Home >= 0 {
				assign[i] = u.Home
				continue
			}
			best, bestSINR := 0, sinrFor(u, 0)
			for c := 1; c < cfg.NumCells; c++ {
				if s := sinrFor(u, c); s > bestSINR {
					bestSINR = s
					best = c
				}
			}
			assign[i] = best
		}
	}

	// Airtime shares.
	switch cfg.Mode {
	case Uncoordinated:
		for c := range res.CellShare {
			res.CellShare[c] = 1 // everyone transmits always
		}
	case FairShare:
		for c := range res.CellShare {
			res.CellShare[c] = 1 / float64(cfg.NumCells)
		}
	case Cooperative:
		// Load-proportional shares; empty cells cede their airtime.
		counts := make([]int, cfg.NumCells)
		total := 0
		for _, c := range assign {
			counts[c]++
			total++
		}
		for c := range res.CellShare {
			if total > 0 {
				res.CellShare[c] = float64(counts[c]) / float64(total)
			}
		}
	}

	// Per-cell scheduler runs.
	for c := 0; c < cfg.NumCells; c++ {
		var cellUsers []LTEUser
		for i, u := range users {
			if assign[i] != c {
				continue
			}
			cellUsers = append(cellUsers, LTEUser{
				ID:        u.ID,
				SINRdB:    sinrFor(u, c),
				DemandBps: u.DemandBps,
			})
		}
		if len(cellUsers) == 0 {
			continue
		}
		r := SimulateLTECell(LTECellConfig{
			ChannelMHz:    cfg.ChannelMHz,
			Scheduler:     ProportionalFair{},
			HARQ:          cfg.HARQ,
			FastFading:    cfg.FastFading,
			Seed:          cfg.Seed + int64(c),
			ShareFraction: res.CellShare[c],
		}, cellUsers, cfg.TTIs)
		for id, bps := range r.PerUserBps {
			res.PerUserBps[id] = bps
			res.TotalBps += bps
		}
	}
	for i, u := range users {
		res.Assignment[u.ID] = assign[i]
		if u.Home >= 0 && assign[i] != u.Home {
			res.Handovers++
		}
	}
	return res
}
