// Package phy simulates the medium-access behaviour the dLTE paper
// compares (§3.2, §4.3): the LTE downlink resource-grid scheduler (with
// HARQ-extended rates and pluggable scheduling policies, including the
// joint multi-cell scheduling of cooperative mode) and the WiFi DCF
// CSMA/CA contention process (including hidden terminals), plus the
// coordinated TDM sharing that dLTE's fair-share mode negotiates over
// X2.
//
// Simulations are deterministic in their seeds and run in virtual time.
package phy

import (
	"fmt"
	"hash/fnv"
	"math"

	"dlte/internal/radio"
)

// PRBBandwidthHz is the bandwidth of one LTE physical resource block.
const PRBBandwidthHz = 180e3

// LTEOverhead is the fraction of resource elements carrying user data
// after control channels and reference signals.
const LTEOverhead = 0.75

// TTI is the LTE transmission time interval (1 ms) expressed in seconds.
const TTI = 1e-3

// NumPRB reports the number of PRBs in a channel of the given width,
// per 3GPP 36.101 (1.4→6, 3→15, 5→25, 10→50, 15→75, 20→100).
func NumPRB(channelMHz float64) int {
	switch {
	case channelMHz >= 20:
		return 100
	case channelMHz >= 15:
		return 75
	case channelMHz >= 10:
		return 50
	case channelMHz >= 5:
		return 25
	case channelMHz >= 3:
		return 15
	default:
		return 6
	}
}

// LTEUser is one scheduled downlink user.
type LTEUser struct {
	// ID labels the user in results.
	ID string
	// SINRdB is the user's average downlink SINR.
	SINRdB float64
	// DemandBps caps the user's useful throughput (0 = unlimited /
	// full-buffer).
	DemandBps float64
	// Weight scales the user's share under weighted schedulers
	// (0 means 1).
	Weight float64
}

type lteUserState struct {
	LTEUser
	avgRateBps float64 // exponential average for proportional fair
	gotBits    float64
	demandBits float64 // total bits wanted over the run; 0 = unlimited
}

// LTEScheduler allocates the PRBs of one TTI among users.
type LTEScheduler interface {
	// Name identifies the policy in experiment tables.
	Name() string
	// Allocate returns, for each of numPRB resource blocks, the index
	// of the user it is granted to (or -1 for unused). rates[i] is
	// user i's achievable bits per PRB per TTI this interval.
	Allocate(tti int, users []*lteUserState, rates []float64, numPRB int) []int
}

// RoundRobin cycles PRB grants across users irrespective of channel
// state — the simplest fair-airtime policy.
type RoundRobin struct{ next int }

// Name implements LTEScheduler.
func (*RoundRobin) Name() string { return "round-robin" }

// Allocate implements LTEScheduler.
func (s *RoundRobin) Allocate(_ int, users []*lteUserState, rates []float64, numPRB int) []int {
	grants := make([]int, numPRB)
	if len(users) == 0 {
		for i := range grants {
			grants[i] = -1
		}
		return grants
	}
	for i := range grants {
		// Skip users with dead links; they cannot use a grant.
		granted := -1
		for tries := 0; tries < len(users); tries++ {
			cand := s.next % len(users)
			s.next++
			if rates[cand] > 0 && !demandMet(users[cand]) {
				granted = cand
				break
			}
		}
		grants[i] = granted
	}
	return grants
}

// ProportionalFair grants each PRB to the user maximizing
// instantaneous-rate / average-rate, the classic PF metric that
// exploits fast fading while bounding starvation.
type ProportionalFair struct{}

// Name implements LTEScheduler.
func (ProportionalFair) Name() string { return "proportional-fair" }

// Allocate implements LTEScheduler.
func (ProportionalFair) Allocate(_ int, users []*lteUserState, rates []float64, numPRB int) []int {
	grants := make([]int, numPRB)
	for i := range grants {
		best, bestMetric := -1, -1.0
		for u, st := range users {
			if rates[u] <= 0 || demandMet(st) {
				continue
			}
			avg := st.avgRateBps
			if avg < 1 {
				avg = 1
			}
			w := st.Weight
			if w <= 0 {
				w = 1
			}
			metric := w * rates[u] / avg
			if metric > bestMetric {
				bestMetric = metric
				best = u
			}
		}
		grants[i] = best
	}
	return grants
}

// MaxRate grants every PRB to the user with the best channel — maximum
// cell throughput, maximal unfairness. Included as an ablation bound.
type MaxRate struct{}

// Name implements LTEScheduler.
func (MaxRate) Name() string { return "max-rate" }

// Allocate implements LTEScheduler.
func (MaxRate) Allocate(_ int, users []*lteUserState, rates []float64, numPRB int) []int {
	grants := make([]int, numPRB)
	for i := range grants {
		best, bestRate := -1, 0.0
		for u, st := range users {
			if demandMet(st) {
				continue
			}
			if rates[u] > bestRate {
				bestRate = rates[u]
				best = u
			}
		}
		grants[i] = best
	}
	return grants
}

func demandMet(st *lteUserState) bool {
	return st.demandBits > 0 && st.gotBits >= st.demandBits
}

// fastFadeDB returns a deterministic per-(user,TTI) fading deviation in
// dB, a crude block-fading stand-in that gives channel-aware schedulers
// something to exploit.
func fastFadeDB(seed int64, user string, tti int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", seed, user, tti)
	x := h.Sum64()
	u := float64(x%10000)/10000.0 - 0.5 // uniform(-0.5, 0.5)
	return u * 8                        // ±4 dB swing
}

// LTECellConfig configures a single-cell downlink simulation.
type LTECellConfig struct {
	// ChannelMHz sets the grid width (see NumPRB).
	ChannelMHz float64
	// Scheduler is the policy under test; nil means ProportionalFair.
	Scheduler LTEScheduler
	// HARQ enables sub-CQI1 operation (radio.LTEEfficiency).
	HARQ bool
	// FastFading applies deterministic per-TTI channel variation.
	FastFading bool
	// Seed controls the fading process.
	Seed int64
	// ShareFraction scales available airtime, used when a fair-share
	// agreement grants this cell a fraction of the medium (0 = 1.0).
	ShareFraction float64
}

// LTEResult reports a cell simulation outcome.
type LTEResult struct {
	// PerUserBps maps user ID to delivered throughput.
	PerUserBps map[string]float64
	// TotalBps is the cell's aggregate delivered throughput.
	TotalBps float64
	// ScheduledTTIs is the number of TTIs the cell actually owned.
	ScheduledTTIs int
}

// SimulateLTECell runs the downlink scheduler for the given number of
// TTIs and reports per-user throughput.
func SimulateLTECell(cfg LTECellConfig, users []LTEUser, ttis int) LTEResult {
	sched := cfg.Scheduler
	if sched == nil {
		sched = ProportionalFair{}
	}
	share := cfg.ShareFraction
	if share <= 0 || share > 1 {
		share = 1
	}
	numPRB := NumPRB(cfg.ChannelMHz)
	dur := float64(ttis) * TTI
	states := make([]*lteUserState, len(users))
	for i, u := range users {
		states[i] = &lteUserState{LTEUser: u, avgRateBps: 1}
		if u.DemandBps > 0 {
			states[i].demandBits = u.DemandBps * dur
		}
	}
	rates := make([]float64, len(users))
	owned := 0
	// Fair-share airtime: the cell owns floor-distributed TTIs matching
	// its share fraction (the X2-negotiated TDM pattern).
	for tti := 0; tti < ttis; tti++ {
		if share < 1 && math.Mod(float64(tti)*share, 1) >= share {
			continue // not this cell's TTI under the TDM agreement
		}
		owned++
		for i, st := range states {
			sinr := st.SINRdB
			if cfg.FastFading {
				sinr += fastFadeDB(cfg.Seed, st.ID, tti)
			}
			eff, _ := radio.LTEEfficiency(sinr, cfg.HARQ)
			// Achievable rate on one PRB while granted, in bps.
			rates[i] = eff * PRBBandwidthHz * LTEOverhead
		}
		grants := sched.Allocate(tti, states, rates, numPRB)
		perUserBits := make([]float64, len(users))
		for _, u := range grants {
			if u >= 0 {
				perUserBits[u] += rates[u] * TTI // one PRB for one TTI
			}
		}
		for i, st := range states {
			st.gotBits += perUserBits[i]
			// PF exponential average with the conventional 1/100 window.
			st.avgRateBps = 0.99*st.avgRateBps + 0.01*(perUserBits[i]/TTI)
		}
	}
	res := LTEResult{PerUserBps: make(map[string]float64, len(users)), ScheduledTTIs: owned}
	for _, st := range states {
		bps := st.gotBits / dur
		if st.DemandBps > 0 && bps > st.DemandBps {
			bps = st.DemandBps
		}
		res.PerUserBps[st.ID] = bps
		res.TotalBps += bps
	}
	return res
}
