package phy

import (
	"math/rand"
)

// DCF timing constants (802.11n 2.4 GHz OFDM, microseconds). The
// simulation advances in slot ticks; frame and overhead durations are
// rounded up to whole slots.
const (
	dcfSlotUs     = 9
	dcfDIFSUs     = 28
	dcfSIFSUs     = 10
	dcfAckUs      = 44 // ACK at basic rate incl. preamble
	dcfPreambleUs = 20
	dcfCWMin      = 15
	dcfCWMax      = 1023
	dcfRetryLimit = 7
)

// DCFStation is one contending WiFi transmitter, sending to the shared
// access point.
type DCFStation struct {
	// ID labels the station in results.
	ID string
	// RateBps is the PHY rate the station's link supports.
	RateBps float64
	// PayloadBytes per frame (0 = 1500).
	PayloadBytes int
	// Saturated stations always have a frame queued. Unsaturated
	// support is not modeled; the paper's contention claims concern
	// saturation throughput.
	Saturated bool
}

// DCFConfig describes a contention domain around one receiver.
type DCFConfig struct {
	Stations []DCFStation
	// Sense[i][j] reports whether station i can carrier-sense station
	// j's transmissions. Nil means full sensing (no hidden terminals).
	// The matrix need not be symmetric.
	Sense [][]bool
	// Seed drives backoff randomness.
	Seed int64
}

// DCFResult reports a DCF simulation outcome.
type DCFResult struct {
	// PerStationBps is goodput delivered to the AP per station.
	PerStationBps map[string]float64
	// TotalBps is aggregate goodput.
	TotalBps float64
	// Attempts and Collisions count transmission attempts and the
	// attempts that ended corrupted at the AP.
	Attempts, Collisions int
	// CollisionRate is Collisions/Attempts (0 when no attempts).
	CollisionRate float64
	// BusyAirtimeFraction is the fraction of time the AP-observed
	// medium carried at least one transmission.
	BusyAirtimeFraction float64
}

type dcfStationState struct {
	cfg          DCFStation
	backoff      int // remaining backoff slots
	cw           int
	retries      int
	txRemaining  int  // slots left in current transmission
	txCorrupted  bool // another audible-to-AP TX overlapped
	frameSlots   int
	payloadBits  float64
	deliveredBit float64
}

func (s *dcfStationState) newBackoff(rng *rand.Rand) {
	s.backoff = rng.Intn(s.cw + 1)
}

// SimulateDCF runs the slotted CSMA/CA contention process for the given
// number of seconds of virtual time and reports per-station goodput.
// Stations outside each other's sensing range (hidden terminals) count
// their backoff down during each other's transmissions and collide at
// the AP — the failure mode the dLTE registry eliminates (§4.3).
func SimulateDCF(cfg DCFConfig, seconds float64, _ ...struct{}) DCFResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := len(cfg.Stations)
	states := make([]*dcfStationState, n)
	for i, st := range cfg.Stations {
		payload := st.PayloadBytes
		if payload == 0 {
			payload = 1500
		}
		frameUs := dcfPreambleUs + dcfSIFSUs + dcfAckUs + dcfDIFSUs
		if st.RateBps > 0 {
			frameUs += int(float64(payload*8) / st.RateBps * 1e6)
		}
		slots := (frameUs + dcfSlotUs - 1) / dcfSlotUs
		if slots < 1 {
			slots = 1
		}
		s := &dcfStationState{
			cfg:         st,
			cw:          dcfCWMin,
			frameSlots:  slots,
			payloadBits: float64(payload * 8),
		}
		s.newBackoff(rng)
		states[i] = s
	}
	senses := func(i, j int) bool {
		if cfg.Sense == nil {
			return true
		}
		return cfg.Sense[i][j]
	}

	totalSlots := int(seconds * 1e6 / dcfSlotUs)
	attempts, collisions, busySlots := 0, 0, 0
	result := DCFResult{PerStationBps: make(map[string]float64, n)}

	for slot := 0; slot < totalSlots; slot++ {
		// Phase 1: stations with expired backoff and an idle medium (as
		// they sense it at slot start) begin transmitting. Eligibility
		// is computed against slot-start state so that two stations
		// whose backoff expired in the same slot both transmit — the
		// same-slot collision at the heart of CSMA/CA.
		var starting []int
		for i, s := range states {
			if s.txRemaining > 0 || !s.cfg.Saturated || s.backoff > 0 {
				continue
			}
			idle := true
			for j, o := range states {
				if j != i && o.txRemaining > 0 && senses(i, j) {
					idle = false
					break
				}
			}
			if idle {
				starting = append(starting, i)
			}
		}
		for _, i := range starting {
			states[i].txRemaining = states[i].frameSlots
			states[i].txCorrupted = false
			attempts++
		}

		// Phase 2: collision detection at the AP — any overlap of
		// transmissions (the AP hears everyone) corrupts all involved.
		active := 0
		for _, s := range states {
			if s.txRemaining > 0 {
				active++
			}
		}
		if active > 0 {
			busySlots++
		}
		if active > 1 {
			for _, s := range states {
				if s.txRemaining > 0 {
					s.txCorrupted = true
				}
			}
		}

		// Phase 3: advance transmissions and count down backoff for
		// stations that sense an idle medium.
		for i, s := range states {
			if s.txRemaining > 0 {
				s.txRemaining--
				if s.txRemaining == 0 {
					if s.txCorrupted {
						collisions++
						s.retries++
						if s.retries > dcfRetryLimit {
							s.retries = 0
							s.cw = dcfCWMin
						} else if s.cw < dcfCWMax {
							s.cw = min(2*(s.cw+1)-1, dcfCWMax)
						}
					} else {
						s.deliveredBit += s.payloadBits
						s.retries = 0
						s.cw = dcfCWMin
					}
					s.newBackoff(rng)
				}
				continue
			}
			if !s.cfg.Saturated || s.backoff == 0 {
				continue
			}
			idle := true
			for j, o := range states {
				if j != i && o.txRemaining > 0 && senses(i, j) {
					idle = false
					break
				}
			}
			if idle {
				s.backoff--
			}
		}
	}

	for _, s := range states {
		bps := s.deliveredBit / seconds
		result.PerStationBps[s.cfg.ID] = bps
		result.TotalBps += bps
	}
	result.Attempts = attempts
	result.Collisions = collisions
	if attempts > 0 {
		result.CollisionRate = float64(collisions) / float64(attempts)
	}
	if totalSlots > 0 {
		result.BusyAirtimeFraction = float64(busySlots) / float64(totalSlots)
	}
	return result
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
