package phy

// DCF timing constants (802.11n 2.4 GHz OFDM, microseconds). The
// simulation advances in slot ticks; frame and overhead durations are
// rounded up to whole slots.
const (
	dcfSlotUs     = 9
	dcfDIFSUs     = 28
	dcfSIFSUs     = 10
	dcfAckUs      = 44 // ACK at basic rate incl. preamble
	dcfPreambleUs = 20
	dcfCWMin      = 15
	dcfCWMax      = 1023
	dcfRetryLimit = 7
)

// DCFStation is one contending WiFi transmitter, sending to the shared
// access point.
type DCFStation struct {
	// ID labels the station in results.
	ID string
	// RateBps is the PHY rate the station's link supports.
	RateBps float64
	// PayloadBytes per frame (0 = 1500).
	PayloadBytes int
	// Saturated stations always have a frame queued. Unsaturated
	// support is not modeled; the paper's contention claims concern
	// saturation throughput.
	Saturated bool
}

// DCFConfig describes a contention domain around one receiver.
type DCFConfig struct {
	Stations []DCFStation
	// Sense[i][j] reports whether station i can carrier-sense station
	// j's transmissions. Nil means full sensing (no hidden terminals).
	// The matrix need not be symmetric.
	Sense [][]bool
	// Seed drives backoff randomness.
	Seed int64
}

// DCFResult reports a DCF simulation outcome.
type DCFResult struct {
	// PerStationBps is goodput delivered to the AP per station.
	PerStationBps map[string]float64
	// TotalBps is aggregate goodput.
	TotalBps float64
	// Attempts and Collisions count transmission attempts and the
	// attempts that ended corrupted at the AP.
	Attempts, Collisions int
	// Drops counts frames abandoned after exceeding dcfRetryLimit
	// consecutive corrupted attempts. The retry counter and contention
	// window reset and the station moves on to a fresh frame.
	Drops int
	// CollisionRate is Collisions/Attempts (0 when no attempts).
	CollisionRate float64
	// BusyAirtimeFraction is the fraction of time the AP-observed
	// medium carried at least one transmission.
	BusyAirtimeFraction float64
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche over uint64. Chaining it over (seed, node, draw) keys gives
// every backoff draw as a pure function of those coordinates, so the
// event-driven engine and the slot-stepped oracle produce bit-identical
// trajectories with no shared-stream ordering dependence.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// backoffDraw returns node i's k-th backoff, uniform on [0, cw].
func backoffDraw(seed int64, i int, k uint32, cw int) int {
	h := splitmix64(uint64(seed) ^ 0x6C62272E07BB0142)
	h = splitmix64(h ^ uint64(i)<<32 ^ uint64(k))
	return int(h % uint64(cw+1))
}

// dcfFrameSlots computes the whole-slot duration of one frame exchange
// (preamble + payload + SIFS + ACK + DIFS) and the goodput bits it
// carries when delivered.
func dcfFrameSlots(st DCFStation) (slots int, payloadBits float64) {
	payload := st.PayloadBytes
	if payload == 0 {
		payload = 1500
	}
	frameUs := dcfPreambleUs + dcfSIFSUs + dcfAckUs + dcfDIFSUs
	if st.RateBps > 0 {
		frameUs += int(float64(payload*8) / st.RateBps * 1e6)
	}
	slots = (frameUs + dcfSlotUs - 1) / dcfSlotUs
	if slots < 1 {
		slots = 1
	}
	return slots, float64(payload * 8)
}

// SimulateDCF runs the CSMA/CA contention process for the given number
// of seconds of virtual time and reports per-station goodput. Stations
// outside each other's sensing range (hidden terminals) count their
// backoff down during each other's transmissions and collide at the
// AP — the failure mode the dLTE registry eliminates (§4.3).
//
// The simulation is event-driven: it jumps straight to the next
// state-changing slot (earliest backoff expiry or transmission end)
// instead of ticking every 9 µs slot, with per-station sense sets as
// uint64 bitmask words (DESIGN.md §13). The slot-stepped loop it
// replaced survives as the differential oracle in refdcf_test.go and
// must produce identical results.
func SimulateDCF(cfg DCFConfig, seconds float64) DCFResult {
	eng := newCoexEngine(CoexConfig{WiFi: cfg.Stations, Sense: cfg.Sense, Seed: cfg.Seed}, seconds)
	eng.run()

	n := len(cfg.Stations)
	res := DCFResult{PerStationBps: make(map[string]float64, n)}
	for i, st := range cfg.Stations {
		bps := eng.delivered[i] / seconds
		res.PerStationBps[st.ID] = bps
		res.TotalBps += bps
		res.Attempts += eng.attempts[i]
		res.Collisions += eng.collisions[i]
		res.Drops += eng.drops[i]
	}
	if res.Attempts > 0 {
		res.CollisionRate = float64(res.Collisions) / float64(res.Attempts)
	}
	if eng.totalSlots > 0 {
		res.BusyAirtimeFraction = float64(eng.busySlots) / float64(eng.totalSlots)
	}
	return res
}
