package phy

import (
	"reflect"
	"testing"
)

func coexWiFi8() []DCFStation { return benchDCFStations(8) }

func dutyNode(duty float64) []LTENode {
	return []LTENode{{ID: "lte", Kind: LTEUDuty, RateBps: 36e6, OnMs: duty * 40, PeriodMs: 40}}
}

func lbtNode() []LTENode {
	return []LTENode{{ID: "lte", Kind: LTELBT, RateBps: 36e6, TXOPMs: 4, CW: 63}}
}

// TestCoexNoLTEMatchesDCF: with no LTE nodes the coexistence engine is
// the DCF contention process exactly.
func TestCoexNoLTEMatchesDCF(t *testing.T) {
	stations := coexWiFi8()
	coex := SimulateCoex(CoexConfig{WiFi: stations, Seed: 6}, 0.5)
	dcf := SimulateDCF(DCFConfig{Stations: stations, Seed: 6}, 0.5)
	if !reflect.DeepEqual(coex.PerNodeBps, dcf.PerStationBps) {
		t.Errorf("coex %v != dcf %v", coex.PerNodeBps, dcf.PerStationBps)
	}
	if coex.WiFiAttempts != dcf.Attempts || coex.WiFiCollisions != dcf.Collisions ||
		coex.WiFiDrops != dcf.Drops || coex.BusyAirtimeFraction != dcf.BusyAirtimeFraction {
		t.Errorf("coex counters %+v != dcf %+v", coex, dcf)
	}
	if coex.LTEBps != 0 || coex.LTEAirtimeFraction != 0 {
		t.Errorf("phantom LTE traffic: %+v", coex)
	}
}

// TestCoexDutyDegradesWiFi: CSAT duty bursts are invisible to carrier
// sense, so WiFi throughput falls monotonically as the duty fraction
// rises, WiFi's collision rate climbs well above the WiFi-alone level,
// and the blind bursts themselves lose most of their overlapped slots —
// the related work's "neither friend nor foe" result.
func TestCoexDutyDegradesWiFi(t *testing.T) {
	alone := SimulateCoex(CoexConfig{WiFi: coexWiFi8(), Seed: 3}, 1.0)
	var prev = alone.WiFiBps
	for _, duty := range []float64{0.33, 0.5, 0.8} {
		r := SimulateCoex(CoexConfig{WiFi: coexWiFi8(), LTE: dutyNode(duty), Seed: 3}, 1.0)
		if r.WiFiBps >= prev {
			t.Errorf("duty %.2f: WiFi %.0f did not degrade below %.0f", duty, r.WiFiBps, prev)
		}
		prev = r.WiFiBps
		// The duty cycle owns its scheduled airtime regardless of the
		// medium.
		if r.LTEAirtimeFraction < duty*0.95 || r.LTEAirtimeFraction > duty*1.05 {
			t.Errorf("duty %.2f: LTE airtime %.3f", duty, r.LTEAirtimeFraction)
		}
		if r.WiFiCollisionRate < alone.WiFiCollisionRate+0.05 {
			t.Errorf("duty %.2f: WiFi collision rate %.3f not elevated over alone %.3f",
				duty, r.WiFiCollisionRate, alone.WiFiCollisionRate)
		}
		if r.LTECorruptFraction < 0.5 {
			t.Errorf("duty %.2f: burst corruption %.3f — saturated WiFi should trample blind bursts",
				duty, r.LTECorruptFraction)
		}
	}
}

// TestCoexLBTRestoresWiFi: listen-before-talk defers like a WiFi
// station, so versus 50%-duty LTE-U it returns throughput to WiFi and
// delivers far more LTE throughput (its bursts are clean), at a far
// lower WiFi collision rate.
func TestCoexLBTRestoresWiFi(t *testing.T) {
	duty := SimulateCoex(CoexConfig{WiFi: coexWiFi8(), LTE: dutyNode(0.5), Seed: 3}, 1.0)
	lbt := SimulateCoex(CoexConfig{WiFi: coexWiFi8(), LTE: lbtNode(), Seed: 3}, 1.0)
	if lbt.WiFiBps <= duty.WiFiBps {
		t.Errorf("LBT WiFi %.0f did not restore over duty-0.5 %.0f", lbt.WiFiBps, duty.WiFiBps)
	}
	if lbt.LTEBps <= duty.LTEBps*2 {
		t.Errorf("LBT LTE %.0f not ≫ duty LTE %.0f", lbt.LTEBps, duty.LTEBps)
	}
	if lbt.LTECorruptFraction > 0.05 {
		t.Errorf("LBT bursts %.1f%% corrupted — carrier sense should keep them clean",
			lbt.LTECorruptFraction*100)
	}
	if lbt.WiFiCollisionRate > duty.WiFiCollisionRate {
		t.Errorf("LBT WiFi collision rate %.3f above duty's %.3f",
			lbt.WiFiCollisionRate, duty.WiFiCollisionRate)
	}
}

// TestCoexDeterministic: identical configs give identical results.
func TestCoexDeterministic(t *testing.T) {
	cfg := CoexConfig{WiFi: coexWiFi8(), LTE: append(dutyNode(0.5), lbtNode()...), Seed: 12}
	a := SimulateCoex(cfg, 0.5)
	b := SimulateCoex(cfg, 0.5)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("coex not deterministic: %+v vs %+v", a, b)
	}
}

// TestCoexDutyOffsetShifts: the offset delays the first burst without
// changing the steady-state airtime share.
func TestCoexDutyOffsetShifts(t *testing.T) {
	base := dutyNode(0.5)
	shifted := dutyNode(0.5)
	shifted[0].OffsetMs = 13
	a := SimulateCoex(CoexConfig{WiFi: coexWiFi8(), LTE: base, Seed: 3}, 1.0)
	b := SimulateCoex(CoexConfig{WiFi: coexWiFi8(), LTE: shifted, Seed: 3}, 1.0)
	if a.LTEAirtimeFraction < 0.45 || b.LTEAirtimeFraction < 0.45 {
		t.Errorf("airtime lost to offset: %.3f vs %.3f", a.LTEAirtimeFraction, b.LTEAirtimeFraction)
	}
	if reflect.DeepEqual(a.PerNodeBps, b.PerNodeBps) {
		t.Error("13 ms offset changed nothing — bursts not actually shifted")
	}
}
