//go:build !race

package phy

const raceEnabled = false
