//go:build race

package phy

// raceEnabled reports whether the race detector is compiled in; timing
// assertions skip themselves under it.
const raceEnabled = true
