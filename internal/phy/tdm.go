package phy

// CoordinatedTDM models the medium sharing dLTE's fair-share mode
// negotiates over X2 (§4.3): because every transmitter in the band is
// known through the license registry, peers divide airtime explicitly
// instead of contending. There are no collisions and no backoff; the
// only loss is a small guard/scheduling overhead per slot boundary.

// TDMGuardOverhead is the airtime fraction lost to slot guards and
// coordination signaling in the TDM pattern.
const TDMGuardOverhead = 0.05

// WiFiLikeMACFactor converts a raw PHY rate into the per-transmitter
// effective rate of a scheduled (contention-free) MAC on the same PHY:
// preambles and block ACKs remain, but no DIFS/backoff idle time. Use
// it when comparing SimulateTDM against SimulateDCF on equal PHY rates.
const WiFiLikeMACFactor = 0.9

// TDMShare is one transmitter's negotiated share.
type TDMShare struct {
	// ID labels the transmitter.
	ID string
	// Weight sets the proportional airtime claim (equal weights give
	// the WiFi-equal-fairness split the paper targets).
	Weight float64
	// RateBps is the PHY rate the transmitter's links sustain.
	RateBps float64
}

// TDMResult reports the coordinated sharing outcome.
type TDMResult struct {
	// PerStationBps maps transmitter ID to delivered throughput.
	PerStationBps map[string]float64
	// TotalBps is aggregate delivered throughput.
	TotalBps float64
	// AirtimeFraction maps transmitter ID to its share of usable air.
	AirtimeFraction map[string]float64
}

// SimulateTDM computes the throughput of a registry-coordinated TDM
// split. It is closed-form: share_i = w_i/Σw, throughput_i =
// share_i · rate_i · (1 − guard).
func SimulateTDM(shares []TDMShare) TDMResult {
	res := TDMResult{
		PerStationBps:   make(map[string]float64, len(shares)),
		AirtimeFraction: make(map[string]float64, len(shares)),
	}
	var totalW float64
	for _, s := range shares {
		w := s.Weight
		if w <= 0 {
			w = 1
		}
		totalW += w
	}
	if totalW == 0 {
		return res
	}
	for _, s := range shares {
		w := s.Weight
		if w <= 0 {
			w = 1
		}
		frac := w / totalW
		bps := frac * s.RateBps * (1 - TDMGuardOverhead)
		res.PerStationBps[s.ID] = bps
		res.AirtimeFraction[s.ID] = frac
		res.TotalBps += bps
	}
	return res
}
