package phy

import "math/bits"

// coexEngine is the event-driven contention core behind SimulateDCF and
// SimulateCoex (DESIGN.md §13). Instead of ticking every 9 µs slot it
// jumps straight to the next state-changing slot: the earliest
// transmission end or the earliest start (a backoff expiry of an
// unblocked contender, or a scheduled LTE-U burst boundary). Sense sets
// are uint64 bitmask words, so "is the medium idle for node i" is a few
// ANDs over words instead of an O(n) scan. All state is preallocated at
// construction; reset+run performs zero heap allocations.
//
// The engine reproduces the slot-stepped reference loop (refdcf_test.go)
// bit for bit. The equivalences it relies on:
//
//   - A transmission started at slot s with L frame slots occupies
//     slots [s, s+L-1] and blocks phase-1 starts of sensing stations
//     during [s+1, s+L] (the slot-start snapshot the oracle takes).
//     Since blocking only ever increases when transmissions start and
//     decreases when they end, the medium state seen by any node is
//     piecewise constant between start/end events.
//   - Corruption is symmetric and decided by overlap: two concurrently
//     active transmissions corrupt each other from the later start
//     onward. Marking both parties at every start event is equivalent
//     to the oracle's per-slot "≥2 active → all corrupted" sweep.
//   - Backoff decrements happen once per slot for contenders that are
//     idle, saturated, and sense no active transmitter. Between events
//     that is a bulk subtraction; at a transmission-end slot e the
//     oracle's index-ordered phase 3 adds one subtlety: an ender j
//     blocks station i's decrement at slot e iff j > i (a j < i ender
//     has already reset to txRemaining 0 when i is examined).
//
// Backoff draws come from splitmix64 keyed by (seed, node, draw index),
// so each node's trajectory is a pure function of the seed and the
// engine and oracle consume identical randomness with no shared-stream
// ordering coupling.
type coexEngine struct {
	seed       int64
	n, nw      int // total nodes, WiFi station count
	words      int
	totalSlots int
	lastSlot   int

	// Immutable per-node shape.
	kind        []uint8 // nodeWiFi, nodeDuty, nodeLBT
	contender   []bool  // draws backoff and senses before transmitting
	frameSlots  []int   // TX length in slots (frame, burst, or TXOP)
	periodSlots []int   // duty: cycle length
	offsetSlots []int   // duty: first burst start
	payloadBits []float64
	bitsPerSlot []float64 // LTE: delivered bits per clean burst slot
	cwFixed     []int     // LBT: fixed contention window
	sense       [][]uint64

	// Mutable simulation state (cleared by reset).
	active       []uint64
	nActive      int
	endSlot      []int
	corrupt      []bool // WiFi: any overlap during current TX
	corruptSlots []int  // LTE: overlapped slots in current burst
	corruptCover []int  // LTE: first slot not yet counted corrupt
	backoff      []int
	cw           []int
	retries      []int
	draws        []uint32
	nextBurst    []int
	delivered    []float64
	attempts     []int
	collisions   []int
	drops        []int

	busySlots, busyCover           int
	lteBurstSlots, lteCorruptSlots int

	starters, enders []int
	endersMask       []uint64
}

const (
	nodeWiFi = iota
	nodeDuty
	nodeLBT
)

const maxSlot = int(^uint(0) >> 1)

func newCoexEngine(cfg CoexConfig, seconds float64) *coexEngine {
	nw := len(cfg.WiFi)
	n := nw + len(cfg.LTE)
	words := (n + 63) / 64
	e := &coexEngine{
		seed:       cfg.Seed,
		n:          n,
		nw:         nw,
		words:      words,
		totalSlots: int(seconds * 1e6 / dcfSlotUs),

		kind:        make([]uint8, n),
		contender:   make([]bool, n),
		frameSlots:  make([]int, n),
		periodSlots: make([]int, n),
		offsetSlots: make([]int, n),
		payloadBits: make([]float64, n),
		bitsPerSlot: make([]float64, n),
		cwFixed:     make([]int, n),
		sense:       make([][]uint64, n),

		active:       make([]uint64, words),
		endSlot:      make([]int, n),
		corrupt:      make([]bool, n),
		corruptSlots: make([]int, n),
		corruptCover: make([]int, n),
		backoff:      make([]int, n),
		cw:           make([]int, n),
		retries:      make([]int, n),
		draws:        make([]uint32, n),
		nextBurst:    make([]int, n),
		delivered:    make([]float64, n),
		attempts:     make([]int, n),
		collisions:   make([]int, n),
		drops:        make([]int, n),

		starters:   make([]int, 0, n),
		enders:     make([]int, 0, n),
		endersMask: make([]uint64, words),
	}
	e.lastSlot = e.totalSlots - 1

	for i, st := range cfg.WiFi {
		e.kind[i] = nodeWiFi
		e.contender[i] = st.Saturated
		e.frameSlots[i], e.payloadBits[i] = dcfFrameSlots(st)
	}
	msSlots := func(ms, def float64) int {
		if ms <= 0 {
			ms = def
		}
		s := int(ms * 1e3 / dcfSlotUs)
		if s < 2 {
			s = 2
		}
		return s
	}
	for k, nd := range cfg.LTE {
		i := nw + k
		e.bitsPerSlot[i] = nd.RateBps * dcfSlotUs * 1e-6
		switch nd.Kind {
		case LTEUDuty:
			e.kind[i] = nodeDuty
			e.frameSlots[i] = msSlots(nd.OnMs, 20)
			e.periodSlots[i] = msSlots(nd.PeriodMs, 40)
			if e.periodSlots[i] < e.frameSlots[i] {
				e.periodSlots[i] = e.frameSlots[i]
			}
			if nd.OffsetMs > 0 {
				e.offsetSlots[i] = int(nd.OffsetMs * 1e3 / dcfSlotUs)
			}
		case LTELBT:
			e.kind[i] = nodeLBT
			e.contender[i] = true
			e.frameSlots[i] = msSlots(nd.TXOPMs, 4)
			cw := nd.CW
			if cw <= 0 {
				cw = dcfCWMin
			}
			e.cwFixed[i] = cw
		}
	}

	// Sense rows: bit j of row i set iff node i carrier-senses node j.
	// Self bits stay clear so "active ∩ sense[i]" tests other nodes
	// only. Rows share one backing array. With no explicit matrix,
	// everyone senses everyone except duty-cycled LTE-U bursts: CSAT
	// transmits no WiFi-detectable preamble and typically sits below
	// the −62 dBm energy-detection threshold, so to a WiFi station (and
	// to LBT's clear-channel check) a duty burst is a hidden
	// transmitter — the asymmetry at the heart of the LTE-U coexistence
	// papers. Pass an explicit Sense matrix to override.
	backing := make([]uint64, n*words)
	for i := 0; i < n; i++ {
		row := backing[i*words : (i+1)*words]
		e.sense[i] = row
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sensed := cfg.Sense == nil && e.kind[j] != nodeDuty
			if cfg.Sense != nil {
				sensed = cfg.Sense[i][j]
			}
			if sensed {
				row[j>>6] |= 1 << uint(j&63)
			}
		}
	}

	e.reset()
	return e
}

// reset restores post-construction state so one engine can run the same
// configuration repeatedly (benchmarks, differential tests) without
// allocating.
func (e *coexEngine) reset() {
	for w := range e.active {
		e.active[w] = 0
	}
	e.nActive = 0
	e.busySlots, e.busyCover = 0, 0
	e.lteBurstSlots, e.lteCorruptSlots = 0, 0
	e.starters = e.starters[:0]
	e.enders = e.enders[:0]
	for i := 0; i < e.n; i++ {
		e.endSlot[i] = 0
		e.corrupt[i] = false
		e.corruptSlots[i] = 0
		e.corruptCover[i] = 0
		e.retries[i] = 0
		e.nextBurst[i] = 0
		e.delivered[i] = 0
		e.attempts[i] = 0
		e.collisions[i] = 0
		e.drops[i] = 0
		e.draws[i] = 0
		switch e.kind[i] {
		case nodeLBT:
			e.cw[i] = e.cwFixed[i]
		default:
			e.cw[i] = dcfCWMin
		}
		e.backoff[i] = 0
		if e.contender[i] {
			e.backoff[i] = backoffDraw(e.seed, i, 0, e.cw[i])
			e.draws[i] = 1
		}
	}
}

func (e *coexEngine) isActive(i int) bool {
	return e.active[i>>6]&(1<<uint(i&63)) != 0
}

// blocked reports whether node i senses any active transmitter.
func (e *coexEngine) blocked(i int) bool {
	row := e.sense[i]
	for w, word := range e.active {
		if word&row[w] != 0 {
			return true
		}
	}
	return false
}

func (e *coexEngine) run() {
	now := 0
	for now <= e.lastSlot {
		// Next end event across active transmissions.
		tEnd := maxSlot
		if e.nActive > 0 {
			for w, word := range e.active {
				for word != 0 {
					i := w<<6 + bits.TrailingZeros64(word)
					word &= word - 1
					if e.endSlot[i] < tEnd {
						tEnd = e.endSlot[i]
					}
				}
			}
		}
		// Next start event: earliest backoff expiry among unblocked
		// contenders, or earliest scheduled duty burst. Blocked
		// contenders have frozen backoff — their expiry will be
		// re-derived after the blocking transmission ends.
		tStart := maxSlot
		for i := 0; i < e.n; i++ {
			if e.isActive(i) {
				continue
			}
			var c int
			if e.kind[i] == nodeDuty {
				c = e.offsetSlots[i] + e.nextBurst[i]*e.periodSlots[i]
			} else {
				if !e.contender[i] || e.blocked(i) {
					continue
				}
				c = now + e.backoff[i]
			}
			if c < tStart {
				tStart = c
			}
		}
		next := tStart
		if tEnd < next {
			next = tEnd
		}
		if next > e.lastSlot {
			break
		}
		if tStart < tEnd {
			// Pure start event: nobody finishes at tStart, so the slot
			// needs no end processing and no boundary-decrement pass.
			e.advanceBackoffs(now, tStart)
			e.startAt(tStart)
			now = tStart
		} else {
			// End slot (possibly with simultaneous starts). Order
			// mirrors the oracle's phases: starts against slot-start
			// state, overlap marking, then transmission completion and
			// the boundary backoff decrement.
			e.advanceBackoffs(now, tEnd)
			e.startAt(tEnd)
			e.finishAt(tEnd)
			e.boundaryDecrement()
			now = tEnd + 1
		}
	}
}

// advanceBackoffs bulk-decrements unblocked idle contenders by the
// event gap. Candidate selection guarantees backoff ≥ to-now for every
// node decremented here.
func (e *coexEngine) advanceBackoffs(now, to int) {
	d := to - now
	if d <= 0 {
		return
	}
	for i := 0; i < e.n; i++ {
		if !e.contender[i] || e.backoff[i] == 0 || e.isActive(i) || e.blocked(i) {
			continue
		}
		e.backoff[i] -= d
	}
}

// startAt begins every transmission due at slot t: expired unblocked
// contenders and scheduled duty bursts. Starters are admitted against
// the slot-start active set, so simultaneous expiries start together
// (the same-slot collision at the heart of CSMA/CA); each new starter
// is then marked against everything already on the air, which covers
// both starter-vs-active and starter-vs-starter overlap.
func (e *coexEngine) startAt(t int) {
	e.starters = e.starters[:0]
	for i := 0; i < e.n; i++ {
		if e.isActive(i) {
			continue
		}
		if e.kind[i] == nodeDuty {
			if e.offsetSlots[i]+e.nextBurst[i]*e.periodSlots[i] != t {
				continue
			}
			e.nextBurst[i]++
		} else if !e.contender[i] || e.backoff[i] != 0 || e.blocked(i) {
			continue
		}
		e.starters = append(e.starters, i)
	}
	for _, i := range e.starters {
		end := t + e.frameSlots[i] - 1
		e.endSlot[i] = end
		e.attempts[i]++
		if e.kind[i] == nodeWiFi {
			e.corrupt[i] = false
		} else {
			e.corruptSlots[i] = 0
			e.corruptCover[i] = t
		}
		// Busy airtime: union of [t, end] with everything counted so
		// far. Starts arrive in nondecreasing t, so a single cover
		// pointer suffices.
		hi := end
		if hi > e.lastSlot {
			hi = e.lastSlot
		}
		lo := t
		if lo < e.busyCover {
			lo = e.busyCover
		}
		if hi >= lo {
			e.busySlots += hi - lo + 1
			e.busyCover = hi + 1
		}
		// Mark mutual corruption against everything already active —
		// including earlier same-slot starters, which were added to
		// the active set before this node.
		for w, word := range e.active {
			for word != 0 {
				j := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				e.markOverlap(i, j, t)
			}
		}
		e.active[i>>6] |= 1 << uint(i&63)
		e.nActive++
	}
}

// markOverlap records that i and j transmitted concurrently from slot
// `from` until the earlier of their ends.
func (e *coexEngine) markOverlap(i, j, from int) {
	end := e.endSlot[i]
	if e.endSlot[j] < end {
		end = e.endSlot[j]
	}
	e.markCorrupt(i, from, end)
	e.markCorrupt(j, from, end)
}

// markCorrupt charges node i for overlap during [from, to]. WiFi loses
// the whole frame; LTE bursts lose exactly the overlapped slots, with a
// per-burst cover pointer making repeated or nested markings exact
// (intervals for one burst arrive with nondecreasing `from`).
func (e *coexEngine) markCorrupt(i, from, to int) {
	if e.kind[i] == nodeWiFi {
		e.corrupt[i] = true
		return
	}
	if to > e.lastSlot {
		to = e.lastSlot
	}
	if from < e.corruptCover[i] {
		from = e.corruptCover[i]
	}
	if to >= from {
		e.corruptSlots[i] += to - from + 1
		e.corruptCover[i] = to + 1
	}
}

// finishAt completes every transmission ending at slot t: outcome
// resolution, retry/window bookkeeping, and the next backoff draw.
func (e *coexEngine) finishAt(t int) {
	e.enders = e.enders[:0]
	for w := range e.endersMask {
		e.endersMask[w] = 0
	}
	for w, word := range e.active {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if e.endSlot[i] == t {
				e.enders = append(e.enders, i)
				e.endersMask[w] |= 1 << uint(i&63)
			}
		}
	}
	for _, i := range e.enders {
		e.active[i>>6] &^= 1 << uint(i&63)
		e.nActive--
		switch e.kind[i] {
		case nodeWiFi:
			if e.corrupt[i] {
				e.collisions[i]++
				e.retries[i]++
				if e.retries[i] > dcfRetryLimit {
					e.drops[i]++
					e.retries[i] = 0
					e.cw[i] = dcfCWMin
				} else if e.cw[i] < dcfCWMax {
					e.cw[i] = 2*(e.cw[i]+1) - 1
					if e.cw[i] > dcfCWMax {
						e.cw[i] = dcfCWMax
					}
				}
			} else {
				e.delivered[i] += e.payloadBits[i]
				e.retries[i] = 0
				e.cw[i] = dcfCWMin
			}
			e.backoff[i] = backoffDraw(e.seed, i, e.draws[i], e.cw[i])
			e.draws[i]++
		default:
			good := e.frameSlots[i] - e.corruptSlots[i]
			e.delivered[i] += e.bitsPerSlot[i] * float64(good)
			e.lteBurstSlots += e.frameSlots[i]
			e.lteCorruptSlots += e.corruptSlots[i]
			if e.corruptSlots[i] > 0 {
				e.collisions[i]++
			}
			if e.kind[i] == nodeLBT {
				e.backoff[i] = backoffDraw(e.seed, i, e.draws[i], e.cw[i])
				e.draws[i]++
			}
		}
	}
}

// boundaryDecrement applies the oracle's phase-3 backoff countdown at
// an end slot. A contender decrements iff it is idle, its backoff is
// nonzero, it did not itself just finish (an ender's freshly drawn
// backoff starts counting next slot), it senses nothing still active
// after the slot's completions (same-slot starters included), and no
// *higher-indexed* ender is in its sense set — the oracle resolves
// stations in index order, so a lower-indexed ender has already gone
// idle when station i is examined, while a higher-indexed one still
// reads as transmitting.
func (e *coexEngine) boundaryDecrement() {
	for i := 0; i < e.n; i++ {
		if !e.contender[i] || e.backoff[i] == 0 || e.isActive(i) {
			continue
		}
		if e.endersMask[i>>6]&(1<<uint(i&63)) != 0 || e.blocked(i) {
			continue
		}
		row := e.sense[i]
		w0 := i >> 6
		above := row[w0] & e.endersMask[w0] & (^uint64(0) << uint(i&63+1))
		for w := w0 + 1; w < e.words && above == 0; w++ {
			above = row[w] & e.endersMask[w]
		}
		if above == 0 {
			e.backoff[i]--
		}
	}
}
