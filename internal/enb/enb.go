package enb

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"dlte/internal/gtp"
	"dlte/internal/s1ap"
	"dlte/internal/simnet"
	"dlte/internal/wire"
)

// GTPPort is the eNodeB's GTP-U port (distinct from the gateway's so a
// dLTE stub core can share the AP host).
const GTPPort = 2153

// Config describes one eNodeB.
type Config struct {
	// ID is the eNodeB identity used in S1 setup.
	ID uint32
	// Name labels the eNodeB.
	Name string
	// TAC is the tracking area code it serves.
	TAC uint16
	// MMEAddr is the core's S1AP endpoint ("host:port").
	MMEAddr string
	// AirPort overrides the UE-facing listen port (0 = AirPort).
	AirPort int
}

// ENodeB bridges UEs (air interface) to a core (S1AP) and the user
// plane (GTP-U).
type ENodeB struct {
	cfg  Config
	host *simnet.Host

	s1   *s1ap.Conn
	gtpE *gtp.Endpoint
	airL *simnet.Listener
	si   SystemInfo

	mu       sync.Mutex
	nextUEID uint32
	byUEID   map[uint32]*ueCtx
	closed   bool
}

type ueCtx struct {
	enbUEID uint32
	air     *wire.FrameConn
	raw     net.Conn

	// ul is the local TEID whose reverse direction points at the
	// gateway, or 0 before the uplink tunnel is live. It is read on
	// every uplink data packet, so it is atomic rather than behind mu.
	ul atomic.Uint32

	mu       sync.Mutex
	dlTEID   uint32 // eNodeB-local TEID for downlink
	released bool   // core commanded this context's release already

	// teardown, set in dispatch-handler mode before the context is
	// published, is the association's idempotent exit path. The S1
	// release handler calls it directly: closing our own side of the
	// air conn no longer unblocks a reader whose defer did the cleanup.
	teardown func()
}

// New creates an eNodeB on host and connects it to its core: dials
// S1AP, performs S1 setup, opens the GTP-U endpoint, and starts the
// air-interface listener.
func New(host *simnet.Host, cfg Config) (*ENodeB, error) {
	if cfg.AirPort == 0 {
		cfg.AirPort = AirPort
	}
	if cfg.Name == "" {
		cfg.Name = "enb-" + host.Name()
	}
	e := &ENodeB{cfg: cfg, host: host, byUEID: make(map[uint32]*ueCtx)}

	raw, err := host.Dial(cfg.MMEAddr)
	if err != nil {
		return nil, fmt.Errorf("enb: S1AP dial: %w", err)
	}
	e.s1 = s1ap.NewConn(raw)
	if err := e.s1.Send(&s1ap.S1SetupRequest{ENBID: cfg.ID, ENBName: cfg.Name, TAC: cfg.TAC}); err != nil {
		return nil, fmt.Errorf("enb: S1 setup: %w", err)
	}
	resp, err := e.s1.Recv()
	if err != nil {
		return nil, fmt.Errorf("enb: S1 setup response: %w", err)
	}
	sr, ok := resp.(*s1ap.S1SetupResponse)
	if !ok {
		return nil, fmt.Errorf("enb: unexpected %s during S1 setup", resp.Type())
	}
	e.si = SystemInfo{SNID: sr.SNID, TAC: sr.ServedTAC}

	pc, err := host.ListenPacket(GTPPort)
	if err != nil {
		return nil, fmt.Errorf("enb: GTP: %w", err)
	}
	e.gtpE = gtp.NewEndpoint(pc)

	l, err := host.Listen(cfg.AirPort)
	if err != nil {
		e.gtpE.Close()
		return nil, fmt.Errorf("enb: air listen: %w", err)
	}
	e.airL = l

	if sc, ok := raw.(*simnet.Conn); ok {
		e.installS1(sc)
	} else {
		host.Clock().Go(e.s1Loop)
	}
	host.Clock().Go(e.airAccept)
	return e, nil
}

// installS1 attaches the run-to-completion downlink S1AP path: frames
// reassemble and dispatch inline on the network dispatcher. A decode
// error stops consumption, as the legacy loop's return did.
func (e *ENodeB) installS1(sc *simnet.Conn) {
	asm := &wire.FrameAssembler{}
	var v s1ap.MsgView
	dead := false
	sc.OnDeliver(func(data []byte) {
		if dead {
			return
		}
		if err := asm.Feed(data, func(frame []byte) error {
			if derr := s1ap.DecodeView(frame, &v); derr != nil {
				return derr
			}
			e.handleS1(&v)
			return nil
		}); err != nil {
			dead = true
			asm.Reset()
		}
	}, func() {
		asm.Reset()
	})
}

// AirAddr is where UEs attach ("host:port").
func (e *ENodeB) AirAddr() string { return fmt.Sprintf("%s:%d", e.host.Name(), e.cfg.AirPort) }

// GTPAddr is the eNodeB's GTP-U endpoint.
func (e *ENodeB) GTPAddr() string { return fmt.Sprintf("%s:%d", e.host.Name(), GTPPort) }

// NumUEs reports the number of radio-connected UEs.
func (e *ENodeB) NumUEs() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.byUEID)
}

func (e *ENodeB) airAccept() {
	for {
		c, err := e.airL.Accept()
		if err != nil {
			return
		}
		e.host.Clock().Go(func() { e.serveUE(c) })
	}
}

// errAirReleased stops frame consumption after an AirRelease tore the
// association down mid-chunk.
var errAirReleased = errors.New("enb: air released")

// ueRx is one radio association's uplink consumer, shared by the
// dispatch handler and the legacy reader loop. Its fields are only
// touched by the (serialized) delivery path for this conn, plus the
// idempotent teardown.
type ueRx struct {
	e     *ENodeB
	ctx   *ueCtx
	first bool
	done  atomic.Bool
	// asm reassembles the uplink stream in dispatch mode; embedded so
	// an association costs one state allocation (ueRx doubles as the
	// conn's simnet.StreamHandler).
	asm wire.FrameAssembler
}

// HandleDeliver implements simnet.StreamHandler: reassemble the chunk
// and dispatch each completed uplink frame inline.
func (ur *ueRx) HandleDeliver(data []byte) {
	if ur.done.Load() {
		return
	}
	if err := ur.asm.Feed(data, ur.frame); err != nil {
		ur.asm.Reset()
		ur.teardown()
	}
}

// HandleStreamClose implements simnet.StreamHandler: the UE end closed
// the association.
func (ur *ueRx) HandleStreamClose() {
	ur.asm.Reset()
	ur.teardown()
}

// frame consumes one uplink air frame, valid only for the duration of
// the call: every consumer (S1AP send, GTP send) copies synchronously.
func (ur *ueRx) frame(frame []byte) error {
	t, payload, err := DecodeAirView(frame)
	if err != nil {
		return nil // tolerate junk frames, as the reader loop did
	}
	switch t {
	case AirNASUp:
		// Uplink NAS rides the per-UE hot path of an attach storm, so
		// the S1AP envelope is built in a pooled frame rather than
		// through a per-message heap struct.
		buf := wire.GetFrame()
		var out []byte
		var serr error
		if ur.first {
			ur.first = false
			out, serr = s1ap.AppendInitialUEMessage(buf, ur.ctx.enbUEID, payload)
		} else {
			out, serr = s1ap.AppendUplinkNASTransport(buf, ur.ctx.enbUEID, 0, payload)
		}
		if serr == nil {
			ur.e.s1.SendFrame(out)
		}
		wire.PutFrame(buf)
	case AirDataUp:
		if teid := ur.ctx.ul.Load(); teid != 0 {
			ur.e.gtpE.Send(teid, payload)
		}
	case AirRelease:
		ur.teardown()
		return errAirReleased
	}
	return nil
}

// teardown is the association's exit path (the old serveUE defer).
// Idempotent: reachable from the air conn's delivery path, its close
// event, and the S1 release handler.
func (ur *ueRx) teardown() {
	if !ur.done.CompareAndSwap(false, true) {
		return
	}
	e, ctx := ur.e, ur.ctx
	ctx.raw.Close()
	e.mu.Lock()
	delete(e.byUEID, ctx.enbUEID)
	closing := e.closed
	e.mu.Unlock()
	ctx.mu.Lock()
	if ctx.dlTEID != 0 {
		e.gtpE.Release(ctx.dlTEID)
	}
	released := ctx.released
	ctx.mu.Unlock()
	if ul := ctx.ul.Load(); ul != 0 {
		e.gtpE.Release(ul)
	}
	// The radio link is gone: unless the core itself commanded the
	// release (or the whole eNodeB is shutting down), report it
	// upstream so the UE's session is evicted instead of lingering
	// until association teardown.
	if !ur.first && !released && !closing {
		e.s1.Send(&s1ap.UEContextReleaseRequest{ENBUEID: ctx.enbUEID})
	}
}

func (e *ENodeB) serveUE(raw net.Conn) {
	fc := wire.NewFrameConn(raw)
	ctx := &ueCtx{air: fc, raw: raw}
	ur := &ueRx{e: e, ctx: ctx, first: true}
	sc, handlerMode := raw.(*simnet.Conn)
	if handlerMode {
		ctx.teardown = ur.teardown
	}
	e.mu.Lock()
	e.nextUEID++
	ctx.enbUEID = e.nextUEID
	e.byUEID[ctx.enbUEID] = ctx
	e.mu.Unlock()

	// First downlink frame: broadcast system information, so the UE
	// knows the serving network before it attaches.
	if sib, err := EncodeSystemInfo(e.si); err == nil {
		e.sendAir(ctx, AirBroadcast, sib)
	}

	if handlerMode {
		// Run-to-completion uplink: frames reassemble and dispatch
		// inline on the network dispatcher; no goroutine per UE.
		sc.OnDeliverHandler(ur)
		return
	}

	defer ur.teardown()
	for {
		frame, err := fc.RecvOwned()
		if err != nil {
			return
		}
		ferr := ur.frame(frame)
		wire.PutFrame(frame)
		if ferr != nil {
			return
		}
	}
}

// s1Loop handles downlink S1AP traffic from the core. Messages are
// received into pooled frames and decoded by view: every case below
// copies what it keeps before the frame recycles, so the dominant
// DownlinkNASTransport path allocates nothing.
func (e *ENodeB) s1Loop() {
	var v s1ap.MsgView
	for {
		frame, err := e.s1.RecvOwned()
		if err != nil {
			return
		}
		if derr := s1ap.DecodeView(frame, &v); derr != nil {
			wire.PutFrame(frame)
			return
		}
		e.handleS1(&v)
		wire.PutFrame(frame)
	}
}

// handleS1 runs one decoded downlink S1AP message. The view's slices
// point into the frame under dispatch and every case copies what it
// keeps before returning.
func (e *ENodeB) handleS1(v *s1ap.MsgView) {
	switch v.Type {
	case s1ap.TypeDownlinkNASTransport:
		if ctx := e.lookup(v.ENBUEID); ctx != nil {
			e.sendAir(ctx, AirNASDown, v.NASPDU)
		}
	case s1ap.TypeInitialContextSetupRequest:
		e.setupContext(v)
	case s1ap.TypeUEContextReleaseCommand:
		if ctx := e.lookup(v.ENBUEID); ctx != nil {
			ctx.mu.Lock()
			ctx.released = true
			ctx.mu.Unlock()
			e.sendAir(ctx, AirRelease, nil)
			ctx.raw.Close()
			if ctx.teardown != nil {
				ctx.teardown()
			}
		}
		e.s1.Send(&s1ap.UEContextReleaseComplete{ENBUEID: v.ENBUEID, MMEUEID: v.MMEUEID})
	}
}

func (e *ENodeB) lookup(enbUEID uint32) *ueCtx {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.byUEID[enbUEID]
}

func (e *ENodeB) sendAir(ctx *ueCtx, t AirMsgType, payload []byte) {
	// The air frame is assembled in a pooled buffer: Send's stream layer
	// owns its own copy by the time it returns, so the scratch recycles.
	// This is the per-packet downlink path (GTP demux → UE air).
	frame, err := AppendAir(wire.GetFrame(), t, payload)
	if err == nil {
		ctx.air.Send(frame)
	}
	wire.PutFrame(frame)
}

// setupContext wires the UE's data path: a downlink TEID delivering to
// the UE's air connection, and an uplink tunnel toward the gateway.
func (e *ENodeB) setupContext(m *s1ap.MsgView) {
	ctx := e.lookup(m.ENBUEID)
	if ctx == nil {
		return
	}
	sgwAddr, err := simnet.ParseAddr(string(m.SGWAddr))
	if err != nil {
		return
	}
	// Downlink: gateway → eNB TEID → UE air connection.
	dlTEID := e.gtpE.AllocateTEID(func(payload []byte, _ net.Addr) {
		e.sendAir(ctx, AirDataDown, payload)
	})
	// Uplink: a local TEID whose reverse direction targets the
	// gateway's session TEID.
	ulTEID := e.gtpE.AllocateTEID(nil)
	if err := e.gtpE.Bind(ulTEID, m.SGWTEID, sgwAddr); err != nil {
		return
	}
	ctx.mu.Lock()
	ctx.dlTEID = dlTEID
	ctx.mu.Unlock()
	ctx.ul.Store(ulTEID)

	e.s1.Send(&s1ap.InitialContextSetupResponse{
		ENBUEID: m.ENBUEID,
		MMEUEID: m.MMEUEID,
		ENBAddr: e.GTPAddr(),
		ENBTEID: dlTEID,
	})
}

// Close releases the eNodeB's listeners and endpoints.
func (e *ENodeB) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	ues := make([]*ueCtx, 0, len(e.byUEID))
	for _, u := range e.byUEID {
		ues = append(ues, u)
	}
	e.mu.Unlock()
	for _, u := range ues {
		u.raw.Close()
	}
	e.airL.Close()
	e.gtpE.Close()
}
