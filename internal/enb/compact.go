package enb

import "unsafe"

// CellPool is the eNodeB-side counterpart of ue.IdlePool (DESIGN.md
// §11): a compact world models each cell as aggregate counters, not an
// ENodeB with S1AP/GTP endpoints and per-UE goroutines. Counters are
// summed across cells for output, so results are invariant to how a
// world partitions cells over regions. Not safe for concurrent use
// across cells owned by different regions — each region must only
// touch its own cells.
type CellPool struct {
	id       []uint32
	tac      []uint16
	attached []uint64 // registrations completed in this cell
	tau      []uint64 // idle-mode tracking-area updates served
}

// CellSlotBytes is the accounted per-cell cost of one compact cell.
var CellSlotBytes = int(unsafe.Sizeof(uint32(0)) + unsafe.Sizeof(uint16(0)) +
	2*unsafe.Sizeof(uint64(0)))

// NewCellPool returns n compact cells; cell c gets ID base+c and the
// given tracking-area code.
func NewCellPool(n int, base uint32, tac uint16) *CellPool {
	p := &CellPool{
		id:       make([]uint32, n),
		tac:      make([]uint16, n),
		attached: make([]uint64, n),
		tau:      make([]uint64, n),
	}
	for c := range p.id {
		p.id[c] = base + uint32(c)
		p.tac[c] = tac
	}
	return p
}

// Cells reports the number of cells.
func (p *CellPool) Cells() int { return len(p.id) }

// ID and TAC report cell c's identity.
func (p *CellPool) ID(c int) uint32  { return p.id[c] }
func (p *CellPool) TAC(c int) uint16 { return p.tac[c] }

// Attach counts one completed registration in cell c.
func (p *CellPool) Attach(c int) { p.attached[c]++ }

// TrackingAreaUpdate counts one idle-mode TAU served by cell c.
func (p *CellPool) TrackingAreaUpdate(c int) { p.tau[c]++ }

// Attached reports registrations completed in cell c.
func (p *CellPool) Attached(c int) uint64 { return p.attached[c] }

// TotalAttached and TotalTAU aggregate across all cells — the
// region-count-invariant numbers a sharded world may print.
func (p *CellPool) TotalAttached() uint64 { return sumU64(p.attached) }
func (p *CellPool) TotalTAU() uint64      { return sumU64(p.tau) }

func sumU64(xs []uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x
	}
	return s
}
