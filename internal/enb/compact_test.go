package enb

import "testing"

func TestCellPoolCounters(t *testing.T) {
	p := NewCellPool(3, 100, 42)
	if p.Cells() != 3 || p.ID(2) != 102 || p.TAC(0) != 42 {
		t.Fatalf("pool identity: cells=%d id2=%d tac0=%d", p.Cells(), p.ID(2), p.TAC(0))
	}
	p.Attach(0)
	p.Attach(0)
	p.Attach(2)
	p.TrackingAreaUpdate(1)
	p.TrackingAreaUpdate(2)
	if p.Attached(0) != 2 || p.Attached(1) != 0 || p.Attached(2) != 1 {
		t.Fatalf("attached = %d,%d,%d", p.Attached(0), p.Attached(1), p.Attached(2))
	}
	if p.TotalAttached() != 3 || p.TotalTAU() != 2 {
		t.Fatalf("totals = %d,%d", p.TotalAttached(), p.TotalTAU())
	}
	if CellSlotBytes > 32 {
		t.Fatalf("CellSlotBytes = %d, want ≤ 32", CellSlotBytes)
	}
}
