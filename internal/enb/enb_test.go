package enb

import (
	"errors"
	"strings"
	"testing"
)

func TestAirCodecRoundTrip(t *testing.T) {
	for _, typ := range []AirMsgType{AirNASUp, AirNASDown, AirDataUp, AirDataDown, AirRelease, AirBroadcast} {
		payload := []byte{byte(typ), 0xFF}
		b, err := EncodeAir(typ, payload)
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		gt, gp, err := DecodeAir(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", typ, err)
		}
		if gt != typ || string(gp) != string(payload) {
			t.Errorf("%s: got %s %v", typ, gt, gp)
		}
	}
}

func TestAirCodecEmptyPayload(t *testing.T) {
	b, err := EncodeAir(AirRelease, nil)
	if err != nil {
		t.Fatal(err)
	}
	typ, payload, err := DecodeAir(b)
	if err != nil || typ != AirRelease || len(payload) != 0 {
		t.Errorf("empty payload: %v %v %v", typ, payload, err)
	}
}

func TestAirDecodeErrors(t *testing.T) {
	if _, _, err := DecodeAir([]byte{1}); !errors.Is(err, ErrBadAirFrame) {
		t.Errorf("truncated: %v", err)
	}
	if _, _, err := DecodeAir(nil); !errors.Is(err, ErrBadAirFrame) {
		t.Errorf("empty: %v", err)
	}
	// Length prefix overruns the buffer.
	if _, _, err := DecodeAir([]byte{1, 0, 9, 1}); !errors.Is(err, ErrBadAirFrame) {
		t.Errorf("overrun: %v", err)
	}
}

func TestAirTypeNames(t *testing.T) {
	for typ := AirNASUp; typ <= AirBroadcast; typ++ {
		if strings.HasPrefix(typ.String(), "Air(") {
			t.Errorf("missing name for %d", typ)
		}
	}
	if AirMsgType(99).String() != "Air(99)" {
		t.Error("unknown render")
	}
}

func TestSystemInfoRoundTrip(t *testing.T) {
	si := SystemInfo{SNID: "dlte-ap-7", TAC: 42}
	b, err := EncodeSystemInfo(si)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSystemInfo(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != si {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := DecodeSystemInfo([]byte{9}); !errors.Is(err, ErrBadAirFrame) {
		t.Errorf("truncated SI: %v", err)
	}
}
