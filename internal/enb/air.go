// Package enb implements the eNodeB: the radio-side server UEs attach
// through. It speaks a framed air-interface protocol to UEs (standing
// in for RRC + the data radio bearer), S1AP to its core (local stub or
// remote EPC — the eNodeB cannot tell, which is the point), and GTP-U
// for the user plane.
package enb

import (
	"errors"
	"fmt"

	"dlte/internal/wire"
)

// AirPort is the default port eNodeBs listen on for UE associations.
const AirPort = 4000

// AirMsgType identifies an air-interface frame.
type AirMsgType uint8

// Air-interface frame types.
const (
	// AirNASUp carries an uplink NAS PDU (RRC UL Information Transfer).
	AirNASUp AirMsgType = iota + 1
	// AirNASDown carries a downlink NAS PDU.
	AirNASDown
	// AirDataUp carries an uplink user packet (encoded epc.UserPacket).
	AirDataUp
	// AirDataDown carries a downlink user packet.
	AirDataDown
	// AirRelease ends the radio connection.
	AirRelease
	// AirBroadcast is the first downlink frame on every new radio
	// connection: the SIB-like system information (serving network
	// identity and tracking area) a UE needs before it can attach.
	AirBroadcast
)

// String names the frame type.
func (t AirMsgType) String() string {
	switch t {
	case AirNASUp:
		return "NASUp"
	case AirNASDown:
		return "NASDown"
	case AirDataUp:
		return "DataUp"
	case AirDataDown:
		return "DataDown"
	case AirRelease:
		return "Release"
	case AirBroadcast:
		return "Broadcast"
	default:
		return fmt.Sprintf("Air(%d)", uint8(t))
	}
}

// ErrBadAirFrame reports a malformed air frame.
var ErrBadAirFrame = errors.New("enb: bad air frame")

// EncodeAir frames one air message.
func EncodeAir(t AirMsgType, payload []byte) ([]byte, error) {
	w := wire.NewWriter(1 + 2 + len(payload))
	w.U8(uint8(t))
	w.Bytes16(payload)
	if err := w.Err(); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// AppendAir appends one framed air message to dst and returns the
// extended slice: the allocation-free encode for the per-packet data
// path (dst is typically a pooled buffer from wire.GetFrame).
func AppendAir(dst []byte, t AirMsgType, payload []byte) ([]byte, error) {
	if len(payload) > 0xFFFF {
		return dst, fmt.Errorf("enb: air payload length %d overflows", len(payload))
	}
	dst = append(dst, uint8(t), byte(len(payload)>>8), byte(len(payload)))
	return append(dst, payload...), nil
}

// DecodeAirView parses one air message without copying: the payload is
// a view into b, valid only as long as b is. Retainers must copy.
func DecodeAirView(b []byte) (AirMsgType, []byte, error) {
	r := wire.NewReader(b)
	t := AirMsgType(r.U8())
	payload := r.View16()
	if err := r.Err(); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrBadAirFrame, err)
	}
	return t, payload, nil
}

// DecodeAir parses one air message.
func DecodeAir(b []byte) (AirMsgType, []byte, error) {
	r := wire.NewReader(b)
	t := AirMsgType(r.U8())
	payload := r.Bytes16()
	if err := r.Err(); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrBadAirFrame, err)
	}
	return t, payload, nil
}

// SystemInfo is the broadcast content of an AirBroadcast frame.
type SystemInfo struct {
	// SNID is the serving-network identity bound into KASME.
	SNID string
	// TAC is the tracking area code.
	TAC uint16
}

// EncodeSystemInfo serializes broadcast system information.
func EncodeSystemInfo(si SystemInfo) ([]byte, error) {
	w := wire.NewWriter(3 + len(si.SNID))
	w.String8(si.SNID)
	w.U16(si.TAC)
	if err := w.Err(); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// DecodeSystemInfo parses broadcast system information.
func DecodeSystemInfo(b []byte) (SystemInfo, error) {
	r := wire.NewReader(b)
	si := SystemInfo{SNID: r.String8(), TAC: r.U16()}
	if err := r.Err(); err != nil {
		return SystemInfo{}, fmt.Errorf("%w: %v", ErrBadAirFrame, err)
	}
	return si, nil
}
