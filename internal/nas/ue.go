package nas

import (
	"errors"
	"fmt"

	"dlte/internal/auth"
)

// UEState is the UE-side EMM state.
type UEState int

// UE states, in attach order.
const (
	UEDeregistered UEState = iota
	UEAttachInitiated
	UEAuthenticated
	UESecured
	UERegistered
)

// String names the state.
func (s UEState) String() string {
	switch s {
	case UEDeregistered:
		return "DEREGISTERED"
	case UEAttachInitiated:
		return "ATTACH-INITIATED"
	case UEAuthenticated:
		return "AUTHENTICATED"
	case UESecured:
		return "SECURED"
	case UERegistered:
		return "REGISTERED"
	default:
		return fmt.Sprintf("UEState(%d)", int(s))
	}
}

// ErrUnexpectedMessage reports a NAS message arriving in a state that
// cannot accept it.
var ErrUnexpectedMessage = errors.New("nas: unexpected message for state")

// UE is the UE-side NAS state machine. It is message-in/message-out:
// the caller moves bytes between it and the network (over RRC in the
// real system, over the simulated air interface here).
//
// The UE object persists across attaches to different networks — its
// SQN state lives in the SIM — which is what lets a dLTE client roam
// between unrelated APs and re-authenticate at each (paper §4.2).
type UE struct {
	sim          auth.SIM
	ueCtx        auth.UEContext
	state        UEState
	sec          SecurityContext
	snID         string
	kasme        []byte
	pendingKASME []byte

	// Registration results, valid in UERegistered.
	GUTI         uint64
	IPAddress    string
	EBI          uint8
	TrackingArea uint16
	Breakout     bool
}

// NewUE builds a UE around a provisioned SIM.
func NewUE(sim auth.SIM) (*UE, error) {
	m, err := sim.Milenage()
	if err != nil {
		return nil, err
	}
	return &UE{sim: sim, ueCtx: auth.UEContext{Mil: m}}, nil
}

// IMSI reports the UE's identity.
func (u *UE) IMSI() string { return string(u.sim.IMSI) }

// State reports the current EMM state.
func (u *UE) State() UEState { return u.state }

// StartAttach resets session state and returns the serialized
// AttachRequest for the serving network snID.
func (u *UE) StartAttach(snID string) ([]byte, error) {
	u.state = UEAttachInitiated
	u.snID = snID
	u.sec = SecurityContext{}
	u.kasme = nil
	u.GUTI, u.IPAddress, u.EBI = 0, "", 0
	return Marshal(&AttachRequest{IMSI: string(u.sim.IMSI), UECapabilities: "cat4", FollowOnData: true})
}

// StartDetach returns a sealed DetachRequest; valid only when
// registered.
func (u *UE) StartDetach() ([]byte, error) {
	if u.state != UERegistered {
		return nil, fmt.Errorf("%w: detach in %s", ErrUnexpectedMessage, u.state)
	}
	env, err := u.sec.Seal(&DetachRequest{GUTI: u.GUTI})
	if err != nil {
		return nil, err
	}
	return Marshal(env)
}

// StartTAU returns a Tracking Area Update request for use after idle
// mobility to an AP that may or may not share MME state.
func (u *UE) StartTAU(ta uint16) ([]byte, error) {
	if u.state != UERegistered {
		return nil, fmt.Errorf("%w: TAU in %s", ErrUnexpectedMessage, u.state)
	}
	// TAU is sent in clear here: the target MME may not hold our
	// security context (it will reject and force re-attach, which is
	// the dLTE roaming path).
	return Marshal(&TAURequest{GUTI: u.GUTI, TrackingArea: ta})
}

// Handle processes one downlink NAS message and returns the uplink
// reply (nil if none) and whether the attach procedure completed.
func (u *UE) Handle(b []byte) (reply []byte, done bool, err error) {
	msg, err := Decode(b)
	if err != nil {
		return nil, false, err
	}
	if env, ok := msg.(*Secured); ok {
		if !u.sec.Active() {
			// First protected message: activate with the pending KASME
			// (the SMC arrives right after a successful AKA).
			if u.kasme == nil {
				return nil, false, fmt.Errorf("nas: protected message before AKA")
			}
			u.sec.Activate(u.kasme)
		}
		msg, err = u.sec.Open(env)
		if err != nil {
			return nil, false, err
		}
	}

	switch m := msg.(type) {
	case *AuthenticationRequest:
		if u.state != UEAttachInitiated {
			return nil, false, fmt.Errorf("%w: %s in %s", ErrUnexpectedMessage, m.Type(), u.state)
		}
		res, aerr := u.ueCtx.Respond(m.RAND, m.AUTN, u.snID)
		if errors.Is(aerr, auth.ErrSyncFailure) {
			// SQN out of step (normal after roaming a published-key
			// SIM across independent cores): return AUTS so the HSS
			// can resynchronize, and await a fresh challenge.
			auts, berr := u.ueCtx.BuildAUTS(m.RAND)
			if berr != nil {
				return nil, false, berr
			}
			out, merr := Marshal(&AuthenticationFailure{Cause: CauseSyncFailure, AUTS: auts})
			return out, false, merr
		}
		if aerr != nil {
			// The network failed OUR authentication of IT — mutual auth
			// protects the client even on an open dLTE AP.
			return nil, false, aerr
		}
		u.kasme = res.KASME
		u.state = UEAuthenticated
		out, merr := Marshal(&AuthenticationResponse{RES: res.RES})
		return out, false, merr

	case *SecurityModeCommand:
		if u.state != UEAuthenticated {
			return nil, false, fmt.Errorf("%w: %s in %s", ErrUnexpectedMessage, m.Type(), u.state)
		}
		u.state = UESecured
		env, serr := u.sec.Seal(&SecurityModeComplete{})
		if serr != nil {
			return nil, false, serr
		}
		out, merr := Marshal(env)
		return out, false, merr

	case *AttachAccept:
		if u.state != UESecured {
			return nil, false, fmt.Errorf("%w: %s in %s", ErrUnexpectedMessage, m.Type(), u.state)
		}
		u.GUTI = m.GUTI
		u.TrackingArea = m.TrackingArea
		u.EBI = m.EBI
		u.IPAddress = m.PDNAddress
		u.Breakout = m.DirectBreakout
		u.state = UERegistered
		env, serr := u.sec.Seal(&AttachComplete{})
		if serr != nil {
			return nil, false, serr
		}
		out, merr := Marshal(env)
		return out, true, merr

	case *AttachReject:
		u.state = UEDeregistered
		return nil, false, fmt.Errorf("nas: attach rejected, cause %d", m.Cause)

	case *AuthenticationReject:
		u.state = UEDeregistered
		return nil, false, fmt.Errorf("nas: authentication rejected, cause %d", m.Cause)

	case *DetachAccept:
		u.state = UEDeregistered
		u.GUTI, u.IPAddress = 0, ""
		return nil, true, nil

	case *TAUAccept:
		u.TrackingArea = m.TrackingArea
		return nil, true, nil

	case *TAUReject:
		// Unknown GUTI at this AP: fall back to a fresh attach — the
		// dLTE roaming path (each AP is its own network).
		u.state = UEDeregistered
		return nil, false, fmt.Errorf("nas: TAU rejected, cause %d", m.Cause)

	default:
		return nil, false, fmt.Errorf("%w: %s in %s", ErrUnexpectedMessage, msg.Type(), u.state)
	}
}
