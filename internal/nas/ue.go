package nas

import (
	"errors"
	"fmt"

	"dlte/internal/auth"
	"dlte/internal/wire"
)

// UEState is the UE-side EMM state.
type UEState int

// UE states, in attach order.
const (
	UEDeregistered UEState = iota
	UEAttachInitiated
	UEAuthenticated
	UESecured
	UERegistered
)

// String names the state.
func (s UEState) String() string {
	switch s {
	case UEDeregistered:
		return "DEREGISTERED"
	case UEAttachInitiated:
		return "ATTACH-INITIATED"
	case UEAuthenticated:
		return "AUTHENTICATED"
	case UESecured:
		return "SECURED"
	case UERegistered:
		return "REGISTERED"
	default:
		return fmt.Sprintf("UEState(%d)", int(s))
	}
}

// ErrUnexpectedMessage reports a NAS message arriving in a state that
// cannot accept it.
var ErrUnexpectedMessage = errors.New("nas: unexpected message for state")

// UE is the UE-side NAS state machine. It is message-in/message-out:
// the caller moves bytes between it and the network (over RRC in the
// real system, over the simulated air interface here).
//
// The UE object persists across attaches to different networks — its
// SQN state lives in the SIM — which is what lets a dLTE client roam
// between unrelated APs and re-authenticate at each (paper §4.2).
type UE struct {
	sim   auth.SIM
	ueCtx auth.UEContext
	state UEState
	sec   SecurityContext
	snID  string
	kasme []byte

	// Registration results, valid in UERegistered.
	GUTI         uint64
	IPAddress    string
	EBI          uint8
	TrackingArea uint16
	Breakout     bool
}

// NewUE builds a UE around a provisioned SIM.
func NewUE(sim auth.SIM) (*UE, error) {
	m, err := sim.Milenage()
	if err != nil {
		return nil, err
	}
	return &UE{sim: sim, ueCtx: auth.UEContext{Mil: m}}, nil
}

// IMSI reports the UE's identity.
func (u *UE) IMSI() string { return string(u.sim.IMSI) }

// State reports the current EMM state.
func (u *UE) State() UEState { return u.state }

// StartAttach resets session state and returns the serialized
// AttachRequest for the serving network snID.
func (u *UE) StartAttach(snID string) ([]byte, error) {
	return u.StartAttachAppend(nil, snID)
}

// StartAttachAppend is StartAttach appending into a caller-owned
// buffer.
func (u *UE) StartAttachAppend(dst []byte, snID string) ([]byte, error) {
	u.state = UEAttachInitiated
	u.snID = snID
	u.sec.reset()
	u.kasme = nil
	// IPAddress is left stale here — registration results are only
	// valid in UERegistered, and keeping the old string lets the
	// accept path skip reallocating when the network reassigns it.
	u.GUTI, u.EBI = 0, 0
	return AppendAttachRequest(dst, AttachRequest{IMSI: string(u.sim.IMSI), UECapabilities: "cat4", FollowOnData: true})
}

// StartDetach returns a sealed DetachRequest; valid only when
// registered.
func (u *UE) StartDetach() ([]byte, error) {
	return u.StartDetachAppend(nil)
}

// StartDetachAppend is StartDetach appending into a caller-owned
// buffer.
func (u *UE) StartDetachAppend(dst []byte) ([]byte, error) {
	if u.state != UERegistered {
		return dst, fmt.Errorf("%w: detach in %s", ErrUnexpectedMessage, u.state)
	}
	frame := wire.GetFrame()
	inner := AppendDetachRequest(frame, DetachRequest{GUTI: u.GUTI})
	out, err := u.sec.SealAppend(dst, inner)
	wire.PutFrame(frame)
	if err != nil {
		return dst, err
	}
	return out, nil
}

// StartTAU returns a Tracking Area Update request for use after idle
// mobility to an AP that may or may not share MME state.
func (u *UE) StartTAU(ta uint16) ([]byte, error) {
	return u.StartTAUAppend(nil, ta)
}

// StartTAUAppend is StartTAU appending into a caller-owned buffer.
func (u *UE) StartTAUAppend(dst []byte, ta uint16) ([]byte, error) {
	if u.state != UERegistered {
		return dst, fmt.Errorf("%w: TAU in %s", ErrUnexpectedMessage, u.state)
	}
	// TAU is sent in clear here: the target MME may not hold our
	// security context (it will reject and force re-attach, which is
	// the dLTE roaming path).
	return AppendTAURequest(dst, TAURequest{GUTI: u.GUTI, TrackingArea: ta}), nil
}

// Handle processes one downlink NAS message and returns the uplink
// reply (nil if none) and whether the procedure completed.
func (u *UE) Handle(b []byte) (reply []byte, done bool, err error) {
	out, done, err := u.HandleAppend(b, nil)
	if len(out) == 0 {
		return nil, done, err
	}
	return out, done, err
}

// HandleAppend processes one downlink NAS message and appends any
// uplink reply to dst (typically a pooled frame whose ownership stays
// with the caller). A reply exists iff the returned buffer is longer
// than dst.
func (u *UE) HandleAppend(b, dst []byte) (out []byte, done bool, err error) {
	var v MsgView
	if derr := DecodeView(b, &v); derr != nil {
		return dst, false, derr
	}
	if v.Type == TypeSecured {
		if !u.sec.Active() {
			// First protected message: activate with the pending KASME
			// (the SMC arrives right after a successful AKA).
			if u.kasme == nil {
				return dst, false, fmt.Errorf("nas: protected message before AKA")
			}
			u.sec.Activate(u.kasme)
		}
		if oerr := u.sec.OpenView(v.Count, v.MAC, v.Inner); oerr != nil {
			return dst, false, oerr
		}
		inner := v.Inner
		if derr := DecodeView(inner, &v); derr != nil {
			return dst, false, derr
		}
	}

	switch v.Type {
	case TypeAuthenticationRequest:
		if u.state != UEAttachInitiated {
			return dst, false, fmt.Errorf("%w: %s in %s", ErrUnexpectedMessage, v.Type, u.state)
		}
		res, aerr := u.ueCtx.Respond(v.RAND, v.AUTN, u.snID)
		if errors.Is(aerr, auth.ErrSyncFailure) {
			// SQN out of step (normal after roaming a published-key
			// SIM across independent cores): return AUTS so the HSS
			// can resynchronize, and await a fresh challenge.
			auts, berr := u.ueCtx.BuildAUTS(v.RAND)
			if berr != nil {
				return dst, false, berr
			}
			out, merr := AppendAuthenticationFailure(dst, AuthenticationFailure{Cause: CauseSyncFailure, AUTS: auts})
			return out, false, merr
		}
		if aerr != nil {
			// The network failed OUR authentication of IT — mutual auth
			// protects the client even on an open dLTE AP.
			return dst, false, aerr
		}
		u.kasme = res.KASME
		u.state = UEAuthenticated
		out, merr := AppendAuthenticationResponse(dst, AuthenticationResponse{RES: res.RES})
		return out, false, merr

	case TypeSecurityModeCommand:
		if u.state != UEAuthenticated {
			return dst, false, fmt.Errorf("%w: %s in %s", ErrUnexpectedMessage, v.Type, u.state)
		}
		u.state = UESecured
		frame := wire.GetFrame()
		inner := AppendSecurityModeComplete(frame)
		out, serr := u.sec.SealAppend(dst, inner)
		wire.PutFrame(frame)
		if serr != nil {
			return dst, false, serr
		}
		return out, false, nil

	case TypeAttachAccept:
		if u.state != UESecured {
			return dst, false, fmt.Errorf("%w: %s in %s", ErrUnexpectedMessage, v.Type, u.state)
		}
		u.GUTI = v.GUTI
		u.TrackingArea = v.TrackingArea
		u.EBI = v.EBI
		if u.IPAddress != string(v.PDNAddress) { // comparison allocates nothing
			u.IPAddress = string(v.PDNAddress)
		}
		u.Breakout = v.DirectBreakout
		u.state = UERegistered
		frame := wire.GetFrame()
		inner := AppendAttachComplete(frame)
		out, serr := u.sec.SealAppend(dst, inner)
		wire.PutFrame(frame)
		if serr != nil {
			return dst, false, serr
		}
		return out, true, nil

	case TypeAttachReject:
		u.state = UEDeregistered
		return dst, false, fmt.Errorf("nas: attach rejected, cause %d", v.Cause)

	case TypeAuthenticationReject:
		u.state = UEDeregistered
		return dst, false, fmt.Errorf("nas: authentication rejected, cause %d", v.Cause)

	case TypeDetachAccept:
		u.state = UEDeregistered
		u.GUTI, u.IPAddress = 0, ""
		return dst, true, nil

	case TypeTAUAccept:
		u.TrackingArea = v.TrackingArea
		return dst, true, nil

	case TypeTAUReject:
		// Unknown GUTI at this AP: fall back to a fresh attach — the
		// dLTE roaming path (each AP is its own network).
		u.state = UEDeregistered
		return dst, false, fmt.Errorf("nas: TAU rejected, cause %d", v.Cause)

	default:
		return dst, false, fmt.Errorf("%w: %s in %s", ErrUnexpectedMessage, v.Type, u.state)
	}
}
