package nas

import (
	"errors"
	"strings"
	"testing"

	"dlte/internal/auth"
	"dlte/internal/session"
)

// TestAttachAcceptBuildFailureRejects drives an attach whose
// AttachAccept cannot be serialized (the allocator hands back a PDN
// address longer than the wire format's length-8 field). The regression
// this pins: the session used to return the error with no downlink and
// no FSM event, stranding the UE in limbo and the context in Attaching
// forever. Now the session must fail over to a clear AttachReject,
// surface EventRejected so the EPC releases state, and land in
// Detached.
func TestAttachAcceptBuildFailureRejects(t *testing.T) {
	sim := testSIM(t, "001010000000030")
	hss := auth.NewSubscriberDB(false)
	hss.Provision(sim)
	ue, _ := NewUE(sim)

	cfg := testNetwork(t, hss).cfg
	cfg.AllocateIP = func(string) (string, error) {
		return strings.Repeat("x", 300), nil // overflows String8
	}
	net := NewNetworkSession(cfg)

	up, _ := ue.StartAttach("dlte-ap-1")
	down, _, err := net.Handle(up) // AuthenticationRequest
	if err != nil {
		t.Fatal(err)
	}
	up, _, err = ue.Handle(down) // AuthenticationResponse
	if err != nil {
		t.Fatal(err)
	}
	down, _, err = net.Handle(up) // SecurityModeCommand
	if err != nil {
		t.Fatal(err)
	}
	up, _, err = ue.Handle(down) // SecurityModeComplete
	if err != nil {
		t.Fatal(err)
	}

	down, ev, err := net.Handle(up) // accept build fails here
	if err == nil {
		t.Fatal("oversized PDN address serialized successfully")
	}
	if ev.Kind != EventRejected {
		t.Errorf("event = %v, want EventRejected", ev.Kind)
	}
	if net.State() != session.Detached {
		t.Errorf("network state = %v, want Detached (no stranded context)", net.State())
	}
	if down == nil {
		t.Fatal("no downlink: UE left hanging with no reject")
	}
	m, derr := Decode(down)
	if derr != nil || m.Type() != TypeAttachReject {
		t.Fatalf("downlink = %v (err %v), want clear AttachReject", m, derr)
	}
	if _, _, uerr := ue.Handle(down); uerr == nil ||
		!strings.Contains(uerr.Error(), "attach rejected") {
		t.Errorf("UE reject handling = %v", uerr)
	}
}

// TestDetachSealFailureStillReleases pins the detach half of the same
// bug: when the DetachAccept cannot be sealed, the session must still
// surface EventDetached (the FSM is already Detached by then) so the
// EPC releases the context — the UE's retransmission covers the lost
// accept. White-box: drive the FSM to Attached with security never
// activated, so sealing the accept fails.
func TestDetachSealFailureStillReleases(t *testing.T) {
	hss := auth.NewSubscriberDB(false)
	net := testNetwork(t, hss)
	for _, ev := range []session.Event{
		session.EvAttachRequest, session.EvAuthSuccess,
		session.EvSecurityComplete, session.EvAttachComplete,
	} {
		if _, err := net.FSM().Fire(ev); err != nil {
			t.Fatal(err)
		}
	}

	det, _ := Marshal(&DetachRequest{GUTI: 7})
	down, ev, err := net.Handle(det)
	if err == nil {
		t.Fatal("seal on inactive security context succeeded")
	}
	if ev.Kind != EventDetached {
		t.Errorf("event = %v, want EventDetached despite seal failure", ev.Kind)
	}
	if ev.GUTI != 7 {
		t.Errorf("event GUTI = %d, want 7", ev.GUTI)
	}
	if down != nil {
		t.Errorf("unexpected downlink %x", down)
	}
	if net.State() != session.Detached {
		t.Errorf("network state = %v, want Detached", net.State())
	}
}

// TestNetworkIllegalTransitions covers the FSM guard on every uplink
// that fires an event: out-of-order messages must return a typed
// *session.TransitionError and change nothing.
func TestNetworkIllegalTransitions(t *testing.T) {
	hss := auth.NewSubscriberDB(false)
	cases := []struct {
		name string
		msg  Message
	}{
		{"auth response in idle", &AuthenticationResponse{RES: make([]byte, 8)}},
		{"auth failure in idle", &AuthenticationFailure{Cause: CauseSyncFailure, AUTS: make([]byte, 14)}},
		{"SMC complete in idle", &SecurityModeComplete{}},
		{"attach complete in idle", &AttachComplete{}},
		{"detach in idle", &DetachRequest{GUTI: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := testNetwork(t, hss)
			b, _ := Marshal(tc.msg)
			down, ev, err := net.Handle(b)
			if !errors.Is(err, session.ErrIllegalTransition) {
				t.Fatalf("err = %v, want ErrIllegalTransition", err)
			}
			var terr *session.TransitionError
			if !errors.As(err, &terr) {
				t.Fatalf("err is not a *session.TransitionError: %T", err)
			}
			if down != nil || ev.Kind != EventNone {
				t.Errorf("illegal transition had side effects: down=%x ev=%v", down, ev.Kind)
			}
			if net.State() != session.Idle {
				t.Errorf("state moved to %v", net.State())
			}
		})
	}

	// A second AttachRequest mid-procedure is also illegal: identity
	// can't be re-claimed once authentication is underway.
	sim := testSIM(t, "001010000000031")
	hss2 := auth.NewSubscriberDB(false)
	hss2.Provision(sim)
	net := testNetwork(t, hss2)
	att, _ := Marshal(&AttachRequest{IMSI: string(sim.IMSI)})
	if _, _, err := net.Handle(att); err != nil {
		t.Fatal(err)
	}
	if _, _, err := net.Handle(att); !errors.Is(err, session.ErrIllegalTransition) {
		t.Errorf("second AttachRequest: %v, want ErrIllegalTransition", err)
	}
	if net.State() != session.Authenticating {
		t.Errorf("state after illegal re-attach = %v", net.State())
	}
}
