// Package nas implements the subset of the LTE Non-Access-Stratum
// protocol a standard client exercises against an EPC (TS 24.301
// simplified): attach with mutual AKA, NAS security mode, default
// bearer establishment, detach, and tracking-area update — plus the
// integrity protection that makes the dLTE stub core look like a real
// network to an unmodified handset (paper §4.1).
//
// Message codecs follow the gopacket idiom: concrete structs with
// EncodeTo, and a Decode dispatcher on the leading message-type octet.
package nas

import (
	"errors"
	"fmt"

	"dlte/internal/wire"
)

// MsgType identifies a NAS message.
type MsgType uint8

// NAS message types (values are local to this implementation).
const (
	TypeAttachRequest MsgType = iota + 1
	TypeAuthenticationRequest
	TypeAuthenticationResponse
	TypeAuthenticationReject
	TypeSecurityModeCommand
	TypeSecurityModeComplete
	TypeAttachAccept
	TypeAttachComplete
	TypeAttachReject
	TypeDetachRequest
	TypeDetachAccept
	TypeTAURequest
	TypeTAUAccept
	TypeTAUReject
	TypeSecured // integrity-protected envelope
	// TypeAuthenticationFailure carries the UE's rejection of a
	// network challenge — including the AUTS resynchronization token
	// on SQN failures (TS 24.301 §5.4.2.6).
	TypeAuthenticationFailure
)

// String names the message type for logs and tests.
func (t MsgType) String() string {
	switch t {
	case TypeAttachRequest:
		return "AttachRequest"
	case TypeAuthenticationRequest:
		return "AuthenticationRequest"
	case TypeAuthenticationResponse:
		return "AuthenticationResponse"
	case TypeAuthenticationReject:
		return "AuthenticationReject"
	case TypeSecurityModeCommand:
		return "SecurityModeCommand"
	case TypeSecurityModeComplete:
		return "SecurityModeComplete"
	case TypeAttachAccept:
		return "AttachAccept"
	case TypeAttachComplete:
		return "AttachComplete"
	case TypeAttachReject:
		return "AttachReject"
	case TypeDetachRequest:
		return "DetachRequest"
	case TypeDetachAccept:
		return "DetachAccept"
	case TypeTAURequest:
		return "TAURequest"
	case TypeTAUAccept:
		return "TAUAccept"
	case TypeTAUReject:
		return "TAUReject"
	case TypeSecured:
		return "Secured"
	case TypeAuthenticationFailure:
		return "AuthenticationFailure"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Message is any NAS message.
type Message interface {
	wire.Message
	// Type reports the message's type octet.
	Type() MsgType
}

// ErrUnknownMessage reports an unrecognized type octet.
var ErrUnknownMessage = errors.New("nas: unknown message type")

// Cause codes for reject messages.
const (
	CauseIMSIUnknown   uint8 = 2
	CauseIllegalUE     uint8 = 3
	CauseAuthFailure   uint8 = 20
	CauseCongestion    uint8 = 22
	CauseNotAuthorized uint8 = 35
	CauseProtocolError uint8 = 111
)

// AttachRequest initiates registration. The IMSI is sent in clear on
// first attach (as in real LTE before a GUTI is assigned).
type AttachRequest struct {
	IMSI string
	// UECapabilities is an opaque capability string.
	UECapabilities string
	// FollowOnData requests immediate user-plane resources.
	FollowOnData bool
}

// Type implements Message.
func (AttachRequest) Type() MsgType { return TypeAttachRequest }

// EncodeTo implements wire.Message.
func (m AttachRequest) EncodeTo(w *wire.Writer) {
	w.String8(m.IMSI)
	w.String8(m.UECapabilities)
	w.Bool(m.FollowOnData)
}

// AuthenticationRequest carries the AKA challenge.
type AuthenticationRequest struct {
	RAND []byte // 16 bytes
	AUTN []byte // 16 bytes
}

// Type implements Message.
func (AuthenticationRequest) Type() MsgType { return TypeAuthenticationRequest }

// EncodeTo implements wire.Message.
func (m AuthenticationRequest) EncodeTo(w *wire.Writer) {
	w.Bytes8(m.RAND)
	w.Bytes8(m.AUTN)
}

// AuthenticationResponse carries the UE's RES.
type AuthenticationResponse struct {
	RES []byte
}

// Type implements Message.
func (AuthenticationResponse) Type() MsgType { return TypeAuthenticationResponse }

// EncodeTo implements wire.Message.
func (m AuthenticationResponse) EncodeTo(w *wire.Writer) { w.Bytes8(m.RES) }

// AuthenticationFailure reports the UE's rejection of the network's
// challenge. CauseSyncFailure carries AUTS so the HSS can
// resynchronize its sequence counter and retry.
type AuthenticationFailure struct {
	Cause uint8
	AUTS  []byte // 14 bytes when Cause == CauseSyncFailure
}

// Type implements Message.
func (AuthenticationFailure) Type() MsgType { return TypeAuthenticationFailure }

// EncodeTo implements wire.Message.
func (m AuthenticationFailure) EncodeTo(w *wire.Writer) {
	w.U8(m.Cause)
	w.Bytes8(m.AUTS)
}

// CauseSyncFailure marks an SQN synchronisation failure (TS 24.008
// cause #21).
const CauseSyncFailure uint8 = 21

// AuthenticationReject aborts registration after failed AKA.
type AuthenticationReject struct {
	Cause uint8
}

// Type implements Message.
func (AuthenticationReject) Type() MsgType { return TypeAuthenticationReject }

// EncodeTo implements wire.Message.
func (m AuthenticationReject) EncodeTo(w *wire.Writer) { w.U8(m.Cause) }

// SecurityModeCommand activates NAS security with the chosen
// algorithm; it is the first integrity-protected downlink message.
type SecurityModeCommand struct {
	IntegrityAlg uint8
	CipherAlg    uint8
}

// Type implements Message.
func (SecurityModeCommand) Type() MsgType { return TypeSecurityModeCommand }

// EncodeTo implements wire.Message.
func (m SecurityModeCommand) EncodeTo(w *wire.Writer) {
	w.U8(m.IntegrityAlg)
	w.U8(m.CipherAlg)
}

// SecurityModeComplete acknowledges security activation.
type SecurityModeComplete struct{}

// Type implements Message.
func (SecurityModeComplete) Type() MsgType { return TypeSecurityModeComplete }

// EncodeTo implements wire.Message.
func (SecurityModeComplete) EncodeTo(*wire.Writer) {}

// AttachAccept completes registration and carries the default EPS
// bearer: the UE's IP address and bearer identity (ESM folded in, as
// the combined attach procedure does).
type AttachAccept struct {
	// GUTI is the temporary identity assigned to the UE.
	GUTI uint64
	// TrackingArea identifies the serving TA.
	TrackingArea uint16
	// EBI is the default bearer identity (5..15).
	EBI uint8
	// PDNAddress is the UE's assigned IP address, as a string.
	PDNAddress string
	// DirectBreakout reports dLTE semantics: traffic exits at the AP
	// rather than tunneling to a remote PGW (paper Fig. 1).
	DirectBreakout bool
}

// Type implements Message.
func (AttachAccept) Type() MsgType { return TypeAttachAccept }

// EncodeTo implements wire.Message.
func (m AttachAccept) EncodeTo(w *wire.Writer) {
	w.U64(m.GUTI)
	w.U16(m.TrackingArea)
	w.U8(m.EBI)
	w.String8(m.PDNAddress)
	w.Bool(m.DirectBreakout)
}

// AttachComplete acknowledges the accept.
type AttachComplete struct{}

// Type implements Message.
func (AttachComplete) Type() MsgType { return TypeAttachComplete }

// EncodeTo implements wire.Message.
func (AttachComplete) EncodeTo(*wire.Writer) {}

// AttachReject refuses registration.
type AttachReject struct {
	Cause uint8
}

// Type implements Message.
func (AttachReject) Type() MsgType { return TypeAttachReject }

// EncodeTo implements wire.Message.
func (m AttachReject) EncodeTo(w *wire.Writer) { w.U8(m.Cause) }

// DetachRequest releases registration (UE- or network-initiated).
type DetachRequest struct {
	GUTI uint64
}

// Type implements Message.
func (DetachRequest) Type() MsgType { return TypeDetachRequest }

// EncodeTo implements wire.Message.
func (m DetachRequest) EncodeTo(w *wire.Writer) { w.U64(m.GUTI) }

// DetachAccept acknowledges a detach.
type DetachAccept struct{}

// Type implements Message.
func (DetachAccept) Type() MsgType { return TypeDetachAccept }

// EncodeTo implements wire.Message.
func (DetachAccept) EncodeTo(*wire.Writer) {}

// TAURequest updates the UE's tracking area after idle mobility.
type TAURequest struct {
	GUTI         uint64
	TrackingArea uint16
}

// Type implements Message.
func (TAURequest) Type() MsgType { return TypeTAURequest }

// EncodeTo implements wire.Message.
func (m TAURequest) EncodeTo(w *wire.Writer) {
	w.U64(m.GUTI)
	w.U16(m.TrackingArea)
}

// TAUAccept confirms the tracking-area update.
type TAUAccept struct {
	TrackingArea uint16
}

// Type implements Message.
func (TAUAccept) Type() MsgType { return TypeTAUAccept }

// EncodeTo implements wire.Message.
func (m TAUAccept) EncodeTo(w *wire.Writer) { w.U16(m.TrackingArea) }

// TAUReject refuses a tracking-area update (e.g. unknown GUTI, forcing
// a fresh attach — which is what happens when a dLTE UE roams to an AP
// with no shared MME state).
type TAUReject struct {
	Cause uint8
}

// Type implements Message.
func (TAUReject) Type() MsgType { return TypeTAUReject }

// EncodeTo implements wire.Message.
func (m TAUReject) EncodeTo(w *wire.Writer) { w.U8(m.Cause) }

// Marshal serializes any NAS message with its type octet.
func Marshal(m Message) ([]byte, error) {
	return wire.Marshal(uint8(m.Type()), m)
}

// Decode parses a NAS message (which may be a Secured envelope; the
// caller unwraps it with Open).
func Decode(b []byte) (Message, error) {
	r := wire.NewReader(b)
	t := MsgType(r.U8())
	var m Message
	switch t {
	case TypeAttachRequest:
		m = &AttachRequest{IMSI: r.String8(), UECapabilities: r.String8(), FollowOnData: r.Bool()}
	case TypeAuthenticationRequest:
		m = &AuthenticationRequest{RAND: r.Bytes8(), AUTN: r.Bytes8()}
	case TypeAuthenticationResponse:
		m = &AuthenticationResponse{RES: r.Bytes8()}
	case TypeAuthenticationReject:
		m = &AuthenticationReject{Cause: r.U8()}
	case TypeSecurityModeCommand:
		m = &SecurityModeCommand{IntegrityAlg: r.U8(), CipherAlg: r.U8()}
	case TypeSecurityModeComplete:
		m = &SecurityModeComplete{}
	case TypeAttachAccept:
		m = &AttachAccept{GUTI: r.U64(), TrackingArea: r.U16(), EBI: r.U8(), PDNAddress: r.String8(), DirectBreakout: r.Bool()}
	case TypeAttachComplete:
		m = &AttachComplete{}
	case TypeAttachReject:
		m = &AttachReject{Cause: r.U8()}
	case TypeDetachRequest:
		m = &DetachRequest{GUTI: r.U64()}
	case TypeDetachAccept:
		m = &DetachAccept{}
	case TypeTAURequest:
		m = &TAURequest{GUTI: r.U64(), TrackingArea: r.U16()}
	case TypeTAUAccept:
		m = &TAUAccept{TrackingArea: r.U16()}
	case TypeTAUReject:
		m = &TAUReject{Cause: r.U8()}
	case TypeSecured:
		m = &Secured{Count: r.U32(), MAC: r.BytesN(4), Inner: r.Bytes16()}
	case TypeAuthenticationFailure:
		m = &AuthenticationFailure{Cause: r.U8(), AUTS: r.Bytes8()}
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownMessage, t)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("nas: decode %s: %w", t, err)
	}
	return m, nil
}
