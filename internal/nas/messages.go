// Package nas implements the subset of the LTE Non-Access-Stratum
// protocol a standard client exercises against an EPC (TS 24.301
// simplified): attach with mutual AKA, NAS security mode, default
// bearer establishment, detach, and tracking-area update — plus the
// integrity protection that makes the dLTE stub core look like a real
// network to an unmodified handset (paper §4.1).
//
// The wire codec is fixed-layout and allocation-free in both
// directions (DESIGN.md §9): AppendX encoders append a type octet and
// body into a caller-owned buffer, and DecodeView parses into a
// MsgView whose byte fields alias the input. Decoding is canonical —
// trailing bytes and non-{0,1} boolean octets are rejected — so every
// accepted encoding re-encodes byte-identically. The allocating
// Marshal/Decode pair remains as a convenience layered on top.
package nas

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dlte/internal/wire"
)

// MsgType identifies a NAS message.
type MsgType uint8

// NAS message types (values are local to this implementation).
const (
	TypeAttachRequest MsgType = iota + 1
	TypeAuthenticationRequest
	TypeAuthenticationResponse
	TypeAuthenticationReject
	TypeSecurityModeCommand
	TypeSecurityModeComplete
	TypeAttachAccept
	TypeAttachComplete
	TypeAttachReject
	TypeDetachRequest
	TypeDetachAccept
	TypeTAURequest
	TypeTAUAccept
	TypeTAUReject
	TypeSecured // integrity-protected envelope
	// TypeAuthenticationFailure carries the UE's rejection of a
	// network challenge — including the AUTS resynchronization token
	// on SQN failures (TS 24.301 §5.4.2.6).
	TypeAuthenticationFailure
)

// String names the message type for logs and tests.
func (t MsgType) String() string {
	switch t {
	case TypeAttachRequest:
		return "AttachRequest"
	case TypeAuthenticationRequest:
		return "AuthenticationRequest"
	case TypeAuthenticationResponse:
		return "AuthenticationResponse"
	case TypeAuthenticationReject:
		return "AuthenticationReject"
	case TypeSecurityModeCommand:
		return "SecurityModeCommand"
	case TypeSecurityModeComplete:
		return "SecurityModeComplete"
	case TypeAttachAccept:
		return "AttachAccept"
	case TypeAttachComplete:
		return "AttachComplete"
	case TypeAttachReject:
		return "AttachReject"
	case TypeDetachRequest:
		return "DetachRequest"
	case TypeDetachAccept:
		return "DetachAccept"
	case TypeTAURequest:
		return "TAURequest"
	case TypeTAUAccept:
		return "TAUAccept"
	case TypeTAUReject:
		return "TAUReject"
	case TypeSecured:
		return "Secured"
	case TypeAuthenticationFailure:
		return "AuthenticationFailure"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Message is any NAS message.
type Message interface {
	// Type reports the message's type octet.
	Type() MsgType
}

// Codec errors.
var (
	// ErrUnknownMessage reports an unrecognized type octet.
	ErrUnknownMessage = errors.New("nas: unknown message type")
	// ErrNonCanonical reports an encoding that parses but is not the
	// unique canonical form (trailing bytes, boolean octets other than
	// 0/1). Decoders reject these so that accepted input always
	// re-encodes byte-identically.
	ErrNonCanonical = errors.New("nas: non-canonical encoding")
)

// Cause codes for reject messages.
const (
	CauseIMSIUnknown   uint8 = 2
	CauseIllegalUE     uint8 = 3
	CauseAuthFailure   uint8 = 20
	CauseCongestion    uint8 = 22
	CauseNotAuthorized uint8 = 35
	CauseProtocolError uint8 = 111
)

// CauseSyncFailure marks an SQN synchronisation failure (TS 24.008
// cause #21).
const CauseSyncFailure uint8 = 21

// AttachRequest initiates registration. The IMSI is sent in clear on
// first attach (as in real LTE before a GUTI is assigned).
type AttachRequest struct {
	IMSI string
	// UECapabilities is an opaque capability string.
	UECapabilities string
	// FollowOnData requests immediate user-plane resources.
	FollowOnData bool
}

// Type implements Message.
func (AttachRequest) Type() MsgType { return TypeAttachRequest }

// AuthenticationRequest carries the AKA challenge.
type AuthenticationRequest struct {
	RAND []byte // 16 bytes
	AUTN []byte // 16 bytes
}

// Type implements Message.
func (AuthenticationRequest) Type() MsgType { return TypeAuthenticationRequest }

// AuthenticationResponse carries the UE's RES.
type AuthenticationResponse struct {
	RES []byte
}

// Type implements Message.
func (AuthenticationResponse) Type() MsgType { return TypeAuthenticationResponse }

// AuthenticationFailure reports the UE's rejection of the network's
// challenge. CauseSyncFailure carries AUTS so the HSS can
// resynchronize its sequence counter and retry.
type AuthenticationFailure struct {
	Cause uint8
	AUTS  []byte // 14 bytes when Cause == CauseSyncFailure
}

// Type implements Message.
func (AuthenticationFailure) Type() MsgType { return TypeAuthenticationFailure }

// AuthenticationReject aborts registration after failed AKA.
type AuthenticationReject struct {
	Cause uint8
}

// Type implements Message.
func (AuthenticationReject) Type() MsgType { return TypeAuthenticationReject }

// SecurityModeCommand activates NAS security with the chosen
// algorithm; it is the first integrity-protected downlink message.
type SecurityModeCommand struct {
	IntegrityAlg uint8
	CipherAlg    uint8
}

// Type implements Message.
func (SecurityModeCommand) Type() MsgType { return TypeSecurityModeCommand }

// SecurityModeComplete acknowledges security activation.
type SecurityModeComplete struct{}

// Type implements Message.
func (SecurityModeComplete) Type() MsgType { return TypeSecurityModeComplete }

// AttachAccept completes registration and carries the default EPS
// bearer: the UE's IP address and bearer identity (ESM folded in, as
// the combined attach procedure does).
type AttachAccept struct {
	// GUTI is the temporary identity assigned to the UE.
	GUTI uint64
	// TrackingArea identifies the serving TA.
	TrackingArea uint16
	// EBI is the default bearer identity (5..15).
	EBI uint8
	// PDNAddress is the UE's assigned IP address, as a string.
	PDNAddress string
	// DirectBreakout reports dLTE semantics: traffic exits at the AP
	// rather than tunneling to a remote PGW (paper Fig. 1).
	DirectBreakout bool
}

// Type implements Message.
func (AttachAccept) Type() MsgType { return TypeAttachAccept }

// AttachComplete acknowledges the accept.
type AttachComplete struct{}

// Type implements Message.
func (AttachComplete) Type() MsgType { return TypeAttachComplete }

// AttachReject refuses registration.
type AttachReject struct {
	Cause uint8
}

// Type implements Message.
func (AttachReject) Type() MsgType { return TypeAttachReject }

// DetachRequest releases registration (UE- or network-initiated).
type DetachRequest struct {
	GUTI uint64
}

// Type implements Message.
func (DetachRequest) Type() MsgType { return TypeDetachRequest }

// DetachAccept acknowledges a detach.
type DetachAccept struct{}

// Type implements Message.
func (DetachAccept) Type() MsgType { return TypeDetachAccept }

// TAURequest updates the UE's tracking area after idle mobility.
type TAURequest struct {
	GUTI         uint64
	TrackingArea uint16
}

// Type implements Message.
func (TAURequest) Type() MsgType { return TypeTAURequest }

// TAUAccept confirms the tracking-area update.
type TAUAccept struct {
	TrackingArea uint16
}

// Type implements Message.
func (TAUAccept) Type() MsgType { return TypeTAUAccept }

// TAUReject refuses a tracking-area update (e.g. unknown GUTI, forcing
// a fresh attach — which is what happens when a dLTE UE roams to an AP
// with no shared MME state).
type TAUReject struct {
	Cause uint8
}

// Type implements Message.
func (TAUReject) Type() MsgType { return TypeTAUReject }

// --- Append encoders -------------------------------------------------
//
// Each AppendX writes the type octet plus the fixed layout of X into
// dst and returns the extended slice. Encoders whose message carries
// length-prefixed fields return an error when a field exceeds its
// prefix; fixed-layout messages cannot fail and return only the
// buffer. Ownership of dst stays with the caller (DESIGN.md §7).

func appendBytes8(dst, b []byte) ([]byte, error) {
	if len(b) > math.MaxUint8 {
		return dst, fmt.Errorf("%w: length-8 field of %d bytes", wire.ErrOverflow, len(b))
	}
	dst = append(dst, uint8(len(b)))
	return append(dst, b...), nil
}

func appendString8(dst []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint8 {
		return dst, fmt.Errorf("%w: length-8 field of %d bytes", wire.ErrOverflow, len(s))
	}
	dst = append(dst, uint8(len(s)))
	return append(dst, s...), nil
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendAttachRequest appends a serialized AttachRequest to dst.
func AppendAttachRequest(dst []byte, m AttachRequest) ([]byte, error) {
	dst = append(dst, byte(TypeAttachRequest))
	dst, err := appendString8(dst, m.IMSI)
	if err != nil {
		return dst, err
	}
	if dst, err = appendString8(dst, m.UECapabilities); err != nil {
		return dst, err
	}
	return appendBool(dst, m.FollowOnData), nil
}

// AppendAuthenticationRequest appends a serialized challenge to dst.
func AppendAuthenticationRequest(dst []byte, m AuthenticationRequest) ([]byte, error) {
	dst = append(dst, byte(TypeAuthenticationRequest))
	dst, err := appendBytes8(dst, m.RAND)
	if err != nil {
		return dst, err
	}
	return appendBytes8(dst, m.AUTN)
}

// AppendAuthenticationResponse appends a serialized RES to dst.
func AppendAuthenticationResponse(dst []byte, m AuthenticationResponse) ([]byte, error) {
	dst = append(dst, byte(TypeAuthenticationResponse))
	return appendBytes8(dst, m.RES)
}

// AppendAuthenticationFailure appends a serialized failure to dst.
func AppendAuthenticationFailure(dst []byte, m AuthenticationFailure) ([]byte, error) {
	dst = append(dst, byte(TypeAuthenticationFailure), m.Cause)
	return appendBytes8(dst, m.AUTS)
}

// AppendAuthenticationReject appends a serialized reject to dst.
func AppendAuthenticationReject(dst []byte, m AuthenticationReject) []byte {
	return append(dst, byte(TypeAuthenticationReject), m.Cause)
}

// AppendSecurityModeCommand appends a serialized command to dst.
func AppendSecurityModeCommand(dst []byte, m SecurityModeCommand) []byte {
	return append(dst, byte(TypeSecurityModeCommand), m.IntegrityAlg, m.CipherAlg)
}

// AppendSecurityModeComplete appends the (empty) acknowledgment to dst.
func AppendSecurityModeComplete(dst []byte) []byte {
	return append(dst, byte(TypeSecurityModeComplete))
}

// AppendAttachAccept appends a serialized AttachAccept to dst.
func AppendAttachAccept(dst []byte, m AttachAccept) ([]byte, error) {
	dst = append(dst, byte(TypeAttachAccept))
	dst = binary.BigEndian.AppendUint64(dst, m.GUTI)
	dst = binary.BigEndian.AppendUint16(dst, m.TrackingArea)
	dst = append(dst, m.EBI)
	dst, err := appendString8(dst, m.PDNAddress)
	if err != nil {
		return dst, err
	}
	return appendBool(dst, m.DirectBreakout), nil
}

// AppendAttachComplete appends the (empty) acknowledgment to dst.
func AppendAttachComplete(dst []byte) []byte {
	return append(dst, byte(TypeAttachComplete))
}

// AppendAttachReject appends a serialized reject to dst.
func AppendAttachReject(dst []byte, m AttachReject) []byte {
	return append(dst, byte(TypeAttachReject), m.Cause)
}

// AppendDetachRequest appends a serialized DetachRequest to dst.
func AppendDetachRequest(dst []byte, m DetachRequest) []byte {
	dst = append(dst, byte(TypeDetachRequest))
	return binary.BigEndian.AppendUint64(dst, m.GUTI)
}

// AppendDetachAccept appends the (empty) acknowledgment to dst.
func AppendDetachAccept(dst []byte) []byte {
	return append(dst, byte(TypeDetachAccept))
}

// AppendTAURequest appends a serialized TAURequest to dst.
func AppendTAURequest(dst []byte, m TAURequest) []byte {
	dst = append(dst, byte(TypeTAURequest))
	dst = binary.BigEndian.AppendUint64(dst, m.GUTI)
	return binary.BigEndian.AppendUint16(dst, m.TrackingArea)
}

// AppendTAUAccept appends a serialized TAUAccept to dst.
func AppendTAUAccept(dst []byte, m TAUAccept) []byte {
	dst = append(dst, byte(TypeTAUAccept))
	return binary.BigEndian.AppendUint16(dst, m.TrackingArea)
}

// AppendTAUReject appends a serialized reject to dst.
func AppendTAUReject(dst []byte, m TAUReject) []byte {
	return append(dst, byte(TypeTAUReject), m.Cause)
}

// AppendSecured appends a Secured envelope (count ‖ MAC ‖ inner) to
// dst. mac must be exactly 4 bytes and inner at most 64 KiB.
func AppendSecured(dst []byte, count uint32, mac, inner []byte) ([]byte, error) {
	if len(mac) != 4 {
		return dst, fmt.Errorf("nas: secured MAC must be 4 bytes, got %d", len(mac))
	}
	if len(inner) > math.MaxUint16 {
		return dst, fmt.Errorf("%w: secured inner of %d bytes", wire.ErrOverflow, len(inner))
	}
	dst = append(dst, byte(TypeSecured))
	dst = binary.BigEndian.AppendUint32(dst, count)
	dst = append(dst, mac...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(inner)))
	return append(dst, inner...), nil
}

// AppendMessage appends any NAS message to dst, dispatching on its
// concrete type.
func AppendMessage(dst []byte, m Message) ([]byte, error) {
	switch t := m.(type) {
	case *AttachRequest:
		return AppendAttachRequest(dst, *t)
	case *AuthenticationRequest:
		return AppendAuthenticationRequest(dst, *t)
	case *AuthenticationResponse:
		return AppendAuthenticationResponse(dst, *t)
	case *AuthenticationFailure:
		return AppendAuthenticationFailure(dst, *t)
	case *AuthenticationReject:
		return AppendAuthenticationReject(dst, *t), nil
	case *SecurityModeCommand:
		return AppendSecurityModeCommand(dst, *t), nil
	case *SecurityModeComplete:
		return AppendSecurityModeComplete(dst), nil
	case *AttachAccept:
		return AppendAttachAccept(dst, *t)
	case *AttachComplete:
		return AppendAttachComplete(dst), nil
	case *AttachReject:
		return AppendAttachReject(dst, *t), nil
	case *DetachRequest:
		return AppendDetachRequest(dst, *t), nil
	case *DetachAccept:
		return AppendDetachAccept(dst), nil
	case *TAURequest:
		return AppendTAURequest(dst, *t), nil
	case *TAUAccept:
		return AppendTAUAccept(dst, *t), nil
	case *TAUReject:
		return AppendTAUReject(dst, *t), nil
	case *Secured:
		return AppendSecured(dst, t.Count, t.MAC, t.Inner)
	default:
		return dst, fmt.Errorf("%w: %T", ErrUnknownMessage, m)
	}
}

// Marshal serializes any NAS message with its type octet into a fresh
// buffer.
func Marshal(m Message) ([]byte, error) {
	out, err := AppendMessage(make([]byte, 0, 64), m)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// --- View decoder ----------------------------------------------------

// MsgView is the decoded form of any NAS message: a type tag plus the
// union of all message fields. Byte-slice and string-backed fields are
// views aliasing the decoded buffer — valid only while the caller owns
// that buffer, never retained (DESIGN.md §7). Fields not carried by
// the decoded type are zero.
type MsgView struct {
	Type MsgType

	// Views into the decoded buffer.
	IMSI           []byte // AttachRequest
	UECapabilities []byte // AttachRequest
	RAND           []byte // AuthenticationRequest
	AUTN           []byte // AuthenticationRequest
	RES            []byte // AuthenticationResponse
	AUTS           []byte // AuthenticationFailure
	PDNAddress     []byte // AttachAccept
	MAC            []byte // Secured (4 bytes)
	Inner          []byte // Secured

	GUTI         uint64 // AttachAccept, DetachRequest, TAURequest
	Count        uint32 // Secured
	TrackingArea uint16 // AttachAccept, TAURequest, TAUAccept
	Cause        uint8  // rejects, AuthenticationFailure
	IntegrityAlg uint8  // SecurityModeCommand
	CipherAlg    uint8  // SecurityModeCommand
	EBI          uint8  // AttachAccept

	FollowOnData   bool // AttachRequest
	DirectBreakout bool // AttachAccept
}

// DecodeView parses one NAS message into v without copying: byte
// fields alias b. Decoding is strict — unknown types, truncation,
// trailing bytes, and non-canonical boolean octets are all errors — so
// any accepted input is the unique encoding of the result.
func DecodeView(b []byte, v *MsgView) error {
	*v = MsgView{}
	r := *wire.NewReader(b)
	t := MsgType(r.U8())
	v.Type = t
	boolOctet := uint8(0)
	switch t {
	case TypeAttachRequest:
		v.IMSI = r.View8()
		v.UECapabilities = r.View8()
		boolOctet = r.U8()
		v.FollowOnData = boolOctet == 1
	case TypeAuthenticationRequest:
		v.RAND = r.View8()
		v.AUTN = r.View8()
	case TypeAuthenticationResponse:
		v.RES = r.View8()
	case TypeAuthenticationReject:
		v.Cause = r.U8()
	case TypeSecurityModeCommand:
		v.IntegrityAlg = r.U8()
		v.CipherAlg = r.U8()
	case TypeSecurityModeComplete, TypeAttachComplete, TypeDetachAccept:
		// Empty bodies.
	case TypeAttachAccept:
		v.GUTI = r.U64()
		v.TrackingArea = r.U16()
		v.EBI = r.U8()
		v.PDNAddress = r.View8()
		boolOctet = r.U8()
		v.DirectBreakout = boolOctet == 1
	case TypeAttachReject:
		v.Cause = r.U8()
	case TypeDetachRequest:
		v.GUTI = r.U64()
	case TypeTAURequest:
		v.GUTI = r.U64()
		v.TrackingArea = r.U16()
	case TypeTAUAccept:
		v.TrackingArea = r.U16()
	case TypeTAUReject:
		v.Cause = r.U8()
	case TypeSecured:
		v.Count = r.U32()
		v.MAC = r.ViewN(4)
		v.Inner = r.View16()
	case TypeAuthenticationFailure:
		v.Cause = r.U8()
		v.AUTS = r.View8()
	default:
		return fmt.Errorf("%w: %d", ErrUnknownMessage, t)
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("nas: decode %s: %w", t, err)
	}
	if boolOctet > 1 {
		return fmt.Errorf("nas: decode %s: %w: boolean octet %d", t, ErrNonCanonical, boolOctet)
	}
	if n := r.Remaining(); n != 0 {
		return fmt.Errorf("nas: decode %s: %w: %d trailing bytes", t, ErrNonCanonical, n)
	}
	return nil
}

// bcopy copies a view into a fresh heap slice for the materialized
// message forms.
func bcopy(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Materialize copies the view into the concrete heap-owned message
// struct for its type, detaching it from the decoded buffer.
func (v *MsgView) Materialize() Message {
	switch v.Type {
	case TypeAttachRequest:
		return &AttachRequest{IMSI: string(v.IMSI), UECapabilities: string(v.UECapabilities), FollowOnData: v.FollowOnData}
	case TypeAuthenticationRequest:
		return &AuthenticationRequest{RAND: bcopy(v.RAND), AUTN: bcopy(v.AUTN)}
	case TypeAuthenticationResponse:
		return &AuthenticationResponse{RES: bcopy(v.RES)}
	case TypeAuthenticationReject:
		return &AuthenticationReject{Cause: v.Cause}
	case TypeSecurityModeCommand:
		return &SecurityModeCommand{IntegrityAlg: v.IntegrityAlg, CipherAlg: v.CipherAlg}
	case TypeSecurityModeComplete:
		return &SecurityModeComplete{}
	case TypeAttachAccept:
		return &AttachAccept{GUTI: v.GUTI, TrackingArea: v.TrackingArea, EBI: v.EBI, PDNAddress: string(v.PDNAddress), DirectBreakout: v.DirectBreakout}
	case TypeAttachComplete:
		return &AttachComplete{}
	case TypeAttachReject:
		return &AttachReject{Cause: v.Cause}
	case TypeDetachRequest:
		return &DetachRequest{GUTI: v.GUTI}
	case TypeDetachAccept:
		return &DetachAccept{}
	case TypeTAURequest:
		return &TAURequest{GUTI: v.GUTI, TrackingArea: v.TrackingArea}
	case TypeTAUAccept:
		return &TAUAccept{TrackingArea: v.TrackingArea}
	case TypeTAUReject:
		return &TAUReject{Cause: v.Cause}
	case TypeSecured:
		return &Secured{Count: v.Count, MAC: bcopy(v.MAC), Inner: bcopy(v.Inner)}
	case TypeAuthenticationFailure:
		return &AuthenticationFailure{Cause: v.Cause, AUTS: bcopy(v.AUTS)}
	default:
		return nil
	}
}

// Decode parses a NAS message into its heap-owned concrete struct
// (which may be a Secured envelope; the caller unwraps it with Open).
func Decode(b []byte) (Message, error) {
	var v MsgView
	if err := DecodeView(b, &v); err != nil {
		return nil, err
	}
	return v.Materialize(), nil
}
