package nas

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanics feeds random byte soup into the NAS decoder:
// a dLTE stub parses frames from unauthenticated radios, so the
// decoder must fail cleanly on anything.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", b, r)
			}
		}()
		msg, err := Decode(b)
		// Either a clean error or a decodable message that re-encodes.
		if err == nil && msg != nil {
			if _, merr := Marshal(msg); merr != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeValidPrefixRandomTail prepends valid type octets to random
// tails, hitting every decoder arm.
func TestDecodeValidPrefixRandomTail(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for typ := byte(1); typ <= byte(TypeAuthenticationFailure); typ++ {
		for i := 0; i < 200; i++ {
			tail := make([]byte, rng.Intn(64))
			rng.Read(tail)
			buf := append([]byte{typ}, tail...)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("type %d panicked on %x: %v", typ, tail, r)
					}
				}()
				Decode(buf)
			}()
		}
	}
}

// TestSecuredOpenNeverPanics exercises the security layer with
// attacker-shaped envelopes.
func TestSecuredOpenNeverPanics(t *testing.T) {
	var ctx SecurityContext
	ctx.Activate(make([]byte, 32))
	f := func(count uint32, mac, inner []byte) bool {
		defer func() { recover() }()
		_, err := ctx.Open(&Secured{Count: count, MAC: mac, Inner: inner})
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// FuzzDecode is the coverage-guided companion to the quick checks
// above, run against the binary fixed-layout decoder. The invariant is
// stronger than "no panic": the decoder is strict (no trailing bytes,
// boolean octets must be 0 or 1), so any input it accepts is already
// the canonical serialization of the result — re-encoding the
// materialized message must reproduce the input byte for byte. That
// property is what closes the mis-parse class where two distinct byte
// strings decode to the same message (replay/dedup confusion on an
// open radio).
//
// Run the seeds with `go test`; explore with
// `go test -fuzz=FuzzDecode ./internal/nas`.
func FuzzDecode(f *testing.F) {
	seed := func(m Message) []byte {
		b, err := Marshal(m)
		if err != nil {
			panic(err)
		}
		return b
	}
	f.Add([]byte{})
	f.Add([]byte{byte(TypeAttachRequest)})
	f.Add([]byte{0xFF, 1, 2, 3})
	f.Add(seed(&AttachRequest{IMSI: "001010000000001", UECapabilities: "cat4", FollowOnData: true}))
	f.Add(seed(&AuthenticationRequest{RAND: make([]byte, 16), AUTN: make([]byte, 16)}))
	f.Add(seed(&AuthenticationResponse{RES: []byte{1, 2, 3, 4, 5, 6, 7, 8}}))
	f.Add(seed(&AuthenticationFailure{Cause: CauseSyncFailure, AUTS: make([]byte, 14)}))
	f.Add(seed(&AuthenticationReject{Cause: CauseAuthFailure}))
	f.Add(seed(&SecurityModeCommand{IntegrityAlg: 1, CipherAlg: 0}))
	f.Add(seed(&SecurityModeComplete{}))
	f.Add(seed(&AttachAccept{GUTI: 0x1001, TrackingArea: 7, EBI: 5, PDNAddress: "10.45.0.2", DirectBreakout: true}))
	f.Add(seed(&AttachComplete{}))
	f.Add(seed(&AttachReject{Cause: CauseIMSIUnknown}))
	f.Add(seed(&DetachRequest{GUTI: 0x1001}))
	f.Add(seed(&DetachAccept{}))
	f.Add(seed(&TAURequest{GUTI: 0x1001, TrackingArea: 9}))
	f.Add(seed(&TAUAccept{TrackingArea: 9}))
	f.Add(seed(&TAUReject{Cause: CauseIllegalUE}))
	f.Add(seed(&Secured{Count: 3, MAC: []byte{1, 2, 3, 4}, Inner: []byte{5, 6}}))
	f.Add(append(seed(&AttachComplete{}), 0xDE))         // trailing byte must be rejected
	f.Add([]byte{byte(TypeAttachRequest), 1, 'a', 0, 2}) // bool octet 2: non-canonical

	f.Fuzz(func(t *testing.T, b []byte) {
		var v MsgView
		if err := DecodeView(b, &v); err != nil {
			return
		}
		round, err := Marshal(v.Materialize())
		if err != nil {
			t.Fatalf("accepted input does not re-marshal: %v", err)
		}
		if !bytes.Equal(b, round) {
			t.Fatalf("accepted a non-canonical encoding:\n  in  %x\n  out %x", b, round)
		}
	})
}
