package nas

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanics feeds random byte soup into the NAS decoder:
// a dLTE stub parses frames from unauthenticated radios, so the
// decoder must fail cleanly on anything.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", b, r)
			}
		}()
		msg, err := Decode(b)
		// Either a clean error or a decodable message that re-encodes.
		if err == nil && msg != nil {
			if _, merr := Marshal(msg); merr != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeValidPrefixRandomTail prepends valid type octets to random
// tails, hitting every decoder arm.
func TestDecodeValidPrefixRandomTail(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for typ := byte(1); typ <= byte(TypeAuthenticationFailure); typ++ {
		for i := 0; i < 200; i++ {
			tail := make([]byte, rng.Intn(64))
			rng.Read(tail)
			buf := append([]byte{typ}, tail...)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("type %d panicked on %x: %v", typ, tail, r)
					}
				}()
				Decode(buf)
			}()
		}
	}
}

// TestSecuredOpenNeverPanics exercises the security layer with
// attacker-shaped envelopes.
func TestSecuredOpenNeverPanics(t *testing.T) {
	var ctx SecurityContext
	ctx.Activate(make([]byte, 32))
	f := func(count uint32, mac, inner []byte) bool {
		defer func() { recover() }()
		_, err := ctx.Open(&Secured{Count: count, MAC: mac, Inner: inner})
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
