package nas

import (
	"testing"

	"dlte/internal/auth"
	"dlte/internal/session"
	"dlte/internal/wire"
)

// benchPair is a provisioned UE + network session sharing one HSS,
// with pooled frames for each direction — the steady-state signaling
// setup an attach storm hammers.
type benchPair struct {
	ue  *UE
	net *NetworkSession
	up  []byte // pooled uplink frame
	dn  []byte // pooled downlink frame
}

func newBenchPair(b *testing.B) *benchPair {
	b.Helper()
	sim, err := auth.NewSIM("001010000000099")
	if err != nil {
		b.Fatal(err)
	}
	hss := auth.NewSubscriberDB(false)
	if err := hss.Provision(sim); err != nil {
		b.Fatal(err)
	}
	u, err := NewUE(sim)
	if err != nil {
		b.Fatal(err)
	}
	n := NewNetworkSession(NetworkConfig{
		HSS:              hss,
		ServingNetworkID: "dlte-bench",
		TrackingArea:     7,
		DirectBreakout:   true,
		AllocateIP:       func(string) (string, error) { return "198.51.100.1", nil },
		AllocateGUTI:     func() uint64 { return 0x2001 },
		KnownGUTI:        func(g uint64) bool { return g == 0x2001 },
	})
	p := &benchPair{ue: u, net: n, up: wire.GetFrame(), dn: wire.GetFrame()}
	b.Cleanup(func() { wire.PutFrame(p.up); wire.PutFrame(p.dn) })
	return p
}

// attach runs one full attach handshake through the pooled append
// paths, reusing the pair's two frames for every leg.
func (p *benchPair) attach(b *testing.B) {
	up, err := p.ue.StartAttachAppend(p.up[:0], "dlte-bench")
	if err != nil {
		b.Fatal(err)
	}
	for {
		dn, _, err := p.net.HandleAppend(up, p.dn[:0])
		if err != nil {
			b.Fatal(err)
		}
		if len(dn) == 0 {
			if p.net.State() != session.Attached {
				b.Fatalf("network silent in %v", p.net.State())
			}
			return
		}
		up, _, err = p.ue.HandleAppend(dn, p.up[:0])
		if err != nil {
			b.Fatal(err)
		}
		if len(up) == 0 {
			b.Fatal("UE silent mid-attach")
		}
	}
}

// BenchmarkNASProcedure measures the full two-sided NAS signaling cost
// of each registration procedure over the binary wire: every message
// is appended into a reused pooled frame, decoded by view, and
// integrity-protected through the reusable MAC context. These are the
// gated allocation floors (BENCH_BASELINE.json): steady-state attach
// costs two allocations — the HSS's vector and the SIM's AKA result —
// and detach/TAU cost zero.
func BenchmarkNASProcedure(b *testing.B) {
	b.Run("attach", func(b *testing.B) {
		p := newBenchPair(b)
		p.attach(b) // warm: first attach allocates the session's durable state
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.attach(b) // re-attach supersedes, exercising the full AKA path
		}
	})
	b.Run("detach", func(b *testing.B) {
		p := newBenchPair(b)
		p.attach(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			up, err := p.ue.StartDetachAppend(p.up[:0])
			if err != nil {
				b.Fatal(err)
			}
			dn, ev, err := p.net.HandleAppend(up, p.dn[:0])
			if err != nil || ev.Kind != EventDetached {
				b.Fatalf("detach: ev=%v err=%v", ev.Kind, err)
			}
			if _, done, err := p.ue.HandleAppend(dn, p.up[:0]); err != nil || !done {
				b.Fatalf("detach accept: done=%v err=%v", done, err)
			}
			// Restore registration white-box (the FSM transitions and UE
			// state are scalar flips) so each iteration measures only the
			// detach exchange.
			for _, ev := range []session.Event{
				session.EvAttachRequest, session.EvAuthSuccess,
				session.EvSecurityComplete, session.EvAttachComplete,
			} {
				if _, err := p.net.FSM().Fire(ev); err != nil {
					b.Fatal(err)
				}
			}
			p.ue.state = UERegistered
			p.ue.GUTI = 0x2001
		}
	})
	b.Run("tau", func(b *testing.B) {
		p := newBenchPair(b)
		p.attach(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			up, err := p.ue.StartTAUAppend(p.up[:0], 9)
			if err != nil {
				b.Fatal(err)
			}
			dn, _, err := p.net.HandleAppend(up, p.dn[:0])
			if err != nil {
				b.Fatal(err)
			}
			if _, done, err := p.ue.HandleAppend(dn, p.up[:0]); err != nil || !done {
				b.Fatalf("tau: done=%v err=%v", done, err)
			}
		}
	})
}

// TestNASProcedureAllocGates pins the per-procedure allocation floors
// outside the benchmark harness, so a plain `go test` catches a
// regression without running benchmarks: steady-state attach ≤2
// allocs (HSS vector + SIM AKA result), detach and TAU 0.
func TestNASProcedureAllocGates(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate needs quiesced allocator")
	}
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector; pooled paths allocate by design")
	}
	p := newBenchPairT(t)
	attach := func() {
		up, err := p.ue.StartAttachAppend(p.up[:0], "dlte-bench")
		if err != nil {
			t.Fatal(err)
		}
		for {
			dn, _, herr := p.net.HandleAppend(up, p.dn[:0])
			if herr != nil {
				t.Fatal(herr)
			}
			if len(dn) == 0 {
				return
			}
			up, _, herr = p.ue.HandleAppend(dn, p.up[:0])
			if herr != nil {
				t.Fatal(herr)
			}
		}
	}
	attach() // warm durable state
	if g := testing.AllocsPerRun(200, attach); g > 2 {
		t.Errorf("attach = %.1f allocs/op, want ≤2", g)
	}
	if g := testing.AllocsPerRun(200, func() {
		up, _ := p.ue.StartTAUAppend(p.up[:0], 9)
		dn, _, err := p.net.HandleAppend(up, p.dn[:0])
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := p.ue.HandleAppend(dn, p.up[:0]); err != nil {
			t.Fatal(err)
		}
	}); g > 0 {
		t.Errorf("TAU = %.1f allocs/op, want 0", g)
	}
	if g := testing.AllocsPerRun(200, func() {
		up, err := p.ue.StartDetachAppend(p.up[:0])
		if err != nil {
			t.Fatal(err)
		}
		dn, _, err := p.net.HandleAppend(up, p.dn[:0])
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := p.ue.HandleAppend(dn, p.up[:0]); err != nil {
			t.Fatal(err)
		}
		for _, ev := range []session.Event{
			session.EvAttachRequest, session.EvAuthSuccess,
			session.EvSecurityComplete, session.EvAttachComplete,
		} {
			p.net.FSM().Fire(ev)
		}
		p.ue.state = UERegistered
		p.ue.GUTI = 0x2001
	}); g > 0 {
		t.Errorf("detach = %.1f allocs/op, want 0", g)
	}
}

// newBenchPairT mirrors newBenchPair for tests.
func newBenchPairT(t *testing.T) *benchPair {
	t.Helper()
	sim, err := auth.NewSIM("001010000000099")
	if err != nil {
		t.Fatal(err)
	}
	hss := auth.NewSubscriberDB(false)
	if err := hss.Provision(sim); err != nil {
		t.Fatal(err)
	}
	u, err := NewUE(sim)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNetworkSession(NetworkConfig{
		HSS:              hss,
		ServingNetworkID: "dlte-bench",
		TrackingArea:     7,
		DirectBreakout:   true,
		AllocateIP:       func(string) (string, error) { return "198.51.100.1", nil },
		AllocateGUTI:     func() uint64 { return 0x2001 },
		KnownGUTI:        func(g uint64) bool { return g == 0x2001 },
	})
	p := &benchPair{ue: u, net: n, up: wire.GetFrame(), dn: wire.GetFrame()}
	t.Cleanup(func() { wire.PutFrame(p.up); wire.PutFrame(p.dn) })
	return p
}
