package nas

import (
	"fmt"

	"dlte/internal/auth"
	"dlte/internal/session"
)

// EventKind classifies session events surfaced to the MME.
type EventKind int

// Session events.
const (
	EventNone EventKind = iota
	// EventRegistered fires when AttachComplete lands: the session is
	// live and the data path can be activated.
	EventRegistered
	// EventDetached fires on detach completion.
	EventDetached
	// EventAuthFailed fires when the UE fails authentication.
	EventAuthFailed
	// EventRejected fires when the network rejects the UE.
	EventRejected
)

// Event is a session state change of interest to the surrounding EPC.
type Event struct {
	Kind EventKind
	IMSI string
	IP   string
	GUTI uint64
}

// NetworkConfig wires a NAS session to its EPC environment.
type NetworkConfig struct {
	// HSS is the subscriber store to authenticate against.
	HSS *auth.SubscriberDB
	// ServingNetworkID is bound into KASME; in dLTE it names the AP.
	ServingNetworkID string
	// TrackingArea is advertised in AttachAccept.
	TrackingArea uint16
	// DirectBreakout marks dLTE semantics in AttachAccept.
	DirectBreakout bool
	// AllocateIP assigns the UE's PDN address at accept time.
	AllocateIP func(imsi string) (string, error)
	// AllocateGUTI assigns a temporary identity.
	AllocateGUTI func() uint64
	// KnownGUTI reports whether a GUTI belongs to this MME (for TAU).
	KnownGUTI func(guti uint64) bool
}

// NetworkSession is the network-side NAS protocol handler for one UE.
// Lifecycle state lives in the embedded session.Machine: Handle fires
// the event for each uplink message before performing its side
// effects, so an out-of-order message is rejected with a typed
// *session.TransitionError and changes nothing.
type NetworkSession struct {
	cfg      NetworkConfig
	fsm      session.Machine
	imsi     string
	vector   auth.Vector
	sec      SecurityContext
	guti     uint64
	ip       string
	ebi      uint8
	resynced bool
}

// NewNetworkSession builds a session.
func NewNetworkSession(cfg NetworkConfig) *NetworkSession {
	return &NetworkSession{cfg: cfg}
}

// State reports the current lifecycle state.
func (s *NetworkSession) State() session.State { return s.fsm.State() }

// FSM exposes the lifecycle machine so EPC-level paths (context
// release, X2 handover completion) can drive the same authority NAS
// processing uses.
func (s *NetworkSession) FSM() *session.Machine { return &s.fsm }

// IMSI reports the peer identity (set after AttachRequest).
func (s *NetworkSession) IMSI() string { return s.imsi }

// IP reports the assigned PDN address (set at accept).
func (s *NetworkSession) IP() string { return s.ip }

// GUTI reports the assigned temporary identity.
func (s *NetworkSession) GUTI() uint64 { return s.guti }

// Handle processes one uplink NAS message, returning the downlink
// reply (nil if none) and an Event for the surrounding EPC.
func (s *NetworkSession) Handle(b []byte) (reply []byte, ev Event, err error) {
	msg, err := Decode(b)
	if err != nil {
		return nil, Event{}, err
	}
	if env, ok := msg.(*Secured); ok {
		if !s.sec.Active() {
			return nil, Event{}, fmt.Errorf("nas: protected uplink before security activation")
		}
		msg, err = s.sec.Open(env)
		if err != nil {
			return nil, Event{}, err
		}
	}

	switch m := msg.(type) {
	case *AttachRequest:
		if _, ferr := s.fsm.Fire(session.EvAttachRequest); ferr != nil {
			return nil, Event{}, ferr
		}
		s.imsi = m.IMSI
		s.resynced = false // fresh attach, fresh resync-loop budget
		if !s.cfg.HSS.Known(auth.IMSI(m.IMSI)) {
			s.fsm.Fire(session.EvReject)
			out, merr := Marshal(&AttachReject{Cause: CauseIMSIUnknown})
			return out, Event{Kind: EventRejected, IMSI: m.IMSI}, merr
		}
		v, verr := s.cfg.HSS.NextVector(auth.IMSI(m.IMSI), s.cfg.ServingNetworkID)
		if verr != nil {
			s.fsm.Fire(session.EvReject)
			out, merr := Marshal(&AttachReject{Cause: CauseProtocolError})
			return out, Event{Kind: EventRejected, IMSI: m.IMSI}, joinErr(verr, merr)
		}
		s.vector = v
		out, merr := Marshal(&AuthenticationRequest{RAND: v.RAND, AUTN: v.AUTN})
		return out, Event{}, merr

	case *AuthenticationFailure:
		if m.Cause != CauseSyncFailure || s.resynced {
			// Either an unrecoverable failure or a second resync in one
			// attach (a loop guard): give up on this UE.
			if _, ferr := s.fsm.Fire(session.EvAuthFailure); ferr != nil {
				return nil, Event{}, ferr
			}
			out, merr := Marshal(&AttachReject{Cause: CauseAuthFailure})
			return out, Event{Kind: EventAuthFailed, IMSI: s.imsi}, merr
		}
		if _, ferr := s.fsm.Fire(session.EvAuthResync); ferr != nil {
			return nil, Event{}, ferr
		}
		if rerr := s.cfg.HSS.Resynchronize(auth.IMSI(s.imsi), s.vector.RAND, m.AUTS); rerr != nil {
			s.fsm.Fire(session.EvAuthFailure)
			out, merr := Marshal(&AuthenticationReject{Cause: CauseAuthFailure})
			return out, Event{Kind: EventAuthFailed, IMSI: s.imsi}, joinErr(rerr, merr)
		}
		s.resynced = true
		v, verr := s.cfg.HSS.NextVector(auth.IMSI(s.imsi), s.cfg.ServingNetworkID)
		if verr != nil {
			s.fsm.Fire(session.EvReject)
			out, merr := Marshal(&AttachReject{Cause: CauseProtocolError})
			return out, Event{Kind: EventRejected, IMSI: s.imsi}, joinErr(verr, merr)
		}
		s.vector = v
		out, merr := Marshal(&AuthenticationRequest{RAND: v.RAND, AUTN: v.AUTN})
		return out, Event{}, merr

	case *AuthenticationResponse:
		if cerr := auth.CheckRES(s.vector, m.RES); cerr != nil {
			if _, ferr := s.fsm.Fire(session.EvAuthFailure); ferr != nil {
				return nil, Event{}, ferr
			}
			out, merr := Marshal(&AuthenticationReject{Cause: CauseAuthFailure})
			return out, Event{Kind: EventAuthFailed, IMSI: s.imsi}, joinErr(cerr, merr)
		}
		if _, ferr := s.fsm.Fire(session.EvAuthSuccess); ferr != nil {
			return nil, Event{}, ferr
		}
		s.sec.Activate(s.vector.KASME)
		env, serr := s.sec.Seal(&SecurityModeCommand{IntegrityAlg: 1, CipherAlg: 0})
		if serr != nil {
			return nil, Event{}, serr
		}
		out, merr := Marshal(env)
		return out, Event{}, merr

	case *SecurityModeComplete:
		if _, ferr := s.fsm.Fire(session.EvSecurityComplete); ferr != nil {
			return nil, Event{}, ferr
		}
		ip, aerr := s.cfg.AllocateIP(s.imsi)
		if aerr != nil {
			s.fsm.Fire(session.EvReject)
			out, merr := Marshal(&AttachReject{Cause: CauseCongestion})
			return out, Event{Kind: EventRejected, IMSI: s.imsi}, joinErr(aerr, merr)
		}
		s.ip = ip
		s.guti = s.cfg.AllocateGUTI()
		s.ebi = 5
		env, serr := s.sec.Seal(&AttachAccept{
			GUTI:           s.guti,
			TrackingArea:   s.cfg.TrackingArea,
			EBI:            s.ebi,
			PDNAddress:     s.ip,
			DirectBreakout: s.cfg.DirectBreakout,
		})
		if serr != nil {
			return nil, Event{}, serr
		}
		out, merr := Marshal(env)
		return out, Event{}, merr

	case *AttachComplete:
		if _, ferr := s.fsm.Fire(session.EvAttachComplete); ferr != nil {
			return nil, Event{}, ferr
		}
		return nil, Event{Kind: EventRegistered, IMSI: s.imsi, IP: s.ip, GUTI: s.guti}, nil

	case *DetachRequest:
		if _, ferr := s.fsm.Fire(session.EvDetachRequest); ferr != nil {
			return nil, Event{}, ferr
		}
		env, serr := s.sec.Seal(&DetachAccept{})
		if serr != nil {
			return nil, Event{}, serr
		}
		out, merr := Marshal(env)
		return out, Event{Kind: EventDetached, IMSI: s.imsi, GUTI: m.GUTI}, merr

	case *TAURequest:
		if _, ferr := s.fsm.Fire(session.EvTAURequest); ferr != nil {
			return nil, Event{}, ferr
		}
		if s.cfg.KnownGUTI != nil && s.cfg.KnownGUTI(m.GUTI) {
			out, merr := Marshal(&TAUAccept{TrackingArea: m.TrackingArea})
			return out, Event{}, merr
		}
		// Unknown GUTI: this MME has no context for the UE — the
		// standard response that forces a fresh attach, and the normal
		// case when roaming between independent dLTE APs.
		out, merr := Marshal(&TAUReject{Cause: CauseIllegalUE})
		return out, Event{}, merr

	default:
		return nil, Event{}, fmt.Errorf("%w: %s in %s", ErrUnexpectedMessage, msg.Type(), s.fsm.State())
	}
}

func joinErr(primary, secondary error) error {
	if primary != nil {
		return primary
	}
	return secondary
}
