package nas

import (
	"fmt"

	"dlte/internal/auth"
	"dlte/internal/session"
	"dlte/internal/wire"
)

// EventKind classifies session events surfaced to the MME.
type EventKind int

// Session events.
const (
	EventNone EventKind = iota
	// EventRegistered fires when AttachComplete lands: the session is
	// live and the data path can be activated.
	EventRegistered
	// EventDetached fires on detach completion.
	EventDetached
	// EventAuthFailed fires when the UE fails authentication.
	EventAuthFailed
	// EventRejected fires when the network rejects the UE.
	EventRejected
)

// Event is a session state change of interest to the surrounding EPC.
type Event struct {
	Kind EventKind
	IMSI string
	IP   string
	GUTI uint64
}

// NetworkConfig wires a NAS session to its EPC environment.
type NetworkConfig struct {
	// HSS is the subscriber store to authenticate against.
	HSS *auth.SubscriberDB
	// ServingNetworkID is bound into KASME; in dLTE it names the AP.
	ServingNetworkID string
	// TrackingArea is advertised in AttachAccept.
	TrackingArea uint16
	// DirectBreakout marks dLTE semantics in AttachAccept.
	DirectBreakout bool
	// AllocateIP assigns the UE's PDN address at accept time.
	AllocateIP func(imsi string) (string, error)
	// AllocateGUTI assigns a temporary identity.
	AllocateGUTI func() uint64
	// KnownGUTI reports whether a GUTI belongs to this MME (for TAU).
	KnownGUTI func(guti uint64) bool
}

// NetworkSession is the network-side NAS protocol handler for one UE.
// Lifecycle state lives in the embedded session.Machine: Handle fires
// the event for each uplink message before performing its side
// effects, so an out-of-order message is rejected with a typed
// *session.TransitionError and changes nothing.
type NetworkSession struct {
	cfg      NetworkConfig
	fsm      session.Machine
	imsi     string
	vector   auth.Vector
	sec      SecurityContext
	guti     uint64
	ip       string
	ebi      uint8
	resynced bool
}

// NewNetworkSession builds a session.
func NewNetworkSession(cfg NetworkConfig) *NetworkSession {
	return &NetworkSession{cfg: cfg}
}

// State reports the current lifecycle state.
func (s *NetworkSession) State() session.State { return s.fsm.State() }

// FSM exposes the lifecycle machine so EPC-level paths (context
// release, X2 handover completion) can drive the same authority NAS
// processing uses.
func (s *NetworkSession) FSM() *session.Machine { return &s.fsm }

// IMSI reports the peer identity (set after AttachRequest).
func (s *NetworkSession) IMSI() string { return s.imsi }

// IP reports the assigned PDN address (set at accept).
func (s *NetworkSession) IP() string { return s.ip }

// GUTI reports the assigned temporary identity.
func (s *NetworkSession) GUTI() uint64 { return s.guti }

// Handle processes one uplink NAS message, returning the downlink
// reply (nil if none) and an Event for the surrounding EPC.
func (s *NetworkSession) Handle(b []byte) (reply []byte, ev Event, err error) {
	out, ev, err := s.HandleAppend(b, nil)
	if len(out) == 0 {
		return nil, ev, err
	}
	return out, ev, err
}

// HandleAppend processes one uplink NAS message and appends any
// downlink reply to dst (typically a pooled frame whose ownership
// stays with the caller). A reply exists iff the returned buffer is
// longer than dst. Views into b are not retained past the call.
func (s *NetworkSession) HandleAppend(b, dst []byte) (out []byte, ev Event, err error) {
	var v MsgView
	if derr := DecodeView(b, &v); derr != nil {
		return dst, Event{}, derr
	}
	if v.Type == TypeSecured {
		if !s.sec.Active() {
			return dst, Event{}, fmt.Errorf("nas: protected uplink before security activation")
		}
		if oerr := s.sec.OpenView(v.Count, v.MAC, v.Inner); oerr != nil {
			return dst, Event{}, oerr
		}
		inner := v.Inner
		if derr := DecodeView(inner, &v); derr != nil {
			return dst, Event{}, derr
		}
	}

	switch v.Type {
	case TypeAttachRequest:
		if _, ferr := s.fsm.Fire(session.EvAttachRequest); ferr != nil {
			return dst, Event{}, ferr
		}
		if s.imsi != string(v.IMSI) { // comparison allocates nothing; a re-attach keeps its string
			s.imsi = string(v.IMSI)
		}
		s.resynced = false // fresh attach, fresh resync-loop budget
		if !s.cfg.HSS.Known(auth.IMSI(s.imsi)) {
			s.fsm.Fire(session.EvReject)
			return AppendAttachReject(dst, AttachReject{Cause: CauseIMSIUnknown}),
				Event{Kind: EventRejected, IMSI: s.imsi}, nil
		}
		vec, verr := s.cfg.HSS.NextVector(auth.IMSI(s.imsi), s.cfg.ServingNetworkID)
		if verr != nil {
			s.fsm.Fire(session.EvReject)
			return AppendAttachReject(dst, AttachReject{Cause: CauseProtocolError}),
				Event{Kind: EventRejected, IMSI: s.imsi}, verr
		}
		s.vector = vec
		out, merr := AppendAuthenticationRequest(dst, AuthenticationRequest{RAND: vec.RAND, AUTN: vec.AUTN})
		return out, Event{}, merr

	case TypeAuthenticationFailure:
		if v.Cause != CauseSyncFailure || s.resynced {
			// Either an unrecoverable failure or a second resync in one
			// attach (a loop guard): give up on this UE.
			if _, ferr := s.fsm.Fire(session.EvAuthFailure); ferr != nil {
				return dst, Event{}, ferr
			}
			return AppendAttachReject(dst, AttachReject{Cause: CauseAuthFailure}),
				Event{Kind: EventAuthFailed, IMSI: s.imsi}, nil
		}
		if _, ferr := s.fsm.Fire(session.EvAuthResync); ferr != nil {
			return dst, Event{}, ferr
		}
		if rerr := s.cfg.HSS.Resynchronize(auth.IMSI(s.imsi), s.vector.RAND, v.AUTS); rerr != nil {
			s.fsm.Fire(session.EvAuthFailure)
			return AppendAuthenticationReject(dst, AuthenticationReject{Cause: CauseAuthFailure}),
				Event{Kind: EventAuthFailed, IMSI: s.imsi}, rerr
		}
		s.resynced = true
		vec, verr := s.cfg.HSS.NextVector(auth.IMSI(s.imsi), s.cfg.ServingNetworkID)
		if verr != nil {
			s.fsm.Fire(session.EvReject)
			return AppendAttachReject(dst, AttachReject{Cause: CauseProtocolError}),
				Event{Kind: EventRejected, IMSI: s.imsi}, verr
		}
		s.vector = vec
		out, merr := AppendAuthenticationRequest(dst, AuthenticationRequest{RAND: vec.RAND, AUTN: vec.AUTN})
		return out, Event{}, merr

	case TypeAuthenticationResponse:
		if cerr := auth.CheckRES(s.vector, v.RES); cerr != nil {
			if _, ferr := s.fsm.Fire(session.EvAuthFailure); ferr != nil {
				return dst, Event{}, ferr
			}
			return AppendAuthenticationReject(dst, AuthenticationReject{Cause: CauseAuthFailure}),
				Event{Kind: EventAuthFailed, IMSI: s.imsi}, cerr
		}
		if _, ferr := s.fsm.Fire(session.EvAuthSuccess); ferr != nil {
			return dst, Event{}, ferr
		}
		s.sec.Activate(s.vector.KASME)
		frame := wire.GetFrame()
		inner := AppendSecurityModeCommand(frame, SecurityModeCommand{IntegrityAlg: 1, CipherAlg: 0})
		out, serr := s.sec.SealAppend(dst, inner)
		wire.PutFrame(frame)
		if serr != nil {
			// A session left in SecurityMode with no downlink would hang
			// until the UE gave up and the EPC leaked the context: fail
			// the FSM and tell the UE to start over.
			s.fsm.Fire(session.EvReject)
			return AppendAttachReject(dst, AttachReject{Cause: CauseProtocolError}),
				Event{Kind: EventRejected, IMSI: s.imsi}, serr
		}
		return out, Event{}, nil

	case TypeSecurityModeComplete:
		if _, ferr := s.fsm.Fire(session.EvSecurityComplete); ferr != nil {
			return dst, Event{}, ferr
		}
		ip, aerr := s.cfg.AllocateIP(s.imsi)
		if aerr != nil {
			s.fsm.Fire(session.EvReject)
			return AppendAttachReject(dst, AttachReject{Cause: CauseCongestion}),
				Event{Kind: EventRejected, IMSI: s.imsi}, aerr
		}
		s.ip = ip
		s.guti = s.cfg.AllocateGUTI()
		s.ebi = 5
		frame := wire.GetFrame()
		inner, merr := AppendAttachAccept(frame, AttachAccept{
			GUTI:           s.guti,
			TrackingArea:   s.cfg.TrackingArea,
			EBI:            s.ebi,
			PDNAddress:     s.ip,
			DirectBreakout: s.cfg.DirectBreakout,
		})
		var serr error
		if merr == nil {
			out, serr = s.sec.SealAppend(dst, inner)
		}
		wire.PutFrame(frame)
		if ferr := joinErr(merr, serr); ferr != nil {
			// Same leak as the SecurityModeCommand path: an un-sendable
			// accept must fail the session, not strand it in Attaching.
			s.fsm.Fire(session.EvReject)
			return AppendAttachReject(dst, AttachReject{Cause: CauseProtocolError}),
				Event{Kind: EventRejected, IMSI: s.imsi}, ferr
		}
		return out, Event{}, nil

	case TypeAttachComplete:
		if _, ferr := s.fsm.Fire(session.EvAttachComplete); ferr != nil {
			return dst, Event{}, ferr
		}
		// The AKA vector is only consulted between AttachRequest and
		// SecurityModeComplete; a re-attach always fetches a fresh one.
		// Dropping it here shrinks every idle session the EPC retains
		// (RAND/AUTN/XRES/KASME ≈ 200 bytes per registered UE).
		s.vector = auth.Vector{}
		return dst, Event{Kind: EventRegistered, IMSI: s.imsi, IP: s.ip, GUTI: s.guti}, nil

	case TypeDetachRequest:
		if _, ferr := s.fsm.Fire(session.EvDetachRequest); ferr != nil {
			return dst, Event{}, ferr
		}
		frame := wire.GetFrame()
		inner := AppendDetachAccept(frame)
		out, serr := s.sec.SealAppend(dst, inner)
		wire.PutFrame(frame)
		ev := Event{Kind: EventDetached, IMSI: s.imsi, GUTI: v.GUTI}
		if serr != nil {
			// The FSM is already Detached; surface the event regardless
			// so the EPC releases the context instead of leaking it (the
			// UE's retransmission covers the lost accept).
			return dst, ev, serr
		}
		return out, ev, nil

	case TypeTAURequest:
		if _, ferr := s.fsm.Fire(session.EvTAURequest); ferr != nil {
			return dst, Event{}, ferr
		}
		if s.cfg.KnownGUTI != nil && s.cfg.KnownGUTI(v.GUTI) {
			return AppendTAUAccept(dst, TAUAccept{TrackingArea: v.TrackingArea}), Event{}, nil
		}
		// Unknown GUTI: this MME has no context for the UE — the
		// standard response that forces a fresh attach, and the normal
		// case when roaming between independent dLTE APs.
		return AppendTAUReject(dst, TAUReject{Cause: CauseIllegalUE}), Event{}, nil

	default:
		return dst, Event{}, fmt.Errorf("%w: %s in %s", ErrUnexpectedMessage, v.Type, s.fsm.State())
	}
}

func joinErr(primary, secondary error) error {
	if primary != nil {
		return primary
	}
	return secondary
}
