package nas

import (
	"errors"
	"fmt"

	"dlte/internal/auth"
)

// Secured is the integrity-protected NAS envelope: a replay-protected
// counter, a 32-bit MAC over count‖inner, and the inner serialized
// message. (Ciphering is omitted — the paper's trust model explicitly
// tolerates an open link layer, §4.2 — but integrity keeps the
// signaling unforgeable once security is activated.)
type Secured struct {
	Count uint32
	MAC   []byte // 4 bytes
	Inner []byte
}

// Type implements Message.
func (Secured) Type() MsgType { return TypeSecured }

// Security errors.
var (
	ErrBadMAC = errors.New("nas: integrity check failed")
	ErrReplay = errors.New("nas: replayed NAS count")
)

// errNotActive is returned for sealed traffic before security
// activation.
var errNotActive = errors.New("nas: security not active")

// SecurityContext holds one direction's NAS security state. Each peer
// keeps an uplink and a downlink context with independent counters.
type SecurityContext struct {
	Keys auth.NASKeys
	// mac is the precomputed HMAC context over Keys.Int; it makes
	// per-message integrity allocation-free on the hot path.
	mac *auth.MACContext
	// keybuf backs Keys across activations, so a re-attach's fresh AKA
	// run re-derives in place instead of allocating.
	keybuf [32]byte
	// nextTx is the next COUNT to send; highestRx the last accepted.
	nextTx    uint32
	highestRx uint32
	active    bool
}

// Activate installs keys derived from KASME and enables protection.
// Re-activation (a re-attach superseding an old registration) reuses
// the context's key storage and MAC context — allocation-free.
func (c *SecurityContext) Activate(kasme []byte) {
	c.Keys = auth.DeriveNASKeysInto(kasme, c.keybuf[:0])
	if c.mac == nil {
		c.mac = auth.NewMACContext(c.Keys.Int)
	} else {
		c.mac.Rekey(c.Keys.Int)
	}
	c.active = true
	c.nextTx = 1
	c.highestRx = 0
}

// Active reports whether security has been activated.
func (c *SecurityContext) Active() bool { return c.active }

// reset deactivates the context for a fresh attach while keeping the
// reusable MAC state, so the next Activate allocates nothing.
func (c *SecurityContext) reset() {
	c.Keys = auth.NASKeys{}
	c.nextTx = 0
	c.highestRx = 0
	c.active = false
}

// SealAppend appends a Secured envelope protecting inner (a fully
// serialized NAS message, typically built in a pooled frame the caller
// still owns) to dst with the next counter value. The counter is
// consumed only on success.
func (c *SecurityContext) SealAppend(dst, inner []byte) ([]byte, error) {
	if !c.active {
		return dst, errNotActive
	}
	count := c.nextTx
	var mac [4]byte
	c.mac.ComputeInto(count, inner, &mac)
	out, err := AppendSecured(dst, count, mac[:], inner)
	if err != nil {
		return dst, err
	}
	c.nextTx = count + 1
	return out, nil
}

// Seal wraps msg in a heap-owned Secured envelope with the next
// counter value.
func (c *SecurityContext) Seal(msg Message) (*Secured, error) {
	if !c.active {
		return nil, errNotActive
	}
	inner, err := Marshal(msg)
	if err != nil {
		return nil, err
	}
	count := c.nextTx
	c.nextTx++
	var mac [4]byte
	c.mac.ComputeInto(count, inner, &mac)
	return &Secured{Count: count, MAC: append([]byte(nil), mac[:]...), Inner: inner}, nil
}

// OpenView verifies a decoded Secured envelope's MAC and replay
// counter without allocating; on success the caller decodes the inner
// bytes it already holds a view of.
func (c *SecurityContext) OpenView(count uint32, mac, inner []byte) error {
	if !c.active {
		return errNotActive
	}
	if len(mac) != 4 || !c.mac.Verify(count, inner, mac) {
		return ErrBadMAC
	}
	if count <= c.highestRx {
		return fmt.Errorf("%w: count %d ≤ %d", ErrReplay, count, c.highestRx)
	}
	c.highestRx = count
	return nil
}

// Open verifies and unwraps a Secured envelope, enforcing strictly
// increasing counters.
func (c *SecurityContext) Open(env *Secured) (Message, error) {
	if err := c.OpenView(env.Count, env.MAC, env.Inner); err != nil {
		return nil, err
	}
	return Decode(env.Inner)
}
