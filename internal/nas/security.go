package nas

import (
	"errors"
	"fmt"

	"dlte/internal/auth"
	"dlte/internal/wire"
)

// Secured is the integrity-protected NAS envelope: a replay-protected
// counter, a 32-bit MAC over count‖inner, and the inner serialized
// message. (Ciphering is omitted — the paper's trust model explicitly
// tolerates an open link layer, §4.2 — but integrity keeps the
// signaling unforgeable once security is activated.)
type Secured struct {
	Count uint32
	MAC   []byte // 4 bytes
	Inner []byte
}

// Type implements Message.
func (Secured) Type() MsgType { return TypeSecured }

// EncodeTo implements wire.Message.
func (m Secured) EncodeTo(w *wire.Writer) {
	w.U32(m.Count)
	w.Bytes0(m.MAC[:4])
	w.Bytes16(m.Inner)
}

// Security errors.
var (
	ErrBadMAC = errors.New("nas: integrity check failed")
	ErrReplay = errors.New("nas: replayed NAS count")
)

// SecurityContext holds one direction's NAS security state. Each peer
// keeps an uplink and a downlink context with independent counters.
type SecurityContext struct {
	Keys auth.NASKeys
	// nextTx is the next COUNT to send; highestRx the last accepted.
	nextTx    uint32
	highestRx uint32
	active    bool
}

// Activate installs keys derived from KASME and enables protection.
func (c *SecurityContext) Activate(kasme []byte) {
	c.Keys = auth.DeriveNASKeys(kasme)
	c.active = true
	c.nextTx = 1
	c.highestRx = 0
}

// Active reports whether security has been activated.
func (c *SecurityContext) Active() bool { return c.active }

// Seal wraps msg in a Secured envelope with the next counter value.
func (c *SecurityContext) Seal(msg Message) (*Secured, error) {
	if !c.active {
		return nil, errors.New("nas: security not active")
	}
	inner, err := Marshal(msg)
	if err != nil {
		return nil, err
	}
	count := c.nextTx
	c.nextTx++
	return &Secured{
		Count: count,
		MAC:   auth.ComputeNASMAC(c.Keys.Int, count, inner),
		Inner: inner,
	}, nil
}

// Open verifies and unwraps a Secured envelope, enforcing strictly
// increasing counters.
func (c *SecurityContext) Open(env *Secured) (Message, error) {
	if !c.active {
		return nil, errors.New("nas: security not active")
	}
	if len(env.MAC) != 4 || !auth.VerifyNASMAC(c.Keys.Int, env.Count, env.Inner, env.MAC) {
		return nil, ErrBadMAC
	}
	if env.Count <= c.highestRx {
		return nil, fmt.Errorf("%w: count %d ≤ %d", ErrReplay, env.Count, c.highestRx)
	}
	c.highestRx = env.Count
	return Decode(env.Inner)
}
