package nas

import (
	"runtime"
	"testing"

	"dlte/internal/auth"
	"dlte/internal/session"
)

// TestIdleSessionShedsAuthVector pins the idle-session footprint fix:
// once a session reaches Attached, the AKA vector (RAND/AUTN/XRES/
// KASME) has no further readers until the next AttachRequest fetches a
// fresh one, so retaining it just inflates every registered UE the EPC
// holds.
func TestIdleSessionShedsAuthVector(t *testing.T) {
	sim := testSIM(t, "001010000000001")
	hss := auth.NewSubscriberDB(false)
	if err := hss.Provision(sim); err != nil {
		t.Fatal(err)
	}
	u, err := NewUE(sim)
	if err != nil {
		t.Fatal(err)
	}
	net := testNetwork(t, hss)
	runAttach(t, u, net)
	if net.vector.RAND != nil || net.vector.AUTN != nil ||
		net.vector.XRES != nil || net.vector.KASME != nil {
		t.Error("attached session still retains its AKA vector")
	}
	// The shed vector must not break later procedures: detach uses only
	// the security context…
	det, err := u.StartDetach()
	if err != nil {
		t.Fatal(err)
	}
	if _, ev, herr := net.Handle(det); herr != nil || ev.Kind != EventDetached {
		t.Fatalf("detach after vector shed: ev=%v err=%v", ev.Kind, herr)
	}
	// …and a re-attach starts from a fresh vector.
	u2, err := NewUE(sim)
	if err != nil {
		t.Fatal(err)
	}
	runAttach(t, u2, net)
	if net.State() != session.Attached {
		t.Fatalf("re-attach after shed failed: %v", net.State())
	}
}

// TestIdleSessionBytes measures the retained heap per idle (attached,
// quiescent) NetworkSession. This is the per-UE cost the EPC pays for
// every registered subscriber; the bound is a regression tripwire for
// accidental per-session retention (buffers, vectors, closures).
func TestIdleSessionBytes(t *testing.T) {
	const n = 512
	hss := auth.NewSubscriberDB(false)
	sims := make([]auth.SIM, n)
	for i := range sims {
		sims[i] = testSIM(t, "0010100"+string([]byte{
			'0' + byte(i/10000%10), '0' + byte(i/1000%10), '0' + byte(i/100%10),
			'0' + byte(i/10%10), '0' + byte(i%10),
		})+"000")
		if err := hss.Provision(sims[i]); err != nil {
			t.Fatal(err)
		}
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	sessions := make([]*NetworkSession, n)
	for i := range sessions {
		u, err := NewUE(sims[i])
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = testNetwork(t, hss)
		runAttach(t, u, sessions[i])
		// The UE side is garbage: only the network session idles on.
	}
	runtime.GC()
	runtime.ReadMemStats(&m1)
	perSession := float64(m1.HeapAlloc-m0.HeapAlloc) / n
	t.Logf("idle NetworkSession ≈ %.0f B retained", perSession)
	if perSession > 3072 {
		t.Errorf("idle session retains %.0f B, want ≤ 3072 (vector/buffer leak?)", perSession)
	}
	runtime.KeepAlive(sessions)
}
