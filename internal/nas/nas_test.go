package nas

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dlte/internal/auth"
	"dlte/internal/session"
)

func testSIM(t *testing.T, imsi string) auth.SIM {
	t.Helper()
	sim, err := auth.NewSIM(auth.IMSI(imsi))
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func testNetwork(t *testing.T, hss *auth.SubscriberDB) *NetworkSession {
	t.Helper()
	ipCounter := 0
	gutiCounter := uint64(0x1000)
	return NewNetworkSession(NetworkConfig{
		HSS:              hss,
		ServingNetworkID: "dlte-ap-1",
		TrackingArea:     42,
		DirectBreakout:   true,
		AllocateIP: func(string) (string, error) {
			ipCounter++
			return fmt.Sprintf("198.51.100.%d", ipCounter), nil
		},
		AllocateGUTI: func() uint64 { gutiCounter++; return gutiCounter },
		KnownGUTI:    func(g uint64) bool { return g == 0x1001 },
	})
}

// runAttach drives the full attach handshake between a UE and a
// network session, returning the message-type trace.
func runAttach(t *testing.T, ue *UE, net *NetworkSession) []string {
	t.Helper()
	var trace []string
	up, err := ue.StartAttach("dlte-ap-1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m, _ := Decode(up)
		trace = append(trace, "UL:"+m.Type().String())
		down, ev, err := net.Handle(up)
		if err != nil {
			t.Fatalf("network handle: %v", err)
		}
		if ev.Kind == EventRegistered {
			return trace
		}
		if down == nil {
			t.Fatal("network went silent mid-attach")
		}
		dm, _ := Decode(down)
		trace = append(trace, "DL:"+dm.Type().String())
		reply, _, err := ue.Handle(down)
		if err != nil {
			t.Fatalf("UE handle: %v", err)
		}
		if reply == nil {
			t.Fatal("UE went silent mid-attach")
		}
		up = reply
	}
	t.Fatal("attach did not converge")
	return nil
}

func TestAttachHappyPath(t *testing.T) {
	sim := testSIM(t, "001010000000001")
	hss := auth.NewSubscriberDB(false)
	if err := hss.Provision(sim); err != nil {
		t.Fatal(err)
	}
	ue, err := NewUE(sim)
	if err != nil {
		t.Fatal(err)
	}
	net := testNetwork(t, hss)

	trace := runAttach(t, ue, net)
	want := []string{
		"UL:AttachRequest",
		"DL:AuthenticationRequest",
		"UL:AuthenticationResponse",
		"DL:Secured", // SecurityModeCommand
		"UL:Secured", // SecurityModeComplete
		"DL:Secured", // AttachAccept
		"UL:Secured", // AttachComplete
	}
	if strings.Join(trace, ",") != strings.Join(want, ",") {
		t.Errorf("trace = %v, want %v", trace, want)
	}
	if ue.State() != UERegistered || net.State() != session.Attached {
		t.Errorf("states: ue=%v net=%v", ue.State(), net.State())
	}
	if ue.IPAddress == "" || ue.IPAddress != net.IP() {
		t.Errorf("IP mismatch: ue=%q net=%q", ue.IPAddress, net.IP())
	}
	if ue.GUTI != net.GUTI() || ue.GUTI == 0 {
		t.Errorf("GUTI mismatch: ue=%#x net=%#x", ue.GUTI, net.GUTI())
	}
	if !ue.Breakout {
		t.Error("UE did not learn direct-breakout flag")
	}
	if ue.TrackingArea != 42 {
		t.Errorf("TA = %d", ue.TrackingArea)
	}
}

func TestAttachUnknownIMSIRejected(t *testing.T) {
	sim := testSIM(t, "001010000000002")
	hss := auth.NewSubscriberDB(false) // empty closed HSS
	ue, _ := NewUE(sim)
	net := testNetwork(t, hss)

	up, _ := ue.StartAttach("dlte-ap-1")
	down, ev, err := net.Handle(up)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventRejected {
		t.Errorf("event = %v, want EventRejected", ev.Kind)
	}
	_, _, err = ue.Handle(down)
	if err == nil || !strings.Contains(err.Error(), "attach rejected") {
		t.Errorf("UE error = %v", err)
	}
	if ue.State() != UEDeregistered {
		t.Errorf("UE state = %v", ue.State())
	}
}

func TestAttachWrongKeyFailsAuth(t *testing.T) {
	// HSS has the IMSI provisioned with different key material (e.g. a
	// spoofed identity): the UE's mutual auth must reject the network's
	// challenge, because the MAC won't verify.
	simReal := testSIM(t, "001010000000003")
	simFake := testSIM(t, "001010000000003") // same IMSI, different keys
	hss := auth.NewSubscriberDB(false)
	if err := hss.Provision(simFake); err != nil {
		t.Fatal(err)
	}
	ue, _ := NewUE(simReal)
	net := testNetwork(t, hss)

	up, _ := ue.StartAttach("dlte-ap-1")
	down, _, err := net.Handle(up)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ue.Handle(down)
	if !errors.Is(err, auth.ErrMACFailure) {
		t.Errorf("want MAC failure, got %v", err)
	}
}

func TestNetworkRejectsWrongRES(t *testing.T) {
	sim := testSIM(t, "001010000000004")
	hss := auth.NewSubscriberDB(false)
	hss.Provision(sim)
	ue, _ := NewUE(sim)
	net := testNetwork(t, hss)

	up, _ := ue.StartAttach("dlte-ap-1")
	if _, _, err := net.Handle(up); err != nil {
		t.Fatal(err)
	}
	// Forge a RES instead of running the SIM.
	forged, _ := Marshal(&AuthenticationResponse{RES: []byte{9, 9, 9, 9, 9, 9, 9, 9}})
	down, ev, err := net.Handle(forged)
	if err == nil || !errors.Is(err, auth.ErrResMismatch) {
		t.Errorf("want ErrResMismatch, got %v", err)
	}
	if ev.Kind != EventAuthFailed {
		t.Errorf("event = %v, want EventAuthFailed", ev.Kind)
	}
	if down == nil {
		t.Error("no AuthenticationReject sent")
	}
}

func TestDetachFlow(t *testing.T) {
	sim := testSIM(t, "001010000000005")
	hss := auth.NewSubscriberDB(false)
	hss.Provision(sim)
	ue, _ := NewUE(sim)
	net := testNetwork(t, hss)
	runAttach(t, ue, net)

	up, err := ue.StartDetach()
	if err != nil {
		t.Fatal(err)
	}
	down, ev, err := net.Handle(up)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != EventDetached {
		t.Errorf("event = %v", ev.Kind)
	}
	_, done, err := ue.Handle(down)
	if err != nil || !done {
		t.Fatalf("detach accept: done=%v err=%v", done, err)
	}
	if ue.State() != UEDeregistered || net.State() != session.Detached {
		t.Errorf("states after detach: ue=%v net=%v", ue.State(), net.State())
	}
}

func TestReattachAfterDetach(t *testing.T) {
	// The same UE can attach again (SQN advances past previous).
	sim := testSIM(t, "001010000000006")
	hss := auth.NewSubscriberDB(false)
	hss.Provision(sim)
	ue, _ := NewUE(sim)

	net1 := testNetwork(t, hss)
	runAttach(t, ue, net1)
	ip1 := ue.IPAddress

	// Roam: fresh attach at a different AP (fresh session, same HSS —
	// in dLTE the published key would be in both APs' stubs).
	net2 := testNetwork(t, hss)
	runAttach(t, ue, net2)
	if ue.IPAddress == "" {
		t.Fatal("no IP after re-attach")
	}
	_ = ip1 // addresses may collide across independent APs; that's fine
}

func TestTAUAcceptAndReject(t *testing.T) {
	sim := testSIM(t, "001010000000007")
	hss := auth.NewSubscriberDB(false)
	hss.Provision(sim)
	ue, _ := NewUE(sim)
	net := testNetwork(t, hss)
	runAttach(t, ue, net)

	// testNetwork knows GUTI 0x1001, which is what the first attach
	// allocated.
	up, err := ue.StartTAU(43)
	if err != nil {
		t.Fatal(err)
	}
	down, _, err := net.Handle(up)
	if err != nil {
		t.Fatal(err)
	}
	_, done, err := ue.Handle(down)
	if err != nil || !done {
		t.Fatalf("TAU accept: done=%v err=%v", done, err)
	}
	if ue.TrackingArea != 43 {
		t.Errorf("TA after TAU = %d", ue.TrackingArea)
	}

	// A foreign AP has no GUTI context: TAU is rejected and the UE
	// falls back to deregistered (fresh attach follows).
	foreign := testNetwork(t, hss)
	foreignCfg := foreign.cfg
	foreignCfg.KnownGUTI = func(uint64) bool { return false }
	foreign = NewNetworkSession(foreignCfg)
	up, _ = ue.StartTAU(44)
	down, _, err = foreign.Handle(up)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ue.Handle(down)
	if err == nil || !strings.Contains(err.Error(), "TAU rejected") {
		t.Errorf("TAU reject error = %v", err)
	}
	if ue.State() != UEDeregistered {
		t.Errorf("UE state after TAU reject = %v", ue.State())
	}
}

func TestAttachWithSQNResync(t *testing.T) {
	// The roaming-desync flow end to end: the UE's SQN is far ahead of
	// this core's HSS; the first challenge fails sync, the UE returns
	// AUTS, the network resynchronizes and re-challenges, and the
	// attach completes.
	sim := testSIM(t, "001010000000020")
	hss := auth.NewSubscriberDB(true)
	hss.Provision(sim)
	ue, _ := NewUE(sim)
	// Skew the UE's SQN far ahead of this HSS (as accumulated roaming
	// across future-dated cores would).
	ue.ueCtx.HighestSQN = 1 << 46
	net := testNetwork(t, hss)

	trace := runAttach(t, ue, net)
	joined := strings.Join(trace, ",")
	if !strings.Contains(joined, "UL:AuthenticationFailure") {
		t.Fatalf("no resync in trace: %v", trace)
	}
	if ue.State() != UERegistered {
		t.Fatalf("UE state = %v after resync attach", ue.State())
	}
}

func TestResyncLoopGuard(t *testing.T) {
	// A UE that keeps failing sync (malicious or broken) is rejected
	// after one resync attempt rather than looping forever.
	sim := testSIM(t, "001010000000021")
	hss := auth.NewSubscriberDB(true)
	hss.Provision(sim)
	net := testNetwork(t, hss)

	att, _ := Marshal(&AttachRequest{IMSI: string(sim.IMSI)})
	if _, _, err := net.Handle(att); err != nil {
		t.Fatal(err)
	}
	fail, _ := Marshal(&AuthenticationFailure{Cause: CauseSyncFailure, AUTS: make([]byte, 14)})
	// First resync attempt: bad AUTS → rejected immediately.
	down, ev, err := net.Handle(fail)
	if err == nil {
		t.Error("forged AUTS accepted")
	}
	if down == nil || ev.Kind != EventAuthFailed {
		t.Errorf("expected rejection, got ev=%v", ev.Kind)
	}
}

func TestSecuredEnvelopeTamperDetected(t *testing.T) {
	sim := testSIM(t, "001010000000008")
	hss := auth.NewSubscriberDB(false)
	hss.Provision(sim)
	ue, _ := NewUE(sim)
	net := testNetwork(t, hss)

	up, _ := ue.StartAttach("dlte-ap-1")
	down, _, _ := net.Handle(up)  // auth request
	up, _, err := ue.Handle(down) // auth response
	if err != nil {
		t.Fatal(err)
	}
	down, _, err = net.Handle(up) // SMC (secured)
	if err != nil {
		t.Fatal(err)
	}
	down[len(down)-1] ^= 0xFF // tamper with the inner message
	if _, _, err := ue.Handle(down); !errors.Is(err, ErrBadMAC) {
		t.Errorf("tampered SMC: want ErrBadMAC, got %v", err)
	}
}

func TestSecurityContextReplay(t *testing.T) {
	var a, b SecurityContext
	kasme := make([]byte, 32)
	a.Activate(kasme)
	b.Activate(kasme)
	env, err := a.Seal(&AttachComplete{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(env); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(env); !errors.Is(err, ErrReplay) {
		t.Errorf("replay: want ErrReplay, got %v", err)
	}
}

func TestSecurityContextInactive(t *testing.T) {
	var c SecurityContext
	if _, err := c.Seal(&AttachComplete{}); err == nil {
		t.Error("Seal on inactive context succeeded")
	}
	if _, err := c.Open(&Secured{}); err == nil {
		t.Error("Open on inactive context succeeded")
	}
}

func TestAllMessageCodecsRoundTrip(t *testing.T) {
	msgs := []Message{
		&AttachRequest{IMSI: "001019999999999", UECapabilities: "cat4", FollowOnData: true},
		&AuthenticationRequest{RAND: make([]byte, 16), AUTN: make([]byte, 16)},
		&AuthenticationResponse{RES: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		&AuthenticationReject{Cause: CauseAuthFailure},
		&SecurityModeCommand{IntegrityAlg: 1, CipherAlg: 2},
		&SecurityModeComplete{},
		&AttachAccept{GUTI: 0xDEAD, TrackingArea: 7, EBI: 5, PDNAddress: "10.0.0.9", DirectBreakout: true},
		&AttachComplete{},
		&AttachReject{Cause: CauseCongestion},
		&DetachRequest{GUTI: 99},
		&DetachAccept{},
		&TAURequest{GUTI: 5, TrackingArea: 9},
		&TAUAccept{TrackingArea: 9},
		&TAUReject{Cause: CauseIllegalUE},
		&Secured{Count: 3, MAC: []byte{1, 2, 3, 4}, Inner: []byte{5, 6}},
		&AuthenticationFailure{Cause: CauseSyncFailure, AUTS: make([]byte, 14)},
	}
	for _, m := range msgs {
		b, err := Marshal(m)
		if err != nil {
			t.Fatalf("%s: marshal: %v", m.Type(), err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Type(), err)
		}
		if got.Type() != m.Type() {
			t.Errorf("%s decoded as %s", m.Type(), got.Type())
		}
		b2, err := Marshal(got)
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", m.Type(), err)
		}
		if string(b) != string(b2) {
			t.Errorf("%s: round trip not stable", m.Type())
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{200}); !errors.Is(err, ErrUnknownMessage) {
		t.Errorf("unknown type: %v", err)
	}
	if _, err := Decode([]byte{byte(TypeAttachAccept), 1}); err == nil {
		t.Error("truncated AttachAccept decoded")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty buffer decoded")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for tt := TypeAttachRequest; tt <= TypeSecured; tt++ {
		if s := tt.String(); strings.HasPrefix(s, "MsgType(") {
			t.Errorf("missing name for type %d", tt)
		}
	}
	if MsgType(99).String() != "MsgType(99)" {
		t.Error("unknown type string wrong")
	}
}

func TestStateStrings(t *testing.T) {
	for s := UEDeregistered; s <= UERegistered; s++ {
		if strings.HasPrefix(s.String(), "UEState(") {
			t.Errorf("missing UE state name %d", s)
		}
	}
	// Network-side lifecycle state strings are covered by the session
	// package's own tests.
	if UEState(9).String() == "" {
		t.Error("unknown states must still render")
	}
}

func TestUEGuards(t *testing.T) {
	sim := testSIM(t, "001010000000009")
	ue, _ := NewUE(sim)
	if _, err := ue.StartDetach(); !errors.Is(err, ErrUnexpectedMessage) {
		t.Errorf("detach while deregistered: %v", err)
	}
	if _, err := ue.StartTAU(1); !errors.Is(err, ErrUnexpectedMessage) {
		t.Errorf("TAU while deregistered: %v", err)
	}
	// AttachAccept before authentication is rejected.
	acc, _ := Marshal(&AttachAccept{})
	if _, _, err := ue.Handle(acc); err == nil {
		t.Error("accept in deregistered state processed")
	}
}

func TestNetworkGuards(t *testing.T) {
	hss := auth.NewSubscriberDB(false)
	net := testNetwork(t, hss)
	resp, _ := Marshal(&AuthenticationResponse{RES: make([]byte, 8)})
	if _, _, err := net.Handle(resp); !errors.Is(err, session.ErrIllegalTransition) {
		t.Errorf("auth response in idle: %v", err)
	}
	det, _ := Marshal(&DetachRequest{})
	if _, _, err := net.Handle(det); err == nil {
		t.Error("clear detach in idle processed")
	}
}
