package auth

import (
	"errors"
	"testing"
)

// TS 35.207 test set 1 covers f1*/f5* (asserted in TestMilenageTestSet1);
// these tests exercise the full AUTS round trip built on them.

func TestAUTSRoundTrip(t *testing.T) {
	m := testMilenage(t)
	rnd := mustHex(t, "23553cbe9637a89d218ae64dae47bf35")

	ue := &UEContext{Mil: m, HighestSQN: 0x00000ABCDEF0}
	auts, err := ue.BuildAUTS(rnd)
	if err != nil {
		t.Fatal(err)
	}
	if len(auts) != 14 {
		t.Fatalf("AUTS length = %d", len(auts))
	}
	sqnMS, err := RecoverSQNms(m, rnd, auts)
	if err != nil {
		t.Fatal(err)
	}
	if sqnMS != ue.HighestSQN {
		t.Errorf("recovered SQNms = %#x, want %#x", sqnMS, ue.HighestSQN)
	}
}

func TestAUTSVerificationRejectsTampering(t *testing.T) {
	m := testMilenage(t)
	rnd := mustHex(t, "23553cbe9637a89d218ae64dae47bf35")
	ue := &UEContext{Mil: m, HighestSQN: 999}
	auts, _ := ue.BuildAUTS(rnd)

	bad := append([]byte{}, auts...)
	bad[13] ^= 0xFF
	if _, err := RecoverSQNms(m, rnd, bad); !errors.Is(err, ErrBadAUTS) {
		t.Errorf("tampered MAC-S: %v", err)
	}
	// Wrong key material cannot forge AUTS.
	other, _ := NewMilenage(make([]byte, 16), make([]byte, 16))
	if _, err := RecoverSQNms(other, rnd, auts); !errors.Is(err, ErrBadAUTS) {
		t.Errorf("wrong key: %v", err)
	}
	// Wrong RAND (replayed AUTS against a different challenge).
	rnd2 := mustHex(t, "c00d603103dcee52c4478119494202e8")
	if _, err := RecoverSQNms(m, rnd2, auts); !errors.Is(err, ErrBadAUTS) {
		t.Errorf("wrong RAND: %v", err)
	}
	if _, err := RecoverSQNms(m, rnd, auts[:10]); !errors.Is(err, ErrBadAUTS) {
		t.Errorf("short AUTS: %v", err)
	}
	if _, err := ue.BuildAUTS([]byte{1}); err == nil {
		t.Error("short RAND accepted by BuildAUTS")
	}
}

func TestSubscriberDBResynchronize(t *testing.T) {
	db := NewSubscriberDB(true)
	sim, _ := NewSIM("001010000000090")
	db.Provision(sim)

	// The UE's SQN is far ahead of this (fresh) HSS — the roaming
	// desync scenario.
	m, _ := sim.Milenage()
	ue := &UEContext{Mil: m, HighestSQN: 1 << 46}

	v1, err := db.NextVector(sim.IMSI, "ap")
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := ue.Respond(v1.RAND, v1.AUTN, "ap")
	if !errors.Is(rerr, ErrSyncFailure) {
		t.Fatalf("expected sync failure, got %v", rerr)
	}
	auts, err := ue.BuildAUTS(v1.RAND)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Resynchronize(sim.IMSI, v1.RAND, auts); err != nil {
		t.Fatal(err)
	}
	// The next vector is beyond the UE's SQNms and is accepted.
	v2, err := db.NextVector(sim.IMSI, "ap")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ue.Respond(v2.RAND, v2.AUTN, "ap"); err != nil {
		t.Fatalf("post-resync challenge rejected: %v", err)
	}
}

func TestResynchronizeUnknownSubscriber(t *testing.T) {
	db := NewSubscriberDB(true)
	if err := db.Resynchronize("001010000000091", make([]byte, 16), make([]byte, 14)); err == nil {
		t.Error("resync for unknown subscriber succeeded")
	}
}
