package auth

import (
	"crypto/rand"
	"fmt"
	"sync"
	"time"
)

// IMSI is an international mobile subscriber identity in its usual
// string form (15 decimal digits: MCC+MNC+MSIN).
type IMSI string

// Valid reports whether the IMSI is 14–15 decimal digits.
func (i IMSI) Valid() bool {
	if len(i) < 14 || len(i) > 15 {
		return false
	}
	for _, c := range i {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// SIM models a provisioned SIM/e-SIM profile: identity plus key
// material. dLTE uses exactly the same structure; openness comes from
// publishing Key/OPc instead of guarding them (§4.2).
type SIM struct {
	IMSI IMSI
	// K is the 128-bit subscriber key.
	K []byte
	// OPc is the operator-variant constant.
	OPc []byte
}

// NewSIM provisions a SIM with fresh random key material.
func NewSIM(imsi IMSI) (SIM, error) {
	if !imsi.Valid() {
		return SIM{}, fmt.Errorf("auth: invalid IMSI %q", imsi)
	}
	k := make([]byte, KeyLen)
	opc := make([]byte, KeyLen)
	if _, err := rand.Read(k); err != nil {
		return SIM{}, fmt.Errorf("auth: %w", err)
	}
	if _, err := rand.Read(opc); err != nil {
		return SIM{}, fmt.Errorf("auth: %w", err)
	}
	return SIM{IMSI: imsi, K: k, OPc: opc}, nil
}

// Milenage builds the SIM's function set.
func (s SIM) Milenage() (*Milenage, error) { return NewMilenage(s.K, s.OPc) }

// SubscriberDB is the HSS-side subscriber store. In a telecom EPC this
// is the crown-jewels database; in dLTE each local core stub holds one,
// populated either with its own subscribers or from the published-key
// feed.
type SubscriberDB struct {
	mu   sync.RWMutex
	subs map[IMSI]*subscriberEntry
	// Open marks a dLTE-style open HSS: unknown IMSIs presenting a
	// published key are admitted on first use.
	Open bool
	// Now supplies the time base for SQN generation (see NextVector).
	// Defaults to time.Now; simulated cores must point it at their
	// virtual clock, or SQN freshness across independent cores depends
	// on real scheduling and the run stops being deterministic.
	Now func() time.Time
}

type subscriberEntry struct {
	sim SIM
	// mil caches the expanded Milenage function set (AES key schedule
	// included) so vector generation doesn't rebuild it per challenge.
	mil *Milenage
	sqn uint64
}

// NewSubscriberDB returns an empty store. Open selects dLTE semantics
// (accept published-key registrations at attach time).
func NewSubscriberDB(open bool) *SubscriberDB {
	return &SubscriberDB{subs: make(map[IMSI]*subscriberEntry), Open: open}
}

// Provision inserts or replaces a subscriber.
func (db *SubscriberDB) Provision(sim SIM) error {
	if !sim.IMSI.Valid() {
		return fmt.Errorf("auth: invalid IMSI %q", sim.IMSI)
	}
	if len(sim.K) != KeyLen || len(sim.OPc) != KeyLen {
		return fmt.Errorf("auth: bad key material for %s", sim.IMSI)
	}
	mil, err := sim.Milenage()
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.subs[sim.IMSI] = &subscriberEntry{sim: sim, mil: mil}
	return nil
}

// Known reports whether the IMSI is provisioned.
func (db *SubscriberDB) Known(imsi IMSI) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.subs[imsi]
	return ok
}

// Len reports the number of provisioned subscribers.
func (db *SubscriberDB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.subs)
}

// sqnMask48 bounds sequence numbers to the 48-bit SQN field of TS
// 33.102. Time-based generation must mask: uint64(UnixMilli())<<5
// exceeds 2^48 for dates a couple of centuries past the epoch —
// reachable in long virtual-time runs — and an overflowing SQN is
// silently truncated when packed into AUTN. The UE then tracks the
// truncated value while the HSS counts the full one, and AUTS
// resynchronization can never catch up (RecoverSQNms returns a 48-bit
// SQNms forever below the unmasked counter), wedging the subscriber in
// a permanent resync loop.
const sqnMask48 = 1<<48 - 1

// NextVector generates the next authentication vector for imsi,
// advancing its sequence number. snID is the serving network identity
// bound into KASME.
func (db *SubscriberDB) NextVector(imsi IMSI, snID string) (Vector, error) {
	var v [1]Vector
	if err := db.NextVectors(imsi, snID, v[:]); err != nil {
		return Vector{}, err
	}
	return v[0], nil
}

// NextVectors fills dst with consecutive authentication vectors for
// imsi under one lock acquisition and one scratch checkout — the
// challenge-burst shape an attach storm drives (an MME conventionally
// requests vectors in batches for exactly this reason).
//
// SQN generation is time-based (TS 33.102 Annex C.3 style): the high
// bits derive from wall-clock time, the low bits from a local counter.
// This matters specifically for dLTE: a published-key SIM attaches at
// *independent* local cores that share no SQN state, and time-based
// sequence numbers are what keep each stub's challenges fresh from the
// UE's point of view without any inter-core synchronization.
func (db *SubscriberDB) NextVectors(imsi IMSI, snID string, dst []Vector) error {
	if len(dst) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.subs[imsi]
	if !ok {
		return fmt.Errorf("auth: unknown subscriber %s", imsi)
	}
	// 1 ms ticks with 5 counter bits: independent cores issue
	// colliding SQNs only if they challenge the same SIM within the
	// same millisecond, which a real attach exchange (several RTTs)
	// cannot do. AUTS resynchronization (Resynchronize) recovers any
	// residual skew.
	now := time.Now
	if db.Now != nil {
		now = db.Now
	}
	timeBased := (uint64(now().UnixMilli()) << 5) & sqnMask48
	s := getAKAScratch()
	defer putAKAScratch(s)
	for i := range dst {
		if timeBased > e.sqn {
			e.sqn = timeBased
		} else {
			e.sqn = (e.sqn + 1) & sqnMask48
		}
		v, err := generateVectorBuf(s, e.mil, e.sqn, snID, nil, make([]byte, vectorBufLen))
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

// Resynchronize processes a UE's AUTS token (TS 33.102 §6.3.5): verify
// it against the RAND the UE answered, recover the UE's SQNms, and
// advance the subscriber's counter past it so the next vector is
// fresh. This is the standard's remedy for the sequence-number skew a
// published-key SIM can accumulate across independent dLTE cores.
func (db *SubscriberDB) Resynchronize(imsi IMSI, rnd, auts []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	e, ok := db.subs[imsi]
	if !ok {
		return fmt.Errorf("auth: unknown subscriber %s", imsi)
	}
	sqnMS, err := RecoverSQNms(e.mil, rnd, auts)
	if err != nil {
		return err
	}
	if sqnMS >= e.sqn {
		e.sqn = sqnMS
	}
	return nil
}

// ImportPublished admits a published-key SIM (the dLTE open-SIM flow).
// It fails on a closed (telecom) subscriber DB — which is precisely the
// organic-growth barrier the paper describes (§2.1).
func (db *SubscriberDB) ImportPublished(sim SIM) error {
	if !db.Open {
		return fmt.Errorf("auth: closed core refuses published key for %s", sim.IMSI)
	}
	return db.Provision(sim)
}

// KeyPublication is the paper's published-key record: the open dLTE SIM
// material a subscriber exposes so that any AP can authenticate it.
type KeyPublication struct {
	IMSI IMSI
	K    []byte
	OPc  []byte
}

// SIM converts the publication back into provisioning material.
func (p KeyPublication) SIM() SIM { return SIM{IMSI: p.IMSI, K: p.K, OPc: p.OPc} }
