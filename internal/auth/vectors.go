package auth

import (
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
)

// Errors surfaced by AKA verification.
var (
	// ErrMACFailure means AUTN's MAC-A did not verify: the network
	// does not hold the subscriber key.
	ErrMACFailure = errors.New("auth: MAC failure")
	// ErrSyncFailure means the SQN was outside the acceptance window;
	// the UE requests resynchronization.
	ErrSyncFailure = errors.New("auth: SQN synchronisation failure")
	// ErrResMismatch means the UE's RES did not match XRES.
	ErrResMismatch = errors.New("auth: RES mismatch")
)

// Vector is one EPS authentication vector as the HSS hands it to an
// MME (TS 33.401 §6.1.2). The four fields share one backing allocation
// (see GenerateVector).
type Vector struct {
	RAND  []byte // 16 bytes
	XRES  []byte // 8 bytes
	AUTN  []byte // 16 bytes: SQN⊕AK || AMF || MAC-A
	KASME []byte // 32 bytes
}

// defaultAMF is the authentication management field with the
// "separation bit" set, marking EPS AKA.
var defaultAMF = []byte{0x80, 0x00}

// vectorBufLen is the backing storage for one Vector:
// RAND(16) ‖ XRES(8) ‖ AUTN(16) ‖ KASME(32).
const vectorBufLen = 16 + 8 + 16 + 32

// keyedHash lazily materializes a reusable SHA-256 state. It lives
// inside pooled scratch structs so the hash.Hash allocation happens
// once per scratch, not once per MAC.
type keyedHash struct{ h hash.Hash }

func (k *keyedHash) get() hash.Hash {
	if k.h == nil {
		k.h = sha256.New()
	}
	return k.h
}

// hmacInto computes HMAC-SHA256(key, p0 ‖ p1) into s.osum. key must be
// at most one SHA-256 block (64 bytes); every key in the TS 33.401
// derivation tree is. All buffers handed to the hash interface live in
// the scratch struct, so the call allocates nothing.
func hmacInto(s *akaScratch, key, p0, p1 []byte) {
	h := s.h.get()
	for i := range s.blk {
		var kb byte
		if i < len(key) {
			kb = key[i]
		}
		s.blk[i] = kb ^ 0x36
	}
	h.Reset()
	h.Write(s.blk[:])
	h.Write(p0)
	if p1 != nil {
		h.Write(p1)
	}
	h.Sum(s.isum[:0])
	for i := range s.blk {
		s.blk[i] ^= 0x36 ^ 0x5c
	}
	h.Reset()
	h.Write(s.blk[:])
	h.Write(s.isum[:])
	h.Sum(s.osum[:0])
}

// kdfInto assembles the TS 33.220 KDF input string
// FC ‖ P0 ‖ L0 ‖ P1 ‖ L1 into s.kdf, returning its length. P0 comes
// from p0s or p0b (whichever is non-empty). The caller must have
// checked the string fits s.kdf (kdfFits).
func kdfInto(s *akaScratch, fc byte, p0s string, p0b, p1 []byte) int {
	b := append(s.kdf[:0], fc)
	n0 := len(p0b)
	if p0b != nil {
		b = append(b, p0b...)
	} else {
		b = append(b, p0s...)
		n0 = len(p0s)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(n0))
	b = append(b, p1...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(p1)))
	return len(b)
}

func kdfFits(s *akaScratch, n0, n1 int) bool { return 1+n0+2+n1+2 <= len(s.kdf) }

// deriveKASMEInto appends the 32-byte KASME to dst using the scratch's
// HMAC state (TS 33.401 A.2).
func deriveKASMEInto(s *akaScratch, dst, ck, ik []byte, snID string, sqnXorAK []byte) []byte {
	if !kdfFits(s, len(snID), len(sqnXorAK)) {
		// Absurdly long serving-network ID: fall back to the
		// allocating path rather than corrupting the scratch.
		return append(dst, DeriveKASME(ck, ik, snID, sqnXorAK)...)
	}
	copy(s.key[:16], ck)
	copy(s.key[16:32], ik)
	n := kdfInto(s, 0x10, snID, nil, sqnXorAK)
	hmacInto(s, s.key[:32], s.kdf[:n], nil)
	return append(dst, s.osum[:]...)
}

// putSQN encodes the 48-bit sequence number big-endian into dst.
func putSQN(dst *[6]byte, sqn uint64) {
	dst[0] = byte(sqn >> 40)
	dst[1] = byte(sqn >> 32)
	dst[2] = byte(sqn >> 24)
	dst[3] = byte(sqn >> 16)
	dst[4] = byte(sqn >> 8)
	dst[5] = byte(sqn)
}

func sqnValue(b *[6]byte) uint64 {
	return uint64(b[0])<<40 | uint64(b[1])<<32 | uint64(b[2])<<24 |
		uint64(b[3])<<16 | uint64(b[4])<<8 | uint64(b[5])
}

// generateVectorBuf computes a vector into buf (len vectorBufLen),
// using s for every intermediate, and returns the Vector whose fields
// alias buf. The only allocation on this path is buf itself.
func generateVectorBuf(s *akaScratch, m *Milenage, sqn uint64, snID string, random16, buf []byte) (Vector, error) {
	rnd := buf[0:16:16]
	xres := buf[16:24:24]
	autn := buf[24:40:40]
	if random16 != nil {
		if len(random16) != 16 {
			return Vector{}, fmt.Errorf("auth: RAND must be 16 bytes")
		}
		copy(rnd, random16)
	} else if _, err := rand.Read(rnd); err != nil {
		return Vector{}, fmt.Errorf("auth: rand: %w", err)
	}
	copy(s.rnd[:], rnd)
	putSQN(&s.sqn, sqn)
	m.computeTemp(s)
	m.outNInto(s, 1) // OUT2: XRES ‖ … with AK in the low bytes
	copy(xres, s.out[8:16])
	copy(s.ak[:], s.out[0:6])
	m.outNInto(s, 2) // OUT3 = CK
	s.ck = s.out
	m.outNInto(s, 3) // OUT4 = IK
	s.ik = s.out
	m.out1Into(s, defaultAMF[0], defaultAMF[1]) // OUT1 = MAC-A ‖ MAC-S
	for i := 0; i < 6; i++ {
		autn[i] = s.sqn[i] ^ s.ak[i]
	}
	autn[6], autn[7] = defaultAMF[0], defaultAMF[1]
	copy(autn[8:16], s.out[0:8])
	kasme := deriveKASMEInto(s, buf[40:40:vectorBufLen], s.ck[:], s.ik[:], snID, autn[:6])
	return Vector{RAND: rnd, XRES: xres, AUTN: autn, KASME: kasme}, nil
}

// GenerateVector produces an authentication vector for the subscriber
// key set at sequence number sqn, for serving network snID. Pass a nil
// random16 to draw RAND from crypto/rand; tests inject a fixed RAND.
func GenerateVector(m *Milenage, sqn uint64, snID string, random16 []byte) (Vector, error) {
	s := getAKAScratch()
	v, err := generateVectorBuf(s, m, sqn, snID, random16, make([]byte, vectorBufLen))
	putAKAScratch(s)
	return v, err
}

// sqnBytes encodes the 48-bit sequence number big-endian.
func sqnBytes(sqn uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], sqn)
	return b[2:]
}

// SQNFromBytes decodes a 6-byte sequence number.
func SQNFromBytes(b []byte) uint64 {
	var full [8]byte
	copy(full[2:], b)
	return binary.BigEndian.Uint64(full[:])
}

// The UE accepts any SQN strictly greater than the highest it has
// seen. (TS 33.102 additionally bounds how far ahead a SQN may jump
// and recovers via AUTS resynchronization; with the time-based SQN
// generation dLTE stubs use — see SubscriberDB.NextVector — forward
// jumps are the *normal* roaming case, so the upper bound is elided
// here. Replay protection is unaffected.)

// UEContext is the SIM-side state needed to answer a network challenge.
type UEContext struct {
	Mil *Milenage
	// HighestSQN is the highest sequence number accepted so far.
	HighestSQN uint64
}

// ChallengeResult is what a successful UE-side AKA run yields. RES and
// KASME share one backing allocation.
type ChallengeResult struct {
	RES   []byte
	KASME []byte
}

// Respond runs UE-side AKA (TS 33.102 §6.3.3): recompute AK, unmask
// SQN, verify MAC-A, check SQN freshness, and derive RES and KASME.
func (u *UEContext) Respond(rnd, autn []byte, snID string) (ChallengeResult, error) {
	if len(rnd) != 16 || len(autn) != 16 {
		return ChallengeResult{}, fmt.Errorf("auth: challenge wants RAND[16] AUTN[16]")
	}
	s := getAKAScratch()
	defer putAKAScratch(s)
	copy(s.rnd[:], rnd)
	u.Mil.computeTemp(s)
	m := u.Mil
	m.outNInto(s, 1)
	var res [8]byte
	copy(res[:], s.out[8:16])
	copy(s.ak[:], s.out[0:6])
	for i := 0; i < 6; i++ {
		s.sqn[i] = autn[i] ^ s.ak[i]
	}
	m.outNInto(s, 2)
	s.ck = s.out
	m.outNInto(s, 3)
	s.ik = s.out
	m.out1Into(s, autn[6], autn[7])
	if !hmac.Equal(s.out[0:8], autn[8:16]) {
		return ChallengeResult{}, ErrMACFailure
	}
	sqn := sqnValue(&s.sqn)
	if sqn <= u.HighestSQN {
		return ChallengeResult{}, fmt.Errorf("%w: got %d, highest %d", ErrSyncFailure, sqn, u.HighestSQN)
	}
	u.HighestSQN = sqn
	buf := make([]byte, 8, 8+32)
	copy(buf, res[:])
	kasme := deriveKASMEInto(s, buf[8:8:8+32], s.ck[:], s.ik[:], snID, autn[:6])
	return ChallengeResult{RES: buf[0:8:8], KASME: kasme}, nil
}

// CheckRES compares the UE's RES against the vector's XRES in constant
// time, completing mutual authentication on the network side.
func CheckRES(v Vector, res []byte) error {
	if !hmac.Equal(v.XRES, res) {
		return ErrResMismatch
	}
	return nil
}

// resyncAMF is the AMF* used in resynchronization (TS 33.102 §6.3.3:
// all zeros).
var resyncAMF = []byte{0x00, 0x00}

// BuildAUTS constructs the resynchronization token the UE returns on a
// sync failure: AUTS = (SQNms ⊕ AK*) ‖ MAC-S, where AK* = f5*(RAND)
// and MAC-S = f1*(SQNms, AMF*, RAND). SQNms is the UE's highest
// accepted sequence number.
func (u *UEContext) BuildAUTS(rnd []byte) ([]byte, error) {
	if len(rnd) != 16 {
		return nil, fmt.Errorf("auth: AUTS wants RAND[16]")
	}
	sqnB := sqnBytes(u.HighestSQN)
	akStar, err := u.Mil.F5Star(rnd)
	if err != nil {
		return nil, err
	}
	_, macS, err := u.Mil.F1(rnd, sqnB, resyncAMF)
	if err != nil {
		return nil, err
	}
	auts := make([]byte, 0, 14)
	for i := 0; i < 6; i++ {
		auts = append(auts, sqnB[i]^akStar[i])
	}
	return append(auts, macS...), nil
}

// ErrBadAUTS reports a resynchronization token that failed to verify.
var ErrBadAUTS = errors.New("auth: invalid AUTS")

// RecoverSQNms verifies an AUTS token against the subscriber's key set
// and the RAND it answered, returning the UE's SQNms (TS 33.102
// §6.3.5, HSS side).
func RecoverSQNms(m *Milenage, rnd, auts []byte) (uint64, error) {
	if len(rnd) != 16 || len(auts) != 14 {
		return 0, fmt.Errorf("%w: wrong lengths", ErrBadAUTS)
	}
	akStar, err := m.F5Star(rnd)
	if err != nil {
		return 0, err
	}
	sqnB := make([]byte, 6)
	for i := 0; i < 6; i++ {
		sqnB[i] = auts[i] ^ akStar[i]
	}
	_, macS, err := m.F1(rnd, sqnB, resyncAMF)
	if err != nil {
		return 0, err
	}
	if !hmac.Equal(macS, auts[6:14]) {
		return 0, ErrBadAUTS
	}
	return SQNFromBytes(sqnB), nil
}

// DeriveKASME computes KASME = HMAC-SHA256(CK‖IK, S) with
// S = FC(0x10) ‖ SN-id ‖ len ‖ SQN⊕AK ‖ len (TS 33.401 A.2). The
// serving-network identity binds the key to the network the UE thinks
// it is talking to.
func DeriveKASME(ck, ik []byte, snID string, sqnXorAK []byte) []byte {
	s := kdfString(0x10, []byte(snID), sqnXorAK)
	mac := hmac.New(sha256.New, append(append([]byte{}, ck...), ik...))
	mac.Write(s)
	return mac.Sum(nil)
}

// Algorithm distinguishers for NAS key derivation (TS 33.401 A.7).
const (
	AlgoNASEnc = 0x01
	AlgoNASInt = 0x02
)

// DeriveNASKey derives a 16-byte NAS key (encryption or integrity) from
// KASME for algorithm identity algoID.
func DeriveNASKey(kasme []byte, algoDistinguisher byte, algoID byte) []byte {
	s := kdfString(0x15, []byte{algoDistinguisher}, []byte{algoID})
	mac := hmac.New(sha256.New, kasme)
	mac.Write(s)
	return mac.Sum(nil)[16:32] // 128-bit key from the low half
}

// kdfString assembles the TS 33.220 KDF input string:
// FC ‖ P0 ‖ L0 ‖ P1 ‖ L1.
func kdfString(fc byte, p0, p1 []byte) []byte {
	var b bytes.Buffer
	b.WriteByte(fc)
	b.Write(p0)
	binary.Write(&b, binary.BigEndian, uint16(len(p0)))
	b.Write(p1)
	binary.Write(&b, binary.BigEndian, uint16(len(p1)))
	return b.Bytes()
}

// NASKeys bundles the derived NAS session keys. Enc and Int share one
// backing allocation when produced by DeriveNASKeys.
type NASKeys struct {
	Enc []byte // K_NASenc
	Int []byte // K_NASint
}

// DeriveNASKeys derives both NAS keys using EEA1/EIA1-style algorithm
// identity 1.
func DeriveNASKeys(kasme []byte) NASKeys {
	return DeriveNASKeysInto(kasme, make([]byte, 0, 32))
}

// DeriveNASKeysInto is DeriveNASKeys appending the 32 bytes of key
// material to buf (len 0, cap ≥32 for the allocation-free path) —
// re-activating a security context across re-attaches reuses its
// backing storage instead of allocating fresh keys per AKA run.
func DeriveNASKeysInto(kasme, buf []byte) NASKeys {
	s := getAKAScratch()
	defer putAKAScratch(s)
	var p0 [1]byte
	var p1 = [1]byte{1} // algorithm identity
	p0[0] = AlgoNASEnc
	n := kdfInto(s, 0x15, "", p0[:], p1[:])
	hmacInto(s, kasme, s.kdf[:n], nil)
	buf = append(buf, s.osum[16:32]...)
	p0[0] = AlgoNASInt
	n = kdfInto(s, 0x15, "", p0[:], p1[:])
	hmacInto(s, kasme, s.kdf[:n], nil)
	buf = append(buf, s.osum[16:32]...)
	return NASKeys{Enc: buf[0:16:16], Int: buf[16:32:32]}
}

// Rekey recomputes the pad blocks for a new integrity key, reusing the
// context's storage — the re-attach path's counterpart to
// NewMACContext.
func (c *MACContext) Rekey(kInt []byte) {
	for i := range c.ipad {
		var kb byte
		if i < len(kInt) {
			kb = kInt[i]
		}
		c.ipad[i] = kb ^ 0x36
		c.opad[i] = kb ^ 0x5c
	}
}

// MACContext holds the precomputed HMAC-SHA256 pad blocks for one NAS
// integrity key, so each protected message costs two SHA-256 runs and
// zero allocations. A context belongs to one security context and is
// not safe for concurrent use.
type MACContext struct {
	h    keyedHash
	ipad [64]byte
	opad [64]byte
	cnt  [4]byte
	isum [32]byte
	osum [32]byte
}

// NewMACContext builds a MAC context for the NAS integrity key kInt
// (at most 64 bytes).
func NewMACContext(kInt []byte) *MACContext {
	c := &MACContext{}
	c.Rekey(kInt)
	return c
}

// ComputeInto writes the 4-byte NAS MAC over count ‖ msg into out.
func (c *MACContext) ComputeInto(count uint32, msg []byte, out *[4]byte) {
	h := c.h.get()
	binary.BigEndian.PutUint32(c.cnt[:], count)
	h.Reset()
	h.Write(c.ipad[:])
	h.Write(c.cnt[:])
	h.Write(msg)
	h.Sum(c.isum[:0])
	h.Reset()
	h.Write(c.opad[:])
	h.Write(c.isum[:])
	h.Sum(c.osum[:0])
	copy(out[:], c.osum[:4])
}

// Verify checks a 4-byte NAS MAC in constant time.
func (c *MACContext) Verify(count uint32, msg, gotMAC []byte) bool {
	var want [4]byte
	c.ComputeInto(count, msg, &want)
	return hmac.Equal(want[:], gotMAC)
}

// ComputeNASMAC computes the NAS message authentication code used in
// security-protected NAS transport: HMAC-SHA256 truncated to 4 bytes
// over count ‖ message. (Real LTE uses EIA1/2/3; an HMAC stands in with
// the same interface properties.) Hot paths hold a MACContext instead.
func ComputeNASMAC(kInt []byte, count uint32, msg []byte) []byte {
	mac := hmac.New(sha256.New, kInt)
	var c [4]byte
	binary.BigEndian.PutUint32(c[:], count)
	mac.Write(c[:])
	mac.Write(msg)
	return mac.Sum(nil)[:4]
}

// VerifyNASMAC checks a NAS MAC in constant time.
func VerifyNASMAC(kInt []byte, count uint32, msg, gotMAC []byte) bool {
	return hmac.Equal(ComputeNASMAC(kInt, count, msg), gotMAC)
}
