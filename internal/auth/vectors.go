package auth

import (
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors surfaced by AKA verification.
var (
	// ErrMACFailure means AUTN's MAC-A did not verify: the network
	// does not hold the subscriber key.
	ErrMACFailure = errors.New("auth: MAC failure")
	// ErrSyncFailure means the SQN was outside the acceptance window;
	// the UE requests resynchronization.
	ErrSyncFailure = errors.New("auth: SQN synchronisation failure")
	// ErrResMismatch means the UE's RES did not match XRES.
	ErrResMismatch = errors.New("auth: RES mismatch")
)

// Vector is one EPS authentication vector as the HSS hands it to an
// MME (TS 33.401 §6.1.2).
type Vector struct {
	RAND  []byte // 16 bytes
	XRES  []byte // 8 bytes
	AUTN  []byte // 16 bytes: SQN⊕AK || AMF || MAC-A
	KASME []byte // 32 bytes
}

// defaultAMF is the authentication management field with the
// "separation bit" set, marking EPS AKA.
var defaultAMF = []byte{0x80, 0x00}

// GenerateVector produces an authentication vector for the subscriber
// key set at sequence number sqn, for serving network snID. Pass a nil
// random16 to draw RAND from crypto/rand; tests inject a fixed RAND.
func GenerateVector(m *Milenage, sqn uint64, snID string, random16 []byte) (Vector, error) {
	var rnd []byte
	if random16 != nil {
		if len(random16) != 16 {
			return Vector{}, fmt.Errorf("auth: RAND must be 16 bytes")
		}
		rnd = append([]byte{}, random16...)
	} else {
		rnd = make([]byte, 16)
		if _, err := rand.Read(rnd); err != nil {
			return Vector{}, fmt.Errorf("auth: rand: %w", err)
		}
	}
	sqnB := sqnBytes(sqn)
	macA, _, err := m.F1(rnd, sqnB, defaultAMF)
	if err != nil {
		return Vector{}, err
	}
	xres, ck, ik, ak, err := m.F2345(rnd)
	if err != nil {
		return Vector{}, err
	}
	autn := make([]byte, 0, 16)
	for i := 0; i < 6; i++ {
		autn = append(autn, sqnB[i]^ak[i])
	}
	autn = append(autn, defaultAMF...)
	autn = append(autn, macA...)

	return Vector{
		RAND:  rnd,
		XRES:  xres,
		AUTN:  autn,
		KASME: DeriveKASME(ck, ik, snID, autn[:6]),
	}, nil
}

// sqnBytes encodes the 48-bit sequence number big-endian.
func sqnBytes(sqn uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], sqn)
	return b[2:]
}

// SQNFromBytes decodes a 6-byte sequence number.
func SQNFromBytes(b []byte) uint64 {
	var full [8]byte
	copy(full[2:], b)
	return binary.BigEndian.Uint64(full[:])
}

// The UE accepts any SQN strictly greater than the highest it has
// seen. (TS 33.102 additionally bounds how far ahead a SQN may jump
// and recovers via AUTS resynchronization; with the time-based SQN
// generation dLTE stubs use — see SubscriberDB.NextVector — forward
// jumps are the *normal* roaming case, so the upper bound is elided
// here. Replay protection is unaffected.)

// UEContext is the SIM-side state needed to answer a network challenge.
type UEContext struct {
	Mil *Milenage
	// HighestSQN is the highest sequence number accepted so far.
	HighestSQN uint64
}

// ChallengeResult is what a successful UE-side AKA run yields.
type ChallengeResult struct {
	RES   []byte
	KASME []byte
}

// Respond runs UE-side AKA (TS 33.102 §6.3.3): recompute AK, unmask
// SQN, verify MAC-A, check SQN freshness, and derive RES and KASME.
func (u *UEContext) Respond(rnd, autn []byte, snID string) (ChallengeResult, error) {
	if len(rnd) != 16 || len(autn) != 16 {
		return ChallengeResult{}, fmt.Errorf("auth: challenge wants RAND[16] AUTN[16]")
	}
	res, ck, ik, ak, err := u.Mil.F2345(rnd)
	if err != nil {
		return ChallengeResult{}, err
	}
	sqnB := make([]byte, 6)
	for i := 0; i < 6; i++ {
		sqnB[i] = autn[i] ^ ak[i]
	}
	amf := autn[6:8]
	macA, _, err := u.Mil.F1(rnd, sqnB, amf)
	if err != nil {
		return ChallengeResult{}, err
	}
	if !hmac.Equal(macA, autn[8:16]) {
		return ChallengeResult{}, ErrMACFailure
	}
	sqn := SQNFromBytes(sqnB)
	if sqn <= u.HighestSQN {
		return ChallengeResult{}, fmt.Errorf("%w: got %d, highest %d", ErrSyncFailure, sqn, u.HighestSQN)
	}
	u.HighestSQN = sqn
	return ChallengeResult{
		RES:   res,
		KASME: DeriveKASME(ck, ik, snID, autn[:6]),
	}, nil
}

// CheckRES compares the UE's RES against the vector's XRES in constant
// time, completing mutual authentication on the network side.
func CheckRES(v Vector, res []byte) error {
	if !hmac.Equal(v.XRES, res) {
		return ErrResMismatch
	}
	return nil
}

// resyncAMF is the AMF* used in resynchronization (TS 33.102 §6.3.3:
// all zeros).
var resyncAMF = []byte{0x00, 0x00}

// BuildAUTS constructs the resynchronization token the UE returns on a
// sync failure: AUTS = (SQNms ⊕ AK*) ‖ MAC-S, where AK* = f5*(RAND)
// and MAC-S = f1*(SQNms, AMF*, RAND). SQNms is the UE's highest
// accepted sequence number.
func (u *UEContext) BuildAUTS(rnd []byte) ([]byte, error) {
	if len(rnd) != 16 {
		return nil, fmt.Errorf("auth: AUTS wants RAND[16]")
	}
	sqnB := sqnBytes(u.HighestSQN)
	akStar, err := u.Mil.F5Star(rnd)
	if err != nil {
		return nil, err
	}
	_, macS, err := u.Mil.F1(rnd, sqnB, resyncAMF)
	if err != nil {
		return nil, err
	}
	auts := make([]byte, 0, 14)
	for i := 0; i < 6; i++ {
		auts = append(auts, sqnB[i]^akStar[i])
	}
	return append(auts, macS...), nil
}

// ErrBadAUTS reports a resynchronization token that failed to verify.
var ErrBadAUTS = errors.New("auth: invalid AUTS")

// RecoverSQNms verifies an AUTS token against the subscriber's key set
// and the RAND it answered, returning the UE's SQNms (TS 33.102
// §6.3.5, HSS side).
func RecoverSQNms(m *Milenage, rnd, auts []byte) (uint64, error) {
	if len(rnd) != 16 || len(auts) != 14 {
		return 0, fmt.Errorf("%w: wrong lengths", ErrBadAUTS)
	}
	akStar, err := m.F5Star(rnd)
	if err != nil {
		return 0, err
	}
	sqnB := make([]byte, 6)
	for i := 0; i < 6; i++ {
		sqnB[i] = auts[i] ^ akStar[i]
	}
	_, macS, err := m.F1(rnd, sqnB, resyncAMF)
	if err != nil {
		return 0, err
	}
	if !hmac.Equal(macS, auts[6:14]) {
		return 0, ErrBadAUTS
	}
	return SQNFromBytes(sqnB), nil
}

// DeriveKASME computes KASME = HMAC-SHA256(CK‖IK, S) with
// S = FC(0x10) ‖ SN-id ‖ len ‖ SQN⊕AK ‖ len (TS 33.401 A.2). The
// serving-network identity binds the key to the network the UE thinks
// it is talking to.
func DeriveKASME(ck, ik []byte, snID string, sqnXorAK []byte) []byte {
	s := kdfString(0x10, []byte(snID), sqnXorAK)
	mac := hmac.New(sha256.New, append(append([]byte{}, ck...), ik...))
	mac.Write(s)
	return mac.Sum(nil)
}

// Algorithm distinguishers for NAS key derivation (TS 33.401 A.7).
const (
	AlgoNASEnc = 0x01
	AlgoNASInt = 0x02
)

// DeriveNASKey derives a 16-byte NAS key (encryption or integrity) from
// KASME for algorithm identity algoID.
func DeriveNASKey(kasme []byte, algoDistinguisher byte, algoID byte) []byte {
	s := kdfString(0x15, []byte{algoDistinguisher}, []byte{algoID})
	mac := hmac.New(sha256.New, kasme)
	mac.Write(s)
	return mac.Sum(nil)[16:32] // 128-bit key from the low half
}

// kdfString assembles the TS 33.220 KDF input string:
// FC ‖ P0 ‖ L0 ‖ P1 ‖ L1.
func kdfString(fc byte, p0, p1 []byte) []byte {
	var b bytes.Buffer
	b.WriteByte(fc)
	b.Write(p0)
	binary.Write(&b, binary.BigEndian, uint16(len(p0)))
	b.Write(p1)
	binary.Write(&b, binary.BigEndian, uint16(len(p1)))
	return b.Bytes()
}

// NASKeys bundles the derived NAS session keys.
type NASKeys struct {
	Enc []byte // K_NASenc
	Int []byte // K_NASint
}

// DeriveNASKeys derives both NAS keys using EEA1/EIA1-style algorithm
// identity 1.
func DeriveNASKeys(kasme []byte) NASKeys {
	return NASKeys{
		Enc: DeriveNASKey(kasme, AlgoNASEnc, 1),
		Int: DeriveNASKey(kasme, AlgoNASInt, 1),
	}
}

// ComputeNASMAC computes the NAS message authentication code used in
// security-protected NAS transport: HMAC-SHA256 truncated to 4 bytes
// over count ‖ message. (Real LTE uses EIA1/2/3; an HMAC stands in with
// the same interface properties.)
func ComputeNASMAC(kInt []byte, count uint32, msg []byte) []byte {
	mac := hmac.New(sha256.New, kInt)
	var c [4]byte
	binary.BigEndian.PutUint32(c[:], count)
	mac.Write(c[:])
	mac.Write(msg)
	return mac.Sum(nil)[:4]
}

// VerifyNASMAC checks a NAS MAC in constant time.
func VerifyNASMAC(kInt []byte, count uint32, msg, gotMAC []byte) bool {
	return hmac.Equal(ComputeNASMAC(kInt, count, msg), gotMAC)
}
