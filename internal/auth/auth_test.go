package auth

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// TS 35.207 §4.3 test set 1 — the conformance vectors for Milenage.
func TestMilenageTestSet1(t *testing.T) {
	k := mustHex(t, "465b5ce8b199b49faa5f0a2ee238a6bc")
	rand := mustHex(t, "23553cbe9637a89d218ae64dae47bf35")
	sqn := mustHex(t, "ff9bb4d0b607")
	amf := mustHex(t, "b9b9")
	op := mustHex(t, "cdc202d5123e20f62b6d676ac72cb318")

	opc, err := DeriveOPc(k, op)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustHex(t, "cd63cb71954a9f4e48a5994e37a02baf"); !bytes.Equal(opc, want) {
		t.Fatalf("OPc = %x, want %x", opc, want)
	}

	m, err := NewMilenageOP(k, op)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.OPc(), opc) {
		t.Fatal("NewMilenageOP derived a different OPc")
	}

	macA, macS, err := m.F1(rand, sqn, amf)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustHex(t, "4a9ffac354dfafb3"); !bytes.Equal(macA, want) {
		t.Errorf("f1 MAC-A = %x, want %x", macA, want)
	}
	if want := mustHex(t, "01cfaf9ec4e871e9"); !bytes.Equal(macS, want) {
		t.Errorf("f1* MAC-S = %x, want %x", macS, want)
	}

	res, ck, ik, ak, err := m.F2345(rand)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustHex(t, "a54211d5e3ba50bf"); !bytes.Equal(res, want) {
		t.Errorf("f2 RES = %x, want %x", res, want)
	}
	if want := mustHex(t, "b40ba9a3c58b2a05bbf0d987b21bf8cb"); !bytes.Equal(ck, want) {
		t.Errorf("f3 CK = %x, want %x", ck, want)
	}
	if want := mustHex(t, "f769bcd751044604127672711c6d3441"); !bytes.Equal(ik, want) {
		t.Errorf("f4 IK = %x, want %x", ik, want)
	}
	if want := mustHex(t, "aa689c648370"); !bytes.Equal(ak, want) {
		t.Errorf("f5 AK = %x, want %x", ak, want)
	}

	akStar, err := m.F5Star(rand)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustHex(t, "451e8beca43b"); !bytes.Equal(akStar, want) {
		t.Errorf("f5* AK = %x, want %x", akStar, want)
	}
}

// TS 35.207 test set 2 exercises different key material.
func TestMilenageTestSet2(t *testing.T) {
	k := mustHex(t, "0396eb317b6d1c36f19c1c84cd6ffd16")
	rand := mustHex(t, "c00d603103dcee52c4478119494202e8")
	sqn := mustHex(t, "fd8eef40df7d")
	amf := mustHex(t, "af17")
	op := mustHex(t, "ff53bade17df5d4e793073ce9d7579fa")

	m, err := NewMilenageOP(k, op)
	if err != nil {
		t.Fatal(err)
	}
	macA, _, err := m.F1(rand, sqn, amf)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustHex(t, "5df5b31807e258b0"); !bytes.Equal(macA, want) {
		t.Errorf("f1 = %x, want %x", macA, want)
	}
	res, _, _, ak, err := m.F2345(rand)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustHex(t, "d3a628ed988620f0"); !bytes.Equal(res, want) {
		t.Errorf("f2 = %x, want %x", res, want)
	}
	if want := mustHex(t, "c47783995f72"); !bytes.Equal(ak, want) {
		t.Errorf("f5 = %x, want %x", ak, want)
	}
}

func TestMilenageBadInputs(t *testing.T) {
	if _, err := NewMilenage([]byte{1}, make([]byte, 16)); err == nil {
		t.Error("short K accepted")
	}
	if _, err := NewMilenageOP(make([]byte, 16), []byte{1}); err == nil {
		t.Error("short OP accepted")
	}
	if _, err := DeriveOPc([]byte{1}, make([]byte, 16)); err == nil {
		t.Error("DeriveOPc short K accepted")
	}
	m, _ := NewMilenage(make([]byte, 16), make([]byte, 16))
	if _, _, err := m.F1(make([]byte, 15), make([]byte, 6), make([]byte, 2)); err == nil {
		t.Error("short RAND accepted by f1")
	}
	if _, _, _, _, err := m.F2345(make([]byte, 8)); err == nil {
		t.Error("short RAND accepted by f2345")
	}
	if _, err := m.F5Star(nil); err == nil {
		t.Error("nil RAND accepted by f5*")
	}
}

func testMilenage(t *testing.T) *Milenage {
	t.Helper()
	k := mustHex(t, "465b5ce8b199b49faa5f0a2ee238a6bc")
	opc := mustHex(t, "cd63cb71954a9f4e48a5994e37a02baf")
	m, err := NewMilenage(k, opc)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAKARoundTrip(t *testing.T) {
	m := testMilenage(t)
	v, err := GenerateVector(m, 1000, "00101", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.RAND) != 16 || len(v.AUTN) != 16 || len(v.XRES) != 8 || len(v.KASME) != 32 {
		t.Fatalf("vector shape wrong: %+v", v)
	}
	ue := &UEContext{Mil: m, HighestSQN: 500}
	res, err := ue.Respond(v.RAND, v.AUTN, "00101")
	if err != nil {
		t.Fatalf("UE rejected genuine challenge: %v", err)
	}
	if err := CheckRES(v, res.RES); err != nil {
		t.Fatalf("network rejected genuine RES: %v", err)
	}
	if !bytes.Equal(res.KASME, v.KASME) {
		t.Error("UE and network derived different KASME")
	}
	if ue.HighestSQN != 1000 {
		t.Errorf("UE SQN not advanced: %d", ue.HighestSQN)
	}
}

func TestAKAMACFailure(t *testing.T) {
	m := testMilenage(t)
	v, _ := GenerateVector(m, 1000, "00101", nil)
	// A different network key produces a bad MAC.
	other, _ := NewMilenage(make([]byte, 16), make([]byte, 16))
	ue := &UEContext{Mil: other}
	if _, err := ue.Respond(v.RAND, v.AUTN, "00101"); !errors.Is(err, ErrMACFailure) {
		t.Fatalf("want ErrMACFailure, got %v", err)
	}
	// Tampered AUTN also fails.
	ue2 := &UEContext{Mil: m}
	bad := append([]byte{}, v.AUTN...)
	bad[15] ^= 0xFF
	if _, err := ue2.Respond(v.RAND, bad, "00101"); !errors.Is(err, ErrMACFailure) {
		t.Fatalf("tampered AUTN: want ErrMACFailure, got %v", err)
	}
}

func TestAKAReplayRejected(t *testing.T) {
	m := testMilenage(t)
	v, _ := GenerateVector(m, 1000, "00101", nil)
	ue := &UEContext{Mil: m}
	if _, err := ue.Respond(v.RAND, v.AUTN, "00101"); err != nil {
		t.Fatal(err)
	}
	// Replay of the same challenge: SQN no longer fresh.
	if _, err := ue.Respond(v.RAND, v.AUTN, "00101"); !errors.Is(err, ErrSyncFailure) {
		t.Fatalf("replay: want ErrSyncFailure, got %v", err)
	}
}

func TestAKAWrongRES(t *testing.T) {
	m := testMilenage(t)
	v, _ := GenerateVector(m, 1000, "00101", nil)
	if err := CheckRES(v, []byte{1, 2, 3, 4, 5, 6, 7, 8}); !errors.Is(err, ErrResMismatch) {
		t.Fatalf("want ErrResMismatch, got %v", err)
	}
}

func TestKASMEBindsServingNetwork(t *testing.T) {
	m := testMilenage(t)
	rand := mustHex(t, "23553cbe9637a89d218ae64dae47bf35")
	v1, _ := GenerateVector(m, 1000, "network-a", rand)
	v2, _ := GenerateVector(m, 1000, "network-b", rand)
	if bytes.Equal(v1.KASME, v2.KASME) {
		t.Error("KASME identical across serving networks")
	}
	// Same inputs reproduce the same KASME.
	v3, _ := GenerateVector(m, 1000, "network-a", rand)
	if !bytes.Equal(v1.KASME, v3.KASME) {
		t.Error("KASME not deterministic")
	}
}

func TestGenerateVectorBadRAND(t *testing.T) {
	m := testMilenage(t)
	if _, err := GenerateVector(m, 1, "x", []byte{1, 2}); err == nil {
		t.Error("short injected RAND accepted")
	}
}

func TestSQNBytesRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xff9bb4d0b607, 1 << 47} {
		if got := SQNFromBytes(sqnBytes(v)); got != v&0xFFFFFFFFFFFF {
			t.Errorf("SQN %d round-tripped to %d", v, got)
		}
	}
}

func TestNASKeysDistinct(t *testing.T) {
	kasme := make([]byte, 32)
	for i := range kasme {
		kasme[i] = byte(i)
	}
	keys := DeriveNASKeys(kasme)
	if len(keys.Enc) != 16 || len(keys.Int) != 16 {
		t.Fatalf("key lengths: %d/%d", len(keys.Enc), len(keys.Int))
	}
	if bytes.Equal(keys.Enc, keys.Int) {
		t.Error("enc and int keys identical")
	}
}

func TestNASMAC(t *testing.T) {
	k := make([]byte, 16)
	msg := []byte("attach-complete")
	mac := ComputeNASMAC(k, 7, msg)
	if len(mac) != 4 {
		t.Fatalf("MAC length %d", len(mac))
	}
	if !VerifyNASMAC(k, 7, msg, mac) {
		t.Error("genuine MAC rejected")
	}
	if VerifyNASMAC(k, 8, msg, mac) {
		t.Error("wrong count accepted")
	}
	if VerifyNASMAC(k, 7, []byte("tampered"), mac) {
		t.Error("tampered message accepted")
	}
}

func TestIMSIValidation(t *testing.T) {
	if !IMSI("001010000000001").Valid() {
		t.Error("valid IMSI rejected")
	}
	for _, bad := range []IMSI{"", "123", "abcdefghijklmno", "0010100000000012345"} {
		if bad.Valid() {
			t.Errorf("invalid IMSI %q accepted", bad)
		}
	}
}

func TestNewSIMUnique(t *testing.T) {
	a, err := NewSIM("001010000000001")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSIM("001010000000002")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.K, b.K) {
		t.Error("two SIMs share a key")
	}
	if _, err := NewSIM("bad"); err == nil {
		t.Error("invalid IMSI provisioned")
	}
}

func TestSubscriberDBFlow(t *testing.T) {
	db := NewSubscriberDB(false)
	sim, _ := NewSIM("001010000000001")
	if err := db.Provision(sim); err != nil {
		t.Fatal(err)
	}
	if !db.Known(sim.IMSI) || db.Known("001010000000099") {
		t.Error("Known wrong")
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	v1, err := db.NextVector(sim.IMSI, "00101")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := db.NextVector(sim.IMSI, "00101")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(v1.AUTN, v2.AUTN) {
		t.Error("consecutive vectors identical (SQN not advancing)")
	}
	if _, err := db.NextVector("001010000000099", "00101"); err == nil {
		t.Error("vector for unknown subscriber")
	}
	// UE accepts consecutive vectors in order.
	m, _ := sim.Milenage()
	ue := &UEContext{Mil: m}
	if _, err := ue.Respond(v1.RAND, v1.AUTN, "00101"); err != nil {
		t.Fatalf("vector 1: %v", err)
	}
	if _, err := ue.Respond(v2.RAND, v2.AUTN, "00101"); err != nil {
		t.Fatalf("vector 2: %v", err)
	}
}

func TestOpenVsClosedCore(t *testing.T) {
	sim, _ := NewSIM("001010000000001")
	pub := KeyPublication{IMSI: sim.IMSI, K: sim.K, OPc: sim.OPc}

	closed := NewSubscriberDB(false)
	if err := closed.ImportPublished(pub.SIM()); err == nil {
		t.Error("closed core accepted a published key — that is the telecom moat the paper describes, it must hold")
	}
	open := NewSubscriberDB(true)
	if err := open.ImportPublished(pub.SIM()); err != nil {
		t.Fatalf("open core rejected published key: %v", err)
	}
	// And the imported identity authenticates end to end.
	v, err := open.NextVector(sim.IMSI, "dlte-ap-1")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := sim.Milenage()
	ue := &UEContext{Mil: m}
	res, err := ue.Respond(v.RAND, v.AUTN, "dlte-ap-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckRES(v, res.RES); err != nil {
		t.Fatal(err)
	}
}

func TestProvisionValidation(t *testing.T) {
	db := NewSubscriberDB(true)
	if err := db.Provision(SIM{IMSI: "bad"}); err == nil {
		t.Error("bad IMSI provisioned")
	}
	if err := db.Provision(SIM{IMSI: "001010000000001", K: []byte{1}, OPc: make([]byte, 16)}); err == nil {
		t.Error("bad key material provisioned")
	}
}
