package auth

import (
	"testing"
)

// The AKA hot path (attach-storm rate) must not allocate beyond the
// escaping vector/key buffers themselves: Milenage temporaries, HMAC
// block state, and KDF strings all live in pooled scratch.

func hotpathMilenage(t testing.TB) *Milenage {
	t.Helper()
	k := []byte{0x46, 0x5b, 0x5c, 0xe8, 0xb1, 0x99, 0xb4, 0x9f, 0xaa, 0x5f, 0x0a, 0x2e, 0xe2, 0x38, 0xa6, 0xbc}
	opc := []byte{0xcd, 0x63, 0xcb, 0x71, 0x95, 0x4a, 0x9f, 0x4e, 0x48, 0xa5, 0x99, 0x4e, 0x37, 0xa0, 0x2b, 0xaf}
	m, err := NewMilenage(k, opc)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGenerateVectorAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector; pooled paths allocate by design")
	}
	m := hotpathMilenage(t)
	rnd := make([]byte, 16)
	avg := testing.AllocsPerRun(200, func() {
		if _, err := GenerateVector(m, 42, "ap", rnd); err != nil {
			t.Fatal(err)
		}
	})
	// One backing buffer per vector (RAND‖XRES‖AUTN‖KASME).
	if avg > 1 {
		t.Errorf("GenerateVector allocs/op = %.1f, want <= 1", avg)
	}
}

func TestRespondAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector; pooled paths allocate by design")
	}
	m := hotpathMilenage(t)
	rnd := make([]byte, 16)
	v, err := GenerateVector(m, 42, "ap", rnd)
	if err != nil {
		t.Fatal(err)
	}
	ue := &UEContext{Mil: m}
	avg := testing.AllocsPerRun(200, func() {
		ue.HighestSQN = 0
		if _, err := ue.Respond(v.RAND, v.AUTN, "ap"); err != nil {
			t.Fatal(err)
		}
	})
	// One backing buffer per response (RES‖KASME).
	if avg > 1 {
		t.Errorf("Respond allocs/op = %.1f, want <= 1", avg)
	}
}

func TestMACContextZeroAlloc(t *testing.T) {
	kInt := make([]byte, 16)
	for i := range kInt {
		kInt[i] = byte(i)
	}
	c := NewMACContext(kInt)
	msg := []byte("attach accept payload")
	var mac [4]byte
	c.ComputeInto(7, msg, &mac)
	if !c.Verify(7, msg, mac[:]) {
		t.Fatal("MACContext does not verify its own MAC")
	}
	if c.Verify(8, msg, mac[:]) {
		t.Fatal("MACContext verified a wrong count")
	}
	// Must agree with the one-shot reference implementation.
	want := ComputeNASMAC(kInt, 7, msg)
	for i := range want {
		if want[i] != mac[i] {
			t.Fatalf("MACContext MAC %x != reference %x", mac, want)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		c.ComputeInto(7, msg, &mac)
		if !c.Verify(7, msg, mac[:]) {
			t.Fatal("verify failed")
		}
	})
	if avg != 0 {
		t.Errorf("MACContext compute+verify allocs/op = %.1f, want 0", avg)
	}
}

func TestNextVectorsBatch(t *testing.T) {
	db := NewSubscriberDB(true)
	sim, err := NewSIM("001010000000094")
	if err != nil {
		t.Fatal(err)
	}
	db.Provision(sim)

	vecs := make([]Vector, 8)
	if err := db.NextVectors(sim.IMSI, "ap", vecs); err != nil {
		t.Fatal(err)
	}
	m, _ := sim.Milenage()
	ue := &UEContext{Mil: m}
	// Every vector in the burst is fresh and strictly ordered from the
	// UE's point of view.
	for i, v := range vecs {
		if _, err := ue.Respond(v.RAND, v.AUTN, "ap"); err != nil {
			t.Fatalf("vector %d rejected: %v", i, err)
		}
	}
	if err := db.NextVectors("001019999999999", "ap", vecs); err == nil {
		t.Error("batch for unknown subscriber succeeded")
	}
	if err := db.NextVectors(sim.IMSI, "ap", nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

func TestNextVectorsAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector; pooled paths allocate by design")
	}
	db := NewSubscriberDB(true)
	sim, err := NewSIM("001010000000095")
	if err != nil {
		t.Fatal(err)
	}
	db.Provision(sim)
	vecs := make([]Vector, 4)
	avg := testing.AllocsPerRun(100, func() {
		if err := db.NextVectors(sim.IMSI, "ap", vecs); err != nil {
			t.Fatal(err)
		}
	})
	// One escaping buffer per vector; everything else is pooled.
	perVector := avg / float64(len(vecs))
	if perVector > 2 {
		t.Errorf("NextVectors allocs/vector = %.2f, want <= 2", perVector)
	}
}

func BenchmarkNextVector(b *testing.B) {
	db := NewSubscriberDB(true)
	sim, err := NewSIM("001010000000096")
	if err != nil {
		b.Fatal(err)
	}
	db.Provision(sim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.NextVector(sim.IMSI, "ap"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNextVectorBatch16(b *testing.B) {
	db := NewSubscriberDB(true)
	sim, err := NewSIM("001010000000097")
	if err != nil {
		b.Fatal(err)
	}
	db.Provision(sim)
	vecs := make([]Vector, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.NextVectors(sim.IMSI, "ap", vecs); err != nil {
			b.Fatal(err)
		}
	}
}
