package auth

import (
	"errors"
	"testing"
	"time"
)

// The time-based SQN generator computes uint64(UnixMilli())<<5, which
// exceeds the 48-bit TS 33.102 SQN field for clocks a couple of
// centuries past the epoch — exactly what a long virtual-time run can
// produce. Before the mask, the overflow was silently truncated when
// the SQN was packed into AUTN: the UE tracked the truncated 48-bit
// value while the HSS counted the full 49+-bit one, and AUTS
// resynchronization (which recovers a 48-bit SQNms by construction)
// could never catch the HSS up — a permanent resync loop. These tests
// pin the masked behaviour.

// farFutureClock returns a fixed clock whose raw (unmasked) time-based
// SQN overflows 48 bits, plus the masked value NextVector must use.
func farFutureClock(t *testing.T) (func() time.Time, uint64) {
	t.Helper()
	future := time.Date(2470, 1, 1, 0, 0, 0, 0, time.UTC)
	raw := uint64(future.UnixMilli()) << 5
	if raw <= sqnMask48 {
		t.Fatalf("test clock does not overflow 48 bits: %#x", raw)
	}
	masked := raw & sqnMask48
	if masked > sqnMask48-10_000 {
		t.Fatalf("masked SQN %#x too close to wrap for the scenario", masked)
	}
	return func() time.Time { return future }, masked
}

func TestSQNMaskedTo48Bits(t *testing.T) {
	db := NewSubscriberDB(true)
	sim, err := NewSIM("001010000000092")
	if err != nil {
		t.Fatal(err)
	}
	db.Provision(sim)
	now, masked := farFutureClock(t)
	db.Now = now

	v, err := db.NextVector(sim.IMSI, "ap")
	if err != nil {
		t.Fatal(err)
	}
	// A fresh UE accepts the challenge and must recover exactly the
	// masked 48-bit sequence number — AUTN cannot carry more.
	m, _ := sim.Milenage()
	ue := &UEContext{Mil: m}
	if _, err := ue.Respond(v.RAND, v.AUTN, "ap"); err != nil {
		t.Fatalf("far-future challenge rejected: %v", err)
	}
	if ue.HighestSQN != masked {
		t.Errorf("UE recovered SQN %#x, want masked %#x", ue.HighestSQN, masked)
	}
}

func TestSQNWrapResynchronize(t *testing.T) {
	db := NewSubscriberDB(true)
	sim, err := NewSIM("001010000000093")
	if err != nil {
		t.Fatal(err)
	}
	db.Provision(sim)
	now, masked := farFutureClock(t)
	db.Now = now

	// The UE has already accepted sequence numbers beyond this HSS's
	// time base (roamed across independent dLTE cores), so the first
	// challenge fails freshness and forces the AUTS path.
	m, _ := sim.Milenage()
	ue := &UEContext{Mil: m, HighestSQN: masked + 1000}

	v1, err := db.NextVector(sim.IMSI, "ap")
	if err != nil {
		t.Fatal(err)
	}
	if _, rerr := ue.Respond(v1.RAND, v1.AUTN, "ap"); !errors.Is(rerr, ErrSyncFailure) {
		t.Fatalf("expected sync failure, got %v", rerr)
	}
	auts, err := ue.BuildAUTS(v1.RAND)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Resynchronize(sim.IMSI, v1.RAND, auts); err != nil {
		t.Fatal(err)
	}
	// With the unmasked counter this re-challenge still carried a
	// truncated SQN below the UE's high-water mark and looped forever;
	// masked, the resynchronized counter is directly comparable to the
	// UE's and the next vector is fresh.
	v2, err := db.NextVector(sim.IMSI, "ap")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ue.Respond(v2.RAND, v2.AUTN, "ap"); err != nil {
		t.Fatalf("post-resync challenge rejected: %v", err)
	}
}
